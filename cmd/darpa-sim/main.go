// Command darpa-sim runs the end-to-end simulation: a handset with a
// simulated app popping asymmetric dark UIs, a Monkey tapping at random, and
// DARPA monitoring through the accessibility layer, detecting AUIs and
// decorating (or auto-bypassing) them. It prints a timeline of what
// happened and can dump annotated screenshots.
//
// Usage:
//
//	darpa-sim [-minutes 2] [-weights weights] [-bypass] [-obfuscate] [-shots dir] [-detector yolite] [-fleet N] [-deadline 0]
//
// With -fleet N > 1 the single-handset timeline is replaced by N simulated
// devices running concurrently, all funnelling their inference through one
// shared serving stack (micro-batching scheduler over a sharded result cache
// over a pooled backend) — the paper's one-model-per-device deployment
// scaled to a fleet the way an audit farm or device lab would run it.
package main

import (
	"context"
	"flag"
	"fmt"
	"image/png"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/a11y"
	"repro/internal/app"
	"repro/internal/auigen"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/faults"
	"repro/internal/frauddroid"
	"repro/internal/perfmodel"
	"repro/internal/quant"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/uikit"
	"repro/internal/yolite"
)

func main() {
	log.SetFlags(0)
	minutes := flag.Int("minutes", 2, "simulated minutes to run")
	weights := flag.String("weights", "weights", "pretrained weights directory")
	bypass := flag.Bool("bypass", false, "auto-click detected UPOs instead of only decorating")
	obfuscate := flag.Bool("obfuscate", false, "app obfuscates its resource ids")
	shots := flag.String("shots", "", "directory to dump annotated screenshots to")
	detector := flag.String("detector", "yolite", "registry backend to run the service with")
	fleet := flag.Int("fleet", 1, "simulated devices sharing one batched detector (1 = classic single-handset run)")
	replicas := flag.Int("replicas", 1, "independent model replicas behind the fleet's shared scheduler")
	tenants := flag.Int("tenants", 1, "tenant identities the fleet's devices are spread across (tenant0 is live-priority, the rest batch-priority)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admission rate limit in requests/sec (0 = unlimited)")
	shedDepth := flag.Int("shed-depth", 0, "shed requests once the scheduler queues hold this many (0 = never shed)")
	deadline := flag.Duration("deadline", 0, "per-analysis wall-clock deadline (0 = none); expired cycles abort mid-forward and skip decoration")
	chaos := flag.Float64("chaos", 0, "inject detector errors at this rate (0-1); enables the resilient path (retry + frauddroid fallback)")
	chaosLatency := flag.Duration("chaos-latency", 0, "inject latency spikes of this size on ~10% of detector calls")
	chaosPanic := flag.Int("chaos-panic", 0, "panic inside the detector on every Nth call (0 = never)")
	chaosCorrupt := flag.Float64("chaos-corrupt", 0, "corrupt detector results (NaN boxes, out-of-range scores) at this rate")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the fault-injection plan's RNG")
	flag.Parse()

	plan := chaosPlan(*chaos, *chaosLatency, *chaosPanic, *chaosCorrupt, *chaosSeed)

	clock := sim.NewClock(42)
	screen := uikit.NewScreen(384, 640)
	mgr := a11y.NewManager(clock, screen)

	bctx := detect.BuildContext{
		WeightsDir: *weights,
		Samples: func() []*dataset.Sample {
			log.Printf("no pretrained weights in %s; training a quick model...", *weights)
			return auigen.BuildAUISamples(1, 96, auigen.DatasetConfig{})
		},
		Epochs: 10,
		Screen: func() *uikit.Screen { return screen },
		Logf:   log.Printf,
	}
	if *fleet > 1 {
		// Train-if-cold happens once; replica builds after the first are
		// warm weight loads producing independent model instances.
		bctx.SaveWeights = true
		reps, err := detect.BuildReplicas(*detector, bctx, *replicas)
		if err != nil {
			log.Fatal(err)
		}
		runFleet(reps, plan, fleetConfig{
			devices:    *fleet,
			minutes:    *minutes,
			tenants:    *tenants,
			tenantRate: *tenantRate,
			shedDepth:  *shedDepth,
			bypass:     *bypass,
			obfuscate:  *obfuscate,
			deadline:   *deadline,
		})
		return
	}
	model, err := detect.Build(*detector, bctx)
	if err != nil {
		log.Fatal(err)
	}
	a := app.Launch(clock, mgr, app.Config{
		Package:         "com.example.shop",
		MeanAUIInterval: 10 * time.Second,
		Obfuscate:       *obfuscate,
	})
	monkey := app.StartMonkey(clock, mgr, "monkey", 2*time.Second)

	cfg := core.Config{AutoBypass: *bypass, Deadline: *deadline}
	svcModel := model
	if plan != nil {
		// Chaos mode: faults hit the primary backend; the service retries it,
		// then falls back to the metadata heuristic reading the same screen.
		svcModel = faults.WrapStage(model, plan, "backend")
		cfg.RetryAttempts = 3
		cfg.Fallbacks = []detect.Detector{&frauddroid.ViewAdapter{
			Screen: func() *uikit.Screen { return screen },
		}}
	}
	shotIdx := 0
	svc := core.Start(clock, mgr, svcModel, cfg)
	svc.OnAnalysis = func(an core.Analysis) {
		if len(an.Detections) == 0 {
			return
		}
		fmt.Printf("[%8v] AUI detected on %s:\n", an.At.Round(time.Millisecond), an.Package)
		for _, d := range an.Detections {
			cls := "AGO"
			if d.Class == dataset.ClassUPO {
				cls = "UPO"
			}
			fmt.Printf("             %s at %v (confidence %.2f)\n", cls, d.B.Rect(), d.Score)
		}
		if *shots != "" {
			// Render the decorated screen (decorations are already up).
			c := screen.Render()
			name := filepath.Join(*shots, fmt.Sprintf("detect_%02d.png", shotIdx))
			shotIdx++
			f, err := os.Create(name)
			if err == nil {
				_ = png.Encode(f, c.Image())
				f.Close()
				fmt.Printf("             screenshot -> %s\n", name)
			}
		}
	}

	if *shots != "" {
		if err := os.MkdirAll(*shots, 0o755); err != nil {
			log.Fatalf("creating %s: %v", *shots, err)
		}
	}
	clock.RunUntil(time.Duration(*minutes) * time.Minute)
	monkey.Stop()
	svc.Stop()
	a.Stop()

	st := svc.Stats()
	fmt.Printf("\n--- %d simulated minute(s) ---\n", *minutes)
	fmt.Printf("accessibility events seen:   %d\n", st.EventsSeen)
	fmt.Printf("debounced (work avoided):    %d\n", st.Debounced)
	fmt.Printf("screens analysed:            %d\n", st.Analyses)
	fmt.Printf("analyses superseded:         %d\n", st.Superseded)
	fmt.Printf("analyses timed out:          %d\n", st.TimedOut)
	fmt.Printf("AUIs flagged:                %d\n", st.AUIFlagged)
	fmt.Printf("decorations drawn:           %d\n", st.DecorationsDrawn)
	fmt.Printf("auto-bypass clicks:          %d\n", st.Bypasses)
	fmt.Printf("screenshot buffers rinsed:   %d\n", st.Rinses)
	if plan != nil {
		fmt.Printf("degraded (no detector):      %d\n", st.Degraded)
		fmt.Printf("detector retries:            %d\n", st.Retried)
		fmt.Printf("fallback served:             %d\n", st.FellBack)
		fmt.Printf("faults injected:             %s\n", plan)
		printServedRate(st)
	}
	fmt.Printf("pipeline stage times:        %s\n", svc.Timings())
	shown := a.History()
	byClick := 0
	for _, h := range shown {
		if h.DismissedByClick {
			byClick++
		}
	}
	fmt.Printf("AUI popups shown by the app: %d (%d dismissed by click)\n", len(shown), byClick)
}

// fleetConfig bundles the fleet-mode knobs.
type fleetConfig struct {
	devices    int
	minutes    int
	tenants    int
	tenantRate float64
	shedDepth  int
	bypass     bool
	obfuscate  bool
	deadline   time.Duration
}

// runFleet drives N devices concurrently through one shared serving stack:
// per-tenant admission in front of a priority scheduler feeding the replica
// pool. Each device owns its clock, screen, app, monkey and DARPA service —
// only the serving stack is shared, which is safe because inference is
// read-only and the admission, batching, caching and pooling layers are all
// concurrency-safe. Devices are spread round-robin across tenant identities;
// tenant0 is the live-decoration tier, the rest are batch-audit tier.
func runFleet(models []detect.Detector, plan *faults.Plan, fc fleetConfig) {
	devices, minutes := fc.devices, fc.minutes
	if fc.tenants <= 0 {
		fc.tenants = 1
	}
	rec := &perfmodel.Timings{}
	// Each replica's tensor backend gets its own activation pool — with many
	// devices in flight the steady-state forward otherwise allocates every
	// intermediate fresh, and pools must never be shared across replicas.
	// The pool is installed on the raw model here because the fault and
	// cache wrappers below hide the SetPool seam from the replica layer.
	var caches []*detect.Cache
	backends := make([]detect.Predictor, 0, len(models))
	for _, model := range models {
		switch m := model.(type) {
		case *yolite.Model:
			m.SetPool(tensor.NewPool())
		case *quant.Model:
			m.SetPool(tensor.NewPool())
		}
		inner := detect.Predictor(model)
		if plan != nil {
			// The result cache sits outside the fault injector, so in chaos
			// mode it is dropped: a corrupted result memoised as a legitimate
			// hit would turn one injected fault into a permanent wrong answer.
			inner = faults.WrapStage(model, plan, "backend")
		} else {
			c := detect.WithResultCache(model, 64*devices/len(models))
			caches = append(caches, c)
			inner = c
		}
		backends = append(backends, inner)
	}
	// Tenant table: tenant0 serves the interactive tier, every other tenant
	// the audit tier; one rate knob covers them all (0 = unlimited).
	tenantTable := make(map[serve.TenantID]serve.TenantConfig, fc.tenants)
	for t := 0; t < fc.tenants; t++ {
		prio := serve.PriorityLive
		if t > 0 {
			prio = serve.PriorityBatch
		}
		tenantTable[serve.TenantID(fmt.Sprintf("tenant%d", t))] = serve.TenantConfig{
			Rate:     fc.tenantRate,
			Priority: prio,
		}
	}
	shared := serve.NewReplicated(serve.Options{
		MaxBatch:      devices,
		Timings:       rec,
		Tenants:       tenantTable,
		MaxQueueDepth: fc.shedDepth,
	}, backends...)

	type deviceResult struct {
		stats  core.Stats
		popups int
	}
	results := make([]deviceResult, devices)
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			// Per-device context: cancelling it abandons every analysis the
			// device still has in flight, the way pulling one handset out of
			// a device lab should not disturb the shared serving stack.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			clock := sim.NewClock(int64(42 + d))
			screen := uikit.NewScreen(384, 640)
			mgr := a11y.NewManager(clock, screen)
			a := app.Launch(clock, mgr, app.Config{
				Package:         fmt.Sprintf("com.fleet.app%02d", d),
				MeanAUIInterval: 10 * time.Second,
				Obfuscate:       fc.obfuscate,
				GenSeed:         int64(100 + d),
			})
			monkey := app.StartMonkey(clock, mgr, "monkey", 2*time.Second)
			tenant := d % fc.tenants
			cfg := core.Config{
				AutoBypass:  fc.bypass,
				Deadline:    fc.deadline,
				BaseContext: ctx,
				Tenant:      fmt.Sprintf("tenant%d", tenant),
			}
			if tenant > 0 {
				cfg.TenantPriority = serve.PriorityBatch
			}
			if plan != nil {
				// Each device retries the shared stack before degrading.
				cfg.RetryAttempts = 3
			}
			if plan != nil || fc.shedDepth > 0 || fc.tenantRate > 0 {
				// Chaos faults, shed requests (serve.ErrOverloaded) and rate
				// rejections (serve.ErrRateLimited) all degrade the same way:
				// the device falls back to its own metadata heuristic reading
				// its own screen instead of failing the cycle.
				cfg.Fallbacks = []detect.Detector{&frauddroid.ViewAdapter{
					Screen: func() *uikit.Screen { return screen },
				}}
			}
			svc := core.Start(clock, mgr, shared, cfg)
			clock.RunUntil(time.Duration(fc.minutes) * time.Minute)
			monkey.Stop()
			svc.Stop()
			a.Stop()
			results[d] = deviceResult{stats: svc.Stats(), popups: len(a.History())}
		}(d)
	}
	wg.Wait()
	shared.Close()
	for _, c := range caches {
		c.PublishStats(rec)
	}

	fmt.Printf("\n--- fleet: %d devices x %d simulated minute(s) ---\n", devices, minutes)
	fmt.Printf("%-8s %8s %10s %8s %8s\n", "device", "events", "analyses", "AUIs", "popups")
	var agg core.Stats
	for d, r := range results {
		fmt.Printf("%-8d %8d %10d %8d %8d\n", d, r.stats.EventsSeen, r.stats.Analyses, r.stats.AUIFlagged, r.popups)
		agg.EventsSeen += r.stats.EventsSeen
		agg.Debounced += r.stats.Debounced
		agg.Analyses += r.stats.Analyses
		agg.AUIFlagged += r.stats.AUIFlagged
		agg.DecorationsDrawn += r.stats.DecorationsDrawn
		agg.Superseded += r.stats.Superseded
		agg.TimedOut += r.stats.TimedOut
		agg.Degraded += r.stats.Degraded
		agg.Retried += r.stats.Retried
		agg.FellBack += r.stats.FellBack
		for i := range agg.Stages {
			agg.Stages[i].Runs += r.stats.Stages[i].Runs
		}
	}
	st := shared.Stats()
	fmt.Printf("\nfleet totals: %d events, %d debounced, %d analyses (%d superseded, %d timed out), %d AUIs flagged, %d decorations\n",
		agg.EventsSeen, agg.Debounced, agg.Analyses, agg.Superseded, agg.TimedOut, agg.AUIFlagged, agg.DecorationsDrawn)
	fmt.Printf("admission:    %d offered = %d admitted + %d shed + %d rejected (%d tenants)\n",
		st.Offered, st.Admitted, st.Shed, st.Rejected, len(st.Tenants))
	fmt.Printf("scheduler:    %d forwards for %d screens (max batch %d, max queue %d, %d cancelled in queue)\n",
		st.Batches, st.Items, st.MaxBatchSize, st.MaxQueueDepth, st.Cancelled)
	for _, r := range st.Replicas {
		fmt.Printf("replica %-2d    %d screens in %d forwards, %v busy, %d failed, %d bench trips\n",
			r.ID, r.Items, r.Batches, r.Busy.Round(time.Millisecond), r.Failed, r.BenchTrips)
	}
	if len(caches) > 0 {
		var hits, misses int
		for _, c := range caches {
			hits += c.Hits()
			misses += c.Misses()
		}
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		fmt.Printf("result cache: %.0f%% hit rate (%d hits / %d misses, %d per-replica caches)\n",
			100*rate, hits, misses, len(caches))
	}
	if plan != nil {
		fmt.Printf("chaos:        %s\n", plan)
		fmt.Printf("resilience:   %d retries, %d fallback-served, %d degraded; scheduler isolated %d poison batches, %d failed requests\n",
			agg.Retried, agg.FellBack, agg.Degraded, st.Poisoned, st.Failed)
		printServedRate(agg)
	}
	fmt.Printf("serving:      %s\n", rec.String())
}

// printServedRate reports what fraction of the screens that reached the
// infer decision still produced a full analysis — directly or via
// retry/fallback — rather than degrading. Superseded and timed-out cycles
// are the caller's doing and excluded from the denominator.
func printServedRate(st core.Stats) {
	served := st.Stages[core.StageAct].Runs
	eligible := served + st.Degraded
	if eligible == 0 {
		return
	}
	fmt.Printf("screens served under chaos:  %d/%d (%.1f%%)\n",
		served, eligible, 100*float64(served)/float64(eligible))
}

// chaosPlan assembles the fault-injection plan from the -chaos* flags, or
// returns nil when every knob is off. Rules are first-match-wins per call:
// deterministic panics take precedence, then errors, corruptions, and
// latency spikes.
func chaosPlan(errRate float64, latency time.Duration, panicEvery int, corruptRate float64, seed int64) *faults.Plan {
	var rules []faults.Rule
	if panicEvery > 0 {
		rules = append(rules, faults.Rule{Stage: "backend", Kind: faults.Panic, Every: panicEvery})
	}
	if errRate > 0 {
		rules = append(rules, faults.Rule{Stage: "backend", Kind: faults.Error, Rate: errRate})
	}
	if corruptRate > 0 {
		rules = append(rules, faults.Rule{Stage: "backend", Kind: faults.Corrupt, Rate: corruptRate})
	}
	if latency > 0 {
		rules = append(rules, faults.Rule{Stage: "backend", Kind: faults.Latency, Rate: 0.1, Latency: latency})
	}
	if len(rules) == 0 {
		return nil
	}
	return faults.NewPlan(seed, rules...)
}
