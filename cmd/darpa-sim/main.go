// Command darpa-sim runs the end-to-end simulation: a handset with a
// simulated app popping asymmetric dark UIs, a Monkey tapping at random, and
// DARPA monitoring through the accessibility layer, detecting AUIs and
// decorating (or auto-bypassing) them. It prints a timeline of what
// happened and can dump annotated screenshots.
//
// Usage:
//
//	darpa-sim [-minutes 2] [-weights weights] [-bypass] [-obfuscate] [-shots dir] [-detector yolite] [-fleet N] [-deadline 0]
//
// With -fleet N > 1 the single-handset timeline is replaced by N simulated
// devices running concurrently, all funnelling their inference through one
// shared serving stack (micro-batching scheduler over a sharded result cache
// over a pooled backend) — the paper's one-model-per-device deployment
// scaled to a fleet the way an audit farm or device lab would run it.
package main

import (
	"context"
	"flag"
	"fmt"
	"image/png"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/a11y"
	"repro/internal/app"
	"repro/internal/auigen"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/faults"
	"repro/internal/frauddroid"
	"repro/internal/perfmodel"
	"repro/internal/quant"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/uikit"
	"repro/internal/yolite"
)

func main() {
	log.SetFlags(0)
	minutes := flag.Int("minutes", 2, "simulated minutes to run")
	weights := flag.String("weights", "weights", "pretrained weights directory")
	bypass := flag.Bool("bypass", false, "auto-click detected UPOs instead of only decorating")
	obfuscate := flag.Bool("obfuscate", false, "app obfuscates its resource ids")
	shots := flag.String("shots", "", "directory to dump annotated screenshots to")
	detector := flag.String("detector", "yolite", "registry backend to run the service with")
	fleet := flag.Int("fleet", 1, "simulated devices sharing one batched detector (1 = classic single-handset run)")
	deadline := flag.Duration("deadline", 0, "per-analysis wall-clock deadline (0 = none); expired cycles abort mid-forward and skip decoration")
	chaos := flag.Float64("chaos", 0, "inject detector errors at this rate (0-1); enables the resilient path (retry + frauddroid fallback)")
	chaosLatency := flag.Duration("chaos-latency", 0, "inject latency spikes of this size on ~10% of detector calls")
	chaosPanic := flag.Int("chaos-panic", 0, "panic inside the detector on every Nth call (0 = never)")
	chaosCorrupt := flag.Float64("chaos-corrupt", 0, "corrupt detector results (NaN boxes, out-of-range scores) at this rate")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the fault-injection plan's RNG")
	flag.Parse()

	plan := chaosPlan(*chaos, *chaosLatency, *chaosPanic, *chaosCorrupt, *chaosSeed)

	clock := sim.NewClock(42)
	screen := uikit.NewScreen(384, 640)
	mgr := a11y.NewManager(clock, screen)

	model, err := detect.Build(*detector, detect.BuildContext{
		WeightsDir: *weights,
		Samples: func() []*dataset.Sample {
			log.Printf("no pretrained weights in %s; training a quick model...", *weights)
			return auigen.BuildAUISamples(1, 96, auigen.DatasetConfig{})
		},
		Epochs: 10,
		Screen: func() *uikit.Screen { return screen },
		Logf:   log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *fleet > 1 {
		runFleet(model, plan, *fleet, *minutes, *bypass, *obfuscate, *deadline)
		return
	}
	a := app.Launch(clock, mgr, app.Config{
		Package:         "com.example.shop",
		MeanAUIInterval: 10 * time.Second,
		Obfuscate:       *obfuscate,
	})
	monkey := app.StartMonkey(clock, mgr, "monkey", 2*time.Second)

	cfg := core.Config{AutoBypass: *bypass, Deadline: *deadline}
	svcModel := model
	if plan != nil {
		// Chaos mode: faults hit the primary backend; the service retries it,
		// then falls back to the metadata heuristic reading the same screen.
		svcModel = faults.WrapStage(model, plan, "backend")
		cfg.RetryAttempts = 3
		cfg.Fallbacks = []detect.Detector{&frauddroid.ViewAdapter{
			Screen: func() *uikit.Screen { return screen },
		}}
	}
	shotIdx := 0
	svc := core.Start(clock, mgr, svcModel, cfg)
	svc.OnAnalysis = func(an core.Analysis) {
		if len(an.Detections) == 0 {
			return
		}
		fmt.Printf("[%8v] AUI detected on %s:\n", an.At.Round(time.Millisecond), an.Package)
		for _, d := range an.Detections {
			cls := "AGO"
			if d.Class == dataset.ClassUPO {
				cls = "UPO"
			}
			fmt.Printf("             %s at %v (confidence %.2f)\n", cls, d.B.Rect(), d.Score)
		}
		if *shots != "" {
			// Render the decorated screen (decorations are already up).
			c := screen.Render()
			name := filepath.Join(*shots, fmt.Sprintf("detect_%02d.png", shotIdx))
			shotIdx++
			f, err := os.Create(name)
			if err == nil {
				_ = png.Encode(f, c.Image())
				f.Close()
				fmt.Printf("             screenshot -> %s\n", name)
			}
		}
	}

	if *shots != "" {
		if err := os.MkdirAll(*shots, 0o755); err != nil {
			log.Fatalf("creating %s: %v", *shots, err)
		}
	}
	clock.RunUntil(time.Duration(*minutes) * time.Minute)
	monkey.Stop()
	svc.Stop()
	a.Stop()

	st := svc.Stats()
	fmt.Printf("\n--- %d simulated minute(s) ---\n", *minutes)
	fmt.Printf("accessibility events seen:   %d\n", st.EventsSeen)
	fmt.Printf("debounced (work avoided):    %d\n", st.Debounced)
	fmt.Printf("screens analysed:            %d\n", st.Analyses)
	fmt.Printf("analyses superseded:         %d\n", st.Superseded)
	fmt.Printf("analyses timed out:          %d\n", st.TimedOut)
	fmt.Printf("AUIs flagged:                %d\n", st.AUIFlagged)
	fmt.Printf("decorations drawn:           %d\n", st.DecorationsDrawn)
	fmt.Printf("auto-bypass clicks:          %d\n", st.Bypasses)
	fmt.Printf("screenshot buffers rinsed:   %d\n", st.Rinses)
	if plan != nil {
		fmt.Printf("degraded (no detector):      %d\n", st.Degraded)
		fmt.Printf("detector retries:            %d\n", st.Retried)
		fmt.Printf("fallback served:             %d\n", st.FellBack)
		fmt.Printf("faults injected:             %s\n", plan)
		printServedRate(st)
	}
	fmt.Printf("pipeline stage times:        %s\n", svc.Timings())
	shown := a.History()
	byClick := 0
	for _, h := range shown {
		if h.DismissedByClick {
			byClick++
		}
	}
	fmt.Printf("AUI popups shown by the app: %d (%d dismissed by click)\n", len(shown), byClick)
}

// runFleet drives N devices concurrently through one shared serving stack.
// Each device owns its clock, screen, app, monkey and DARPA service — only
// the detector is shared, which is safe because inference is read-only and
// the batching, caching and pooling layers are all concurrency-safe.
func runFleet(model detect.Detector, plan *faults.Plan, devices, minutes int, bypass, obfuscate bool, deadline time.Duration) {
	// Tensor backends get an activation pool: with many devices in flight
	// the steady-state forward otherwise allocates every intermediate fresh.
	switch m := model.(type) {
	case *yolite.Model:
		m.Pool = tensor.NewPool()
	case *quant.Model:
		m.Pool = tensor.NewPool()
	}
	rec := &perfmodel.Timings{}
	inner := model
	if plan != nil {
		inner = faults.WrapStage(model, plan, "backend")
	}
	// The result cache sits outside the fault injector, so in chaos mode it
	// is dropped: a corrupted result memoised as a legitimate hit would turn
	// one injected fault into a permanent wrong answer.
	var cached *detect.Cache
	if plan == nil {
		cached = detect.WithResultCache(inner, 64*devices)
		inner = cached
	}
	shared := serve.NewBatcher(inner, serve.Options{
		MaxBatch: devices,
		Timings:  rec,
	})

	type deviceResult struct {
		stats  core.Stats
		popups int
	}
	results := make([]deviceResult, devices)
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			// Per-device context: cancelling it abandons every analysis the
			// device still has in flight, the way pulling one handset out of
			// a device lab should not disturb the shared serving stack.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			clock := sim.NewClock(int64(42 + d))
			screen := uikit.NewScreen(384, 640)
			mgr := a11y.NewManager(clock, screen)
			a := app.Launch(clock, mgr, app.Config{
				Package:         fmt.Sprintf("com.fleet.app%02d", d),
				MeanAUIInterval: 10 * time.Second,
				Obfuscate:       obfuscate,
				GenSeed:         int64(100 + d),
			})
			monkey := app.StartMonkey(clock, mgr, "monkey", 2*time.Second)
			cfg := core.Config{
				AutoBypass:  bypass,
				Deadline:    deadline,
				BaseContext: ctx,
			}
			if plan != nil {
				// Each device retries the shared stack, then falls back to
				// its own metadata heuristic reading its own screen.
				cfg.RetryAttempts = 3
				cfg.Fallbacks = []detect.Detector{&frauddroid.ViewAdapter{
					Screen: func() *uikit.Screen { return screen },
				}}
			}
			svc := core.Start(clock, mgr, shared, cfg)
			clock.RunUntil(time.Duration(minutes) * time.Minute)
			monkey.Stop()
			svc.Stop()
			a.Stop()
			results[d] = deviceResult{stats: svc.Stats(), popups: len(a.History())}
		}(d)
	}
	wg.Wait()
	shared.Close()
	if cached != nil {
		cached.PublishStats(rec)
	}

	fmt.Printf("\n--- fleet: %d devices x %d simulated minute(s) ---\n", devices, minutes)
	fmt.Printf("%-8s %8s %10s %8s %8s\n", "device", "events", "analyses", "AUIs", "popups")
	var agg core.Stats
	for d, r := range results {
		fmt.Printf("%-8d %8d %10d %8d %8d\n", d, r.stats.EventsSeen, r.stats.Analyses, r.stats.AUIFlagged, r.popups)
		agg.EventsSeen += r.stats.EventsSeen
		agg.Debounced += r.stats.Debounced
		agg.Analyses += r.stats.Analyses
		agg.AUIFlagged += r.stats.AUIFlagged
		agg.DecorationsDrawn += r.stats.DecorationsDrawn
		agg.Superseded += r.stats.Superseded
		agg.TimedOut += r.stats.TimedOut
		agg.Degraded += r.stats.Degraded
		agg.Retried += r.stats.Retried
		agg.FellBack += r.stats.FellBack
		for i := range agg.Stages {
			agg.Stages[i].Runs += r.stats.Stages[i].Runs
		}
	}
	st := shared.Stats()
	fmt.Printf("\nfleet totals: %d events, %d debounced, %d analyses (%d superseded, %d timed out), %d AUIs flagged, %d decorations\n",
		agg.EventsSeen, agg.Debounced, agg.Analyses, agg.Superseded, agg.TimedOut, agg.AUIFlagged, agg.DecorationsDrawn)
	fmt.Printf("scheduler:    %d forwards for %d screens (max batch %d, max queue %d, %d cancelled in queue)\n",
		st.Batches, st.Items, st.MaxBatchSize, st.MaxQueueDepth, st.Cancelled)
	if cached != nil {
		fmt.Printf("shared cache: %.0f%% hit rate (%d hits / %d misses, %d shards)\n",
			100*cached.HitRate(), cached.Hits(), cached.Misses(), cached.ShardCount())
	}
	if plan != nil {
		fmt.Printf("chaos:        %s\n", plan)
		fmt.Printf("resilience:   %d retries, %d fallback-served, %d degraded; scheduler isolated %d poison batches, %d failed requests\n",
			agg.Retried, agg.FellBack, agg.Degraded, st.Poisoned, st.Failed)
		printServedRate(agg)
	}
	fmt.Printf("serving:      %s\n", rec.String())
}

// printServedRate reports what fraction of the screens that reached the
// infer decision still produced a full analysis — directly or via
// retry/fallback — rather than degrading. Superseded and timed-out cycles
// are the caller's doing and excluded from the denominator.
func printServedRate(st core.Stats) {
	served := st.Stages[core.StageAct].Runs
	eligible := served + st.Degraded
	if eligible == 0 {
		return
	}
	fmt.Printf("screens served under chaos:  %d/%d (%.1f%%)\n",
		served, eligible, 100*float64(served)/float64(eligible))
}

// chaosPlan assembles the fault-injection plan from the -chaos* flags, or
// returns nil when every knob is off. Rules are first-match-wins per call:
// deterministic panics take precedence, then errors, corruptions, and
// latency spikes.
func chaosPlan(errRate float64, latency time.Duration, panicEvery int, corruptRate float64, seed int64) *faults.Plan {
	var rules []faults.Rule
	if panicEvery > 0 {
		rules = append(rules, faults.Rule{Stage: "backend", Kind: faults.Panic, Every: panicEvery})
	}
	if errRate > 0 {
		rules = append(rules, faults.Rule{Stage: "backend", Kind: faults.Error, Rate: errRate})
	}
	if corruptRate > 0 {
		rules = append(rules, faults.Rule{Stage: "backend", Kind: faults.Corrupt, Rate: corruptRate})
	}
	if latency > 0 {
		rules = append(rules, faults.Rule{Stage: "backend", Kind: faults.Latency, Rate: 0.1, Latency: latency})
	}
	if len(rules) == 0 {
		return nil
	}
	return faults.NewPlan(seed, rules...)
}
