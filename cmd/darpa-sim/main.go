// Command darpa-sim runs the end-to-end simulation: a handset with a
// simulated app popping asymmetric dark UIs, a Monkey tapping at random, and
// DARPA monitoring through the accessibility layer, detecting AUIs and
// decorating (or auto-bypassing) them. It prints a timeline of what
// happened and can dump annotated screenshots.
//
// Usage:
//
//	darpa-sim [-minutes 2] [-weights weights] [-bypass] [-obfuscate] [-shots dir] [-detector yolite]
package main

import (
	"flag"
	"fmt"
	"image/png"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/a11y"
	"repro/internal/app"
	"repro/internal/auigen"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/sim"
	"repro/internal/uikit"
)

func main() {
	log.SetFlags(0)
	minutes := flag.Int("minutes", 2, "simulated minutes to run")
	weights := flag.String("weights", "weights", "pretrained weights directory")
	bypass := flag.Bool("bypass", false, "auto-click detected UPOs instead of only decorating")
	obfuscate := flag.Bool("obfuscate", false, "app obfuscates its resource ids")
	shots := flag.String("shots", "", "directory to dump annotated screenshots to")
	detector := flag.String("detector", "yolite", "registry backend to run the service with")
	flag.Parse()

	clock := sim.NewClock(42)
	screen := uikit.NewScreen(384, 640)
	mgr := a11y.NewManager(clock, screen)

	model, err := detect.Build(*detector, detect.BuildContext{
		WeightsDir: *weights,
		Samples: func() []*dataset.Sample {
			log.Printf("no pretrained weights in %s; training a quick model...", *weights)
			return auigen.BuildAUISamples(1, 96, auigen.DatasetConfig{})
		},
		Epochs: 10,
		Screen: func() *uikit.Screen { return screen },
		Logf:   log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	a := app.Launch(clock, mgr, app.Config{
		Package:         "com.example.shop",
		MeanAUIInterval: 10 * time.Second,
		Obfuscate:       *obfuscate,
	})
	monkey := app.StartMonkey(clock, mgr, "monkey", 2*time.Second)

	shotIdx := 0
	svc := core.Start(clock, mgr, model, core.Config{AutoBypass: *bypass})
	svc.OnAnalysis = func(an core.Analysis) {
		if len(an.Detections) == 0 {
			return
		}
		fmt.Printf("[%8v] AUI detected on %s:\n", an.At.Round(time.Millisecond), an.Package)
		for _, d := range an.Detections {
			cls := "AGO"
			if d.Class == dataset.ClassUPO {
				cls = "UPO"
			}
			fmt.Printf("             %s at %v (confidence %.2f)\n", cls, d.B.Rect(), d.Score)
		}
		if *shots != "" {
			// Render the decorated screen (decorations are already up).
			c := screen.Render()
			name := filepath.Join(*shots, fmt.Sprintf("detect_%02d.png", shotIdx))
			shotIdx++
			f, err := os.Create(name)
			if err == nil {
				_ = png.Encode(f, c.Image())
				f.Close()
				fmt.Printf("             screenshot -> %s\n", name)
			}
		}
	}

	if *shots != "" {
		if err := os.MkdirAll(*shots, 0o755); err != nil {
			log.Fatalf("creating %s: %v", *shots, err)
		}
	}
	clock.RunUntil(time.Duration(*minutes) * time.Minute)
	monkey.Stop()
	svc.Stop()
	a.Stop()

	st := svc.Stats()
	fmt.Printf("\n--- %d simulated minute(s) ---\n", *minutes)
	fmt.Printf("accessibility events seen:   %d\n", st.EventsSeen)
	fmt.Printf("debounced (work avoided):    %d\n", st.Debounced)
	fmt.Printf("screens analysed:            %d\n", st.Analyses)
	fmt.Printf("AUIs flagged:                %d\n", st.AUIFlagged)
	fmt.Printf("decorations drawn:           %d\n", st.DecorationsDrawn)
	fmt.Printf("auto-bypass clicks:          %d\n", st.Bypasses)
	fmt.Printf("screenshot buffers rinsed:   %d\n", st.Rinses)
	fmt.Printf("pipeline stage times:        %s\n", svc.Timings())
	shown := a.History()
	byClick := 0
	for _, h := range shown {
		if h.DismissedByClick {
			byClick++
		}
	}
	fmt.Printf("AUI popups shown by the app: %d (%d dismissed by click)\n", len(shown), byClick)
}
