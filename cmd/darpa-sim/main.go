// Command darpa-sim runs the end-to-end simulation: a handset with a
// simulated app popping asymmetric dark UIs, a Monkey tapping at random, and
// DARPA monitoring through the accessibility layer, detecting AUIs and
// decorating (or auto-bypassing) them. It prints a timeline of what
// happened and can dump annotated screenshots.
//
// Usage:
//
//	darpa-sim [-minutes 2] [-weights weights] [-bypass] [-obfuscate] [-shots dir] [-detector yolite] [-fleet N]
//
// With -fleet N > 1 the single-handset timeline is replaced by the
// event-driven fleet simulator (internal/fleet): N devices' event arrivals,
// debounce timers and popup dwells are heap events on one virtual clock, and
// only real inference rides goroutines — through one shared serving stack
// (admission → scheduler → replica pool over per-replica result caches) — so
// one machine simulates 100k+ devices. Traffic can be shaped (-shape
// steady|diurnal|spike), replayed exactly (-fleet-seed), exported as
// Prometheus text + JSON (-metrics-out), and swept across fleet sizes
// (-fleet-sweep, -bench-out).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"image/png"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/app"
	"repro/internal/auigen"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/frauddroid"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/uikit"
)

func main() {
	log.SetFlags(0)
	minutes := flag.Int("minutes", 2, "simulated minutes to run")
	weights := flag.String("weights", "weights", "pretrained weights directory")
	bypass := flag.Bool("bypass", false, "auto-click detected UPOs instead of only decorating")
	obfuscate := flag.Bool("obfuscate", false, "app obfuscates its resource ids")
	shots := flag.String("shots", "", "directory to dump annotated screenshots to")
	detector := flag.String("detector", "yolite", "registry backend to run the service with")
	fleetN := flag.Int("fleet", 1, "simulated devices on one event-driven clock (1 = classic single-handset run)")
	replicas := flag.Int("replicas", 1, "independent model replicas behind the fleet's shared scheduler")
	tenants := flag.Int("tenants", 1, "tenant identities the fleet's devices are spread across (tenant0 is live-priority, the rest batch-priority)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admission rate limit in requests/sec (0 = unlimited)")
	shedDepth := flag.Int("shed-depth", 0, "shed requests once the scheduler queues hold this many (0 = never shed)")
	deadline := flag.Duration("deadline", 0, "single-handset: per-analysis wall-clock deadline (0 = none); expired cycles abort mid-forward and skip decoration")
	fleetSeed := flag.Int64("fleet-seed", 42, "fleet: run seed; equal seeds replay identically")
	eventsPerMin := flag.Float64("events-per-min", fleet.DefaultEventsPerMinute, "fleet: per-device accessibility events per minute before shaping")
	shape := flag.String("shape", fleet.ShapeSteady, "fleet: traffic shape (steady|diurnal|spike)")
	metricsOut := flag.String("metrics-out", "", "fleet: write the run's metric families to <path>.prom and <path>.json")
	fleetSweep := flag.String("fleet-sweep", "", "fleet: comma-separated device counts to sweep (e.g. 1000,10000,100000)")
	benchOut := flag.String("bench-out", "", "fleet sweep: write the devices-vs-throughput table to this JSON file")
	chaos := flag.Float64("chaos", 0, "inject detector errors at this rate (0-1); enables the resilient path (retry + frauddroid fallback)")
	chaosLatency := flag.Duration("chaos-latency", 0, "inject latency spikes of this size on ~10% of detector calls")
	chaosPanic := flag.Int("chaos-panic", 0, "panic inside the detector on every Nth call (0 = never)")
	chaosCorrupt := flag.Float64("chaos-corrupt", 0, "corrupt detector results (NaN boxes, out-of-range scores) at this rate")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the fault-injection plan's RNG")
	flag.Parse()

	plan := chaosPlan(*chaos, *chaosLatency, *chaosPanic, *chaosCorrupt, *chaosSeed)

	// The single handset is assembled first in both modes: its screen anchors
	// the detector build context (train-if-cold renders against it), and in
	// fleet mode only the build context's closure is unused.
	var h *fleet.Handset
	bctx := detect.BuildContext{
		WeightsDir: *weights,
		Samples: func() []*dataset.Sample {
			log.Printf("no pretrained weights in %s; training a quick model...", *weights)
			return auigen.BuildAUISamples(1, 96, auigen.DatasetConfig{})
		},
		Epochs: 10,
		Screen: func() *uikit.Screen { return h.Screen },
		Logf:   log.Printf,
	}

	if *fleetSweep != "" || *fleetN > 1 {
		// Train-if-cold happens once; replica builds after the first are
		// warm weight loads producing independent model instances.
		bctx.SaveWeights = true
		bctx.Screen = nil
		reps, err := detect.BuildReplicas(*detector, bctx, *replicas)
		if err != nil {
			log.Fatal(err)
		}
		cfg := fleet.Config{
			Devices:         *fleetN,
			Duration:        time.Duration(*minutes) * time.Minute,
			Seed:            *fleetSeed,
			EventsPerMinute: *eventsPerMin,
			Shape:           *shape,
			Bypass:          *bypass,
			Tenants:         *tenants,
			TenantRate:      *tenantRate,
			ShedDepth:       *shedDepth,
			Plan:            plan,
			Logf:            log.Printf,
		}
		if *fleetSweep != "" {
			runFleetSweep(reps, cfg, *fleetSweep, *benchOut)
			return
		}
		res, err := fleet.Run(cfg, reps)
		if err != nil {
			log.Fatal(err)
		}
		printFleet(res, plan)
		if *metricsOut != "" {
			if err := dumpMetrics(*metricsOut, res.Families()); err != nil {
				log.Fatal(err)
			}
		}
		return
	}

	svcCfg := core.Config{AutoBypass: *bypass, Deadline: *deadline}
	if plan != nil {
		// Chaos mode: faults hit the primary backend; the service retries it,
		// then falls back to the metadata heuristic reading the same screen.
		svcCfg.RetryAttempts = 3
		svcCfg.Fallbacks = []detect.Detector{&frauddroid.ViewAdapter{
			Screen: func() *uikit.Screen { return h.Screen },
		}}
	}
	h = fleet.NewHandset(fleet.HandsetConfig{
		Seed: 42,
		App: app.Config{
			Package:         "com.example.shop",
			MeanAUIInterval: 10 * time.Second,
			Obfuscate:       *obfuscate,
		},
		Service: svcCfg,
	})
	model, err := detect.Build(*detector, bctx)
	if err != nil {
		log.Fatal(err)
	}
	svcModel := model
	if plan != nil {
		svcModel = faults.WrapStage(model, plan, "backend")
	}
	shotIdx := 0
	svc := h.Start(svcModel)
	svc.OnAnalysis = func(an core.Analysis) {
		if len(an.Detections) == 0 {
			return
		}
		fmt.Printf("[%8v] AUI detected on %s:\n", an.At.Round(time.Millisecond), an.Package)
		for _, d := range an.Detections {
			cls := "AGO"
			if d.Class == dataset.ClassUPO {
				cls = "UPO"
			}
			fmt.Printf("             %s at %v (confidence %.2f)\n", cls, d.B.Rect(), d.Score)
		}
		if *shots != "" {
			// Render the decorated screen (decorations are already up).
			c := h.Screen.Render()
			name := filepath.Join(*shots, fmt.Sprintf("detect_%02d.png", shotIdx))
			shotIdx++
			f, err := os.Create(name)
			if err == nil {
				_ = png.Encode(f, c.Image())
				f.Close()
				fmt.Printf("             screenshot -> %s\n", name)
			}
		}
	}

	if *shots != "" {
		if err := os.MkdirAll(*shots, 0o755); err != nil {
			log.Fatalf("creating %s: %v", *shots, err)
		}
	}
	h.Run(time.Duration(*minutes) * time.Minute)
	h.Stop()

	st := svc.Stats()
	fmt.Printf("\n--- %d simulated minute(s) ---\n", *minutes)
	fmt.Printf("accessibility events seen:   %d\n", st.EventsSeen)
	fmt.Printf("debounced (work avoided):    %d\n", st.Debounced)
	fmt.Printf("screens analysed:            %d\n", st.Analyses)
	fmt.Printf("analyses superseded:         %d\n", st.Superseded)
	fmt.Printf("analyses timed out:          %d\n", st.TimedOut)
	fmt.Printf("AUIs flagged:                %d\n", st.AUIFlagged)
	fmt.Printf("decorations drawn:           %d\n", st.DecorationsDrawn)
	fmt.Printf("auto-bypass clicks:          %d\n", st.Bypasses)
	fmt.Printf("screenshot buffers rinsed:   %d\n", st.Rinses)
	if plan != nil {
		fmt.Printf("degraded (no detector):      %d\n", st.Degraded)
		fmt.Printf("detector retries:            %d\n", st.Retried)
		fmt.Printf("fallback served:             %d\n", st.FellBack)
		fmt.Printf("faults injected:             %s\n", plan)
		printServedRate(st)
	}
	fmt.Printf("pipeline stage times:        %s\n", svc.Timings())
	shown := h.App.History()
	byClick := 0
	for _, hist := range shown {
		if hist.DismissedByClick {
			byClick++
		}
	}
	fmt.Printf("AUI popups shown by the app: %d (%d dismissed by click)\n", len(shown), byClick)
}

// printFleet renders one fleet run's ledger.
func printFleet(res *fleet.Result, plan *faults.Plan) {
	fmt.Printf("\n--- fleet: %d devices x %v simulated (%s traffic, seed %d) ---\n",
		res.Devices, res.Duration, shapeOrSteady(res.Shape), res.Seed)
	fmt.Printf("events:       %d seen, %d debounced (work avoided)\n", res.Events, res.Debounced)
	fmt.Printf("analyses:     %d completed, %d superseded, %d rate-limited, %d shed, %d degraded\n",
		res.Analyses, res.Superseded, res.RateLimited, res.Shed, res.Degraded)
	fmt.Printf("AUIs:         %d popups shown, %d flagged analyses, %d auto-bypassed\n",
		res.Popups, res.Flagged, res.Bypassed)
	st := res.Serve
	fmt.Printf("admission:    %d offered = %d admitted + %d shed + %d rejected (%d tenants)\n",
		st.Offered, st.Admitted, st.Shed, st.Rejected, len(st.Tenants))
	fmt.Printf("scheduler:    %d forwards for %d screens (max batch %d, max queue %d, %d cancelled in queue)\n",
		st.Batches, st.Items, st.MaxBatchSize, st.MaxQueueDepth, st.Cancelled)
	for _, r := range st.Replicas {
		fmt.Printf("replica %-2d    %d screens in %d forwards, %v busy, %d failed, %d bench trips\n",
			r.ID, r.Items, r.Batches, r.Busy.Round(time.Millisecond), r.Failed, r.BenchTrips)
	}
	if res.CacheHits+res.CacheMisses > 0 {
		rate := float64(res.CacheHits) / float64(res.CacheHits+res.CacheMisses)
		fmt.Printf("result cache: %.0f%% hit rate (%d hits / %d misses)\n", 100*rate, res.CacheHits, res.CacheMisses)
	}
	if plan != nil {
		fmt.Printf("chaos:        %s (%d poison batches, %d failed requests isolated)\n", plan, st.Poisoned, st.Failed)
	}
	rps := 0.0
	if res.Wall > 0 {
		rps = float64(res.Analyses) / res.Wall.Seconds()
	}
	fmt.Printf("throughput:   %.0f analyses/s over %v wall (%0.fx real time)\n",
		rps, res.Wall.Round(time.Millisecond), res.Duration.Seconds()/res.Wall.Seconds())
	if res.Timings != nil {
		fmt.Printf("serving:      %s\n", res.Timings.String())
	}
}

func shapeOrSteady(s string) string {
	if s == "" {
		return fleet.ShapeSteady
	}
	return s
}

// benchPoint is one sweep entry in the -bench-out JSON.
type benchPoint struct {
	Devices       int     `json:"devices"`
	SimSeconds    float64 `json:"sim_seconds"`
	WallSeconds   float64 `json:"wall_seconds"`
	Events        int     `json:"events"`
	Analyses      int     `json:"analyses"`
	Superseded    int     `json:"superseded"`
	Popups        int     `json:"popups"`
	ThroughputRPS float64 `json:"throughput_rps"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	Speedup       float64 `json:"sim_over_wall"`
}

// runFleetSweep runs the fleet at each requested size (reusing the built
// replicas) and writes the devices-vs-throughput table.
func runFleetSweep(reps []detect.Detector, cfg fleet.Config, sweep, benchOut string) {
	var points []benchPoint
	for _, field := range strings.Split(sweep, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n < 1 {
			log.Fatalf("bad -fleet-sweep entry %q", field)
		}
		c := cfg
		c.Devices = n
		c.Timings = &perfmodel.Timings{} // fresh recorder per point
		res, err := fleet.Run(c, reps)
		if err != nil {
			log.Fatal(err)
		}
		printFleet(res, cfg.Plan)
		p := benchPoint{
			Devices:     res.Devices,
			SimSeconds:  res.Duration.Seconds(),
			WallSeconds: res.Wall.Seconds(),
			Events:      res.Events,
			Analyses:    res.Analyses,
			Superseded:  res.Superseded,
			Popups:      res.Popups,
		}
		if res.Wall > 0 {
			p.ThroughputRPS = float64(res.Analyses) / res.Wall.Seconds()
			p.Speedup = res.Duration.Seconds() / res.Wall.Seconds()
		}
		if res.CacheHits+res.CacheMisses > 0 {
			p.CacheHitRate = float64(res.CacheHits) / float64(res.CacheHits+res.CacheMisses)
		}
		points = append(points, p)
	}
	if benchOut == "" {
		return
	}
	doc := struct {
		Bench  string       `json:"bench"`
		Shape  string       `json:"shape"`
		Seed   int64        `json:"seed"`
		Points []benchPoint `json:"points"`
	}{Bench: "fleet", Shape: shapeOrSteady(cfg.Shape), Seed: cfg.Seed, Points: points}
	f, err := os.Create(benchOut)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("fleet sweep written to %s (%d points)", benchOut, len(points))
}

// dumpMetrics writes the families as Prometheus text (<path>.prom) and JSON
// (<path>.json).
func dumpMetrics(path string, fams []metrics.Family) error {
	prom, err := os.Create(path + ".prom")
	if err != nil {
		return err
	}
	if err := metrics.WriteText(prom, fams); err != nil {
		prom.Close()
		return err
	}
	if err := prom.Close(); err != nil {
		return err
	}
	jf, err := os.Create(path + ".json")
	if err != nil {
		return err
	}
	if err := metrics.WriteJSON(jf, fams); err != nil {
		jf.Close()
		return err
	}
	return jf.Close()
}

// printServedRate reports what fraction of the screens that reached the
// infer decision still produced a full analysis — directly or via
// retry/fallback — rather than degrading. Superseded and timed-out cycles
// are the caller's doing and excluded from the denominator.
func printServedRate(st core.Stats) {
	served := st.Stages[core.StageAct].Runs
	eligible := served + st.Degraded
	if eligible == 0 {
		return
	}
	fmt.Printf("screens served under chaos:  %d/%d (%.1f%%)\n",
		served, eligible, 100*float64(served)/float64(eligible))
}

// chaosPlan assembles the fault-injection plan from the -chaos* flags, or
// returns nil when every knob is off. Rules are first-match-wins per call:
// deterministic panics take precedence, then errors, corruptions, and
// latency spikes.
func chaosPlan(errRate float64, latency time.Duration, panicEvery int, corruptRate float64, seed int64) *faults.Plan {
	var rules []faults.Rule
	if panicEvery > 0 {
		rules = append(rules, faults.Rule{Stage: "backend", Kind: faults.Panic, Every: panicEvery})
	}
	if errRate > 0 {
		rules = append(rules, faults.Rule{Stage: "backend", Kind: faults.Error, Rate: errRate})
	}
	if corruptRate > 0 {
		rules = append(rules, faults.Rule{Stage: "backend", Kind: faults.Corrupt, Rate: corruptRate})
	}
	if latency > 0 {
		rules = append(rules, faults.Rule{Stage: "backend", Kind: faults.Latency, Rate: 0.1, Latency: latency})
	}
	if len(rules) == 0 {
		return nil
	}
	return faults.NewPlan(seed, rules...)
}
