// Command auigen renders synthetic AUI and non-AUI screens to PNG files
// with a JSON annotation index (COCO-style absolute-pixel boxes), for
// inspecting the dataset the detectors train on.
//
// Usage:
//
//	auigen -out dataset-dump [-n 20] [-negatives 5] [-mask] [-cjk] [-obfuscate]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"image/png"
	"log"
	"os"
	"path/filepath"

	"repro/internal/auigen"
	"repro/internal/dataset"
)

// annotation is the JSON record for one generated screen.
type annotation struct {
	File    string `json:"file"`
	IsAUI   bool   `json:"is_aui"`
	Subject string `json:"subject,omitempty"`
	Boxes   []box  `json:"boxes,omitempty"`
}

type box struct {
	Class string  `json:"class"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	W     float64 `json:"w"`
	H     float64 `json:"h"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("auigen: ")
	out := flag.String("out", "dataset-dump", "output directory")
	n := flag.Int("n", 20, "number of AUI screens")
	negatives := flag.Int("negatives", 5, "number of non-AUI screens")
	seed := flag.Int64("seed", 1, "generator seed")
	mask := flag.Bool("mask", false, "blur label texts (Table IV variant)")
	cjk := flag.Bool("cjk", false, "CJK labels")
	obfuscate := flag.Bool("obfuscate", false, "obfuscate resource ids")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("creating %s: %v", *out, err)
	}
	cfg := auigen.DatasetConfig{
		MaskText: *mask,
		Gen:      auigen.Config{CJK: *cjk, ObfuscateIDs: *obfuscate},
	}
	var anns []annotation

	writePNG := func(name string, s *dataset.Sample) {
		f, err := os.Create(filepath.Join(*out, name))
		if err != nil {
			log.Fatalf("creating %s: %v", name, err)
		}
		if err := png.Encode(f, s.Input.Image()); err != nil {
			log.Fatalf("encoding %s: %v", name, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("closing %s: %v", name, err)
		}
		ann := annotation{File: name, IsAUI: s.IsAUI}
		if s.IsAUI {
			ann.Subject = s.Subject.String()
		}
		for _, b := range s.Boxes {
			ann.Boxes = append(ann.Boxes, box{Class: b.Class.String(), X: b.B.X, Y: b.B.Y, W: b.B.W, H: b.B.H})
		}
		anns = append(anns, ann)
	}

	for i, s := range auigen.BuildAUISamples(*seed, *n, cfg) {
		writePNG(fmt.Sprintf("aui_%03d.png", i), s)
	}
	for i, s := range auigen.BuildNegativeSamples(*seed+999, *negatives, cfg) {
		writePNG(fmt.Sprintf("non_aui_%03d.png", i), s)
	}

	idx, err := json.MarshalIndent(anns, "", "  ")
	if err != nil {
		log.Fatalf("marshalling annotations: %v", err)
	}
	idxPath := filepath.Join(*out, "annotations.json")
	if err := os.WriteFile(idxPath, idx, 0o644); err != nil {
		log.Fatalf("writing %s: %v", idxPath, err)
	}
	log.Printf("wrote %d screens + %s", len(anns), idxPath)
}
