// Command darpa-eval evaluates the detectors on the held-out test split and
// prints Tables III-V (the accuracy experiments) without running the
// device-level simulations.
//
// Usage:
//
//	darpa-eval [-quick] [-weights weights] [-iou 0.9] [-detector yolite-int8] [-batch 8] [-list]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/yolite"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("darpa-eval: ")
	quick := flag.Bool("quick", false, "reduced dataset/epochs")
	weights := flag.String("weights", "weights", "pretrained weights directory")
	iou := flag.Float64("iou", 0.9, "IoU matching threshold")
	detector := flag.String("detector", "yolite-int8", "registry backend to evaluate (see -list)")
	batch := flag.Int("batch", detect.DefaultEvalBatch, "screens per inference batch (1 = per-item loop)")
	list := flag.Bool("list", false, "list registered detector backends and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(detect.Names(), "\n"))
		return
	}

	opts := []experiments.EnvOption{
		experiments.WithWeightsDir(*weights),
		experiments.WithLogf(log.Printf),
	}
	if *quick {
		opts = append(opts, experiments.WithQuick())
	}
	env := experiments.NewEnv(opts...)

	if *iou != 0.9 || *detector != "yolite-int8" {
		// Custom threshold or backend: print a compact per-class report.
		d, err := env.Detector(*detector)
		if err != nil {
			log.Fatal(err)
		}
		// The batch path amortises the backbone across screens; -batch 1
		// falls back to the historical per-image loop.
		var eval *metrics.Evaluation
		if *batch > 1 {
			eval = detect.EvaluateBatch(d, env.Split().Test, *iou, *batch)
		} else {
			eval = yolite.Evaluate(d, env.Split().Test, *iou)
		}
		for _, cls := range []dataset.Class{dataset.ClassUPO, dataset.ClassAGO} {
			c := eval.Class(cls)
			fmt.Printf("%s %s@IoU%.2f  P=%.3f R=%.3f F1=%.3f\n", d.Name(), cls, *iou, c.Precision(), c.Recall(), c.F1())
		}
		all := eval.All()
		fmt.Printf("%s All@IoU%.2f  P=%.3f R=%.3f F1=%.3f\n", d.Name(), *iou, all.Precision(), all.Recall(), all.F1())
		return
	}
	fmt.Println(env.Table3().Format())
	fmt.Println(env.Table4().Format())
	fmt.Println(env.Table5().Format())
}
