// Command darpa-eval evaluates the detectors on the held-out test split and
// prints Tables III-V (the accuracy experiments) without running the
// device-level simulations.
//
// Usage:
//
//	darpa-eval [-quick] [-weights weights] [-iou 0.9]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/yolite"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("darpa-eval: ")
	quick := flag.Bool("quick", false, "reduced dataset/epochs")
	weights := flag.String("weights", "weights", "pretrained weights directory")
	iou := flag.Float64("iou", 0.9, "IoU matching threshold")
	flag.Parse()

	opts := []experiments.EnvOption{
		experiments.WithWeightsDir(*weights),
		experiments.WithLogf(log.Printf),
	}
	if *quick {
		opts = append(opts, experiments.WithQuick())
	}
	env := experiments.NewEnv(opts...)

	if *iou != 0.9 {
		// Custom threshold: print a compact per-class report.
		eval := yolite.Evaluate(env.Device(), env.Split().Test, *iou)
		for _, cls := range []dataset.Class{dataset.ClassUPO, dataset.ClassAGO} {
			c := eval.Class(cls)
			fmt.Printf("%s@IoU%.2f  P=%.3f R=%.3f F1=%.3f\n", cls, *iou, c.Precision(), c.Recall(), c.F1())
		}
		all := eval.All()
		fmt.Printf("All@IoU%.2f  P=%.3f R=%.3f F1=%.3f\n", *iou, all.Precision(), all.Recall(), all.F1())
		return
	}
	fmt.Println(env.Table3().Format())
	fmt.Println(env.Table4().Format())
	fmt.Println(env.Table5().Format())
}
