// Command darpa-eval evaluates the detectors on the held-out test split and
// prints Tables III-V (the accuracy experiments) without running the
// device-level simulations.
//
// Usage:
//
//	darpa-eval [-quick] [-weights weights] [-iou 0.9] [-detector yolite-int8] [-batch 8] [-list]
//	darpa-eval -attack [-attack-seed 7002] [-write-corpus] [-attack-out BENCH_adversary.json]
//	darpa-eval -attack-smoke
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/adversary"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/yolite"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("darpa-eval: ")
	quick := flag.Bool("quick", false, "reduced dataset/epochs")
	weights := flag.String("weights", "weights", "pretrained weights directory")
	iou := flag.Float64("iou", 0.9, "IoU matching threshold")
	detector := flag.String("detector", "yolite-int8", "registry backend to evaluate (see -list)")
	batch := flag.Int("batch", detect.DefaultEvalBatch, "screens per inference batch (1 = per-item loop)")
	list := flag.Bool("list", false, "list registered detector backends and exit")
	attack := flag.Bool("attack", false, "run the adversarial sweep: search, mine, recall-under-attack, harden")
	attackSmoke := flag.Bool("attack-smoke", false, "seeded 30-iteration attack replay check (CI smoke)")
	attackSeed := flag.Int64("attack-seed", 7002, "master seed for the adversarial sweep")
	attackIters := flag.Int("attack-iters", 40, "hill-climb iterations per restart")
	attackRestarts := flag.Int("attack-restarts", 3, "seeded restarts of the attack search")
	attackScreens := flag.Int("attack-screens", 6, "screens guiding the search objective")
	attackEval := flag.Int("attack-eval", 80, "held-out screens per recall-under-attack condition")
	attackCorpus := flag.Int("attack-corpus", 64, "candidate seeds mined into the corpus")
	// The attack eval matches at IoU 0.5 rather than the paper's 0.9: the
	// knob attack legally moves and resizes the ground-truth boxes, so 0.9
	// would measure pixel-perfect localisation of perturbed geometry instead
	// of the question that matters here — does the detector still fire on
	// the dark pattern at all.
	attackIoU := flag.Float64("attack-iou", 0.5, "IoU matching threshold for the adversarial eval")
	attackOut := flag.String("attack-out", "BENCH_adversary.json", "adversarial benchmark output (empty = skip)")
	corpusPath := flag.String("corpus-path", adversary.DefaultCorpusPath, "mined corpus location")
	writeCorpus := flag.Bool("write-corpus", false, "overwrite the checked-in corpus with this run's mine")
	attackSkipRCNN := flag.Bool("attack-skip-rcnn", false, "leave the RCNN baseline out of the vote (faster)")
	hardenEpochs := flag.Int("harden-epochs", 20, "adversarial fine-tune epochs")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(detect.Names(), "\n"))
		return
	}
	// The attack modes build their own backends and screens; they run before
	// NewEnv, which would eagerly generate the full 1072-sample dataset.
	if *attackSmoke {
		runAttackSmoke(*weights, *attackSeed)
		return
	}
	if *attack {
		runAttack(attackFlags{
			seed: *attackSeed, iters: *attackIters, restarts: *attackRestarts,
			screens: *attackScreens, evalN: *attackEval, corpusN: *attackCorpus,
			iou: *attackIoU, weights: *weights, out: *attackOut, corpusPath: *corpusPath,
			writeCorpus: *writeCorpus, skipRCNN: *attackSkipRCNN, hardenEpochs: *hardenEpochs,
		})
		return
	}

	opts := []experiments.EnvOption{
		experiments.WithWeightsDir(*weights),
		experiments.WithLogf(log.Printf),
	}
	if *quick {
		opts = append(opts, experiments.WithQuick())
	}
	env := experiments.NewEnv(opts...)

	if *iou != 0.9 || *detector != "yolite-int8" {
		// Custom threshold or backend: print a compact per-class report.
		d, err := env.Detector(*detector)
		if err != nil {
			log.Fatal(err)
		}
		// The batch path amortises the backbone across screens; -batch 1
		// falls back to the historical per-image loop.
		var eval *metrics.Evaluation
		if *batch > 1 {
			eval = detect.EvaluateBatch(d, env.Split().Test, *iou, *batch)
		} else {
			eval = yolite.Evaluate(d, env.Split().Test, *iou)
		}
		for _, cls := range []dataset.Class{dataset.ClassUPO, dataset.ClassAGO} {
			c := eval.Class(cls)
			fmt.Printf("%s %s@IoU%.2f  P=%.3f R=%.3f F1=%.3f\n", d.Name(), cls, *iou, c.Precision(), c.Recall(), c.F1())
		}
		all := eval.All()
		fmt.Printf("%s All@IoU%.2f  P=%.3f R=%.3f F1=%.3f\n", d.Name(), *iou, all.Precision(), all.Recall(), all.F1())
		return
	}
	fmt.Println(env.Table3().Format())
	fmt.Println(env.Table4().Format())
	fmt.Println(env.Table5().Format())
}
