package main

// The -attack sweep: search for an evasive knob vector against yolite, mine
// a corpus, measure recall under attack for every backend plus the majority
// vote, fine-tune a hardened model on the corpus, and write
// BENCH_adversary.json. The whole sweep regenerates from -attack-seed.
//
// Seed protocol (all derived from -attack-seed S):
//
//	search screens   S+1   .. S+screens     guide the hill-climb
//	corpus seeds     S+200 .. S+200+corpus  mined into the fine-tune set
//	eval seeds       S+500 .. S+500+eval    held out from both of the above
//
// The attack transfers to the eval screens only through the knob vector, and
// the hardened model never sees an eval screen — the honest version of the
// claim "the defense recovers recall".

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"reflect"
	"strings"

	"repro/internal/adversary"
	"repro/internal/auigen"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/uikit"
	"repro/internal/yolite"
)

type attackFlags struct {
	seed         int64
	iters        int
	restarts     int
	screens      int
	evalN        int
	corpusN      int
	iou          float64
	weights      string
	out          string
	corpusPath   string
	writeCorpus  bool
	skipRCNN     bool
	hardenEpochs int
}

func seedRange(start int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)
	}
	return out
}

// attackPool lazily builds the training pool backends fall back to when no
// pretrained weights exist (and the pool the RCNN vote member trains on).
func attackPool(cfg auigen.DatasetConfig) func() []*dataset.Sample {
	var pool []*dataset.Sample
	return func() []*dataset.Sample {
		if pool == nil {
			pool = auigen.BuildAUISamples(experiments.DatasetSeed, 240, cfg)
			n := int(float64(len(pool)) * experiments.NegativeFraction)
			pool = append(pool, auigen.BuildNegativeSamples(experiments.DatasetSeed+1, n, cfg)...)
		}
		return pool
	}
}

// runAttackSmoke is the CI smoke: a seeded 30-iteration attack against
// yolite must strictly decrease confidence, replay bit-identically under the
// same seed, and diverge under a different seed. Exits nonzero on any miss.
func runAttackSmoke(weights string, seed int64) {
	cfg := experiments.DataConfig()
	bctx := detect.BuildContext{
		WeightsDir: weights,
		Samples:    attackPool(cfg),
		Epochs:     10,
		Seed:       experiments.ModelSeed,
		Logf:       log.Printf,
	}
	yl, err := detect.Build("yolite", bctx)
	if err != nil {
		log.Fatalf("building yolite: %v", err)
	}
	scfg := adversary.Config{
		Seed: seed, Restarts: 1, Iterations: 30,
		Screens: seedRange(seed+1, 3), Data: cfg, Detector: yl,
	}
	r1 := adversary.Search(scfg)
	r2 := adversary.Search(scfg)
	if !reflect.DeepEqual(r1, r2) {
		log.Fatalf("replay mismatch: same seed %d produced different trajectories", seed)
	}
	scfg.Seed = seed + 1
	r3 := adversary.Search(scfg)
	if reflect.DeepEqual(r1.Trajectories, r3.Trajectories) {
		log.Fatalf("seeds %d and %d produced identical trajectories", seed, seed+1)
	}
	if !(r1.BestConfidence < r1.Clean) {
		log.Fatalf("attack failed to decrease confidence: clean %.4f, best %.4f", r1.Clean, r1.BestConfidence)
	}
	fmt.Printf("attack smoke PASS: confidence %.4f -> %.4f over %d iterations, replay bit-identical, seeds diverge\n",
		r1.Clean, r1.BestConfidence, scfg.Iterations)
}

// benchAdversary is the BENCH_adversary.json shape.
type benchAdversary struct {
	Bench  string  `json:"bench"`
	Seed   int64   `json:"seed"`
	IoU    float64 `json:"iou"`
	Search struct {
		Restarts    int          `json:"restarts"`
		Iterations  int          `json:"iterations"`
		Screens     int          `json:"screens"`
		ProbeThresh float64      `json:"probe_thresh"`
		Clean       float64      `json:"clean_confidence"`
		Best        float64      `json:"best_confidence"`
		BestKnobs   auigen.Knobs `json:"best_knobs"`
		Evaluations int          `json:"evaluations"`
	} `json:"search"`
	Corpus struct {
		Path       string `json:"path"`
		Candidates int    `json:"candidates"`
		Mined      int    `json:"mined"`
	} `json:"corpus"`
	EvalScreens  int                     `json:"eval_screens"`
	HardenEpochs int                     `json:"harden_epochs"`
	Recall       []experiments.AttackRow `json:"recall"`
	// Gap accounting over the yolite -> yolite-hardened pair.
	CleanRecall    float64 `json:"clean_recall"`
	AttackedRecall float64 `json:"attacked_recall"`
	HardenedRecall float64 `json:"hardened_recall"`
	GapRecovered   float64 `json:"gap_recovered"`
	Command        string  `json:"command"`
}

func runAttack(f attackFlags) {
	cfg := experiments.DataConfig()
	var cur *uikit.Screen
	observe := func(s *uikit.Screen) { cur = s }
	bctx := detect.BuildContext{
		WeightsDir: f.weights,
		Samples:    attackPool(cfg),
		Epochs:     10,
		Seed:       experiments.ModelSeed,
		Screen:     func() *uikit.Screen { return cur },
		Logf:       log.Printf,
	}
	yl, err := detect.Build("yolite", bctx)
	if err != nil {
		log.Fatalf("building yolite: %v", err)
	}
	ylm, ok := yl.(*yolite.Model)
	if !ok {
		log.Fatalf("yolite backend is %T, cannot fine-tune", yl)
	}
	fd, err := detect.Build("frauddroid", bctx)
	if err != nil {
		log.Fatalf("building frauddroid: %v", err)
	}

	// Search.
	scfg := adversary.Config{
		Seed: f.seed, Restarts: f.restarts, Iterations: f.iters,
		Screens: seedRange(f.seed+1, f.screens), Data: cfg, Detector: yl,
		Logf: log.Printf,
	}
	log.Printf("searching: %d restarts x %d iterations over %d screens (seed %d)...",
		scfg.Restarts, scfg.Iterations, len(scfg.Screens), f.seed)
	res := adversary.Search(scfg)
	log.Printf("search done: confidence %.4f -> %.4f (%d objective evaluations)",
		res.Clean, res.BestConfidence, res.Evaluations)

	// Mine the corpus.
	corpusSeeds := seedRange(f.seed+200, f.corpusN)
	corpus := adversary.Mine(scfg, res.Best, corpusSeeds, 0.10)
	log.Printf("mined %d/%d evasive-and-valid screens", len(corpus.Entries), len(corpusSeeds))
	if f.writeCorpus {
		if err := corpus.Save(f.corpusPath); err != nil {
			log.Fatalf("saving corpus: %v", err)
		}
		log.Printf("wrote %s", f.corpusPath)
	}

	// Recall under attack, per backend, on held-out screens.
	evalSeeds := seedRange(f.seed+500, f.evalN)
	clean, attacked := experiments.AttackScreenSets(evalSeeds, res.Best, cfg)
	rows := []experiments.AttackRow{
		experiments.RecallUnderAttack("yolite", yl, clean, attacked, f.iou, observe),
	}
	voteMembers := []detect.Detector{yl}
	if !f.skipRCNN {
		rc, err := detect.Build("mask-rcnn-resnet50", detect.BuildContext{
			Samples: bctx.Samples, Epochs: 4, Seed: experiments.ModelSeed, Logf: log.Printf,
		})
		if err != nil {
			log.Fatalf("building rcnn: %v", err)
		}
		rows = append(rows, experiments.RecallUnderAttack(rc.Name(), rc, clean, attacked, f.iou, observe))
		voteMembers = append(voteMembers, rc)
	}
	rows = append(rows, experiments.RecallUnderAttack("frauddroid", fd, clean, attacked, f.iou, observe))
	voteMembers = append(voteMembers, fd)
	ens := detect.WithMajorityVote(detect.VoteOptions{}, voteMembers...)
	rows = append(rows, experiments.RecallUnderAttack(ens.Name(), ens, clean, attacked, f.iou, observe))

	// Harden on the mined corpus plus the clean renders of the same seeds.
	minedSeeds := make([]int64, 0, len(corpus.Entries))
	for _, e := range corpus.Entries {
		minedSeeds = append(minedSeeds, e.Seed)
	}
	// Train against every restart's final vector, not just the single best —
	// the hardened model has to close the gap against the attack *family*,
	// and single-vector fine-tuning overfits one perturbation direction.
	attackedTrain := corpus.Screens(cfg)
	for _, traj := range res.Trajectories {
		if traj.Final == res.Best || traj.Final == (auigen.Knobs{}) {
			continue
		}
		for _, at := range adversary.EvalScreens(minedSeeds, traj.Final, cfg) {
			if at.Validate() == nil {
				attackedTrain = append(attackedTrain, at)
			}
		}
	}
	log.Printf("fine-tuning on %d attacked + %d clean screens (%d epochs)...",
		len(attackedTrain), len(minedSeeds), f.hardenEpochs)
	cleanTrain := adversary.Samples(adversary.EvalScreens(minedSeeds, auigen.Knobs{}, cfg))
	hardened, err := adversary.Harden(ylm, attackedTrain, cleanTrain, adversary.HardenConfig{
		Epochs: f.hardenEpochs, Seed: experiments.ModelSeed,
		Progress: func(ep int, l float64) {
			if ep%4 == 0 {
				log.Printf("  harden epoch %d loss %.3f", ep, l)
			}
		},
	})
	if err != nil {
		log.Fatalf("hardening: %v", err)
	}
	rows = append(rows, experiments.RecallUnderAttack("yolite-hardened", hardened, clean, attacked, f.iou, observe))

	fmt.Println(experiments.AttackTable(rows, f.iou).Format())

	yr, hr := rows[0], rows[len(rows)-1]
	gap := yr.Clean.All - yr.Attacked.All
	recovered := hr.Attacked.All - yr.Attacked.All
	frac := 0.0
	if gap > 0 {
		frac = recovered / gap
	}
	fmt.Printf("attack:  clean %.3f -> attacked %.3f (drop %.3f)\n", yr.Clean.All, yr.Attacked.All, gap)
	fmt.Printf("defense: hardened attacked recall %.3f, recovered %.0f%% of the gap (hardened clean %.3f)\n",
		hr.Attacked.All, frac*100, hr.Clean.All)
	if gap <= 0 {
		log.Printf("WARNING: attack did not reduce recall")
	}
	if frac < 0.5 {
		log.Printf("WARNING: hardening recovered < half the gap")
	}

	if f.out != "" {
		var b benchAdversary
		b.Bench = "adversary"
		b.Seed = f.seed
		b.IoU = f.iou
		b.Search.Restarts = scfg.Restarts
		b.Search.Iterations = scfg.Iterations
		b.Search.Screens = len(scfg.Screens)
		b.Search.ProbeThresh = 0.05
		b.Search.Clean = res.Clean
		b.Search.Best = res.BestConfidence
		b.Search.BestKnobs = res.Best
		b.Search.Evaluations = res.Evaluations
		b.Corpus.Path = f.corpusPath
		b.Corpus.Candidates = len(corpusSeeds)
		b.Corpus.Mined = len(corpus.Entries)
		b.EvalScreens = f.evalN
		b.HardenEpochs = f.hardenEpochs
		b.Recall = rows
		b.CleanRecall = yr.Clean.All
		b.AttackedRecall = yr.Attacked.All
		b.HardenedRecall = hr.Attacked.All
		b.GapRecovered = frac
		parts := []string{fmt.Sprintf("go run ./cmd/darpa-eval -attack -attack-seed %d", f.seed)}
		if f.skipRCNN {
			parts = append(parts, "-attack-skip-rcnn")
		}
		b.Command = strings.Join(parts, " ")
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			log.Fatalf("marshalling bench: %v", err)
		}
		if err := os.WriteFile(f.out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", f.out, err)
		}
		log.Printf("wrote %s", f.out)
	}
}
