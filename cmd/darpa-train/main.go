// Command darpa-train builds the synthetic D_aui dataset, trains the yolite
// detector (plus the text-masked variant and the RCNN baselines), and saves
// the weights under -out. The experiment harness and the examples load
// these weights instead of retraining.
//
// Usage:
//
//	darpa-train -out weights [-samples 1072] [-epochs 28] [-quick] [-skip-rcnn]
//	darpa-train -adversarial [-corpus internal/adversary/testdata/corpus.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/adversary"
	"repro/internal/auigen"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/rcnn"
	"repro/internal/yolite"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("darpa-train: ")
	out := flag.String("out", "weights", "output directory for weight files")
	samples := flag.Int("samples", auigen.PaperDatasetSize, "number of AUI screenshots to generate")
	epochs := flag.Int("epochs", 28, "training epochs")
	quick := flag.Bool("quick", false, "tiny configuration for smoke testing")
	skipRCNN := flag.Bool("skip-rcnn", false, "skip the four RCNN baselines")
	skipMasked := flag.Bool("skip-masked", false, "skip the text-masked variant")
	adversarial := flag.Bool("adversarial", false, "fine-tune on the mined attack corpus and save yolite_hardened")
	corpusPath := flag.String("corpus", adversary.DefaultCorpusPath, "mined attack corpus (used with -adversarial)")
	flag.Parse()

	if *quick {
		*samples = 80
		*epochs = 8
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("creating %s: %v", *out, err)
	}

	cfg := experiments.DataConfig()
	log.Printf("generating %d AUI samples...", *samples)
	all := auigen.BuildAUISamples(experiments.DatasetSeed, *samples, cfg)
	split := dataset.SplitSamples(all, experiments.SplitRand())
	log.Printf("split: %d train / %d val / %d test", len(split.Train), len(split.Val), len(split.Test))

	train := func(name string, samples []*dataset.Sample) *yolite.Model {
		start := time.Now()
		m := yolite.Train(samples, yolite.TrainConfig{
			Epochs: *epochs,
			Seed:   experiments.ModelSeed,
			Progress: func(e int, l float64) {
				if e%4 == 0 || e == *epochs-1 {
					log.Printf("  %s epoch %d loss %.3f", name, e, l)
				}
			},
		})
		path := filepath.Join(*out, name+".gob")
		if err := m.Save(path); err != nil {
			log.Fatalf("saving %s: %v", path, err)
		}
		ev := yolite.Evaluate(m, split.Test, 0.9)
		log.Printf("%s trained in %v — test F1@0.9 = %.3f -> %s",
			name, time.Since(start).Round(time.Second), ev.All().F1(), path)
		return m
	}

	trainSet := append(append([]*dataset.Sample{}, split.Train...), split.Val...)
	negs := auigen.BuildNegativeSamples(experiments.DatasetSeed+1,
		int(float64(len(trainSet))*experiments.NegativeFraction), cfg)
	base := train("yolite", append(append([]*dataset.Sample{}, trainSet...), negs...))

	if *adversarial {
		corpus, err := adversary.LoadCorpus(*corpusPath)
		if err != nil {
			log.Fatalf("loading corpus: %v", err)
		}
		seeds := make([]int64, 0, len(corpus.Entries))
		for _, e := range corpus.Entries {
			seeds = append(seeds, e.Seed)
		}
		log.Printf("adversarial fine-tune: %d mined screens from %s...", len(seeds), *corpusPath)
		clean := adversary.Samples(adversary.EvalScreens(seeds, auigen.Knobs{}, cfg))
		hardened, err := adversary.Harden(base, corpus.Screens(cfg), clean, adversary.HardenConfig{
			Epochs: max(8, *epochs/2),
			Seed:   experiments.ModelSeed,
			Progress: func(e int, l float64) {
				if e%4 == 0 {
					log.Printf("  yolite_hardened epoch %d loss %.3f", e, l)
				}
			},
		})
		if err != nil {
			log.Fatalf("hardening: %v", err)
		}
		path := filepath.Join(*out, "yolite_hardened.gob")
		if err := hardened.Save(path); err != nil {
			log.Fatalf("saving %s: %v", path, err)
		}
		ev := yolite.Evaluate(hardened, split.Test, 0.9)
		log.Printf("yolite_hardened — clean test F1@0.9 = %.3f -> %s", ev.All().F1(), path)
	}

	if !*skipMasked {
		log.Printf("generating text-masked dataset...")
		maskedCfg := cfg
		maskedCfg.MaskText = true
		maskedAll := auigen.BuildAUISamples(experiments.DatasetSeed, *samples, maskedCfg)
		maskedSplit := dataset.SplitSamples(maskedAll, experiments.SplitRand())
		maskedTrain := append(append([]*dataset.Sample{}, maskedSplit.Train...), maskedSplit.Val...)
		maskedNegs := auigen.BuildNegativeSamples(experiments.MaskedSeed+1,
			int(float64(len(maskedTrain))*experiments.NegativeFraction), maskedCfg)
		train("yolite_masked", append(maskedTrain, maskedNegs...))
	}

	if !*skipRCNN {
		rcnnEpochs := max(4, *epochs/3)
		for _, v := range rcnn.Variants {
			start := time.Now()
			m := rcnn.Train(v, trainSet, rcnn.TrainConfig{Epochs: rcnnEpochs, Seed: experiments.ModelSeed})
			_ = m
			ev := yolite.Evaluate(m, split.Test, 0.9)
			log.Printf("%s trained in %v — test F1@0.9 = %.3f (not persisted: retrained by harness)",
				v.Name(), time.Since(start).Round(time.Second), ev.All().F1())
		}
	}
	fmt.Println("done")
}
