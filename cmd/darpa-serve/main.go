// Command darpa-serve runs the DARPA detection service as a network daemon:
// the layered serving stack (admission → scheduler → replica pool) behind
// the HTTP/SSE front end of internal/httpd. It is the deployment shape the
// paper describes — an always-on detection service that apps and auditors
// consume at run time — with per-tenant rate limits, queue-depth shedding
// answered by a degraded pixel heuristic, and live fleet telemetry pushed
// to SSE subscribers.
//
// Server mode:
//
//	darpa-serve [-addr :8080] [-weights weights] [-detector yolite]
//	            [-replicas 2] [-tenants 2] [-tenant-rate 50] [-shed-depth 16]
//
// SIGINT/SIGTERM trigger a graceful drain: stop accepting, close SSE
// streams, drain the scheduler, then exit 0.
//
// Client mode (-client URL) drives load against a running server and checks
// the full wire contract — 200 detections, 429 rate limiting, 503 shedding
// with degraded bodies, SSE decoration/stats events:
//
//	darpa-serve -client http://127.0.0.1:8080 -requests 8 -concurrency 4
//	            -tenant tenant0 -sse 1 -expect-detect -expect-limited
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"image/png"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/auigen"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/httpd"
	"repro/internal/perfmodel"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	// Server flags.
	addr := flag.String("addr", ":8080", "listen address")
	weights := flag.String("weights", "weights", "pretrained weights directory")
	detector := flag.String("detector", "yolite", "registry backend to serve")
	replicas := flag.Int("replicas", 1, "independent model replicas behind the scheduler")
	tenants := flag.Int("tenants", 1, "tenant identities in the admission table (tenant0 is live-priority, the rest batch-priority)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admission rate limit in requests/sec (0 = unlimited)")
	shedDepth := flag.Int("shed-depth", 0, "shed requests once the scheduler queues hold this many (0 = never shed)")
	conf := flag.Float64("conf", 0, "default confidence threshold (0 = model default)")
	heartbeat := flag.Duration("heartbeat", httpd.DefaultHeartbeat, "SSE keep-alive interval")
	statsEvery := flag.Duration("stats-interval", httpd.DefaultStatsInterval, "SSE stats frame interval")

	// Client flags.
	client := flag.String("client", "", "run as a load client against this base URL instead of serving")
	requests := flag.Int("requests", 4, "client: detect requests to send")
	concurrency := flag.Int("concurrency", 1, "client: concurrent senders")
	tenant := flag.String("tenant", "", "client: tenant header value")
	priority := flag.String("priority", "", "client: priority header (live|batch)")
	sseWant := flag.Int("sse", 0, "client: subscribe to /v1/events and wait for this many events")
	timeout := flag.Duration("timeout", 30*time.Second, "client: overall deadline")
	seed := flag.Int64("seed", 1, "client: AUI screen generator seed")
	expectDetect := flag.Bool("expect-detect", false, "client: fail unless >=1 response carried a detection")
	expectLimited := flag.Bool("expect-limited", false, "client: fail unless >=1 request was 429 rate-limited")
	expectShed := flag.Bool("expect-shed", false, "client: fail unless >=1 request was 503 shed")
	flag.Parse()

	if *client != "" {
		os.Exit(runClient(clientConfig{
			base:          strings.TrimRight(*client, "/"),
			requests:      *requests,
			concurrency:   *concurrency,
			tenant:        *tenant,
			priority:      *priority,
			sseWant:       *sseWant,
			timeout:       *timeout,
			seed:          *seed,
			expectDetect:  *expectDetect,
			expectLimited: *expectLimited,
			expectShed:    *expectShed,
		}))
	}

	// Build the replica pool: train-if-cold happens once; replica builds
	// after the first are warm weight loads producing independent instances.
	bctx := detect.BuildContext{
		WeightsDir:  *weights,
		SaveWeights: true,
		Samples: func() []*dataset.Sample {
			log.Printf("no pretrained weights in %s; training a quick model...", *weights)
			return auigen.BuildAUISamples(1, 96, auigen.DatasetConfig{})
		},
		Epochs: 10,
		Logf:   log.Printf,
	}
	reps, err := detect.BuildReplicas(*detector, bctx, *replicas)
	if err != nil {
		log.Fatal(err)
	}
	backends := make([]detect.Predictor, len(reps))
	for i, r := range reps {
		backends[i] = r
	}

	// Admission table, same shape as darpa-sim's fleet mode: tenant0 is the
	// interactive tier, every other named tenant the audit tier; tenants
	// outside the table get the unlimited default.
	table := make(map[serve.TenantID]serve.TenantConfig, *tenants)
	for t := 0; t < *tenants; t++ {
		prio := serve.PriorityLive
		if t > 0 {
			prio = serve.PriorityBatch
		}
		table[serve.TenantID(fmt.Sprintf("tenant%d", t))] = serve.TenantConfig{
			Rate:     *tenantRate,
			Priority: prio,
		}
	}
	rec := &perfmodel.Timings{}
	batcher := serve.NewReplicated(serve.Options{
		Timings:       rec,
		Tenants:       table,
		MaxQueueDepth: *shedDepth,
	}, backends...)

	api := httpd.New(httpd.Config{
		Backend:       batcher,
		Stats:         batcher.Stats,
		Timings:       rec,
		Degraded:      httpd.PixelHeuristic{},
		ConfThresh:    *conf,
		Heartbeat:     *heartbeat,
		StatsInterval: *statsEvery,
		Logf:          log.Printf,
	})
	srv := &http.Server{Addr: *addr, Handler: api}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Printf("darpa-serve: draining...")
		// Drain order: refuse new work and end SSE streams, let the HTTP
		// server finish in-flight requests, then drain the scheduler.
		api.BeginDrain()
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("darpa-serve: shutdown: %v", err)
		}
		batcher.Close()
	}()

	log.Printf("darpa-serve: %d replica(s) of %s on %s (%d tenant(s), rate %.4g/s, shed depth %d)",
		*replicas, *detector, *addr, *tenants, *tenantRate, *shedDepth)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	st := batcher.Stats()
	log.Printf("darpa-serve: served %d screens in %d forwards; admission %d offered = %d admitted + %d shed + %d rejected",
		st.Items, st.Batches, st.Offered, st.Admitted, st.Shed, st.Rejected)
	log.Printf("darpa-serve: timings: %s", rec.String())
}

// clientConfig bundles the load-client knobs.
type clientConfig struct {
	base          string
	requests      int
	concurrency   int
	tenant        string
	priority      string
	sseWant       int
	timeout       time.Duration
	seed          int64
	expectDetect  bool
	expectLimited bool
	expectShed    bool
}

// runClient drives the wire contract end to end and returns the process
// exit code: POSTs generated AUI screens at the requested concurrency,
// tallies the status codes, and (optionally) holds an SSE subscription open
// until the requested number of events arrived.
func runClient(cfg clientConfig) int {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()

	// Pre-render distinct AUI screens so requests are not all cache-alike.
	n := cfg.requests
	if n < 1 {
		n = 1
	}
	screens := auigen.BuildAUISamples(cfg.seed, min(n, 16), auigen.DatasetConfig{})
	bodies := make([][]byte, len(screens))
	for i, s := range screens {
		var buf bytes.Buffer
		if err := png.Encode(&buf, s.Input.Image()); err != nil {
			log.Printf("client: encoding screen %d: %v", i, err)
			return 1
		}
		body, _ := json.Marshal(httpd.DetectRequest{Screen: base64.StdEncoding.EncodeToString(buf.Bytes())})
		bodies[i] = body
	}

	// SSE subscription first, so decoration events from our own posts are
	// observed.
	sseEvents := make(chan string, 64)
	sseErr := make(chan error, 1)
	if cfg.sseWant > 0 {
		go subscribeSSE(ctx, cfg, sseEvents, sseErr)
	}

	var served, withDets, limited, shed, degraded, failed atomic.Int64
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < cfg.requests; i++ {
			next <- i
		}
		close(next)
	}()
	workers := cfg.concurrency
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				status, resp, err := postDetect(ctx, cfg, bodies[i%len(bodies)])
				if err != nil {
					log.Printf("client: request %d: %v", i, err)
					failed.Add(1)
					continue
				}
				switch status {
				case http.StatusOK:
					served.Add(1)
					if len(resp.Detections) > 0 {
						withDets.Add(1)
					}
				case http.StatusTooManyRequests:
					limited.Add(1)
				case http.StatusServiceUnavailable:
					shed.Add(1)
					if resp.Degraded {
						degraded.Add(1)
					}
				default:
					log.Printf("client: request %d: unexpected status %d (%s)", i, status, resp.Error)
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	gotSSE := 0
	if cfg.sseWant > 0 {
		for gotSSE < cfg.sseWant {
			select {
			case name := <-sseEvents:
				gotSSE++
				log.Printf("client: SSE event %d: %s", gotSSE, name)
			case err := <-sseErr:
				log.Printf("client: SSE stream: %v", err)
				gotSSE = -1
			case <-ctx.Done():
				log.Printf("client: timed out waiting for SSE events (%d/%d)", gotSSE, cfg.sseWant)
				gotSSE = -1
			}
			if gotSSE < 0 {
				break
			}
		}
	}

	log.Printf("client: %d requests -> %d served (%d with detections), %d rate-limited, %d shed (%d degraded bodies), %d failed; %d SSE events",
		cfg.requests, served.Load(), withDets.Load(), limited.Load(), shed.Load(), degraded.Load(), failed.Load(), gotSSE)

	code := 0
	if failed.Load() > 0 {
		code = 1
	}
	if cfg.expectDetect && withDets.Load() == 0 {
		log.Printf("client: FAIL: expected at least one detection response")
		code = 1
	}
	if cfg.expectLimited && limited.Load() == 0 {
		log.Printf("client: FAIL: expected at least one 429")
		code = 1
	}
	if cfg.expectShed && shed.Load() == 0 {
		log.Printf("client: FAIL: expected at least one 503")
		code = 1
	}
	if cfg.sseWant > 0 && gotSSE < cfg.sseWant {
		log.Printf("client: FAIL: expected %d SSE events", cfg.sseWant)
		code = 1
	}
	return code
}

// postDetect sends one detect request and decodes the response body
// regardless of status (429/503 bodies carry the error and any degraded
// result).
func postDetect(ctx context.Context, cfg clientConfig, body []byte) (int, *httpd.DetectResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.base+"/v1/detect", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if cfg.tenant != "" {
		req.Header.Set(httpd.HeaderTenant, cfg.tenant)
	}
	if cfg.priority != "" {
		req.Header.Set(httpd.HeaderPriority, cfg.priority)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer res.Body.Close()
	var dr httpd.DetectResponse
	if err := json.NewDecoder(res.Body).Decode(&dr); err != nil {
		return res.StatusCode, nil, fmt.Errorf("decoding status-%d body: %w", res.StatusCode, err)
	}
	return res.StatusCode, &dr, nil
}

// subscribeSSE holds /v1/events open and forwards each named event to out.
func subscribeSSE(ctx context.Context, cfg clientConfig, out chan<- string, errc chan<- error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.base+"/v1/events", nil)
	if err != nil {
		errc <- err
		return
	}
	if cfg.tenant != "" {
		req.Header.Set(httpd.HeaderTenant, cfg.tenant)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		errc <- err
		return
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		errc <- fmt.Errorf("events stream status %d", res.StatusCode)
		return
	}
	sc := bufio.NewScanner(res.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			select {
			case out <- name:
			case <-ctx.Done():
				return
			}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		errc <- err
	}
}
