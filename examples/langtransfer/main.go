// Langtransfer: the language-generalisation claim of Section VI-B — the
// detector keys on visual asymmetry, not text, so it transfers to apps in
// another language without retraining. This example evaluates an
// English-trained detector on CJK-labelled screens and on text-masked
// screens (the Figure 7 experiment).
//
//	go run ./examples/langtransfer
package main

import (
	"fmt"

	"repro/internal/auigen"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/yolite"
)

func main() {
	model, err := detect.Build("yolite", detect.BuildContext{
		WeightsDir: "weights",
		Samples: func() []*dataset.Sample {
			fmt.Println("no pretrained weights found; training a quick detector...")
			return auigen.BuildAUISamples(1, 120, auigen.DatasetConfig{})
		},
		Epochs: 12,
	})
	if err != nil {
		panic(err)
	}

	evalOn := func(name string, cfg auigen.DatasetConfig) {
		test := auigen.BuildAUISamples(555, 60, cfg)
		eval := yolite.Evaluate(model, test, metrics.PaperIoUThreshold)
		upo := eval.Class(dataset.ClassUPO)
		all := eval.All()
		fmt.Printf("%-22s UPO F1=%.3f  All F1=%.3f (IoU >= 0.9)\n", name, upo.F1(), all.F1())
	}

	fmt.Println("English-trained detector evaluated across languages:")
	evalOn("English labels", auigen.DatasetConfig{})
	evalOn("CJK labels", auigen.DatasetConfig{Gen: auigen.Config{CJK: true}})
	evalOn("texts masked", auigen.DatasetConfig{MaskText: true})
	fmt.Println("\nsimilar scores across rows = detection comes from visual")
	fmt.Println("asymmetry, not from reading the button text (paper Table IV).")
}
