// Quickstart: generate one asymmetric dark UI screen, run the detector on
// it, and print what DARPA would highlight.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/auigen"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/yolite"
)

func main() {
	// 1. A detector, built by name from the registry. Pretrained weights are
	//    used when available; otherwise the builder trains a small model on
	//    the spot (about a minute on one core).
	model, err := detect.Build("yolite", detect.BuildContext{
		WeightsDir: "weights",
		Samples: func() []*dataset.Sample {
			fmt.Println("no pretrained weights found; training a quick detector...")
			return auigen.BuildAUISamples(1, 96, auigen.DatasetConfig{})
		},
		Epochs: 10,
	})
	if err != nil {
		panic(err)
	}

	// 2. A dark pattern. The generator builds an advertisement AUI like
	//    Figure 1 of the paper: a big tempting button and a tiny corner X.
	g := auigen.New(99, auigen.Config{})
	sample := g.RenderAUI(g.AUIFor(dataset.SubjectAdvertisement, 192, 308), auigen.DatasetConfig{})

	fmt.Println("ground truth on this screen:")
	for _, b := range sample.Boxes {
		fmt.Printf("  %-3s at %v\n", b.Class, b.B.Rect())
	}

	// 3. Detection. The same call DARPA's runtime makes on every stable
	//    screenshot.
	dets := detect.PredictCanvas(model, sample.Input, yolite.DefaultConfThresh)
	fmt.Println("detected:")
	if len(dets) == 0 {
		fmt.Println("  nothing (try training longer or using pretrained weights)")
	}
	for _, d := range dets {
		role := "highlight in red (app-guided option)"
		if d.Class == dataset.ClassUPO {
			role = "highlight in green (user-preferred option)"
		}
		fmt.Printf("  %-3s at %v, confidence %.2f -> %s\n", d.Class, d.B.Rect(), d.Score, role)
	}
}
