// Storeaudit: the app-store / regulator use case from the paper's
// discussion (Section VII) — batch-audit a catalogue of apps for asymmetric
// dark UI patterns and rank them by how aggressively they show AUIs.
//
// Unlike the live run-time decorator (one screen per debounce cycle), an
// audit holds every captured screen up front, so inference runs through the
// detector's batch seam: screens are stacked eight at a time and the conv
// backbone forwards once per stack (core.AuditScreens), with a result cache
// absorbing the many identical screens a monkey crawl revisits.
//
//	go run ./examples/storeaudit
package main

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/a11y"
	"repro/internal/app"
	"repro/internal/auigen"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/perfmodel"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/uikit"
	"repro/internal/yolite"
)

type auditRow struct {
	pkg        string
	screens    int
	auiScreens int
	popups     int
}

func main() {
	model, err := detect.Build("yolite", detect.BuildContext{
		WeightsDir: "weights",
		Samples: func() []*dataset.Sample {
			fmt.Println("no pretrained weights found; training a quick detector...")
			return auigen.BuildAUISamples(1, 96, auigen.DatasetConfig{})
		},
		Epochs: 10,
	})
	if err != nil {
		panic(err)
	}

	// A small catalogue with different AUI aggressiveness levels.
	catalogue := []app.Config{
		{Package: "com.clean.notes", AUIProb: 0.001, GenSeed: 11},
		{Package: "com.casual.game", MeanAUIInterval: 8 * time.Second, GenSeed: 12},
		{Package: "com.free.video", MeanAUIInterval: 5 * time.Second, GenSeed: 13},
		{Package: "com.deal.shop", MeanAUIInterval: 12 * time.Second, GenSeed: 14},
	}

	// Phase 1: crawl each app with a monkey, sampling a screenshot every two
	// simulated seconds. No inference happens here — screens are only
	// collected, which is what lets phase 2 batch them.
	shotsPerApp := make([][]*render.Canvas, len(catalogue))
	popups := make([]int, len(catalogue))
	for i, cfg := range catalogue {
		clock := sim.NewClock(1)
		screen := uikit.NewScreen(384, 640)
		mgr := a11y.NewManager(clock, screen)
		a := app.Launch(clock, mgr, cfg)
		monkey := app.StartMonkey(clock, mgr, "auditor", 2*time.Second)

		sampler := clock.NewTicker(2*time.Second, func() {
			shotsPerApp[i] = append(shotsPerApp[i], mgr.TakeScreenshot())
		})
		clock.RunUntil(2 * time.Minute)
		sampler.Stop()
		monkey.Stop()
		popups[i] = len(a.History())
		a.Stop()
	}

	// Phase 2: one batched inference pass over the whole catalogue. The
	// timing middleware records amortised per-screen latency; the cache
	// dedupes screens whose content did not change between samples.
	rec := &perfmodel.Timings{}
	cached := detect.WithResultCache(model, 256)
	auditor := detect.WithTiming(cached, rec, "batch-infer")

	// The whole audit runs under one deadline: a regulator's pipeline would
	// rather ship a partial report on time than a complete one late.
	// AuditScreensCtx returns the screens fully audited before the deadline;
	// the generous budget here means the audit normally completes.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var rows []auditRow
	total := 0
	for i, cfg := range catalogue {
		row := auditRow{pkg: cfg.Package, screens: len(shotsPerApp[i]), popups: popups[i]}
		audited, err := core.AuditScreensCtx(ctx, auditor, shotsPerApp[i], yolite.DefaultConfThresh, core.DefaultAuditBatch)
		if err != nil {
			fmt.Printf("audit deadline hit on %s after %d screens; reporting what completed\n", cfg.Package, len(audited))
		}
		for _, dets := range audited {
			for _, d := range dets {
				if d.Class == dataset.ClassUPO {
					row.auiScreens++
					break
				}
			}
		}
		total += row.screens
		rows = append(rows, row)
	}

	sort.Slice(rows, func(i, j int) bool {
		return float64(rows[i].auiScreens)/float64(rows[i].screens+1) >
			float64(rows[j].auiScreens)/float64(rows[j].screens+1)
	})
	fmt.Println("store audit report (2 simulated minutes per app, batched inference):")
	fmt.Printf("%-18s %8s %12s %14s\n", "package", "screens", "AUI screens", "actual popups")
	for _, r := range rows {
		fmt.Printf("%-18s %8d %12d %14d\n", r.pkg, r.screens, r.auiScreens, r.popups)
	}
	// Fold the cache tallies into the same recorder the latency stages feed,
	// so one summary line carries both.
	cached.PublishStats(rec)
	fmt.Printf("\naudited %d screens: %s\n", total, rec.String())
	fmt.Printf("cache hit rate: %.0f%% (%d hits / %d misses, %d shards)\n",
		100*cached.HitRate(), cached.Hits(), cached.Misses(), cached.ShardCount())
	fmt.Println("apps at the top of the list warrant manual review before listing.")
}
