// Storeaudit: the app-store / regulator use case from the paper's
// discussion (Section VII) — batch-audit a catalogue of apps for asymmetric
// dark UI patterns and rank them by how aggressively they show AUIs.
//
//	go run ./examples/storeaudit
package main

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/a11y"
	"repro/internal/app"
	"repro/internal/auigen"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/sim"
	"repro/internal/uikit"
)

type auditRow struct {
	pkg        string
	screens    int
	auiScreens int
	popups     int
}

func main() {
	model, err := detect.Build("yolite", detect.BuildContext{
		WeightsDir: "weights",
		Samples: func() []*dataset.Sample {
			fmt.Println("no pretrained weights found; training a quick detector...")
			return auigen.BuildAUISamples(1, 96, auigen.DatasetConfig{})
		},
		Epochs: 10,
	})
	if err != nil {
		panic(err)
	}

	// A small catalogue with different AUI aggressiveness levels.
	catalogue := []app.Config{
		{Package: "com.clean.notes", AUIProb: 0.001, GenSeed: 11},
		{Package: "com.casual.game", MeanAUIInterval: 8 * time.Second, GenSeed: 12},
		{Package: "com.free.video", MeanAUIInterval: 5 * time.Second, GenSeed: 13},
		{Package: "com.deal.shop", MeanAUIInterval: 12 * time.Second, GenSeed: 14},
	}

	var rows []auditRow
	for _, cfg := range catalogue {
		clock := sim.NewClock(1)
		screen := uikit.NewScreen(384, 640)
		mgr := a11y.NewManager(clock, screen)
		a := app.Launch(clock, mgr, cfg)
		monkey := app.StartMonkey(clock, mgr, "auditor", 2*time.Second)

		row := auditRow{pkg: cfg.Package}
		svc := core.Start(clock, mgr, model, core.Config{Mode: core.ModeDetect})
		svc.OnAnalysis = func(an core.Analysis) {
			row.screens++
			for _, d := range an.Detections {
				if d.Class == dataset.ClassUPO {
					row.auiScreens++
					break
				}
			}
		}
		clock.RunUntil(2 * time.Minute)
		monkey.Stop()
		svc.Stop()
		row.popups = len(a.History())
		a.Stop()
		rows = append(rows, row)
	}

	sort.Slice(rows, func(i, j int) bool {
		return float64(rows[i].auiScreens)/float64(rows[i].screens+1) >
			float64(rows[j].auiScreens)/float64(rows[j].screens+1)
	})
	fmt.Println("store audit report (2 simulated minutes per app):")
	fmt.Printf("%-18s %8s %12s %14s\n", "package", "screens", "AUI screens", "actual popups")
	for _, r := range rows {
		fmt.Printf("%-18s %8d %12d %14d\n", r.pkg, r.screens, r.auiScreens, r.popups)
	}
	fmt.Println("\napps at the top of the list warrant manual review before listing.")
}
