// Autobypass: run DARPA in its alternative mode (Section IV-D) where,
// instead of only decorating, it automatically clicks the detected
// user-preferred option to close dark-pattern popups on the user's behalf.
//
// A simulated shopping app pops AUIs every few seconds; DARPA's auto-bypass
// clicks them away, and the app's own lifecycle records the dismissals.
//
//	go run ./examples/autobypass
package main

import (
	"fmt"
	"time"

	"repro/internal/a11y"
	"repro/internal/app"
	"repro/internal/auigen"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/sim"
	"repro/internal/uikit"
)

func main() {
	model, err := detect.Build("yolite", detect.BuildContext{
		WeightsDir: "weights",
		Samples: func() []*dataset.Sample {
			fmt.Println("no pretrained weights found; training a quick detector...")
			return auigen.BuildAUISamples(1, 96, auigen.DatasetConfig{})
		},
		Epochs: 10,
	})
	if err != nil {
		panic(err)
	}

	clock := sim.NewClock(7)
	screen := uikit.NewScreen(384, 640)
	mgr := a11y.NewManager(clock, screen)
	shop := app.Launch(clock, mgr, app.Config{
		Package:         "com.example.shop",
		MeanAUIInterval: 6 * time.Second,
		AUIDwellMax:     8 * time.Second,
	})

	svc := core.Start(clock, mgr, model, core.Config{AutoBypass: true})

	const minutes = 3
	clock.RunUntil(minutes * time.Minute)
	svc.Stop()
	shop.Stop()

	byClick, timedOut := 0, 0
	for _, h := range shop.History() {
		if h.DismissedByClick {
			byClick++
			fmt.Printf("popup at %7v (%s): closed by DARPA after %v\n",
				h.ShownAt.Round(time.Millisecond), h.AUI.Subject,
				(h.DismissedAt - h.ShownAt).Round(time.Millisecond))
		} else {
			timedOut++
			fmt.Printf("popup at %7v (%s): NOT bypassed (self-dismissed)\n",
				h.ShownAt.Round(time.Millisecond), h.AUI.Subject)
		}
	}
	fmt.Printf("\n%d popups in %d minutes: %d auto-bypassed, %d survived\n",
		byClick+timedOut, minutes, byClick, timedOut)
	fmt.Printf("DARPA stats: %+v\n", svc.Stats())
}
