package serve

// Metric export: the serving stack's three-layer snapshot (admission ledger,
// scheduler counters, replica health) rendered as metric families for the
// /metrics endpoint and the fleet harness's per-run dumps.

import (
	"sort"
	"strconv"

	"repro/internal/metrics"
)

// Families renders the snapshot as metric families. Sample order is
// deterministic (verdicts in ledger order, tenants sorted, replicas by ID),
// so equal snapshots render byte-identically.
func (s Stats) Families() []metrics.Family {
	admission := metrics.Counter("darpa_admission_requests_total",
		"Admission ledger by verdict; offered == admitted + shed + rejected.",
		metrics.L(float64(s.Offered), "verdict", "offered"),
		metrics.L(float64(s.Admitted), "verdict", "admitted"),
		metrics.L(float64(s.Shed), "verdict", "shed"),
		metrics.L(float64(s.Rejected), "verdict", "rejected"),
	)
	tenants := metrics.Family{
		Name: "darpa_admission_tenant_requests_total",
		Help: "Per-tenant admission ledger by verdict.",
		Type: metrics.TypeCounter,
	}
	ids := make([]string, 0, len(s.Tenants))
	for id := range s.Tenants {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		ts := s.Tenants[TenantID(id)]
		tenants.Samples = append(tenants.Samples,
			metrics.L(float64(ts.Offered), "tenant", id, "verdict", "offered"),
			metrics.L(float64(ts.Admitted), "tenant", id, "verdict", "admitted"),
			metrics.L(float64(ts.Shed), "tenant", id, "verdict", "shed"),
			metrics.L(float64(ts.Rejected), "tenant", id, "verdict", "rejected"),
		)
	}

	scheduler := metrics.Counter("darpa_scheduler_requests_total",
		"Scheduler outcomes: items served, requests pruned in queue, per-request failures.",
		metrics.L(float64(s.Items), "outcome", "served"),
		metrics.L(float64(s.Cancelled), "outcome", "cancelled"),
		metrics.L(float64(s.Failed), "outcome", "failed"),
	)
	batches := metrics.Counter("darpa_scheduler_batches_total",
		"Forwards dispatched after threshold/shape grouping.",
		metrics.L(float64(s.Batches), "kind", "dispatched"),
		metrics.L(float64(s.Poisoned), "kind", "poisoned"),
	)
	gauges := metrics.Gauge("darpa_scheduler_watermarks",
		"Scheduler high-water marks: largest coalesced batch, deepest queue.",
		metrics.L(float64(s.MaxBatchSize), "mark", "max_batch_size"),
		metrics.L(float64(s.MaxQueueDepth), "mark", "max_queue_depth"),
	)

	repItems := metrics.Family{
		Name: "darpa_replica_requests_total",
		Help: "Per-replica requests answered, by outcome.",
		Type: metrics.TypeCounter,
	}
	repBusy := metrics.Family{
		Name: "darpa_replica_busy_seconds_total",
		Help: "Wall time each replica spent in forwards.",
		Type: metrics.TypeCounter,
	}
	repHealth := metrics.Family{
		Name: "darpa_replica_health",
		Help: "Per-replica health: benched state (0/1) and bench trips.",
		Type: metrics.TypeGauge,
	}
	for _, r := range s.Replicas {
		id := strconv.Itoa(r.ID)
		repItems.Samples = append(repItems.Samples,
			metrics.L(float64(r.Items), "replica", id, "outcome", "served"),
			metrics.L(float64(r.Failed), "replica", id, "outcome", "failed"),
		)
		repBusy.Samples = append(repBusy.Samples, metrics.L(r.Busy.Seconds(), "replica", id))
		benched := 0.0
		if r.Benched {
			benched = 1
		}
		repHealth.Samples = append(repHealth.Samples,
			metrics.L(benched, "replica", id, "state", "benched"),
			metrics.L(float64(r.BenchTrips), "replica", id, "state", "bench_trips"),
		)
	}

	fams := []metrics.Family{admission}
	if len(tenants.Samples) > 0 {
		fams = append(fams, tenants)
	}
	fams = append(fams, scheduler, batches, gauges)
	if len(repItems.Samples) > 0 {
		fams = append(fams, repItems, repBusy, repHealth)
	}
	return fams
}
