package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/perfmodel"
)

// TestBatcherOptionDefaults: zero and negative knobs must both land on the
// documented defaults — a misconfigured scheduler should degrade to sane
// batching, not a zero-size batch or a busy-looping timer.
func TestBatcherOptionDefaults(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"zero", Options{}},
		{"negative", Options{MaxBatch: -3, MaxDelay: -time.Second, QueueSize: -7}},
	} {
		b := NewBatcher(&stubBackend{}, tc.opts)
		if b.sched.maxBatch != DefaultMaxBatch {
			t.Errorf("%s: maxBatch = %d, want %d", tc.name, b.sched.maxBatch, DefaultMaxBatch)
		}
		if b.sched.maxDelay != DefaultMaxDelay {
			t.Errorf("%s: maxDelay = %v, want %v", tc.name, b.sched.maxDelay, DefaultMaxDelay)
		}
		for p, q := range b.sched.queues {
			if got := cap(q); got != 4*DefaultMaxBatch {
				t.Errorf("%s: queue %d cap = %d, want %d", tc.name, p, got, 4*DefaultMaxBatch)
			}
		}
		b.Close()
	}
}

// TestBatcherRejectsDeadContext: an already-cancelled request must be
// answered with its ctx error before touching the queue or the backend.
func TestBatcherRejectsDeadContext(t *testing.T) {
	s := &stubBackend{}
	b := NewBatcher(s, Options{})
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dets, err := b.PredictTensorCtx(ctx, screen(1), 0, 0.45)
	if !errors.Is(err, context.Canceled) || dets != nil {
		t.Fatalf("dead ctx: dets=%v err=%v, want nil/Canceled", dets, err)
	}
	if s.calls != 0 {
		t.Fatal("dead ctx reached the backend")
	}
	if st := b.Stats(); st.Items != 0 || st.Cancelled != 0 {
		t.Fatalf("dead ctx touched the scheduler: %+v", st)
	}
}

// TestBatcherPrunesCancelledQueued: a request whose context dies while it
// waits in the queue must answer its caller immediately, be pruned at batch
// formation without spending forward compute, and be counted in
// Stats.Cancelled and the serve-cancelled stage.
func TestBatcherPrunesCancelledQueued(t *testing.T) {
	s := &stubBackend{gate: make(chan struct{})}
	rec := &perfmodel.Timings{}
	b := NewBatcher(s, Options{MaxBatch: 1, MaxDelay: time.Millisecond, Timings: rec})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupies the scheduler behind the gate
		defer wg.Done()
		b.PredictTensor(screen(0), 0, 0.45)
	}()
	waitFor(t, func() bool { s.mu.Lock(); defer s.mu.Unlock(); return s.calls == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 2)
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := b.PredictTensorCtx(ctx, screen(i), 0, 0.45)
			errc <- err
		}(i)
	}
	waitFor(t, func() bool { return b.sched.depth() == 2 }) // both queued behind the gate
	cancel()
	// Both callers return their ctx error without waiting for the gate.
	for i := 0; i < 2; i++ {
		select {
		case err := <-errc:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("queued caller err = %v, want Canceled", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancelled caller still waiting on the scheduler")
		}
	}
	close(s.gate)
	wg.Wait()
	b.Close()
	if st := b.Stats(); st.Cancelled != 2 {
		t.Fatalf("Stats.Cancelled = %d, want 2", st.Cancelled)
	}
	if got := rec.Stage("serve-cancelled").Count; got != 2 {
		t.Fatalf("serve-cancelled count = %d, want 2", got)
	}
	// The backend only ever saw the one live request.
	if sizes := s.sizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("backend saw forwards %v, want just [1] — pruned requests cost compute", sizes)
	}
}

// TestBatcherCloseWithCancelledWaiters: Close while cancelled-ctx callers are
// queued must drain cleanly — every caller answered, the dispatcher stopped,
// and the Batcher still serving directly afterwards. A leaked dispatcher or
// an unanswered waiter would hang this test.
func TestBatcherCloseWithCancelledWaiters(t *testing.T) {
	s := &stubBackend{gate: make(chan struct{})}
	b := NewBatcher(s, Options{MaxBatch: 2, MaxDelay: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dets, err := b.PredictTensorCtx(ctx, screen(i), 0, 0.45)
			if err == nil && (len(dets) != 1 || dets[0].B.X != float64(i)) {
				t.Errorf("caller %d: wrong result %v", i, dets)
			}
		}(i)
	}
	waitFor(t, func() bool { s.mu.Lock(); defer s.mu.Unlock(); return s.calls >= 1 })
	cancel()
	wg.Wait() // every caller returns promptly on its dead ctx, gate still held
	close(s.gate)
	b.Close()
	// Post-Close the Batcher still serves directly, ctx honoured.
	if _, err := b.PredictTensorCtx(ctx, screen(9), 0, 0.45); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-Close dead-ctx call: err = %v", err)
	}
	dets, err := b.PredictTensorCtx(context.Background(), screen(9), 0, 0.45)
	if err != nil || len(dets) != 1 || dets[0].B.X != 9 {
		t.Fatalf("post-Close direct call: dets=%v err=%v", dets, err)
	}
}

// TestBatcherDirectBatchCtx: the already-batched ctx entry point honours the
// context and matches the legacy direct path.
func TestBatcherDirectBatchCtx(t *testing.T) {
	s := &stubBackend{}
	b := NewBatcher(s, Options{})
	defer b.Close()
	x := screen(3)
	out, err := b.PredictBatchCtx(context.Background(), x, 0.45)
	if err != nil || len(out) != 1 || out[0][0].B.X != 3 {
		t.Fatalf("Background direct batch: %v, err %v", out, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.PredictBatchCtx(ctx, x, 0.45); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-ctx direct batch err = %v, want Canceled", err)
	}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
