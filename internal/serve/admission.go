package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// This file is the admission layer — the first of the three serving layers
// (admission → scheduler → replica pool). Every request entering the Batcher
// passes through exactly one admission decision before it may touch a queue:
// the tenant's token bucket is consulted first (rate limiting), then the
// scheduler's queue depth (load shedding). Rejecting here is deliberate
// back-pressure: a request the system cannot serve in time should fail in
// microseconds at the front door — where the caller's fallback chain can
// still produce a degraded heuristic answer — not time out after riding a
// queue it was never going to clear.

// TenantID names one detection consumer — a device fleet, an audit pipeline,
// a store-scan worker. Requests carrying no tenant are accounted to
// DefaultTenant.
type TenantID string

// DefaultTenant is the identity assumed for requests that carry none.
const DefaultTenant TenantID = "default"

// Priority orders the scheduler's queues. The zero value is PriorityLive, so
// untagged requests — the interactive path decorating a screen the user is
// looking at — get the low-latency queue by default.
type Priority int

const (
	// PriorityLive is the interactive tier: live screen decoration, where
	// added latency is visible to a user mid-interaction.
	PriorityLive Priority = iota
	// PriorityBatch is the throughput tier: store audits and batch scans,
	// which care about completion, not per-request latency.
	PriorityBatch
	numPriorities
)

// String renders the tier for logs and stats lines.
func (p Priority) String() string {
	switch p {
	case PriorityLive:
		return "live"
	case PriorityBatch:
		return "batch"
	}
	return "unknown"
}

// TenantInfo is the identity a request carries through its context.
type TenantInfo struct {
	ID       TenantID
	Priority Priority
}

// tenantKey is the context key for TenantInfo; unexported so only WithTenant
// can set it.
type tenantKey struct{}

// WithTenant attaches a tenant identity to ctx. The serving layer reads it at
// admission; everything between the caller and the Batcher passes it through
// untouched, so tenancy rides the same channel as cancellation.
func WithTenant(ctx context.Context, info TenantInfo) context.Context {
	return context.WithValue(ctx, tenantKey{}, info)
}

// TenantFrom extracts the tenant identity from ctx, defaulting to
// DefaultTenant at PriorityLive when none was attached.
func TenantFrom(ctx context.Context) TenantInfo {
	if info, ok := ctx.Value(tenantKey{}).(TenantInfo); ok {
		if info.ID == "" {
			info.ID = DefaultTenant
		}
		return info
	}
	return TenantInfo{ID: DefaultTenant, Priority: PriorityLive}
}

// TenantConfig sets one tenant's admission policy.
type TenantConfig struct {
	// Rate is the sustained admission rate in requests per second. Zero or
	// negative means unlimited — the bucket never empties.
	Rate float64
	// Burst is the bucket capacity: how many requests may arrive back to
	// back before the rate limit bites. Zero defaults to max(1, Rate).
	Burst int
	// Priority assigns every request from this tenant to a scheduler queue,
	// overriding whatever the request's context carries — the operator's
	// tenant table outranks a caller self-declaring as interactive.
	Priority Priority
}

// Admission errors. Both are terminal for the request at this layer; the
// caller's fallback chain (detect.WithFallback) is where a degraded answer
// comes from.
var (
	// ErrRateLimited rejects a request whose tenant exhausted its token
	// bucket. Retrying immediately will fail again; the tenant must slow down.
	ErrRateLimited = errors.New("serve: tenant rate limit exceeded")
	// ErrOverloaded sheds a request because the scheduler's queues are at
	// MaxQueueDepth. Unlike ErrRateLimited this is global back-pressure —
	// any tenant's retry may succeed once the queues drain.
	ErrOverloaded = errors.New("serve: scheduler overloaded, request shed")
	// ErrClosed rejects a request that arrived after Close. The Batcher
	// facade converts it into a direct unbatched call for legacy callers;
	// it is exported so layered deployments can detect shutdown explicitly.
	ErrClosed = errors.New("serve: batcher closed")
)

// verdict is one admission decision.
type verdict int

const (
	admitted verdict = iota
	shed
	rejected
)

// TenantStats is one tenant's admission ledger.
type TenantStats struct {
	Offered  int // requests that reached admission
	Admitted int // requests that entered a scheduler queue
	Shed     int // requests dropped for global queue depth
	Rejected int // requests dropped by this tenant's rate limit
}

// AdmissionStats aggregates the admission layer's ledger. The invariant
// Offered == Admitted + Shed + Rejected holds at every snapshot — a request
// that reaches admission is counted exactly once, whatever its fate.
type AdmissionStats struct {
	Offered  int
	Admitted int
	Shed     int
	Rejected int
	Tenants  map[TenantID]TenantStats
}

// tenantState is one tenant's live token bucket.
type tenantState struct {
	cfg    TenantConfig
	tokens float64
	last   time.Time
	stats  TenantStats
}

// admission is the front-door layer: per-tenant token buckets plus global
// queue-depth shedding. All state sits behind one mutex — an admission
// decision is a few float ops, so the critical section is nanoseconds.
type admission struct {
	mu       sync.Mutex
	tenants  map[TenantID]*tenantState
	configs  map[TenantID]TenantConfig
	def      TenantConfig
	maxDepth int
	now      func() time.Time
	stats    AdmissionStats
}

// newAdmission builds the layer. configs may be nil (every tenant gets def);
// maxDepth <= 0 disables shedding; now is injectable for deterministic
// refill tests and defaults to time.Now.
func newAdmission(configs map[TenantID]TenantConfig, def TenantConfig, maxDepth int, now func() time.Time) *admission {
	if now == nil {
		now = time.Now
	}
	return &admission{
		tenants:  make(map[TenantID]*tenantState),
		configs:  configs,
		def:      def,
		maxDepth: maxDepth,
		now:      now,
	}
}

// burst resolves a config's effective bucket capacity.
func burst(cfg TenantConfig) float64 {
	if cfg.Burst > 0 {
		return float64(cfg.Burst)
	}
	if cfg.Rate > 1 {
		return cfg.Rate
	}
	return 1
}

// state returns the tenant's live bucket, creating it full on first sight —
// a tenant's first burst is always admitted up to its Burst.
func (a *admission) state(id TenantID) *tenantState {
	if s, ok := a.tenants[id]; ok {
		return s
	}
	cfg, ok := a.configs[id]
	if !ok {
		cfg = a.def
	}
	s := &tenantState{cfg: cfg, tokens: burst(cfg), last: a.now()}
	a.tenants[id] = s
	return s
}

// decide runs one admission decision for a request from info against the
// current scheduler depth, updating the ledger. It returns the verdict and
// the priority queue the request belongs to (meaningful only when admitted).
func (a *admission) decide(info TenantInfo, depth int) (verdict, Priority) {
	if info.ID == "" {
		info.ID = DefaultTenant
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.state(info.ID)
	prio := info.Priority
	if _, configured := a.configs[info.ID]; configured {
		prio = s.cfg.Priority
	}
	if prio < 0 || prio >= numPriorities {
		prio = PriorityLive
	}
	a.stats.Offered++
	s.stats.Offered++

	// Rate limit first: a tenant over its budget is rejected even when the
	// queues are empty, so one flooding tenant cannot convert spare global
	// capacity into a habit the other tenants then pay for under load.
	if s.cfg.Rate > 0 {
		now := a.now()
		s.tokens += now.Sub(s.last).Seconds() * s.cfg.Rate
		s.last = now
		if max := burst(s.cfg); s.tokens > max {
			s.tokens = max
		}
		if s.tokens < 1 {
			a.stats.Rejected++
			s.stats.Rejected++
			return rejected, prio
		}
		s.tokens--
	}

	// Then global depth: the queues are already longer than the system can
	// clear in bounded time, so shed now while a degraded answer is cheap.
	// The token consumed above is refunded: shedding is the *system's*
	// failure to keep up, not the tenant's overspend, and no forward will be
	// run for this request. Without the refund a tenant flooding into an
	// overloaded scheduler is later 429'd for requests that were 503'd —
	// charged rate budget for work never served.
	if a.maxDepth > 0 && depth >= a.maxDepth {
		if s.cfg.Rate > 0 {
			s.tokens++
			if max := burst(s.cfg); s.tokens > max {
				s.tokens = max
			}
		}
		a.stats.Shed++
		s.stats.Shed++
		return shed, prio
	}
	a.stats.Admitted++
	s.stats.Admitted++
	return admitted, prio
}

// snapshot copies the ledger.
func (a *admission) snapshot() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.stats
	out.Tenants = make(map[TenantID]TenantStats, len(a.tenants))
	for id, s := range a.tenants {
		out.Tenants[id] = s.stats
	}
	return out
}
