package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// poisonPixel marks the one screen that spoils any forward containing it.
const poisonPixel = 66

// poisonBackend fails whole-batch forwards that contain the poison screen —
// by panicking, erroring, or returning a misaligned (short) result slice —
// while healthy items answer a detection encoding their first pixel, so the
// test can check every result reached its own requester.
type poisonBackend struct {
	mode string // "panic", "error", or "short"
}

func (p *poisonBackend) Name() string { return "poison" }

func itemPoisoned(x *tensor.Tensor, n int) bool {
	per := 1
	for _, d := range x.Shape[1:] {
		per *= d
	}
	return x.Data[n*per] == poisonPixel
}

func itemDets(x *tensor.Tensor, n int) []metrics.Detection {
	per := 1
	for _, d := range x.Shape[1:] {
		per *= d
	}
	return []metrics.Detection{{B: geom.BoxF{X: float64(x.Data[n*per]), W: 1, H: 1}, Score: 0.5}}
}

func (p *poisonBackend) PredictTensor(x *tensor.Tensor, n int, _ float64) []metrics.Detection {
	dets, err := p.PredictTensorCtx(context.Background(), x, n, 0)
	if err != nil {
		return nil
	}
	return dets
}

func (p *poisonBackend) PredictTensorCtx(_ context.Context, x *tensor.Tensor, n int, _ float64) ([]metrics.Detection, error) {
	if itemPoisoned(x, n) {
		switch p.mode {
		case "panic":
			panic("poison screen")
		case "error":
			return nil, errors.New("poison screen")
		}
		// "short" mode only misbehaves on the batch seam; the item itself
		// is servable.
	}
	return itemDets(x, n), nil
}

func (p *poisonBackend) PredictBatchCtx(_ context.Context, x *tensor.Tensor, _ float64) ([][]metrics.Detection, error) {
	n := x.Shape[0]
	for i := 0; i < n; i++ {
		if itemPoisoned(x, i) {
			switch p.mode {
			case "panic":
				panic("poison screen in batch")
			case "error":
				return nil, errors.New("poison screen in batch")
			case "short":
				return make([][]metrics.Detection, n-1), nil
			}
		}
	}
	out := make([][]metrics.Detection, n)
	for i := range out {
		out[i] = itemDets(x, i)
	}
	return out, nil
}

// screenTensor builds a 1-item tensor whose first pixel is v.
func screenTensor(v float32) *tensor.Tensor {
	x := tensor.New(1, 1, 2, 2)
	x.Data[0] = v
	return x
}

// runPoisonedGroup pushes devices concurrent requests (one poisoned) through
// a Batcher over backend and returns each request's outcome, indexed so that
// request i carried pixel i except the last, which is the poison screen.
func runPoisonedGroup(t *testing.T, b *Batcher, devices int) ([][]metrics.Detection, []error) {
	t.Helper()
	dets := make([][]metrics.Detection, devices)
	errs := make([]error, devices)
	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := float32(i)
			if i == devices-1 {
				v = poisonPixel
			}
			dets[i], errs[i] = b.PredictTensorCtx(context.Background(), screenTensor(v), 0, 0.5)
		}(i)
	}
	wg.Wait()
	return dets, errs
}

// testPoisonIsolation is the shared scenario: whatever way the grouped
// forward fails, the poison item must fail (or be served) alone, every other
// request must still get its own real result, and the dispatcher must
// survive to serve another round. Historically an inner panic here killed
// the dispatcher goroutine, leaving every queued and future caller blocked
// forever — the Close at the end would hang too.
func testPoisonIsolation(t *testing.T, mode string, wantPoisonErr bool) {
	backend := &poisonBackend{mode: mode}
	b := NewBatcher(backend, Options{MaxBatch: 4, MaxDelay: 100 * time.Millisecond})
	defer b.Close()

	dets, errs := runPoisonedGroup(t, b, 4)
	for i := 0; i < 3; i++ {
		if errs[i] != nil {
			t.Errorf("healthy request %d failed: %v", i, errs[i])
			continue
		}
		if len(dets[i]) != 1 || dets[i][0].B.X != float64(i) {
			t.Errorf("request %d got wrong result: %+v", i, dets[i])
		}
	}
	if wantPoisonErr {
		if errs[3] == nil {
			t.Errorf("poison request succeeded with %+v", dets[3])
		}
	} else if errs[3] != nil {
		t.Errorf("poison request should be servable per-item in %s mode: %v", mode, errs[3])
	}

	// The dispatcher survived: a fresh request is still answered.
	fresh, err := b.PredictTensorCtx(context.Background(), screenTensor(7), 0, 0.5)
	if err != nil || len(fresh) != 1 || fresh[0].B.X != 7 {
		t.Fatalf("dispatcher dead after poisoned batch: dets=%v err=%v", fresh, err)
	}

	st := b.Stats()
	if st.Poisoned == 0 {
		t.Errorf("no poisoned forwards recorded: %+v", st)
	}
	wantFailed := 0
	if wantPoisonErr {
		wantFailed = 1
	}
	if st.Failed != wantFailed {
		t.Errorf("Failed = %d, want %d: %+v", st.Failed, wantFailed, st)
	}
}

func TestPoisonPanicIsolated(t *testing.T)      { testPoisonIsolation(t, "panic", true) }
func TestPoisonErrorIsolated(t *testing.T)      { testPoisonIsolation(t, "error", true) }
func TestPoisonShortSliceIsolated(t *testing.T) { testPoisonIsolation(t, "short", false) }

// TestPoisonPanicSingleRequest pins the degenerate group: a single-request
// "batch" that panics must answer that caller with a PanicError instead of
// killing the dispatcher.
func TestPoisonPanicSingleRequest(t *testing.T) {
	backend := &poisonBackend{mode: "panic"}
	b := NewBatcher(backend, Options{MaxBatch: 4, MaxDelay: time.Millisecond})
	defer b.Close()

	_, err := b.PredictTensorCtx(context.Background(), screenTensor(poisonPixel), 0, 0.5)
	var pe *detect.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want *detect.PanicError", err)
	}
	dets, err := b.PredictTensorCtx(context.Background(), screenTensor(3), 0, 0.5)
	if err != nil || len(dets) != 1 || dets[0].B.X != 3 {
		t.Fatalf("dispatcher dead after single-request panic: dets=%v err=%v", dets, err)
	}
}
