package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/tensor"
)

// Regression tests for latent serving-layer bugs surfaced while wiring the
// HTTP front end: shed requests must not burn tenant rate budget, and a
// benched replica must not block pool shutdown.

// TestShedRefundsTenantToken: admission consumes a rate token before the
// queue-depth check, so a shed request historically burned budget for work
// never served — under overload a tenant was later 429'd for requests that
// were 503'd. The shed path must refund the token. Pinned with an injected
// clock so refill cannot mask the burn.
func TestShedRefundsTenantToken(t *testing.T) {
	now := time.Unix(0, 0)
	adm := newAdmission(
		map[TenantID]TenantConfig{"t": {Rate: 1, Burst: 2}},
		TenantConfig{}, 4,
		func() time.Time { return now },
	)
	info := TenantInfo{ID: "t"}

	// Queues at MaxQueueDepth: both requests are shed. The clock never
	// advances, so no refill can restore a burned token.
	for i := 0; i < 2; i++ {
		if v, _ := adm.decide(info, 4); v != shed {
			t.Fatalf("decide at depth 4 = %v, want shed", v)
		}
	}
	// Queues drained: the tenant's burst of 2 must be intact — the shed
	// requests did no work and must not have spent it.
	for i := 0; i < 2; i++ {
		if v, _ := adm.decide(info, 0); v != admitted {
			t.Fatalf("request %d after sheds = %v, want admitted (shed burned rate budget)", i, v)
		}
	}
	// And the bucket is genuinely empty now: exactly the 2 admitted
	// requests spent it, nothing more, nothing less.
	if v, _ := adm.decide(info, 0); v != rejected {
		t.Fatal("bucket should be empty after spending the full burst")
	}
	st := adm.snapshot()
	if st.Offered != 5 || st.Admitted != 2 || st.Shed != 2 || st.Rejected != 1 {
		t.Fatalf("ledger = %+v, want 5 = 2 + 2 + 1", st)
	}
	// The refund must still cap at Burst: shedding a tenant whose bucket is
	// already full cannot mint extra tokens.
	now = now.Add(time.Hour) // refill to capacity
	if v, _ := adm.decide(info, 4); v != shed {
		t.Fatal("full-bucket request at depth not shed")
	}
	for i := 0; i < 2; i++ {
		if v, _ := adm.decide(info, 0); v != admitted {
			t.Fatalf("request %d after capped refund = %v, want admitted", i, v)
		}
	}
	if v, _ := adm.decide(info, 0); v != rejected {
		t.Fatal("refund on a full bucket minted a token beyond Burst")
	}
}

// TestCloseWakesBenchedReplica: a benched replica used to sleep out its full
// cooldown through Close, blocking shutdown for up to BenchFor. Close must
// wake it so the pool drains immediately. Run under -race in CI.
func TestCloseWakesBenchedReplica(t *testing.T) {
	benchFor := 30 * time.Second // far beyond the test's tolerance for Close
	p0, p1 := &panicBackend{}, &panicBackend{}
	b := NewReplicated(Options{
		MaxBatch:          2,
		MaxDelay:          time.Millisecond,
		ReplicaBenchAfter: 1,
		ReplicaBenchFor:   benchFor,
	}, p0, p1)

	// Two fully-failed groups: each benches whichever replica ran it.
	x := tensor.New(1, 3, 4, 4)
	for i := 0; i < 2; i++ {
		if _, err := b.PredictTensorCtx(context.Background(), x, 0, 0.5); err == nil {
			t.Fatal("panicking backend returned no error")
		}
	}
	// The bench is recorded after the response is delivered; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		trips := 0
		for _, r := range b.Stats().Replicas {
			trips += r.BenchTrips
		}
		if trips >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no replica was benched by fully-failed groups")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	b.Close()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Close took %v with a benched replica; want prompt wake (BenchFor=%v)", elapsed, benchFor)
	}
}
