// Package serve is the concurrent serving layer: it multiplexes many
// independent auditors (simulated devices, store-audit workers) onto one
// shared detector backend. Its core is the Batcher, a dynamic micro-batching
// scheduler that coalesces concurrent single-screen Predict calls into one
// PredictBatch forward, amortising the backbone across requests the way the
// paper's accessibility service amortises one model across every app on the
// device. The batch seam it drives is detect.PredictBatch, so any backend —
// float, int8, cached, decorated — sits behind it unchanged.
package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxBatch = 8
	DefaultMaxDelay = 2 * time.Millisecond
)

// Options tune the scheduler.
type Options struct {
	// MaxBatch caps how many requests one forward carries. A batch is
	// flushed as soon as it is full.
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch waits for
	// company. It is the latency the slowest-arriving request pays to buy
	// batching; under light load every batch degenerates to size 1 and the
	// only cost is one timer.
	MaxDelay time.Duration
	// QueueSize is the request channel's buffer (default 4x MaxBatch).
	QueueSize int
	// Timings optionally receives scheduler statistics: the "serve-batch"
	// stage tracks per-item amortised latency and total items, and
	// "serve-queued" counts requests found still waiting when a batch was
	// collected (queue pressure). Nil disables recording.
	Timings *perfmodel.Timings
}

// request is one in-flight Predict call: batch item n of tensor x, answered
// on resp. ctx is never nil — the legacy entry points enqueue Background.
type request struct {
	ctx  context.Context
	x    *tensor.Tensor
	n    int
	conf float64
	resp chan response
}

// response answers one request: detections on success, the request
// context's error when it was cancelled or expired before the forward ran.
type response struct {
	dets []metrics.Detection
	err  error
}

// Stats is a point-in-time snapshot of scheduler activity.
type Stats struct {
	Batches       int // forwards dispatched (after threshold grouping)
	Items         int // requests served through the scheduler
	MaxBatchSize  int // largest coalesced forward
	MaxQueueDepth int // most requests seen waiting after a collection
	Cancelled     int // requests pruned at batch formation (ctx dead in queue)
	Poisoned      int // grouped forwards that failed and were re-run item by item
	Failed        int // requests answered with a non-cancellation error
}

// Batcher coalesces concurrent Predict requests into batched forwards. It
// implements detect.Detector and detect.BatchPredictor, so it drops into any
// seam a backend fits — including under the middleware decorators, though
// the natural stack is Batcher on the outside of the shared cache:
//
//	shared := serve.NewBatcher(detect.WithResultCache(model, 256), serve.Options{})
//
// Safe for concurrent use. After Close, Predict degrades to direct
// unbatched calls on the inner backend rather than failing.
type Batcher struct {
	inner    detect.Predictor
	maxBatch int
	maxDelay time.Duration
	rec      *perfmodel.Timings

	mu     sync.RWMutex // guards closed vs. sends on reqs
	closed bool
	reqs   chan request
	done   chan struct{}

	statsMu sync.Mutex
	stats   Stats
}

// The scheduler drops into every seam a backend fits.
var (
	_ detect.Detector              = (*Batcher)(nil)
	_ detect.BatchPredictor        = (*Batcher)(nil)
	_ detect.ContextPredictor      = (*Batcher)(nil)
	_ detect.ContextBatchPredictor = (*Batcher)(nil)
)

// NewBatcher starts the scheduler goroutine over inner. Callers own the
// returned Batcher and should Close it to stop the goroutine; requests
// in flight at Close are still answered.
func NewBatcher(inner detect.Predictor, opts Options) *Batcher {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = DefaultMaxDelay
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = 4 * opts.MaxBatch
	}
	b := &Batcher{
		inner:    inner,
		maxBatch: opts.MaxBatch,
		maxDelay: opts.MaxDelay,
		rec:      opts.Timings,
		reqs:     make(chan request, opts.QueueSize),
		done:     make(chan struct{}),
	}
	go b.dispatch()
	return b
}

// Name reports the inner backend's name, so a batched detector still shows
// up as itself in tables and logs.
func (b *Batcher) Name() string {
	if d, ok := b.inner.(detect.Detector); ok {
		return d.Name()
	}
	return "batched"
}

// Stats returns a snapshot of scheduler counters.
func (b *Batcher) Stats() Stats {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	return b.stats
}

// Close stops accepting new batched work, waits for the scheduler to drain
// every queued request, and stops its goroutine. Predict remains safe to
// call afterwards — it falls through to direct inner calls. Close is
// idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	close(b.reqs)
	b.mu.Unlock()
	<-b.done
}

// PredictTensor submits one screen to the scheduler and blocks for its
// result. The output is exactly what inner.PredictTensor would return: the
// scheduler copies the item into a coalesced batch and the backends'
// arithmetic is per-item independent (the invariant TestPredictBatchEquivalence
// pins down).
func (b *Batcher) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	dets, _ := b.PredictTensorCtx(context.Background(), x, n, confThresh)
	return dets
}

// PredictTensorCtx submits one screen with a per-request context. An
// already-dead context is rejected before touching the queue; a context that
// dies while the request is queued makes the caller return ctx.Err()
// immediately (the scheduler prunes the abandoned request at batch formation
// and never spends forward compute on it); a context that dies during the
// forward still returns ctx.Err() promptly — the batch the request rode in
// completes for its other members and the orphaned result is dropped into
// the buffered response channel, so the scheduler never blocks on a caller
// that left. A Background context is exactly the legacy PredictTensor.
func (b *Batcher) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, confThresh float64) ([]metrics.Detection, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return detect.Predict(ctx, b.inner, x, n, confThresh)
	}
	resp := make(chan response, 1)
	req := request{ctx: ctx, x: x, n: n, conf: confThresh, resp: resp}
	// Send under the read lock: Close cannot close reqs while any sender
	// holds it, and the buffered channel plus the draining dispatcher keep
	// the critical section short. A cancellable caller stops waiting for
	// queue space the moment its context dies.
	if ctx.Done() == nil {
		b.reqs <- req
		b.mu.RUnlock()
		r := <-resp
		return r.dets, r.err
	}
	select {
	case b.reqs <- req:
		b.mu.RUnlock()
	case <-ctx.Done():
		b.mu.RUnlock()
		return nil, ctx.Err()
	}
	select {
	case r := <-resp:
		return r.dets, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// PredictBatch forwards an already-batched tensor directly: it is a batch,
// there is nothing to coalesce, and routing it through the queue would only
// add latency.
func (b *Batcher) PredictBatch(x *tensor.Tensor, confThresh float64) [][]metrics.Detection {
	return detect.PredictBatch(b.inner, x, confThresh)
}

// PredictBatchCtx forwards an already-batched tensor directly with its
// context; like PredictBatch there is nothing to coalesce.
func (b *Batcher) PredictBatchCtx(ctx context.Context, x *tensor.Tensor, confThresh float64) ([][]metrics.Detection, error) {
	return detect.PredictBatchCtx(ctx, b.inner, x, confThresh)
}

// dispatch is the scheduler loop: block for the first request, then collect
// followers until the batch is full or MaxDelay elapses, then flush. A
// closed request channel drains naturally — collect stops appending, the
// final flush answers the stragglers, and the next outer receive exits.
func (b *Batcher) dispatch() {
	defer close(b.done)
	for {
		first, ok := <-b.reqs
		if !ok {
			return
		}
		batch := append(make([]request, 0, b.maxBatch), first)
		timer := time.NewTimer(b.maxDelay)
	collect:
		for len(batch) < b.maxBatch {
			select {
			case r, ok := <-b.reqs:
				if !ok {
					break collect
				}
				batch = append(batch, r)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		b.noteCollected(len(batch), len(b.reqs))
		b.flush(batch)
	}
}

// noteCollected folds one collection into the counters.
func (b *Batcher) noteCollected(size, depth int) {
	b.statsMu.Lock()
	b.stats.Items += size
	if size > b.stats.MaxBatchSize {
		b.stats.MaxBatchSize = size
	}
	if depth > b.stats.MaxQueueDepth {
		b.stats.MaxQueueDepth = depth
	}
	b.statsMu.Unlock()
	b.rec.AddItems("serve-queued", depth)
}

// flush answers every request in batch. Requests whose context died while
// they waited are pruned first — their callers have already returned (or are
// about to), so spending forward compute on them is pure waste; each is
// answered with its ctx.Err() into its buffered channel. Survivors are
// grouped by confidence threshold and item shape — a batched forward carries
// one threshold, and heterogeneous screens cannot share a tensor — then each
// group runs as one PredictBatch. Single-request groups skip the copy and
// run directly.
func (b *Batcher) flush(batch []request) {
	live := batch[:0]
	pruned := 0
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.resp <- response{err: err}
			pruned++
			continue
		}
		live = append(live, r)
	}
	if pruned > 0 {
		b.notePruned(pruned)
	}
	batch = live
	for len(batch) > 0 {
		// group gets its own array: the in-place tail filter below reuses
		// batch's backing array, which an aliased append would clobber.
		group := append(make([]request, 0, len(batch)), batch[0])
		rest := batch[1:]
		tail := batch[1:1]
		for _, r := range rest {
			if r.conf == group[0].conf && sameItemShape(r, group[0]) {
				group = append(group, r)
			} else {
				tail = append(tail, r)
			}
		}
		b.runGroup(group)
		batch = tail
	}
}

// sameItemShape reports whether two requests' per-item tensors agree in
// every non-batch dimension.
func sameItemShape(a, c request) bool {
	if len(a.x.Shape) != len(c.x.Shape) {
		return false
	}
	for i := 1; i < len(a.x.Shape); i++ {
		if a.x.Shape[i] != c.x.Shape[i] {
			return false
		}
	}
	return true
}

// runGroup executes one homogeneous group as a single forward and fans the
// results back out to their requesters. Failure containment is the
// scheduler's poison-item isolation: a grouped forward that panics, errors,
// or returns a misaligned result slice is re-run item by item, so the one
// poison item fails alone — with its own error — while the rest of the
// batch still returns real results. Historically an inner panic here killed
// the dispatcher goroutine, leaving every queued and future caller blocked
// forever; recovery at this seam is what keeps one bad screen from taking
// down the whole fleet's serving stack.
func (b *Batcher) runGroup(group []request) {
	start := time.Now()
	if len(group) == 1 {
		r := group[0]
		dets, err := b.predictOne(r)
		b.answer(r, dets, err)
		b.noteBatch(time.Since(start), 1)
		return
	}
	item := group[0].x.Shape[1:]
	per := 1
	for _, d := range item {
		per *= d
	}
	sub := tensor.New(append([]int{len(group)}, item...)...)
	for j, r := range group {
		copy(sub.Data[j*per:(j+1)*per], r.x.Data[r.n*per:(r.n+1)*per])
	}
	res, err := b.predictGroup(sub, group[0].conf)
	if err != nil || len(res) != len(group) {
		// Poison isolation: one member spoiled the shared forward (or the
		// backend misaligned the result mapping). Re-run each request on its
		// own so the failure lands only on the item that caused it.
		b.notePoisoned()
		for _, r := range group {
			dets, ierr := b.predictOne(r)
			b.answer(r, dets, ierr)
		}
	} else {
		for j, r := range group {
			r.resp <- response{dets: res[j]}
		}
	}
	b.noteBatch(time.Since(start), len(group))
}

// predictOne runs one request directly on the inner backend, converting a
// panic to an error so the dispatcher survives any backend.
func (b *Batcher) predictOne(r request) (dets []metrics.Detection, err error) {
	defer func() {
		if p := recover(); p != nil {
			dets, err = nil, &detect.PanicError{Value: p}
		}
	}()
	return detect.Predict(r.ctx, b.inner, r.x, r.n, r.conf)
}

// predictGroup runs one coalesced forward, converting a panic to an error.
func (b *Batcher) predictGroup(sub *tensor.Tensor, conf float64) (res [][]metrics.Detection, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, &detect.PanicError{Value: p}
		}
	}()
	return detect.PredictBatchCtx(context.Background(), b.inner, sub, conf)
}

// answer delivers one request's outcome, counting real failures (not
// cancellations, which Stats.Cancelled and the caller's own ctx already
// account for).
func (b *Batcher) answer(r request, dets []metrics.Detection, err error) {
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		b.statsMu.Lock()
		b.stats.Failed++
		b.statsMu.Unlock()
		b.rec.AddItems("serve-failed", 1)
	}
	r.resp <- response{dets: dets, err: err}
}

// notePoisoned records one grouped forward that fell back to per-item
// isolation.
func (b *Batcher) notePoisoned() {
	b.statsMu.Lock()
	b.stats.Poisoned++
	b.statsMu.Unlock()
	b.rec.AddItems("serve-poisoned", 1)
}

// notePruned records requests dropped at batch formation because their
// context had already been cancelled or had expired.
func (b *Batcher) notePruned(n int) {
	b.statsMu.Lock()
	b.stats.Cancelled += n
	b.statsMu.Unlock()
	b.rec.AddItems("serve-cancelled", n)
}

// noteBatch records one flushed forward.
func (b *Batcher) noteBatch(wall time.Duration, items int) {
	b.statsMu.Lock()
	b.stats.Batches++
	b.statsMu.Unlock()
	b.rec.ObserveBatch("serve-batch", wall, items)
}
