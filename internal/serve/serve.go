// Package serve is the concurrent serving layer: it multiplexes many
// independent auditors (simulated devices, store-audit workers) onto a shared
// pool of detector replicas. It is built as three explicit layers —
//
//	admission  (admission.go)  per-tenant token buckets, priority assignment,
//	                           queue-depth load shedding
//	scheduler  (scheduler.go)  priority queues and dynamic batch formation
//	                           (coalesce, then group by threshold + shape)
//	replicas   (replica.go)    N independently-pooled model instances with
//	                           per-replica health accounting and benching
//
// — fronted by the Batcher facade in this file, which preserves the original
// single-replica PredictTensor/PredictTensorCtx contract bit-identically. The
// batch seam it drives is detect.PredictBatch, so any backend — float, int8,
// cached, decorated — sits behind it unchanged.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxBatch = 8
	DefaultMaxDelay = 2 * time.Millisecond
)

// Options tune the serving layers.
type Options struct {
	// MaxBatch caps how many requests one forward carries. A batch is
	// flushed as soon as it is full.
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch waits for
	// company. It is the latency the slowest-arriving request pays to buy
	// batching; under light load every batch degenerates to size 1 and the
	// only cost is one timer.
	MaxDelay time.Duration
	// QueueSize is each priority queue's buffer (default 4 x MaxBatch x
	// replica count).
	QueueSize int
	// Timings optionally receives per-layer statistics: "serve-batch"
	// tracks per-item amortised forward latency, "serve-queued" counts
	// requests found waiting after a collection (queue pressure),
	// "serve-rejected"/"serve-shed" count admission outcomes, and with
	// multiple replicas "serve-replicaN" tracks per-replica items. Nil
	// disables recording.
	Timings *perfmodel.Timings

	// Tenants is the admission table: per-tenant rate limits and priority.
	// A tenant present here gets its configured priority regardless of what
	// its requests' contexts claim. Tenants absent from the table get
	// TenantDefaults. Nil means every tenant gets TenantDefaults.
	Tenants map[TenantID]TenantConfig
	// TenantDefaults is the policy for tenants not in Tenants. The zero
	// value is unlimited rate at live priority — exactly the legacy
	// behaviour, so existing callers admit everything unchanged.
	TenantDefaults TenantConfig
	// MaxQueueDepth sheds requests once the scheduler's queues hold this
	// many; 0 disables shedding (legacy behaviour).
	MaxQueueDepth int
	// Degraded optionally answers shed requests with a cheap fallback
	// (typically the frauddroid heuristic) through the detect.WithFallback
	// machinery instead of an ErrOverloaded error — the paper's
	// degrade-don't-fail stance applied to overload.
	Degraded detect.Detector

	// ReplicaBenchAfter benches a replica after this many consecutive
	// fully-failed groups; 0 means DefaultBenchAfter, negative disables.
	// Benching is always disabled when the pool has a single replica —
	// benching the only instance would stall all traffic for no benefit.
	ReplicaBenchAfter int
	// ReplicaBenchFor is the bench cooldown; 0 means DefaultBenchFor.
	ReplicaBenchFor time.Duration
}

// request is one in-flight Predict call: batch item n of tensor x, answered
// on resp. ctx is never nil — the legacy entry points enqueue Background.
type request struct {
	ctx  context.Context
	x    *tensor.Tensor
	n    int
	conf float64
	resp chan response
}

// response answers one request: detections on success, the request
// context's error when it was cancelled or expired before the forward ran.
type response struct {
	dets []metrics.Detection
	err  error
}

// Stats is a point-in-time snapshot across all three layers.
type Stats struct {
	Batches       int // forwards dispatched (after threshold grouping)
	Items         int // requests served through the scheduler
	MaxBatchSize  int // largest coalesced forward
	MaxQueueDepth int // most requests seen waiting after a collection
	Cancelled     int // requests pruned at batch formation (ctx dead in queue)
	Poisoned      int // grouped forwards that failed and were re-run item by item
	Failed        int // requests answered with a non-cancellation error

	// Admission ledger; Offered == Admitted + Shed + Rejected always.
	Offered  int
	Admitted int
	Shed     int
	Rejected int
	Tenants  map[TenantID]TenantStats

	// Replicas holds one health/utilisation ledger per pool member.
	Replicas []ReplicaStats
}

// Batcher is the serving facade: admission in front, priority scheduler in
// the middle, replica pool at the back. It implements detect.Detector and
// detect.BatchPredictor, so it drops into any seam a backend fits — including
// under the middleware decorators, though the natural stack is Batcher on the
// outside of the shared cache:
//
//	shared := serve.NewBatcher(detect.WithResultCache(model, 256), serve.Options{})
//
// Safe for concurrent use. After Close, Predict degrades to direct
// unbatched calls on the first replica's backend rather than failing.
type Batcher struct {
	inner    detect.Predictor // first replica's backend: direct path + post-Close
	rec      *perfmodel.Timings
	adm      *admission
	sched    *scheduler
	reps     []*replica
	degraded detect.Predictor // fallback chain answering shed requests; may be nil
	multi    bool

	mu       sync.RWMutex // guards closed vs. sends on the scheduler queues
	closed   bool
	wg       sync.WaitGroup // one worker per replica
	stopping chan struct{}  // closed at Close: wakes benched replicas for the drain
	done     chan struct{}  // closed once every worker has drained and exited

	statsMu sync.Mutex
	stats   Stats
}

// The facade drops into every seam a backend fits.
var (
	_ detect.Detector              = (*Batcher)(nil)
	_ detect.BatchPredictor        = (*Batcher)(nil)
	_ detect.ContextPredictor      = (*Batcher)(nil)
	_ detect.ContextBatchPredictor = (*Batcher)(nil)
)

// NewBatcher starts the serving layers over a single backend — the legacy
// constructor, exactly NewReplicated with a pool of one. Callers own the
// returned Batcher and should Close it to stop the worker; requests in
// flight at Close are still answered.
func NewBatcher(inner detect.Predictor, opts Options) *Batcher {
	return NewReplicated(opts, inner)
}

// NewReplicated starts the serving layers over a pool of replicas, one
// worker goroutine per replica. Each replica should be an independent model
// instance (see detect.BuildReplicas); with more than one replica, backends
// exposing a SetPool seam get a private tensor.Pool each so recycled
// activations never cross replicas. Panics when called with no replicas.
func NewReplicated(opts Options, replicas ...detect.Predictor) *Batcher {
	if len(replicas) == 0 {
		panic("serve: NewReplicated requires at least one replica")
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = DefaultMaxDelay
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = 4 * opts.MaxBatch * len(replicas)
	}
	benchAfter := opts.ReplicaBenchAfter
	switch {
	case len(replicas) == 1 || benchAfter < 0:
		benchAfter = 0
	case benchAfter == 0:
		benchAfter = DefaultBenchAfter
	}
	benchFor := opts.ReplicaBenchFor
	if benchFor <= 0 {
		benchFor = DefaultBenchFor
	}
	b := &Batcher{
		inner:    replicas[0],
		rec:      opts.Timings,
		adm:      newAdmission(opts.Tenants, opts.TenantDefaults, opts.MaxQueueDepth, nil),
		sched:    newScheduler(opts.MaxBatch, opts.MaxDelay, opts.QueueSize),
		multi:    len(replicas) > 1,
		stopping: make(chan struct{}),
		done:     make(chan struct{}),
	}
	if opts.Degraded != nil {
		b.degraded = detect.WithFallback(detect.FallbackOptions{Timings: opts.Timings}, opts.Degraded)
	}
	for i, backend := range replicas {
		rep := newReplica(i, backend, benchAfter, benchFor, b.multi)
		b.reps = append(b.reps, rep)
		b.wg.Add(1)
		go b.worker(rep)
	}
	return b
}

// Name reports the first replica's name, so a batched detector still shows
// up as itself in tables and logs.
func (b *Batcher) Name() string {
	if d, ok := b.inner.(detect.Detector); ok {
		return d.Name()
	}
	return "batched"
}

// Stats returns a snapshot across the layers.
func (b *Batcher) Stats() Stats {
	b.statsMu.Lock()
	st := b.stats
	b.statsMu.Unlock()
	adm := b.adm.snapshot()
	st.Offered, st.Admitted, st.Shed, st.Rejected = adm.Offered, adm.Admitted, adm.Shed, adm.Rejected
	st.Tenants = adm.Tenants
	st.Replicas = make([]ReplicaStats, len(b.reps))
	for i, r := range b.reps {
		st.Replicas[i] = r.snapshot()
	}
	return st
}

// Close stops accepting new batched work, waits for every worker to drain
// its queued requests, and stops the worker goroutines. Predict remains safe
// to call afterwards — it falls through to direct inner calls. Close is
// idempotent. The closed flag flips under the write lock while every
// submission holds the read lock across its admission decision and enqueue,
// so a request observes either an open Batcher (and is drained before Close
// returns) or ErrClosed — never a closed queue mid-send.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	// Wake any replica sleeping out a bench cooldown before closing the
	// queues: a benched replica must join the drain immediately, not block
	// shutdown for up to its remaining BenchFor.
	close(b.stopping)
	b.sched.close()
	b.mu.Unlock()
	b.wg.Wait()
	close(b.done)
}

// PredictTensor submits one screen to the serving layers and blocks for its
// result. The output is exactly what inner.PredictTensor would return: the
// scheduler copies the item into a coalesced batch and the backends'
// arithmetic is per-item independent (the invariant TestPredictBatchEquivalence
// pins down).
func (b *Batcher) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	dets, _ := b.PredictTensorCtx(context.Background(), x, n, confThresh)
	return dets
}

// PredictTensorCtx submits one screen with a per-request context. An
// already-dead context is rejected before touching the layers; a context that
// dies while the request is queued makes the caller return ctx.Err()
// immediately (the scheduler prunes the abandoned request at batch formation
// and never spends forward compute on it); a context that dies during the
// forward still returns ctx.Err() promptly — the batch the request rode in
// completes for its other members and the orphaned result is dropped into
// the buffered response channel, so no worker ever blocks on a caller that
// left. Tenant identity attached via WithTenant selects the rate bucket and
// priority queue; a bare Background context is exactly the legacy
// PredictTensor. After Close the call degrades to a direct inner call.
func (b *Batcher) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, confThresh float64) ([]metrics.Detection, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dets, err := b.submit(ctx, x, n, confThresh)
	if errors.Is(err, ErrClosed) {
		return detect.Predict(ctx, b.inner, x, n, confThresh)
	}
	return dets, err
}

// submit runs one request through admission and, if admitted, the scheduler.
// The read lock spans the admission decision and the enqueue, making the
// decision atomic with respect to Close: ErrClosed is deterministic, an
// admitted request is always drained.
func (b *Batcher) submit(ctx context.Context, x *tensor.Tensor, n int, confThresh float64) ([]metrics.Detection, error) {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, ErrClosed
	}
	info := TenantFrom(ctx)
	v, prio := b.adm.decide(info, b.sched.depth())
	switch v {
	case rejected:
		b.mu.RUnlock()
		b.rec.AddItems("serve-rejected", 1)
		return nil, fmt.Errorf("%w: tenant %q", ErrRateLimited, info.ID)
	case shed:
		b.mu.RUnlock()
		b.rec.AddItems("serve-shed", 1)
		if b.degraded != nil {
			// Degrade, don't fail: the fallback chain (heuristic detector
			// behind a circuit breaker) answers in microseconds with a
			// lower-fidelity result the decorator can still act on.
			return detect.Predict(ctx, b.degraded, x, n, confThresh)
		}
		return nil, ErrOverloaded
	}
	resp := make(chan response, 1)
	req := request{ctx: ctx, x: x, n: n, conf: confThresh, resp: resp}
	q := b.sched.queues[prio]
	// Send under the read lock: Close cannot close the queues while any
	// sender holds it, and the buffered channel plus the draining workers
	// keep the critical section short. A cancellable caller stops waiting
	// for queue space the moment its context dies.
	if ctx.Done() == nil {
		q <- req
		b.mu.RUnlock()
		r := <-resp
		return r.dets, r.err
	}
	select {
	case q <- req:
		b.mu.RUnlock()
	case <-ctx.Done():
		b.mu.RUnlock()
		return nil, ctx.Err()
	}
	select {
	case r := <-resp:
		return r.dets, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// PredictBatch forwards an already-batched tensor directly: it is a batch,
// there is nothing to coalesce, and routing it through the queue would only
// add latency.
func (b *Batcher) PredictBatch(x *tensor.Tensor, confThresh float64) [][]metrics.Detection {
	return detect.PredictBatch(b.inner, x, confThresh)
}

// PredictBatchCtx forwards an already-batched tensor directly with its
// context; like PredictBatch there is nothing to coalesce.
func (b *Batcher) PredictBatchCtx(ctx context.Context, x *tensor.Tensor, confThresh float64) ([][]metrics.Detection, error) {
	return detect.PredictBatchCtx(ctx, b.inner, x, confThresh)
}

// worker is one replica's serving loop: sit out any bench cooldown, claim
// the first request of a batch, coalesce followers, flush. Closed queues
// drain naturally — take returns the stragglers until ok=false, and the
// worker exits. With N replicas, N workers pull from the shared priority
// queues, so a slow or benched replica's share flows to its peers.
func (b *Batcher) worker(rep *replica) {
	defer b.wg.Done()
	for {
		rep.waitBench(b.stopping)
		first, ok := b.sched.take()
		if !ok {
			return
		}
		batch := b.sched.collect(first)
		b.noteCollected(len(batch), b.sched.depth())
		b.flush(rep, batch)
	}
}

// noteCollected folds one collection into the counters.
func (b *Batcher) noteCollected(size, depth int) {
	b.statsMu.Lock()
	b.stats.Items += size
	if size > b.stats.MaxBatchSize {
		b.stats.MaxBatchSize = size
	}
	if depth > b.stats.MaxQueueDepth {
		b.stats.MaxQueueDepth = depth
	}
	b.statsMu.Unlock()
	b.rec.AddItems("serve-queued", depth)
}

// flush answers every request in batch on rep. Requests whose context died
// while they waited are pruned first — their callers have already returned
// (or are about to), so spending forward compute on them is pure waste; each
// is answered with its ctx.Err() into its buffered channel. Survivors are
// split by groupRequests — one threshold, one shape per forward — and each
// group runs as one PredictBatch. Single-request groups skip the copy and
// run directly.
func (b *Batcher) flush(rep *replica, batch []request) {
	live := batch[:0]
	pruned := 0
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.resp <- response{err: err}
			pruned++
			continue
		}
		live = append(live, r)
	}
	if pruned > 0 {
		b.notePruned(pruned)
	}
	for _, group := range groupRequests(live) {
		b.runGroup(rep, group)
	}
}

// runGroup executes one homogeneous group as a single forward on rep and
// fans the results back out to their requesters. Failure containment is the
// scheduler's poison-item isolation: a grouped forward that panics, errors,
// or returns a misaligned result slice is re-run item by item, so the one
// poison item fails alone — with its own error — while the rest of the
// batch still returns real results. Historically an inner panic here killed
// the dispatcher goroutine, leaving every queued and future caller blocked
// forever; recovery at this seam is what keeps one bad screen from taking
// down the whole fleet's serving stack.
func (b *Batcher) runGroup(rep *replica, group []request) {
	start := time.Now()
	if len(group) == 1 {
		r := group[0]
		dets, err := b.predictOne(rep, r)
		failed := b.answer(r, dets, err)
		b.noteBatch(rep, time.Since(start), 1, failed, false)
		return
	}
	item := group[0].x.Shape[1:]
	per := 1
	for _, d := range item {
		per *= d
	}
	sub := tensor.New(append([]int{len(group)}, item...)...)
	for j, r := range group {
		copy(sub.Data[j*per:(j+1)*per], r.x.Data[r.n*per:(r.n+1)*per])
	}
	res, err := b.predictGroup(rep, sub, group[0].conf)
	if err != nil || len(res) != len(group) {
		// Poison isolation: one member spoiled the shared forward (or the
		// backend misaligned the result mapping). Re-run each request on its
		// own so the failure lands only on the item that caused it.
		b.notePoisoned()
		failed := 0
		for _, r := range group {
			dets, ierr := b.predictOne(rep, r)
			failed += b.answer(r, dets, ierr)
		}
		b.noteBatch(rep, time.Since(start), len(group), failed, true)
		return
	}
	for j, r := range group {
		r.resp <- response{dets: res[j]}
	}
	b.noteBatch(rep, time.Since(start), len(group), 0, false)
}

// predictOne runs one request directly on rep's backend, converting a panic
// to an error so the worker survives any backend.
func (b *Batcher) predictOne(rep *replica, r request) (dets []metrics.Detection, err error) {
	defer func() {
		if p := recover(); p != nil {
			dets, err = nil, &detect.PanicError{Value: p}
		}
	}()
	return detect.Predict(r.ctx, rep.backend, r.x, r.n, r.conf)
}

// predictGroup runs one coalesced forward on rep's backend, converting a
// panic to an error.
func (b *Batcher) predictGroup(rep *replica, sub *tensor.Tensor, conf float64) (res [][]metrics.Detection, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, &detect.PanicError{Value: p}
		}
	}()
	return detect.PredictBatchCtx(context.Background(), rep.backend, sub, conf)
}

// answer delivers one request's outcome, counting real failures (not
// cancellations, which Stats.Cancelled and the caller's own ctx already
// account for). It reports 1 for a counted failure so runGroup can fold the
// tally into the replica's health ledger.
func (b *Batcher) answer(r request, dets []metrics.Detection, err error) int {
	failed := 0
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		failed = 1
		b.statsMu.Lock()
		b.stats.Failed++
		b.statsMu.Unlock()
		b.rec.AddItems("serve-failed", 1)
	}
	r.resp <- response{dets: dets, err: err}
	return failed
}

// notePoisoned records one grouped forward that fell back to per-item
// isolation.
func (b *Batcher) notePoisoned() {
	b.statsMu.Lock()
	b.stats.Poisoned++
	b.statsMu.Unlock()
	b.rec.AddItems("serve-poisoned", 1)
}

// notePruned records requests dropped at batch formation because their
// context had already been cancelled or had expired.
func (b *Batcher) notePruned(n int) {
	b.statsMu.Lock()
	b.stats.Cancelled += n
	b.statsMu.Unlock()
	b.rec.AddItems("serve-cancelled", n)
}

// noteBatch records one flushed forward in the global counters, the timing
// recorder, and the replica's health ledger.
func (b *Batcher) noteBatch(rep *replica, wall time.Duration, items, failed int, poisoned bool) {
	b.statsMu.Lock()
	b.stats.Batches++
	b.statsMu.Unlock()
	b.rec.ObserveBatch("serve-batch", wall, items)
	if b.multi {
		b.rec.AddItems(fmt.Sprintf("serve-replica%d", rep.id), items)
	}
	rep.note(wall, items, failed, poisoned)
}
