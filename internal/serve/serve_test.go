package serve

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
	"repro/internal/yolite"
)

// stubBackend answers from the screen's first pixel, so each request has a
// distinct correct result and any fan-out mix-up is caught. It records the
// batch sizes and thresholds it was handed, and can be gated to hold the
// scheduler mid-flush. Concurrency-safe.
type stubBackend struct {
	mu         sync.Mutex
	batchSizes []int
	threshes   []float64
	calls      int
	gate       chan struct{} // when non-nil, every forward waits on it
}

func (s *stubBackend) Name() string { return "stub" }

func (s *stubBackend) note(size int, conf float64) {
	s.mu.Lock()
	s.batchSizes = append(s.batchSizes, size)
	s.threshes = append(s.threshes, conf)
	s.calls++
	gate := s.gate
	s.mu.Unlock()
	if gate != nil {
		<-gate
	}
}

func (s *stubBackend) answer(x *tensor.Tensor, n int, conf float64) []metrics.Detection {
	per := len(x.Data) / x.Shape[0]
	return []metrics.Detection{{
		Class: dataset.ClassUPO,
		B:     geom.BoxF{X: float64(x.Data[n*per]), W: 8, H: 8},
		Score: conf,
	}}
}

func (s *stubBackend) PredictTensor(x *tensor.Tensor, n int, conf float64) []metrics.Detection {
	s.note(1, conf)
	return s.answer(x, n, conf)
}

func (s *stubBackend) PredictBatch(x *tensor.Tensor, conf float64) [][]metrics.Detection {
	s.note(x.Shape[0], conf)
	out := make([][]metrics.Detection, x.Shape[0])
	for i := range out {
		out[i] = s.answer(x, i, conf)
	}
	return out
}

func (s *stubBackend) sizes() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.batchSizes...)
}

// screen builds a 1-item tensor whose first pixel carries id.
func screen(id int) *tensor.Tensor {
	x := tensor.New(1, 3, yolite.InputH, yolite.InputW)
	x.Data[0] = float32(id)
	for i := 1; i < len(x.Data); i++ {
		x.Data[i] = float32((id*31 + i) % 255)
	}
	return x
}

// TestBatcherCoalescesToFullBatch: with a generous delay, concurrent
// requests must ride one forward, not four.
func TestBatcherCoalescesToFullBatch(t *testing.T) {
	s := &stubBackend{}
	b := NewBatcher(s, Options{MaxBatch: 4, MaxDelay: time.Second})
	defer b.Close()
	var wg sync.WaitGroup
	results := make([][]metrics.Detection, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = b.PredictTensor(screen(i), 0, 0.45)
		}(i)
	}
	wg.Wait()
	if sizes := s.sizes(); len(sizes) != 1 || sizes[0] != 4 {
		t.Fatalf("batch sizes = %v, want one forward of 4", sizes)
	}
	for i, dets := range results {
		if len(dets) != 1 || dets[i%1].B.X != float64(i) {
			t.Fatalf("request %d got the wrong screen's result: %v", i, dets)
		}
	}
	st := b.Stats()
	if st.Batches != 1 || st.Items != 4 || st.MaxBatchSize != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestBatcherFlushesOnMaxDelay: a lone request must not wait for a batch
// that never fills.
func TestBatcherFlushesOnMaxDelay(t *testing.T) {
	s := &stubBackend{}
	b := NewBatcher(s, Options{MaxBatch: 8, MaxDelay: 5 * time.Millisecond})
	defer b.Close()
	start := time.Now()
	dets := b.PredictTensor(screen(7), 0, 0.45)
	if wait := time.Since(start); wait > time.Second {
		t.Fatalf("lone request waited %v", wait)
	}
	if len(dets) != 1 || dets[0].B.X != 7 {
		t.Fatalf("dets = %v", dets)
	}
	if sizes := s.sizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("batch sizes = %v, want [1]", sizes)
	}
}

// TestBatcherGroupsByThreshold: one collection holding two operating
// thresholds must split into two forwards — a batched forward carries a
// single threshold.
func TestBatcherGroupsByThreshold(t *testing.T) {
	s := &stubBackend{}
	b := NewBatcher(s, Options{MaxBatch: 4, MaxDelay: time.Second})
	defer b.Close()
	confs := []float64{0.3, 0.5, 0.3, 0.5}
	var wg sync.WaitGroup
	results := make([][]metrics.Detection, 4)
	for i, conf := range confs {
		wg.Add(1)
		go func(i int, conf float64) {
			defer wg.Done()
			results[i] = b.PredictTensor(screen(i), 0, conf)
		}(i, conf)
	}
	wg.Wait()
	sizes := s.sizes()
	if len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 2 {
		t.Fatalf("batch sizes = %v, want [2 2]", sizes)
	}
	for i, dets := range results {
		if dets[0].B.X != float64(i) || dets[0].Score != confs[i] {
			t.Fatalf("request %d answered with wrong screen or threshold: %v", i, dets)
		}
	}
}

// TestBatcherCloseDrainsPending: requests queued behind a gated backend must
// all be answered by Close, and post-Close calls degrade to direct
// unbatched inference instead of failing.
func TestBatcherCloseDrainsPending(t *testing.T) {
	s := &stubBackend{gate: make(chan struct{})}
	b := NewBatcher(s, Options{MaxBatch: 2, MaxDelay: time.Millisecond})
	var wg sync.WaitGroup
	results := make([][]metrics.Detection, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = b.PredictTensor(screen(i), 0, 0.45)
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let requests queue behind the gate
	close(s.gate)
	b.Close()
	wg.Wait()
	for i, dets := range results {
		if len(dets) != 1 || dets[0].B.X != float64(i) {
			t.Fatalf("request %d lost across Close: %v", i, dets)
		}
	}
	// After Close the Batcher still serves, directly.
	calls := func() int { s.mu.Lock(); defer s.mu.Unlock(); return s.calls }()
	if dets := b.PredictTensor(screen(9), 0, 0.45); dets[0].B.X != 9 {
		t.Fatalf("post-Close predict = %v", dets)
	}
	if got := func() int { s.mu.Lock(); defer s.mu.Unlock(); return s.calls }(); got != calls+1 {
		t.Fatal("post-Close predict did not reach the backend directly")
	}
	b.Close() // idempotent
}

// TestBatcherTimings: the scheduler's stats must land in the shared
// recorder under the serve-batch stage.
func TestBatcherTimings(t *testing.T) {
	rec := &perfmodel.Timings{}
	b := NewBatcher(&stubBackend{}, Options{MaxBatch: 2, MaxDelay: time.Millisecond, Timings: rec})
	defer b.Close()
	b.PredictTensor(screen(1), 0, 0.45)
	b.PredictTensor(screen(2), 0, 0.45)
	if got := rec.Stage("serve-batch").Count; got != 2 {
		t.Fatalf("serve-batch count = %d, want 2", got)
	}
}

// TestBatcherEquivalenceRealModel is the serving layer's correctness
// contract: batched answers must be bit-identical to direct per-item
// PredictTensor on the same model.
func TestBatcherEquivalenceRealModel(t *testing.T) {
	m := yolite.NewModel(3)
	m.Pool = tensor.NewPool() // the production stack batches a pooled model
	b := NewBatcher(m, Options{MaxBatch: 4, MaxDelay: 10 * time.Millisecond})
	defer b.Close()
	const screens = 4
	want := make([][]metrics.Detection, screens)
	xs := make([]*tensor.Tensor, screens)
	rng := rand.New(rand.NewSource(42))
	total := 0
	for i := range xs {
		xs[i] = tensor.New(1, 3, yolite.InputH, yolite.InputW)
		for j := range xs[i].Data {
			xs[i].Data[j] = rng.Float32()
		}
		want[i] = m.PredictTensor(xs[i], 0, 0.3)
		total += len(want[i])
	}
	if total == 0 {
		t.Fatal("equivalence test vacuous, no detections produced")
	}
	var wg sync.WaitGroup
	for round := 0; round < 2; round++ {
		got := make([][]metrics.Detection, screens)
		for i := range xs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i] = b.PredictTensor(xs[i], 0, 0.3)
			}(i)
		}
		wg.Wait()
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("round %d screen %d: batched %v != direct %v", round, i, got[i], want[i])
			}
		}
	}
	// A cancellable per-request context that never fires must not change a
	// bit either: the same screens ride the ctx entry point.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := make([][]metrics.Detection, screens)
	errs := make([]error, screens)
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = b.PredictTensorCtx(ctx, xs[i], 0, 0.3)
		}(i)
	}
	wg.Wait()
	for i := range got {
		if errs[i] != nil {
			t.Fatalf("ctx round screen %d: err = %v", i, errs[i])
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("ctx round screen %d: batched %v != direct %v", i, got[i], want[i])
		}
	}
	if b.Stats().Items != 3*screens {
		t.Fatalf("stats items = %d, want %d", b.Stats().Items, 3*screens)
	}
}

// TestBatcherConcurrentStress soaks the scheduler under -race: many
// goroutines, rotating screens and thresholds, over a sharded cache — the
// full serving stack.
func TestBatcherConcurrentStress(t *testing.T) {
	s := &stubBackend{}
	b := NewBatcher(detect.WithResultCache(s, 64), Options{MaxBatch: 4, MaxDelay: 500 * time.Microsecond})
	defer b.Close()
	const (
		workers = 8
		iters   = 50
		screens = 24
	)
	pool := make([]*tensor.Tensor, screens)
	for id := range pool {
		pool[id] = screen(id)
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				id := rng.Intn(screens)
				conf := []float64{0.3, 0.45}[rng.Intn(2)]
				dets := b.PredictTensor(pool[id], 0, conf)
				if len(dets) != 1 || dets[0].B.X != float64(id) || dets[0].Score != conf {
					t.Errorf("screen %d conf %v: %v", id, conf, dets)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if got := b.Stats().Items; got != workers*iters {
		t.Fatalf("scheduler served %d items, want %d", got, workers*iters)
	}
}

// TestBatcherDirectBatchBypassesQueue: an already-batched tensor goes
// straight through.
func TestBatcherDirectBatchBypassesQueue(t *testing.T) {
	s := &stubBackend{}
	b := NewBatcher(s, Options{})
	defer b.Close()
	x := tensor.New(3, 3, yolite.InputH, yolite.InputW)
	per := len(x.Data) / 3
	for i := 0; i < 3; i++ {
		x.Data[i*per] = float32(i)
	}
	out := b.PredictBatch(x, 0.45)
	if len(out) != 3 {
		t.Fatalf("got %d items", len(out))
	}
	for i, dets := range out {
		if dets[0].B.X != float64(i) {
			t.Fatalf("item %d: %v", i, dets)
		}
	}
	if sizes := s.sizes(); len(sizes) != 1 || sizes[0] != 3 {
		t.Fatalf("batch sizes = %v, want [3]", sizes)
	}
	if b.Name() != "stub" {
		t.Fatalf("Name = %q", b.Name())
	}
}
