package serve

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestStatsFamilies(t *testing.T) {
	st := Stats{
		Batches: 10, Items: 80, MaxBatchSize: 16, MaxQueueDepth: 32,
		Cancelled: 3, Poisoned: 1, Failed: 2,
		Offered: 100, Admitted: 80, Shed: 15, Rejected: 5,
		Tenants: map[TenantID]TenantStats{
			"tenant0": {Offered: 60, Admitted: 50, Shed: 8, Rejected: 2},
			"tenant1": {Offered: 40, Admitted: 30, Shed: 7, Rejected: 3},
		},
		Replicas: []ReplicaStats{
			{ID: 0, Batches: 6, Items: 50, Failed: 1, Busy: 250 * time.Millisecond, BenchTrips: 1, Benched: true},
			{ID: 1, Batches: 4, Items: 30, Busy: 100 * time.Millisecond},
		},
	}
	text := metrics.TextString(st.Families())
	if n, err := metrics.ValidateText(strings.NewReader(text)); err != nil || n == 0 {
		t.Fatalf("families invalid (n=%d): %v\n%s", n, err, text)
	}
	for _, want := range []string{
		`darpa_admission_requests_total{verdict="offered"} 100`,
		`darpa_admission_requests_total{verdict="admitted"} 80`,
		`darpa_admission_requests_total{verdict="shed"} 15`,
		`darpa_admission_requests_total{verdict="rejected"} 5`,
		`darpa_admission_tenant_requests_total{tenant="tenant0",verdict="offered"} 60`,
		`darpa_admission_tenant_requests_total{tenant="tenant1",verdict="rejected"} 3`,
		`darpa_scheduler_requests_total{outcome="served"} 80`,
		`darpa_scheduler_requests_total{outcome="cancelled"} 3`,
		`darpa_scheduler_batches_total{kind="dispatched"} 10`,
		`darpa_scheduler_batches_total{kind="poisoned"} 1`,
		`darpa_scheduler_watermarks{mark="max_batch_size"} 16`,
		`darpa_replica_requests_total{outcome="served",replica="0"} 50`,
		`darpa_replica_busy_seconds_total{replica="0"} 0.25`,
		`darpa_replica_health{replica="0",state="benched"} 1`,
		`darpa_replica_health{replica="1",state="benched"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing series %q in:\n%s", want, text)
		}
	}
}

// TestStatsFamiliesLedgerInvariant renders a live Batcher's snapshot and
// checks the exported admission verdicts still satisfy the ledger invariant.
func TestStatsFamiliesLedgerInvariant(t *testing.T) {
	st := Stats{Offered: 7, Admitted: 4, Shed: 2, Rejected: 1}
	text := metrics.TextString(st.Families())
	if !strings.Contains(text, `{verdict="offered"} 7`) {
		t.Fatalf("offered series missing:\n%s", text)
	}
	// offered == admitted + shed + rejected must survive the rendering.
	if !strings.Contains(text, `{verdict="admitted"} 4`) ||
		!strings.Contains(text, `{verdict="shed"} 2`) ||
		!strings.Contains(text, `{verdict="rejected"} 1`) {
		t.Errorf("ledger components missing:\n%s", text)
	}
}

func TestStatsFamiliesEmptyTenantsAndReplicas(t *testing.T) {
	fams := Stats{}.Families()
	for _, f := range fams {
		if f.Name == "darpa_admission_tenant_requests_total" || f.Name == "darpa_replica_requests_total" {
			t.Errorf("empty snapshot exported %s", f.Name)
		}
	}
	text := metrics.TextString(fams)
	if n, err := metrics.ValidateText(strings.NewReader(text)); err != nil || n == 0 {
		t.Fatalf("empty snapshot invalid (n=%d): %v", n, err)
	}
}
