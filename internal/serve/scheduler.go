package serve

import (
	"sync/atomic"
	"time"
)

// This file is the scheduler layer: priority queues feeding batch formation.
// Admitted requests land in one of numPriorities channels; replica workers
// call take to claim the first request of a batch and collect to coalesce
// followers until the batch is full or MaxDelay elapses. Grouping a formed
// batch by threshold and shape (groupRequests) is a pure function, extracted
// so batch-formation policy is unit-testable without goroutines or clocks.

// fairShare is the anti-starvation ratio: every fairShare-th take gives the
// batch-priority queue first refusal, so a sustained live-traffic flood
// cannot park audit work forever. Between those turns, live always preempts
// batch — the latency tier stays the latency tier.
const fairShare = 4

// scheduler owns the priority queues and the batch-formation knobs.
type scheduler struct {
	queues   [numPriorities]chan request
	maxBatch int
	maxDelay time.Duration
	takes    atomic.Int64
}

// newScheduler builds the queues; each priority gets the full buffer so one
// tier's backlog never blocks admission of the other.
func newScheduler(maxBatch int, maxDelay time.Duration, queueSize int) *scheduler {
	s := &scheduler{maxBatch: maxBatch, maxDelay: maxDelay}
	for i := range s.queues {
		s.queues[i] = make(chan request, queueSize)
	}
	return s
}

// depth reports the total number of queued requests across priorities — the
// load signal the admission layer sheds on.
func (s *scheduler) depth() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}

// close closes every queue; workers drain the remaining requests and exit.
func (s *scheduler) close() {
	for _, q := range s.queues {
		close(q)
	}
}

// take blocks for the first request of a worker's next batch. It returns
// ok=false only when every queue is closed and drained. Live-priority work is
// preferred, except on fairness turns where the batch queue gets first
// refusal so it starves only statistically, never absolutely.
func (s *scheduler) take() (request, bool) {
	hi, lo := s.queues[PriorityLive], s.queues[PriorityBatch]
	if s.takes.Add(1)%fairShare == 0 {
		select {
		case r, ok := <-lo:
			if ok {
				return r, true
			}
			lo = nil
		default:
		}
	} else {
		select {
		case r, ok := <-hi:
			if ok {
				return r, true
			}
			hi = nil
		default:
		}
	}
	for {
		if hi == nil && lo == nil {
			return request{}, false
		}
		// A closed, drained queue is nil-ed out so the select stops
		// spinning on it; the loop ends when both are gone.
		select {
		case r, ok := <-hi:
			if !ok {
				hi = nil
				continue
			}
			return r, true
		case r, ok := <-lo:
			if !ok {
				lo = nil
				continue
			}
			return r, true
		}
	}
}

// collect coalesces followers onto first until the batch is full or MaxDelay
// elapses. Within the window live requests are drained preferentially; batch
// requests fill whatever room remains.
func (s *scheduler) collect(first request) []request {
	batch := append(make([]request, 0, s.maxBatch), first)
	timer := time.NewTimer(s.maxDelay)
	defer timer.Stop()
	hi, lo := s.queues[PriorityLive], s.queues[PriorityBatch]
	for len(batch) < s.maxBatch {
		// First refusal to the live queue each slot, so a mixed window
		// batches the latency tier ahead of the throughput tier.
		select {
		case r, ok := <-hi:
			if ok {
				batch = append(batch, r)
				continue
			}
			hi = nil
		default:
		}
		if hi == nil && lo == nil {
			break
		}
		switch {
		case hi == nil:
			select {
			case r, ok := <-lo:
				if !ok {
					lo = nil
					continue
				}
				batch = append(batch, r)
			case <-timer.C:
				return batch
			}
		case lo == nil:
			select {
			case r, ok := <-hi:
				if !ok {
					hi = nil
					continue
				}
				batch = append(batch, r)
			case <-timer.C:
				return batch
			}
		default:
			select {
			case r, ok := <-hi:
				if !ok {
					hi = nil
					continue
				}
				batch = append(batch, r)
			case r, ok := <-lo:
				if !ok {
					lo = nil
					continue
				}
				batch = append(batch, r)
			case <-timer.C:
				return batch
			}
		}
	}
	return batch
}

// groupRequests splits a formed batch into homogeneous groups: one forward
// carries one confidence threshold, and heterogeneous screens cannot share a
// tensor. Order within the batch is preserved inside each group. Pure
// function — batch-formation policy with no scheduler state.
func groupRequests(batch []request) [][]request {
	var groups [][]request
	for len(batch) > 0 {
		// group gets its own array: the in-place tail filter below reuses
		// batch's backing array, which an aliased append would clobber.
		group := append(make([]request, 0, len(batch)), batch[0])
		rest := batch[1:]
		tail := batch[1:1]
		for _, r := range rest {
			if r.conf == group[0].conf && sameItemShape(r, group[0]) {
				group = append(group, r)
			} else {
				tail = append(tail, r)
			}
		}
		groups = append(groups, group)
		batch = tail
	}
	return groups
}

// sameItemShape reports whether two requests' per-item tensors agree in
// every non-batch dimension.
func sameItemShape(a, c request) bool {
	if len(a.x.Shape) != len(c.x.Shape) {
		return false
	}
	for i := 1; i < len(a.x.Shape); i++ {
		if a.x.Shape[i] != c.x.Shape[i] {
			return false
		}
	}
	return true
}
