package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Tests for the layered serving stack: admission (token buckets, shedding,
// the accounting invariant), scheduler (grouping, priority fairness), and
// the replica pool (distribution, private pools, benching), plus the
// Close-vs-submit determinism the facade guarantees.

// degradedStub is the shed-path fallback: instantly answers with a marker
// detection no real backend produces.
type degradedStub struct{ calls atomic.Int64 }

func (d *degradedStub) Name() string { return "degraded" }

func (d *degradedStub) PredictTensor(_ *tensor.Tensor, _ int, conf float64) []metrics.Detection {
	d.calls.Add(1)
	return []metrics.Detection{{Class: dataset.ClassAGO, B: geom.BoxF{X: -1, W: 1, H: 1}, Score: conf}}
}

// panicBackend fails every forward by panicking — the one failure mode any
// Predictor can exhibit — so replica health accounting sees fully-failed
// groups without needing a ctx-aware stub.
type panicBackend struct{ calls atomic.Int64 }

func (p *panicBackend) Name() string { return "panicky" }

func (p *panicBackend) PredictTensor(_ *tensor.Tensor, _ int, _ float64) []metrics.Detection {
	p.calls.Add(1)
	panic("replica down")
}

// poolStub records the pool the replica layer installs.
type poolStub struct {
	stubBackend
	pool *tensor.Pool
}

func (p *poolStub) SetPool(pl *tensor.Pool) { p.pool = pl }

// TestGroupRequests: the extracted batch-formation policy, exercised as a
// pure function — threshold splits, shape splits, order preservation.
func TestGroupRequests(t *testing.T) {
	mk := func(conf float64, shape ...int) request {
		return request{x: tensor.New(shape...), conf: conf}
	}
	batch := []request{
		mk(0.3, 1, 3, 8, 8),
		mk(0.5, 1, 3, 8, 8),
		mk(0.3, 1, 3, 8, 8),
		mk(0.3, 1, 3, 4, 4), // same conf, different shape
		mk(0.5, 1, 3, 8, 8),
	}
	groups := groupRequests(batch)
	sizes := make([]int, len(groups))
	for i, g := range groups {
		sizes[i] = len(g)
	}
	if len(groups) != 3 || sizes[0] != 2 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("group sizes = %v, want [2 2 1]", sizes)
	}
	if groups[0][0].conf != 0.3 || groups[1][0].conf != 0.5 || groups[2][0].x.Shape[2] != 4 {
		t.Fatalf("groups mis-keyed: %v", groups)
	}
	if got := groupRequests(nil); got != nil {
		t.Fatalf("empty batch grouped into %v", got)
	}
}

// TestTokenBucketRefill: the admission bucket must admit the initial burst,
// reject when empty, refill at exactly Rate tokens per second, and cap at
// Burst — pinned against an injected clock, no sleeps.
func TestTokenBucketRefill(t *testing.T) {
	now := time.Unix(0, 0)
	adm := newAdmission(
		map[TenantID]TenantConfig{"t": {Rate: 10, Burst: 2}},
		TenantConfig{}, 0,
		func() time.Time { return now },
	)
	info := TenantInfo{ID: "t"}
	admit := func() bool {
		v, _ := adm.decide(info, 0)
		return v == admitted
	}
	if !admit() || !admit() {
		t.Fatal("initial burst of 2 not admitted")
	}
	if admit() {
		t.Fatal("empty bucket admitted a request")
	}
	now = now.Add(100 * time.Millisecond) // 10/s x 0.1s = exactly 1 token
	if !admit() {
		t.Fatal("refilled token not admitted")
	}
	if admit() {
		t.Fatal("bucket admitted beyond its refill")
	}
	now = now.Add(time.Hour) // refill far beyond capacity: caps at Burst=2
	if !admit() || !admit() {
		t.Fatal("bucket did not refill to its burst capacity")
	}
	if admit() {
		t.Fatal("bucket capacity exceeded Burst")
	}
	st := adm.snapshot()
	if st.Offered != 8 || st.Admitted != 5 || st.Rejected != 3 || st.Shed != 0 {
		t.Fatalf("ledger = %+v, want 8 = 5 + 0 + 3", st)
	}
	// An unconfigured tenant rides the default (unlimited) policy.
	if v, _ := adm.decide(TenantInfo{ID: "other"}, 0); v != admitted {
		t.Fatal("default-policy tenant rejected")
	}
}

// TestAdmissionInvariant: under concurrent mixed-tenant load with rate
// limits and shedding both active, every request that reaches admission is
// accounted exactly once — offered == admitted + shed + rejected, globally
// and per tenant.
func TestAdmissionInvariant(t *testing.T) {
	b := NewReplicated(Options{
		MaxBatch:      4,
		MaxDelay:      200 * time.Microsecond,
		MaxQueueDepth: 4,
		Tenants: map[TenantID]TenantConfig{
			"limited": {Rate: 200, Burst: 5, Priority: PriorityBatch},
		},
	}, &stubBackend{}, &stubBackend{})
	const (
		workers = 8
		iters   = 40
	)
	var calls atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := TenantID("free")
			if g%2 == 0 {
				id = "limited"
			}
			ctx := WithTenant(context.Background(), TenantInfo{ID: id})
			for i := 0; i < iters; i++ {
				calls.Add(1)
				b.PredictTensorCtx(ctx, screen(g*iters+i), 0, 0.45)
			}
		}(g)
	}
	wg.Wait()
	b.Close()
	st := b.Stats()
	if got := st.Admitted + st.Shed + st.Rejected; st.Offered != got {
		t.Fatalf("offered %d != admitted %d + shed %d + rejected %d", st.Offered, st.Admitted, st.Shed, st.Rejected)
	}
	if st.Offered != int(calls.Load()) {
		t.Fatalf("offered = %d, want every one of the %d submissions", st.Offered, calls.Load())
	}
	var tenantSum TenantStats
	for _, ts := range st.Tenants {
		if ts.Offered != ts.Admitted+ts.Shed+ts.Rejected {
			t.Fatalf("per-tenant ledger broken: %+v", ts)
		}
		tenantSum.Offered += ts.Offered
		tenantSum.Admitted += ts.Admitted
		tenantSum.Shed += ts.Shed
		tenantSum.Rejected += ts.Rejected
	}
	if tenantSum.Offered != st.Offered || tenantSum.Admitted != st.Admitted {
		t.Fatalf("tenant ledgers %+v do not sum to the global %+v", tenantSum, st)
	}
}

// TestRateLimitRejects: a tenant past its bucket gets ErrRateLimited naming
// it, while an unlimited tenant on the same Batcher sails through.
func TestRateLimitRejects(t *testing.T) {
	b := NewReplicated(Options{
		MaxBatch: 1, MaxDelay: time.Millisecond,
		Tenants: map[TenantID]TenantConfig{"slow": {Rate: 0.001, Burst: 1}},
	}, &stubBackend{})
	defer b.Close()
	ctx := WithTenant(context.Background(), TenantInfo{ID: "slow"})
	if _, err := b.PredictTensorCtx(ctx, screen(1), 0, 0.45); err != nil {
		t.Fatalf("burst request rejected: %v", err)
	}
	_, err := b.PredictTensorCtx(ctx, screen(2), 0, 0.45)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-budget err = %v, want ErrRateLimited", err)
	}
	if dets, err := b.PredictTensor(screen(3), 0, 0.45), error(nil); err != nil || dets[0].B.X != 3 {
		t.Fatalf("unlimited default tenant blocked: %v %v", dets, err)
	}
}

// TestSheddingDegraded: once the queues hold MaxQueueDepth requests, new
// arrivals are shed and answered by the Degraded fallback chain in
// microseconds — degrade, don't fail — and counted as Shed, not Admitted.
func TestSheddingDegraded(t *testing.T) {
	s := &stubBackend{gate: make(chan struct{})}
	deg := &degradedStub{}
	b := NewReplicated(Options{
		MaxBatch: 1, MaxDelay: time.Millisecond,
		MaxQueueDepth: 1,
		Degraded:      deg,
	}, s)
	var wg sync.WaitGroup
	submit := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.PredictTensor(screen(i), 0, 0.45)
		}()
	}
	submit(0) // taken by the worker, which parks behind the gate
	waitFor(t, func() bool { s.mu.Lock(); defer s.mu.Unlock(); return s.calls == 1 })
	submit(1) // admitted at depth 0, now waiting in the queue
	waitFor(t, func() bool { return b.sched.depth() == 1 })
	dets, err := b.PredictTensor(screen(7), 0, 0.45), error(nil)
	if err != nil || len(dets) != 1 || dets[0].B.X != -1 {
		t.Fatalf("shed request: dets=%v err=%v, want the degraded marker", dets, err)
	}
	if deg.calls.Load() != 1 {
		t.Fatal("degraded fallback not consulted")
	}
	close(s.gate)
	wg.Wait()
	b.Close()
	st := b.Stats()
	if st.Offered != 3 || st.Admitted != 2 || st.Shed != 1 || st.Rejected != 0 {
		t.Fatalf("ledger = offered %d admitted %d shed %d rejected %d, want 3/2/1/0",
			st.Offered, st.Admitted, st.Shed, st.Rejected)
	}
	// Without a Degraded backend the shed surfaces as ErrOverloaded.
	s2 := &stubBackend{gate: make(chan struct{})}
	b2 := NewReplicated(Options{MaxBatch: 1, MaxDelay: time.Millisecond, MaxQueueDepth: 1}, s2)
	wg.Add(1)
	go func() { defer wg.Done(); b2.PredictTensor(screen(0), 0, 0.45) }()
	waitFor(t, func() bool { s2.mu.Lock(); defer s2.mu.Unlock(); return s2.calls == 1 })
	wg.Add(1)
	go func() { defer wg.Done(); b2.PredictTensor(screen(1), 0, 0.45) }()
	waitFor(t, func() bool { return b2.sched.depth() == 1 })
	if _, err := b2.PredictTensorCtx(context.Background(), screen(9), 0, 0.45); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("bare shed err = %v, want ErrOverloaded", err)
	}
	close(s2.gate)
	wg.Wait()
	b2.Close()
}

// TestSchedulerNoStarvation: a batch-priority request must complete while a
// live-priority flood is still running — the fairShare turn guarantees the
// audit tier progresses statistically instead of waiting for quiet.
func TestSchedulerNoStarvation(t *testing.T) {
	b := NewReplicated(Options{MaxBatch: 2, MaxDelay: 100 * time.Microsecond}, &stubBackend{})
	defer b.Close()
	stop := make(chan struct{})
	var flood sync.WaitGroup
	for g := 0; g < 4; g++ {
		flood.Add(1)
		go func(g int) {
			defer flood.Done()
			ctx := context.Background() // untagged = live priority
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b.PredictTensorCtx(ctx, screen(g*1000+i), 0, 0.45)
			}
		}(g)
	}
	auditCtx := WithTenant(context.Background(), TenantInfo{ID: "audit", Priority: PriorityBatch})
	done := make(chan error, 1)
	go func() {
		_, err := b.PredictTensorCtx(auditCtx, screen(42), 0, 0.45)
		done <- err
	}()
	select {
	case err := <-done: // completed while the flood was still live
		if err != nil {
			t.Errorf("audit request failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("batch-priority request starved under live flood")
	}
	close(stop)
	flood.Wait()
}

// TestCloseRaceNoSilentDrop hammers PredictTensorCtx against a concurrent
// Close under -race: every request must be answered with its correct result
// — before Close through the scheduler, after Close through the direct
// degrade path — and none may hang or vanish in the window where the queues
// close.
func TestCloseRaceNoSilentDrop(t *testing.T) {
	for round := 0; round < 20; round++ {
		s := &stubBackend{}
		b := NewReplicated(Options{MaxBatch: 4, MaxDelay: 100 * time.Microsecond}, s, s)
		const workers = 8
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 10; i++ {
					id := g*100 + i
					dets, err := b.PredictTensorCtx(context.Background(), screen(id), 0, 0.45)
					if err != nil {
						t.Errorf("request %d: err = %v", id, err)
						return
					}
					if len(dets) != 1 || dets[0].B.X != float64(id) {
						t.Errorf("request %d: wrong result %v", id, dets)
						return
					}
				}
			}(g)
		}
		close(start)
		b.Close() // races the in-flight submissions
		wg.Wait()
		// The scheduler is stopped; a fresh submission must degrade to a
		// deterministic direct call, and the internal verdict is ErrClosed.
		if _, err := b.submit(context.Background(), screen(1), 0, 0.45); !errors.Is(err, ErrClosed) {
			t.Fatalf("post-Close submit err = %v, want ErrClosed", err)
		}
		b.Close() // idempotent
	}
}

// TestReplicaPoolDistributes: with both replicas gated, two concurrent
// requests must land on different replicas — the pool genuinely runs
// forwards in parallel — and per-replica ledgers account them.
func TestReplicaPoolDistributes(t *testing.T) {
	gate := make(chan struct{})
	r0 := &stubBackend{gate: gate}
	r1 := &stubBackend{gate: gate}
	b := NewReplicated(Options{MaxBatch: 1, MaxDelay: 100 * time.Microsecond}, r0, r1)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); b.PredictTensor(screen(i), 0, 0.45) }(i)
	}
	waitFor(t, func() bool {
		r0.mu.Lock()
		c0 := r0.calls
		r0.mu.Unlock()
		r1.mu.Lock()
		c1 := r1.calls
		r1.mu.Unlock()
		return c0 == 1 && c1 == 1
	})
	close(gate)
	wg.Wait()
	b.Close()
	st := b.Stats()
	if len(st.Replicas) != 2 || st.Replicas[0].Items != 1 || st.Replicas[1].Items != 1 {
		t.Fatalf("replica ledgers = %+v, want one item each", st.Replicas)
	}
}

// TestReplicaPrivatePools: a multi-replica pool installs a distinct
// tensor.Pool per poolable backend; the single-replica legacy constructor
// leaves the backend's pooling untouched (bit-identical path).
func TestReplicaPrivatePools(t *testing.T) {
	p0, p1 := &poolStub{}, &poolStub{}
	b := NewReplicated(Options{}, p0, p1)
	b.Close()
	if p0.pool == nil || p1.pool == nil {
		t.Fatal("multi-replica pool left a backend without a private pool")
	}
	if p0.pool == p1.pool {
		t.Fatal("replicas share one activation pool")
	}
	solo := &poolStub{}
	NewBatcher(solo, Options{}).Close()
	if solo.pool != nil {
		t.Fatal("single-replica constructor must not touch the backend's pooling")
	}
}

// TestReplicaBenching: a replica whose forwards fail consecutively is
// benched for a cooldown while its healthy peer keeps serving; the bench
// trip is recorded and traffic keeps being answered throughout.
func TestReplicaBenching(t *testing.T) {
	bad := &panicBackend{}
	good := &stubBackend{}
	b := NewReplicated(Options{
		MaxBatch: 1, MaxDelay: 100 * time.Microsecond,
		ReplicaBenchAfter: 2,
		ReplicaBenchFor:   50 * time.Millisecond,
	}, bad, good)
	defer b.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		b.PredictTensor(screen(1), 0, 0.45) // errors from the bad replica are fine
		benched := false
		for _, r := range b.Stats().Replicas {
			if r.BenchTrips >= 1 {
				benched = true
			}
		}
		if benched {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failing replica never benched: %+v", b.Stats().Replicas)
		}
	}
	// While the bad replica sits out, the healthy one answers everything.
	badCalls := bad.calls.Load()
	for i := 0; i < 5; i++ {
		dets, err := b.PredictTensorCtx(context.Background(), screen(9), 0, 0.45)
		if err != nil || dets[0].B.X != 9 {
			t.Fatalf("request during bench window: dets=%v err=%v", dets, err)
		}
	}
	if bad.calls.Load() != badCalls {
		t.Fatal("benched replica still received traffic")
	}
}

// TestBenchingDisabledSingleReplica: one replica must never bench itself —
// with no peer to absorb the load, benching would stall all traffic.
func TestBenchingDisabledSingleReplica(t *testing.T) {
	b := NewBatcher(&panicBackend{}, Options{
		MaxBatch: 1, MaxDelay: 100 * time.Microsecond,
		ReplicaBenchAfter: 1, ReplicaBenchFor: time.Hour,
	})
	defer b.Close()
	for i := 0; i < 4; i++ {
		if _, err := b.PredictTensorCtx(context.Background(), screen(i), 0, 0.45); err == nil {
			t.Fatal("panicking backend produced no error")
		}
	}
	if st := b.Stats(); st.Replicas[0].BenchTrips != 0 {
		t.Fatalf("single replica benched itself: %+v", st.Replicas[0])
	}
}

// flakyBackend panics on every third call — enough failure to exercise
// poison isolation and replica health under stress, with plenty of
// successes in between.
type flakyBackend struct {
	stubBackend
	n atomic.Int64
}

func (f *flakyBackend) PredictTensor(x *tensor.Tensor, n int, conf float64) []metrics.Detection {
	if f.n.Add(1)%3 == 0 {
		panic("flaky")
	}
	return f.stubBackend.PredictTensor(x, n, conf)
}

func (f *flakyBackend) PredictBatch(x *tensor.Tensor, conf float64) [][]metrics.Detection {
	if f.n.Add(1)%3 == 0 {
		panic("flaky")
	}
	return f.stubBackend.PredictBatch(x, conf)
}

// TestReplicatedChaosCancelStress is the zero-dropped/zero-hung contract
// under the worst mix: two flaky replicas, shedding active, random caller
// cancellation, concurrent Close at the end. Every call must return (result
// or error), the admission ledger must balance, and Close must drain.
func TestReplicatedChaosCancelStress(t *testing.T) {
	deg := &degradedStub{}
	b := NewReplicated(Options{
		MaxBatch: 4, MaxDelay: 200 * time.Microsecond,
		MaxQueueDepth: 16,
		Degraded:      deg,
	}, &flakyBackend{}, &flakyBackend{})
	const (
		workers = 8
		iters   = 50
	)
	var answered atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			tenant := TenantInfo{ID: TenantID("t" + string(rune('0'+g%3))), Priority: Priority(g % 2)}
			for i := 0; i < iters; i++ {
				ctx := WithTenant(context.Background(), tenant)
				cancel := context.CancelFunc(func() {})
				if rng.Intn(4) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(300))*time.Microsecond)
				}
				b.PredictTensorCtx(ctx, screen(g*iters+i), 0, 0.45)
				answered.Add(1)
				cancel()
			}
		}(g)
	}
	wg.Wait() // a hang here is the failure mode this test exists for
	b.Close()
	if got := answered.Load(); got != workers*iters {
		t.Fatalf("answered %d of %d calls", got, workers*iters)
	}
	st := b.Stats()
	if st.Offered != st.Admitted+st.Shed+st.Rejected {
		t.Fatalf("ledger unbalanced under chaos: %+v", st)
	}
	var repItems int
	for _, r := range st.Replicas {
		repItems += r.Items
	}
	if repItems == 0 {
		t.Fatal("no replica served anything")
	}
}
