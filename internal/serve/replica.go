package serve

import (
	"sync"
	"time"

	"repro/internal/detect"
	"repro/internal/tensor"
)

// This file is the replica-pool layer: N independently-owned model instances,
// each driven by its own worker goroutine and — when the backend supports it
// — its own tensor.Pool, so recycled activations never cross replicas. Each
// replica keeps its own health ledger; a replica whose forwards fail
// consecutively is benched for a cooldown, the pool-level analogue of the
// per-backend circuit breakers in detect.WithFallback: the breaker decides
// whether a *backend* is trusted at all, benching decides whether one *copy*
// of a trusted backend deserves traffic right now.

// Defaults for the replica-health knobs left zero in Options.
const (
	// DefaultBenchAfter is how many consecutive fully-failed groups bench a
	// replica.
	DefaultBenchAfter = 5
	// DefaultBenchFor is how long a benched replica sits out.
	DefaultBenchFor = 50 * time.Millisecond
)

// poolable is the seam through which the pool hands a replica its private
// activation pool; yolite.Model and quant.Model implement it.
type poolable interface {
	SetPool(*tensor.Pool)
}

// ReplicaStats is one replica's health and utilisation ledger.
type ReplicaStats struct {
	ID          int
	Batches     int           // groups this replica ran
	Items       int           // requests it answered
	Failed      int           // requests answered with a non-cancellation error
	Poisoned    int           // grouped forwards re-run item by item
	Busy        time.Duration // wall time spent in forwards
	Consecutive int           // current consecutive fully-failed groups
	Benched     bool          // sitting out a cooldown right now
	BenchTrips  int           // times this replica has been benched
}

// replica is one pooled model instance plus its health state.
type replica struct {
	id      int
	backend detect.Predictor
	pool    *tensor.Pool

	benchAfter int           // consecutive failed groups before benching; <=0 disables
	benchFor   time.Duration // cooldown length

	mu           sync.Mutex
	stats        ReplicaStats
	benchedUntil time.Time
}

// newReplica wires one backend into the pool. When multi is true and the
// backend exposes the poolable seam, the replica installs a private
// tensor.Pool so its recycled activations never mix with another replica's.
// Single-replica pools leave the backend's pooling exactly as the caller
// configured it — the legacy NewBatcher path must stay bit-identical.
func newReplica(id int, backend detect.Predictor, benchAfter int, benchFor time.Duration, multi bool) *replica {
	r := &replica{
		id:         id,
		backend:    backend,
		benchAfter: benchAfter,
		benchFor:   benchFor,
	}
	r.stats.ID = id
	if multi {
		if p, ok := backend.(poolable); ok {
			r.pool = tensor.NewPool()
			p.SetPool(r.pool)
		}
	}
	return r
}

// note folds one executed group into the health ledger. A group counts as
// failed only when every member errored non-cancelled — a single poison item
// says nothing about the replica, but a whole group failing repeatedly says
// the instance (its weights, its memory, its accelerator) is sick.
func (r *replica) note(wall time.Duration, items, failed int, poisoned bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Batches++
	r.stats.Items += items
	r.stats.Failed += failed
	r.stats.Busy += wall
	if poisoned {
		r.stats.Poisoned++
	}
	if failed == items && items > 0 {
		r.stats.Consecutive++
		if r.benchAfter > 0 && r.stats.Consecutive >= r.benchAfter {
			r.benchedUntil = time.Now().Add(r.benchFor)
			r.stats.BenchTrips++
			r.stats.Consecutive = 0
		}
	} else {
		r.stats.Consecutive = 0
	}
}

// waitBench blocks while the replica serves out a bench cooldown. Requests
// keep flowing: the scheduler's queues are shared, so a benched replica's
// work lands on its healthy peers for the duration. The sleep wakes early
// when stop closes — a pool shutting down must not wait out a cooldown, it
// needs every worker draining the queues so Close returns promptly.
func (r *replica) waitBench(stop <-chan struct{}) {
	r.mu.Lock()
	until := r.benchedUntil
	r.stats.Benched = time.Now().Before(until)
	benched := r.stats.Benched
	r.mu.Unlock()
	if !benched {
		return
	}
	t := time.NewTimer(time.Until(until))
	defer t.Stop()
	select {
	case <-t.C:
	case <-stop:
	}
	r.mu.Lock()
	r.stats.Benched = false
	r.mu.Unlock()
}

// snapshot copies the ledger.
func (r *replica) snapshot() ReplicaStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}
