// Package nn provides the network containers the detectors are assembled
// from (sequential stacks and residual blocks) plus weight serialisation, so
// trained models can be shipped with the repository and loaded on the
// simulated device — the counterpart of the paper's PyTorch-to-ONNX-to-ncnn
// model-porting pipeline (Section IV-C).
package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/tensor"
)

// Sequential chains layers; the output of each feeds the next.
type Sequential struct {
	Layers []tensor.Layer
}

var _ tensor.Layer = (*Sequential)(nil)

// NewSequential builds a stack from the given layers.
func NewSequential(layers ...tensor.Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs the stack in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// ForwardPooled runs the stack inference-only, drawing every intermediate
// activation from p and returning each to the pool as soon as the next
// layer has consumed it. Only the returned tensor is still live; the caller
// owns it and should Put it back when done. The input x is never pooled.
func (s *Sequential) ForwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	cur := x
	for _, l := range s.Layers {
		y := tensor.InferPooled(l, cur, p)
		if cur != x {
			p.Put(cur)
		}
		cur = y
	}
	return cur
}

// ForwardCancel is ForwardPooled with a cooperative cancellation point
// after every layer: once done closes, no further layer runs, intermediates
// already drawn from the pool are returned to it, and the call yields nil
// for the caller to discard (Pool.Put(nil) is a no-op, so unconditional
// cleanup stays simple). Cancel-aware layers (the convolutions) additionally
// poll done between output planes, so an abort lands within roughly one conv
// layer of the cancel. The input x is never pooled. A nil done is exactly
// ForwardPooled.
func (s *Sequential) ForwardCancel(x *tensor.Tensor, p *tensor.Pool, done <-chan struct{}) *tensor.Tensor {
	cur := x
	for _, l := range s.Layers {
		if tensor.Aborted(done) {
			if cur != x {
				p.Put(cur)
			}
			return nil
		}
		y := tensor.InferCancel(l, cur, p, done)
		if cur != x {
			p.Put(cur)
		}
		cur = y
	}
	return cur
}

// Backward runs the stack in reverse.
func (s *Sequential) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// Params returns every trainable tensor in the stack.
func (s *Sequential) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Residual wraps a body with an identity skip connection: y = body(x) + x.
// The body must preserve the input shape. This is the structural difference
// between the "VGG-ish" and "ResNet-ish" backbones of the RCNN baselines
// (Table V).
type Residual struct {
	Body tensor.Layer
}

var _ tensor.Layer = (*Residual)(nil)

// NewResidual wraps body in a skip connection.
func NewResidual(body tensor.Layer) *Residual { return &Residual{Body: body} }

// Forward computes body(x) + x.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := r.Body.Forward(x, train)
	if !y.SameShape(x) {
		panic(fmt.Sprintf("nn: residual body changed shape %v -> %v", x.Shape, y.Shape))
	}
	out := tensor.New(y.Shape...)
	for i := range out.Data {
		out.Data[i] = y.Data[i] + x.Data[i]
	}
	return out
}

// ForwardPooled computes body(x) + x inference-only with pooled buffers.
func (r *Residual) ForwardPooled(x *tensor.Tensor, p *tensor.Pool) *tensor.Tensor {
	y := tensor.InferPooled(r.Body, x, p)
	if !y.SameShape(x) {
		panic(fmt.Sprintf("nn: residual body changed shape %v -> %v", x.Shape, y.Shape))
	}
	out := p.Get(y.Shape...)
	for i := range out.Data {
		out.Data[i] = y.Data[i] + x.Data[i]
	}
	p.Put(y)
	return out
}

// Backward adds the skip gradient to the body gradient.
func (r *Residual) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := r.Body.Backward(dy)
	out := tensor.New(dy.Shape...)
	for i := range out.Data {
		out.Data[i] = dx.Data[i] + dy.Data[i]
	}
	return out
}

// Params returns the body's parameters.
func (r *Residual) Params() []*tensor.Tensor { return r.Body.Params() }

// snapshot is the gob wire format for weights: parameter payloads in layer
// order plus batch-norm running statistics.
type snapshot struct {
	Params  [][]float32
	RunMean [][]float32
	RunVar  [][]float32
}

// collectBN walks the layer tree collecting batch-norm layers in order.
func collectBN(l tensor.Layer) []*tensor.BatchNorm2D {
	switch v := l.(type) {
	case *tensor.BatchNorm2D:
		return []*tensor.BatchNorm2D{v}
	case *Sequential:
		var out []*tensor.BatchNorm2D
		for _, child := range v.Layers {
			out = append(out, collectBN(child)...)
		}
		return out
	case *Residual:
		return collectBN(v.Body)
	default:
		return nil
	}
}

// SaveWeights writes every parameter and batch-norm statistic of net to w.
func SaveWeights(w io.Writer, net tensor.Layer) error {
	var snap snapshot
	for _, p := range net.Params() {
		snap.Params = append(snap.Params, p.Data)
	}
	for _, bn := range collectBN(net) {
		snap.RunMean = append(snap.RunMean, bn.RunMean)
		snap.RunVar = append(snap.RunVar, bn.RunVar)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("nn: encoding weights: %w", err)
	}
	return nil
}

// LoadWeights reads weights written by SaveWeights into net, which must have
// the identical architecture.
func LoadWeights(r io.Reader, net tensor.Layer) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decoding weights: %w", err)
	}
	params := net.Params()
	if len(snap.Params) != len(params) {
		return fmt.Errorf("nn: weight file has %d parameter tensors, model has %d", len(snap.Params), len(params))
	}
	for i, p := range params {
		if len(snap.Params[i]) != len(p.Data) {
			return fmt.Errorf("nn: parameter %d has %d values, model expects %d", i, len(snap.Params[i]), len(p.Data))
		}
		copy(p.Data, snap.Params[i])
	}
	bns := collectBN(net)
	if len(snap.RunMean) != len(bns) {
		return fmt.Errorf("nn: weight file has %d batch-norm stats, model has %d", len(snap.RunMean), len(bns))
	}
	for i, bn := range bns {
		if len(snap.RunMean[i]) != len(bn.RunMean) {
			return fmt.Errorf("nn: batch-norm %d has %d channels, model expects %d", i, len(snap.RunMean[i]), len(bn.RunMean))
		}
		copy(bn.RunMean, snap.RunMean[i])
		copy(bn.RunVar, snap.RunVar[i])
	}
	return nil
}

// SaveWeightsFile writes weights to path, creating or truncating it.
func SaveWeightsFile(path string, net tensor.Layer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: creating weight file: %w", err)
	}
	defer f.Close()
	if err := SaveWeights(f, net); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("nn: closing weight file: %w", err)
	}
	return nil
}

// LoadWeightsFile reads weights from path into net.
func LoadWeightsFile(path string, net tensor.Layer) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("nn: opening weight file: %w", err)
	}
	defer f.Close()
	return LoadWeights(f, net)
}

// ConvBNAct is the conv → batch-norm → leaky-ReLU building block shared by
// every backbone in the reproduction, mirroring YOLOv5's Conv module.
func ConvBNAct(conv *tensor.Conv2D) *Sequential {
	return NewSequential(conv, tensor.NewBatchNorm2D(conv.OutC), tensor.NewLeakyReLU())
}

// ConvBNActParts pulls the conv, batch-norm, and activation back out of a
// ConvBNAct block — the accessor inference-time fusion (tensor.FuseConvBNAct)
// and the int8 port both extract through. It panics if seq is not a
// ConvBNAct-shaped sequential.
func ConvBNActParts(seq *Sequential) (*tensor.Conv2D, *tensor.BatchNorm2D, *tensor.LeakyReLU) {
	var conv *tensor.Conv2D
	var bn *tensor.BatchNorm2D
	var act *tensor.LeakyReLU
	for _, l := range seq.Layers {
		switch v := l.(type) {
		case *tensor.Conv2D:
			conv = v
		case *tensor.BatchNorm2D:
			bn = v
		case *tensor.LeakyReLU:
			act = v
		}
	}
	if conv == nil || bn == nil || act == nil {
		panic("nn: block is not a ConvBNAct sequential")
	}
	return conv, bn, act
}
