package nn

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

func tinyNet(seed int64) *Sequential {
	rng := rand.New(rand.NewSource(seed))
	return NewSequential(
		ConvBNAct(tensor.NewConv2D(rng, 1, 4, 3, 2, 1)),
		ConvBNAct(tensor.NewConv2D(rng, 4, 4, 3, 1, 1)),
		tensor.NewConv2D(rng, 4, 2, 1, 1, 0),
	)
}

func TestSequentialForwardShape(t *testing.T) {
	net := tinyNet(1)
	x := tensor.New(1, 1, 8, 8)
	y := net.Forward(x, false)
	if y.Shape[1] != 2 || y.Shape[2] != 4 || y.Shape[3] != 4 {
		t.Fatalf("output shape %v", y.Shape)
	}
}

func TestSequentialParams(t *testing.T) {
	net := tinyNet(1)
	// 3 convs (W+B each) + 2 BNs (gamma+beta each) = 10 tensors.
	if n := len(net.Params()); n != 10 {
		t.Fatalf("params = %d, want 10", n)
	}
}

func TestSequentialBackwardShape(t *testing.T) {
	net := tinyNet(1)
	x := tensor.New(2, 1, 8, 8)
	for i := range x.Data {
		x.Data[i] = float32(i%7) - 3
	}
	y := net.Forward(x, true)
	dy := tensor.New(y.Shape...)
	dy.Fill(0.1)
	dx := net.Backward(dy)
	if !dx.SameShape(x) {
		t.Fatalf("dx shape %v, want %v", dx.Shape, x.Shape)
	}
	// Gradients must have reached the first conv.
	var any bool
	for _, g := range net.Params()[0].Grad {
		if g != 0 {
			any = true
			break
		}
	}
	if !any {
		t.Fatal("no gradient reached the first layer")
	}
}

func TestResidualForward(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	body := NewSequential(tensor.NewConv2D(rng, 2, 2, 3, 1, 1))
	res := NewResidual(body)
	x := tensor.New(1, 2, 4, 4)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y := res.Forward(x, false)
	body2 := body.Forward(x, false)
	for i := range y.Data {
		want := body2.Data[i] + x.Data[i]
		if math.Abs(float64(y.Data[i]-want)) > 1e-6 {
			t.Fatalf("residual output mismatch at %d", i)
		}
	}
}

func TestResidualGradientIncludesSkip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv := tensor.NewConv2D(rng, 1, 1, 3, 1, 1)
	conv.W.Fill(0) // body contributes nothing
	conv.B.Fill(0)
	res := NewResidual(NewSequential(conv))
	x := tensor.New(1, 1, 3, 3)
	res.Forward(x, true)
	dy := tensor.New(1, 1, 3, 3)
	dy.Fill(1)
	dx := res.Backward(dy)
	// With a zero body, gradient must flow through the skip untouched.
	for i := range dx.Data {
		if dx.Data[i] != 1 {
			t.Fatalf("skip gradient lost: dx=%v", dx.Data)
		}
	}
}

func TestResidualShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape-changing residual body did not panic")
		}
	}()
	rng := rand.New(rand.NewSource(4))
	res := NewResidual(NewSequential(tensor.NewConv2D(rng, 1, 2, 3, 1, 1)))
	res.Forward(tensor.New(1, 1, 4, 4), false)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := tinyNet(5)
	// Perturb running stats so they are distinguishable from defaults.
	x := tensor.New(4, 1, 8, 8)
	rng := rand.New(rand.NewSource(6))
	for i := range x.Data {
		x.Data[i] = rng.Float32() * 3
	}
	for i := 0; i < 5; i++ {
		src.Forward(x, true)
	}
	var buf bytes.Buffer
	if err := SaveWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := tinyNet(7) // different random init
	if err := LoadWeights(&buf, dst); err != nil {
		t.Fatal(err)
	}
	ys, yd := src.Forward(x, false), dst.Forward(x, false)
	for i := range ys.Data {
		if ys.Data[i] != yd.Data[i] {
			t.Fatalf("outputs differ after weight load at %d: %v vs %v", i, ys.Data[i], yd.Data[i])
		}
	}
}

func TestLoadWeightsArchMismatch(t *testing.T) {
	src := tinyNet(8)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	other := NewSequential(tensor.NewConv2D(rng, 1, 4, 3, 2, 1))
	if err := LoadWeights(&buf, other); err == nil {
		t.Fatal("loading into a mismatched architecture should fail")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	src := tinyNet(10)
	if err := SaveWeightsFile(path, src); err != nil {
		t.Fatal(err)
	}
	dst := tinyNet(11)
	if err := LoadWeightsFile(path, dst); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 1, 8, 8)
	ys, yd := src.Forward(x, false), dst.Forward(x, false)
	for i := range ys.Data {
		if ys.Data[i] != yd.Data[i] {
			t.Fatal("file round trip lost weights")
		}
	}
}

func TestLoadWeightsFileMissing(t *testing.T) {
	if err := LoadWeightsFile(filepath.Join(t.TempDir(), "nope.gob"), tinyNet(1)); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestCollectBNThroughResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewSequential(
		NewResidual(ConvBNAct(tensor.NewConv2D(rng, 2, 2, 3, 1, 1))),
		ConvBNAct(tensor.NewConv2D(rng, 2, 2, 3, 1, 1)),
	)
	if n := len(collectBN(net)); n != 2 {
		t.Fatalf("collected %d BN layers, want 2", n)
	}
}
