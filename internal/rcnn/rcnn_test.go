package rcnn

import (
	"math/rand"
	"testing"

	"repro/internal/auigen"
	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/yolite"
)

func TestVariantNames(t *testing.T) {
	want := []string{
		"Faster RCNN+VGG16", "Faster RCNN+ResNet50",
		"Mask RCNN+VGG16", "Mask RCNN+ResNet50",
	}
	for i, v := range Variants {
		if v.Name() != want[i] {
			t.Fatalf("variant %d name %q, want %q", i, v.Name(), want[i])
		}
	}
}

func TestProposeFindsSolidButton(t *testing.T) {
	c := render.NewCanvas(96, 160)
	c.Fill(c.Bounds(), render.White)
	button := geom.Rect{X: 24, Y: 100, W: 48, H: 14}
	c.Fill(button, render.Red)
	props := Propose(c)
	if len(props) == 0 {
		t.Fatal("no proposals on a screen with one button")
	}
	best := 0.0
	for _, p := range props {
		if iou := p.IoU(button); iou > best {
			best = iou
		}
	}
	if best < 0.9 {
		t.Fatalf("best proposal IoU %v for a solid button, want >= 0.9", best)
	}
}

func TestProposeFindsSmallChip(t *testing.T) {
	c := render.NewCanvas(96, 160)
	c.Fill(c.Bounds(), render.White)
	chip := geom.Rect{X: 86, Y: 4, W: 6, H: 6}
	c.Fill(chip, render.DarkGray)
	props := Propose(c)
	best := 0.0
	for _, p := range props {
		if iou := p.IoU(chip); iou > best {
			best = iou
		}
	}
	if best < 0.9 {
		t.Fatalf("best proposal IoU %v for a corner chip", best)
	}
}

func TestProposeIgnoresFullScreenAndTiny(t *testing.T) {
	c := render.NewCanvas(96, 160)
	c.Fill(c.Bounds(), render.Blue) // one giant region
	c.Set(50, 50, render.White)     // one 1px region
	for _, p := range Propose(c) {
		if p.W > maxSide || p.H > maxSide {
			t.Fatalf("oversized proposal %v", p)
		}
		if p.W < minSide || p.H < minSide {
			t.Fatalf("undersized proposal %v", p)
		}
	}
}

func TestProposalCap(t *testing.T) {
	gen := auigen.New(1, auigen.Config{})
	_ = gen
	samples := auigen.BuildAUISamples(2, 3, auigen.DatasetConfig{})
	for _, s := range samples {
		if n := len(Propose(s.Input)); n > MaxProposals {
			t.Fatalf("%d proposals exceeds cap %d", n, MaxProposals)
		}
	}
}

func TestApplyDeltasIdentity(t *testing.T) {
	r := geom.Rect{X: 10, Y: 20, W: 30, H: 40}
	b := applyDeltas(r, []float32{0, 0, 0, 0})
	if b.Rect() != r {
		t.Fatalf("zero deltas changed box: %v -> %v", r, b.Rect())
	}
}

func TestApplyDeltasShift(t *testing.T) {
	r := geom.Rect{X: 10, Y: 20, W: 30, H: 40}
	b := applyDeltas(r, []float32{0.1, 0, 0, 0}) // dx = 0.1 * 30 = 3
	if b.X != 13 {
		t.Fatalf("dx shift: got X=%v, want 13", b.X)
	}
}

func TestCropShape(t *testing.T) {
	c := render.NewCanvas(96, 160)
	c.Fill(c.Bounds(), render.Green)
	x := crop(c, geom.Rect{X: 80, Y: 2, W: 10, H: 10})
	if x.Shape[2] != cropSize || x.Shape[3] != cropSize {
		t.Fatalf("crop shape %v", x.Shape)
	}
	// Pixels normalised.
	for _, v := range x.Data {
		if v < 0 || v > 1 {
			t.Fatalf("crop value %v out of range", v)
		}
	}
}

func TestCropAtEdgeDoesNotPanic(t *testing.T) {
	c := render.NewCanvas(96, 160)
	crop(c, geom.Rect{X: -5, Y: -5, W: 4, H: 4})
	crop(c, geom.Rect{X: 94, Y: 158, W: 10, H: 10})
}

func TestForwardShapes(t *testing.T) {
	for _, v := range Variants {
		m := New(v, 1)
		cls, box := m.forward(crop(render.NewCanvas(96, 160), geom.Rect{X: 0, Y: 0, W: 10, H: 10}), false)
		if cls.Len() != numClasses || box.Len() != numDeltas {
			t.Fatalf("%s: head sizes %d/%d", v.Name(), cls.Len(), box.Len())
		}
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	p := softmax([]float32{1, 2, 3})
	sum := p[0] + p[1] + p[2]
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("softmax sum %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Fatalf("softmax ordering wrong: %v", p)
	}
}

func TestTrainingImprovesDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("training-based test skipped in -short mode")
	}
	samples := auigen.BuildAUISamples(5, 30, auigen.DatasetConfig{})
	m := Train(Variant{Refine: true, Residual: true}, samples, TrainConfig{Epochs: 6, Seed: 2})
	eval := yolite.Evaluate(m, samples, 0.5)
	if f1 := eval.All().F1(); f1 < 0.25 {
		t.Fatalf("trained Mask RCNN F1@0.5 = %v on training data, want >= 0.25", f1)
	}
}

func TestPredictTensorRoundTrip(t *testing.T) {
	samples := auigen.BuildAUISamples(6, 2, auigen.DatasetConfig{})
	m := New(Variants[0], 1)
	x := yolite.CanvasToTensor(samples[0].Input)
	// Contract: PredictTensor on the tensor equals Predict on the canvas.
	a := m.Predict(samples[0].Input, 0.5)
	b := m.PredictTensor(x, 0, 0.5)
	if len(a) != len(b) {
		t.Fatalf("canvas/tensor predictions differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].B != b[i].B || a[i].Class != b[i].Class {
			t.Fatalf("prediction %d differs", i)
		}
	}
}

func TestBuildExamplesLabels(t *testing.T) {
	samples := auigen.BuildAUISamples(7, 10, auigen.DatasetConfig{})
	rng := rand.New(rand.NewSource(3))
	examples := buildExamples(samples, rng)
	if len(examples) == 0 {
		t.Fatal("no training examples built")
	}
	var pos, neg int
	for _, ex := range examples {
		switch ex.cls {
		case 0:
			neg++
		case 1, 2:
			pos++
		default:
			t.Fatalf("bad class %d", ex.cls)
		}
	}
	if pos == 0 {
		t.Fatal("no positive proposals — proposal generator misses all options")
	}
	if neg == 0 {
		t.Fatal("no negative proposals")
	}
	for _, ex := range examples {
		if ex.cls != 0 {
			for _, d := range ex.deltas {
				if d < -2 || d > 2 {
					t.Fatalf("extreme delta %v for a >=0.5 IoU match", d)
				}
			}
		}
	}
}
