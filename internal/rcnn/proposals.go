// Package rcnn implements the two-stage detector family the paper compares
// YOLOv5 against in Table V: region proposals followed by a per-proposal
// CNN classifier, in four flavours — {Faster, Mask} x {VGG-ish, ResNet-ish}.
//
// "Faster" variants classify raw proposals; "Mask" variants add a box
// refinement head (the better-localisation analogue of Mask RCNN's extra
// branch). "VGG-ish" is a plain conv stack; "ResNet-ish" adds a residual
// block. The two-stage design costs one classifier pass per proposal, which
// is where the ~2.5x speed gap the paper reports comes from.
package rcnn

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/render"
)

// Proposal generation parameters.
const (
	// colorBits is the per-channel quantisation used to segment regions;
	// coarser quantisation merges low-contrast widgets into their
	// background, which is the two-stage family's characteristic miss.
	colorBits = 3
	// minSide/maxSide bound plausible option sizes at input resolution.
	minSide = 3
	maxSide = 80
	// MaxProposals caps per-image proposals (sorted by saliency).
	MaxProposals = 60
)

// Propose segments the canvas by quantised colour connected components and
// returns candidate boxes, most salient (highest edge contrast) first.
func Propose(c *render.Canvas) []geom.Rect {
	w, h := c.W, c.H
	key := make([]uint16, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			col := c.At(x, y)
			shift := 8 - colorBits
			key[y*w+x] = uint16(col.R>>shift)<<10 | uint16(col.G>>shift)<<5 | uint16(col.B>>shift)
		}
	}
	// Connected components via BFS with 4-connectivity.
	labels := make([]int32, w*h)
	for i := range labels {
		labels[i] = -1
	}
	type comp struct {
		minX, minY, maxX, maxY int
		count                  int
	}
	var comps []comp
	queue := make([]int, 0, 256)
	for start := 0; start < w*h; start++ {
		if labels[start] >= 0 {
			continue
		}
		id := int32(len(comps))
		comps = append(comps, comp{minX: start % w, minY: start / w, maxX: start % w, maxY: start / w})
		labels[start] = id
		queue = append(queue[:0], start)
		k := key[start]
		for len(queue) > 0 {
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			x, y := i%w, i/w
			cp := &comps[id]
			if x < cp.minX {
				cp.minX = x
			}
			if x > cp.maxX {
				cp.maxX = x
			}
			if y < cp.minY {
				cp.minY = y
			}
			if y > cp.maxY {
				cp.maxY = y
			}
			cp.count++
			for _, ni := range [4]int{i - 1, i + 1, i - w, i + w} {
				if ni < 0 || ni >= w*h {
					continue
				}
				nx := ni % w
				if (ni == i-1 || ni == i+1) && ni/w != y {
					continue
				}
				_ = nx
				if labels[ni] < 0 && key[ni] == k {
					labels[ni] = id
					queue = append(queue, ni)
				}
			}
		}
	}
	type scored struct {
		r     geom.Rect
		score float64
	}
	var cands []scored
	for _, cp := range comps {
		bw := cp.maxX - cp.minX + 1
		bh := cp.maxY - cp.minY + 1
		if bw < minSide || bh < minSide || bw > maxSide || bh > maxSide {
			continue
		}
		// Fill ratio: solid widgets fill their bounding box.
		fill := float64(cp.count) / float64(bw*bh)
		if fill < 0.35 {
			continue
		}
		r := geom.Rect{X: cp.minX, Y: cp.minY, W: bw, H: bh}
		// Saliency: contrast between the region border and its surround.
		score := fill * borderContrast(c, r)
		cands = append(cands, scored{r: r, score: score})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	if len(cands) > MaxProposals {
		cands = cands[:MaxProposals]
	}
	out := make([]geom.Rect, len(cands))
	for i, s := range cands {
		out[i] = s.r
	}
	return out
}

// borderContrast estimates the luminance difference between a rect's edge
// pixels and the pixels just outside it.
func borderContrast(c *render.Canvas, r geom.Rect) float64 {
	var inSum, outSum float64
	var n int
	step := max(1, r.W/8)
	for x := r.X; x < r.MaxX(); x += step {
		inSum += c.At(x, r.Y).Luma() + c.At(x, r.MaxY()-1).Luma()
		outSum += c.At(x, r.Y-2).Luma() + c.At(x, r.MaxY()+1).Luma()
		n += 2
	}
	stepY := max(1, r.H/8)
	for y := r.Y; y < r.MaxY(); y += stepY {
		inSum += c.At(r.X, y).Luma() + c.At(r.MaxX()-1, y).Luma()
		outSum += c.At(r.X-2, y).Luma() + c.At(r.MaxX()+1, y).Luma()
		n += 2
	}
	if n == 0 {
		return 0
	}
	d := (inSum - outSum) / float64(n)
	if d < 0 {
		d = -d
	}
	return 1 + d/255
}

// BoxIoU is a debugging helper exposing rect-vs-box IoU.
func BoxIoU(r geom.Rect, b geom.BoxF) float64 { return geom.BoxFromRect(r).IoU(b) }
