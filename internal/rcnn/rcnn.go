package rcnn

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/render"
	"repro/internal/tensor"
	"repro/internal/yolite"
)

// Variant selects a Table V baseline.
type Variant struct {
	// Refine enables the box-regression head ("Mask" variants).
	Refine bool
	// Residual selects the ResNet-ish backbone over the VGG-ish one.
	Residual bool
}

// Name returns the Table V row name.
func (v Variant) Name() string {
	family := "Faster RCNN"
	if v.Refine {
		family = "Mask RCNN"
	}
	backbone := "VGG16"
	if v.Residual {
		backbone = "ResNet50"
	}
	return family + "+" + backbone
}

// Slug returns the registry-friendly backend name ("mask-rcnn-resnet50").
func (v Variant) Slug() string {
	family := "faster-rcnn"
	if v.Refine {
		family = "mask-rcnn"
	}
	backbone := "vgg16"
	if v.Residual {
		backbone = "resnet50"
	}
	return family + "-" + backbone
}

// Variants lists the four Table V baselines in the paper's row order.
var Variants = []Variant{
	{Refine: false, Residual: false},
	{Refine: false, Residual: true},
	{Refine: true, Residual: false},
	{Refine: true, Residual: true},
}

// cropSize is the proposal crop resolution fed to the classifier.
const cropSize = 24

// numOutputs: background/AGO/UPO class logits plus 4 box deltas.
const (
	numClasses = 3 // background, AGO, UPO
	numDeltas  = 4
)

// Model is one two-stage detector.
type Model struct {
	Variant  Variant
	backbone *nn.Sequential
	headCls  *tensor.Linear
	headBox  *tensor.Linear
	featLen  int
}

// New builds an untrained two-stage model.
func New(variant Variant, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	// No batch norm here: proposal crops are classified one at a time, so
	// batch statistics would differ wildly between training and inference.
	var layers []tensor.Layer
	layers = append(layers, tensor.NewConv2D(rng, 3, 8, 3, 1, 1), tensor.NewLeakyReLU(), tensor.NewMaxPool2D())  // 24 -> 12
	layers = append(layers, tensor.NewConv2D(rng, 8, 16, 3, 1, 1), tensor.NewLeakyReLU(), tensor.NewMaxPool2D()) // 12 -> 6
	if variant.Residual {
		layers = append(layers, nn.NewResidual(nn.NewSequential(tensor.NewConv2D(rng, 16, 16, 3, 1, 1), tensor.NewLeakyReLU())))
	} else {
		layers = append(layers, tensor.NewConv2D(rng, 16, 16, 3, 1, 1), tensor.NewLeakyReLU())
	}
	featLen := 16 * 6 * 6
	return &Model{
		Variant:  variant,
		backbone: nn.NewSequential(layers...),
		headCls:  tensor.NewLinear(rng, featLen, numClasses),
		headBox:  tensor.NewLinear(rng, featLen, numDeltas),
		featLen:  featLen,
	}
}

// params returns all trainable tensors.
func (m *Model) params() []*tensor.Tensor {
	out := m.backbone.Params()
	out = append(out, m.headCls.Params()...)
	out = append(out, m.headBox.Params()...)
	return out
}

// crop extracts a proposal (with 2px context) as a normalised input tensor.
func crop(c *render.Canvas, r geom.Rect) *tensor.Tensor {
	padded := r.Inset(-2).Clamp(c.Bounds())
	if padded.Empty() {
		padded = geom.Rect{X: 0, Y: 0, W: 1, H: 1}
	}
	sub := c.SubImage(padded).Resize(cropSize, cropSize)
	x := tensor.New(1, 3, cropSize, cropSize)
	plane := cropSize * cropSize
	for y := 0; y < cropSize; y++ {
		for xx := 0; xx < cropSize; xx++ {
			i := 4 * (y*cropSize + xx)
			o := y*cropSize + xx
			x.Data[o] = float32(sub.Pix[i]) / 255
			x.Data[plane+o] = float32(sub.Pix[i+1]) / 255
			x.Data[2*plane+o] = float32(sub.Pix[i+2]) / 255
		}
	}
	return x
}

// forward runs the backbone and heads on one crop.
func (m *Model) forward(x *tensor.Tensor, train bool) (cls, box *tensor.Tensor) {
	f := m.backbone.Forward(x, train)
	flat := &tensor.Tensor{Shape: []int{1, m.featLen}, Data: f.Data}
	return m.headCls.Forward(flat, train), m.headBox.Forward(flat, train)
}

// softmax over a class logit row.
func softmax(logits []float32) []float64 {
	maxL := logits[0]
	for _, v := range logits {
		if v > maxL {
			maxL = v
		}
	}
	exp := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		exp[i] = math.Exp(float64(v - maxL))
		sum += exp[i]
	}
	for i := range exp {
		exp[i] /= sum
	}
	return exp
}

// applyDeltas refines a proposal box with predicted (dx, dy, dw, dh) in the
// standard RCNN parameterisation.
func applyDeltas(r geom.Rect, d []float32) geom.BoxF {
	b := geom.BoxFromRect(r)
	cx := b.CenterX() + float64(d[0])*b.W
	cy := b.CenterY() + float64(d[1])*b.H
	w := b.W * math.Exp(clamp(float64(d[2]), -1, 1))
	h := b.H * math.Exp(clamp(float64(d[3]), -1, 1))
	return geom.BoxF{
		X: math.Round(cx - w/2), Y: math.Round(cy - h/2),
		W: math.Round(w), H: math.Round(h),
	}
}

// lumaOf converts a canvas to a normalised luminance plane.
func lumaOf(c *render.Canvas) []float32 {
	out := make([]float32, c.W*c.H)
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			out[y*c.W+x] = float32(c.At(x, y).Luma()) / 255
		}
	}
	return out
}

// Predict runs the two-stage pipeline on a model-input-sized canvas.
func (m *Model) Predict(c *render.Canvas, confThresh float64) []metrics.Detection {
	dets, _ := m.predict(context.Background(), c, confThresh)
	return dets
}

// PredictCtx is Predict with a cooperative cancellation checkpoint between
// proposal crops — the natural granularity of a two-stage detector, where
// each proposal costs a full (small) backbone forward. On cancel it returns
// ctx.Err() and no detections.
func (m *Model) PredictCtx(ctx context.Context, c *render.Canvas, confThresh float64) ([]metrics.Detection, error) {
	return m.predict(ctx, c, confThresh)
}

// predict is the shared two-stage pipeline. A context that can never be
// cancelled skips the per-proposal Err checks via the done==nil fast path in
// aborted, so the Background path stays bit-identical and checkpoint free.
func (m *Model) predict(ctx context.Context, c *render.Canvas, confThresh float64) ([]metrics.Detection, error) {
	cancellable := ctx.Done() != nil
	var dets []metrics.Detection
	for _, r := range Propose(c) {
		if cancellable {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		cls, box := m.forward(crop(c, r), false)
		probs := softmax(cls.Data)
		bestCls, bestP := 0, probs[0]
		for ci := 1; ci < numClasses; ci++ {
			if probs[ci] > bestP {
				bestCls, bestP = ci, probs[ci]
			}
		}
		if bestCls == 0 || bestP < confThresh {
			continue
		}
		b := geom.BoxFromRect(r)
		if m.Variant.Refine {
			// The Mask-family refinement: regressed deltas followed by
			// mask-style boundary snapping.
			b = applyDeltas(r, box.Data)
			b = yolite.RefineBox(lumaOf(c), c.W, c.H, b)
		}
		dets = append(dets, metrics.Detection{
			Class: dataset.Class(bestCls - 1),
			B:     b,
			Score: bestP,
		})
	}
	return metrics.NMS(dets, 0.2), nil
}

// PredictTensor implements yolite.Predictor. The two-stage pipeline needs
// pixels, not tensors, so it reconstructs the canvas (n must index a single-
// image tensor produced by yolite.CanvasToTensor).
func (m *Model) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	return m.Predict(tensorItemToCanvas(x, n), confThresh)
}

// PredictTensorCtx is PredictTensor with cooperative cancellation between
// proposal crops; see PredictCtx. The Background path is exactly
// PredictTensor.
func (m *Model) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, confThresh float64) ([]metrics.Detection, error) {
	return m.predict(ctx, tensorItemToCanvas(x, n), confThresh)
}

// tensorItemToCanvas reconstructs batch item n of a yolite.CanvasToTensor
// tensor as a canvas.
func tensorItemToCanvas(x *tensor.Tensor, n int) *render.Canvas {
	c := render.NewCanvas(yolite.InputW, yolite.InputH)
	plane := yolite.InputH * yolite.InputW
	base := n * 3 * plane
	for y := 0; y < yolite.InputH; y++ {
		for xx := 0; xx < yolite.InputW; xx++ {
			o := y*yolite.InputW + xx
			c.Set(xx, y, render.Color{
				R: uint8(x.Data[base+o]*255 + 0.5),
				G: uint8(x.Data[base+plane+o]*255 + 0.5),
				B: uint8(x.Data[base+2*plane+o]*255 + 0.5),
				A: 255,
			})
		}
	}
	return c
}

var _ yolite.Predictor = (*Model)(nil)

// Name identifies the backend in registries and result tables.
func (m *Model) Name() string { return m.Variant.Slug() }

// TrainConfig controls two-stage training. The zero value is the full
// experiment configuration.
type TrainConfig struct {
	// Epochs over the proposal set. Zero means 12.
	Epochs int
	// LR for Adam. Zero means 2e-3.
	LR float32
	// Seed. Zero means 1.
	Seed int64
	// Progress receives (epoch, loss) when non-nil.
	Progress func(int, float64)
}

func (c TrainConfig) epochs() int {
	if c.Epochs == 0 {
		return 12
	}
	return c.Epochs
}

func (c TrainConfig) lr() float32 {
	if c.LR == 0 {
		return 2e-3
	}
	return c.LR
}

func (c TrainConfig) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// trainExample is one labelled proposal crop.
type trainExample struct {
	input  *tensor.Tensor
	cls    int // 0 background, 1 AGO, 2 UPO
	deltas [numDeltas]float32
}

// buildExamples labels proposals on each sample by IoU against ground truth
// (>= 0.5 positive, the standard RCNN protocol).
func buildExamples(samples []*dataset.Sample, rng *rand.Rand) []trainExample {
	var out []trainExample
	for _, s := range samples {
		props := Propose(s.Input)
		for _, r := range props {
			b := geom.BoxFromRect(r)
			bestIoU, bestCls := 0.0, 0
			var bestGT geom.BoxF
			for _, gt := range s.Boxes {
				if iou := b.IoU(gt.B); iou > bestIoU {
					bestIoU = iou
					bestCls = int(gt.Class) + 1
					bestGT = gt.B
				}
			}
			ex := trainExample{input: crop(s.Input, r)}
			if bestIoU >= 0.5 {
				ex.cls = bestCls
				ex.deltas = [numDeltas]float32{
					float32((bestGT.CenterX() - b.CenterX()) / b.W),
					float32((bestGT.CenterY() - b.CenterY()) / b.H),
					float32(math.Log(bestGT.W / b.W)),
					float32(math.Log(bestGT.H / b.H)),
				}
				// Oversample positives: proposals are overwhelmingly
				// background, and an unbalanced set collapses the
				// classifier onto the background prior.
				out = append(out, ex, ex, ex)
			} else if bestIoU > 0.3 {
				continue // ambiguous: neither positive nor clean negative
			} else if rng.Float64() > 0.25 {
				continue // subsample easy negatives
			}
			out = append(out, ex)
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Train fits a two-stage model on the samples.
func Train(variant Variant, samples []*dataset.Sample, cfg TrainConfig) *Model {
	m := New(variant, cfg.seed())
	rng := rand.New(rand.NewSource(cfg.seed() + 500))
	examples := buildExamples(samples, rng)
	if len(examples) == 0 {
		return m
	}
	opt := tensor.NewAdam(m.params(), cfg.lr())
	for epoch := 0; epoch < cfg.epochs(); epoch++ {
		rng.Shuffle(len(examples), func(i, j int) { examples[i], examples[j] = examples[j], examples[i] })
		var epochLoss float64
		for _, ex := range examples {
			cls, box := m.forward(ex.input, true)
			probs := softmax(cls.Data)
			// Cross-entropy gradient.
			dCls := tensor.New(1, numClasses)
			for ci := 0; ci < numClasses; ci++ {
				t := float32(0)
				if ci == ex.cls {
					t = 1
				}
				dCls.Data[ci] = float32(probs[ci]) - t
			}
			epochLoss += -math.Log(math.Max(probs[ex.cls], 1e-9))
			// Box deltas only for positive crops (smooth-ish L2).
			dBox := tensor.New(1, numDeltas)
			if ex.cls != 0 {
				for di := 0; di < numDeltas; di++ {
					diff := box.Data[di] - ex.deltas[di]
					dBox.Data[di] = 2 * diff
					epochLoss += float64(diff) * float64(diff)
				}
			}
			dFlatC := m.headCls.Backward(dCls)
			dFlatB := m.headBox.Backward(dBox)
			dFeat := tensor.New(1, 16, 6, 6)
			for i := range dFeat.Data {
				dFeat.Data[i] = dFlatC.Data[i] + dFlatB.Data[i]
			}
			m.backbone.Backward(dFeat)
			tensor.ClipGrad(m.params(), 10)
			opt.Step()
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, epochLoss/float64(len(examples)))
		}
	}
	return m
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// String describes the model.
func (m *Model) String() string { return fmt.Sprintf("rcnn(%s)", m.Variant.Name()) }
