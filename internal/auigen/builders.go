package auigen

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/uikit"
)

// AUIFor builds an AUI of the given subject sized to a w x h content area.
func (g *Generator) AUIFor(subject dataset.Subject, w, h int) *AUI {
	if w < 64 || h < 96 {
		panic(fmt.Sprintf("auigen: content area %dx%d too small", w, h))
	}
	var a *AUI
	switch subject {
	case dataset.SubjectAdvertisement:
		a = g.buildAdvertisement(w, h)
	case dataset.SubjectSalesPromotion:
		a = g.buildPromotion(w, h)
	case dataset.SubjectLuckyMoney:
		a = g.buildLuckyMoney(w, h)
	case dataset.SubjectAppUpgrade:
		a = g.buildUpgrade(w, h)
	case dataset.SubjectOperationGuide:
		a = g.buildGuide(w, h)
	case dataset.SubjectFeedbackRequest:
		a = g.buildFeedback(w, h)
	case dataset.SubjectPermissionRequest:
		a = g.buildPermission(w, h)
	default:
		panic(fmt.Sprintf("auigen: unknown subject %v", subject))
	}
	a.Subject = subject
	return a
}

// AUI builds an AUI with a subject drawn from the Table I distribution.
func (g *Generator) AUI(w, h int) *AUI {
	return g.AUIFor(dataset.SampleSubject(g.rng), w, h)
}

// addUPO appends a corner (or inline) UPO to root and records its label.
func (g *Generator) addUPO(a *AUI, root *uikit.View, w, h int, corner, darkBG bool) {
	v, r := g.upoView(w, h, corner, darkBG)
	root.Add(v)
	a.Boxes = append(a.Boxes, dataset.Box{Class: dataset.ClassUPO, B: geom.BoxFromRect(r)})
	a.UPOIDs = append(a.UPOIDs, v.ID)
}

// addAGO appends the app-guided button (when the distribution says the AUI
// has a discrete one) and records its label. It returns whether a button was
// added.
func (g *Generator) addAGO(a *AUI, root *uikit.View, w, h int, label string) bool {
	if g.rng.Float64() >= g.cfg.agoPresentProb() {
		// No discrete AGO: the whole background is the app-guided surface.
		root.Clickable = true
		if root.ID == "" {
			root.ID = g.id("content_surface")
		}
		return false
	}
	v, r := g.agoView(w, h, label)
	root.Add(v)
	a.Boxes = append(a.Boxes, dataset.Box{Class: dataset.ClassAGO, B: geom.BoxFromRect(r)})
	a.AGOIDs = append(a.AGOIDs, v.ID)
	a.TextRects = append(a.TextRects, textRectOf(v, r))
	return true
}

// buildAdvertisement is the dominant AUI (64.9%): a full-screen ad with a
// tiny close button (Figure 2a).
func (g *Generator) buildAdvertisement(w, h int) *AUI {
	a := &AUI{FullScreen: g.rng.Float64() < 0.6}
	root := &uikit.View{ID: g.id("ad_container"), Kind: uikit.KindContainer,
		Bounds: geom.Rect{W: w, H: h}}
	// Gradient backdrop.
	top, bottom := g.vivid().WithAlpha(255), g.pastel()
	bg := &uikit.View{Kind: uikit.KindImage, Bounds: geom.Rect{W: w, H: h}, Color: top}
	root.Add(bg)
	root.Add(&uikit.View{Kind: uikit.KindImage, Bounds: geom.Rect{Y: h / 2, W: w, H: h / 2}, Color: bottom})
	// Product hero block.
	pw, ph := int(float64(w)*0.55), int(float64(h)*0.28)
	root.Add(&uikit.View{ID: g.id("ad_image"), Kind: uikit.KindImage,
		Bounds: geom.Rect{X: (w - pw) / 2, Y: h / 6, W: pw, H: ph},
		Color:  g.pastel(), Corner: 6})
	// Headline.
	head := &uikit.View{Kind: uikit.KindText, Bounds: geom.Rect{X: w / 10, Y: h/6 + ph + 8, W: 8 * w / 10, H: 18},
		Text: g.label(headlines), TextScale: 1, TextColor: render.White}
	root.Add(head)
	a.TextRects = append(a.TextRects, textRectOf(head, head.Bounds))
	// Regulatory "AD" tag, tiny and low-contrast like the real thing.
	root.Add(&uikit.View{ID: g.id("ad_tag"), Kind: uikit.KindText,
		Bounds: geom.Rect{X: 2, Y: h - 10, W: 14, H: 8},
		Text:   "AD", TextScale: 1, TextColor: render.Gray, Alpha: 0.5})
	g.addAGO(a, root, w, h, g.label(agoLabels))
	// ~78% corner UPOs among ads keeps the global corner rate near 73.1%
	// once the dialog subjects (inline UPOs) are mixed in.
	g.addUPO(a, root, w, h, g.rng.Float64() < 0.78, false)
	if g.rng.Float64() < g.cfg.secondUPOProb() {
		g.addUPO(a, root, w, h, true, false)
	}
	a.Root = root
	return a
}

// dialogCard builds the centred card used by the dialog-style subjects and
// returns the card view plus its bounds.
func (g *Generator) dialogCard(w, h int, cw, ch int) (*uikit.View, geom.Rect, *uikit.View) {
	root := &uikit.View{ID: g.id("dialog_root"), Kind: uikit.KindContainer,
		Bounds: geom.Rect{W: w, H: h},
		Color:  render.Black.WithAlpha(110)} // dim scrim
	cw, ch = even(cw), even(ch)
	r := geom.Rect{X: even((w - cw) / 2), Y: even((h - ch) / 2), W: cw, H: ch}
	card := &uikit.View{ID: g.id("dialog_card"), Kind: uikit.KindContainer,
		Bounds: r, Color: render.White, Corner: 8}
	root.Add(card)
	return root, r, card
}

// buildPromotion is the in-app sales-promotion AUI (16.7%, Figure 2b).
func (g *Generator) buildPromotion(w, h int) *AUI {
	a := &AUI{}
	cw := even(int(float64(w) * (0.72 + g.rng.Float64()*0.16)))
	ch := even(int(float64(h) * (0.42 + g.rng.Float64()*0.16)))
	root, cardR, card := g.dialogCard(w, h, cw, ch)
	// Banner art inside the card.
	card.Add(&uikit.View{Kind: uikit.KindImage, Bounds: geom.Rect{X: 8, Y: 8, W: cw - 16, H: ch / 3},
		Color: g.vivid().WithAlpha(200), Corner: 4})
	head := &uikit.View{Kind: uikit.KindText, Bounds: geom.Rect{X: 8, Y: ch/3 + 14, W: cw - 16, H: 14},
		Text: g.label(headlines), TextScale: 1, TextColor: render.DarkGray}
	card.Add(head)
	a.TextRects = append(a.TextRects, textRectOf(head, head.Bounds.Translate(cardR.X, cardR.Y)))
	// AGO inside the card, recorded in content coordinates.
	if g.rng.Float64() < g.cfg.agoPresentProb() {
		bw := even(int(float64(cw) * (0.62 + g.rng.Float64()*0.16)))
		bh := even(int(float64(ch) * (0.13 + g.rng.Float64()*0.07)))
		br := geom.Rect{X: even((cw - bw) / 2), Y: even(ch - bh - ch/8), W: bw, H: bh}
		btn := &uikit.View{ID: g.id("promo_join"), Kind: uikit.KindButton, Bounds: br,
			Color: g.vivid(), Corner: bh / 2, Text: g.label(agoLabels), TextScale: 1,
			TextColor: render.White, Clickable: true}
		card.Add(btn)
		abs := br.Translate(cardR.X, cardR.Y)
		a.Boxes = append(a.Boxes, dataset.Box{Class: dataset.ClassAGO, B: geom.BoxFromRect(abs)})
		a.AGOIDs = append(a.AGOIDs, btn.ID)
		a.TextRects = append(a.TextRects, textRectOf(btn, abs))
	} else {
		card.Clickable = true
	}
	// UPO: X at the card's top-right shoulder (still a screen corner zone
	// only when the card is tall; most are "card corners", which the layout
	// statistics count via centre position).
	size := 8 + 2*g.rng.Intn(4)
	ur := geom.Rect{X: cardR.MaxX() - size - 2, Y: even(cardR.Y - size/2), W: size, H: size}
	if g.rng.Float64() < 0.5 {
		// Or a true screen corner.
		ur = cornerRect(g.corner(), even(w), even(h), size, even(4+g.rng.Intn(5)))
	}
	upo := &uikit.View{ID: g.id("promo_close"), Kind: uikit.KindIcon, Bounds: ur,
		Cross: true, CrossColor: render.RGB(55, 55, 55), Clickable: true,
		Alpha: 0.8 + g.rng.Float64()*0.2}
	if g.rng.Float64() >= g.cfg.upoTransparentProb() {
		upo.Color = render.RGB(233, 233, 233).WithAlpha(uint8(200 + g.rng.Intn(55)))
		upo.Corner = size / 2
	} else {
		upo.CrossColor = render.RGB(150, 150, 150)
		upo.Alpha = 0.3 + g.rng.Float64()*0.3
	}
	root.Add(upo)
	a.Boxes = append(a.Boxes, dataset.Box{Class: dataset.ClassUPO, B: geom.BoxFromRect(ur)})
	a.UPOIDs = append(a.UPOIDs, upo.ID)
	a.Root = root
	return a
}

// buildLuckyMoney is the red-packet AUI (12.2%, Figure 2c).
func (g *Generator) buildLuckyMoney(w, h int) *AUI {
	a := &AUI{}
	cw := even(int(float64(w) * (0.64 + g.rng.Float64()*0.16)))
	ch := even(int(float64(h) * (0.48 + g.rng.Float64()*0.14)))
	root, cardR, card := g.dialogCard(w, h, cw, ch)
	card.Color = render.RGB(200, 32, 38) // red packet
	card.Corner = 10
	head := &uikit.View{Kind: uikit.KindText, Bounds: geom.Rect{X: 6, Y: ch / 8, W: cw - 12, H: 14},
		Text: "LUCKY MONEY", TextScale: 1, TextColor: render.RGB(255, 215, 120)}
	card.Add(head)
	a.TextRects = append(a.TextRects, textRectOf(head, head.Bounds.Translate(cardR.X, cardR.Y)))
	// Golden "open" disc: the AGO.
	if g.rng.Float64() < g.cfg.agoPresentProb() {
		d := even(int(float64(cw) * (0.30 + g.rng.Float64()*0.12)))
		br := geom.Rect{X: even((cw - d) / 2), Y: even(ch/2 - d/4), W: d, H: d}
		btn := &uikit.View{ID: g.id("packet_open"), Kind: uikit.KindButton, Bounds: br,
			Color: render.RGB(252, 202, 70), Corner: d / 2, Text: g.label([]string{"OPEN", "GET"}),
			TextScale: 1, TextColor: render.RGB(120, 40, 20), Clickable: true}
		card.Add(btn)
		abs := br.Translate(cardR.X, cardR.Y)
		a.Boxes = append(a.Boxes, dataset.Box{Class: dataset.ClassAGO, B: geom.BoxFromRect(abs)})
		a.AGOIDs = append(a.AGOIDs, btn.ID)
		a.TextRects = append(a.TextRects, textRectOf(btn, abs))
	} else {
		card.Clickable = true
	}
	g.addUPO(a, root, w, h, true, true)
	a.Root = root
	return a
}

// buildUpgrade is the app-upgrade AUI (4.0%, Figure 2d): a dialog with a
// huge "upgrade" button and a small inline "later" option.
func (g *Generator) buildUpgrade(w, h int) *AUI {
	a := &AUI{}
	cw := even(int(float64(w) * (0.78 + g.rng.Float64()*0.14)))
	ch := even(int(float64(h) * (0.28 + g.rng.Float64()*0.12)))
	root, cardR, card := g.dialogCard(w, h, cw, ch)
	head := &uikit.View{Kind: uikit.KindText, Bounds: geom.Rect{X: 8, Y: 10, W: cw - 16, H: 14},
		Text: "NEW VERSION 8.2", TextScale: 1, TextColor: render.DarkGray}
	card.Add(head)
	a.TextRects = append(a.TextRects, textRectOf(head, head.Bounds.Translate(cardR.X, cardR.Y)))
	// AGO: wide yellow upgrade button.
	bw := even(int(float64(cw) * (0.7 + g.rng.Float64()*0.16)))
	bh := even(int(float64(ch) * (0.22 + g.rng.Float64()*0.1)))
	br := geom.Rect{X: even((cw - bw) / 2), Y: even(ch/2 - bh/4), W: bw, H: bh}
	btn := &uikit.View{ID: g.id("btn_upgrade"), Kind: uikit.KindButton, Bounds: br,
		Color: render.RGB(250, 190, 30), Corner: bh / 2, Text: "UPGRADE NOW",
		TextScale: 1, TextColor: render.White, Clickable: true}
	card.Add(btn)
	absB := br.Translate(cardR.X, cardR.Y)
	a.Boxes = append(a.Boxes, dataset.Box{Class: dataset.ClassAGO, B: geom.BoxFromRect(absB)})
	a.AGOIDs = append(a.AGOIDs, btn.ID)
	a.TextRects = append(a.TextRects, textRectOf(btn, absB))
	// UPO: small grey "later" text under it — a non-corner UPO.
	uw, uh := even(int(float64(cw)*(0.24+g.rng.Float64()*0.12))), 10
	ur := geom.Rect{X: even((cw - uw) / 2), Y: br.MaxY() + 6, W: uw, H: uh}
	upo := &uikit.View{ID: g.id("btn_later"), Kind: uikit.KindText, Bounds: ur,
		Text: g.label(skipLabels), TextScale: 1, TextColor: render.Gray,
		Clickable: true, Alpha: 0.5 + g.rng.Float64()*0.5}
	if g.rng.Float64() >= g.cfg.upoTransparentProb() {
		upo.Color = render.RGB(182, 186, 190).WithAlpha(uint8(220 + g.rng.Intn(36)))
		upo.Corner = 3
	}
	card.Add(upo)
	absU := ur.Translate(cardR.X, cardR.Y)
	a.Boxes = append(a.Boxes, dataset.Box{Class: dataset.ClassUPO, B: geom.BoxFromRect(absU)})
	a.UPOIDs = append(a.UPOIDs, upo.ID)
	a.Root = root
	return a
}

// buildGuide is the operation-guide AUI (1.5%): a dark coach-mark overlay
// with a prominent "next" and a hidden "skip".
func (g *Generator) buildGuide(w, h int) *AUI {
	a := &AUI{FullScreen: true}
	root := &uikit.View{ID: g.id("guide_overlay"), Kind: uikit.KindContainer,
		Bounds: geom.Rect{W: w, H: h}, Color: render.Black.WithAlpha(170)}
	// Highlighted feature bubble.
	d := w / 3
	root.Add(&uikit.View{Kind: uikit.KindImage, Bounds: geom.Rect{X: w/2 - d/2, Y: h / 4, W: d, H: d},
		Color: render.White.WithAlpha(230), Corner: d / 2})
	g.addAGO(a, root, w, h, "NEXT")
	g.addUPO(a, root, w, h, true, true)
	a.Root = root
	return a
}

// buildFeedback is the rate-us AUI (0.4%).
func (g *Generator) buildFeedback(w, h int) *AUI {
	a := &AUI{}
	cw := even(int(float64(w) * (0.72 + g.rng.Float64()*0.16)))
	ch := even(int(float64(h) * (0.34 + g.rng.Float64()*0.12)))
	root, cardR, card := g.dialogCard(w, h, cw, ch)
	head := &uikit.View{Kind: uikit.KindText, Bounds: geom.Rect{X: 8, Y: 10, W: cw - 16, H: 14},
		Text: "ENJOYING THE APP?", TextScale: 1, TextColor: render.DarkGray}
	card.Add(head)
	a.TextRects = append(a.TextRects, textRectOf(head, head.Bounds.Translate(cardR.X, cardR.Y)))
	// Star row.
	for i := 0; i < 5; i++ {
		card.Add(&uikit.View{Kind: uikit.KindIcon,
			Bounds: geom.Rect{X: cw/2 - 40 + i*17, Y: ch / 3, W: 12, H: 12},
			Color:  render.RGB(250, 200, 60), Corner: 6})
	}
	bw := even(int(float64(cw) * (0.62 + g.rng.Float64()*0.16)))
	bh := even(int(float64(ch) * (0.18 + g.rng.Float64()*0.1)))
	br := geom.Rect{X: even((cw - bw) / 2), Y: even(2 * ch / 3), W: bw, H: bh}
	btn := &uikit.View{ID: g.id("btn_rate"), Kind: uikit.KindButton, Bounds: br,
		Color: g.vivid(), Corner: bh / 2, Text: "RATE 5 STARS", TextScale: 1,
		TextColor: render.White, Clickable: true}
	card.Add(btn)
	absB := br.Translate(cardR.X, cardR.Y)
	a.Boxes = append(a.Boxes, dataset.Box{Class: dataset.ClassAGO, B: geom.BoxFromRect(absB)})
	a.AGOIDs = append(a.AGOIDs, btn.ID)
	a.TextRects = append(a.TextRects, textRectOf(btn, absB))
	g.addUPO(a, root, w, h, g.rng.Float64() < 0.5, true)
	a.Root = root
	return a
}

// buildPermission is the sensitive-permission AUI (0.3%): "allow" shouting,
// "deny" whispering.
func (g *Generator) buildPermission(w, h int) *AUI {
	a := &AUI{}
	cw := even(int(float64(w) * (0.78 + g.rng.Float64()*0.14)))
	ch := even(int(float64(h) * (0.26 + g.rng.Float64()*0.1)))
	root, cardR, card := g.dialogCard(w, h, cw, ch)
	head := &uikit.View{Kind: uikit.KindText, Bounds: geom.Rect{X: 8, Y: 8, W: cw - 16, H: 24},
		Text: "ALLOW LOCATION?", TextScale: 1, TextColor: render.DarkGray}
	card.Add(head)
	a.TextRects = append(a.TextRects, textRectOf(head, head.Bounds.Translate(cardR.X, cardR.Y)))
	bw := even(int(float64(cw) * (0.68 + g.rng.Float64()*0.14)))
	bh := even(int(float64(ch) * (0.26 + g.rng.Float64()*0.1)))
	br := geom.Rect{X: even((cw - bw) / 2), Y: even(ch/2 - bh/6), W: bw, H: bh}
	btn := &uikit.View{ID: g.id("btn_allow"), Kind: uikit.KindButton, Bounds: br,
		Color: render.Blue, Corner: bh / 2, Text: "ALLOW", TextScale: 1,
		TextColor: render.White, Clickable: true}
	card.Add(btn)
	absB := br.Translate(cardR.X, cardR.Y)
	a.Boxes = append(a.Boxes, dataset.Box{Class: dataset.ClassAGO, B: geom.BoxFromRect(absB)})
	a.AGOIDs = append(a.AGOIDs, btn.ID)
	a.TextRects = append(a.TextRects, textRectOf(btn, absB))
	// UPO: "deny" in small grey text at the card bottom.
	uw, uh := even(int(float64(cw)*(0.2+g.rng.Float64()*0.1))), 10
	ur := geom.Rect{X: even((cw - uw) / 2), Y: br.MaxY() + 4, W: uw, H: uh}
	upo := &uikit.View{ID: g.id("btn_deny"), Kind: uikit.KindText, Bounds: ur,
		Text: "DENY", TextScale: 1, TextColor: render.Gray, Clickable: true,
		Alpha: 0.45 + g.rng.Float64()*0.5}
	if g.rng.Float64() >= g.cfg.upoTransparentProb() {
		upo.Color = render.RGB(182, 186, 190).WithAlpha(uint8(220 + g.rng.Intn(36)))
		upo.Corner = 3
	}
	card.Add(upo)
	absU := ur.Translate(cardR.X, cardR.Y)
	a.Boxes = append(a.Boxes, dataset.Box{Class: dataset.ClassUPO, B: geom.BoxFromRect(absU)})
	a.UPOIDs = append(a.UPOIDs, upo.ID)
	a.Root = root
	return a
}
