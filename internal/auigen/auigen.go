// Package auigen synthesises the reproduction's D_aui: screens containing
// Asymmetric dark UIs with exact AGO/UPO ground truth, plus the non-AUI
// screens used as negatives and as base app content.
//
// The generator follows the empirical distributions the paper measured on
// 1,072 real screenshots (Section III-A): the subject mix of Table I, AGOs
// centred on the screen in ~94.6% of AUIs, UPOs in a corner in ~73.1% of
// AUIs, and box-count marginals matching Table II (744 AGO and 1,103 UPO
// boxes over 1,072 screenshots — i.e. not every AUI has a discrete AGO
// button, and a few have two UPOs).
//
// Difficulty knobs are calibrated so a small detector lands in the paper's
// accuracy range: transparent-background UPOs reproduce the paper's
// dominant false-negative cause, and small low-contrast buttons on non-AUI
// screens reproduce its false-positive cause.
package auigen

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/font"
	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/uikit"
)

// Config tunes the generator. The zero value is the calibrated default.
type Config struct {
	// UPOTransparentProb is the probability that a UPO has no background
	// fill — the hard cases behind most of the paper's false negatives.
	// Zero means the calibrated default (0.10).
	UPOTransparentProb float64
	// AGOPresentProb is the probability an AUI has a discrete AGO button
	// (otherwise the whole background is the app-guided surface and no AGO
	// box is labelled). Zero means the default 744/1072.
	AGOPresentProb float64
	// SecondUPOProb is the probability of a second UPO. Zero means the
	// default calibrated to Table II's 1,103 UPOs on 1,072 screenshots.
	SecondUPOProb float64
	// ObfuscateIDs replaces semantic resource ids with meaningless tokens,
	// the app-hardening that defeats the FraudDroid-like baseline.
	ObfuscateIDs bool
	// CJK renders labels with CJK strings (drawn as block glyphs at this
	// resolution), for the language-generalisation experiment.
	CJK bool
}

func (c Config) upoTransparentProb() float64 {
	if c.UPOTransparentProb == 0 {
		return 0.10
	}
	return c.UPOTransparentProb
}

func (c Config) agoPresentProb() float64 {
	if c.AGOPresentProb == 0 {
		return 744.0 / 1072.0
	}
	return c.AGOPresentProb
}

func (c Config) secondUPOProb() float64 {
	if c.SecondUPOProb == 0 {
		return (1103.0 - 1072.0) / 1072.0
	}
	return c.SecondUPOProb
}

// AUI is one generated asymmetric dark UI: a view tree plus ground truth.
type AUI struct {
	// Subject is the Table I context.
	Subject dataset.Subject
	// Root is the content view tree, sized to the (w, h) the builder was
	// given. Coordinates below are in this content coordinate system.
	Root *uikit.View
	// FullScreen requests the full screen rather than the inset content
	// frame when the AUI is shown on a device.
	FullScreen bool
	// Boxes is the labelled ground truth.
	Boxes []dataset.Box
	// AGOIDs and UPOIDs are the resource ids of the option views.
	AGOIDs, UPOIDs []string
	// TextRects are the label regions, blurred by the text-masking
	// experiment of Table IV.
	TextRects []geom.Rect
}

// Generator produces AUIs and negative screens from a deterministic source.
type Generator struct {
	rng *rand.Rand
	cfg Config

	idSeq int
}

// New builds a generator with the given seed and configuration.
func New(seed int64, cfg Config) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// Rand exposes the generator's random source for callers that must stay in
// the same deterministic stream.
func (g *Generator) Rand() *rand.Rand { return g.rng }

// id returns a resource id: the semantic name, or an obfuscated token when
// the configuration demands it (mirroring ProGuard-style resource
// obfuscation).
func (g *Generator) id(semantic string) string {
	if !g.cfg.ObfuscateIDs {
		return semantic
	}
	g.idSeq++
	return fmt.Sprintf("o%04x", g.rng.Intn(0xffff)^g.idSeq)
}

// label picks a random label from pool, or a CJK string when configured.
func (g *Generator) label(pool []string) string {
	if g.cfg.CJK {
		cjk := []string{"立即购买", "打开", "领取", "跳过", "关闭", "升级", "允许"}
		return cjk[g.rng.Intn(len(cjk))]
	}
	return pool[g.rng.Intn(len(pool))]
}

var (
	agoLabels  = []string{"BUY NOW", "OPEN", "GET IT", "INSTALL", "TRY FREE", "CLAIM", "CONTINUE", "JOIN NOW"}
	skipLabels = []string{"SKIP", "LATER", "NO THANKS", "CANCEL", "NOT NOW"}
	headlines  = []string{"MEGA SALE 50% OFF", "FREE GIFT TODAY", "HOT DEAL 9.99", "WIN BIG PRIZES", "LIMITED OFFER", "NEW ARRIVALS"}
)

// vivid returns a saturated attention-grabbing colour for AGOs.
func (g *Generator) vivid() render.Color {
	palette := []render.Color{
		render.RGB(239, 68, 68), render.RGB(249, 115, 22), render.RGB(234, 179, 8),
		render.RGB(34, 197, 94), render.RGB(59, 130, 246), render.RGB(236, 72, 153),
	}
	return palette[g.rng.Intn(len(palette))]
}

// pastel returns a soft background colour.
func (g *Generator) pastel() render.Color {
	base := 200 + g.rng.Intn(56)
	return render.RGB(uint8(base-g.rng.Intn(40)), uint8(base-g.rng.Intn(40)), uint8(base-g.rng.Intn(40)))
}

// corner identifies a screen corner for UPO placement, weighted toward the
// top-right like the real samples (Figure 1).
func (g *Generator) corner() int {
	r := g.rng.Float64()
	switch {
	case r < 0.55:
		return cornerTR
	case r < 0.75:
		return cornerTL
	case r < 0.90:
		return cornerBR
	default:
		return cornerBL
	}
}

const (
	cornerTR = iota
	cornerTL
	cornerBR
	cornerBL
)

// cornerRect positions a size x size box in the chosen corner of a w x h
// area with the given margin.
func cornerRect(corner, w, h, size, margin int) geom.Rect {
	switch corner {
	case cornerTL:
		return geom.Rect{X: margin, Y: margin, W: size, H: size}
	case cornerBR:
		return geom.Rect{X: w - margin - size, Y: h - margin - size, W: size, H: size}
	case cornerBL:
		return geom.Rect{X: margin, Y: h - margin - size, W: size, H: size}
	default: // cornerTR
		return geom.Rect{X: w - margin - size, Y: margin, W: size, H: size}
	}
}

// even rounds v down to an even number. Every option view is aligned to even
// coordinates so that ground-truth boxes remain exactly pixel-aligned after
// the 2:1 screen-to-model-input downsample — real GUI widgets are pixel
// aligned too, which is what lets GUI object detection use strict IoU
// thresholds.
func even(v int) int { return v &^ 1 }

// upoView constructs a close-button UPO inside area (w, h), returning the
// view and its bounds. darkBG selects the chip polarity: real apps put
// light chips on dark scrims and dark translucent chips on bright ad
// content. Difficulty varies: size, margin, opacity and background presence
// are all randomised, with a calibrated share of hard transparent cases.
func (g *Generator) upoView(w, h int, corner, darkBG bool) (*uikit.View, geom.Rect) {
	size := 8 + 2*g.rng.Intn(5) // 8-16 px (even) at 192x320 content scale
	margin := even(2 + g.rng.Intn(6))
	var r geom.Rect
	if corner {
		r = cornerRect(g.corner(), even(w), even(h), size, margin)
	} else {
		// Non-corner UPOs sit under the AGO area, bottom-centre.
		r = geom.Rect{
			X: even(w/2 - size*2 + g.rng.Intn(size)),
			Y: even(h - 2*size - margin - g.rng.Intn(h/8)),
			W: even(size * 3), H: size,
		}
	}
	v := &uikit.View{
		ID:        g.id("btn_close"),
		Kind:      uikit.KindIcon,
		Bounds:    r,
		Clickable: true,
	}
	// The hard subset — transparent or heavily faded UPOs — reproduces the
	// paper's dominant false-negative cause; the rest are small but clearly
	// visible, like real close buttons.
	hard := g.rng.Float64() < g.cfg.upoTransparentProb()
	if hard {
		v.Alpha = 0.3 + g.rng.Float64()*0.25
	} else {
		v.Alpha = 0.8 + g.rng.Float64()*0.2
	}
	chip := render.RGB(70, 70, 70).WithAlpha(uint8(180 + g.rng.Intn(70)))
	cross := render.RGB(235, 235, 235)
	if darkBG {
		chip = render.RGB(233, 233, 233).WithAlpha(uint8(200 + g.rng.Intn(55)))
		cross = render.RGB(55, 55, 55)
	}
	if corner {
		if !hard {
			v.Color = chip
			v.Corner = size / 2
		}
		v.Cross = true
		v.CrossColor = cross
		if hard {
			// Chipless faint cross: visible against either polarity but
			// hard for the detector — the paper's FN cases.
			v.CrossColor = render.RGB(150, 150, 150)
		}
	} else {
		// Text-style UPO: a small "skip" pill.
		v.Text = g.label(skipLabels)
		v.TextScale = 1
		if !hard {
			v.Color = chip
			v.Corner = 3
			v.TextColor = cross
		} else {
			v.TextColor = render.Gray
		}
	}
	return v, r
}

// agoView constructs the big app-guided button centred (or, rarely,
// off-centre) in the lower half of the area.
func (g *Generator) agoView(w, h int, label string) (*uikit.View, geom.Rect) {
	bw := even(int(float64(w) * (0.45 + g.rng.Float64()*0.25)))
	bh := even(int(float64(h) * (0.055 + g.rng.Float64()*0.035)))
	x := even((w - bw) / 2)
	if g.rng.Float64() > 0.946 {
		// The rare off-centre AGO of Section III-A.
		x = even(g.rng.Intn(w - bw))
	}
	y := even(int(float64(h) * (0.62 + g.rng.Float64()*0.2)))
	r := geom.Rect{X: x, Y: y, W: bw, H: bh}
	v := &uikit.View{
		ID:        g.id("btn_action"),
		Kind:      uikit.KindButton,
		Bounds:    r,
		Color:     g.vivid(),
		Corner:    bh / 2,
		Text:      label,
		TextScale: 1 + g.rng.Intn(2),
		TextColor: render.White,
		Clickable: true,
	}
	return v, r
}

// textRectOf computes the rectangle the centred label of view v occupies in
// content coordinates, for the masking experiment.
func textRectOf(v *uikit.View, abs geom.Rect) geom.Rect {
	scale := v.TextScale
	if scale < 1 {
		scale = 1
	}
	tw, th := font.Measure(v.Text, scale)
	return geom.Rect{X: abs.X + (abs.W-tw)/2, Y: abs.Y + (abs.H-th)/2, W: tw, H: th}
}
