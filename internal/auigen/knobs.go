package auigen

// The knob seam: a bounded, clampable parameter vector over the generation
// process that internal/adversary's black-box search mutates. Each knob is a
// *delta* against the clean generator — the zero Knobs renders the screen the
// plain pipeline would — so the attack surface composes with every Config and
// seed without forking the builders.
//
// The contract the search relies on:
//
//   - BuildAttacked(seed, k, cfg) is a pure function of its arguments: the
//     same triple replays bit-identically (same pixels, same boxes, same
//     view tree), which is what makes attack trajectories checkable into a
//     corpus as (seed, knobs) recipes instead of renders.
//   - Clamp() maps ANY float vector (NaN, ±Inf, out of range) into the valid
//     box, and a clamped vector can never panic the renderer — fuzzed by
//     FuzzKnobClamp.
//   - Perturbed ground truth stays truthful: boxes move and resize in
//     lockstep with the views they label (the j-th UPO box pairs with
//     UPOIDs[j], an invariant every builder maintains), coordinates stay
//     even so the 2:1 downsample keeps them pixel-aligned, and
//     ValidateAsymmetry rejects any knob draw that would break the paper's
//     asymmetry predicate.

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/uikit"
)

// Knobs is the attack parameter vector. The zero value renders clean.
type Knobs struct {
	// UPOAlpha in [-0.85, 0] multiplies every UPO's opacity by (1 + v),
	// floored at 0.12 so the option stays (barely) human-visible — the
	// contrast attack.
	UPOAlpha float64 `json:"upo_alpha"`
	// UPOScale in [-0.45, 0.10] resizes every UPO about its centre; the
	// shrink direction is the attack, the small grow headroom keeps the
	// search space honest. Dimensions floor at 6 screen px.
	UPOScale float64 `json:"upo_scale"`
	// UPOShiftX/UPOShiftY in [-20, 20] translate every UPO by whole screen
	// pixels, clamped in-bounds — the position attack.
	UPOShiftX float64 `json:"upo_shift_x"`
	UPOShiftY float64 `json:"upo_shift_y"`
	// AGOFade in [0, 0.80] blends the AGO fill and label toward a neutral
	// grey — the palette-shift attack that starves the detector of the
	// vivid-button cue.
	AGOFade float64 `json:"ago_fade"`
	// Distractors in [0, 1] adds up to 6 close-button look-alike decoys
	// (non-clickable, unlabelled) placed away from the true boxes.
	Distractors float64 `json:"distractors"`
	// Texture in [0, 1] scales seeded background luma noise up to ±8% of
	// full scale, applied to the composed screen before downsampling.
	Texture float64 `json:"texture"`
}

// NumKnobs is the dimensionality of the knob vector.
const NumKnobs = 7

var (
	knobMin = [NumKnobs]float64{-0.85, -0.45, -20, -20, 0, 0, 0}
	knobMax = [NumKnobs]float64{0, 0.10, 20, 20, 0.80, 1, 1}
)

// maxNoiseAmp converts Texture=1 into the noise amplitude fraction.
const maxNoiseAmp = 0.08

// maxDistractors is the decoy count at Distractors=1.
const maxDistractors = 6

// minUPOAlpha is the opacity floor after the contrast attack.
const minUPOAlpha = 0.12

// Vec returns the knob values as a fixed-size vector, ordered to match
// KnobRange.
func (k Knobs) Vec() [NumKnobs]float64 {
	return [NumKnobs]float64{k.UPOAlpha, k.UPOScale, k.UPOShiftX, k.UPOShiftY, k.AGOFade, k.Distractors, k.Texture}
}

// KnobsFromVec is the inverse of Vec.
func KnobsFromVec(v [NumKnobs]float64) Knobs {
	return Knobs{UPOAlpha: v[0], UPOScale: v[1], UPOShiftX: v[2], UPOShiftY: v[3], AGOFade: v[4], Distractors: v[5], Texture: v[6]}
}

// KnobRange returns knob i's valid [lo, hi] interval, the mutation step
// scale for the search.
func KnobRange(i int) (lo, hi float64) { return knobMin[i], knobMax[i] }

// Clamp maps an arbitrary knob vector into the valid box. NaN becomes the
// clean value; ±Inf and out-of-range values saturate at the bounds. A
// clamped vector is safe to render.
func (k Knobs) Clamp() Knobs {
	v := k.Vec()
	for i := range v {
		if math.IsNaN(v[i]) {
			v[i] = 0
		}
		v[i] = math.Min(math.Max(v[i], knobMin[i]), knobMax[i])
	}
	return KnobsFromVec(v)
}

// Attacked is one perturbed screen: the rendered sample, the composed screen
// (for metadata-reading backends), the mutated AUI with synced ground truth,
// and the recipe that regenerates all of it.
type Attacked struct {
	Sample *dataset.Sample
	Screen *uikit.Screen
	AUI    *AUI
	// W, H is the coordinate area the AUI was built for (content frame, or
	// the full screen for full-screen subjects) — the frame Validate checks
	// boxes against.
	W, H  int
	Seed  int64
	Knobs Knobs
}

// Validate re-checks the asymmetry predicate on the perturbed ground truth.
func (at *Attacked) Validate() error { return at.AUI.ValidateAsymmetry(at.W, at.H) }

// Salts decorrelate the perturbation and noise streams from the generator's
// own stream without adding seed plumbing.
const (
	attackSalt = 0x5eed0a77ac4ed
	noiseSalt  = 0x7e47a15e
)

// BuildAttacked deterministically renders the AUI screen for seed with the
// knob vector applied. Zero knobs produce the clean screen; the same
// (seed, k, cfg) triple replays bit-identically.
func BuildAttacked(seed int64, k Knobs, cfg DatasetConfig) *Attacked {
	k = k.Clamp()
	g := New(seed, cfg.Gen)
	sw, sh := cfg.screen()
	probe := uikit.NewScreen(sw, sh)
	content := probe.ContentFrame()
	a := g.AUI(content.W, content.H)
	w, h := content.W, content.H
	if a.FullScreen {
		a = g.AUIFor(a.Subject, sw, sh)
		a.FullScreen = true
		w, h = sw, sh
	}
	rng := rand.New(rand.NewSource(seed ^ attackSalt))
	ApplyKnobs(a, k, w, h, rng)
	cfg.NoiseAmp = k.Texture * maxNoiseAmp
	cfg.NoiseSeed = seed ^ noiseSalt
	sample, screen := g.RenderAUIScreen(a, cfg)
	return &Attacked{Sample: sample, Screen: screen, AUI: a, W: w, H: h, Seed: seed, Knobs: k}
}

// ApplyKnobs perturbs a built AUI in place inside its w x h build area,
// keeping the ground-truth boxes in lockstep with the views. rng drives only
// distractor placement, so the same (AUI, k, rng seed) replays exactly.
func ApplyKnobs(a *AUI, k Knobs, w, h int, rng *rand.Rand) {
	k = k.Clamp()
	agoRects := classRects(a, dataset.ClassAGO)

	// UPO contrast / size / position. The j-th UPO-class box pairs with
	// UPOIDs[j]; walk both in lockstep.
	j := 0
	for bi := range a.Boxes {
		if a.Boxes[bi].Class != dataset.ClassUPO {
			continue
		}
		if j >= len(a.UPOIDs) {
			break
		}
		v := a.Root.FindByID(a.UPOIDs[j])
		j++
		if v == nil {
			continue
		}
		old := a.Boxes[bi].B.Rect()
		moved := perturbRect(old, 1+k.UPOScale, int(k.UPOShiftX), int(k.UPOShiftY), w, h)
		// A shift that drags the UPO onto an AGO would conflate the two
		// labels; fall back to resizing in place.
		if !intersectsAny(old, agoRects) && intersectsAny(moved, agoRects) {
			moved = perturbRect(old, 1+k.UPOScale, 0, 0, w, h)
		}
		v.Bounds.X += moved.X - old.X
		v.Bounds.Y += moved.Y - old.Y
		v.Bounds.W, v.Bounds.H = moved.W, moved.H
		if v.Corner > 0 && v.Corner > min(moved.W, moved.H)/2 {
			v.Corner = min(moved.W, moved.H) / 2
		}
		eff := v.Alpha
		if eff == 0 {
			eff = 1
		}
		eff *= 1 + k.UPOAlpha
		if eff < minUPOAlpha {
			eff = minUPOAlpha
		}
		v.Alpha = eff
		a.Boxes[bi].B = geom.BoxFromRect(moved)
	}

	// AGO palette fade.
	if k.AGOFade > 0 {
		grey := render.RGB(214, 214, 214)
		for _, id := range a.AGOIDs {
			if v := a.Root.FindByID(id); v != nil {
				v.Color = lerpColor(v.Color, grey, k.AGOFade)
				v.TextColor = lerpColor(v.TextColor, grey, k.AGOFade)
			}
		}
	}

	// Decoy close buttons: look like UPO chips, but are not clickable,
	// carry no id, and stay clear of every labelled box.
	truth := make([]geom.Rect, 0, len(a.Boxes))
	for _, b := range a.Boxes {
		truth = append(truth, b.B.Rect().Inset(-4))
	}
	n := int(k.Distractors*maxDistractors + 0.5)
	for i := 0; i < n; i++ {
		size := even(8 + rng.Intn(7))
		for attempt := 0; attempt < 10; attempt++ {
			r := geom.Rect{
				X: even(2 + rng.Intn(max(1, w-size-4))),
				Y: even(2 + rng.Intn(max(1, h-size-4))),
				W: size, H: size,
			}
			if intersectsAny(r, truth) {
				continue
			}
			a.Root.Add(&uikit.View{
				Kind: uikit.KindIcon, Bounds: r,
				Color: render.RGB(233, 233, 233).WithAlpha(220), Corner: size / 2,
				Cross: true, CrossColor: render.RGB(55, 55, 55), Alpha: 0.9,
			})
			break
		}
	}
}

// perturbRect scales r about its centre and shifts it, snapping to even
// coordinates (pixel alignment across the 2:1 downsample) and clamping into
// the w x h area with dimensions floored at the tap-target minimum, so a
// legal shrink can never push the UPO out of the validator's valid space.
func perturbRect(r geom.Rect, scale float64, dx, dy, w, h int) geom.Rect {
	nw := even(int(float64(r.W)*scale + 0.5))
	nh := even(int(float64(r.H)*scale + 0.5))
	if nw < minUPODim {
		nw = minUPODim
	}
	if nh < minUPODim {
		nh = minUPODim
	}
	if nw > w {
		nw = even(w)
	}
	if nh > h {
		nh = even(h)
	}
	nx := even(r.X + (r.W-nw)/2 + dx)
	ny := even(r.Y + (r.H-nh)/2 + dy)
	nx = clampInt(nx, 0, w-nw)
	ny = clampInt(ny, 0, h-nh)
	return geom.Rect{X: even(nx), Y: even(ny), W: nw, H: nh}
}

func clampInt(v, lo, hi int) int {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func intersectsAny(r geom.Rect, rs []geom.Rect) bool {
	for _, s := range rs {
		if !r.Intersect(s).Empty() {
			return true
		}
	}
	return false
}

func classRects(a *AUI, class dataset.Class) []geom.Rect {
	var out []geom.Rect
	for _, b := range a.Boxes {
		if b.Class == class {
			out = append(out, b.B.Rect())
		}
	}
	return out
}

func lerpColor(c, to render.Color, t float64) render.Color {
	if c.A == 0 {
		return c // no fill to fade
	}
	l := func(a, b uint8) uint8 { return uint8(float64(a) + (float64(b)-float64(a))*t + 0.5) }
	return render.Color{R: l(c.R, to.R), G: l(c.G, to.G), B: l(c.B, to.B), A: c.A}
}

// Validity thresholds for the asymmetry predicate. Clean screens from every
// builder satisfy them with margin; a knob draw that breaks one is rejected
// by the search rather than mined into the corpus.
const (
	minBoxDim        = 4    // screen px; non-degenerate after 2:1 downsample
	minUPODim        = 8    // the smallest UPO any clean builder emits: a close button below tap-target size is no longer function-preserving
	minAsymmetry     = 1.2  // every AGO area ≥ 1.2x every UPO area
	maxClassPairIoU  = 0.4  // UPO and AGO labels must stay distinguishable
	minVisibleUPOAlp = 0.10 // a fully invisible UPO is no longer an option
)

// ValidateAsymmetry checks that the (possibly perturbed) ground truth still
// satisfies the paper's asymmetry predicate inside the w x h build area: at
// least one in-bounds, non-degenerate UPO that is clickable and visible,
// every AGO strictly more prominent than every UPO, and no UPO/AGO label
// conflation. A nil error means the screen is a valid AUI.
func (a *AUI) ValidateAsymmetry(w, h int) error {
	nUPO, nAGO := 0, 0
	bounds := geom.Rect{W: w, H: h}
	var upos, agos []geom.Rect
	for i, b := range a.Boxes {
		r := b.B.Rect()
		if r.W < minBoxDim || r.H < minBoxDim {
			return fmt.Errorf("box %d (%v) degenerate: %v", i, b.Class, r)
		}
		if !bounds.ContainsRect(r) {
			return fmt.Errorf("box %d (%v) out of bounds %dx%d: %v", i, b.Class, w, h, r)
		}
		switch b.Class {
		case dataset.ClassUPO:
			if r.W < minUPODim || r.H < minUPODim {
				return fmt.Errorf("box %d: UPO %v below tap-target size %d — attack not function-preserving", i, r, minUPODim)
			}
			nUPO++
			upos = append(upos, r)
		case dataset.ClassAGO:
			nAGO++
			agos = append(agos, r)
		}
	}
	if nUPO == 0 || nUPO != len(a.UPOIDs) {
		return fmt.Errorf("UPO boxes (%d) and ids (%d) out of sync", nUPO, len(a.UPOIDs))
	}
	if nAGO != len(a.AGOIDs) {
		return fmt.Errorf("AGO boxes (%d) and ids (%d) out of sync", nAGO, len(a.AGOIDs))
	}
	for _, u := range upos {
		for _, g := range agos {
			if g.Area() < int(minAsymmetry*float64(u.Area())) {
				return fmt.Errorf("asymmetry broken: AGO %v (area %d) vs UPO %v (area %d)", g, g.Area(), u, u.Area())
			}
			if iou := u.IoU(g); iou > maxClassPairIoU {
				return fmt.Errorf("UPO %v conflated with AGO %v (IoU %.2f)", u, g, iou)
			}
		}
	}
	for _, id := range a.UPOIDs {
		v := a.Root.FindByID(id)
		if v == nil {
			return fmt.Errorf("UPO view %q missing from tree", id)
		}
		if !v.Clickable {
			return fmt.Errorf("UPO view %q not clickable", id)
		}
		eff := v.Alpha
		if eff == 0 {
			eff = 1
		}
		if eff < minVisibleUPOAlp {
			return fmt.Errorf("UPO view %q invisible (alpha %.2f)", id, eff)
		}
	}
	return nil
}
