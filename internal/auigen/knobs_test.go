package auigen

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestClampMapsArbitraryVectorsIntoRange(t *testing.T) {
	cases := []struct {
		name string
		in   Knobs
	}{
		{"zero", Knobs{}},
		{"nan", Knobs{UPOAlpha: math.NaN(), Texture: math.NaN()}},
		{"pos-inf", Knobs{UPOScale: math.Inf(1), UPOShiftX: math.Inf(1), AGOFade: math.Inf(1)}},
		{"neg-inf", Knobs{UPOAlpha: math.Inf(-1), UPOShiftY: math.Inf(-1), Distractors: math.Inf(-1)}},
		{"huge", Knobs{UPOAlpha: 1e18, UPOScale: -1e18, UPOShiftX: 1e6, UPOShiftY: -1e6, AGOFade: 7, Distractors: 42, Texture: -3}},
		{"in-range", Knobs{UPOAlpha: -0.5, UPOScale: -0.2, UPOShiftX: 8, UPOShiftY: -8, AGOFade: 0.3, Distractors: 0.5, Texture: 0.25}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in.Clamp().Vec()
			for i, v := range got {
				lo, hi := KnobRange(i)
				if math.IsNaN(v) || v < lo || v > hi {
					t.Fatalf("knob %d = %v outside [%v, %v]", i, v, lo, hi)
				}
			}
		})
	}
	// In-range vectors pass through untouched; clamping is idempotent.
	in := Knobs{UPOAlpha: -0.5, UPOScale: -0.2, UPOShiftX: 8, UPOShiftY: -8, AGOFade: 0.3, Distractors: 0.5, Texture: 0.25}
	if in.Clamp() != in {
		t.Fatalf("in-range vector changed by Clamp: %+v -> %+v", in, in.Clamp())
	}
	if c := in.Clamp(); c.Clamp() != c {
		t.Fatal("Clamp not idempotent")
	}
}

func TestVecRoundTrip(t *testing.T) {
	k := Knobs{UPOAlpha: -0.1, UPOScale: 0.05, UPOShiftX: 4, UPOShiftY: -6, AGOFade: 0.7, Distractors: 0.9, Texture: 0.4}
	if got := KnobsFromVec(k.Vec()); got != k {
		t.Fatalf("round trip changed vector: %+v -> %+v", k, got)
	}
}

func TestBuildAttackedReplaysBitIdentically(t *testing.T) {
	k := Knobs{UPOAlpha: -0.6, UPOScale: -0.3, UPOShiftX: 10, UPOShiftY: -10, AGOFade: 0.5, Distractors: 0.8, Texture: 0.6}
	cfg := DatasetConfig{}
	a := BuildAttacked(41, k, cfg)
	b := BuildAttacked(41, k, cfg)
	if !bytes.Equal(a.Sample.Input.Pix, b.Sample.Input.Pix) {
		t.Fatal("same (seed, knobs) produced different pixels")
	}
	if len(a.Sample.Boxes) != len(b.Sample.Boxes) {
		t.Fatalf("box counts diverge: %d vs %d", len(a.Sample.Boxes), len(b.Sample.Boxes))
	}
	for i := range a.Sample.Boxes {
		if a.Sample.Boxes[i] != b.Sample.Boxes[i] {
			t.Fatalf("box %d diverges: %+v vs %+v", i, a.Sample.Boxes[i], b.Sample.Boxes[i])
		}
	}
	c := BuildAttacked(42, k, cfg)
	if bytes.Equal(a.Sample.Input.Pix, c.Sample.Input.Pix) {
		t.Fatal("different seeds produced identical pixels")
	}
}

func TestZeroKnobsRenderCleanAndValid(t *testing.T) {
	cfg := DatasetConfig{}
	for seed := int64(1); seed <= 40; seed++ {
		at := BuildAttacked(seed, Knobs{}, cfg)
		if err := at.Validate(); err != nil {
			t.Fatalf("clean screen %d fails asymmetry validator: %v", seed, err)
		}
		if len(at.Sample.Boxes) == 0 {
			t.Fatalf("clean screen %d has no ground truth", seed)
		}
	}
}

func TestAttackKeepsBoxesAndViewsInLockstep(t *testing.T) {
	k := Knobs{UPOScale: -0.4, UPOShiftX: 16, UPOShiftY: 16, UPOAlpha: -0.8}
	for seed := int64(1); seed <= 20; seed++ {
		at := BuildAttacked(seed, k, DatasetConfig{})
		j := 0
		for _, b := range at.AUI.Boxes {
			if b.Class != dataset.ClassUPO {
				continue
			}
			v := at.AUI.Root.FindByID(at.AUI.UPOIDs[j])
			j++
			if v == nil {
				t.Fatalf("seed %d: UPO view %q vanished", seed, at.AUI.UPOIDs[j-1])
			}
			r := b.B.Rect()
			if v.Bounds.W != r.W || v.Bounds.H != r.H {
				t.Fatalf("seed %d: box %v out of lockstep with view bounds %v", seed, r, v.Bounds)
			}
		}
	}
}

func TestValidatorRejectsBrokenScreens(t *testing.T) {
	// Find a screen with both classes so every predicate clause is live.
	var at *Attacked
	for seed := int64(1); seed <= 60; seed++ {
		cand := BuildAttacked(seed, Knobs{}, DatasetConfig{})
		if len(cand.AUI.UPOIDs) > 0 && len(cand.AUI.AGOIDs) > 0 {
			at = cand
			break
		}
	}
	if at == nil {
		t.Fatal("no screen with both UPO and AGO in seeds 1..60")
	}
	a := at.AUI

	degenerate := *a
	degenerate.Boxes = append([]dataset.Box(nil), a.Boxes...)
	degenerate.Boxes[0].B.W = 1
	degenerate.Boxes[0].B.H = 1
	if degenerate.ValidateAsymmetry(at.W, at.H) == nil {
		t.Fatal("validator accepted a degenerate box")
	}

	outOfSync := *a
	outOfSync.UPOIDs = nil
	if outOfSync.ValidateAsymmetry(at.W, at.H) == nil {
		t.Fatal("validator accepted UPO boxes with no ids")
	}

	// A UPO grown past every AGO breaks the prominence asymmetry.
	inflated := *a
	inflated.Boxes = append([]dataset.Box(nil), a.Boxes...)
	for i := range inflated.Boxes {
		if inflated.Boxes[i].Class == dataset.ClassUPO {
			inflated.Boxes[i].B.W = float64(at.W)
			inflated.Boxes[i].B.H = float64(at.H)
			inflated.Boxes[i].B.X = 0
			inflated.Boxes[i].B.Y = 0
		}
	}
	if inflated.ValidateAsymmetry(at.W, at.H) == nil {
		t.Fatal("validator accepted a UPO larger than the AGOs")
	}
}

// FuzzKnobClamp is the renderer-safety fuzz target: ANY float vector, once
// clamped, must render without panicking and keep the clamped values inside
// the declared ranges. Seeds beyond f.Add live in testdata/fuzz/FuzzKnobClamp.
func FuzzKnobClamp(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(-0.85, 0.10, 20.0, -20.0, 0.80, 1.0, 1.0)
	f.Add(math.NaN(), math.Inf(1), math.Inf(-1), 1e300, -1e300, math.NaN(), 0.5)
	f.Add(-0.3, -0.45, 7.0, 3.0, 0.2, 0.51, 0.99)
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h float64) {
		raw := KnobsFromVec([NumKnobs]float64{a, b, c, d, e, g, h})
		k := raw.Clamp()
		for i, v := range k.Vec() {
			lo, hi := KnobRange(i)
			if math.IsNaN(v) || v < lo || v > hi {
				t.Fatalf("knob %d = %v escaped [%v, %v]", i, v, lo, hi)
			}
		}
		// The renderer must survive the raw vector too — BuildAttacked clamps
		// internally, so unclamped input is part of its contract.
		at := BuildAttacked(11, raw, DatasetConfig{})
		if at.Sample == nil || at.Sample.Input == nil || at.Screen == nil {
			t.Fatal("attacked render incomplete")
		}
		if len(at.Sample.Boxes) == 0 {
			t.Fatal("attacked render lost its ground truth")
		}
	})
}
