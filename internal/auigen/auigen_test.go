package auigen

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func TestAUIForEverySubject(t *testing.T) {
	g := New(1, Config{})
	for _, subj := range dataset.Subjects {
		a := g.AUIFor(subj, 192, 280)
		if a.Subject != subj {
			t.Fatalf("subject = %v, want %v", a.Subject, subj)
		}
		if a.Root == nil {
			t.Fatalf("%v: nil root", subj)
		}
		if len(a.UPOIDs) == 0 {
			t.Fatalf("%v: AUI without a UPO", subj)
		}
		if len(a.Boxes) == 0 {
			t.Fatalf("%v: no ground-truth boxes", subj)
		}
		// Every labelled box must be inside the content area.
		area := geom.Rect{W: 192, H: 280}
		for _, b := range a.Boxes {
			if !area.ContainsRect(b.B.Rect().Intersect(area)) || b.B.Rect().Intersect(area).Empty() {
				t.Fatalf("%v: box %v outside content area", subj, b.B)
			}
		}
	}
}

func TestGroundTruthMatchesViews(t *testing.T) {
	g := New(2, Config{})
	for i := 0; i < 50; i++ {
		a := g.AUI(192, 280)
		// Every UPO id must resolve to a clickable view whose absolute
		// bounds equal some labelled UPO box.
		for _, id := range a.UPOIDs {
			v := a.Root.FindByID(id)
			if v == nil {
				t.Fatalf("UPO id %q not in tree", id)
			}
			if !v.Clickable {
				t.Fatalf("UPO %q not clickable", id)
			}
		}
		for _, id := range a.AGOIDs {
			if v := a.Root.FindByID(id); v == nil || !v.Clickable {
				t.Fatalf("AGO id %q missing or not clickable", id)
			}
		}
	}
}

func TestSubjectDistributionMatchesTable1(t *testing.T) {
	g := New(3, Config{})
	counts := map[dataset.Subject]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[dataset.SampleSubject(g.rng)]++
	}
	for subj, want := range dataset.SubjectWeights {
		got := float64(counts[subj]) / n
		if math.Abs(got-want) > 0.03 {
			t.Errorf("%v frequency = %.3f, want %.3f (Table I)", subj, got, want)
		}
	}
}

func TestAGOPresenceRate(t *testing.T) {
	g := New(4, Config{})
	total, withAGO := 0, 0
	for i := 0; i < 600; i++ {
		a := g.AUI(192, 280)
		total++
		if len(a.AGOIDs) > 0 {
			withAGO++
		}
	}
	got := float64(withAGO) / float64(total)
	want := 744.0 / 1072.0
	if math.Abs(got-want) > 0.06 {
		t.Fatalf("AGO presence = %.3f, want ~%.3f (Table II marginals)", got, want)
	}
}

func TestObfuscationChangesIDs(t *testing.T) {
	plain := New(5, Config{})
	obf := New(5, Config{ObfuscateIDs: true})
	a := plain.AUIFor(dataset.SubjectAdvertisement, 192, 280)
	b := obf.AUIFor(dataset.SubjectAdvertisement, 192, 280)
	for _, id := range a.UPOIDs {
		if id != "btn_close" {
			t.Fatalf("plain UPO id = %q, want btn_close", id)
		}
	}
	for _, id := range b.UPOIDs {
		if id == "btn_close" {
			t.Fatal("obfuscated generator leaked a semantic id")
		}
	}
}

func TestNonAUIStyles(t *testing.T) {
	g := New(6, Config{})
	for _, style := range negativeStyles {
		n := g.NonAUIStyle(style, 180, 280)
		if n.Root == nil || n.Style != style {
			t.Fatalf("style %q: bad result %+v", style, n)
		}
		if len(n.Root.Children) == 0 {
			t.Fatalf("style %q: empty screen", style)
		}
	}
}

func TestRenderAUISampleGeometry(t *testing.T) {
	g := New(7, Config{})
	cfg := DatasetConfig{}
	a := g.AUIFor(dataset.SubjectSalesPromotion, 192, 280)
	s := g.RenderAUI(a, cfg)
	if s.Input.W != 96 || s.Input.H != 160 {
		t.Fatalf("input size %dx%d", s.Input.W, s.Input.H)
	}
	if !s.IsAUI || s.Subject != dataset.SubjectSalesPromotion {
		t.Fatalf("sample metadata: %+v", s)
	}
	for _, b := range s.Boxes {
		if b.B.X < 0 || b.B.Y < 0 || b.B.X+b.B.W > 96+1 || b.B.Y+b.B.H > 160+1 {
			t.Fatalf("scaled box %v escapes input", b.B)
		}
		if b.B.W <= 0 || b.B.H <= 0 {
			t.Fatalf("degenerate scaled box %v", b.B)
		}
	}
}

func TestBuildAUISamplesDeterministic(t *testing.T) {
	a := BuildAUISamples(11, 5, DatasetConfig{})
	b := BuildAUISamples(11, 5, DatasetConfig{})
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Subject != b[i].Subject || len(a[i].Boxes) != len(b[i].Boxes) {
			t.Fatalf("sample %d differs between identical seeds", i)
		}
		for p := range a[i].Input.Pix {
			if a[i].Input.Pix[p] != b[i].Input.Pix[p] {
				t.Fatalf("sample %d pixels differ", i)
			}
		}
	}
}

func TestBuildNegativeSamples(t *testing.T) {
	ss := BuildNegativeSamples(12, 4, DatasetConfig{})
	for _, s := range ss {
		if s.IsAUI || len(s.Boxes) != 0 {
			t.Fatalf("negative sample mislabelled: %+v", s)
		}
	}
}

func TestMaskTextChangesPixels(t *testing.T) {
	g1 := New(13, Config{})
	g2 := New(13, Config{})
	cfg := DatasetConfig{}
	a1 := g1.AUIFor(dataset.SubjectAppUpgrade, 192, 280)
	a2 := g2.AUIFor(dataset.SubjectAppUpgrade, 192, 280)
	plain := g1.RenderAUI(a1, cfg)
	masked := g2.RenderAUI(a2, DatasetConfig{MaskText: true})
	diff := 0
	for i := range plain.Input.Pix {
		if plain.Input.Pix[i] != masked.Input.Pix[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("text masking changed nothing")
	}
	// Boxes must be identical: masking only blurs pixels.
	if len(plain.Boxes) != len(masked.Boxes) {
		t.Fatal("masking altered labels")
	}
}

func TestLayoutStatisticsMatchPaper(t *testing.T) {
	samples := BuildAUISamples(14, 400, DatasetConfig{})
	st := dataset.MeasureLayout(samples)
	if math.Abs(st.AGOCentralFrac-0.946) > 0.08 {
		t.Errorf("AGO central fraction = %.3f, want ~0.946", st.AGOCentralFrac)
	}
	if math.Abs(st.UPOCornerFrac-0.731) > 0.12 {
		t.Errorf("UPO corner fraction = %.3f, want ~0.731", st.UPOCornerFrac)
	}
}

func TestUPOBoxesAreSmallAndAGOBoxesLarge(t *testing.T) {
	samples := BuildAUISamples(15, 100, DatasetConfig{})
	var upoArea, agoArea float64
	var upoN, agoN int
	for _, s := range samples {
		for _, b := range s.Boxes {
			if b.Class == dataset.ClassUPO {
				upoArea += b.B.Area()
				upoN++
			} else {
				agoArea += b.B.Area()
				agoN++
			}
		}
	}
	if upoN == 0 || agoN == 0 {
		t.Fatal("missing boxes")
	}
	if agoArea/float64(agoN) < 8*upoArea/float64(upoN) {
		t.Fatalf("asymmetry too weak: mean AGO area %.1f vs UPO %.1f",
			agoArea/float64(agoN), upoArea/float64(upoN))
	}
}

func TestCJKLabels(t *testing.T) {
	g := New(16, Config{CJK: true})
	a := g.AUIFor(dataset.SubjectAdvertisement, 192, 280)
	if a.Root == nil {
		t.Fatal("CJK build failed")
	}
}

func TestTooSmallAreaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tiny content area did not panic")
		}
	}()
	New(1, Config{}).AUIFor(dataset.SubjectAdvertisement, 10, 10)
}
