package auigen

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/uikit"
)

// DatasetConfig controls dataset rendering.
type DatasetConfig struct {
	// ScreenW/ScreenH is the simulated screen resolution screens are
	// composed at. Zero means the default 192x320 (half the device
	// resolution; exactly 2x the default model input).
	ScreenW, ScreenH int
	// InputW/InputH is the model input resolution samples are resampled
	// to. Zero means the default 96x160.
	InputW, InputH int
	// MaskText blurs every recorded label region before resampling — the
	// language-independence experiment of Table IV / Figure 7.
	MaskText bool
	// NoiseAmp adds seeded uniform luma noise of ±NoiseAmp (as a fraction
	// of full scale, capped at 0.25) to the composed screen before
	// resampling. This is the background-texture surface the adversarial
	// search (internal/adversary) perturbs; zero renders clean.
	NoiseAmp float64
	// NoiseSeed seeds the noise pattern so attacked screens replay
	// bit-identically.
	NoiseSeed int64
	// Gen configures the AUI generator itself.
	Gen Config
}

func (c DatasetConfig) screen() (int, int) {
	if c.ScreenW == 0 || c.ScreenH == 0 {
		return 192, 320
	}
	return c.ScreenW, c.ScreenH
}

func (c DatasetConfig) input() (int, int) {
	if c.InputW == 0 || c.InputH == 0 {
		return 96, 160
	}
	return c.InputW, c.InputH
}

// RenderAUI composes one AUI over a random benign base screen and returns
// the labelled sample at model input resolution.
func (g *Generator) RenderAUI(a *AUI, cfg DatasetConfig) *dataset.Sample {
	s, _ := g.RenderAUIScreen(a, cfg)
	return s
}

// RenderAUIScreen is RenderAUI but also returns the composed screen, whose
// window/view metadata the FraudDroid-style baseline and the adversarial
// eval harness inspect alongside the pixels.
func (g *Generator) RenderAUIScreen(a *AUI, cfg DatasetConfig) (*dataset.Sample, *uikit.Screen) {
	sw, sh := cfg.screen()
	iw, ih := cfg.input()
	screen := uikit.NewScreen(sw, sh)
	content := screen.ContentFrame()

	// Base app behind the AUI.
	base := g.NonAUI(content.W, content.H)
	screen.AddWindow(&uikit.Window{Owner: "base", Type: uikit.WindowApp, Frame: content, Root: base.Root})

	frame := content
	if a.FullScreen {
		frame = screen.Bounds()
		screen.StatusBarH, screen.NavBarH = 0, 0
		frame = screen.Bounds()
	}
	// The builder sized the tree for (content.W, content.H); rebuild frame
	// coordinates accordingly: full-screen AUIs are regenerated at full
	// size by the caller giving the right (w, h), so here we only translate.
	screen.AddWindow(&uikit.Window{Owner: "aui", Type: uikit.WindowDialog, Frame: frame, Root: a.Root})

	canvas := screen.Render()
	if cfg.MaskText {
		for _, tr := range a.TextRects {
			canvas.BoxBlur(tr.Translate(frame.X, frame.Y).Inset(-1), 3)
		}
	}
	applyNoise(canvas, cfg.NoiseAmp, cfg.NoiseSeed)
	input := canvas.Downscale(iw, ih)
	sx := float64(iw) / float64(sw)
	sy := float64(ih) / float64(sh)

	sample := &dataset.Sample{Input: input, Subject: a.Subject, IsAUI: true}
	for _, b := range a.Boxes {
		moved := geom.BoxF{X: b.B.X + float64(frame.X), Y: b.B.Y + float64(frame.Y), W: b.B.W, H: b.B.H}
		sample.Boxes = append(sample.Boxes, dataset.Box{Class: b.Class, B: moved.Scale(sx, sy)})
	}
	return sample, screen
}

// applyNoise perturbs every pixel with seeded uniform luma noise. Amplitude
// is a fraction of full scale; values above 0.25 are capped so no knob
// vector can wash a screen out entirely.
func applyNoise(c *render.Canvas, amp float64, seed int64) {
	if !(amp > 0) {
		return
	}
	if amp > 0.25 {
		amp = 0.25
	}
	span := int(amp*255 + 0.5)
	if span <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			d := rng.Intn(2*span+1) - span
			px := c.At(x, y)
			px.R = clampU8(int(px.R) + d)
			px.G = clampU8(int(px.G) + d)
			px.B = clampU8(int(px.B) + d)
			c.Set(x, y, px)
		}
	}
}

func clampU8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// RenderNonAUI composes one benign screen and returns the unlabelled
// negative sample.
func (g *Generator) RenderNonAUI(cfg DatasetConfig) *dataset.Sample {
	sw, sh := cfg.screen()
	iw, ih := cfg.input()
	screen := uikit.NewScreen(sw, sh)
	content := screen.ContentFrame()
	n := g.NonAUI(content.W, content.H)
	screen.AddWindow(&uikit.Window{Owner: "app", Type: uikit.WindowApp, Frame: content, Root: n.Root})
	return &dataset.Sample{Input: screen.Render().Downscale(iw, ih)}
}

// BuildAUISamples generates n labelled AUI samples — the D_aui equivalent.
func BuildAUISamples(seed int64, n int, cfg DatasetConfig) []*dataset.Sample {
	g := New(seed, cfg.Gen)
	sw, sh := cfg.screen()
	out := make([]*dataset.Sample, 0, n)
	for i := 0; i < n; i++ {
		// Build against the content area; full-screen subjects re-target
		// the full screen in RenderAUI, so size for the larger area when
		// the builder requests it.
		probe := uikit.NewScreen(sw, sh)
		content := probe.ContentFrame()
		a := g.AUI(content.W, content.H)
		if a.FullScreen {
			a = g.AUIFor(a.Subject, sw, sh)
			a.FullScreen = true
		}
		out = append(out, g.RenderAUI(a, cfg))
	}
	return out
}

// BuildNegativeSamples generates n benign screens.
func BuildNegativeSamples(seed int64, n int, cfg DatasetConfig) []*dataset.Sample {
	g := New(seed, cfg.Gen)
	out := make([]*dataset.Sample, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.RenderNonAUI(cfg))
	}
	return out
}

// PaperDatasetSize is the number of AUI screenshots in the paper's D_aui.
const PaperDatasetSize = 1072
