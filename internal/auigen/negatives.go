package auigen

import (
	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/uikit"
)

// NonAUI is a generated benign screen. HasDecoyClose marks screens that
// contain a small, hard-to-notice button that is *not* part of an asymmetric
// pattern — the false-positive bait the paper describes ("a small Add to
// Cart button in a UI with bad design").
type NonAUI struct {
	Root          *uikit.View
	Style         string
	HasDecoyClose bool
}

var negativeStyles = []string{"feed", "settings", "grid", "article", "chat"}

// NonAUI builds a benign app screen of a random style for a w x h content
// area.
func (g *Generator) NonAUI(w, h int) *NonAUI {
	style := negativeStyles[g.rng.Intn(len(negativeStyles))]
	return g.NonAUIStyle(style, w, h)
}

// NonAUIStyle builds a benign screen of the named style.
func (g *Generator) NonAUIStyle(style string, w, h int) *NonAUI {
	n := &NonAUI{Style: style}
	root := &uikit.View{ID: g.id("main_content"), Kind: uikit.KindContainer,
		Bounds: geom.Rect{W: w, H: h}, Color: render.White}
	switch style {
	case "settings":
		g.buildSettings(root, w, h)
	case "grid":
		n.HasDecoyClose = g.buildGrid(root, w, h)
	case "article":
		g.buildArticle(root, w, h)
	case "chat":
		g.buildChat(root, w, h)
	default: // feed
		n.HasDecoyClose = g.buildFeed(root, w, h)
	}
	n.Root = root
	return n
}

// buildFeed renders a list feed; sometimes a row carries a small dismiss "x"
// (a decoy) — bad design, but symmetric, hence not an AUI.
func (g *Generator) buildFeed(root *uikit.View, w, h int) bool {
	decoy := g.rng.Float64() < 0.35
	rowH := h / 7
	for i := 0; i < 7; i++ {
		row := &uikit.View{ID: g.id("feed_row"), Kind: uikit.KindContainer,
			Bounds: geom.Rect{X: 4, Y: i*rowH + 2, W: w - 8, H: rowH - 4},
			Color:  g.pastel(), Corner: 4, Clickable: true}
		row.Add(&uikit.View{Kind: uikit.KindImage,
			Bounds: geom.Rect{X: 4, Y: 4, W: rowH - 12, H: rowH - 12},
			Color:  g.vivid().WithAlpha(140), Corner: 3})
		row.Add(&uikit.View{Kind: uikit.KindText,
			Bounds: geom.Rect{X: rowH, Y: rowH / 4, W: w - rowH - 20, H: 10},
			Text:   "LOREM IPSUM DOLOR", TextScale: 1, TextColor: render.DarkGray})
		if decoy && i == 1 {
			row.Add(&uikit.View{ID: g.id("row_dismiss"), Kind: uikit.KindIcon,
				Bounds: geom.Rect{X: w - 24, Y: 3, W: 9, H: 9},
				Cross:  true, CrossColor: render.Gray, Clickable: true, Alpha: 0.7})
		}
		root.Add(row)
	}
	return decoy
}

// buildSettings renders a settings list with toggles.
func (g *Generator) buildSettings(root *uikit.View, w, h int) {
	rowH := h / 9
	for i := 0; i < 9; i++ {
		y := i * rowH
		root.Add(&uikit.View{Kind: uikit.KindText,
			Bounds: geom.Rect{X: 8, Y: y + rowH/3, W: w / 2, H: 8},
			Text:   "SETTING ITEM", TextScale: 1, TextColor: render.DarkGray})
		toggle := render.Gray
		if g.rng.Float64() < 0.5 {
			toggle = render.Green
		}
		root.Add(&uikit.View{ID: g.id("toggle"), Kind: uikit.KindButton,
			Bounds: geom.Rect{X: w - 34, Y: y + rowH/3, W: 24, H: 10},
			Color:  toggle, Corner: 5, Clickable: true})
		root.Add(&uikit.View{Kind: uikit.KindContainer,
			Bounds: geom.Rect{X: 0, Y: y + rowH - 1, W: w, H: 1}, Color: render.LightGray})
	}
}

// buildGrid renders a product grid; sometimes with the paper's classic
// false-positive bait: a small low-contrast "add to cart" button.
func (g *Generator) buildGrid(root *uikit.View, w, h int) bool {
	decoy := g.rng.Float64() < 0.5
	cw := (w - 18) / 2
	ch := h / 4
	for row := 0; row < 3; row++ {
		for col := 0; col < 2; col++ {
			cell := &uikit.View{ID: g.id("grid_cell"), Kind: uikit.KindContainer,
				Bounds: geom.Rect{X: 6 + col*(cw+6), Y: 6 + row*(ch+6), W: cw, H: ch},
				Color:  g.pastel(), Corner: 5, Clickable: true}
			cell.Add(&uikit.View{Kind: uikit.KindImage,
				Bounds: geom.Rect{X: 4, Y: 4, W: cw - 8, H: ch / 2},
				Color:  g.vivid().WithAlpha(160), Corner: 3})
			cell.Add(&uikit.View{Kind: uikit.KindText,
				Bounds: geom.Rect{X: 4, Y: ch/2 + 8, W: cw - 8, H: 8},
				Text:   "$ 9.99", TextScale: 1, TextColor: render.DarkGray})
			if decoy && row == 0 && col == 1 {
				cell.Add(&uikit.View{ID: g.id("add_cart"), Kind: uikit.KindButton,
					Bounds: geom.Rect{X: cw - 16, Y: ch - 14, W: 12, H: 10},
					Color:  render.LightGray, Corner: 3, Text: "+", TextScale: 1,
					TextColor: render.Gray, Clickable: true, Alpha: 0.8})
			}
			root.Add(cell)
		}
	}
	return decoy
}

// buildArticle renders a text page.
func (g *Generator) buildArticle(root *uikit.View, w, h int) {
	root.Add(&uikit.View{Kind: uikit.KindText,
		Bounds: geom.Rect{X: 8, Y: 10, W: w - 16, H: 14},
		Text:   "DAILY NEWS REPORT", TextScale: 1, TextColor: render.Black})
	for i := 0; i < 12; i++ {
		lw := w - 16 - g.rng.Intn(w/4)
		root.Add(&uikit.View{Kind: uikit.KindContainer,
			Bounds: geom.Rect{X: 8, Y: 36 + i*14, W: lw, H: 6},
			Color:  render.LightGray})
	}
	root.Add(&uikit.View{ID: g.id("share_btn"), Kind: uikit.KindButton,
		Bounds: geom.Rect{X: w/2 - 30, Y: h - 30, W: 60, H: 16},
		Color:  render.Blue, Corner: 8, Text: "SHARE", TextScale: 1,
		TextColor: render.White, Clickable: true})
}

// buildChat renders a message thread.
func (g *Generator) buildChat(root *uikit.View, w, h int) {
	for i := 0; i < 6; i++ {
		mine := i%2 == 1
		bw := w/2 + g.rng.Intn(w/5)
		x := 6
		col := render.LightGray
		if mine {
			x = w - bw - 6
			col = render.RGB(180, 230, 160)
		}
		root.Add(&uikit.View{Kind: uikit.KindContainer,
			Bounds: geom.Rect{X: x, Y: 8 + i*(h/7), W: bw, H: h/7 - 10},
			Color:  col, Corner: 6})
	}
	root.Add(&uikit.View{ID: g.id("chat_input"), Kind: uikit.KindContainer,
		Bounds: geom.Rect{X: 4, Y: h - 20, W: w - 50, H: 16},
		Color:  render.LightGray, Corner: 8, Clickable: true})
	root.Add(&uikit.View{ID: g.id("chat_send"), Kind: uikit.KindButton,
		Bounds: geom.Rect{X: w - 42, Y: h - 20, W: 38, H: 16},
		Color:  render.Green, Corner: 8, Text: "SEND", TextScale: 1,
		TextColor: render.White, Clickable: true})
}
