package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	c := NewClock(1)
	var got []int
	c.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	c.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	c.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	c.Drain(10)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events fired in order %v, want %v", got, want)
		}
	}
	if c.Now() != 30*time.Millisecond {
		t.Fatalf("clock at %v after drain, want 30ms", c.Now())
	}
}

func TestEqualDeadlinesFIFO(t *testing.T) {
	c := NewClock(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	c.Drain(100)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-deadline events fired out of scheduling order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	c := NewClock(1)
	fired := false
	e := c.Schedule(time.Millisecond, func() { fired = true })
	e.Cancel()
	c.Drain(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Cancelling again is a no-op.
	e.Cancel()
}

func TestRunUntilAdvancesClock(t *testing.T) {
	c := NewClock(1)
	count := 0
	c.Schedule(10*time.Millisecond, func() { count++ })
	c.Schedule(200*time.Millisecond, func() { count++ })
	fired := c.RunUntil(100 * time.Millisecond)
	if fired != 1 || count != 1 {
		t.Fatalf("fired=%d count=%d, want 1,1", fired, count)
	}
	if c.Now() != 100*time.Millisecond {
		t.Fatalf("clock at %v, want 100ms", c.Now())
	}
	c.RunFor(200 * time.Millisecond)
	if count != 2 {
		t.Fatalf("count=%d after RunFor, want 2", count)
	}
}

func TestNestedScheduling(t *testing.T) {
	c := NewClock(1)
	var seq []time.Duration
	c.Schedule(10*time.Millisecond, func() {
		seq = append(seq, c.Now())
		c.Schedule(5*time.Millisecond, func() { seq = append(seq, c.Now()) })
	})
	c.Drain(10)
	if len(seq) != 2 || seq[0] != 10*time.Millisecond || seq[1] != 15*time.Millisecond {
		t.Fatalf("nested scheduling times = %v", seq)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	c := NewClock(1)
	c.RunUntil(50 * time.Millisecond)
	fired := time.Duration(-1)
	c.Schedule(-10*time.Millisecond, func() { fired = c.Now() })
	c.Drain(10)
	if fired != 50*time.Millisecond {
		t.Fatalf("negative-delay event fired at %v, want 50ms (now)", fired)
	}
}

func TestScheduleAtPast(t *testing.T) {
	c := NewClock(1)
	c.RunUntil(time.Second)
	fired := time.Duration(-1)
	c.ScheduleAt(time.Millisecond, func() { fired = c.Now() })
	c.Drain(10)
	if fired != time.Second {
		t.Fatalf("past ScheduleAt fired at %v, want clamped to 1s", fired)
	}
}

func TestTicker(t *testing.T) {
	c := NewClock(1)
	var ticks []time.Duration
	tk := c.NewTicker(100*time.Millisecond, func() { ticks = append(ticks, c.Now()) })
	c.RunUntil(350 * time.Millisecond)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3: %v", len(ticks), ticks)
	}
	tk.Stop()
	c.RunUntil(time.Second)
	if len(ticks) != 3 {
		t.Fatalf("ticker fired after Stop: %v", ticks)
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	c := NewClock(1)
	n := 0
	var tk *Ticker
	tk = c.NewTicker(10*time.Millisecond, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	c.RunUntil(time.Second)
	if n != 2 {
		t.Fatalf("ticker fired %d times, want 2", n)
	}
}

func TestDrainLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Drain did not panic on runaway loop")
		}
	}()
	c := NewClock(1)
	var loop func()
	loop = func() { c.Schedule(time.Millisecond, loop) }
	c.Schedule(time.Millisecond, loop)
	c.Drain(100)
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		c := NewClock(seed)
		var out []time.Duration
		for i := 0; i < 50; i++ {
			d := time.Duration(c.Rand().Intn(1000)) * time.Millisecond
			c.Schedule(d, func() { out = append(out, c.Now()) })
		}
		c.Drain(1000)
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any set of non-negative delays, events fire in non-decreasing
// time order and the clock never moves backwards.
func TestPropertyMonotonicTime(t *testing.T) {
	prop := func(delays []uint16) bool {
		c := NewClock(7)
		var times []time.Duration
		for _, d := range delays {
			c.Schedule(time.Duration(d)*time.Millisecond, func() { times = append(times, c.Now()) })
		}
		c.Drain(len(delays) + 1)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	NewClock(1).Schedule(0, nil)
}

func TestNewTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTicker(0) did not panic")
		}
	}()
	NewClock(1).NewTicker(0, func() {})
}
