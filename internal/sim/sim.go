// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every time-dependent component of the reproduction (simulated apps, the
// accessibility event bus, the DARPA runtime, the device performance model)
// runs on a sim.Clock instead of the wall clock. This makes the timing
// experiments of the paper (the cut-off interval sweep of Table VIII and
// Figure 8) exactly reproducible and fast: simulated minutes elapse in
// microseconds of real time.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. The zero value is not useful; events are
// created through Clock.Schedule and friends.
type Event struct {
	at     time.Duration
	seq    uint64
	fn     func()
	index  int // heap index, -1 when popped or cancelled
	cancel bool
}

// At reports the simulated time the event fires at.
func (e *Event) At() time.Duration { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancel = true
	}
}

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancel }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	// Equal deadlines fire in scheduling order for determinism.
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Clock is a virtual clock with an event queue. It is not safe for
// concurrent use: the whole simulation is single-threaded and deterministic
// by design (see the package comment).
type Clock struct {
	now   time.Duration
	seq   uint64
	queue eventQueue
	rng   *rand.Rand
}

// NewClock returns a clock at time zero whose derived randomness is seeded
// with seed.
func NewClock(seed int64) *Clock {
	return &Clock{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time as an offset from the start of the
// simulation.
func (c *Clock) Now() time.Duration { return c.now }

// Rand returns the clock's deterministic random source. Components that need
// randomness should draw from it (or from a source derived from it) so that a
// run is fully determined by the clock seed.
func (c *Clock) Rand() *rand.Rand { return c.rng }

// Schedule runs fn once after delay. It returns the pending event, which the
// caller may Cancel. A negative delay is treated as zero (fire at the next
// Step).
func (c *Clock) Schedule(delay time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule called with nil function")
	}
	if delay < 0 {
		delay = 0
	}
	c.seq++
	e := &Event{at: c.now + delay, seq: c.seq, fn: fn}
	heap.Push(&c.queue, e)
	return e
}

// ScheduleAt runs fn at the absolute simulated time at. Times in the past are
// clamped to now.
func (c *Clock) ScheduleAt(at time.Duration, fn func()) *Event {
	return c.Schedule(at-c.now, fn)
}

// Pending returns the number of events waiting in the queue, including
// cancelled events that have not been reaped yet.
func (c *Clock) Pending() int { return len(c.queue) }

// Step fires the single earliest pending event, advancing the clock to its
// deadline. It reports whether an event fired (false when the queue is
// empty). Cancelled events are skipped without being counted.
func (c *Clock) Step() bool {
	for len(c.queue) > 0 {
		e := heap.Pop(&c.queue).(*Event)
		if e.cancel {
			continue
		}
		if e.at < c.now {
			panic(fmt.Sprintf("sim: event scheduled at %v fired at %v", e.at, c.now))
		}
		c.now = e.at
		e.fn()
		return true
	}
	return false
}

// RunUntil processes events until the queue is exhausted or the next event
// is after deadline, then advances the clock to deadline. It returns the
// number of events fired.
func (c *Clock) RunUntil(deadline time.Duration) int {
	fired := 0
	for len(c.queue) > 0 {
		// Peek at the earliest non-cancelled event.
		e := c.queue[0]
		if e.cancel {
			heap.Pop(&c.queue)
			continue
		}
		if e.at > deadline {
			break
		}
		c.Step()
		fired++
	}
	if c.now < deadline {
		c.now = deadline
	}
	return fired
}

// RunFor is RunUntil(Now()+d).
func (c *Clock) RunFor(d time.Duration) int { return c.RunUntil(c.now + d) }

// Drain processes every pending event (including ones scheduled while
// draining) up to a safety limit, and returns the number fired. It panics if
// the limit is exceeded, which indicates a runaway self-scheduling loop.
func (c *Clock) Drain(limit int) int {
	fired := 0
	for c.Step() {
		fired++
		if fired > limit {
			panic("sim: Drain exceeded event limit; self-scheduling loop?")
		}
	}
	return fired
}

// Ticker repeatedly invokes a function at a fixed simulated period until
// stopped.
type Ticker struct {
	clock  *Clock
	period time.Duration
	fn     func()
	ev     *Event
	stop   bool
}

// NewTicker schedules fn every period, first firing one period from now.
// Period must be positive.
func (c *Clock) NewTicker(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: NewTicker period must be positive")
	}
	t := &Ticker{clock: c, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.clock.Schedule(t.period, func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.arm()
		}
	})
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stop = true
	t.ev.Cancel()
}
