package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestCancelAtFireTimestamp: an event cancelled by another event firing at
// the very same virtual instant must not run — the fleet leans on this when
// an a11y event and the debounce timer it re-arms land on one timestamp.
func TestCancelAtFireTimestamp(t *testing.T) {
	c := NewClock(1)
	fired := false
	var victim *Event
	// Same deadline; the canceller was scheduled first, so FIFO order fires
	// it first and the victim must stay dead even though it is already due.
	c.Schedule(10*time.Millisecond, func() { victim.Cancel() })
	victim = c.Schedule(10*time.Millisecond, func() { fired = true })
	c.Drain(10)
	if fired {
		t.Fatal("event cancelled at its own fire timestamp still fired")
	}
	if c.Now() != 10*time.Millisecond {
		t.Fatalf("clock at %v, want 10ms", c.Now())
	}
}

// TestRunUntilInclusiveDeadline: an event at exactly the RunUntil deadline
// fires in that run — the boundary the fleet's end-of-run accounting
// depends on.
func TestRunUntilInclusiveDeadline(t *testing.T) {
	c := NewClock(1)
	fired := false
	c.Schedule(time.Second, func() { fired = true })
	if n := c.RunUntil(time.Second); n != 1 || !fired {
		t.Fatalf("RunUntil(1s) fired %d events (fired=%v), want the deadline event", n, fired)
	}
}

// TestDrainSchedulesNewEvents: events scheduled by events already inside
// Drain must themselves fire — Drain keeps going until the queue is truly
// empty, not just until the events that existed when it was called.
func TestDrainSchedulesNewEvents(t *testing.T) {
	c := NewClock(1)
	var order []string
	c.Schedule(time.Millisecond, func() {
		order = append(order, "a")
		c.Schedule(time.Millisecond, func() {
			order = append(order, "b")
			c.Schedule(time.Millisecond, func() { order = append(order, "c") })
		})
	})
	if n := c.Drain(10); n != 3 {
		t.Fatalf("Drain fired %d events, want 3", n)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("chain fired as %v, want [a b c]", order)
	}
	if c.Now() != 3*time.Millisecond {
		t.Fatalf("clock at %v after chained drain, want 3ms", c.Now())
	}
}

// TestPropertySameTimestampFIFO: for any random mix of deadlines, events
// sharing a deadline fire in the order they were scheduled. This is the
// property TestEqualDeadlinesFIFO spot-checks, quick-checked across random
// schedules — it is what makes two same-seed fleet runs replay identically
// when thousands of device events collide on popular timestamps.
func TestPropertySameTimestampFIFO(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewClock(seed)
		count := int(n%64) + 2
		type fireRec struct {
			at  time.Duration
			seq int
		}
		var fired []fireRec
		for i := 0; i < count; i++ {
			i := i
			// Few distinct deadlines, so collisions are the norm.
			at := time.Duration(rng.Intn(8)) * time.Millisecond
			c.ScheduleAt(at, func() { fired = append(fired, fireRec{at: c.Now(), seq: i}) })
		}
		c.Drain(count * 2)
		if len(fired) != count {
			return false
		}
		for i := 1; i < len(fired); i++ {
			prev, cur := fired[i-1], fired[i]
			if cur.at < prev.at {
				return false // time went backwards
			}
			if cur.at == prev.at && cur.seq < prev.seq {
				return false // FIFO broken within a timestamp
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCancelInsideOwnTimestampBatch: several events on one timestamp where
// the middle one cancels the last; earlier cancellations must not disturb
// the surviving events' order.
func TestCancelInsideOwnTimestampBatch(t *testing.T) {
	c := NewClock(1)
	var got []int
	var e3 *Event
	c.Schedule(time.Millisecond, func() { got = append(got, 1) })
	c.Schedule(time.Millisecond, func() { got = append(got, 2); e3.Cancel() })
	e3 = c.Schedule(time.Millisecond, func() { got = append(got, 3) })
	c.Schedule(time.Millisecond, func() { got = append(got, 4) })
	c.Drain(10)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("fired %v, want [1 2 4]", got)
	}
}
