package uikit

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/render"
)

// WindowType distinguishes the layers of the screen, mirroring the Android
// window manager's type hierarchy at the granularity DARPA cares about.
type WindowType int

// Window types, bottom to top. They begin at 1 so the zero value is
// detectably invalid.
const (
	// WindowApp is a normal application window.
	WindowApp WindowType = iota + 1
	// WindowDialog is an app dialog or popup drawn above its app.
	WindowDialog
	// WindowOverlay is a system-alert-level overlay, the layer
	// WindowManager.addView places DARPA's decoration views on.
	WindowOverlay
)

// Window is a region of the screen owned by one app (or by an accessibility
// overlay), holding a view tree.
type Window struct {
	// Owner is the package name of the owning app.
	Owner string
	// Type selects the z-layer.
	Type WindowType
	// Frame is the window's position on the screen. Content coordinates
	// inside Root are relative to Frame's top-left, which is exactly the
	// offset mismatch the decoration calibration of Figure 4 must solve.
	Frame geom.Rect
	// Root is the content view tree; nil windows render nothing.
	Root *View

	z int // insertion order within type, for stable stacking
}

// Screen is the simulated display: a fixed resolution, a status bar, a
// navigation bar and a stack of windows.
type Screen struct {
	W, H int
	// StatusBarH and NavBarH are the system bar heights. Apps not in
	// full-screen mode are inset between them.
	StatusBarH, NavBarH int

	windows []*Window
	nextZ   int
}

// NewScreen returns a screen with the given resolution and the default
// system bar heights (24 px status, 36 px nav at 360x640, scaled
// proportionally).
func NewScreen(w, h int) *Screen {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("uikit: invalid screen size %dx%d", w, h))
	}
	return &Screen{W: w, H: h, StatusBarH: h * 24 / 640, NavBarH: h * 36 / 640}
}

// Bounds returns the full screen rectangle.
func (s *Screen) Bounds() geom.Rect { return geom.Rect{X: 0, Y: 0, W: s.W, H: s.H} }

// ContentFrame returns the window frame of a non-full-screen app: the screen
// minus the system bars.
func (s *Screen) ContentFrame() geom.Rect {
	return geom.Rect{X: 0, Y: s.StatusBarH, W: s.W, H: s.H - s.StatusBarH - s.NavBarH}
}

// AddWindow pushes a window onto the stack. Windows of a higher type always
// stack above lower types; within a type, later additions stack higher.
func (s *Screen) AddWindow(w *Window) {
	if w == nil || w.Type == 0 {
		panic("uikit: AddWindow requires a window with a valid type")
	}
	w.z = s.nextZ
	s.nextZ++
	s.windows = append(s.windows, w)
}

// RemoveWindow removes a window from the stack; unknown windows are ignored.
func (s *Screen) RemoveWindow(w *Window) {
	for i, existing := range s.windows {
		if existing == w {
			s.windows = append(s.windows[:i], s.windows[i+1:]...)
			return
		}
	}
}

// Windows returns the stack sorted bottom-to-top.
func (s *Screen) Windows() []*Window {
	out := make([]*Window, len(s.windows))
	copy(out, s.windows)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].z < out[j].z
	})
	return out
}

// TopWindow returns the topmost non-overlay window, or nil when the stack is
// empty. This is "the app the user is looking at".
func (s *Screen) TopWindow() *Window {
	ws := s.Windows()
	for i := len(ws) - 1; i >= 0; i-- {
		if ws[i].Type != WindowOverlay {
			return ws[i]
		}
	}
	return nil
}

// Render rasterises the screen: dark background, status bar, windows in
// z-order, navigation bar.
func (s *Screen) Render() *render.Canvas {
	c := render.NewCanvas(s.W, s.H)
	c.Fill(c.Bounds(), render.Black)
	for _, w := range s.Windows() {
		if w.Root == nil {
			continue
		}
		w.Root.render(c, geom.Pt{X: w.Frame.X, Y: w.Frame.Y}, 1)
	}
	// System bars draw above app windows but below overlays; re-draw
	// overlays after the bars to preserve that ordering.
	s.renderBars(c)
	for _, w := range s.Windows() {
		if w.Type == WindowOverlay && w.Root != nil {
			w.Root.render(c, geom.Pt{X: w.Frame.X, Y: w.Frame.Y}, 1)
		}
	}
	return c
}

func (s *Screen) renderBars(c *render.Canvas) {
	if s.StatusBarH > 0 {
		bar := geom.Rect{X: 0, Y: 0, W: s.W, H: s.StatusBarH}
		c.Fill(bar, render.Black)
		// Clock dots, signal bars: enough texture to be realistic.
		c.Fill(geom.Rect{X: s.W - 30, Y: s.StatusBarH / 3, W: 20, H: s.StatusBarH / 3}, render.LightGray)
		c.Fill(geom.Rect{X: 10, Y: s.StatusBarH / 3, W: 30, H: s.StatusBarH / 3}, render.LightGray)
	}
	if s.NavBarH > 0 {
		bar := geom.Rect{X: 0, Y: s.H - s.NavBarH, W: s.W, H: s.NavBarH}
		c.Fill(bar, render.Black)
		cy := s.H - s.NavBarH/2
		c.FillCircle(s.W/2, cy, s.NavBarH/5, render.LightGray)
		c.FillCircle(s.W/4, cy, s.NavBarH/6, render.LightGray)
		c.FillCircle(3*s.W/4, cy, s.NavBarH/6, render.LightGray)
	}
}

// Click dispatches a tap at p to the topmost clickable view under it,
// searching windows top-down. It returns the view that consumed the click
// (nil when nothing did). Overlay windows never consume clicks: DARPA's
// decorations are drawn with the not-touchable window flag so user input
// passes through to the app beneath.
func (s *Screen) Click(p geom.Pt) *View {
	ws := s.Windows()
	for i := len(ws) - 1; i >= 0; i-- {
		w := ws[i]
		if w.Type == WindowOverlay || w.Root == nil || !w.Frame.Contains(p) {
			continue
		}
		if hit, _ := w.Root.hitTest(geom.Pt{X: w.Frame.X, Y: w.Frame.Y}, p); hit != nil {
			if hit.OnClick != nil {
				hit.OnClick()
			}
			return hit
		}
		// The window under the tap absorbs it even if no view handled it.
		return nil
	}
	return nil
}

// ViewInfo is the per-view metadata an ADB UI dump exposes: what the
// FraudDroid-like baseline of Section VI-C consumes.
type ViewInfo struct {
	Owner     string
	ID        string
	Kind      Kind
	Bounds    geom.Rect // absolute screen coordinates
	Text      string
	Clickable bool
	Alpha     float64
}

// DumpViews flattens every visible view of every non-overlay window into
// metadata records, top window last.
func (s *Screen) DumpViews() []ViewInfo {
	var out []ViewInfo
	for _, w := range s.Windows() {
		if w.Type == WindowOverlay || w.Root == nil {
			continue
		}
		w.Root.Walk(geom.Pt{X: w.Frame.X, Y: w.Frame.Y}, func(v *View, abs geom.Rect) bool {
			out = append(out, ViewInfo{
				Owner:     w.Owner,
				ID:        v.ID,
				Kind:      v.Kind,
				Bounds:    abs,
				Text:      v.Text,
				Clickable: v.Clickable,
				Alpha:     v.effAlpha(),
			})
			return true
		})
	}
	return out
}
