// Package uikit models the Android view system at the fidelity DARPA
// observes it: a tree of rectangular views composited into z-ordered windows
// on a screen with status and navigation bars.
//
// The package deliberately mirrors the constraint structure of the paper:
// the screen can be rasterised to pixels (what the Accessibility Service
// screenshot API exposes), views carry resource ids and placement metadata
// (what ADB view dumps expose to the FraudDroid-like baseline), and windows
// may be inset below the status bar (the decoration-calibration problem of
// Figure 4).
package uikit

import (
	"fmt"

	"repro/internal/font"
	"repro/internal/geom"
	"repro/internal/render"
)

// Kind classifies a view, mirroring the Android widget classes relevant to
// AUI analysis.
type Kind int

// View kinds. They begin at 1 so the zero value is detectably invalid.
const (
	KindContainer Kind = iota + 1
	KindButton
	KindText
	KindImage
	KindIcon
)

var kindNames = map[Kind]string{
	KindContainer: "container",
	KindButton:    "button",
	KindText:      "text",
	KindImage:     "image",
	KindIcon:      "icon",
}

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// View is one node of a UI tree. Bounds are relative to the parent view (or
// the window for the root).
type View struct {
	// ID is the resource id ("btn_close", "ad_container"). Apps that
	// obfuscate their resources replace it with a meaningless token,
	// which is what defeats id-based heuristics (Section VI-C).
	ID string
	// Kind classifies the widget.
	Kind Kind
	// Bounds positions the view relative to its parent.
	Bounds geom.Rect
	// Color is the fill colour. A zero Color (alpha 0) draws no background.
	Color render.Color
	// Alpha in [0,1] multiplies the whole subtree's opacity. The zero value
	// is treated as fully opaque so that plain struct literals work.
	Alpha float64
	// Corner is the corner radius in pixels for the background fill.
	Corner int
	// Text, TextScale and TextColor render a centred label.
	Text      string
	TextScale int
	TextColor render.Color
	// Cross draws an "X" glyph across the view (close buttons).
	Cross bool
	// CrossColor is the colour of the X; zero value means TextColor.
	CrossColor render.Color
	// Clickable marks the view as an interaction target.
	Clickable bool
	// OnClick is invoked when a click lands on the view.
	OnClick func()
	// Hidden removes the subtree from rendering and hit testing.
	Hidden bool
	// Children are drawn after (on top of) the view background, in order.
	Children []*View
}

// Add appends children and returns the view for chaining.
func (v *View) Add(children ...*View) *View {
	v.Children = append(v.Children, children...)
	return v
}

// effAlpha returns the effective opacity multiplier, mapping the zero value
// to 1.
func (v *View) effAlpha() float64 {
	if v.Alpha == 0 {
		return 1
	}
	if v.Alpha < 0 {
		return 0
	}
	if v.Alpha > 1 {
		return 1
	}
	return v.Alpha
}

func scaleAlpha(c render.Color, mul float64) render.Color {
	if mul >= 1 {
		return c
	}
	return c.WithAlpha(uint8(float64(c.A)*mul + 0.5))
}

// Render draws the subtree onto canvas with the view's top-left at origin,
// with inherited opacity parentAlpha.
func (v *View) render(c *render.Canvas, origin geom.Pt, parentAlpha float64) {
	if v.Hidden {
		return
	}
	alpha := parentAlpha * v.effAlpha()
	abs := v.Bounds.Translate(origin.X, origin.Y)
	if v.Color.A > 0 {
		c.FillRounded(abs, v.Corner, scaleAlpha(v.Color, alpha))
	}
	if v.Text != "" {
		scale := v.TextScale
		if scale < 1 {
			scale = 1
		}
		font.DrawCentered(c, abs, v.Text, scale, scaleAlpha(v.TextColor, alpha))
	}
	if v.Cross {
		col := v.CrossColor
		if col.A == 0 {
			col = v.TextColor
		}
		pad := min(abs.W, abs.H) / 4
		c.DrawCross(abs.Inset(pad), max(2, min(abs.W, abs.H)/7), scaleAlpha(col, alpha))
	}
	for _, child := range v.Children {
		child.render(c, geom.Pt{X: abs.X, Y: abs.Y}, alpha)
	}
}

// Walk visits the subtree depth-first with each view's absolute bounds
// (relative to origin). Hidden subtrees are skipped. The walk stops early if
// fn returns false.
func (v *View) Walk(origin geom.Pt, fn func(v *View, abs geom.Rect) bool) bool {
	if v.Hidden {
		return true
	}
	abs := v.Bounds.Translate(origin.X, origin.Y)
	if !fn(v, abs) {
		return false
	}
	for _, child := range v.Children {
		if !child.Walk(geom.Pt{X: abs.X, Y: abs.Y}, fn) {
			return false
		}
	}
	return true
}

// FindByID returns the first view in the subtree whose ID matches, or nil.
func (v *View) FindByID(id string) *View {
	var found *View
	v.Walk(geom.Pt{}, func(view *View, _ geom.Rect) bool {
		if view.ID == id {
			found = view
			return false
		}
		return true
	})
	return found
}

// hitTest returns the topmost clickable view containing p, searching children
// before the view itself (children draw on top).
func (v *View) hitTest(origin geom.Pt, p geom.Pt) (*View, geom.Rect) {
	if v.Hidden {
		return nil, geom.Rect{}
	}
	abs := v.Bounds.Translate(origin.X, origin.Y)
	for i := len(v.Children) - 1; i >= 0; i-- {
		if hit, r := v.Children[i].hitTest(geom.Pt{X: abs.X, Y: abs.Y}, p); hit != nil {
			return hit, r
		}
	}
	if v.Clickable && abs.Contains(p) {
		return v, abs
	}
	return nil, geom.Rect{}
}
