package uikit

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/render"
)

func TestViewRenderBasic(t *testing.T) {
	s := NewScreen(100, 160)
	root := &View{Kind: KindContainer, Bounds: geom.Rect{W: 100, H: 100}, Color: render.White}
	root.Add(&View{Kind: KindButton, Bounds: geom.Rect{X: 10, Y: 10, W: 30, H: 20}, Color: render.Red})
	s.AddWindow(&Window{Owner: "app", Type: WindowApp, Frame: geom.Rect{W: 100, H: 100}, Root: root})
	c := s.Render()
	if c.At(20, 15) != render.Red {
		t.Fatalf("button pixel = %v", c.At(20, 15))
	}
	if c.At(60, 60) != render.White {
		t.Fatalf("background pixel = %v", c.At(60, 60))
	}
}

func TestHiddenSubtreeSkipped(t *testing.T) {
	s := NewScreen(50, 80)
	root := &View{Kind: KindContainer, Bounds: geom.Rect{W: 50, H: 50}, Color: render.White}
	root.Add(&View{Kind: KindButton, Bounds: geom.Rect{X: 5, Y: 30, W: 10, H: 10}, Color: render.Red, Hidden: true})
	s.AddWindow(&Window{Owner: "a", Type: WindowApp, Frame: geom.Rect{W: 50, H: 50}, Root: root})
	if got := s.Render().At(8, 33); got != render.White {
		t.Fatalf("hidden view rendered: %v", got)
	}
}

func TestAlphaInheritance(t *testing.T) {
	s := NewScreen(50, 80)
	root := &View{Kind: KindContainer, Bounds: geom.Rect{W: 50, H: 50}, Color: render.White}
	faint := &View{Kind: KindContainer, Bounds: geom.Rect{X: 0, Y: 25, W: 50, H: 25}, Alpha: 0.2}
	faint.Add(&View{Kind: KindButton, Bounds: geom.Rect{X: 5, Y: 5, W: 10, H: 10}, Color: render.Black})
	root.Add(faint)
	s.AddWindow(&Window{Owner: "a", Type: WindowApp, Frame: geom.Rect{W: 50, H: 50}, Root: root})
	got := s.Render().At(8, 33)
	// 20% black over white should stay bright.
	if got.Luma() < 180 {
		t.Fatalf("alpha-faded child too dark: %v (luma %v)", got, got.Luma())
	}
	if got.Luma() > 250 {
		t.Fatalf("alpha-faded child invisible: %v", got)
	}
}

func TestZeroAlphaIsOpaque(t *testing.T) {
	v := &View{}
	if v.effAlpha() != 1 {
		t.Fatalf("zero-value alpha = %v, want 1", v.effAlpha())
	}
}

func TestWindowStackingByType(t *testing.T) {
	s := NewScreen(50, 80)
	app := &Window{Owner: "app", Type: WindowApp, Frame: geom.Rect{W: 50, H: 80},
		Root: &View{Kind: KindContainer, Bounds: geom.Rect{W: 50, H: 80}, Color: render.Blue}}
	overlay := &Window{Owner: "darpa", Type: WindowOverlay, Frame: geom.Rect{X: 10, Y: 40, W: 10, H: 10},
		Root: &View{Kind: KindImage, Bounds: geom.Rect{W: 10, H: 10}, Color: render.Green}}
	// Add overlay first: type ordering must still put it on top.
	s.AddWindow(overlay)
	s.AddWindow(app)
	c := s.Render()
	if c.At(15, 45) != render.Green {
		t.Fatalf("overlay not on top: %v", c.At(15, 45))
	}
	if s.TopWindow() != app {
		t.Fatal("TopWindow should skip overlays")
	}
}

func TestDialogAboveApp(t *testing.T) {
	s := NewScreen(50, 80)
	s.AddWindow(&Window{Owner: "app", Type: WindowApp, Frame: geom.Rect{W: 50, H: 80},
		Root: &View{Kind: KindContainer, Bounds: geom.Rect{W: 50, H: 80}, Color: render.Blue}})
	dlg := &Window{Owner: "app", Type: WindowDialog, Frame: geom.Rect{X: 10, Y: 30, W: 30, H: 20},
		Root: &View{Kind: KindContainer, Bounds: geom.Rect{W: 30, H: 20}, Color: render.Yellow}}
	s.AddWindow(dlg)
	if got := s.Render().At(20, 40); got != render.Yellow {
		t.Fatalf("dialog not above app: %v", got)
	}
	if s.TopWindow() != dlg {
		t.Fatal("dialog should be the top window")
	}
}

func TestRemoveWindow(t *testing.T) {
	s := NewScreen(50, 80)
	w := &Window{Owner: "a", Type: WindowApp, Frame: geom.Rect{W: 50, H: 80},
		Root: &View{Kind: KindContainer, Bounds: geom.Rect{W: 50, H: 80}, Color: render.Red}}
	s.AddWindow(w)
	s.RemoveWindow(w)
	if len(s.Windows()) != 0 {
		t.Fatal("window not removed")
	}
	s.RemoveWindow(w) // removing twice is a no-op
}

func TestClickDispatch(t *testing.T) {
	s := NewScreen(100, 160)
	clicked := ""
	root := &View{Kind: KindContainer, Bounds: geom.Rect{W: 100, H: 100}, Color: render.White}
	root.Add(
		&View{ID: "big", Kind: KindButton, Bounds: geom.Rect{X: 10, Y: 10, W: 60, H: 40},
			Clickable: true, OnClick: func() { clicked = "big" }},
		&View{ID: "small", Kind: KindButton, Bounds: geom.Rect{X: 20, Y: 20, W: 10, H: 10},
			Clickable: true, OnClick: func() { clicked = "small" }},
	)
	s.AddWindow(&Window{Owner: "a", Type: WindowApp, Frame: geom.Rect{W: 100, H: 100}, Root: root})
	// The small button is added later, so it draws above and wins the hit.
	if v := s.Click(geom.Pt{X: 25, Y: 25}); v == nil || v.ID != "small" || clicked != "small" {
		t.Fatalf("click hit %v (clicked=%q)", v, clicked)
	}
	if v := s.Click(geom.Pt{X: 60, Y: 40}); v == nil || v.ID != "big" {
		t.Fatalf("click hit %v, want big", v)
	}
	if v := s.Click(geom.Pt{X: 90, Y: 90}); v != nil {
		t.Fatalf("click on non-clickable area hit %v", v)
	}
}

func TestOverlayDoesNotConsumeClicks(t *testing.T) {
	s := NewScreen(100, 160)
	clicked := false
	root := &View{Kind: KindContainer, Bounds: geom.Rect{W: 100, H: 100}}
	root.Add(&View{ID: "upo", Kind: KindButton, Bounds: geom.Rect{X: 80, Y: 5, W: 12, H: 12},
		Clickable: true, OnClick: func() { clicked = true }})
	s.AddWindow(&Window{Owner: "a", Type: WindowApp, Frame: geom.Rect{W: 100, H: 100}, Root: root})
	// Decoration overlay exactly covering the button.
	ol := &View{Kind: KindImage, Bounds: geom.Rect{W: 12, H: 12}, Clickable: true}
	s.AddWindow(&Window{Owner: "darpa", Type: WindowOverlay, Frame: geom.Rect{X: 80, Y: 5, W: 12, H: 12},
		Root: ol})
	if v := s.Click(geom.Pt{X: 85, Y: 10}); v == nil || !clicked {
		t.Fatalf("overlay swallowed the click (hit=%v clicked=%v)", v, clicked)
	}
}

func TestHiddenViewNotClickable(t *testing.T) {
	s := NewScreen(50, 80)
	root := &View{Kind: KindContainer, Bounds: geom.Rect{W: 50, H: 50}}
	root.Add(&View{ID: "x", Kind: KindButton, Bounds: geom.Rect{X: 0, Y: 0, W: 50, H: 50},
		Clickable: true, Hidden: true, OnClick: func() { t.Fatal("hidden view clicked") }})
	s.AddWindow(&Window{Owner: "a", Type: WindowApp, Frame: geom.Rect{W: 50, H: 50}, Root: root})
	if v := s.Click(geom.Pt{X: 25, Y: 25}); v != nil {
		t.Fatalf("hidden view hit: %v", v)
	}
}

func TestFindByIDAndWalk(t *testing.T) {
	root := &View{ID: "root", Kind: KindContainer, Bounds: geom.Rect{W: 100, H: 100}}
	inner := &View{ID: "inner", Kind: KindContainer, Bounds: geom.Rect{X: 10, Y: 20, W: 50, H: 50}}
	leaf := &View{ID: "leaf", Kind: KindButton, Bounds: geom.Rect{X: 5, Y: 5, W: 10, H: 10}}
	inner.Add(leaf)
	root.Add(inner)
	if root.FindByID("leaf") != leaf {
		t.Fatal("FindByID failed")
	}
	if root.FindByID("nope") != nil {
		t.Fatal("FindByID found a ghost")
	}
	// Walk must report absolute bounds.
	var leafAbs geom.Rect
	root.Walk(geom.Pt{}, func(v *View, abs geom.Rect) bool {
		if v.ID == "leaf" {
			leafAbs = abs
		}
		return true
	})
	if leafAbs != (geom.Rect{X: 15, Y: 25, W: 10, H: 10}) {
		t.Fatalf("leaf absolute bounds = %v", leafAbs)
	}
}

func TestDumpViews(t *testing.T) {
	s := NewScreen(100, 160)
	frame := s.ContentFrame()
	root := &View{ID: "root", Kind: KindContainer, Bounds: geom.Rect{W: frame.W, H: frame.H}}
	root.Add(&View{ID: "btn_close", Kind: KindButton, Bounds: geom.Rect{X: 80, Y: 4, W: 12, H: 12},
		Clickable: true, Alpha: 0.4})
	s.AddWindow(&Window{Owner: "com.example", Type: WindowApp, Frame: frame, Root: root})
	infos := s.DumpViews()
	if len(infos) != 2 {
		t.Fatalf("dumped %d views, want 2", len(infos))
	}
	var btn *ViewInfo
	for i := range infos {
		if infos[i].ID == "btn_close" {
			btn = &infos[i]
		}
	}
	if btn == nil {
		t.Fatal("btn_close missing from dump")
	}
	// Dump coordinates must be absolute: window frame offset applied.
	want := geom.Rect{X: 80, Y: frame.Y + 4, W: 12, H: 12}
	if btn.Bounds != want {
		t.Fatalf("dump bounds = %v, want %v", btn.Bounds, want)
	}
	if btn.Alpha != 0.4 || !btn.Clickable || btn.Owner != "com.example" {
		t.Fatalf("dump metadata wrong: %+v", btn)
	}
}

func TestContentFrameInsets(t *testing.T) {
	s := NewScreen(360, 640)
	f := s.ContentFrame()
	if f.Y != s.StatusBarH {
		t.Fatalf("content frame top = %d, want %d", f.Y, s.StatusBarH)
	}
	if f.MaxY() != 640-s.NavBarH {
		t.Fatalf("content frame bottom = %d", f.MaxY())
	}
	if s.StatusBarH == 0 || s.NavBarH == 0 {
		t.Fatal("system bars should have nonzero height at 640p")
	}
}

func TestTextRenders(t *testing.T) {
	s := NewScreen(100, 160)
	root := &View{Kind: KindContainer, Bounds: geom.Rect{W: 100, H: 100}, Color: render.White}
	root.Add(&View{Kind: KindButton, Bounds: geom.Rect{X: 10, Y: 40, W: 80, H: 24},
		Color: render.Blue, Text: "OPEN", TextColor: render.White})
	s.AddWindow(&Window{Owner: "a", Type: WindowApp, Frame: geom.Rect{W: 100, H: 100}, Root: root})
	c := s.Render()
	// Some pixel inside the button area must be white (text ink).
	found := false
	for y := 40; y < 64 && !found; y++ {
		for x := 10; x < 90 && !found; x++ {
			if c.At(x, y) == render.White {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("button label did not render")
	}
}

func TestKindString(t *testing.T) {
	if KindButton.String() != "button" {
		t.Fatalf("KindButton = %q", KindButton.String())
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should format, not vanish")
	}
}

func TestAddWindowInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddWindow with zero type did not panic")
		}
	}()
	NewScreen(10, 10).AddWindow(&Window{})
}
