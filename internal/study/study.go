// Package study reproduces the user-study analysis of Section III-B. The
// study itself (165 participants on Wenjuanxing, Nov 21-24 2022) cannot be
// re-run, so the paper's published summary statistics are embedded as a
// deterministic per-participant response table whose marginals match every
// number the paper reports, and the analysis pipeline recomputes Findings
// 1-3 from it.
package study

import "fmt"

// Frequency answers Q2: how often unintended clicks happen.
type Frequency int

// Q2 answer options. They begin at 1 so the zero value is detectably
// invalid.
const (
	Often Frequency = iota + 1
	Occasionally
	Never
)

// String names the frequency bucket.
func (f Frequency) String() string {
	switch f {
	case Often:
		return "often"
	case Occasionally:
		return "occasionally"
	case Never:
		return "never"
	default:
		return fmt.Sprintf("frequency(%d)", int(f))
	}
}

// Response is one participant's answers (the fields mirror the
// questionnaire structure described in Section III-B).
type Response struct {
	// Demographics (Q13-Q14).
	Male      bool
	Age18to35 bool
	Bachelor  bool
	// Q1: are the two example AUIs misleading?
	FeelsMisled bool
	// Q2: frequency of unintended clicks.
	UnintendedClicks Frequency
	// Q3-Q5 composite: accessibility ratings (1-10).
	AGORating, UPORating int
	// Q7: bothered by unintended clicks and wants to exit quickly.
	Bothered bool
	// Q8: experience with non-Chinese apps, and whether Chinese apps show
	// more AUIs.
	UsedForeignApps bool
	ThinksCNMoreAUI bool
	// Q9: is the UPO at least as important as the AGO?
	UPOEquallyImportant bool
	// Q10-Q12 composite: rating for having a countermeasure (1-10) and the
	// preferred mitigation.
	SolutionRating   int
	PrefersHighlight bool
}

// Paper marginals (counts out of 165).
const (
	numParticipants  = 165
	numMale          = 74
	numAge18to35     = 126 // 76.4%
	numBachelor      = 155 // 93.9%
	numMisled        = 156 // 94.5%
	numOften         = 127 // 77.0%
	numOccasionally  = 34  // 20.6%
	numNever         = 4   // 2.4%
	numBothered      = 137 // 83.0%
	numForeignUsers  = 112
	numCNMoreAUI     = 86  // 76.8% of 112
	numUPOImportant  = 120 // 72.7%
	numHighlightPref = 92  // "more than half"
	numSolution9Plus = 48
	// Rating sums chosen so the means match the paper to two decimals:
	// AGO 7.49, UPO 4.38, solution 7.64.
	sumAGORatings      = 1236
	sumUPORatings      = 723
	sumSolutionRatings = 1261
)

// Responses returns the deterministic 165-participant response table. The
// attribute assignment is round-robin so marginals are exact while joint
// distributions stay unremarkable.
func Responses() []Response {
	rs := make([]Response, numParticipants)
	for i := range rs {
		rs[i] = Response{
			Male:                i < numMale,
			Age18to35:           i%165 < numAge18to35,
			Bachelor:            i >= numParticipants-numBachelor,
			FeelsMisled:         i < numMisled,
			Bothered:            i%numParticipants < numBothered,
			UPOEquallyImportant: (i*7)%numParticipants < numUPOImportant,
			PrefersHighlight:    (i*3)%numParticipants < numHighlightPref,
		}
		switch {
		case i < numOften:
			rs[i].UnintendedClicks = Often
		case i < numOften+numOccasionally:
			rs[i].UnintendedClicks = Occasionally
		default:
			rs[i].UnintendedClicks = Never
		}
		// Foreign-app exposure: the last 112 participants.
		if i >= numParticipants-numForeignUsers {
			rs[i].UsedForeignApps = true
			rs[i].ThinksCNMoreAUI = i >= numParticipants-numCNMoreAUI
		}
	}
	// AGO ratings: 84 participants rate 7, 81 rate 8 (sum 1236).
	for i := range rs {
		if i < 84 {
			rs[i].AGORating = 7
		} else {
			rs[i].AGORating = 8
		}
	}
	// UPO ratings: 102 rate 4, 63 rate 5 (sum 723).
	for i := range rs {
		if i < 102 {
			rs[i].UPORating = 4
		} else {
			rs[i].UPORating = 5
		}
	}
	// Solution ratings: 107 rate 7, 10 rate 8, 48 rate 9 (sum 1261,
	// 48 ratings >= 9 as reported).
	for i := range rs {
		switch {
		case i < 107:
			rs[i].SolutionRating = 7
		case i < 117:
			rs[i].SolutionRating = 8
		default:
			rs[i].SolutionRating = 9
		}
	}
	return rs
}

// Findings aggregates the study, mirroring the quantities in Section III-B.
type Findings struct {
	Participants int
	// Finding 1: users agree AUIs are misleading; options are asymmetric.
	MisledFrac       float64
	MeanAGORating    float64
	MeanUPORating    float64
	UPOImportantFrac float64
	// Finding 2: AUIs hurt usability.
	OftenFrac, OccasionallyFrac, NeverFrac float64
	BotheredFrac                           float64
	ForeignUsers                           int
	CNMoreAUIFrac                          float64 // among foreign-app users
	// Finding 3: users want a countermeasure.
	MeanSolutionRating float64
	Solution9Plus      int
	HighlightFrac      float64
	// Demographics.
	MaleCount, FemaleCount      int
	Age18to35Frac, BachelorFrac float64
}

// Analyze recomputes every Section III-B statistic from raw responses.
func Analyze(rs []Response) Findings {
	f := Findings{Participants: len(rs)}
	if len(rs) == 0 {
		return f
	}
	n := float64(len(rs))
	var misled, often, occ, never, bothered, foreign, cnMore, upoImp, nine, highlight int
	var sumAGO, sumUPO, sumSol, male, age, bach int
	for _, r := range rs {
		if r.FeelsMisled {
			misled++
		}
		switch r.UnintendedClicks {
		case Often:
			often++
		case Occasionally:
			occ++
		case Never:
			never++
		}
		if r.Bothered {
			bothered++
		}
		if r.UsedForeignApps {
			foreign++
			if r.ThinksCNMoreAUI {
				cnMore++
			}
		}
		if r.UPOEquallyImportant {
			upoImp++
		}
		if r.SolutionRating >= 9 {
			nine++
		}
		if r.PrefersHighlight {
			highlight++
		}
		sumAGO += r.AGORating
		sumUPO += r.UPORating
		sumSol += r.SolutionRating
		if r.Male {
			male++
		}
		if r.Age18to35 {
			age++
		}
		if r.Bachelor {
			bach++
		}
	}
	f.MisledFrac = float64(misled) / n
	f.MeanAGORating = float64(sumAGO) / n
	f.MeanUPORating = float64(sumUPO) / n
	f.UPOImportantFrac = float64(upoImp) / n
	f.OftenFrac = float64(often) / n
	f.OccasionallyFrac = float64(occ) / n
	f.NeverFrac = float64(never) / n
	f.BotheredFrac = float64(bothered) / n
	f.ForeignUsers = foreign
	if foreign > 0 {
		f.CNMoreAUIFrac = float64(cnMore) / float64(foreign)
	}
	f.MeanSolutionRating = float64(sumSol) / n
	f.Solution9Plus = nine
	f.HighlightFrac = float64(highlight) / n
	f.MaleCount = male
	f.FemaleCount = len(rs) - male
	f.Age18to35Frac = float64(age) / n
	f.BachelorFrac = float64(bach) / n
	return f
}

// Finding1Holds checks the paper's Finding 1: users strongly agree AUIs are
// misleading, and rate AGOs far more accessible than UPOs.
func (f Findings) Finding1Holds() bool {
	return f.MisledFrac > 0.9 && f.MeanAGORating-f.MeanUPORating > 2
}

// Finding2Holds checks Finding 2: AUIs hurt usability for most users.
func (f Findings) Finding2Holds() bool {
	return f.OftenFrac > 0.7 && f.BotheredFrac > 0.75 && f.CNMoreAUIFrac > 0.7
}

// Finding3Holds checks Finding 3: users want a practical countermeasure,
// preferably highlighting.
func (f Findings) Finding3Holds() bool {
	return f.MeanSolutionRating > 7 && f.HighlightFrac > 0.5
}
