package study

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, paper reports %v", name, got, want)
	}
}

func TestMarginalsMatchPaper(t *testing.T) {
	f := Analyze(Responses())
	if f.Participants != 165 {
		t.Fatalf("participants = %d", f.Participants)
	}
	approx(t, "misled fraction (Q1)", f.MisledFrac, 156.0/165.0, 1e-9)
	approx(t, "mean AGO rating", f.MeanAGORating, 7.49, 0.005)
	approx(t, "mean UPO rating", f.MeanUPORating, 4.38, 0.005)
	approx(t, "often fraction (Q2)", f.OftenFrac, 127.0/165.0, 1e-9)
	approx(t, "occasionally fraction", f.OccasionallyFrac, 34.0/165.0, 1e-9)
	approx(t, "never fraction", f.NeverFrac, 4.0/165.0, 1e-9)
	approx(t, "bothered fraction (Q7)", f.BotheredFrac, 137.0/165.0, 1e-9)
	if f.ForeignUsers != 112 {
		t.Errorf("foreign-app users = %d, want 112", f.ForeignUsers)
	}
	approx(t, "CN-more-AUI fraction (Q8)", f.CNMoreAUIFrac, 86.0/112.0, 1e-9)
	approx(t, "UPO-important fraction (Q9)", f.UPOImportantFrac, 120.0/165.0, 1e-9)
	approx(t, "mean solution rating", f.MeanSolutionRating, 7.64, 0.005)
	if f.Solution9Plus != 48 {
		t.Errorf("solution ratings >=9 = %d, want 48", f.Solution9Plus)
	}
	if f.HighlightFrac <= 0.5 {
		t.Errorf("highlight preference %v, paper says more than half", f.HighlightFrac)
	}
}

func TestDemographics(t *testing.T) {
	f := Analyze(Responses())
	if f.MaleCount != 74 || f.FemaleCount != 91 {
		t.Errorf("gender split %d/%d, want 74/91", f.MaleCount, f.FemaleCount)
	}
	approx(t, "age 18-35 fraction", f.Age18to35Frac, 0.764, 0.005)
	approx(t, "bachelor fraction", f.BachelorFrac, 0.939, 0.005)
}

func TestFindingsHold(t *testing.T) {
	f := Analyze(Responses())
	if !f.Finding1Holds() {
		t.Error("Finding 1 (AUIs are misleading) does not hold")
	}
	if !f.Finding2Holds() {
		t.Error("Finding 2 (AUIs hurt usability) does not hold")
	}
	if !f.Finding3Holds() {
		t.Error("Finding 3 (users want a countermeasure) does not hold")
	}
}

func TestRatingsInRange(t *testing.T) {
	for i, r := range Responses() {
		if r.AGORating < 1 || r.AGORating > 10 || r.UPORating < 1 || r.UPORating > 10 ||
			r.SolutionRating < 1 || r.SolutionRating > 10 {
			t.Fatalf("participant %d has out-of-range rating: %+v", i, r)
		}
		if r.UnintendedClicks == 0 {
			t.Fatalf("participant %d has invalid Q2 answer", i)
		}
		if r.ThinksCNMoreAUI && !r.UsedForeignApps {
			t.Fatalf("participant %d answered Q8 without foreign-app experience", i)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	f := Analyze(nil)
	if f.Participants != 0 || f.MisledFrac != 0 {
		t.Fatalf("empty analysis %+v", f)
	}
}

func TestDeterministic(t *testing.T) {
	a, b := Responses(), Responses()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("response table not deterministic")
		}
	}
}

func TestFrequencyString(t *testing.T) {
	if Often.String() != "often" || Never.String() != "never" {
		t.Fatal("frequency names wrong")
	}
	if Frequency(9).String() == "" {
		t.Fatal("unknown frequency should format")
	}
}
