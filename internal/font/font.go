// Package font implements a tiny 5x7 bitmap font used to label buttons and
// ad copy in the synthetic UI dataset. Real AUI screenshots contain text; the
// text-masking experiment of the paper (Table IV) shows the detector does not
// rely on it, so the reproduction needs text that can be drawn and blurred.
//
// Lowercase letters are rendered as smaller uppercase glyphs would be in a
// 5x7 matrix; unknown runes render as a filled block, which is how CJK
// characters appear at this resolution anyway — an intentional match for the
// paper's claim that detection is language-independent.
package font

import (
	"repro/internal/geom"
	"repro/internal/render"
)

// GlyphW and GlyphH are the pixel dimensions of one glyph at scale 1.
const (
	GlyphW = 5
	GlyphH = 7
	// Tracking is the horizontal spacing between glyphs at scale 1.
	Tracking = 1
)

// glyphs maps runes to 7 rows of 5-bit patterns (MSB = leftmost pixel,
// using the low 5 bits of each byte).
var glyphs = map[rune][GlyphH]uint8{
	' ':  {0, 0, 0, 0, 0, 0, 0},
	'A':  {0b01110, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001},
	'B':  {0b11110, 0b10001, 0b10001, 0b11110, 0b10001, 0b10001, 0b11110},
	'C':  {0b01110, 0b10001, 0b10000, 0b10000, 0b10000, 0b10001, 0b01110},
	'D':  {0b11110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b11110},
	'E':  {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b11111},
	'F':  {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b10000},
	'G':  {0b01110, 0b10001, 0b10000, 0b10111, 0b10001, 0b10001, 0b01111},
	'H':  {0b10001, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001},
	'I':  {0b01110, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'J':  {0b00111, 0b00010, 0b00010, 0b00010, 0b00010, 0b10010, 0b01100},
	'K':  {0b10001, 0b10010, 0b10100, 0b11000, 0b10100, 0b10010, 0b10001},
	'L':  {0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b11111},
	'M':  {0b10001, 0b11011, 0b10101, 0b10101, 0b10001, 0b10001, 0b10001},
	'N':  {0b10001, 0b11001, 0b10101, 0b10011, 0b10001, 0b10001, 0b10001},
	'O':  {0b01110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110},
	'P':  {0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000, 0b10000},
	'Q':  {0b01110, 0b10001, 0b10001, 0b10001, 0b10101, 0b10010, 0b01101},
	'R':  {0b11110, 0b10001, 0b10001, 0b11110, 0b10100, 0b10010, 0b10001},
	'S':  {0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110},
	'T':  {0b11111, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100},
	'U':  {0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110},
	'V':  {0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01010, 0b00100},
	'W':  {0b10001, 0b10001, 0b10001, 0b10101, 0b10101, 0b10101, 0b01010},
	'X':  {0b10001, 0b10001, 0b01010, 0b00100, 0b01010, 0b10001, 0b10001},
	'Y':  {0b10001, 0b10001, 0b01010, 0b00100, 0b00100, 0b00100, 0b00100},
	'Z':  {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b11111},
	'0':  {0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110},
	'1':  {0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'2':  {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111},
	'3':  {0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110},
	'4':  {0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010},
	'5':  {0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110},
	'6':  {0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110},
	'7':  {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000},
	'8':  {0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110},
	'9':  {0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100},
	'!':  {0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00000, 0b00100},
	'?':  {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b00000, 0b00100},
	'.':  {0b00000, 0b00000, 0b00000, 0b00000, 0b00000, 0b01100, 0b01100},
	',':  {0b00000, 0b00000, 0b00000, 0b00000, 0b00110, 0b00100, 0b01000},
	':':  {0b00000, 0b01100, 0b01100, 0b00000, 0b01100, 0b01100, 0b00000},
	'-':  {0b00000, 0b00000, 0b00000, 0b11111, 0b00000, 0b00000, 0b00000},
	'+':  {0b00000, 0b00100, 0b00100, 0b11111, 0b00100, 0b00100, 0b00000},
	'/':  {0b00001, 0b00010, 0b00010, 0b00100, 0b01000, 0b01000, 0b10000},
	'%':  {0b11001, 0b11010, 0b00010, 0b00100, 0b01000, 0b01011, 0b10011},
	'$':  {0b00100, 0b01111, 0b10100, 0b01110, 0b00101, 0b11110, 0b00100},
	'>':  {0b01000, 0b00100, 0b00010, 0b00001, 0b00010, 0b00100, 0b01000},
	'<':  {0b00010, 0b00100, 0b01000, 0b10000, 0b01000, 0b00100, 0b00010},
	'(':  {0b00010, 0b00100, 0b01000, 0b01000, 0b01000, 0b00100, 0b00010},
	')':  {0b01000, 0b00100, 0b00010, 0b00010, 0b00010, 0b00100, 0b01000},
	'*':  {0b00000, 0b10101, 0b01110, 0b11111, 0b01110, 0b10101, 0b00000},
	'=':  {0b00000, 0b00000, 0b11111, 0b00000, 0b11111, 0b00000, 0b00000},
	'\'': {0b00100, 0b00100, 0b01000, 0b00000, 0b00000, 0b00000, 0b00000},
	// block is the fallback glyph for runes outside the table (e.g. CJK).
	'�': {0b11111, 0b11111, 0b11111, 0b11111, 0b11111, 0b11111, 0b11111},
}

// Glyph returns the bit pattern for r, falling back to the block glyph for
// unknown runes. Lowercase ASCII letters use their uppercase form.
func Glyph(r rune) [GlyphH]uint8 {
	if r >= 'a' && r <= 'z' {
		r -= 'a' - 'A'
	}
	if g, ok := glyphs[r]; ok {
		return g
	}
	return glyphs['�']
}

// Measure returns the pixel size of s drawn at the given integer scale
// (scale < 1 is treated as 1).
func Measure(s string, scale int) (w, h int) {
	if scale < 1 {
		scale = 1
	}
	n := 0
	for range s {
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return n*(GlyphW+Tracking)*scale - Tracking*scale, GlyphH * scale
}

// Draw renders s onto c with its top-left corner at (x, y), at the given
// integer scale, and returns the bounding rectangle of the drawn text.
func Draw(c *render.Canvas, x, y int, s string, scale int, col render.Color) geom.Rect {
	if scale < 1 {
		scale = 1
	}
	cx := x
	for _, r := range s {
		g := Glyph(r)
		for row := 0; row < GlyphH; row++ {
			bits := g[row]
			for colIdx := 0; colIdx < GlyphW; colIdx++ {
				if bits&(1<<(GlyphW-1-colIdx)) == 0 {
					continue
				}
				for dy := 0; dy < scale; dy++ {
					for dx := 0; dx < scale; dx++ {
						c.Blend(cx+colIdx*scale+dx, y+row*scale+dy, col)
					}
				}
			}
		}
		cx += (GlyphW + Tracking) * scale
	}
	w, h := Measure(s, scale)
	return geom.Rect{X: x, Y: y, W: w, H: h}
}

// DrawCentered renders s centred inside r and returns its bounding box.
func DrawCentered(c *render.Canvas, r geom.Rect, s string, scale int, col render.Color) geom.Rect {
	w, h := Measure(s, scale)
	return Draw(c, r.X+(r.W-w)/2, r.Y+(r.H-h)/2, s, scale, col)
}
