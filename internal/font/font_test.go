package font

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/render"
)

func countInk(c *render.Canvas) int {
	n := 0
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			if c.At(x, y).A != 0 {
				n++
			}
		}
	}
	return n
}

func TestMeasure(t *testing.T) {
	w, h := Measure("ABC", 1)
	if w != 3*(GlyphW+Tracking)-Tracking || h != GlyphH {
		t.Fatalf("measure = %dx%d", w, h)
	}
	w2, h2 := Measure("ABC", 2)
	if w2 != 2*w || h2 != 2*h {
		t.Fatalf("scale-2 measure = %dx%d, want %dx%d", w2, h2, 2*w, 2*h)
	}
	if w, h := Measure("", 1); w != 0 || h != 0 {
		t.Fatalf("empty measure = %dx%d", w, h)
	}
}

func TestDrawProducesInk(t *testing.T) {
	c := render.NewCanvas(100, 20)
	r := Draw(c, 2, 2, "OPEN", 1, render.Black)
	if countInk(c) == 0 {
		t.Fatal("drawing text produced no pixels")
	}
	w, h := Measure("OPEN", 1)
	if r != (geom.Rect{X: 2, Y: 2, W: w, H: h}) {
		t.Fatalf("returned rect %v", r)
	}
}

func TestDrawStaysInBounds(t *testing.T) {
	c := render.NewCanvas(30, 10)
	r := Draw(c, 1, 1, "HI", 1, render.Black)
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			if c.At(x, y).A != 0 && !r.Contains(geom.Pt{X: x, Y: y}) {
				t.Fatalf("ink outside returned rect at (%d,%d)", x, y)
			}
		}
	}
}

func TestLowercaseMapsToUppercase(t *testing.T) {
	if Glyph('a') != Glyph('A') {
		t.Fatal("lowercase glyph differs from uppercase")
	}
}

func TestUnknownRuneFallsBack(t *testing.T) {
	g := Glyph('关') // CJK "close" — outside the table
	if g != Glyph('�') {
		t.Fatal("unknown rune did not fall back to block glyph")
	}
	// Block glyph must be fully solid so CJK text still has ink density.
	for _, row := range g {
		if row != 0b11111 {
			t.Fatal("block glyph is not solid")
		}
	}
}

func TestDistinctLetters(t *testing.T) {
	seen := map[[GlyphH]uint8]rune{}
	for r := 'A'; r <= 'Z'; r++ {
		g := Glyph(r)
		if prev, dup := seen[g]; dup {
			t.Fatalf("glyphs for %c and %c identical", prev, r)
		}
		seen[g] = r
	}
	for r := '0'; r <= '9'; r++ {
		g := Glyph(r)
		if prev, dup := seen[g]; dup {
			t.Fatalf("glyphs for %c and %c identical", prev, r)
		}
		seen[g] = r
	}
}

func TestDrawCentered(t *testing.T) {
	c := render.NewCanvas(60, 30)
	box := geom.Rect{X: 0, Y: 0, W: 60, H: 30}
	r := DrawCentered(c, box, "OK", 2, render.White)
	cx, cy := r.Center().X, r.Center().Y
	if cx < 27 || cx > 33 || cy < 12 || cy > 18 {
		t.Fatalf("text centre at (%d,%d), want near (30,15)", cx, cy)
	}
}

func TestScaleClampedToOne(t *testing.T) {
	c := render.NewCanvas(40, 10)
	Draw(c, 0, 0, "X", 0, render.Black)
	if countInk(c) == 0 {
		t.Fatal("scale-0 draw produced nothing; want clamped to 1")
	}
}
