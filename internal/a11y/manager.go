package a11y

import (
	"time"

	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/uikit"
)

// Event is one accessibility event as delivered to a registered service:
// type, source package and simulated timestamp. Deliberately no view object —
// the isolation boundary of real AS.
type Event struct {
	Type    EventType
	Package string
	Time    time.Duration
}

// Stats counts manager activity, feeding the overhead experiments.
type Stats struct {
	// Emitted counts events raised by apps and the system.
	Emitted int
	// Delivered counts callbacks actually invoked on services.
	Delivered int
	// Coalesced counts events suppressed by per-service notification
	// delays.
	Coalesced int
	// Screenshots counts TakeScreenshot calls.
	Screenshots int
	// Gestures counts injected clicks.
	Gestures int
}

// binding is one registered service.
type binding struct {
	mask          EventType
	delay         time.Duration
	cb            func(Event)
	lastDelivered map[EventType]time.Duration
	hasDelivered  map[EventType]bool
}

// Manager is the simulated accessibility system service. It owns the screen,
// fans events out to registered services, and exposes the privileged
// operations (screenshot, overlay, gesture) that the Android AS grants.
//
// Like the rest of the simulation, Manager is single-threaded on a sim.Clock.
type Manager struct {
	clock    *sim.Clock
	screen   *uikit.Screen
	services []*binding
	stats    Stats
}

// NewManager wires a manager to a clock and a screen.
func NewManager(clock *sim.Clock, screen *uikit.Screen) *Manager {
	if clock == nil || screen == nil {
		panic("a11y: NewManager requires a clock and a screen")
	}
	return &Manager{clock: clock, screen: screen}
}

// Screen returns the screen the manager observes.
func (m *Manager) Screen() *uikit.Screen { return m.screen }

// Clock returns the simulation clock.
func (m *Manager) Clock() *sim.Clock { return m.clock }

// Stats returns a snapshot of the activity counters.
func (m *Manager) Stats() Stats { return m.stats }

// ResetStats zeroes the activity counters (used between experiment phases).
func (m *Manager) ResetStats() { m.stats = Stats{} }

// Register subscribes cb to every event type in mask. Events of the same
// type arriving within delay of the last delivered one are coalesced
// (dropped), mirroring AccessibilityServiceInfo.notificationTimeout. A zero
// delay delivers everything.
func (m *Manager) Register(mask EventType, delay time.Duration, cb func(Event)) {
	if cb == nil {
		panic("a11y: Register requires a callback")
	}
	m.services = append(m.services, &binding{
		mask:          mask,
		delay:         delay,
		cb:            cb,
		lastDelivered: make(map[EventType]time.Duration),
		hasDelivered:  make(map[EventType]bool),
	})
}

// Emit raises an accessibility event from pkg. Apps call it on every UI
// mutation; the window manager calls it on window adds/removes.
func (m *Manager) Emit(t EventType, pkg string) {
	m.stats.Emitted++
	ev := Event{Type: t, Package: pkg, Time: m.clock.Now()}
	for _, b := range m.services {
		if b.mask&t == 0 {
			continue
		}
		if b.delay > 0 && b.hasDelivered[t] && ev.Time-b.lastDelivered[t] < b.delay {
			m.stats.Coalesced++
			continue
		}
		b.lastDelivered[t] = ev.Time
		b.hasDelivered[t] = true
		m.stats.Delivered++
		b.cb(ev)
	}
}

// TakeScreenshot rasterises the current screen, the
// AccessibilityService.takeScreenshot of Android 11+. The caller owns the
// returned canvas and — per DARPA's security design — should Zero it as soon
// as inference is done.
func (m *Manager) TakeScreenshot() *render.Canvas {
	m.stats.Screenshots++
	return m.screen.Render()
}

// AddOverlay places a view tree in a system-alert overlay window at frame,
// the WindowManager.addView path of the paper's decoration module. It
// returns the window for later removal.
func (m *Manager) AddOverlay(owner string, frame geom.Rect, root *uikit.View) *uikit.Window {
	w := &uikit.Window{Owner: owner, Type: uikit.WindowOverlay, Frame: frame, Root: root}
	m.screen.AddWindow(w)
	return w
}

// RemoveOverlay removes a previously added overlay window.
func (m *Manager) RemoveOverlay(w *uikit.Window) {
	m.screen.RemoveWindow(w)
}

// DispatchClick injects a tap at p (AccessibilityService.dispatchGesture),
// used by DARPA's auto-bypass mode to click the UPO. It returns the resource
// id of the view that consumed the click, or "" when nothing did.
func (m *Manager) DispatchClick(p geom.Pt) string {
	m.stats.Gestures++
	if v := m.screen.Click(p); v != nil {
		return v.ID
	}
	return ""
}

// WindowOffset implements the decoration-calibration trick of Section IV-D:
// an unnoticeable 1x1 anchor view is added at coordinate <0,0> of the
// current (topmost) window, its on-screen location is read back
// (View.getLocationOnScreen), and the anchor is removed. The returned offset
// is the app window's displacement from the screen origin: (0,0) for
// full-screen apps, (0, statusBarHeight) for inset apps.
func (m *Manager) WindowOffset() geom.Pt {
	top := m.screen.TopWindow()
	if top == nil {
		return geom.Pt{}
	}
	anchor := &uikit.View{ID: "_darpa_anchor", Kind: uikit.KindContainer,
		Bounds: geom.Rect{X: 0, Y: 0, W: 1, H: 1}}
	if top.Root != nil {
		top.Root.Add(anchor)
		defer func() {
			// Remove the anchor again; it was the last child appended.
			top.Root.Children = top.Root.Children[:len(top.Root.Children)-1]
		}()
		var loc geom.Pt
		top.Root.Walk(geom.Pt{X: top.Frame.X, Y: top.Frame.Y}, func(v *uikit.View, abs geom.Rect) bool {
			if v == anchor {
				loc = geom.Pt{X: abs.X, Y: abs.Y}
				return false
			}
			return true
		})
		return loc
	}
	return geom.Pt{X: top.Frame.X, Y: top.Frame.Y}
}
