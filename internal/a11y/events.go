// Package a11y simulates the Android Accessibility Service (AS) surface that
// DARPA is built on: the 23 accessibility event types, subscription with a
// notification delay, real-time screenshots of the composited screen,
// system-alert overlay windows (WindowManager.addView), gesture injection,
// and the anchor-view trick used for decoration calibration.
//
// The simulation preserves the paper's two load-bearing constraints:
//
//   - Cross-app isolation: a service never receives foreign view objects.
//     It observes events (type + package only), pixels (TakeScreenshot) and
//     window geometry — exactly the API surface of real AS.
//   - Event storms: apps emit high-frequency UI-update events, so analysing
//     every event is infeasible (Section IV-B); the cut-off debounce lives
//     in the DARPA core on top of this package.
package a11y

import "fmt"

// EventType identifies one accessibility event class. The values mirror the
// bit masks of android.view.accessibility.AccessibilityEvent.
type EventType int

// The 23 accessibility event types DARPA registers for (Section V,
// "Event registration").
const (
	TypeViewClicked                  EventType = 0x00000001
	TypeViewLongClicked              EventType = 0x00000002
	TypeViewSelected                 EventType = 0x00000004
	TypeViewFocused                  EventType = 0x00000008
	TypeViewTextChanged              EventType = 0x00000010
	TypeWindowStateChanged           EventType = 0x00000020
	TypeNotificationStateChanged     EventType = 0x00000040
	TypeViewHoverEnter               EventType = 0x00000080
	TypeViewHoverExit                EventType = 0x00000100
	TypeTouchExplorationGestureStart EventType = 0x00000200
	TypeTouchExplorationGestureEnd   EventType = 0x00000400
	TypeWindowContentChanged         EventType = 0x00000800
	TypeViewScrolled                 EventType = 0x00001000
	TypeViewTextSelectionChanged     EventType = 0x00002000
	TypeAnnouncement                 EventType = 0x00004000
	TypeViewAccessibilityFocused     EventType = 0x00008000
	TypeViewAccessibilityFocusClear  EventType = 0x00010000
	TypeTouchInteractionStart        EventType = 0x00020000
	TypeTouchInteractionEnd          EventType = 0x00040000
	TypeGestureDetectionStart        EventType = 0x00080000
	TypeGestureDetectionEnd          EventType = 0x00100000
	TypeWindowsChanged               EventType = 0x00400000
	TypeViewContextClicked           EventType = 0x00800000
)

// TypeAllMask subscribes to every event type, the registration DARPA uses.
const TypeAllMask EventType = TypeViewClicked | TypeViewLongClicked |
	TypeViewSelected | TypeViewFocused | TypeViewTextChanged |
	TypeWindowStateChanged | TypeNotificationStateChanged |
	TypeViewHoverEnter | TypeViewHoverExit |
	TypeTouchExplorationGestureStart | TypeTouchExplorationGestureEnd |
	TypeWindowContentChanged | TypeViewScrolled |
	TypeViewTextSelectionChanged | TypeAnnouncement |
	TypeViewAccessibilityFocused | TypeViewAccessibilityFocusClear |
	TypeTouchInteractionStart | TypeTouchInteractionEnd |
	TypeGestureDetectionStart | TypeGestureDetectionEnd |
	TypeWindowsChanged | TypeViewContextClicked

// AllTypes lists the 23 event types in ascending mask order.
var AllTypes = []EventType{
	TypeViewClicked, TypeViewLongClicked, TypeViewSelected, TypeViewFocused,
	TypeViewTextChanged, TypeWindowStateChanged, TypeNotificationStateChanged,
	TypeViewHoverEnter, TypeViewHoverExit, TypeTouchExplorationGestureStart,
	TypeTouchExplorationGestureEnd, TypeWindowContentChanged, TypeViewScrolled,
	TypeViewTextSelectionChanged, TypeAnnouncement, TypeViewAccessibilityFocused,
	TypeViewAccessibilityFocusClear, TypeTouchInteractionStart,
	TypeTouchInteractionEnd, TypeGestureDetectionStart, TypeGestureDetectionEnd,
	TypeWindowsChanged, TypeViewContextClicked,
}

var typeNames = map[EventType]string{
	TypeViewClicked:                  "TYPE_VIEW_CLICKED",
	TypeViewLongClicked:              "TYPE_VIEW_LONG_CLICKED",
	TypeViewSelected:                 "TYPE_VIEW_SELECTED",
	TypeViewFocused:                  "TYPE_VIEW_FOCUSED",
	TypeViewTextChanged:              "TYPE_VIEW_TEXT_CHANGED",
	TypeWindowStateChanged:           "TYPE_WINDOW_STATE_CHANGED",
	TypeNotificationStateChanged:     "TYPE_NOTIFICATION_STATE_CHANGED",
	TypeViewHoverEnter:               "TYPE_VIEW_HOVER_ENTER",
	TypeViewHoverExit:                "TYPE_VIEW_HOVER_EXIT",
	TypeTouchExplorationGestureStart: "TYPE_TOUCH_EXPLORATION_GESTURE_START",
	TypeTouchExplorationGestureEnd:   "TYPE_TOUCH_EXPLORATION_GESTURE_END",
	TypeWindowContentChanged:         "TYPE_WINDOW_CONTENT_CHANGED",
	TypeViewScrolled:                 "TYPE_VIEW_SCROLLED",
	TypeViewTextSelectionChanged:     "TYPE_VIEW_TEXT_SELECTION_CHANGED",
	TypeAnnouncement:                 "TYPE_ANNOUNCEMENT",
	TypeViewAccessibilityFocused:     "TYPE_VIEW_ACCESSIBILITY_FOCUSED",
	TypeViewAccessibilityFocusClear:  "TYPE_VIEW_ACCESSIBILITY_FOCUS_CLEARED",
	TypeTouchInteractionStart:        "TYPE_TOUCH_INTERACTION_START",
	TypeTouchInteractionEnd:          "TYPE_TOUCH_INTERACTION_END",
	TypeGestureDetectionStart:        "TYPE_GESTURE_DETECTION_START",
	TypeGestureDetectionEnd:          "TYPE_GESTURE_DETECTION_END",
	TypeWindowsChanged:               "TYPE_WINDOWS_CHANGED",
	TypeViewContextClicked:           "TYPE_VIEW_CONTEXT_CLICKED",
}

// String returns the Android constant name for the event type.
func (t EventType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE_UNKNOWN(0x%08x)", int(t))
}
