package a11y

import (
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/uikit"
)

func newEnv() (*sim.Clock, *uikit.Screen, *Manager) {
	clock := sim.NewClock(1)
	screen := uikit.NewScreen(100, 160)
	return clock, screen, NewManager(clock, screen)
}

func TestAllTypesCount(t *testing.T) {
	if len(AllTypes) != 23 {
		t.Fatalf("paper registers 23 event types, package defines %d", len(AllTypes))
	}
	seen := map[EventType]bool{}
	for _, et := range AllTypes {
		if seen[et] {
			t.Fatalf("duplicate event type %v", et)
		}
		seen[et] = true
		if TypeAllMask&et == 0 {
			t.Fatalf("%v missing from TypeAllMask", et)
		}
	}
}

func TestEventCodeMatchesPaper(t *testing.T) {
	// Section V: "the event TYPE_WINDOWS_CHANGED corresponds to code 0x00400000".
	if TypeWindowsChanged != 0x00400000 {
		t.Fatalf("TYPE_WINDOWS_CHANGED = %#x, want 0x00400000", int(TypeWindowsChanged))
	}
	if TypeWindowContentChanged != 0x800 {
		t.Fatalf("TYPE_WINDOW_CONTENT_CHANGED = %#x, want 0x800", int(TypeWindowContentChanged))
	}
}

func TestTypeString(t *testing.T) {
	if TypeViewFocused.String() != "TYPE_VIEW_FOCUSED" {
		t.Fatalf("got %q", TypeViewFocused.String())
	}
	if EventType(0x40000000).String() == "" {
		t.Fatal("unknown type should still format")
	}
}

func TestRegisterMaskFiltering(t *testing.T) {
	_, _, m := newEnv()
	var got []EventType
	m.Register(TypeWindowContentChanged|TypeViewClicked, 0, func(e Event) {
		got = append(got, e.Type)
	})
	m.Emit(TypeWindowContentChanged, "a")
	m.Emit(TypeViewScrolled, "a") // not subscribed
	m.Emit(TypeViewClicked, "a")
	if len(got) != 2 || got[0] != TypeWindowContentChanged || got[1] != TypeViewClicked {
		t.Fatalf("delivered %v", got)
	}
	st := m.Stats()
	if st.Emitted != 3 || st.Delivered != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestNotificationDelayCoalesces(t *testing.T) {
	clock, _, m := newEnv()
	n := 0
	m.Register(TypeWindowContentChanged, 200*time.Millisecond, func(Event) { n++ })
	emitAt := func(at time.Duration) {
		clock.RunUntil(at)
		m.Emit(TypeWindowContentChanged, "a")
	}
	emitAt(0)                      // delivered
	emitAt(50 * time.Millisecond)  // coalesced
	emitAt(100 * time.Millisecond) // coalesced
	emitAt(250 * time.Millisecond) // delivered (>=200ms after last delivery)
	if n != 2 {
		t.Fatalf("delivered %d events, want 2", n)
	}
	if m.Stats().Coalesced != 2 {
		t.Fatalf("coalesced = %d, want 2", m.Stats().Coalesced)
	}
}

func TestNotificationDelayPerType(t *testing.T) {
	_, _, m := newEnv()
	n := 0
	m.Register(TypeAllMask, time.Second, func(Event) { n++ })
	m.Emit(TypeWindowContentChanged, "a")
	m.Emit(TypeViewScrolled, "a") // different type: not coalesced
	if n != 2 {
		t.Fatalf("delivered %d, want 2 (delay is per event type)", n)
	}
}

func TestMultipleServices(t *testing.T) {
	_, _, m := newEnv()
	a, b := 0, 0
	m.Register(TypeAllMask, 0, func(Event) { a++ })
	m.Register(TypeViewClicked, 0, func(Event) { b++ })
	m.Emit(TypeViewClicked, "x")
	m.Emit(TypeViewScrolled, "x")
	if a != 2 || b != 1 {
		t.Fatalf("a=%d b=%d", a, b)
	}
}

func TestTakeScreenshotSeesScreen(t *testing.T) {
	_, screen, m := newEnv()
	root := &uikit.View{Kind: uikit.KindContainer, Bounds: geom.Rect{W: 100, H: 100}, Color: render.Red}
	screen.AddWindow(&uikit.Window{Owner: "a", Type: uikit.WindowApp, Frame: geom.Rect{W: 100, H: 100}, Root: root})
	shot := m.TakeScreenshot()
	if shot.At(50, 50) != render.Red {
		t.Fatalf("screenshot pixel = %v", shot.At(50, 50))
	}
	if m.Stats().Screenshots != 1 {
		t.Fatal("screenshot not counted")
	}
}

func TestOverlayLifecycle(t *testing.T) {
	_, screen, m := newEnv()
	ol := m.AddOverlay("darpa", geom.Rect{X: 10, Y: 10, W: 20, H: 20},
		&uikit.View{Kind: uikit.KindImage, Bounds: geom.Rect{W: 20, H: 20}, Color: render.Green})
	if got := screen.Render().At(15, 15); got != render.Green {
		t.Fatalf("overlay not rendered: %v", got)
	}
	m.RemoveOverlay(ol)
	if got := screen.Render().At(15, 15); got == render.Green {
		t.Fatal("overlay still rendered after removal")
	}
}

func TestDispatchClick(t *testing.T) {
	_, screen, m := newEnv()
	clicked := false
	root := &uikit.View{Kind: uikit.KindContainer, Bounds: geom.Rect{W: 100, H: 100}}
	root.Add(&uikit.View{ID: "upo_close", Kind: uikit.KindButton,
		Bounds: geom.Rect{X: 80, Y: 5, W: 12, H: 12}, Clickable: true,
		OnClick: func() { clicked = true }})
	screen.AddWindow(&uikit.Window{Owner: "a", Type: uikit.WindowApp, Frame: geom.Rect{W: 100, H: 100}, Root: root})
	if id := m.DispatchClick(geom.Pt{X: 85, Y: 10}); id != "upo_close" || !clicked {
		t.Fatalf("DispatchClick returned %q, clicked=%v", id, clicked)
	}
	if id := m.DispatchClick(geom.Pt{X: 50, Y: 90}); id != "" {
		t.Fatalf("empty area click returned %q", id)
	}
	if m.Stats().Gestures != 2 {
		t.Fatalf("gestures = %d", m.Stats().Gestures)
	}
}

func TestWindowOffsetFullScreen(t *testing.T) {
	_, screen, m := newEnv()
	screen.AddWindow(&uikit.Window{Owner: "a", Type: uikit.WindowApp,
		Frame: screen.Bounds(),
		Root:  &uikit.View{Kind: uikit.KindContainer, Bounds: geom.Rect{W: 100, H: 160}}})
	if off := m.WindowOffset(); off != (geom.Pt{}) {
		t.Fatalf("full-screen offset = %v, want (0,0)", off)
	}
}

func TestWindowOffsetInsetApp(t *testing.T) {
	_, screen, m := newEnv()
	frame := screen.ContentFrame()
	screen.AddWindow(&uikit.Window{Owner: "a", Type: uikit.WindowApp, Frame: frame,
		Root: &uikit.View{Kind: uikit.KindContainer, Bounds: geom.Rect{W: frame.W, H: frame.H}}})
	off := m.WindowOffset()
	if off != (geom.Pt{X: 0, Y: frame.Y}) {
		t.Fatalf("inset offset = %v, want (0,%d)", off, frame.Y)
	}
}

func TestWindowOffsetRemovesAnchor(t *testing.T) {
	_, screen, m := newEnv()
	root := &uikit.View{Kind: uikit.KindContainer, Bounds: geom.Rect{W: 100, H: 100}}
	screen.AddWindow(&uikit.Window{Owner: "a", Type: uikit.WindowApp, Frame: geom.Rect{W: 100, H: 100}, Root: root})
	m.WindowOffset()
	if len(root.Children) != 0 {
		t.Fatalf("anchor view leaked: %d children", len(root.Children))
	}
}

func TestWindowOffsetNoWindows(t *testing.T) {
	_, _, m := newEnv()
	if off := m.WindowOffset(); off != (geom.Pt{}) {
		t.Fatalf("offset with no windows = %v", off)
	}
}

func TestWindowOffsetSkipsOverlay(t *testing.T) {
	_, screen, m := newEnv()
	frame := screen.ContentFrame()
	screen.AddWindow(&uikit.Window{Owner: "a", Type: uikit.WindowApp, Frame: frame,
		Root: &uikit.View{Kind: uikit.KindContainer, Bounds: geom.Rect{W: frame.W, H: frame.H}}})
	m.AddOverlay("darpa", geom.Rect{X: 5, Y: 5, W: 10, H: 10},
		&uikit.View{Kind: uikit.KindImage, Bounds: geom.Rect{W: 10, H: 10}})
	// The offset must be computed against the app window, not our own overlay.
	if off := m.WindowOffset(); off != (geom.Pt{X: 0, Y: frame.Y}) {
		t.Fatalf("offset = %v, want app window offset (0,%d)", off, frame.Y)
	}
}

func TestResetStats(t *testing.T) {
	_, _, m := newEnv()
	m.Emit(TypeViewClicked, "a")
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatalf("stats after reset: %+v", m.Stats())
	}
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register(nil) did not panic")
		}
	}()
	_, _, m := newEnv()
	m.Register(TypeAllMask, 0, nil)
}
