// Package faults is the deterministic fault-injection layer: a seeded Plan
// decides, per named stage and per call, whether to inject an error, a
// latency spike, a corrupted result, or a panic, and the Detector wrapper
// applies those decisions at the detector seam. The layer exists so the
// resilience machinery (detect.WithRetry, detect.WithFallback, the Batcher's
// poison-item isolation, core's degraded mode) can be exercised end-to-end
// under failure rates the real fleet would see, with runs that replay
// exactly from a seed.
//
// Determinism contract: for a fixed seed and a fixed sequence of Decide
// calls, the injected fault sequence is identical run to run. Concurrent
// callers interleave their Decide calls nondeterministically, so a
// multi-goroutine run replays statistically (same rates, same totals within
// scheduling noise) rather than call-for-call; the chaos tests pin invariants
// that hold either way.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the error injected by Kind Error rules that carry no
// explicit error of their own. Resilience layers treat it like any other
// backend failure; tests recognise it with errors.Is.
var ErrInjected = errors.New("faults: injected error")

// Kind enumerates the failure modes the injector can produce.
type Kind int

const (
	// Error makes the faulted call return an error (ErrInjected unless the
	// rule carries its own). On seams without an error channel the wrapper
	// degrades the call instead — see Detector.PredictTensor.
	Error Kind = iota
	// Latency delays the call by the rule's Latency before running it
	// normally: a slow success, not a failure.
	Latency
	// Corrupt lets the call run and then damages its result (NaN boxes,
	// out-of-range scores), modelling a backend that returns garbage rather
	// than failing loudly.
	Corrupt
	// Panic makes the faulted call panic, modelling the in-process crash a
	// bad screen or a broken backend build would cause.
	Panic
	numKinds
)

var kindNames = [numKinds]string{"error", "latency", "corrupt", "panic"}

// String returns the kind's short name.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return "unknown"
	}
	return kindNames[k]
}

// Rule describes one injector: which stage it targets, which failure mode it
// produces, and how often it fires.
type Rule struct {
	// Stage targets the rule at one named stage; empty matches every stage.
	Stage string
	// Kind is the failure mode to inject.
	Kind Kind
	// Rate is the probability per matching call, drawn from the plan's
	// seeded RNG. Ignored when Every is set.
	Rate float64
	// Every, when positive, fires the rule deterministically on every Nth
	// matching call (calls N, 2N, 3N, ... of the stage) instead of sampling
	// Rate — the pattern-targeted mode for reproducing "every 37th screen
	// kills the backend" scenarios exactly.
	Every int
	// Latency is the injected delay for Latency rules.
	Latency time.Duration
	// Err overrides ErrInjected for Error rules.
	Err error
}

// Fault is one decided injection, ready to apply.
type Fault struct {
	Kind    Kind
	Latency time.Duration
	Err     error
}

// Plan decides fault injection deterministically from a seed. The zero
// value and the nil plan inject nothing. Safe for concurrent use.
type Plan struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rules    []Rule
	calls    map[string]int
	injected [numKinds]int
}

// NewPlan builds a plan over the given rules. Rules are evaluated in order;
// the first one that fires wins the call.
func NewPlan(seed int64, rules ...Rule) *Plan {
	return &Plan{
		rng:   rand.New(rand.NewSource(seed)),
		rules: rules,
		calls: map[string]int{},
	}
}

// Decide records one call of the named stage and returns the fault to
// inject, if any. A nil plan never injects.
func (p *Plan) Decide(stage string) (Fault, bool) {
	if p == nil {
		return Fault{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls[stage]++
	n := p.calls[stage]
	for _, r := range p.rules {
		if r.Stage != "" && r.Stage != stage {
			continue
		}
		fire := false
		if r.Every > 0 {
			fire = n%r.Every == 0
		} else if r.Rate > 0 {
			fire = p.rng.Float64() < r.Rate
		}
		if !fire {
			continue
		}
		p.injected[r.Kind]++
		f := Fault{Kind: r.Kind, Latency: r.Latency, Err: r.Err}
		if f.Kind == Error && f.Err == nil {
			f.Err = ErrInjected
		}
		return f, true
	}
	return Fault{}, false
}

// Calls reports how many Decide calls the stage has seen. A nil plan has
// seen none.
func (p *Plan) Calls(stage string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls[stage]
}

// Injected reports how many faults of the kind the plan has decided.
func (p *Plan) Injected(k Kind) int {
	if p == nil || k < 0 || k >= numKinds {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected[k]
}

// TotalInjected reports how many faults of any kind the plan has decided.
func (p *Plan) TotalInjected() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, n := range p.injected {
		total += n
	}
	return total
}

// String summarises injection activity for logs.
func (p *Plan) String() string {
	if p == nil {
		return "no fault plan"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for stage := range p.calls {
		total += p.calls[stage]
	}
	return fmt.Sprintf("faults: %d calls, injected %d errors, %d latency spikes, %d corruptions, %d panics",
		total, p.injected[Error], p.injected[Latency], p.injected[Corrupt], p.injected[Panic])
}
