package faults

import (
	"context"
	"math"
	"time"

	"repro/internal/detect"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Detector injects a plan's faults at the detector seam. It implements every
// surface the seam offers (plain, batch, and both ctx variants), so it drops
// in anywhere a backend fits — typically innermost, under the resilience
// middleware it exists to exercise:
//
//	chaos := faults.Wrap(model, plan)
//	d := detect.WithFallback(opts, detect.WithRetry(chaos, retryOpts), heuristic)
//
// One Decide is consumed per inference call (a batch counts as one call of
// the stage, mirroring how one forward serves the whole batch).
type Detector struct {
	inner detect.Detector
	plan  *Plan
	stage string
}

// The injector preserves every seam of the backend it wraps.
var (
	_ detect.Detector              = (*Detector)(nil)
	_ detect.BatchPredictor        = (*Detector)(nil)
	_ detect.ContextPredictor      = (*Detector)(nil)
	_ detect.ContextBatchPredictor = (*Detector)(nil)
)

// Wrap injects plan's faults around d, using d's name as the plan stage.
func Wrap(d detect.Detector, plan *Plan) *Detector {
	return WrapStage(d, plan, d.Name())
}

// WrapStage is Wrap with an explicit stage name, for plans that target one
// copy of a backend among several (e.g. only the primary of a fallback
// chain).
func WrapStage(d detect.Detector, plan *Plan, stage string) *Detector {
	return &Detector{inner: d, plan: plan, stage: stage}
}

// Name reports the inner backend's name: an injected backend still shows up
// as itself in tables and logs.
func (f *Detector) Name() string { return f.inner.Name() }

// sleep waits out an injected latency spike, honouring a cancellable
// context the way a genuinely slow backend under the ctx seam would.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CorruptDetections returns a damaged copy of dets: the first detection's
// box and score become NaN, and a detection with a negative-size,
// astronomically placed box is appended. The damage is deterministic, and
// detect.ValidDetections rejects it — which is exactly what lets retry and
// fallback treat a corrupt result as a failure.
func CorruptDetections(dets []metrics.Detection) []metrics.Detection {
	out := append([]metrics.Detection(nil), dets...)
	nan := math.NaN()
	if len(out) > 0 {
		out[0].B.X = nan
		out[0].Score = nan
	}
	out = append(out, metrics.Detection{
		B:     geom.BoxF{X: 1e18, Y: nan, W: -4, H: math.Inf(1)},
		Score: 2,
	})
	return out
}

// PredictTensorCtx decides one injection and applies it: Error returns the
// fault's error, Panic panics, Latency delays then delegates, Corrupt
// delegates then damages the result. No fault means a transparent delegate.
func (f *Detector) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, conf float64) ([]metrics.Detection, error) {
	fault, ok := f.plan.Decide(f.stage)
	if !ok {
		return detect.Predict(ctx, f.inner, x, n, conf)
	}
	switch fault.Kind {
	case Error:
		return nil, fault.Err
	case Panic:
		panic("faults: injected panic at stage " + f.stage)
	case Latency:
		if err := sleep(ctx, fault.Latency); err != nil {
			return nil, err
		}
		return detect.Predict(ctx, f.inner, x, n, conf)
	case Corrupt:
		dets, err := detect.Predict(ctx, f.inner, x, n, conf)
		if err != nil {
			return nil, err
		}
		return CorruptDetections(dets), nil
	}
	return detect.Predict(ctx, f.inner, x, n, conf)
}

// PredictBatchCtx is the batched counterpart: one decision covers the whole
// batch (one forward serves it), and a Corrupt fault damages item 0 — the
// partial-batch damage the Batcher's poison isolation must contain.
func (f *Detector) PredictBatchCtx(ctx context.Context, x *tensor.Tensor, conf float64) ([][]metrics.Detection, error) {
	fault, ok := f.plan.Decide(f.stage)
	if !ok {
		return detect.PredictBatchCtx(ctx, f.inner, x, conf)
	}
	switch fault.Kind {
	case Error:
		return nil, fault.Err
	case Panic:
		panic("faults: injected panic at stage " + f.stage)
	case Latency:
		if err := sleep(ctx, fault.Latency); err != nil {
			return nil, err
		}
		return detect.PredictBatchCtx(ctx, f.inner, x, conf)
	case Corrupt:
		out, err := detect.PredictBatchCtx(ctx, f.inner, x, conf)
		if err != nil || len(out) == 0 {
			return out, err
		}
		out[0] = CorruptDetections(out[0])
		return out, nil
	}
	return detect.PredictBatchCtx(ctx, f.inner, x, conf)
}

// PredictTensor is the legacy seam, which has no error channel: an Error
// fault degrades to an empty result (the silent failure mode a legacy caller
// would actually observe), a Panic fault still panics, and Latency/Corrupt
// behave as on the ctx path. Resilient stacks call the ctx seam and never
// hit the degraded branch.
func (f *Detector) PredictTensor(x *tensor.Tensor, n int, conf float64) []metrics.Detection {
	fault, ok := f.plan.Decide(f.stage)
	if !ok {
		return f.inner.PredictTensor(x, n, conf)
	}
	switch fault.Kind {
	case Error:
		return nil
	case Panic:
		panic("faults: injected panic at stage " + f.stage)
	case Latency:
		time.Sleep(fault.Latency)
		return f.inner.PredictTensor(x, n, conf)
	case Corrupt:
		return CorruptDetections(f.inner.PredictTensor(x, n, conf))
	}
	return f.inner.PredictTensor(x, n, conf)
}

// PredictBatch mirrors PredictTensor for the legacy batch seam: an Error
// fault returns nil (no per-item results at all), everything else as above.
func (f *Detector) PredictBatch(x *tensor.Tensor, conf float64) [][]metrics.Detection {
	fault, ok := f.plan.Decide(f.stage)
	if !ok {
		return detect.PredictBatch(f.inner, x, conf)
	}
	switch fault.Kind {
	case Error:
		return nil
	case Panic:
		panic("faults: injected panic at stage " + f.stage)
	case Latency:
		time.Sleep(fault.Latency)
		return detect.PredictBatch(f.inner, x, conf)
	case Corrupt:
		out := detect.PredictBatch(f.inner, x, conf)
		if len(out) > 0 {
			out[0] = CorruptDetections(out[0])
		}
		return out
	}
	return detect.PredictBatch(f.inner, x, conf)
}
