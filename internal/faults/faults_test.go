package faults

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// stubBackend is a healthy detector answering a fixed detection set on every
// seam, so the injector's behaviour is the only variable under test.
type stubBackend struct {
	dets  []metrics.Detection
	calls int
}

func (s *stubBackend) Name() string { return "stub" }

func (s *stubBackend) PredictTensor(_ *tensor.Tensor, _ int, _ float64) []metrics.Detection {
	s.calls++
	return append([]metrics.Detection(nil), s.dets...)
}

func (s *stubBackend) PredictBatch(x *tensor.Tensor, _ float64) [][]metrics.Detection {
	s.calls++
	out := make([][]metrics.Detection, x.Shape[0])
	for i := range out {
		out[i] = append([]metrics.Detection(nil), s.dets...)
	}
	return out
}

func stubDets() []metrics.Detection {
	return []metrics.Detection{
		{Class: dataset.ClassUPO, B: geom.BoxF{X: 10, Y: 20, W: 30, H: 40}, Score: 0.9},
		{Class: dataset.ClassAGO, B: geom.BoxF{X: 1, Y: 2, W: 3, H: 4}, Score: 0.5},
	}
}

func smallTensor(n int) *tensor.Tensor {
	x := tensor.New(n, 1, 2, 2)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	return x
}

// decideSeq replays n Decide calls against a fresh plan built by mk.
func decideSeq(mk func() *Plan, stage string, n int) []Kind {
	p := mk()
	out := make([]Kind, 0, n)
	for i := 0; i < n; i++ {
		if f, ok := p.Decide(stage); ok {
			out = append(out, f.Kind)
		} else {
			out = append(out, Kind(-1))
		}
	}
	return out
}

func TestPlanDeterministicReplay(t *testing.T) {
	mk := func() *Plan {
		return NewPlan(7,
			Rule{Kind: Panic, Every: 13},
			Rule{Kind: Error, Rate: 0.3},
			Rule{Kind: Corrupt, Rate: 0.1},
		)
	}
	a := decideSeq(mk, "backend", 500)
	b := decideSeq(mk, "backend", 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at call %d: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed must produce a different sequence (overwhelmingly
	// likely over 500 draws at rate 0.3).
	c := decideSeq(func() *Plan {
		return NewPlan(8,
			Rule{Kind: Panic, Every: 13},
			Rule{Kind: Error, Rate: 0.3},
			Rule{Kind: Corrupt, Rate: 0.1},
		)
	}, "backend", 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 7 and 8 produced identical 500-call sequences")
	}
}

func TestEveryPatternFiresOnExactCalls(t *testing.T) {
	p := NewPlan(1, Rule{Kind: Panic, Every: 3})
	for call := 1; call <= 12; call++ {
		_, fired := p.Decide("s")
		want := call%3 == 0
		if fired != want {
			t.Fatalf("call %d: fired=%v, want %v", call, fired, want)
		}
	}
	if got := p.Injected(Panic); got != 4 {
		t.Fatalf("Injected(Panic) = %d, want 4", got)
	}
	if got := p.Calls("s"); got != 12 {
		t.Fatalf("Calls = %d, want 12", got)
	}
}

func TestRateBounds(t *testing.T) {
	always := NewPlan(1, Rule{Kind: Error, Rate: 1})
	for i := 0; i < 50; i++ {
		if _, fired := always.Decide("s"); !fired {
			t.Fatalf("rate 1 did not fire on call %d", i+1)
		}
	}
	never := NewPlan(1, Rule{Kind: Error, Rate: 0})
	for i := 0; i < 50; i++ {
		if _, fired := never.Decide("s"); fired {
			t.Fatalf("rate 0 fired on call %d", i+1)
		}
	}
	empty := NewPlan(1)
	if _, fired := empty.Decide("s"); fired {
		t.Fatalf("plan with no rules fired")
	}
}

func TestRateApproximatesTarget(t *testing.T) {
	p := NewPlan(42, Rule{Kind: Error, Rate: 0.3})
	const n = 2000
	for i := 0; i < n; i++ {
		p.Decide("s")
	}
	got := float64(p.Injected(Error)) / n
	if got < 0.25 || got > 0.35 {
		t.Fatalf("rate 0.3 injected %.3f of calls", got)
	}
}

func TestStageTargeting(t *testing.T) {
	p := NewPlan(1,
		Rule{Stage: "primary", Kind: Error, Rate: 1},
		Rule{Stage: "", Kind: Corrupt, Every: 2},
	)
	if f, ok := p.Decide("primary"); !ok || f.Kind != Error {
		t.Fatalf("primary call 1: got %+v ok=%v, want Error", f, ok)
	}
	// Stage "other" only matches the wildcard rule, which fires on its own
	// call counter: the first "other" call is call 1, so Every:2 waits.
	if _, ok := p.Decide("other"); ok {
		t.Fatalf("other call 1 fired; wildcard Every:2 should wait for call 2")
	}
	if f, ok := p.Decide("other"); !ok || f.Kind != Corrupt {
		t.Fatalf("other call 2: got %+v ok=%v, want Corrupt", f, ok)
	}
	if p.Calls("primary") != 1 || p.Calls("other") != 2 {
		t.Fatalf("per-stage call counts: primary=%d other=%d", p.Calls("primary"), p.Calls("other"))
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	p := NewPlan(1,
		Rule{Kind: Panic, Every: 2},
		Rule{Kind: Error, Rate: 1},
	)
	if f, _ := p.Decide("s"); f.Kind != Error {
		t.Fatalf("call 1: got %v, want Error (panic rule idle)", f.Kind)
	}
	if f, _ := p.Decide("s"); f.Kind != Panic {
		t.Fatalf("call 2: got %v, want Panic (listed first)", f.Kind)
	}
}

func TestErrorRuleDefaultsToErrInjected(t *testing.T) {
	p := NewPlan(1, Rule{Kind: Error, Rate: 1})
	f, _ := p.Decide("s")
	if !errors.Is(f.Err, ErrInjected) {
		t.Fatalf("fault error = %v, want ErrInjected", f.Err)
	}
	custom := errors.New("boom")
	p2 := NewPlan(1, Rule{Kind: Error, Rate: 1, Err: custom})
	f2, _ := p2.Decide("s")
	if !errors.Is(f2.Err, custom) {
		t.Fatalf("fault error = %v, want custom", f2.Err)
	}
}

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if _, ok := p.Decide("s"); ok {
		t.Fatalf("nil plan injected")
	}
	if p.Calls("s") != 0 || p.Injected(Error) != 0 || p.TotalInjected() != 0 {
		t.Fatalf("nil plan reported activity")
	}
	if got := p.String(); !strings.Contains(got, "no fault plan") {
		t.Fatalf("nil plan String = %q", got)
	}
}

func TestWrapperTransparentWithoutFaults(t *testing.T) {
	inner := &stubBackend{dets: stubDets()}
	d := Wrap(inner, NewPlan(1)) // no rules: never fires
	x := smallTensor(2)

	got, err := d.PredictTensorCtx(context.Background(), x, 0, 0.5)
	if err != nil {
		t.Fatalf("PredictTensorCtx: %v", err)
	}
	want := stubDets()
	if len(got) != len(want) {
		t.Fatalf("got %d detections, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("detection %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if d.Name() != "stub" {
		t.Fatalf("Name = %q, want stub", d.Name())
	}
	if out := d.PredictBatch(x, 0.5); len(out) != 2 {
		t.Fatalf("PredictBatch: %d items, want 2", len(out))
	}
}

func TestWrapperErrorFault(t *testing.T) {
	inner := &stubBackend{dets: stubDets()}
	d := WrapStage(inner, NewPlan(1, Rule{Kind: Error, Rate: 1}), "backend")
	x := smallTensor(1)

	if _, err := d.PredictTensorCtx(context.Background(), x, 0, 0.5); !errors.Is(err, ErrInjected) {
		t.Fatalf("ctx seam error = %v, want ErrInjected", err)
	}
	if _, err := d.PredictBatchCtx(context.Background(), x, 0.5); !errors.Is(err, ErrInjected) {
		t.Fatalf("ctx batch seam error = %v, want ErrInjected", err)
	}
	if inner.calls != 0 {
		t.Fatalf("inner ran %d times under an error fault", inner.calls)
	}
	// Legacy seams have no error channel: the fault degrades to nil.
	if dets := d.PredictTensor(x, 0, 0.5); dets != nil {
		t.Fatalf("legacy seam returned %v under an error fault", dets)
	}
	if out := d.PredictBatch(x, 0.5); out != nil {
		t.Fatalf("legacy batch seam returned %v under an error fault", out)
	}
}

func TestWrapperPanicFault(t *testing.T) {
	inner := &stubBackend{dets: stubDets()}
	d := WrapStage(inner, NewPlan(1, Rule{Kind: Panic, Rate: 1}), "backend")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic")
		}
		if msg, _ := r.(string); !strings.Contains(msg, "injected panic") {
			t.Fatalf("panic value %v", r)
		}
	}()
	d.PredictTensorCtx(context.Background(), smallTensor(1), 0, 0.5)
}

func TestWrapperLatencyFault(t *testing.T) {
	inner := &stubBackend{dets: stubDets()}
	spike := 20 * time.Millisecond
	d := WrapStage(inner, NewPlan(1, Rule{Kind: Latency, Rate: 1, Latency: spike}), "backend")

	start := time.Now()
	dets, err := d.PredictTensorCtx(context.Background(), smallTensor(1), 0, 0.5)
	if err != nil || len(dets) != 2 {
		t.Fatalf("latency fault should still succeed: dets=%v err=%v", dets, err)
	}
	if el := time.Since(start); el < spike {
		t.Fatalf("call returned in %v, want >= %v", el, spike)
	}

	// A context cancelled mid-spike aborts the wait without running the
	// backend.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	before := inner.calls
	if _, err := d.PredictTensorCtx(ctx, smallTensor(1), 0, 0.5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled spike error = %v", err)
	}
	if inner.calls != before {
		t.Fatalf("backend ran despite the spike being cancelled")
	}
}

func TestWrapperCorruptFault(t *testing.T) {
	inner := &stubBackend{dets: stubDets()}
	d := WrapStage(inner, NewPlan(1, Rule{Kind: Corrupt, Rate: 1}), "backend")

	dets, err := d.PredictTensorCtx(context.Background(), smallTensor(1), 0, 0.5)
	if err != nil {
		t.Fatalf("corrupt fault should not error: %v", err)
	}
	if len(dets) != 3 {
		t.Fatalf("corrupted result has %d detections, want 3 (2 + appended garbage)", len(dets))
	}
	if !math.IsNaN(dets[0].B.X) || !math.IsNaN(dets[0].Score) {
		t.Fatalf("first detection not NaN-damaged: %+v", dets[0])
	}
	if detect.ValidDetections(dets) {
		t.Fatalf("ValidDetections accepted a corrupted result")
	}
	// The batch seam corrupts item 0 only.
	out, err := d.PredictBatchCtx(context.Background(), smallTensor(2), 0.5)
	if err != nil {
		t.Fatalf("batch corrupt: %v", err)
	}
	if detect.ValidDetections(out[0]) {
		t.Fatalf("batch item 0 should be corrupted")
	}
	if !detect.ValidDetections(out[1]) {
		t.Fatalf("batch item 1 should be intact")
	}
}

func TestCorruptDetectionsDoesNotMutateInput(t *testing.T) {
	orig := stubDets()
	in := append([]metrics.Detection(nil), orig...)
	CorruptDetections(in)
	for i := range in {
		if in[i] != orig[i] {
			t.Fatalf("input slice mutated at %d: %+v", i, in[i])
		}
	}
}

func TestPlanStringCounts(t *testing.T) {
	p := NewPlan(1, Rule{Kind: Error, Every: 2})
	p.Decide("s")
	p.Decide("s")
	got := p.String()
	if !strings.Contains(got, "2 calls") || !strings.Contains(got, "1 errors") {
		t.Fatalf("String = %q", got)
	}
	if p.TotalInjected() != 1 {
		t.Fatalf("TotalInjected = %d", p.TotalInjected())
	}
}
