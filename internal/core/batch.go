package core

import (
	"context"

	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/render"
	"repro/internal/yolite"
)

// DefaultAuditBatch is the chunk size AuditScreens uses when given a
// non-positive batch size.
const DefaultAuditBatch = 8

// AuditScreens batch-analyses captured screenshots offline — the app-store /
// regulator workload of the paper's Section VII discussion. Where the live
// service (Service.analyze) handles one debounce-stable screen at a time,
// an audit holds a whole catalogue of screens up front: they are stacked
// into [batchSize, 3, H, W] chunks and run through the detector's batch
// seam (detect.PredictBatch), amortising one backbone forward across every
// screen of a chunk. Detections come back per screen, scaled to that
// canvas's own coordinate system like detect.PredictCanvas.
//
// Any detect.Predictor works: backends and middleware with a native batch
// path (yolite, the int8 port, the caching/NMS/timing decorators) get the
// whole chunk in one call, everything else falls back to a per-item loop.
func AuditScreens(p detect.Predictor, shots []*render.Canvas, confThresh float64, batchSize int) [][]metrics.Detection {
	out, _ := AuditScreensCtx(context.Background(), p, shots, confThresh, batchSize)
	return out
}

// AuditScreensCtx is AuditScreens with cooperative cancellation: the context
// is checked between chunks and threaded into each chunk's forward, so a
// cancelled audit stops within roughly one conv layer instead of finishing
// the catalogue. On cancel it returns ctx.Err() along with the screens fully
// audited so far — partial results are exactly what a deadline-bounded audit
// wants to keep. A Background context is exactly AuditScreens.
func AuditScreensCtx(ctx context.Context, p detect.Predictor, shots []*render.Canvas, confThresh float64, batchSize int) ([][]metrics.Detection, error) {
	if batchSize <= 0 {
		batchSize = DefaultAuditBatch
	}
	out := make([][]metrics.Detection, 0, len(shots))
	for start := 0; start < len(shots); start += batchSize {
		chunk := shots[start:min(start+batchSize, len(shots))]
		x := yolite.CanvasesToTensor(chunk)
		res, err := detect.PredictBatchCtx(ctx, p, x, confThresh)
		if err != nil {
			return out, err
		}
		for i, dets := range res {
			sx := float64(chunk[i].W) / float64(yolite.InputW)
			sy := float64(chunk[i].H) / float64(yolite.InputH)
			for j := range dets {
				dets[j].B = dets[j].B.Scale(sx, sy)
			}
			out = append(out, dets)
		}
	}
	return out, nil
}
