package core

import (
	"testing"
	"time"

	"repro/internal/a11y"
	"repro/internal/detect"
)

func TestStageNamesAndBounds(t *testing.T) {
	want := map[Stage]string{
		StageCapture: "capture", StagePreprocess: "preprocess", StageInfer: "infer",
		StagePostprocess: "postprocess", StageAct: "act",
	}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), name)
		}
	}
	if Stage(-1).String() != "unknown" || NumStages.String() != "unknown" {
		t.Error("out-of-range stages should stringify as unknown")
	}
	if (Stats{}).Stage(Stage(-1)) != (StageStats{}) {
		t.Error("out-of-range Stage() should return zero stats")
	}
}

func TestStagesRunOncePerAnalysis(t *testing.T) {
	clock, mgr, _ := newEnv(21)
	s := Start(clock, mgr, &fakeDetector{}, Config{})
	for i := 0; i < 3; i++ {
		mgr.Emit(a11y.TypeWindowContentChanged, "app")
		clock.RunFor(time.Second)
	}
	st := s.Stats()
	if st.Analyses != 3 {
		t.Fatalf("analyses = %d", st.Analyses)
	}
	for stage := Stage(0); stage < NumStages; stage++ {
		ss := st.Stage(stage)
		if ss.Runs != 3 {
			t.Errorf("stage %v ran %d times, want 3", stage, ss.Runs)
		}
		if rec := s.Timings().Stage(stage.String()); rec.Count != 3 {
			t.Errorf("timings for %v recorded %d, want 3", stage, rec.Count)
		}
	}
}

func TestMonitorModeSkipsAllStages(t *testing.T) {
	clock, mgr, _ := newEnv(22)
	s := Start(clock, mgr, nil, Config{Mode: ModeMonitor})
	mgr.Emit(a11y.TypeWindowContentChanged, "app")
	clock.RunFor(time.Second)
	for stage := Stage(0); stage < NumStages; stage++ {
		if ss := s.Stats().Stage(stage); ss.Runs != 0 {
			t.Errorf("monitor mode ran stage %v %d times", stage, ss.Runs)
		}
	}
}

func TestCacheResultsSkipsRepeatInference(t *testing.T) {
	clock, mgr, _ := newEnv(23)
	det := &fakeDetector{}
	s := Start(clock, mgr, det, Config{CacheResults: true})
	// A static screen: every analysis sees identical pixels.
	for i := 0; i < 4; i++ {
		mgr.Emit(a11y.TypeWindowContentChanged, "app")
		clock.RunFor(time.Second)
	}
	st := s.Stats()
	if st.Analyses != 4 {
		t.Fatalf("analyses = %d", st.Analyses)
	}
	if det.calls != 1 {
		t.Fatalf("inner detector ran %d times; the result cache should absorb repeats of an unchanged screen", det.calls)
	}
	c, ok := s.Detector().(*detect.Cache)
	if !ok {
		t.Fatalf("CacheResults should install a detect.Cache, got %T", s.Detector())
	}
	if c.Hits() != 3 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 3/1", c.Hits(), c.Misses())
	}
	// Stage counters still tick for every analysis — the cache is inside
	// the infer stage, not a bypass of it.
	if ss := st.Stage(StageInfer); ss.Runs != 4 {
		t.Fatalf("infer stage ran %d times, want 4", ss.Runs)
	}
}
