// Package core implements DARPA itself — the paper's contribution: an
// accessibility-service app that (1) subscribes to all 23 accessibility
// events, (2) debounces UI-update storms with a cut-off interval ct
// (Section IV-B), (3) screenshots the stable UI and runs the ported CV
// detector, (4) calibrates coordinates with the anchor-view offset trick
// (Section IV-D / Figure 4), (5) draws decoration overlays around the
// detected AGO/UPO, and optionally (6) auto-clicks the UPO to bypass the
// dark pattern.
//
// Security hygiene follows Section IV-E: the screenshot buffer is zeroed
// ("rinsed") immediately after inference, and the service needs no
// capability beyond the accessibility surface itself.
package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/a11y"
	"repro/internal/detect"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/render"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/uikit"
	"repro/internal/yolite"
)

// Mode selects how much of the pipeline runs — the incremental rows of
// Table VII.
type Mode int

// Pipeline modes. They begin at 1 so the zero value is detectably invalid;
// Config treats 0 as ModeFull.
const (
	// ModeMonitor only subscribes to events and debounces (row
	// "Baseline + UI monitoring").
	ModeMonitor Mode = iota + 1
	// ModeDetect adds screenshots + CV inference (row "+ AUI detection").
	ModeDetect
	// ModeFull adds UI decoration (the complete DARPA).
	ModeFull
)

// Config parameterises the service. The zero value is the paper's deployed
// configuration (ct = 200ms, full pipeline, decoration only).
type Config struct {
	// Cutoff is ct: the quiet period after the last UI event before a
	// screenshot is taken. Zero means 200ms (Section VI-E).
	Cutoff time.Duration
	// NotificationDelay is the AccessibilityServiceInfo notification
	// timeout used at registration (Section V registers DARPA with 200ms).
	// It coalesces same-type event bursts before they even reach ct
	// debouncing. Zero means 0 (deliver everything); the deployed profile
	// sets it explicitly.
	NotificationDelay time.Duration
	// ConfThresh is the detector's objectness threshold. Zero means
	// yolite.DefaultConfThresh.
	ConfThresh float64
	// Mode truncates the pipeline for overhead decomposition. Zero means
	// ModeFull.
	Mode Mode
	// AutoBypass clicks the best UPO instead of only decorating — the
	// alternative option of Section IV-D.
	AutoBypass bool
	// DisableCalibration skips the anchor-view offset correction,
	// reproducing the Figure 4(a) misplacement for the ablation bench.
	DisableCalibration bool
	// UPOColor/AGOColor are the decoration colours (user-customisable per
	// Section IV-D). Zero values mean green/red.
	UPOColor, AGOColor render.Color
	// StrokeWidth is the decoration border width; zero means 3.
	StrokeWidth int
	// CacheResults wraps the detector in detect.WithResultCache so repeated
	// analyses of an unchanged screen skip inference entirely.
	CacheResults bool
	// CacheCapacity bounds the result cache (entries); zero means
	// detect.DefaultCacheCapacity. Ignored unless CacheResults is set.
	CacheCapacity int
	// Deadline bounds one analysis cycle in wall-clock time (the simulation
	// clock is virtual, but inference compute is real). When it expires the
	// detector aborts within roughly one conv layer, the cycle is counted in
	// Stats.TimedOut, and the act stage (decoration, observers, bypass) is
	// skipped. Zero means no deadline.
	Deadline time.Duration
	// BaseContext, when non-nil, parents every per-analysis context, so an
	// embedding application (the fleet simulator runs one service per
	// device) can cancel a whole service's work at once. Nil means
	// context.Background().
	BaseContext context.Context
	// Tenant, when non-empty, tags every analysis context with this serving
	// tenant identity (serve.WithTenant), so a shared serve.Batcher can
	// rate-limit, prioritise, and account this service's requests per
	// tenant. Empty leaves the context untagged, which the serving layer
	// accounts to serve.DefaultTenant.
	Tenant string
	// TenantPriority is the scheduler queue this service's requests ask
	// for. The Batcher's tenant table, when it names the tenant, overrides
	// this. Zero is serve.PriorityLive — right for interactive decoration.
	TenantPriority serve.Priority
	// RetryAttempts, when > 1, wraps the detector in detect.WithRetry with
	// that attempt bound, so transient backend failures (errors, panics,
	// corrupt results) are retried with backoff before the cycle degrades.
	RetryAttempts int
	// Fallbacks, when non-empty, chains the (possibly retried) detector
	// with these backends via detect.WithFallback: when the primary errors,
	// panics, or circuit-breaks, the cycle is served by the first healthy
	// fallback instead of degrading — e.g. quant → yolite → the frauddroid
	// view heuristic.
	Fallbacks []detect.Detector
}

func (c Config) cutoff() time.Duration {
	if c.Cutoff == 0 {
		return 200 * time.Millisecond
	}
	return c.Cutoff
}

func (c Config) confThresh() float64 {
	if c.ConfThresh == 0 {
		return yolite.DefaultConfThresh
	}
	return c.ConfThresh
}

func (c Config) mode() Mode {
	if c.Mode == 0 {
		return ModeFull
	}
	return c.Mode
}

func (c Config) upoColor() render.Color {
	if c.UPOColor.A == 0 {
		return render.Green
	}
	return c.UPOColor
}

func (c Config) agoColor() render.Color {
	if c.AGOColor.A == 0 {
		return render.Red
	}
	return c.AGOColor
}

func (c Config) strokeWidth() int {
	if c.StrokeWidth == 0 {
		return 3
	}
	return c.StrokeWidth
}

// Stats counts service activity for the overhead model.
type Stats struct {
	// EventsSeen counts accessibility callbacks received.
	EventsSeen int
	// Debounced counts callbacks that reset a pending ct timer (work
	// avoided).
	Debounced int
	// Analyses counts screenshot+inference cycles that completed.
	Analyses int
	// Superseded counts in-flight analyses cancelled before completion —
	// by a fresh accessibility event (the screen changed under the
	// detector, so the result would describe a stale UI) or by Stop.
	Superseded int
	// TimedOut counts in-flight analyses aborted by Config.Deadline.
	TimedOut int
	// Degraded counts analyses abandoned because the detector failed
	// (error, panic, or corrupt result that survived retry and fallback):
	// the cycle skips decoration instead of crashing the service — the
	// screen simply goes unprotected, which is the graceful floor.
	Degraded int
	// Retried counts extra inference attempts made by Config.RetryAttempts
	// beyond each call's first.
	Retried int
	// FellBack counts inference calls served by a Config.Fallbacks backend
	// rather than the primary detector.
	FellBack int
	// AUIFlagged counts analyses that detected at least one option.
	AUIFlagged int
	// DecorationsDrawn counts decoration views added.
	DecorationsDrawn int
	// Bypasses counts auto-clicks dispatched.
	Bypasses int
	// Rinses counts screenshot buffers zeroed after use.
	Rinses int
	// Stages holds per-stage run counts and cumulative compute time,
	// indexed by Stage.
	Stages [NumStages]StageStats
}

// Stage returns the counters for one pipeline stage.
func (s Stats) Stage(st Stage) StageStats {
	if st < 0 || st >= NumStages {
		return StageStats{}
	}
	return s.Stages[st]
}

// Analysis is one recorded detection cycle.
type Analysis struct {
	At         time.Duration
	Package    string
	Detections []metrics.Detection // screen coordinates
}

// Service is the running DARPA instance.
//
// The accessibility callbacks and analysis cycles run on the simulation
// clock's goroutine, but Stop and the read accessors are safe to call from
// any goroutine: mu guards all mutable state, and no stage work runs under
// it (so re-entrant events — a detector or observer emitting mid-cycle —
// cannot deadlock).
type Service struct {
	cfg      Config
	clock    *sim.Clock
	mgr      *a11y.Manager
	detector detect.Detector
	timings  *perfmodel.Timings

	// retrier/chain are the resilience wrappers installed by
	// Config.RetryAttempts / Config.Fallbacks, kept so Stats can surface
	// their counters; nil when the config does not ask for them.
	retrier *detect.Retrier
	chain   *detect.FallbackChain

	mu          sync.Mutex
	pending     *sim.Event
	lastPkg     string
	decorations []*uikit.Window
	stats       Stats
	log         []Analysis
	stopped     bool
	// inflightCancel/inflightDone track the analysis cycle currently
	// executing, if any: cancel aborts it cooperatively, done closes when it
	// has fully unwound. They let a fresh event supersede stale work and let
	// Stop guarantee nothing is still running when it returns.
	inflightCancel context.CancelFunc
	inflightDone   chan struct{}

	// OnAnalysis, when non-nil, observes each analysis as it happens. Set it
	// before events flow. Observers must not call Stop (Stop waits for the
	// in-flight cycle, which would be the observer's own).
	OnAnalysis func(Analysis)
}

// Start registers DARPA on the accessibility manager and returns the
// running service. detector is the ported on-device model (or any
// detect.Detector, typically built via detect.Build).
func Start(clock *sim.Clock, mgr *a11y.Manager, detector detect.Detector, cfg Config) *Service {
	if detector == nil && cfg.mode() != ModeMonitor {
		panic("core: Start requires a detector unless running monitor-only")
	}
	s := &Service{cfg: cfg, clock: clock, mgr: mgr, timings: &perfmodel.Timings{}}
	// Resilience stack, inside out: retry hugs the primary backend (its
	// transient failures are worth re-attempting), the fallback chain sits
	// above it (only a retry-exhausted primary falls through to the next
	// backend), and the result cache goes outermost so memoised screens
	// skip the whole stack — the cache never stores errors, so it cannot
	// memoise a failure.
	if detector != nil && cfg.RetryAttempts > 1 {
		s.retrier = detect.WithRetry(detector, detect.RetryOptions{
			MaxAttempts: cfg.RetryAttempts,
			Timings:     s.timings,
		})
		detector = s.retrier
	}
	if detector != nil && len(cfg.Fallbacks) > 0 {
		s.chain = detect.WithFallback(detect.FallbackOptions{Timings: s.timings},
			append([]detect.Detector{detector}, cfg.Fallbacks...)...)
		detector = s.chain
	}
	if detector != nil && cfg.CacheResults {
		detector = detect.WithResultCache(detector, cfg.CacheCapacity)
	}
	s.detector = detector
	// Event registration (Fig. 5 step 1): all 23 event types.
	mgr.Register(a11y.TypeAllMask, cfg.NotificationDelay, s.onEvent)
	return s
}

// Stats returns a snapshot of the counters. Retried and FellBack are read
// live from the resilience wrappers (they own those counts), so the
// snapshot is consistent with their Stats() at the moment of the call.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	if s.retrier != nil {
		st.Retried = s.retrier.Stats().Retries
	}
	if s.chain != nil {
		st.FellBack = s.chain.Stats().FellBack
	}
	return st
}

// Timings returns the per-stage latency recorder. The recorder is live;
// callers should treat it as read-only.
func (s *Service) Timings() *perfmodel.Timings { return s.timings }

// Detector returns the detector the service runs, including any cache
// wrapper installed by Config.CacheResults.
func (s *Service) Detector() detect.Detector { return s.detector }

// Log returns every analysis performed so far.
func (s *Service) Log() []Analysis {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Analysis, len(s.log))
	copy(out, s.log)
	return out
}

// Stop cancels pending work — including an analysis currently executing,
// which aborts cooperatively within roughly one conv layer — waits for it to
// unwind, and removes any decoration overlays. When Stop returns, no cycle
// is running and none will start; a cycle cancelled mid-flight never reaches
// the act stage, so it leaves no decorations behind. The registration itself
// stays (the simulated AS has no unregister, like a disabled service that
// ignores callbacks). Must not be called from an OnAnalysis observer.
func (s *Service) Stop() {
	s.mu.Lock()
	s.stopped = true
	if s.pending != nil {
		s.pending.Cancel()
	}
	cancel, done := s.inflightCancel, s.inflightDone
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if done != nil {
		<-done
	}
	s.clearDecorations()
}

// onEvent is the accessibility callback (Fig. 5 step 2): every UI change
// re-arms the ct timer, so analysis happens only once the UI has been quiet
// for ct — the paper's insight that AUIs must stay on screen long enough to
// be seen. An event arriving while an analysis is executing also cancels
// that analysis: the screen just changed under the detector, so its result
// would describe a UI that no longer exists (the in-flight extension of the
// same staleness argument).
func (s *Service) onEvent(e a11y.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	s.stats.EventsSeen++
	s.lastPkg = e.Package
	if s.pending != nil && !s.pending.Cancelled() {
		s.pending.Cancel()
		s.stats.Debounced++
	}
	if s.inflightCancel != nil {
		s.inflightCancel()
	}
	s.pending = s.clock.Schedule(s.cfg.cutoff(), s.analyze)
}

// beginAnalysis opens one analysis cycle: it builds the cycle's context
// (parented on Config.BaseContext, bounded by Config.Deadline) and registers
// it as the in-flight work that onEvent and Stop can cancel. The returned
// finish must run when the cycle unwinds; ok is false when the service is
// stopped.
func (s *Service) beginAnalysis() (ctx context.Context, finish func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return nil, nil, false
	}
	s.pending = nil
	base := s.cfg.BaseContext
	if base == nil {
		base = context.Background()
	}
	var cancel context.CancelFunc
	if d := s.cfg.Deadline; d > 0 {
		ctx, cancel = context.WithTimeout(base, d)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	if s.cfg.Tenant != "" {
		ctx = serve.WithTenant(ctx, serve.TenantInfo{
			ID:       serve.TenantID(s.cfg.Tenant),
			Priority: s.cfg.TenantPriority,
		})
	}
	done := make(chan struct{})
	s.inflightCancel = cancel
	s.inflightDone = done
	finish = func() {
		s.mu.Lock()
		if s.inflightDone == done {
			s.inflightCancel = nil
			s.inflightDone = nil
		}
		s.mu.Unlock()
		cancel()
		close(done)
	}
	return ctx, finish, true
}

// abandon accounts one cycle that did not complete: deadline expiries count
// as TimedOut, every other cancellation (fresh event, Stop, a cancelled
// BaseContext) as Superseded.
func (s *Service) abandon(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if errors.Is(err, context.DeadlineExceeded) {
		s.stats.TimedOut++
	} else {
		s.stats.Superseded++
	}
}

// degrade accounts one cycle whose detector failed outright (an error,
// panic, or corrupt result that survived whatever retry and fallback the
// config installed). Degraded mode is the graceful floor of the service:
// the cycle skips decoration — the screen goes unprotected this once —
// instead of crashing, and the failure is visible in Stats.Degraded and the
// "degraded" timings stage.
func (s *Service) degrade() {
	s.mu.Lock()
	s.stats.Degraded++
	s.mu.Unlock()
	s.timings.AddItems("degraded", 1)
}

// analyze runs one detection cycle (Fig. 5 steps 3-5) as an explicit
// pipeline: capture -> preprocess -> infer -> postprocess -> act. Each stage
// is individually timed into Stats.Stages and the Timings recorder. The
// cycle runs under a per-analysis context: between stages (and, inside
// inference, between conv layers) a cancel or deadline expiry aborts the
// remaining work — in particular a cancelled cycle never reaches the act
// stage, so stale detections are never drawn, reported, or clicked.
func (s *Service) analyze() {
	ctx, finish, ok := s.beginAnalysis()
	if !ok {
		return
	}
	defer finish()
	// Remove previous decorations before the screenshot so they are not
	// re-detected (Fig. 5, "remove its previous AUI decoration").
	s.clearDecorations()
	if s.cfg.mode() == ModeMonitor {
		return
	}
	shot := s.capture()
	pre := s.preprocess(shot)
	if err := ctx.Err(); err != nil {
		s.abandon(err)
		return
	}
	inf, err := s.infer(ctx, pre)
	if err == nil {
		// Catch a cancel that landed between inference finishing and now:
		// the result is already stale.
		err = ctx.Err()
	}
	if err != nil {
		// A cancellation or deadline expiry is the caller's doing and counts
		// as abandoned; anything else is the detector failing, which
		// degrades the cycle (skip decoration, keep serving) instead of
		// crashing the service.
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.abandon(err)
		} else {
			s.degrade()
		}
		return
	}
	s.mu.Lock()
	s.stats.Analyses++
	s.mu.Unlock()
	post := s.postprocess(pre, inf)
	if err := ctx.Err(); err != nil {
		s.abandon(err)
		return
	}
	s.mu.Lock()
	rec := Analysis{At: s.clock.Now(), Package: s.lastPkg, Detections: post.Detections}
	s.log = append(s.log, rec)
	s.mu.Unlock()
	s.act(rec, post)
}

// decorate draws a high-contrast border overlay around each detected option
// (Section IV-D), calibrating window coordinates with the anchor-view
// offset measured by the postprocess stage. It returns the number of
// overlays added.
func (s *Service) decorate(p PostprocessResult) int {
	added := 0
	for _, dec := range PlanDecorations(p.Detections, s.cfg.upoColor(), s.cfg.agoColor(), s.cfg.strokeWidth()) {
		r := dec.Frame
		// WindowManager.addView positions views relative to the app
		// window; the model reports screen coordinates. Calibration
		// subtracts the anchor-view offset (Figure 6 lines 8-9).
		lp := geom.Pt{X: r.X, Y: r.Y}
		if !s.cfg.DisableCalibration {
			lp = lp.Sub(p.Offset)
		}
		frame := geom.Rect{X: p.WinOrigin.X + lp.X, Y: p.WinOrigin.Y + lp.Y, W: r.W, H: r.H}
		w := s.mgr.AddOverlay("org.darpa.aui", frame, decorationView(frame, dec.Stroke, dec.Color))
		s.mu.Lock()
		s.decorations = append(s.decorations, w)
		s.stats.DecorationsDrawn++
		s.mu.Unlock()
		added++
	}
	return added
}

// decorationView builds the border view used as decoration content.
func decorationView(frame geom.Rect, width int, col render.Color) *uikit.View {
	root := &uikit.View{ID: "darpa_decoration", Kind: uikit.KindImage,
		Bounds: geom.Rect{W: frame.W, H: frame.H}}
	root.Add(
		&uikit.View{Kind: uikit.KindImage, Bounds: geom.Rect{W: frame.W, H: width}, Color: col},
		&uikit.View{Kind: uikit.KindImage, Bounds: geom.Rect{Y: frame.H - width, W: frame.W, H: width}, Color: col},
		&uikit.View{Kind: uikit.KindImage, Bounds: geom.Rect{Y: width, W: width, H: frame.H - 2*width}, Color: col},
		&uikit.View{Kind: uikit.KindImage, Bounds: geom.Rect{X: frame.W - width, Y: width, W: width, H: frame.H - 2*width}, Color: col},
	)
	return root
}

// bypass auto-clicks the detected UPO regions, highest confidence first
// (Section IV-D's "automatically sends a click event to the UPO region").
// Up to three regions are tried: a benign false positive absorbs one click
// harmlessly, while the real close button still gets hit. It returns the
// number of clicks dispatched.
func (s *Service) bypass(dets []metrics.Detection) int {
	upos := BypassTargets(dets)
	if len(upos) == 0 {
		return 0
	}
	s.mu.Lock()
	s.stats.Bypasses++
	s.mu.Unlock()
	for _, d := range upos {
		s.mgr.DispatchClick(d.B.Rect().Center())
	}
	return len(upos)
}

// clearDecorations removes every decoration overlay. The windows are
// detached from the service under the lock, then removed from the manager
// outside it (manager calls never run under mu).
func (s *Service) clearDecorations() {
	s.mu.Lock()
	ws := s.decorations
	s.decorations = nil
	s.mu.Unlock()
	for _, w := range ws {
		s.mgr.RemoveOverlay(w)
	}
}

// Decorations returns the decoration overlay windows currently on screen.
func (s *Service) Decorations() []*uikit.Window {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*uikit.Window, len(s.decorations))
	copy(out, s.decorations)
	return out
}
