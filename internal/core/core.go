// Package core implements DARPA itself — the paper's contribution: an
// accessibility-service app that (1) subscribes to all 23 accessibility
// events, (2) debounces UI-update storms with a cut-off interval ct
// (Section IV-B), (3) screenshots the stable UI and runs the ported CV
// detector, (4) calibrates coordinates with the anchor-view offset trick
// (Section IV-D / Figure 4), (5) draws decoration overlays around the
// detected AGO/UPO, and optionally (6) auto-clicks the UPO to bypass the
// dark pattern.
//
// Security hygiene follows Section IV-E: the screenshot buffer is zeroed
// ("rinsed") immediately after inference, and the service needs no
// capability beyond the accessibility surface itself.
package core

import (
	"sort"
	"time"

	"repro/internal/a11y"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/uikit"
	"repro/internal/yolite"
)

// Mode selects how much of the pipeline runs — the incremental rows of
// Table VII.
type Mode int

// Pipeline modes. They begin at 1 so the zero value is detectably invalid;
// Config treats 0 as ModeFull.
const (
	// ModeMonitor only subscribes to events and debounces (row
	// "Baseline + UI monitoring").
	ModeMonitor Mode = iota + 1
	// ModeDetect adds screenshots + CV inference (row "+ AUI detection").
	ModeDetect
	// ModeFull adds UI decoration (the complete DARPA).
	ModeFull
)

// Config parameterises the service. The zero value is the paper's deployed
// configuration (ct = 200ms, full pipeline, decoration only).
type Config struct {
	// Cutoff is ct: the quiet period after the last UI event before a
	// screenshot is taken. Zero means 200ms (Section VI-E).
	Cutoff time.Duration
	// NotificationDelay is the AccessibilityServiceInfo notification
	// timeout used at registration (Section V registers DARPA with 200ms).
	// It coalesces same-type event bursts before they even reach ct
	// debouncing. Zero means 0 (deliver everything); the deployed profile
	// sets it explicitly.
	NotificationDelay time.Duration
	// ConfThresh is the detector's objectness threshold. Zero means
	// yolite.DefaultConfThresh.
	ConfThresh float64
	// Mode truncates the pipeline for overhead decomposition. Zero means
	// ModeFull.
	Mode Mode
	// AutoBypass clicks the best UPO instead of only decorating — the
	// alternative option of Section IV-D.
	AutoBypass bool
	// DisableCalibration skips the anchor-view offset correction,
	// reproducing the Figure 4(a) misplacement for the ablation bench.
	DisableCalibration bool
	// UPOColor/AGOColor are the decoration colours (user-customisable per
	// Section IV-D). Zero values mean green/red.
	UPOColor, AGOColor render.Color
	// StrokeWidth is the decoration border width; zero means 3.
	StrokeWidth int
	// CacheResults wraps the detector in detect.WithResultCache so repeated
	// analyses of an unchanged screen skip inference entirely.
	CacheResults bool
	// CacheCapacity bounds the result cache (entries); zero means
	// detect.DefaultCacheCapacity. Ignored unless CacheResults is set.
	CacheCapacity int
}

func (c Config) cutoff() time.Duration {
	if c.Cutoff == 0 {
		return 200 * time.Millisecond
	}
	return c.Cutoff
}

func (c Config) confThresh() float64 {
	if c.ConfThresh == 0 {
		return yolite.DefaultConfThresh
	}
	return c.ConfThresh
}

func (c Config) mode() Mode {
	if c.Mode == 0 {
		return ModeFull
	}
	return c.Mode
}

func (c Config) upoColor() render.Color {
	if c.UPOColor.A == 0 {
		return render.Green
	}
	return c.UPOColor
}

func (c Config) agoColor() render.Color {
	if c.AGOColor.A == 0 {
		return render.Red
	}
	return c.AGOColor
}

func (c Config) strokeWidth() int {
	if c.StrokeWidth == 0 {
		return 3
	}
	return c.StrokeWidth
}

// Stats counts service activity for the overhead model.
type Stats struct {
	// EventsSeen counts accessibility callbacks received.
	EventsSeen int
	// Debounced counts callbacks that reset a pending ct timer (work
	// avoided).
	Debounced int
	// Analyses counts screenshot+inference cycles.
	Analyses int
	// AUIFlagged counts analyses that detected at least one option.
	AUIFlagged int
	// DecorationsDrawn counts decoration views added.
	DecorationsDrawn int
	// Bypasses counts auto-clicks dispatched.
	Bypasses int
	// Rinses counts screenshot buffers zeroed after use.
	Rinses int
	// Stages holds per-stage run counts and cumulative compute time,
	// indexed by Stage.
	Stages [NumStages]StageStats
}

// Stage returns the counters for one pipeline stage.
func (s Stats) Stage(st Stage) StageStats {
	if st < 0 || st >= NumStages {
		return StageStats{}
	}
	return s.Stages[st]
}

// Analysis is one recorded detection cycle.
type Analysis struct {
	At         time.Duration
	Package    string
	Detections []metrics.Detection // screen coordinates
}

// Service is the running DARPA instance.
type Service struct {
	cfg      Config
	clock    *sim.Clock
	mgr      *a11y.Manager
	detector detect.Detector
	timings  *perfmodel.Timings

	pending     *sim.Event
	lastPkg     string
	decorations []*uikit.Window
	stats       Stats
	log         []Analysis
	stopped     bool
	// OnAnalysis, when non-nil, observes each analysis as it happens.
	OnAnalysis func(Analysis)
}

// Start registers DARPA on the accessibility manager and returns the
// running service. detector is the ported on-device model (or any
// detect.Detector, typically built via detect.Build).
func Start(clock *sim.Clock, mgr *a11y.Manager, detector detect.Detector, cfg Config) *Service {
	if detector == nil && cfg.mode() != ModeMonitor {
		panic("core: Start requires a detector unless running monitor-only")
	}
	if detector != nil && cfg.CacheResults {
		detector = detect.WithResultCache(detector, cfg.CacheCapacity)
	}
	s := &Service{cfg: cfg, clock: clock, mgr: mgr, detector: detector,
		timings: &perfmodel.Timings{}}
	// Event registration (Fig. 5 step 1): all 23 event types.
	mgr.Register(a11y.TypeAllMask, cfg.NotificationDelay, s.onEvent)
	return s
}

// Stats returns a snapshot of the counters.
func (s *Service) Stats() Stats { return s.stats }

// Timings returns the per-stage latency recorder. The recorder is live;
// callers should treat it as read-only.
func (s *Service) Timings() *perfmodel.Timings { return s.timings }

// Detector returns the detector the service runs, including any cache
// wrapper installed by Config.CacheResults.
func (s *Service) Detector() detect.Detector { return s.detector }

// Log returns every analysis performed so far.
func (s *Service) Log() []Analysis {
	out := make([]Analysis, len(s.log))
	copy(out, s.log)
	return out
}

// Stop cancels pending work and removes any decoration overlays. The
// registration itself stays (the simulated AS has no unregister, like a
// disabled service that ignores callbacks).
func (s *Service) Stop() {
	s.stopped = true
	if s.pending != nil {
		s.pending.Cancel()
	}
	s.clearDecorations()
}

// onEvent is the accessibility callback (Fig. 5 step 2): every UI change
// re-arms the ct timer, so analysis happens only once the UI has been quiet
// for ct — the paper's insight that AUIs must stay on screen long enough to
// be seen.
func (s *Service) onEvent(e a11y.Event) {
	if s.stopped {
		return
	}
	s.stats.EventsSeen++
	s.lastPkg = e.Package
	if s.pending != nil && !s.pending.Cancelled() {
		s.pending.Cancel()
		s.stats.Debounced++
	}
	s.pending = s.clock.Schedule(s.cfg.cutoff(), s.analyze)
}

// analyze runs one detection cycle (Fig. 5 steps 3-5) as an explicit
// pipeline: capture -> preprocess -> infer -> postprocess -> act. Each stage
// is individually timed into Stats.Stages and the Timings recorder.
func (s *Service) analyze() {
	if s.stopped {
		return
	}
	s.pending = nil
	// Remove previous decorations before the screenshot so they are not
	// re-detected (Fig. 5, "remove its previous AUI decoration").
	s.clearDecorations()
	if s.cfg.mode() == ModeMonitor {
		return
	}
	shot := s.capture()
	pre := s.preprocess(shot)
	inf := s.infer(pre)
	s.stats.Analyses++
	post := s.postprocess(pre, inf)
	rec := Analysis{At: s.clock.Now(), Package: s.lastPkg, Detections: post.Detections}
	s.log = append(s.log, rec)
	s.act(rec, post)
}

// decorate draws a high-contrast border overlay around each detected option
// (Section IV-D), calibrating window coordinates with the anchor-view
// offset measured by the postprocess stage. It returns the number of
// overlays added.
func (s *Service) decorate(p PostprocessResult) int {
	added := 0
	for _, d := range p.Detections {
		r := d.B.Rect().Inset(-s.cfg.strokeWidth())
		// WindowManager.addView positions views relative to the app
		// window; the model reports screen coordinates. Calibration
		// subtracts the anchor-view offset (Figure 6 lines 8-9).
		lp := geom.Pt{X: r.X, Y: r.Y}
		if !s.cfg.DisableCalibration {
			lp = lp.Sub(p.Offset)
		}
		frame := geom.Rect{X: p.WinOrigin.X + lp.X, Y: p.WinOrigin.Y + lp.Y, W: r.W, H: r.H}
		col := s.cfg.agoColor()
		if d.Class == dataset.ClassUPO {
			col = s.cfg.upoColor()
		}
		w := s.mgr.AddOverlay("org.darpa.aui", frame, decorationView(frame, s.cfg.strokeWidth(), col))
		s.decorations = append(s.decorations, w)
		s.stats.DecorationsDrawn++
		added++
	}
	return added
}

// decorationView builds the border view used as decoration content.
func decorationView(frame geom.Rect, width int, col render.Color) *uikit.View {
	root := &uikit.View{ID: "darpa_decoration", Kind: uikit.KindImage,
		Bounds: geom.Rect{W: frame.W, H: frame.H}}
	root.Add(
		&uikit.View{Kind: uikit.KindImage, Bounds: geom.Rect{W: frame.W, H: width}, Color: col},
		&uikit.View{Kind: uikit.KindImage, Bounds: geom.Rect{Y: frame.H - width, W: frame.W, H: width}, Color: col},
		&uikit.View{Kind: uikit.KindImage, Bounds: geom.Rect{Y: width, W: width, H: frame.H - 2*width}, Color: col},
		&uikit.View{Kind: uikit.KindImage, Bounds: geom.Rect{X: frame.W - width, Y: width, W: width, H: frame.H - 2*width}, Color: col},
	)
	return root
}

// bypass auto-clicks the detected UPO regions, highest confidence first
// (Section IV-D's "automatically sends a click event to the UPO region").
// Up to three regions are tried: a benign false positive absorbs one click
// harmlessly, while the real close button still gets hit. It returns the
// number of clicks dispatched.
func (s *Service) bypass(dets []metrics.Detection) int {
	var upos []metrics.Detection
	for _, d := range dets {
		if d.Class == dataset.ClassUPO {
			upos = append(upos, d)
		}
	}
	if len(upos) == 0 {
		return 0
	}
	sort.SliceStable(upos, func(i, j int) bool { return upos[i].Score > upos[j].Score })
	if len(upos) > 3 {
		upos = upos[:3]
	}
	s.stats.Bypasses++
	for _, d := range upos {
		s.mgr.DispatchClick(d.B.Rect().Center())
	}
	return len(upos)
}

// clearDecorations removes every decoration overlay.
func (s *Service) clearDecorations() {
	for _, w := range s.decorations {
		s.mgr.RemoveOverlay(w)
	}
	s.decorations = s.decorations[:0]
}

// Decorations returns the decoration overlay windows currently on screen.
func (s *Service) Decorations() []*uikit.Window {
	out := make([]*uikit.Window, len(s.decorations))
	copy(out, s.decorations)
	return out
}
