package core

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/a11y"
	"repro/internal/app"
	"repro/internal/sim"
	"repro/internal/uikit"
	"repro/internal/yolite"
)

// TestGoldenDecoratedScreen is the end-to-end golden test: a fixed-seed
// simulated app pops an AUI, the full capture -> infer -> decorate pipeline
// runs over the checked-in pretrained weights, and the first decorated
// screen's pixels are hashed against testdata/golden_decorated.sha256. Any
// behavioural drift anywhere in the pipeline — tensor conversion, the conv
// kernels, decoding, calibration, overlay drawing — moves the hash.
//
// The test runs only against the pretrained weights (a freshly trained
// model would legitimately change the pixels) and the hash is
// machine-independent because every stage is deterministic: the sim clock
// and AUI generator are seeded, and ParallelFor partitions work per plane
// with serial-identical output. Regenerate after an intentional pipeline
// change with:
//
//	GOLDEN_UPDATE=1 go test ./internal/core -run TestGoldenDecoratedScreen
func TestGoldenDecoratedScreen(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end golden test skipped in -short mode")
	}
	model := loadPretrainedOnly(t)

	clock := sim.NewClock(77)
	screen := uikit.NewScreen(384, 640)
	mgr := a11y.NewManager(clock, screen)
	a := app.Launch(clock, mgr, app.Config{
		Package:         "com.golden.app",
		MeanAUIInterval: 5 * time.Second,
		GenSeed:         99,
	})
	svc := Start(clock, mgr, model, Config{})

	var hash string
	svc.OnAnalysis = func(an Analysis) {
		if hash != "" || len(an.Detections) == 0 {
			return
		}
		// Observers run after decoration, so the render includes the
		// overlays this analysis just drew.
		c := screen.Render()
		sum := sha256.Sum256(c.Pix)
		hash = hex.EncodeToString(sum[:])
	}
	clock.RunUntil(2 * time.Minute)
	svc.Stop()
	a.Stop()

	if hash == "" {
		t.Fatal("no analysis flagged an AUI; the golden scenario is broken")
	}

	golden := filepath.Join("testdata", "golden_decorated.sha256")
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(hash+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden hash updated: %s", hash)
		return
	}
	raw, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with GOLDEN_UPDATE=1 to create it): %v", err)
	}
	want := strings.TrimSpace(string(raw))
	if hash != want {
		t.Fatalf("decorated screen hash drifted:\ngot:  %s\nwant: %s\n(if the pipeline change is intentional, regenerate with GOLDEN_UPDATE=1)", hash, want)
	}
}

// loadPretrainedOnly returns the checked-in pretrained model, skipping the
// test when the weights are absent: unlike loadOrTrainModel it never falls
// back to training, because golden pixels are only meaningful for one fixed
// set of weights.
func loadPretrainedOnly(t *testing.T) *yolite.Model {
	t.Helper()
	m := yolite.NewModel(7)
	for _, dir := range []string{"weights", filepath.Join("..", "..", "weights")} {
		if err := m.Load(filepath.Join(dir, "yolite.gob")); err == nil {
			return m
		}
	}
	t.Skip("golden test requires the checked-in pretrained weights")
	return nil
}
