package core

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/render"
)

// This file holds the pure decision logic of the act stage — which overlays
// to draw, which regions an auto-bypass would click — extracted from the
// Service so the network front end (internal/httpd) ships byte-for-byte the
// same decisions to remote consumers that the in-process decorator executes
// against the window manager.

// Decoration is one planned decoration overlay: a high-contrast border
// around a detected option (Section IV-D). Frame is the inset border
// rectangle in the detection's own coordinate space; the in-process service
// additionally calibrates it with the anchor-view offset before handing it
// to the window manager, remote consumers draw it as-is.
type Decoration struct {
	Class  dataset.Class
	Frame  geom.Rect
	Color  render.Color
	Stroke int
}

// PlanDecorations converts detections into decoration decisions: each box is
// inset outward by the stroke width and coloured by class. Zero colours
// default to the paper's green-for-UPO / red-for-AGO scheme; a non-positive
// stroke defaults to 3.
func PlanDecorations(dets []metrics.Detection, upoCol, agoCol render.Color, stroke int) []Decoration {
	if stroke <= 0 {
		stroke = 3
	}
	if upoCol.A == 0 {
		upoCol = render.Green
	}
	if agoCol.A == 0 {
		agoCol = render.Red
	}
	out := make([]Decoration, 0, len(dets))
	for _, d := range dets {
		col := agoCol
		if d.Class == dataset.ClassUPO {
			col = upoCol
		}
		out = append(out, Decoration{
			Class:  d.Class,
			Frame:  d.B.Rect().Inset(-stroke),
			Color:  col,
			Stroke: stroke,
		})
	}
	return out
}

// BypassTargets selects the UPO regions an auto-bypass clicks, highest
// confidence first, at most three (Section IV-D: a benign false positive
// absorbs one click harmlessly while the real close button still gets hit).
// The input slice is not modified.
func BypassTargets(dets []metrics.Detection) []metrics.Detection {
	var upos []metrics.Detection
	for _, d := range dets {
		if d.Class == dataset.ClassUPO {
			upos = append(upos, d)
		}
	}
	if len(upos) == 0 {
		return nil
	}
	sort.SliceStable(upos, func(i, j int) bool { return upos[i].Score > upos[j].Score })
	if len(upos) > 3 {
		upos = upos[:3]
	}
	return upos
}
