package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/a11y"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// tenantProbe captures the tenant identity each analysis context carries
// into the detector — the seam the shared serving layer's admission reads.
type tenantProbe struct {
	mu   sync.Mutex
	seen []serve.TenantInfo
}

func (p *tenantProbe) Name() string { return "tenant-probe" }

func (p *tenantProbe) PredictTensor(_ *tensor.Tensor, _ int, _ float64) []metrics.Detection {
	return nil
}

func (p *tenantProbe) PredictTensorCtx(ctx context.Context, _ *tensor.Tensor, _ int, _ float64) ([]metrics.Detection, error) {
	p.mu.Lock()
	p.seen = append(p.seen, serve.TenantFrom(ctx))
	p.mu.Unlock()
	return nil, nil
}

// TestConfigTenantTagsAnalysisContext: Config.Tenant/TenantPriority must
// ride every analysis context into the detector, and an empty Tenant must
// leave the context untagged (the serving layer's default-tenant path).
func TestConfigTenantTagsAnalysisContext(t *testing.T) {
	clock, mgr, _ := newEnv(11)
	probe := &tenantProbe{}
	s := Start(clock, mgr, probe, Config{
		Tenant:         "audit-farm",
		TenantPriority: serve.PriorityBatch,
	})
	mgr.Emit(a11y.TypeWindowsChanged, "app")
	clock.RunFor(time.Second)
	s.Stop()
	probe.mu.Lock()
	seen := append([]serve.TenantInfo(nil), probe.seen...)
	probe.mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("no analysis reached the detector")
	}
	for _, info := range seen {
		if info.ID != "audit-farm" || info.Priority != serve.PriorityBatch {
			t.Fatalf("analysis ctx carried %+v, want audit-farm at batch priority", info)
		}
	}

	clock2, mgr2, _ := newEnv(12)
	probe2 := &tenantProbe{}
	s2 := Start(clock2, mgr2, probe2, Config{})
	mgr2.Emit(a11y.TypeWindowsChanged, "app")
	clock2.RunFor(time.Second)
	s2.Stop()
	probe2.mu.Lock()
	defer probe2.mu.Unlock()
	if len(probe2.seen) == 0 {
		t.Fatal("no analysis reached the detector")
	}
	for _, info := range probe2.seen {
		if info.ID != serve.DefaultTenant || info.Priority != serve.PriorityLive {
			t.Fatalf("untenanted ctx resolved to %+v, want default/live", info)
		}
	}
}
