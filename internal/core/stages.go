package core

import (
	"context"
	"time"

	"repro/internal/detect"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/render"
	"repro/internal/tensor"
	"repro/internal/yolite"
)

// Stage identifies one step of the analysis pipeline (Fig. 5 steps 3-5,
// split the way the overhead decomposition of Table VII reasons about them).
type Stage int

// The pipeline stages, in execution order.
const (
	// StageCapture takes the screenshot.
	StageCapture Stage = iota
	// StagePreprocess converts pixels to the model tensor and rinses the
	// screenshot buffer.
	StagePreprocess
	// StageInfer runs the detector backend.
	StageInfer
	// StagePostprocess scales detections to screen coordinates and gathers
	// the calibration offsets.
	StagePostprocess
	// StageAct decorates, notifies observers, and auto-bypasses.
	StageAct
	// NumStages is the number of pipeline stages.
	NumStages
)

var stageNames = [NumStages]string{"capture", "preprocess", "infer", "postprocess", "act"}

// String returns the stage's short name, also used as the key in the
// service's latency recorder.
func (st Stage) String() string {
	if st < 0 || st >= NumStages {
		return "unknown"
	}
	return stageNames[st]
}

// StageStats accumulates per-stage activity for the overhead model.
type StageStats struct {
	// Runs counts how many analyses executed this stage.
	Runs int
	// Time is the cumulative wall-clock time spent in the stage. The
	// simulation clock is virtual, so this measures real compute cost —
	// what the perfmodel calibration wants.
	Time time.Duration
}

// CaptureResult is the output of the capture stage.
type CaptureResult struct {
	// Shot is the rendered screenshot; it is rinsed (zeroed) by the
	// preprocess stage, so consumers must not hold on to it.
	Shot *render.Canvas
}

// PreprocessResult is the output of the preprocess stage.
type PreprocessResult struct {
	// X is the model-input tensor.
	X *tensor.Tensor
	// ScaleX/ScaleY map model-input coordinates back to screen coordinates.
	ScaleX, ScaleY float64
}

// InferResult is the output of the inference stage.
type InferResult struct {
	// Detections are in model-input coordinates.
	Detections []metrics.Detection
}

// PostprocessResult is the output of the postprocess stage.
type PostprocessResult struct {
	// Detections are in screen coordinates.
	Detections []metrics.Detection
	// Offset is the anchor-view calibration offset (Section IV-D); only
	// measured when there is something to decorate.
	Offset geom.Pt
	// WinOrigin is the top window's screen origin, the base for overlay
	// frames.
	WinOrigin geom.Pt
}

// ActResult is the output of the act stage.
type ActResult struct {
	// DecorationsAdded counts overlay windows drawn this cycle.
	DecorationsAdded int
	// BypassClicks counts auto-bypass click gestures dispatched.
	BypassClicks int
}

// stageStart begins timing a stage; the returned func finishes it. Usage:
// defer s.stageStart(StageInfer)().
func (s *Service) stageStart(st Stage) func() {
	begin := time.Now()
	return func() {
		d := time.Since(begin)
		s.mu.Lock()
		ss := &s.stats.Stages[st]
		ss.Runs++
		ss.Time += d
		s.mu.Unlock()
		s.timings.Observe(st.String(), d)
	}
}

// capture takes the screenshot (Fig. 5 step 3).
func (s *Service) capture() CaptureResult {
	defer s.stageStart(StageCapture)()
	return CaptureResult{Shot: s.mgr.TakeScreenshot()}
}

// preprocess converts the screenshot to the model tensor and rinses the
// pixel buffer. The paper rinses after inference (Section IV-E); zeroing as
// soon as the tensor copy exists is strictly earlier, so the sensitive
// full-resolution pixels never outlive this stage.
func (s *Service) preprocess(c CaptureResult) PreprocessResult {
	defer s.stageStart(StagePreprocess)()
	x := yolite.CanvasToTensor(c.Shot)
	c.Shot.Zero()
	s.mu.Lock()
	s.stats.Rinses++
	s.mu.Unlock()
	screen := s.mgr.Screen()
	return PreprocessResult{
		X:      x,
		ScaleX: float64(screen.W) / float64(yolite.InputW),
		ScaleY: float64(screen.H) / float64(yolite.InputH),
	}
}

// infer runs the detector backend on the prepared tensor under the cycle's
// context: a supersession or deadline expiry aborts the forward within
// roughly one conv layer and surfaces as ctx.Err(). The stage is also the
// service's panic boundary — a detector that panics on one bad screen
// surfaces as an inference error (degrading that cycle) instead of
// unwinding the clock goroutine and killing every device the simulation
// runs.
func (s *Service) infer(ctx context.Context, p PreprocessResult) (res InferResult, err error) {
	defer s.stageStart(StageInfer)()
	defer func() {
		if r := recover(); r != nil {
			res, err = InferResult{}, &detect.PanicError{Value: r}
		}
	}()
	dets, err := detect.Predict(ctx, s.detector, p.X, 0, s.cfg.confThresh())
	if err != nil {
		return InferResult{}, err
	}
	return InferResult{Detections: dets}, nil
}

// postprocess scales detections from model-input to screen coordinates and,
// when something was found, measures the decoration-calibration offsets.
func (s *Service) postprocess(p PreprocessResult, in InferResult) PostprocessResult {
	defer s.stageStart(StagePostprocess)()
	dets := in.Detections
	for i := range dets {
		dets[i].B = dets[i].B.Scale(p.ScaleX, p.ScaleY)
	}
	res := PostprocessResult{Detections: dets}
	if len(dets) > 0 {
		res.Offset = s.mgr.WindowOffset()
		if top := s.mgr.Screen().TopWindow(); top != nil {
			res.WinOrigin = geom.Pt{X: top.Frame.X, Y: top.Frame.Y}
		}
	}
	return res
}

// act applies the analysis: decoration (ModeFull), the observer callback,
// and auto-bypass. It always runs, even with zero detections, because
// observers build their confusion matrices from every cycle. Ordering is
// load-bearing: observers run after decoration (so they can inspect the
// overlays) but before auto-bypass (which mutates the very UI being
// observed).
func (s *Service) act(rec Analysis, p PostprocessResult) ActResult {
	defer s.stageStart(StageAct)()
	var res ActResult
	if len(p.Detections) > 0 {
		s.mu.Lock()
		s.stats.AUIFlagged++
		s.mu.Unlock()
		if s.cfg.mode() == ModeFull {
			res.DecorationsAdded = s.decorate(p)
		}
	}
	if s.OnAnalysis != nil {
		s.OnAnalysis(rec)
	}
	if len(p.Detections) > 0 && s.cfg.AutoBypass {
		res.BypassClicks = s.bypass(p.Detections)
	}
	return res
}
