package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/a11y"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/render"
	"repro/internal/tensor"
	"repro/internal/uikit"
)

// ctxDetector is a ctx-aware fake: when block is set, the ctx path parks on
// ctx.Done() (signalling entered first) until the cycle is cancelled — the
// shape of a slow forward overtaken by events, deadlines or Stop. An optional
// hook runs re-entrantly inside the forward, standing in for anything that
// emits accessibility events mid-inference.
type ctxDetector struct {
	mu      sync.Mutex
	dets    []metrics.Detection
	block   bool
	hook    func(ctx context.Context) ([]metrics.Detection, error)
	entered chan struct{}
	calls   int
}

func (d *ctxDetector) Name() string { return "ctx-fake" }

func (d *ctxDetector) PredictTensor(_ *tensor.Tensor, _ int, _ float64) []metrics.Detection {
	return d.snapshot()
}

func (d *ctxDetector) snapshot() []metrics.Detection {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]metrics.Detection, len(d.dets))
	copy(out, d.dets)
	return out
}

func (d *ctxDetector) PredictTensorCtx(ctx context.Context, _ *tensor.Tensor, _ int, _ float64) ([]metrics.Detection, error) {
	d.mu.Lock()
	d.calls++
	hook := d.hook
	d.hook = nil // hooks fire once; later cycles run normally
	d.mu.Unlock()
	if hook != nil {
		return hook(ctx)
	}
	if d.block {
		if d.entered != nil {
			select {
			case d.entered <- struct{}{}:
			default:
			}
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return d.snapshot(), nil
}

func (d *ctxDetector) ctxCalls() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.calls
}

var _ detect.Detector = (*ctxDetector)(nil)
var _ detect.ContextPredictor = (*ctxDetector)(nil)

// TestStopCancelsInflightAnalysis: Stop while a forward is executing must
// cancel it cooperatively, wait for the cycle to unwind, and leave no
// decoration behind — the cancelled cycle never reaches the act stage.
func TestStopCancelsInflightAnalysis(t *testing.T) {
	clock, mgr, _ := newEnv(20)
	d := &ctxDetector{block: true, entered: make(chan struct{}, 1),
		dets: []metrics.Detection{upoDet(20, 2, 4, 4)}}
	s := Start(clock, mgr, d, Config{})
	s.OnAnalysis = func(Analysis) { t.Error("cancelled cycle reached the act stage") }
	mgr.Emit(a11y.TypeWindowsChanged, "app")
	done := make(chan struct{})
	go func() {
		defer close(done)
		clock.RunFor(time.Second)
	}()
	<-d.entered // the forward is now parked on its cycle context
	s.Stop()
	// When Stop returns the cycle has fully unwound and is accounted.
	st := s.Stats()
	if st.Superseded != 1 || st.Analyses != 0 || st.TimedOut != 0 {
		t.Fatalf("stats after Stop: %+v", st)
	}
	if len(s.Decorations()) != 0 {
		t.Fatal("cancelled cycle left decorations on screen")
	}
	if len(s.Log()) != 0 {
		t.Fatal("cancelled cycle was logged as an analysis")
	}
	<-done
}

// TestEventSupersedesInflightAnalysis: an accessibility event arriving while
// a forward runs means the screen changed under the detector — the in-flight
// cycle must be cancelled (and counted Superseded), and the fresh event's own
// cycle must complete normally afterwards.
func TestEventSupersedesInflightAnalysis(t *testing.T) {
	clock, mgr, screen := newEnv(21)
	screen.AddWindow(&uikit.Window{Owner: "app", Type: uikit.WindowApp, Frame: screen.Bounds(),
		Root: &uikit.View{Kind: uikit.KindContainer, Bounds: screen.Bounds()}})
	d := &ctxDetector{dets: []metrics.Detection{upoDet(20, 2, 4, 4)}}
	d.hook = func(ctx context.Context) ([]metrics.Detection, error) {
		if err := ctx.Err(); err != nil {
			t.Error("cycle context dead before the superseding event")
		}
		// The app redraws mid-inference; the callback runs re-entrantly on
		// this same goroutine, so this also proves onEvent cannot deadlock
		// against the running cycle.
		mgr.Emit(a11y.TypeWindowContentChanged, "app")
		if err := ctx.Err(); !errors.Is(err, context.Canceled) {
			t.Errorf("fresh event did not cancel the in-flight ctx: %v", err)
		}
		return nil, ctx.Err()
	}
	s := Start(clock, mgr, d, Config{})
	mgr.Emit(a11y.TypeWindowsChanged, "app")
	clock.RunFor(time.Second)
	st := s.Stats()
	if st.Superseded != 1 {
		t.Fatalf("superseded = %d, want 1", st.Superseded)
	}
	if st.Analyses != 1 {
		t.Fatalf("analyses = %d, want 1 (the fresh event's cycle completes)", st.Analyses)
	}
	if st.EventsSeen != 2 {
		t.Fatalf("events seen = %d, want 2", st.EventsSeen)
	}
	if len(s.Log()) != 1 {
		t.Fatalf("log holds %d analyses, want only the completed one", len(s.Log()))
	}
	if len(s.Decorations()) != 1 {
		t.Fatalf("%d decorations, want 1 from the completed cycle", len(s.Decorations()))
	}
	s.Stop()
}

// TestDeadlineExpiryCountsTimedOut: Config.Deadline bounds a cycle in wall
// time; an expiry aborts the forward, counts TimedOut (not Superseded), and
// skips the act stage.
func TestDeadlineExpiryCountsTimedOut(t *testing.T) {
	clock, mgr, _ := newEnv(22)
	d := &ctxDetector{block: true, dets: []metrics.Detection{upoDet(20, 2, 4, 4)}}
	s := Start(clock, mgr, d, Config{Deadline: 5 * time.Millisecond})
	s.OnAnalysis = func(Analysis) { t.Error("timed-out cycle reached the act stage") }
	mgr.Emit(a11y.TypeWindowsChanged, "app")
	clock.RunFor(time.Second)
	st := s.Stats()
	if st.TimedOut != 1 || st.Superseded != 0 || st.Analyses != 0 {
		t.Fatalf("stats = %+v, want exactly one TimedOut", st)
	}
	if len(s.Decorations()) != 0 || len(s.Log()) != 0 {
		t.Fatal("timed-out cycle decorated or logged")
	}
	s.Stop()
}

// TestBaseContextCancelAbandonsCycles: cancelling the BaseContext (a fleet
// pulling one device) makes cycles abandon before inference starts.
func TestBaseContextCancelAbandonsCycles(t *testing.T) {
	clock, mgr, _ := newEnv(23)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := &ctxDetector{dets: []metrics.Detection{upoDet(20, 2, 4, 4)}}
	s := Start(clock, mgr, d, Config{BaseContext: ctx})
	mgr.Emit(a11y.TypeWindowsChanged, "app")
	clock.RunFor(time.Second)
	st := s.Stats()
	if st.Superseded != 1 || st.Analyses != 0 {
		t.Fatalf("stats = %+v, want the cycle abandoned as Superseded", st)
	}
	if d.ctxCalls() != 0 {
		t.Fatal("inference ran under a dead base context")
	}
	s.Stop()
}

// TestStopRaceStress soaks Stop racing the in-flight cycle under -race:
// repeated rounds of event -> blocked forward -> concurrent Stop + Stats
// readers must neither deadlock nor leave decorations behind.
func TestStopRaceStress(t *testing.T) {
	for round := 0; round < 10; round++ {
		clock, mgr, _ := newEnv(int64(30 + round))
		d := &ctxDetector{block: true, entered: make(chan struct{}, 1),
			dets: []metrics.Detection{upoDet(20, 2, 4, 4)}}
		s := Start(clock, mgr, d, Config{})
		mgr.Emit(a11y.TypeWindowsChanged, "app")
		done := make(chan struct{})
		go func() {
			defer close(done)
			clock.RunFor(time.Second)
		}()
		<-d.entered
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ { // concurrent readers while Stop lands
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = s.Stats()
				_ = s.Decorations()
				_ = s.Log()
			}()
		}
		s.Stop()
		wg.Wait()
		<-done
		if st := s.Stats(); st.Superseded != 1 || st.Analyses != 0 {
			t.Fatalf("round %d: stats = %+v", round, st)
		}
		if len(s.Decorations()) != 0 {
			t.Fatalf("round %d: decorations survived Stop", round)
		}
	}
}

// TestAuditScreensCtxDeadContext: a cancelled audit returns its error and the
// screens fully audited so far without touching the backend again.
func TestAuditScreensCtxDeadContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := &ctxDetector{dets: []metrics.Detection{upoDet(20, 2, 4, 4)}}
	shots := []*render.Canvas{render.NewCanvas(384, 640), render.NewCanvas(384, 640), render.NewCanvas(384, 640)}
	out, err := AuditScreensCtx(ctx, d, shots, 0.3, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if len(out) != 0 {
		t.Fatalf("dead-ctx audit returned %d screens, want 0", len(out))
	}
	if d.ctxCalls() != 0 {
		t.Fatal("dead-ctx audit still ran inference")
	}
	// The same call on Background is the legacy AuditScreens.
	full, err := AuditScreensCtx(context.Background(), d, shots, 0.3, 2)
	if err != nil || len(full) != 3 {
		t.Fatalf("Background audit: %d screens, err %v", len(full), err)
	}
}
