package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/a11y"
	"repro/internal/app"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/uikit"
)

// chaosStub is a fast healthy backend for chaos runs: real inference would
// dominate the -race run without exercising any more of the resilience
// plumbing. It answers a fixed, valid detection on every seam.
type chaosStub struct{ name string }

func (s *chaosStub) Name() string { return s.name }

func (s *chaosStub) dets() []metrics.Detection {
	return []metrics.Detection{{Class: dataset.ClassUPO, B: geom.BoxF{X: 10, Y: 20, W: 16, H: 8}, Score: 0.9}}
}

func (s *chaosStub) PredictTensor(_ *tensor.Tensor, _ int, _ float64) []metrics.Detection {
	return s.dets()
}

func (s *chaosStub) PredictTensorCtx(ctx context.Context, _ *tensor.Tensor, _ int, _ float64) ([]metrics.Detection, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.dets(), nil
}

func (s *chaosStub) PredictBatchCtx(ctx context.Context, x *tensor.Tensor, _ float64) ([][]metrics.Detection, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([][]metrics.Detection, x.Shape[0])
	for i := range out {
		out[i] = s.dets()
	}
	return out, nil
}

// TestChaosFleetSurvives runs a multi-device fleet through a shared serving
// stack whose backend is under heavy fault injection — ~30% errors, latency
// spikes, a deterministic panic every 37th call, and a flaky fallback — and
// pins the PR's containment contract:
//
//   - zero crashes: every injected panic is recovered at a seam;
//   - zero goroutine leaks once every service and the Batcher shut down;
//   - per-device cycle accounting stays consistent: every cycle that
//     captured a screenshot lands in exactly one of {acted, superseded,
//     timed out, degraded};
//   - at least 95% of eligible screens are still served (retry + fallback
//     absorb the injected failure rate).
//
// Run with -race; the whole point is hammering the resilience layers from
// many goroutines at once.
func TestChaosFleetSurvives(t *testing.T) {
	const devices = 6
	baseGoroutines := runtime.NumGoroutine()

	plan := faults.NewPlan(5,
		faults.Rule{Stage: "backend", Kind: faults.Panic, Every: 37},
		faults.Rule{Stage: "backend", Kind: faults.Error, Rate: 0.3},
		faults.Rule{Stage: "backend", Kind: faults.Corrupt, Rate: 0.05},
		faults.Rule{Stage: "backend", Kind: faults.Latency, Rate: 0.1, Latency: 200 * time.Microsecond},
		faults.Rule{Stage: "fallback", Kind: faults.Error, Rate: 0.2},
	)
	shared := serve.NewBatcher(
		faults.WrapStage(&chaosStub{name: "primary"}, plan, "backend"),
		serve.Options{MaxBatch: devices},
	)

	stats := make([]Stats, devices)
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			clock := sim.NewClock(int64(42 + d))
			screen := uikit.NewScreen(384, 640)
			mgr := a11y.NewManager(clock, screen)
			a := app.Launch(clock, mgr, app.Config{
				Package:         fmt.Sprintf("com.chaos.app%02d", d),
				MeanAUIInterval: 5 * time.Second,
				GenSeed:         int64(100 + d),
			})
			monkey := app.StartMonkey(clock, mgr, "monkey", 2*time.Second)
			svc := Start(clock, mgr, shared, Config{
				RetryAttempts: 3,
				Fallbacks: []detect.Detector{
					faults.WrapStage(&chaosStub{name: "fallback"}, plan, "fallback"),
				},
				BaseContext: ctx,
			})
			clock.RunUntil(2 * time.Minute)
			monkey.Stop()
			svc.Stop()
			a.Stop()
			stats[d] = svc.Stats()
		}(d)
	}
	wg.Wait()
	shared.Close()

	var agg Stats
	for d, st := range stats {
		captured := st.Stages[StageCapture].Runs
		acted := st.Stages[StageAct].Runs
		if captured != acted+st.Superseded+st.TimedOut+st.Degraded {
			t.Errorf("device %d: cycle accounting off: %d captured != %d acted + %d superseded + %d timed out + %d degraded",
				d, captured, acted, st.Superseded, st.TimedOut, st.Degraded)
		}
		if captured == 0 {
			t.Errorf("device %d analysed nothing", d)
		}
		agg.Superseded += st.Superseded
		agg.TimedOut += st.TimedOut
		agg.Degraded += st.Degraded
		agg.Retried += st.Retried
		agg.FellBack += st.FellBack
		for i := range agg.Stages {
			agg.Stages[i].Runs += st.Stages[i].Runs
		}
	}

	if plan.TotalInjected() == 0 {
		t.Fatal("no faults were injected; the chaos scenario is vacuous")
	}
	if agg.Retried == 0 {
		t.Error("no retries recorded under a 30% error rate")
	}
	served := agg.Stages[StageAct].Runs
	eligible := served + agg.Degraded
	if eligible == 0 {
		t.Fatal("no cycles reached the infer decision")
	}
	if frac := float64(served) / float64(eligible); frac < 0.95 {
		t.Errorf("only %.1f%% of %d eligible screens served (%d degraded); want >= 95%%",
			100*frac, eligible, agg.Degraded)
	}
	t.Logf("chaos fleet: %s; %d/%d screens served, %d retries, %d fallback-served, %d degraded",
		plan, served, eligible, agg.Retried, agg.FellBack, agg.Degraded)

	// Leak check: everything is stopped, so the goroutine count must settle
	// back to (at most) where it started, give or take runtime housekeeping.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseGoroutines+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after chaos fleet\n%s",
				baseGoroutines, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
