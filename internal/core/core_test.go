package core

import (
	"testing"
	"time"

	"repro/internal/a11y"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/uikit"
	"repro/internal/yolite"
)

// fakeDetector returns a fixed set of detections (in model-input
// coordinates), standing in for the trained model in pipeline tests.
type fakeDetector struct {
	dets  []metrics.Detection
	calls int
}

func (f *fakeDetector) PredictTensor(_ *tensor.Tensor, _ int, _ float64) []metrics.Detection {
	f.calls++
	out := make([]metrics.Detection, len(f.dets))
	copy(out, f.dets)
	return out
}

func (f *fakeDetector) Name() string { return "fake" }

var _ detect.Detector = (*fakeDetector)(nil)
var _ yolite.Predictor = (*fakeDetector)(nil)

func newEnv(seed int64) (*sim.Clock, *a11y.Manager, *uikit.Screen) {
	clock := sim.NewClock(seed)
	screen := uikit.NewScreen(384, 640)
	mgr := a11y.NewManager(clock, screen)
	return clock, mgr, screen
}

func upoDet(x, y, w, h float64) metrics.Detection {
	return metrics.Detection{Class: dataset.ClassUPO, B: geom.BoxF{X: x, Y: y, W: w, H: h}, Score: 0.9}
}

func TestDebounceSingleAnalysisAfterStorm(t *testing.T) {
	clock, mgr, _ := newEnv(1)
	det := &fakeDetector{}
	s := Start(clock, mgr, det, Config{Cutoff: 200 * time.Millisecond})
	// 10 events 50ms apart: each resets the ct timer.
	for i := 0; i < 10; i++ {
		clock.RunFor(50 * time.Millisecond)
		mgr.Emit(a11y.TypeWindowContentChanged, "app")
	}
	clock.RunFor(time.Second)
	if got := s.Stats().Analyses; got != 1 {
		t.Fatalf("analyses = %d, want 1 (storm debounced to a single screenshot)", got)
	}
	if s.Stats().Debounced != 9 {
		t.Fatalf("debounced = %d, want 9", s.Stats().Debounced)
	}
	if det.calls != 1 {
		t.Fatalf("detector called %d times", det.calls)
	}
}

func TestSeparatedEventsEachAnalysed(t *testing.T) {
	clock, mgr, _ := newEnv(2)
	s := Start(clock, mgr, &fakeDetector{}, Config{Cutoff: 200 * time.Millisecond})
	for i := 0; i < 3; i++ {
		mgr.Emit(a11y.TypeWindowContentChanged, "app")
		clock.RunFor(time.Second) // quiet period > ct
	}
	if got := s.Stats().Analyses; got != 3 {
		t.Fatalf("analyses = %d, want 3", got)
	}
}

func TestShorterCutoffAnalysesMore(t *testing.T) {
	run := func(ct time.Duration) int {
		clock, mgr, _ := newEnv(3)
		s := Start(clock, mgr, &fakeDetector{}, Config{Cutoff: ct})
		// Events with 120ms gaps.
		for i := 0; i < 20; i++ {
			mgr.Emit(a11y.TypeWindowContentChanged, "app")
			clock.RunFor(120 * time.Millisecond)
		}
		clock.RunFor(time.Second)
		return s.Stats().Analyses
	}
	fast, slow := run(50*time.Millisecond), run(200*time.Millisecond)
	if fast <= slow {
		t.Fatalf("ct=50ms analysed %d, ct=200ms analysed %d; smaller ct must analyse more", fast, slow)
	}
	if slow != 1 {
		t.Fatalf("ct=200ms should coalesce 120ms-spaced events into 1 analysis, got %d", slow)
	}
}

func TestRinseAfterEveryAnalysis(t *testing.T) {
	clock, mgr, _ := newEnv(4)
	s := Start(clock, mgr, &fakeDetector{}, Config{})
	mgr.Emit(a11y.TypeWindowsChanged, "app")
	clock.RunFor(time.Second)
	st := s.Stats()
	if st.Rinses != st.Analyses || st.Rinses == 0 {
		t.Fatalf("rinses=%d analyses=%d — every screenshot must be rinsed", st.Rinses, st.Analyses)
	}
}

func TestDecorationPlacedAtDetection(t *testing.T) {
	clock, mgr, screen := newEnv(5)
	// Full-screen app window (offset 0) for exact placement maths.
	screen.AddWindow(&uikit.Window{Owner: "app", Type: uikit.WindowApp, Frame: screen.Bounds(),
		Root: &uikit.View{Kind: uikit.KindContainer, Bounds: screen.Bounds()}})
	det := &fakeDetector{dets: []metrics.Detection{upoDet(20, 2, 4, 4)}}
	s := Start(clock, mgr, det, Config{StrokeWidth: 2})
	mgr.Emit(a11y.TypeWindowsChanged, "app")
	clock.RunFor(time.Second)
	decos := s.Decorations()
	if len(decos) != 1 {
		t.Fatalf("%d decorations, want 1", len(decos))
	}
	// Input (20,2,4,4) at 4x scale -> screen (80,8,16,16), inset -2 -> (78,6,20,20).
	want := geom.Rect{X: 78, Y: 6, W: 20, H: 20}
	if decos[0].Frame != want {
		t.Fatalf("decoration frame %v, want %v", decos[0].Frame, want)
	}
	if s.Stats().DecorationsDrawn != 1 || s.Stats().AUIFlagged != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

func TestCalibrationCompensatesWindowOffset(t *testing.T) {
	clock, mgr, screen := newEnv(6)
	frame := screen.ContentFrame() // offset (0, statusBar)
	screen.AddWindow(&uikit.Window{Owner: "app", Type: uikit.WindowApp, Frame: frame,
		Root: &uikit.View{Kind: uikit.KindContainer, Bounds: geom.Rect{W: frame.W, H: frame.H}}})
	det := &fakeDetector{dets: []metrics.Detection{upoDet(20, 40, 4, 4)}}
	s := Start(clock, mgr, det, Config{StrokeWidth: 2})
	mgr.Emit(a11y.TypeWindowsChanged, "app")
	clock.RunFor(time.Second)
	// Screen coords of the detection: (80,160,16,16); decoration inset -2.
	want := geom.Rect{X: 78, Y: 158, W: 20, H: 20}
	if got := s.Decorations()[0].Frame; got != want {
		t.Fatalf("calibrated decoration at %v, want %v", got, want)
	}
}

func TestNoCalibrationReproducesFigure4Offset(t *testing.T) {
	clock, mgr, screen := newEnv(7)
	frame := screen.ContentFrame()
	screen.AddWindow(&uikit.Window{Owner: "app", Type: uikit.WindowApp, Frame: frame,
		Root: &uikit.View{Kind: uikit.KindContainer, Bounds: geom.Rect{W: frame.W, H: frame.H}}})
	det := &fakeDetector{dets: []metrics.Detection{upoDet(20, 40, 4, 4)}}
	s := Start(clock, mgr, det, Config{StrokeWidth: 2, DisableCalibration: true})
	mgr.Emit(a11y.TypeWindowsChanged, "app")
	clock.RunFor(time.Second)
	got := s.Decorations()[0].Frame
	// Without calibration the decoration lands below the true position by
	// the status-bar height (Figure 4a).
	correct := geom.Rect{X: 78, Y: 158, W: 20, H: 20}
	if got.Y != correct.Y+screen.StatusBarH {
		t.Fatalf("uncalibrated decoration at %v; want it %dpx below %v", got, screen.StatusBarH, correct)
	}
}

func TestDecorationsClearedBeforeNextAnalysis(t *testing.T) {
	clock, mgr, screen := newEnv(8)
	screen.AddWindow(&uikit.Window{Owner: "app", Type: uikit.WindowApp, Frame: screen.Bounds(),
		Root: &uikit.View{Kind: uikit.KindContainer, Bounds: screen.Bounds()}})
	det := &fakeDetector{dets: []metrics.Detection{upoDet(20, 2, 4, 4)}}
	s := Start(clock, mgr, det, Config{})
	mgr.Emit(a11y.TypeWindowsChanged, "app")
	clock.RunFor(time.Second)
	mgr.Emit(a11y.TypeWindowsChanged, "app")
	clock.RunFor(time.Second)
	if s.Stats().Analyses != 2 {
		t.Fatalf("analyses = %d", s.Stats().Analyses)
	}
	if len(s.Decorations()) != 1 {
		t.Fatalf("%d decorations on screen after 2 cycles, want 1 (old ones cleared)", len(s.Decorations()))
	}
}

func TestAutoBypassClicksUPO(t *testing.T) {
	clock, mgr, screen := newEnv(9)
	clicked := false
	root := &uikit.View{Kind: uikit.KindContainer, Bounds: screen.Bounds()}
	// Clickable close button at screen (80,8)-(96,24): input coords (20,2,4,4).
	root.Add(&uikit.View{ID: "btn_close", Kind: uikit.KindIcon,
		Bounds: geom.Rect{X: 80, Y: 8, W: 16, H: 16}, Clickable: true,
		OnClick: func() { clicked = true }})
	screen.AddWindow(&uikit.Window{Owner: "app", Type: uikit.WindowApp, Frame: screen.Bounds(), Root: root})
	det := &fakeDetector{dets: []metrics.Detection{upoDet(20, 2, 4, 4)}}
	s := Start(clock, mgr, det, Config{AutoBypass: true})
	mgr.Emit(a11y.TypeWindowsChanged, "app")
	clock.RunFor(time.Second)
	if !clicked {
		t.Fatal("auto-bypass did not click the UPO")
	}
	if s.Stats().Bypasses != 1 {
		t.Fatalf("bypasses = %d", s.Stats().Bypasses)
	}
}

func TestMonitorModeTakesNoScreenshots(t *testing.T) {
	clock, mgr, _ := newEnv(10)
	s := Start(clock, mgr, nil, Config{Mode: ModeMonitor})
	mgr.Emit(a11y.TypeWindowsChanged, "app")
	clock.RunFor(time.Second)
	if mgr.Stats().Screenshots != 0 {
		t.Fatal("monitor-only mode took a screenshot")
	}
	if s.Stats().Analyses != 0 {
		t.Fatal("monitor-only mode analysed")
	}
}

func TestDetectModeDoesNotDecorate(t *testing.T) {
	clock, mgr, screen := newEnv(11)
	screen.AddWindow(&uikit.Window{Owner: "app", Type: uikit.WindowApp, Frame: screen.Bounds(),
		Root: &uikit.View{Kind: uikit.KindContainer, Bounds: screen.Bounds()}})
	det := &fakeDetector{dets: []metrics.Detection{upoDet(20, 2, 4, 4)}}
	s := Start(clock, mgr, det, Config{Mode: ModeDetect})
	mgr.Emit(a11y.TypeWindowsChanged, "app")
	clock.RunFor(time.Second)
	if s.Stats().Analyses != 1 || s.Stats().AUIFlagged != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
	if len(s.Decorations()) != 0 {
		t.Fatal("detect-only mode decorated")
	}
}

func TestStopCancelsPendingWork(t *testing.T) {
	clock, mgr, _ := newEnv(12)
	s := Start(clock, mgr, &fakeDetector{}, Config{})
	mgr.Emit(a11y.TypeWindowsChanged, "app")
	s.Stop()
	clock.RunFor(time.Second)
	if s.Stats().Analyses != 0 {
		t.Fatal("analysis ran after Stop")
	}
	mgr.Emit(a11y.TypeWindowsChanged, "app")
	clock.RunFor(time.Second)
	if s.Stats().EventsSeen != 1 {
		t.Fatal("stopped service kept counting events")
	}
}

func TestAnalysisLogAndCallback(t *testing.T) {
	clock, mgr, _ := newEnv(13)
	det := &fakeDetector{dets: []metrics.Detection{upoDet(20, 2, 4, 4)}}
	var observed []Analysis
	s := Start(clock, mgr, det, Config{})
	s.OnAnalysis = func(a Analysis) { observed = append(observed, a) }
	mgr.Emit(a11y.TypeWindowsChanged, "com.shop")
	clock.RunFor(time.Second)
	log := s.Log()
	if len(log) != 1 || len(observed) != 1 {
		t.Fatalf("log=%d observed=%d", len(log), len(observed))
	}
	if log[0].Package != "com.shop" {
		t.Fatalf("logged package %q", log[0].Package)
	}
	// Detections are reported in screen coordinates (4x input).
	if log[0].Detections[0].B.X != 80 {
		t.Fatalf("logged detection %v, want screen coords", log[0].Detections[0].B)
	}
}

func TestStartWithoutDetectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Start(nil detector, full mode) did not panic")
		}
	}()
	clock, mgr, _ := newEnv(14)
	Start(clock, mgr, nil, Config{})
}
