package core

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/a11y"
	"repro/internal/app"
	"repro/internal/auigen"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/uikit"
	"repro/internal/yolite"
)

// The integration tests share one trained model: training even the fallback
// quick model costs ~20s on one core, so building it per test dominates the
// package's runtime. Inference does not mutate the model, making sharing
// safe.
var (
	sharedModelOnce sync.Once
	sharedModel     *yolite.Model
	sharedModelSkip string
)

// loadOrTrainModel returns a usable detector: pretrained weights when the
// repository has them, otherwise a briefly trained model. All callers get
// the same instance.
func loadOrTrainModel(t *testing.T) *yolite.Model {
	t.Helper()
	sharedModelOnce.Do(func() {
		m := yolite.NewModel(7)
		for _, dir := range []string{"weights", filepath.Join("..", "..", "weights")} {
			if err := m.Load(filepath.Join(dir, "yolite.gob")); err == nil {
				sharedModel = m
				return
			}
		}
		if os.Getenv("CI") != "" {
			sharedModelSkip = "no pretrained weights and CI forbids long training"
			return
		}
		samples := auigen.BuildAUISamples(31, 64, auigen.DatasetConfig{})
		sharedModel = yolite.Train(samples, yolite.TrainConfig{Epochs: 8, Seed: 3})
	})
	if sharedModel == nil {
		t.Skip(sharedModelSkip)
	}
	return sharedModel
}

// TestEndToEndDecorationLandsOnGroundTruth runs the full stack — simulated
// app, accessibility events, ct debounce, screenshot, real trained
// detector, calibration, decoration — and checks that at least one
// decoration overlay lands on a real ground-truth option.
func TestEndToEndDecorationLandsOnGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end integration skipped in -short mode")
	}
	model := loadOrTrainModel(t)

	clock := sim.NewClock(11)
	screen := uikit.NewScreen(384, 640)
	mgr := a11y.NewManager(clock, screen)
	a := app.Launch(clock, mgr, app.Config{MeanAUIInterval: 5 * time.Second})
	svc := Start(clock, mgr, model, Config{})

	landed := 0
	checked := 0
	svc.OnAnalysis = func(an Analysis) {
		showing := a.Current()
		if showing == nil || len(an.Detections) == 0 {
			return
		}
		checked++
		// Ground-truth option rectangles in screen coordinates.
		var gtRects []geom.Rect
		ids := append(append([]string{}, showing.AUI.UPOIDs...), showing.AUI.AGOIDs...)
		for _, id := range ids {
			showing.AUI.Root.Walk(geom.Pt{X: showing.Window.Frame.X, Y: showing.Window.Frame.Y},
				func(v *uikit.View, abs geom.Rect) bool {
					if v.ID == id {
						gtRects = append(gtRects, abs)
						return false
					}
					return true
				})
		}
		for _, w := range svc.Decorations() {
			for _, gt := range gtRects {
				// The decoration is inset by the stroke width around the
				// detection; centre containment is the landing criterion.
				if w.Frame.Contains(gt.Center()) {
					landed++
					return
				}
			}
		}
	}
	clock.RunUntil(2 * time.Minute)
	svc.Stop()
	a.Stop()

	if checked == 0 {
		t.Fatal("no analyses coincided with a visible AUI")
	}
	if landed == 0 {
		t.Fatalf("decorations never landed on a ground-truth option (%d flagged analyses)", checked)
	}
	t.Logf("decorations landed on ground truth in %d/%d flagged analyses", landed, checked)
}

// TestEndToEndAutoBypassClosesPopups verifies the auto-bypass path actually
// closes AUI popups through real synthetic UI clicks.
func TestEndToEndAutoBypassClosesPopups(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end integration skipped in -short mode")
	}
	model := loadOrTrainModel(t)

	clock := sim.NewClock(12)
	screen := uikit.NewScreen(384, 640)
	mgr := a11y.NewManager(clock, screen)
	a := app.Launch(clock, mgr, app.Config{MeanAUIInterval: 5 * time.Second, AUIDwellMax: 10 * time.Second})
	svc := Start(clock, mgr, model, Config{AutoBypass: true, ConfThresh: 0.7})
	clock.RunUntil(3 * time.Minute)
	svc.Stop()
	a.Stop()

	shown, byClick := 0, 0
	for _, h := range a.History() {
		shown++
		if h.DismissedByClick {
			byClick++
		}
	}
	if shown == 0 {
		t.Fatal("app showed no AUIs")
	}
	if byClick == 0 {
		t.Fatalf("auto-bypass closed 0 of %d popups", shown)
	}
	t.Logf("auto-bypass closed %d/%d popups", byClick, shown)
}
