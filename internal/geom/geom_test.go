package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := Rect{10, 20, 30, 40}
	if r.MaxX() != 40 || r.MaxY() != 60 {
		t.Fatalf("edges: MaxX=%d MaxY=%d", r.MaxX(), r.MaxY())
	}
	if r.Area() != 1200 {
		t.Fatalf("area=%d", r.Area())
	}
	if got := r.Center(); got != (Pt{25, 40}) {
		t.Fatalf("center=%v", got)
	}
	if r.Empty() {
		t.Fatal("non-empty rect reported empty")
	}
	if !(Rect{0, 0, 0, 5}).Empty() || (Rect{0, 0, 0, 5}).Area() != 0 {
		t.Fatal("zero-width rect should be empty with area 0")
	}
}

func TestRectFromEdgesNormalises(t *testing.T) {
	r := RectFromEdges(10, 30, 5, 20)
	if r != (Rect{5, 20, 5, 10}) {
		t.Fatalf("got %v", r)
	}
}

func TestContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	cases := []struct {
		p    Pt
		want bool
	}{
		{Pt{0, 0}, true},
		{Pt{9, 9}, true},
		{Pt{10, 9}, false}, // right edge is exclusive
		{Pt{9, 10}, false},
		{Pt{-1, 5}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestContainsRect(t *testing.T) {
	outer := Rect{0, 0, 100, 100}
	if !outer.ContainsRect(Rect{10, 10, 20, 20}) {
		t.Fatal("inner rect should be contained")
	}
	if outer.ContainsRect(Rect{90, 90, 20, 20}) {
		t.Fatal("overhanging rect should not be contained")
	}
	if !outer.ContainsRect(Rect{}) {
		t.Fatal("empty rect should be contained in anything")
	}
}

func TestIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 10, 10}
	if got := a.Intersect(b); got != (Rect{5, 5, 5, 5}) {
		t.Fatalf("intersect=%v", got)
	}
	if got := a.Union(b); got != (Rect{0, 0, 15, 15}) {
		t.Fatalf("union=%v", got)
	}
	if got := a.Intersect(Rect{20, 20, 5, 5}); !got.Empty() {
		t.Fatalf("disjoint intersect=%v, want empty", got)
	}
	if got := a.Union(Rect{}); got != a {
		t.Fatalf("union with empty=%v", got)
	}
}

func TestIoUKnownValues(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if got := a.IoU(a); got != 1 {
		t.Fatalf("self IoU=%v", got)
	}
	b := Rect{0, 0, 10, 5}
	if got := a.IoU(b); got != 0.5 {
		t.Fatalf("half IoU=%v", got)
	}
	if got := a.IoU(Rect{100, 100, 5, 5}); got != 0 {
		t.Fatalf("disjoint IoU=%v", got)
	}
}

func TestInsetTranslateClamp(t *testing.T) {
	r := Rect{10, 10, 20, 20}
	if got := r.Inset(5); got != (Rect{15, 15, 10, 10}) {
		t.Fatalf("inset=%v", got)
	}
	if got := r.Inset(-5); got != (Rect{5, 5, 30, 30}) {
		t.Fatalf("outset=%v", got)
	}
	if got := r.Translate(-10, 5); got != (Rect{0, 15, 20, 20}) {
		t.Fatalf("translate=%v", got)
	}
	if got := r.Clamp(Rect{0, 0, 15, 15}); got != (Rect{10, 10, 5, 5}) {
		t.Fatalf("clamp=%v", got)
	}
}

func randRect(rng *rand.Rand) Rect {
	return Rect{rng.Intn(200) - 100, rng.Intn(200) - 100, rng.Intn(100) + 1, rng.Intn(100) + 1}
}

// Property: IoU is symmetric, bounded in [0,1], and 1 only for identical
// rectangles of equal area.
func TestPropertyIoU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b := randRect(rng), randRect(rng)
		ab, ba := a.IoU(b), b.IoU(a)
		if ab != ba {
			t.Fatalf("IoU not symmetric: %v vs %v for %v,%v", ab, ba, a, b)
		}
		if ab < 0 || ab > 1 {
			t.Fatalf("IoU out of range: %v", ab)
		}
		if ab == 1 && a != b {
			t.Fatalf("IoU=1 for distinct rects %v %v", a, b)
		}
	}
}

// Property: intersection is contained in both operands; union contains both.
func TestPropertyIntersectUnionContainment(t *testing.T) {
	prop := func(ax, ay, bx, by int8, aw, ah, bw, bh uint8) bool {
		a := Rect{int(ax), int(ay), int(aw%50) + 1, int(ah%50) + 1}
		b := Rect{int(bx), int(by), int(bw%50) + 1, int(bh%50) + 1}
		i := a.Intersect(b)
		u := a.Union(b)
		if !i.Empty() && (!a.ContainsRect(i) || !b.ContainsRect(i)) {
			return false
		}
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBoxFRoundTrip(t *testing.T) {
	r := Rect{3, 4, 17, 29}
	if got := BoxFromRect(r).Rect(); got != r {
		t.Fatalf("round trip: %v -> %v", r, got)
	}
}

func TestBoxFIoUMatchesRect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		a, b := randRect(rng), randRect(rng)
		ri := a.IoU(b)
		bi := BoxFromRect(a).IoU(BoxFromRect(b))
		if diff := ri - bi; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("IoU mismatch int=%v float=%v for %v %v", ri, bi, a, b)
		}
	}
}

func TestBoxFScale(t *testing.T) {
	b := BoxF{10, 20, 30, 40}
	s := b.Scale(2, 0.5)
	if s != (BoxF{20, 10, 60, 20}) {
		t.Fatalf("scale=%v", s)
	}
	if s.CenterX() != 50 || s.CenterY() != 20 {
		t.Fatalf("center=(%v,%v)", s.CenterX(), s.CenterY())
	}
}

func TestPtArithmetic(t *testing.T) {
	p := Pt{3, 4}.Add(Pt{1, -2})
	if p != (Pt{4, 2}) {
		t.Fatalf("add=%v", p)
	}
	if q := p.Sub(Pt{4, 2}); q != (Pt{}) {
		t.Fatalf("sub=%v", q)
	}
}
