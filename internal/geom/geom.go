// Package geom provides the integer pixel geometry used throughout the
// reproduction: points, rectangles, intersection-over-union, and the
// box utilities shared by the renderer, the view system and the detectors.
package geom

import "fmt"

// Pt is a point in screen pixel coordinates. The origin is the top-left of
// the screen; Y grows downward, matching Android.
type Pt struct {
	X, Y int
}

// Add returns p translated by q.
func (p Pt) Add(q Pt) Pt { return Pt{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Pt) Sub(q Pt) Pt { return Pt{p.X - q.X, p.Y - q.Y} }

// Rect is an axis-aligned rectangle: the half-open region
// [X, X+W) x [Y, Y+H). A Rect with W <= 0 or H <= 0 is empty.
type Rect struct {
	X, Y, W, H int
}

// RectFromEdges builds a Rect from two corner points, normalising so that
// width and height are non-negative.
func RectFromEdges(x0, y0, x1, y1 int) Rect {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1 - x0, y1 - y0}
}

// String formats the rectangle as "(x,y)+wxh".
func (r Rect) String() string { return fmt.Sprintf("(%d,%d)+%dx%d", r.X, r.Y, r.W, r.H) }

// Empty reports whether the rectangle encloses no pixels.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Area returns the number of pixels in r, 0 for empty rectangles.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return r.W * r.H
}

// MaxX returns the exclusive right edge.
func (r Rect) MaxX() int { return r.X + r.W }

// MaxY returns the exclusive bottom edge.
func (r Rect) MaxY() int { return r.Y + r.H }

// Center returns the midpoint of r (rounded down).
func (r Rect) Center() Pt { return Pt{r.X + r.W/2, r.Y + r.H/2} }

// Contains reports whether p lies inside r.
func (r Rect) Contains(p Pt) bool {
	return p.X >= r.X && p.X < r.MaxX() && p.Y >= r.Y && p.Y < r.MaxY()
}

// ContainsRect reports whether s lies entirely inside r. An empty s is
// contained in anything.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.X >= r.X && s.Y >= r.Y && s.MaxX() <= r.MaxX() && s.MaxY() <= r.MaxY()
}

// Translate returns r moved by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect { return Rect{r.X + dx, r.Y + dy, r.W, r.H} }

// Inset returns r shrunk by n pixels on every side (grown for negative n).
// The result may be empty.
func (r Rect) Inset(n int) Rect { return Rect{r.X + n, r.Y + n, r.W - 2*n, r.H - 2*n} }

// Intersect returns the overlap of r and s. The result is the zero Rect when
// they do not overlap.
func (r Rect) Intersect(s Rect) Rect {
	x0 := max(r.X, s.X)
	y0 := max(r.Y, s.Y)
	x1 := min(r.MaxX(), s.MaxX())
	y1 := min(r.MaxY(), s.MaxY())
	if x1 <= x0 || y1 <= y0 {
		return Rect{}
	}
	return Rect{x0, y0, x1 - x0, y1 - y0}
}

// Union returns the smallest rectangle containing both r and s. Empty
// rectangles are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return RectFromEdges(min(r.X, s.X), min(r.Y, s.Y), max(r.MaxX(), s.MaxX()), max(r.MaxY(), s.MaxY()))
}

// IoU returns the intersection-over-union of r and s in [0, 1]. Two empty
// rectangles have IoU 0.
func (r Rect) IoU(s Rect) float64 {
	inter := r.Intersect(s).Area()
	if inter == 0 {
		return 0
	}
	union := r.Area() + s.Area() - inter
	return float64(inter) / float64(union)
}

// Clamp returns r clipped to bounds.
func (r Rect) Clamp(bounds Rect) Rect { return r.Intersect(bounds) }

// BoxF is a rectangle with float64 coordinates, used by the detectors where
// sub-pixel box regression is meaningful. X, Y is the top-left corner.
type BoxF struct {
	X, Y, W, H float64
}

// BoxFromRect converts an integer rectangle to a float box.
func BoxFromRect(r Rect) BoxF {
	return BoxF{float64(r.X), float64(r.Y), float64(r.W), float64(r.H)}
}

// Rect converts the box back to integer pixels, rounding to nearest.
func (b BoxF) Rect() Rect {
	return Rect{roundi(b.X), roundi(b.Y), roundi(b.W), roundi(b.H)}
}

// CenterX returns the horizontal midpoint.
func (b BoxF) CenterX() float64 { return b.X + b.W/2 }

// CenterY returns the vertical midpoint.
func (b BoxF) CenterY() float64 { return b.Y + b.H/2 }

// Area returns the (non-negative) area of the box.
func (b BoxF) Area() float64 {
	if b.W <= 0 || b.H <= 0 {
		return 0
	}
	return b.W * b.H
}

// IoU returns intersection-over-union of two float boxes.
func (b BoxF) IoU(o BoxF) float64 {
	x0 := maxf(b.X, o.X)
	y0 := maxf(b.Y, o.Y)
	x1 := minf(b.X+b.W, o.X+o.W)
	y1 := minf(b.Y+b.H, o.Y+o.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	inter := (x1 - x0) * (y1 - y0)
	union := b.Area() + o.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Scale returns the box with both corners and size multiplied by (sx, sy).
// It maps boxes between the model input resolution and screen resolution.
func (b BoxF) Scale(sx, sy float64) BoxF {
	return BoxF{b.X * sx, b.Y * sy, b.W * sx, b.H * sy}
}

func roundi(f float64) int {
	if f >= 0 {
		return int(f + 0.5)
	}
	return int(f - 0.5)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
