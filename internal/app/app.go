// Package app simulates the Android applications DARPA monitors: apps churn
// their UI at realistic event rates (the paper measured ~32 accessibility
// events per minute for Taobao), occasionally pop asymmetric dark UIs with
// known ground truth, and optionally obfuscate their resource ids (which is
// what defeats the FraudDroid-like baseline of Section VI-C).
package app

import (
	"fmt"
	"time"

	"repro/internal/a11y"
	"repro/internal/auigen"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/uikit"
)

// Config shapes a simulated app's behaviour. The zero value is a typical
// content app.
type Config struct {
	// Package is the app's package name; empty means "com.example.app".
	Package string
	// EventsPerMinute is the background UI-update event rate. Zero means
	// 32, the Taobao rate from Section IV-B.
	EventsPerMinute float64
	// MeanAUIInterval is the mean time between AUI popups. Zero means 15s.
	MeanAUIInterval time.Duration
	// AUIDwellMin/Max bound how long an AUI stays on screen before the app
	// dismisses it itself. Zeros mean 800ms..6s — AUIs need user exposure
	// (Section IV-B), but some are transient.
	AUIDwellMin, AUIDwellMax time.Duration
	// AUIProb disables AUI popups entirely when 0 < p < 1 fails a draw at
	// launch; zero means always-on (1.0).
	AUIProb float64
	// Obfuscate replaces resource ids with meaningless tokens.
	Obfuscate bool
	// GenSeed seeds the app's AUI generator; zero derives it from the
	// package name length (still deterministic).
	GenSeed int64
}

func (c Config) pkg() string {
	if c.Package == "" {
		return "com.example.app"
	}
	return c.Package
}

func (c Config) eventsPerMinute() float64 {
	if c.EventsPerMinute == 0 {
		return 32
	}
	return c.EventsPerMinute
}

func (c Config) meanAUIInterval() time.Duration {
	if c.MeanAUIInterval == 0 {
		return 15 * time.Second
	}
	return c.MeanAUIInterval
}

func (c Config) dwellMin() time.Duration {
	if c.AUIDwellMin == 0 {
		return 800 * time.Millisecond
	}
	return c.AUIDwellMin
}

func (c Config) dwellMax() time.Duration {
	if c.AUIDwellMax == 0 {
		return 6 * time.Second
	}
	return c.AUIDwellMax
}

// AUIShowing describes one AUI popup instance on a running app.
type AUIShowing struct {
	AUI *auigen.AUI
	// Window is the dialog window hosting the AUI.
	Window *uikit.Window
	// ShownAt / DismissedAt are simulated timestamps; DismissedAt is zero
	// while showing.
	ShownAt, DismissedAt time.Duration
	// DismissedByClick reports the popup was closed through its UPO.
	DismissedByClick bool
}

// App is one simulated application bound to a screen and event bus.
type App struct {
	cfg    Config
	clock  *sim.Clock
	mgr    *a11y.Manager
	screen *uikit.Screen
	gen    *auigen.Generator

	window  *uikit.Window
	base    *auigen.NonAUI
	current *AUIShowing
	history []*AUIShowing

	churn   *sim.Ticker
	nextAUI *sim.Event
	stopped bool
}

// Launch creates the app's main window on the manager's screen and starts
// its background activity (content churn and AUI scheduling).
func Launch(clock *sim.Clock, mgr *a11y.Manager, cfg Config) *App {
	a := &App{cfg: cfg, clock: clock, mgr: mgr, screen: mgr.Screen()}
	seed := cfg.GenSeed
	if seed == 0 {
		seed = int64(len(cfg.pkg()))*7919 + 17
	}
	a.gen = auigen.New(seed, auigen.Config{ObfuscateIDs: cfg.Obfuscate})

	frame := a.screen.ContentFrame()
	a.base = a.gen.NonAUI(frame.W, frame.H)
	a.window = &uikit.Window{Owner: cfg.pkg(), Type: uikit.WindowApp, Frame: frame, Root: a.base.Root}
	a.screen.AddWindow(a.window)
	mgr.Emit(a11y.TypeWindowStateChanged, cfg.pkg())

	// Background churn. Real apps emit accessibility events in tight
	// bursts (an animation tick or list update yields several events within
	// ~150ms, then silence): the configured events-per-minute arrive as
	// periodic bursts, which is exactly the pattern ct-debouncing exploits.
	period := time.Duration(float64(time.Minute) / cfg.eventsPerMinute() * burstLen)
	a.churn = clock.NewTicker(period, a.churnBurst)

	if cfg.AUIProb == 0 || a.gen.Rand().Float64() < cfg.AUIProb {
		a.scheduleNextAUI()
	}
	return a
}

// Package returns the app's package name.
func (a *App) Package() string { return a.cfg.pkg() }

// Window returns the app's main window.
func (a *App) Window() *uikit.Window { return a.window }

// Current returns the AUI currently showing, or nil.
func (a *App) Current() *AUIShowing { return a.current }

// History returns every AUI popup the app has shown so far, in order.
func (a *App) History() []*AUIShowing {
	out := make([]*AUIShowing, len(a.history))
	copy(out, a.history)
	return out
}

// Stop halts all scheduled activity and removes the app's windows.
func (a *App) Stop() {
	if a.stopped {
		return
	}
	a.stopped = true
	a.churn.Stop()
	if a.nextAUI != nil {
		a.nextAUI.Cancel()
	}
	a.DismissAUI(false)
	a.screen.RemoveWindow(a.window)
	a.mgr.Emit(a11y.TypeWindowsChanged, a.cfg.pkg())
}

// burstLen is the mean number of events per churn burst.
const burstLen = 5

// churnBurst emits one burst of UI-update events spaced ~120ms apart.
func (a *App) churnBurst() {
	if a.stopped {
		return
	}
	n := 3 + a.gen.Rand().Intn(5)
	for i := 0; i < n; i++ {
		a.clock.Schedule(time.Duration(i)*time.Duration(100+a.gen.Rand().Intn(60))*time.Millisecond,
			a.churnOnce)
	}
}

// churnOnce mutates some cosmetic part of the base UI and emits the
// corresponding event — the high-frequency noise DARPA must debounce.
func (a *App) churnOnce() {
	if a.stopped {
		return
	}
	rng := a.gen.Rand()
	// Toggle the colour of a random leaf view.
	var leaves []*uikit.View
	var collect func(v *uikit.View)
	collect = func(v *uikit.View) {
		if len(v.Children) == 0 {
			leaves = append(leaves, v)
			return
		}
		for _, c := range v.Children {
			collect(c)
		}
	}
	collect(a.base.Root)
	if len(leaves) > 0 {
		leaf := leaves[rng.Intn(len(leaves))]
		if leaf.Color.A > 0 {
			leaf.Color = render.RGB(leaf.Color.R, leaf.Color.G^0x20, leaf.Color.B)
		}
	}
	events := []a11y.EventType{
		a11y.TypeWindowContentChanged, a11y.TypeWindowContentChanged,
		a11y.TypeViewScrolled, a11y.TypeViewFocused,
	}
	a.mgr.Emit(events[rng.Intn(len(events))], a.cfg.pkg())
}

// scheduleNextAUI arms the next popup at an exponential interval.
func (a *App) scheduleNextAUI() {
	if a.stopped {
		return
	}
	mean := float64(a.cfg.meanAUIInterval())
	delay := time.Duration(a.gen.Rand().ExpFloat64() * mean)
	if delay < 500*time.Millisecond {
		delay = 500 * time.Millisecond
	}
	a.nextAUI = a.clock.Schedule(delay, a.ShowAUI)
}

// ShowAUI pops an asymmetric dark UI immediately (normally driven by the
// scheduler; exposed for tests and experiments).
func (a *App) ShowAUI() {
	if a.stopped || a.current != nil {
		return
	}
	frame := a.screen.ContentFrame()
	aui := a.gen.AUI(frame.W, frame.H)
	if aui.FullScreen {
		frame = a.screen.Bounds()
		aui = a.gen.AUIFor(aui.Subject, frame.W, frame.H)
	}
	win := &uikit.Window{Owner: a.cfg.pkg(), Type: uikit.WindowDialog, Frame: frame, Root: aui.Root}
	showing := &AUIShowing{AUI: aui, Window: win, ShownAt: a.clock.Now()}
	// Wire the UPO(s) to dismiss the popup; the AGO "navigates" (here: it
	// just churns content, standing in for the redirect).
	for _, id := range aui.UPOIDs {
		if v := aui.Root.FindByID(id); v != nil {
			v.OnClick = func() { a.dismiss(showing, true) }
		}
	}
	for _, id := range aui.AGOIDs {
		if v := aui.Root.FindByID(id); v != nil {
			v.OnClick = func() {
				a.mgr.Emit(a11y.TypeWindowStateChanged, a.cfg.pkg())
			}
		}
	}
	a.current = showing
	a.history = append(a.history, showing)
	a.screen.AddWindow(win)
	a.mgr.Emit(a11y.TypeWindowsChanged, a.cfg.pkg())
	a.mgr.Emit(a11y.TypeWindowStateChanged, a.cfg.pkg())

	// Self-dismiss after the dwell time if the user never found the UPO.
	minD, maxD := a.cfg.dwellMin(), a.cfg.dwellMax()
	dwell := minD + time.Duration(a.gen.Rand().Int63n(int64(maxD-minD)+1))
	a.clock.Schedule(dwell, func() { a.dismiss(showing, false) })
}

// DismissAUI closes the current popup, if any.
func (a *App) DismissAUI(byClick bool) {
	if a.current != nil {
		a.dismiss(a.current, byClick)
	}
}

func (a *App) dismiss(s *AUIShowing, byClick bool) {
	if a.current != s || s.DismissedAt != 0 {
		return
	}
	s.DismissedAt = a.clock.Now()
	s.DismissedByClick = byClick
	a.current = nil
	a.screen.RemoveWindow(s.Window)
	a.mgr.Emit(a11y.TypeWindowsChanged, a.cfg.pkg())
	if !a.stopped {
		a.scheduleNextAUI()
	}
}

// String describes the app for logs.
func (a *App) String() string {
	return fmt.Sprintf("app(%s, %d AUIs shown)", a.cfg.pkg(), len(a.history))
}
