package app

import (
	"time"

	"repro/internal/a11y"
	"repro/internal/geom"
	"repro/internal/sim"
)

// Monkey drives random taps on the screen, the counterpart of the
// UI/Application Exerciser Monkey the paper uses to run each app for one
// minute when collecting screenshots and when evaluating end to end
// (Sections III-A and VI-C).
type Monkey struct {
	clock  *sim.Clock
	mgr    *a11y.Manager
	pkg    string
	ticker *sim.Ticker
	clicks int
}

// StartMonkey begins tapping random points every period (default 2s when
// zero) until stopped.
func StartMonkey(clock *sim.Clock, mgr *a11y.Manager, pkg string, period time.Duration) *Monkey {
	if period == 0 {
		period = 2 * time.Second
	}
	m := &Monkey{clock: clock, mgr: mgr, pkg: pkg}
	m.ticker = clock.NewTicker(period, m.tap)
	return m
}

// Clicks returns how many taps have been issued.
func (m *Monkey) Clicks() int { return m.clicks }

// Stop halts the monkey.
func (m *Monkey) Stop() { m.ticker.Stop() }

func (m *Monkey) tap() {
	s := m.mgr.Screen()
	rng := m.clock.Rand()
	p := geom.Pt{X: rng.Intn(s.W), Y: rng.Intn(s.H)}
	if v := s.Click(p); v != nil {
		m.mgr.Emit(a11y.TypeViewClicked, m.pkg)
		// The app reacts to the tap with a short burst of content events.
		for i := 1; i <= 2; i++ {
			i := i
			m.clock.Schedule(time.Duration(i*120)*time.Millisecond, func() {
				m.mgr.Emit(a11y.TypeWindowContentChanged, m.pkg)
			})
		}
	}
	m.clicks++
}
