package app

import (
	"testing"
	"time"

	"repro/internal/a11y"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/uikit"
)

func newEnv(seed int64) (*sim.Clock, *a11y.Manager) {
	clock := sim.NewClock(seed)
	screen := uikit.NewScreen(384, 640)
	return clock, a11y.NewManager(clock, screen)
}

func TestLaunchCreatesWindow(t *testing.T) {
	clock, mgr := newEnv(1)
	a := Launch(clock, mgr, Config{Package: "com.shop"})
	if mgr.Screen().TopWindow() != a.Window() {
		t.Fatal("app window not on screen")
	}
	if a.Package() != "com.shop" {
		t.Fatalf("package = %q", a.Package())
	}
}

func TestChurnEmitsEventsAtConfiguredRate(t *testing.T) {
	clock, mgr := newEnv(2)
	Launch(clock, mgr, Config{EventsPerMinute: 32, MeanAUIInterval: time.Hour})
	mgr.ResetStats()
	clock.RunFor(time.Minute)
	emitted := mgr.Stats().Emitted
	// 32 churn events per minute, plus a handful of AUI window events.
	if emitted < 28 || emitted > 45 {
		t.Fatalf("emitted %d events in a minute, want ~32", emitted)
	}
}

func TestAUIPopupLifecycle(t *testing.T) {
	clock, mgr := newEnv(3)
	a := Launch(clock, mgr, Config{MeanAUIInterval: 2 * time.Second})
	clock.RunFor(2 * time.Minute)
	hist := a.History()
	if len(hist) < 5 {
		t.Fatalf("only %d AUIs shown in 2 minutes with 2s mean interval", len(hist))
	}
	for i, h := range hist {
		if h.ShownAt == 0 && i > 0 {
			t.Fatalf("AUI %d has zero ShownAt", i)
		}
		if h.DismissedAt != 0 && h.DismissedAt < h.ShownAt {
			t.Fatalf("AUI %d dismissed before shown", i)
		}
		if h.DismissedAt != 0 {
			dwell := h.DismissedAt - h.ShownAt
			if dwell < 800*time.Millisecond || dwell > 6*time.Second {
				t.Fatalf("AUI %d dwell %v outside configured bounds", i, dwell)
			}
		}
	}
}

func TestOnlyOneAUIAtATime(t *testing.T) {
	clock, mgr := newEnv(4)
	a := Launch(clock, mgr, Config{MeanAUIInterval: time.Hour})
	a.ShowAUI()
	first := a.Current()
	a.ShowAUI() // ignored while one is up
	if a.Current() != first {
		t.Fatal("second ShowAUI replaced the first")
	}
	if len(a.History()) != 1 {
		t.Fatalf("history has %d entries, want 1", len(a.History()))
	}
	clock.RunFor(10 * time.Second) // let it self-dismiss
	if a.Current() != nil {
		t.Fatal("AUI never self-dismissed")
	}
}

func TestUPOClickDismisses(t *testing.T) {
	clock, mgr := newEnv(5)
	a := Launch(clock, mgr, Config{MeanAUIInterval: time.Hour})
	a.ShowAUI()
	showing := a.Current()
	if showing == nil {
		t.Fatal("no AUI showing")
	}
	// Find the UPO's absolute position and click it through the screen.
	upoID := showing.AUI.UPOIDs[0]
	var abs geom.Rect
	showing.AUI.Root.Walk(geom.Pt{X: showing.Window.Frame.X, Y: showing.Window.Frame.Y},
		func(v *uikit.View, r geom.Rect) bool {
			if v.ID == upoID {
				abs = r
				return false
			}
			return true
		})
	if abs.Empty() {
		t.Fatal("UPO not found in window")
	}
	if id := mgr.DispatchClick(abs.Center()); id != upoID {
		t.Fatalf("click hit %q, want %q", id, upoID)
	}
	if a.Current() != nil {
		t.Fatal("UPO click did not dismiss the AUI")
	}
	if !showing.DismissedByClick {
		t.Fatal("dismissal not recorded as click")
	}
}

func TestStopRemovesEverything(t *testing.T) {
	clock, mgr := newEnv(6)
	a := Launch(clock, mgr, Config{MeanAUIInterval: time.Second})
	clock.RunFor(5 * time.Second)
	a.Stop()
	if mgr.Screen().TopWindow() != nil {
		t.Fatal("windows remain after Stop")
	}
	before := len(a.History())
	clock.RunFor(time.Minute)
	if len(a.History()) != before {
		t.Fatal("app kept showing AUIs after Stop")
	}
	a.Stop() // idempotent
}

func TestObfuscationPropagates(t *testing.T) {
	clock, mgr := newEnv(7)
	a := Launch(clock, mgr, Config{Obfuscate: true, MeanAUIInterval: time.Hour})
	a.ShowAUI()
	for _, id := range a.Current().AUI.UPOIDs {
		if id == "btn_close" || id == "promo_close" {
			t.Fatalf("obfuscated app leaked semantic id %q", id)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []time.Duration {
		clock, mgr := newEnv(42)
		a := Launch(clock, mgr, Config{MeanAUIInterval: 3 * time.Second})
		clock.RunFor(time.Minute)
		var times []time.Duration
		for _, h := range a.History() {
			times = append(times, h.ShownAt)
		}
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different AUI counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("runs diverged")
		}
	}
}

func TestMonkeyClicksAndEmits(t *testing.T) {
	clock, mgr := newEnv(8)
	Launch(clock, mgr, Config{MeanAUIInterval: time.Hour})
	m := StartMonkey(clock, mgr, "monkey", 100*time.Millisecond)
	clock.RunFor(10 * time.Second)
	if m.Clicks() != 100 {
		t.Fatalf("monkey issued %d taps, want 100", m.Clicks())
	}
	m.Stop()
	n := m.Clicks()
	clock.RunFor(time.Second)
	if m.Clicks() != n {
		t.Fatal("monkey kept tapping after Stop")
	}
}
