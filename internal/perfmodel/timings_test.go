package perfmodel

import (
	"strings"
	"testing"
	"time"
)

func TestLatencyStatsObserve(t *testing.T) {
	var l LatencyStats
	l.Observe(10 * time.Millisecond)
	l.Observe(30 * time.Millisecond)
	if l.Count != 2 || l.Total != 40*time.Millisecond || l.Max != 30*time.Millisecond {
		t.Fatalf("stats = %+v", l)
	}
	if l.Mean() != 20*time.Millisecond {
		t.Fatalf("mean = %v", l.Mean())
	}
	if (LatencyStats{}).Mean() != 0 {
		t.Fatal("zero-value mean should be 0")
	}
}

func TestTimingsStages(t *testing.T) {
	rec := &Timings{}
	rec.Observe("infer", 5*time.Millisecond)
	rec.Observe("infer", 7*time.Millisecond)
	rec.Observe("capture", time.Millisecond)

	if got := rec.Stage("infer").Count; got != 2 {
		t.Fatalf("infer count = %d", got)
	}
	if got := rec.Stage("missing").Count; got != 0 {
		t.Fatalf("unknown stage count = %d", got)
	}
	stages := rec.Stages()
	if len(stages) != 2 || stages[0] != "capture" || stages[1] != "infer" {
		t.Fatalf("stages = %v, want sorted [capture infer]", stages)
	}
	if s := rec.String(); !strings.Contains(s, "infer: n=2") {
		t.Fatalf("summary %q missing infer stats", s)
	}
}
