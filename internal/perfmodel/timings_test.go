package perfmodel

import (
	"strings"
	"testing"
	"time"
)

func TestLatencyStatsObserve(t *testing.T) {
	var l LatencyStats
	l.Observe(10 * time.Millisecond)
	l.Observe(30 * time.Millisecond)
	if l.Count != 2 || l.Total != 40*time.Millisecond || l.Max != 30*time.Millisecond {
		t.Fatalf("stats = %+v", l)
	}
	if l.Mean() != 20*time.Millisecond {
		t.Fatalf("mean = %v", l.Mean())
	}
	if (LatencyStats{}).Mean() != 0 {
		t.Fatal("zero-value mean should be 0")
	}
}

// TestTimingsObserveBatch: one whole-batch observation counts every item, so
// Mean() stays an amortised per-item figure while Max keeps the whole-batch
// wall-clock duration.
func TestTimingsObserveBatch(t *testing.T) {
	rec := &Timings{}
	rec.ObserveBatch("infer", 80*time.Millisecond, 8)
	s := rec.Stage("infer")
	if s.Count != 8 || s.Max != 80*time.Millisecond {
		t.Fatalf("stats = %+v", s)
	}
	if s.Mean() != 10*time.Millisecond {
		t.Fatalf("amortised mean = %v, want 10ms", s.Mean())
	}
	rec.ObserveBatch("infer", time.Millisecond, 0)
	if rec.Stage("infer").Count != 8 {
		t.Fatal("zero-item batch should not be recorded")
	}
}

// TestTimingsNilReceiver: detector middleware threads an optional recorder
// through unconditionally, so a nil *Timings must absorb observations.
func TestTimingsNilReceiver(t *testing.T) {
	var rec *Timings
	rec.Observe("infer", time.Millisecond)
	rec.ObserveBatch("infer", time.Millisecond, 4)
	if got := rec.Stage("infer").Count; got != 0 {
		t.Fatalf("nil recorder reported Count=%d", got)
	}
	if rec.String() == "" {
		t.Fatal("nil recorder should still print a placeholder summary")
	}
}

// TestTimingsSnapshot: one call, one lock, every stage — and the returned
// map is detached from the recorder.
func TestTimingsSnapshot(t *testing.T) {
	rec := &Timings{}
	rec.Observe("infer", 10*time.Millisecond)
	rec.ObserveBatch("capture", 6*time.Millisecond, 3)
	snap := rec.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d stages, want 2", len(snap))
	}
	if snap["infer"].Count != 1 || snap["capture"].Count != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap["capture"].Mean() != 2*time.Millisecond {
		t.Fatalf("capture mean = %v", snap["capture"].Mean())
	}
	// Detached: later observations must not appear in the old snapshot.
	rec.Observe("infer", time.Millisecond)
	if snap["infer"].Count != 1 {
		t.Fatal("snapshot aliases live recorder state")
	}
	var nilRec *Timings
	if nilRec.Snapshot() != nil {
		t.Fatal("nil recorder snapshot should be nil")
	}
}

// TestTimingsAddItems: count-only stages tally items without latency, so
// event counters (cache hits, queue admissions) share the recorder.
func TestTimingsAddItems(t *testing.T) {
	rec := &Timings{}
	rec.AddItems("cache-hit", 5)
	rec.AddItems("cache-hit", 2)
	rec.AddItems("cache-hit", 0) // no-op
	s := rec.Stage("cache-hit")
	if s.Count != 7 || s.Total != 0 || s.Max != 0 {
		t.Fatalf("stats = %+v", s)
	}
	var nilRec *Timings
	nilRec.AddItems("cache-hit", 3) // must not panic
}

func TestTimingsStages(t *testing.T) {
	rec := &Timings{}
	rec.Observe("infer", 5*time.Millisecond)
	rec.Observe("infer", 7*time.Millisecond)
	rec.Observe("capture", time.Millisecond)

	if got := rec.Stage("infer").Count; got != 2 {
		t.Fatalf("infer count = %d", got)
	}
	if got := rec.Stage("missing").Count; got != 0 {
		t.Fatalf("unknown stage count = %d", got)
	}
	stages := rec.Stages()
	if len(stages) != 2 || stages[0] != "capture" || stages[1] != "infer" {
		t.Fatalf("stages = %v, want sorted [capture infer]", stages)
	}
	if s := rec.String(); !strings.Contains(s, "infer: n=2") {
		t.Fatalf("summary %q missing infer stats", s)
	}
}

// TestLatencyStatsQuantiles: nearest-rank percentiles over a known
// distribution, so the scheduler's latency claims are distribution-backed
// rather than mean-only.
func TestLatencyStatsQuantiles(t *testing.T) {
	var l LatencyStats
	for i := 1; i <= 100; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := l.P50(); got != 50*time.Millisecond {
		t.Fatalf("P50 = %v, want 50ms", got)
	}
	if got := l.P95(); got != 95*time.Millisecond {
		t.Fatalf("P95 = %v, want 95ms", got)
	}
	if got := l.P99(); got != 99*time.Millisecond {
		t.Fatalf("P99 = %v, want 99ms", got)
	}
	if got := (LatencyStats{}).P99(); got != 0 {
		t.Fatalf("empty P99 = %v, want 0", got)
	}
}

// TestLatencyStatsQuantileWindow: the reservoir is a sliding window — once
// more than latencyWindow observations land, old ones age out, so the
// quantiles describe recent behaviour.
func TestLatencyStatsQuantileWindow(t *testing.T) {
	var l LatencyStats
	for i := 0; i < latencyWindow; i++ {
		l.Observe(time.Millisecond)
	}
	for i := 0; i < latencyWindow; i++ {
		l.Observe(time.Second)
	}
	if got := l.P50(); got != time.Second {
		t.Fatalf("P50 after window rollover = %v, want 1s", got)
	}
	if l.Count != 2*latencyWindow {
		t.Fatalf("Count = %d, want %d", l.Count, 2*latencyWindow)
	}
}

// TestTimingsSnapshotQuantiles: Snapshot/String surface percentiles, and the
// snapshot shares no sample storage with the live recorder (a concurrent
// Observe after Snapshot must not skew the copy).
func TestTimingsSnapshotQuantiles(t *testing.T) {
	rec := &Timings{}
	for i := 1; i <= 4; i++ {
		rec.Observe("infer", time.Duration(i)*time.Millisecond)
	}
	snap := rec.Snapshot()["infer"]
	if got := snap.P50(); got != 2*time.Millisecond {
		t.Fatalf("snapshot P50 = %v, want 2ms", got)
	}
	rec.Observe("infer", time.Hour)
	if got := snap.P99(); got != 4*time.Millisecond {
		t.Fatalf("snapshot mutated by later Observe: P99 = %v", got)
	}
	if s := rec.String(); !strings.Contains(s, "p50=") || !strings.Contains(s, "p99=") {
		t.Fatalf("String() %q missing percentiles", s)
	}
	// ObserveBatch counts the batch once in the window (like Max), so an
	// 8-item batch does not flood the quantiles with one latency.
	rec2 := &Timings{}
	rec2.ObserveBatch("serve-batch", 80*time.Millisecond, 8)
	rec2.Observe("serve-batch", 2*time.Millisecond)
	if got := rec2.Stage("serve-batch").P50(); got != 2*time.Millisecond {
		t.Fatalf("batched stage P50 = %v, want 2ms (batch counted once)", got)
	}
}

// TestAddItemsKeepsQuantilesClean: event-only tallies (AddItems) must not
// enter the quantile ring. Historically AddItems routed through ObserveBatch
// with d=0 and sampled the zero, so any stage mixing timed observations with
// event counts reported p50/p95 dragged toward 0 — with enough events, all
// the way to 0.
func TestAddItemsKeepsQuantilesClean(t *testing.T) {
	rec := &Timings{}
	for i := 0; i < 100; i++ {
		rec.Observe("serve-batch", 10*time.Millisecond)
	}
	// Far more event records than timed ones: before the fix these zeros
	// dominate the window and drag every quantile to 0.
	rec.AddItems("serve-batch", 1)
	for i := 0; i < 400; i++ {
		rec.AddItems("serve-batch", 3)
	}
	st := rec.Stage("serve-batch")
	if got := st.P50(); got != 10*time.Millisecond {
		t.Fatalf("P50 after event tallies = %v, want 10ms (zero-duration records polluted the ring)", got)
	}
	if got := st.P99(); got != 10*time.Millisecond {
		t.Fatalf("P99 after event tallies = %v, want 10ms", got)
	}
	// The tally itself still advances: 100 observations + 1201 events.
	if st.Count != 100+1+400*3 {
		t.Fatalf("Count = %d, want %d", st.Count, 100+1+400*3)
	}
}
