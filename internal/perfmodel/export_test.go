package perfmodel

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestTimingsFamilies(t *testing.T) {
	rec := &Timings{}
	for i := 1; i <= 100; i++ {
		rec.Observe("infer", time.Duration(i)*time.Millisecond)
	}
	rec.AddItems("cache-hit", 42)

	fams := rec.Families()
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2", len(fams))
	}
	text := metrics.TextString(fams)
	if n, err := ValidateFamilies(text); err != nil || n == 0 {
		t.Fatalf("families do not render as valid exposition (n=%d): %v\n%s", n, err, text)
	}
	for _, want := range []string{
		`darpa_stage_latency_seconds{quantile="0.5",stage="infer"} 0.05`,
		`darpa_stage_latency_seconds{quantile="0.95",stage="infer"} 0.095`,
		`darpa_stage_latency_seconds{quantile="0.99",stage="infer"} 0.099`,
		`darpa_stage_latency_seconds_count{stage="infer"} 100`,
		`darpa_stage_latency_seconds_count{stage="cache-hit"} 42`,
		`darpa_stage_latency_max_seconds{stage="infer"} 0.1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing series %q in:\n%s", want, text)
		}
	}
}

// ValidateFamilies runs the shared exposition validator over rendered text.
func ValidateFamilies(text string) (int, error) {
	return metrics.ValidateText(strings.NewReader(text))
}

func TestTimingsFamiliesNilAndEmpty(t *testing.T) {
	var nilRec *Timings
	if fams := nilRec.Families(); fams != nil {
		t.Errorf("nil recorder exported %d families", len(fams))
	}
	if fams := (&Timings{}).Families(); fams != nil {
		t.Errorf("empty recorder exported %d families", len(fams))
	}
}

// referenceQuantile computes the nearest-rank quantile over the expected
// recent window with a plain sort — the oracle the ring-buffer implementation
// is checked against.
func referenceQuantile(window []time.Duration, q float64) time.Duration {
	sorted := append([]time.Duration(nil), window...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TestLatencyStatsQuantileReference feeds N observations and compares every
// quantile the exporters use against a reference sort of the last
// min(N, window) observations — exactly at the window boundary, one short of
// it, one past it (first wrap), and deep into wrap-around where the ring
// cursor has lapped several times.
func TestLatencyStatsQuantileReference(t *testing.T) {
	const window = 512 // == latencyWindow; the test pins the documented size
	if window != latencyWindow {
		t.Fatalf("latencyWindow changed to %d; update the telemetry docs and this test", latencyWindow)
	}
	sizes := []int{1, 2, window - 1, window, window + 1, window + 7, 2*window + 3, 5*window + 91}
	quantiles := []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0}
	rng := rand.New(rand.NewSource(7))
	for _, n := range sizes {
		var ls LatencyStats
		all := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			// Mix heavy-tail spikes into a uniform base so quantiles differ.
			d := time.Duration(rng.Intn(20000)) * time.Microsecond
			if rng.Intn(50) == 0 {
				d += time.Duration(rng.Intn(500)) * time.Millisecond
			}
			all = append(all, d)
			ls.Observe(d)
		}
		start := 0
		if n > window {
			start = n - window
		}
		recent := all[start:]
		for _, q := range quantiles {
			got, want := ls.Quantile(q), referenceQuantile(recent, q)
			if got != want {
				t.Errorf("n=%d q=%.2f: ring quantile %v, reference sort %v", n, q, got, want)
			}
		}
		if ls.Count != n {
			t.Errorf("n=%d: Count=%d", n, ls.Count)
		}
	}
}

// TestLatencyStatsQuantileWrapOrderIndependence pins that once the ring has
// wrapped, evictions are strictly oldest-first: a burst of large values
// followed by exactly `window` small ones must leave no trace of the burst.
func TestLatencyStatsQuantileWrapOrderIndependence(t *testing.T) {
	var ls LatencyStats
	for i := 0; i < 100; i++ {
		ls.Observe(time.Second) // the burst that must be fully evicted
	}
	for i := 0; i < latencyWindow; i++ {
		ls.Observe(time.Millisecond)
	}
	if got := ls.Quantile(1.0); got != time.Millisecond {
		t.Errorf("max over window = %v; burst leaked past its eviction point", got)
	}
	if ls.Max != time.Second {
		t.Errorf("all-time Max = %v, want 1s", ls.Max)
	}
}
