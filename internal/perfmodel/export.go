package perfmodel

// Metric export: Timings renders its per-stage latency counters as summary
// families, turning the recorder every serving layer already feeds into the
// telemetry the fleet harness dumps and GET /metrics serves.

import (
	"sort"
	"time"

	"repro/internal/metrics"
)

// Families renders the recorder as metric families: one summary family
// (p50/p95/p99 quantiles over the recent window, plus _sum/_count all-time)
// and one max gauge, both labelled by stage. The snapshot is taken under one
// lock acquisition, so the families are mutually consistent. A nil recorder
// exports nothing.
func (t *Timings) Families() []metrics.Family {
	snap := t.Snapshot()
	if len(snap) == 0 {
		return nil
	}
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)

	latency := metrics.Family{
		Name: "darpa_stage_latency_seconds",
		Help: "Per-stage latency: p50/p95/p99 over the recent observation window, sum/count all-time.",
		Type: metrics.TypeSummary,
	}
	maxes := metrics.Family{
		Name: "darpa_stage_latency_max_seconds",
		Help: "Largest latency ever observed per stage.",
		Type: metrics.TypeGauge,
	}
	for _, name := range names {
		s := snap[name]
		for _, q := range []struct {
			label string
			v     time.Duration
		}{{"0.5", s.P50()}, {"0.95", s.P95()}, {"0.99", s.P99()}} {
			latency.Samples = append(latency.Samples,
				metrics.L(q.v.Seconds(), "stage", name, "quantile", q.label))
		}
		latency.Samples = append(latency.Samples,
			metrics.Sample{Suffix: "_sum", Labels: map[string]string{"stage": name}, Value: s.Total.Seconds()},
			metrics.Sample{Suffix: "_count", Labels: map[string]string{"stage": name}, Value: float64(s.Count)},
		)
		maxes.Samples = append(maxes.Samples, metrics.L(s.Max.Seconds(), "stage", name))
	}
	return []metrics.Family{latency, maxes}
}
