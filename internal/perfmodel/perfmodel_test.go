package perfmodel

import (
	"testing"
	"time"
)

// deployed returns the activity of the deployed profile (ct = 200 ms) on
// the 100-app x 1-minute workload: ~1 event/s delivered, ~0.13 analyses/s,
// a decoration on roughly a third of analyses.
func deployed() Activity {
	return Activity{
		Duration:        100 * time.Minute,
		EventsDelivered: 6000,
		Analyses:        770,
		Decorations:     260,
	}
}

func TestZeroActivityIsBaseline(t *testing.T) {
	r := Estimate(Activity{Duration: time.Minute})
	if r.CPUPct != BaselineCPU || r.MemMB != BaselineMemMB || r.FPS != BaselineFPS || r.PowerMW != BaselinePower {
		t.Fatalf("idle report %+v differs from baseline", r)
	}
}

func TestZeroDurationIsBaseline(t *testing.T) {
	r := Estimate(Activity{})
	if r.CPUPct != BaselineCPU {
		t.Fatalf("zero-duration report %+v", r)
	}
}

func TestDeployedProfileMatchesTable7Magnitudes(t *testing.T) {
	r := Estimate(deployed())
	cpu, mem, fps, power := r.Overhead()
	// Table VII total overhead: +2.54 % CPU, +121.84 MB, -7 fps, +30.27 mW.
	if cpu < 1.0 || cpu > 5.5 {
		t.Errorf("CPU overhead %.2f%%, paper reports +2.54%%", cpu)
	}
	if mem < 90 || mem > 150 {
		t.Errorf("memory overhead %.1f MB, paper reports +121.84 MB", mem)
	}
	if fps > -3 || fps < -14 {
		t.Errorf("frame-rate change %.1f fps, paper reports -7 fps", fps)
	}
	if power < 12 || power > 60 {
		t.Errorf("power overhead %.1f mW, paper reports +30.27 mW", power)
	}
}

func TestMonitoringOnlyCheaperThanDetection(t *testing.T) {
	mon := deployed()
	mon.Analyses = 0
	mon.Decorations = 0
	full := deployed()
	rMon, rFull := Estimate(mon), Estimate(full)
	if rMon.CPUPct >= rFull.CPUPct {
		t.Fatal("monitoring alone should cost less CPU than the full pipeline")
	}
	if rMon.MemMB >= rFull.MemMB {
		t.Fatal("monitoring alone should use less memory (no model loaded)")
	}
	if rMon.FPS <= rFull.FPS {
		t.Fatal("monitoring alone should keep a higher frame rate")
	}
}

func TestDetectionDominatesOverhead(t *testing.T) {
	// Section VI-D: "the main reason for the overhead is running the AUI
	// detection model".
	base := deployed()
	mon := base
	mon.Analyses, mon.Decorations = 0, 0
	det := base
	det.Decorations = 0
	full := base
	cpuMon, _, _, powMon := Estimate(mon).Overhead()
	cpuDet, _, _, powDet := Estimate(det).Overhead()
	cpuFull, _, _, powFull := Estimate(full).Overhead()
	detectShareCPU := cpuDet - cpuMon
	decoShareCPU := cpuFull - cpuDet
	if detectShareCPU <= cpuMon || detectShareCPU <= decoShareCPU {
		t.Fatalf("detection CPU share %.2f should dominate monitor %.2f and decoration %.2f",
			detectShareCPU, cpuMon, decoShareCPU)
	}
	if powDet-powMon <= powFull-powDet {
		t.Fatal("detection power share should exceed decoration share")
	}
}

func TestSmallCutoffBlowsUpCPU(t *testing.T) {
	// Table VIII: ct = 50 ms runs ~3x the analyses of ct = 200 ms and CPU
	// rises superlinearly (86.5 % vs 57.8 %).
	ct200 := deployed()
	ct50 := deployed()
	ct50.Analyses = 2291
	ct50.Decorations = 700
	r200, r50 := Estimate(ct200), Estimate(ct50)
	if r50.CPUPct <= r200.CPUPct+5 {
		t.Fatalf("ct=50 CPU %.1f barely above ct=200 CPU %.1f; want superlinear growth", r50.CPUPct, r200.CPUPct)
	}
	if r50.FPS >= r200.FPS {
		t.Fatal("ct=50 should hurt frame rate more")
	}
	if r50.PowerMW <= r200.PowerMW {
		t.Fatal("ct=50 should draw more power")
	}
	// And the magnitudes should be in the paper's ballpark.
	if r50.CPUPct < 70 || r50.CPUPct > 100 {
		t.Errorf("ct=50 CPU %.1f%%, paper reports 86.5%%", r50.CPUPct)
	}
	if r200.CPUPct < 56 || r200.CPUPct > 63 {
		t.Errorf("ct=200 CPU %.1f%%, paper reports 57.8%%", r200.CPUPct)
	}
}

func TestQueueMultiplierMonotonic(t *testing.T) {
	prev := 0.0
	for rate := 0.0; rate < 1.0; rate += 0.05 {
		m := queueMultiplier(rate)
		if m < 1 {
			t.Fatalf("multiplier %v < 1 at rate %v", m, rate)
		}
		if m < prev {
			t.Fatalf("multiplier not monotonic at rate %v", rate)
		}
		prev = m
	}
	if queueMultiplier(10) > 1/(1-0.88)+1e-9 {
		t.Fatal("multiplier not clamped at saturation")
	}
}

func TestFPSFloor(t *testing.T) {
	r := Estimate(Activity{Duration: time.Second, EventsDelivered: 10000, Analyses: 10000, Decorations: 10000})
	if r.FPS < 1 {
		t.Fatalf("fps %v below floor", r.FPS)
	}
}
