package perfmodel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// LatencyStats accumulates wall-clock latency observations for one pipeline
// stage. The zero value is ready to use.
type LatencyStats struct {
	Count int
	Total time.Duration
	Max   time.Duration
}

// Observe folds one measurement into the counters.
func (l *LatencyStats) Observe(d time.Duration) {
	l.Count++
	l.Total += d
	if d > l.Max {
		l.Max = d
	}
}

// Mean returns the average observed latency, 0 when nothing was observed.
func (l LatencyStats) Mean() time.Duration {
	if l.Count == 0 {
		return 0
	}
	return l.Total / time.Duration(l.Count)
}

// Timings collects per-stage latency counters — the measured counterpart of
// the analytical per-unit costs above. The service pipeline and the
// detect.WithTiming middleware both feed it, so an operator can see where a
// detection cycle spends its time (the decomposition behind Table VII's
// incremental rows). Safe for concurrent use.
type Timings struct {
	mu     sync.Mutex
	stages map[string]*LatencyStats
}

// Observe records one measurement for the named stage. A nil recorder is a
// no-op, so components with an optional *Timings hook need not guard it.
func (t *Timings) Observe(stage string, d time.Duration) {
	t.ObserveBatch(stage, d, 1)
}

// ObserveBatch records a batch of items measured under one wall-clock
// interval: Count advances by items — so Mean() reports the amortised
// per-item latency — while Max treats the batch as a single observation.
// A nil recorder or a non-positive item count is a no-op.
func (t *Timings) ObserveBatch(stage string, d time.Duration, items int) {
	if t == nil || items <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stages == nil {
		t.stages = make(map[string]*LatencyStats)
	}
	s := t.stages[stage]
	if s == nil {
		s = &LatencyStats{}
		t.stages[stage] = s
	}
	s.Count += items
	s.Total += d
	if d > s.Max {
		s.Max = d
	}
}

// AddItems advances a stage's Count without contributing latency — for
// event-style stages (cache hits, queue admissions) where only the tally is
// meaningful. A nil recorder or non-positive count is a no-op.
func (t *Timings) AddItems(stage string, items int) {
	t.ObserveBatch(stage, 0, items)
}

// Stage returns a snapshot of one stage's counters. A nil recorder reports
// zero counters.
func (t *Timings) Stage(name string) LatencyStats {
	if t == nil {
		return LatencyStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.stages[name]; ok {
		return *s
	}
	return LatencyStats{}
}

// Stages returns the observed stage names, sorted. A nil recorder has none.
func (t *Timings) Stages() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.stages))
	for name := range t.stages {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns every stage's counters under a single lock acquisition,
// so the returned map is one consistent point-in-time view — concurrent
// recorders cannot skew one stage against another, which per-stage Stage()
// calls allow. The map is a copy; mutating it does not affect the recorder.
// A nil recorder returns nil.
func (t *Timings) Snapshot() map[string]LatencyStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]LatencyStats, len(t.stages))
	for name, s := range t.stages {
		out[name] = *s
	}
	return out
}

// String renders a one-line-per-stage summary for logs, from one consistent
// snapshot (a single lock acquisition, not one per stage).
func (t *Timings) String() string {
	snap := t.Snapshot()
	if len(snap) == 0 {
		return "no timings recorded"
	}
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		s := snap[name]
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s: n=%d mean=%v max=%v", name, s.Count, s.Mean().Round(time.Microsecond), s.Max.Round(time.Microsecond))
	}
	return b.String()
}
