package perfmodel

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// latencyWindow bounds the per-stage sample reservoir backing the quantile
// estimates: the most recent latencyWindow wall-clock observations are kept
// in a ring. A sliding window (rather than all-time reservoir sampling)
// makes the percentiles track the *current* behaviour of a long-lived
// service — a latency regression shows up within one window instead of
// being averaged away against hours of history.
const latencyWindow = 512

// LatencyStats accumulates wall-clock latency observations for one pipeline
// stage. The zero value is ready to use. Count/Total/Max cover everything
// ever observed; the quantile accessors (Quantile, P50/P95/P99) are computed
// over the most recent latencyWindow observations.
type LatencyStats struct {
	Count int
	Total time.Duration
	Max   time.Duration

	// samples is the recent-window ring behind Quantile; next is the ring
	// cursor once the window is full.
	samples []time.Duration
	next    int
}

// Observe folds one measurement into the counters.
func (l *LatencyStats) Observe(d time.Duration) {
	l.Count++
	l.Total += d
	if d > l.Max {
		l.Max = d
	}
	l.sample(d)
}

// sample records one wall-clock observation in the recent window.
func (l *LatencyStats) sample(d time.Duration) {
	if len(l.samples) < latencyWindow {
		l.samples = append(l.samples, d)
		return
	}
	l.samples[l.next] = d
	l.next = (l.next + 1) % latencyWindow
}

// clone deep-copies the stats so a snapshot shares no storage with the live
// recorder (the ring is mutated in place once full).
func (l *LatencyStats) clone() LatencyStats {
	c := *l
	c.samples = append([]time.Duration(nil), l.samples...)
	return c
}

// Mean returns the average observed latency, 0 when nothing was observed.
func (l LatencyStats) Mean() time.Duration {
	if l.Count == 0 {
		return 0
	}
	return l.Total / time.Duration(l.Count)
}

// Quantile returns the q-th (0 < q <= 1) latency quantile over the recent
// observation window, using the nearest-rank method. It returns 0 when
// nothing was observed. Batched observations count once (the batch's wall
// time), matching how Max treats them.
func (l LatencyStats) Quantile(q float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// P50 is the median of the recent observation window.
func (l LatencyStats) P50() time.Duration { return l.Quantile(0.50) }

// P95 is the 95th percentile of the recent observation window.
func (l LatencyStats) P95() time.Duration { return l.Quantile(0.95) }

// P99 is the 99th percentile of the recent observation window — the tail
// the scheduler's latency claims are judged on.
func (l LatencyStats) P99() time.Duration { return l.Quantile(0.99) }

// Timings collects per-stage latency counters — the measured counterpart of
// the analytical per-unit costs above. The service pipeline and the
// detect.WithTiming middleware both feed it, so an operator can see where a
// detection cycle spends its time (the decomposition behind Table VII's
// incremental rows). Safe for concurrent use.
type Timings struct {
	mu     sync.Mutex
	stages map[string]*LatencyStats
}

// Observe records one measurement for the named stage. A nil recorder is a
// no-op, so components with an optional *Timings hook need not guard it.
func (t *Timings) Observe(stage string, d time.Duration) {
	t.ObserveBatch(stage, d, 1)
}

// ObserveBatch records a batch of items measured under one wall-clock
// interval: Count advances by items — so Mean() reports the amortised
// per-item latency — while Max treats the batch as a single observation.
// A nil recorder or a non-positive item count is a no-op.
func (t *Timings) ObserveBatch(stage string, d time.Duration, items int) {
	if t == nil || items <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stages == nil {
		t.stages = make(map[string]*LatencyStats)
	}
	s := t.stages[stage]
	if s == nil {
		s = &LatencyStats{}
		t.stages[stage] = s
	}
	s.Count += items
	s.Total += d
	if d > s.Max {
		s.Max = d
	}
	// Event-only records (AddItems routes here with d == 0) advance the
	// tally but stay out of the quantile ring: a stage mixing timed
	// observations with event counts would otherwise report p50/p95 dragged
	// toward 0 by samples that never measured anything.
	if d > 0 {
		s.sample(d)
	}
}

// AddItems advances a stage's Count without contributing latency — for
// event-style stages (cache hits, queue admissions) where only the tally is
// meaningful. A nil recorder or non-positive count is a no-op.
func (t *Timings) AddItems(stage string, items int) {
	t.ObserveBatch(stage, 0, items)
}

// Stage returns a snapshot of one stage's counters. A nil recorder reports
// zero counters.
func (t *Timings) Stage(name string) LatencyStats {
	if t == nil {
		return LatencyStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.stages[name]; ok {
		return s.clone()
	}
	return LatencyStats{}
}

// Stages returns the observed stage names, sorted. A nil recorder has none.
func (t *Timings) Stages() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.stages))
	for name := range t.stages {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns every stage's counters under a single lock acquisition,
// so the returned map is one consistent point-in-time view — concurrent
// recorders cannot skew one stage against another, which per-stage Stage()
// calls allow. The map is a copy; mutating it does not affect the recorder.
// A nil recorder returns nil.
func (t *Timings) Snapshot() map[string]LatencyStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]LatencyStats, len(t.stages))
	for name, s := range t.stages {
		out[name] = s.clone()
	}
	return out
}

// String renders a one-line-per-stage summary for logs, from one consistent
// snapshot (a single lock acquisition, not one per stage).
func (t *Timings) String() string {
	snap := t.Snapshot()
	if len(snap) == 0 {
		return "no timings recorded"
	}
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		s := snap[name]
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s: n=%d mean=%v p50=%v p95=%v p99=%v max=%v", name, s.Count,
			s.Mean().Round(time.Microsecond), s.P50().Round(time.Microsecond),
			s.P95().Round(time.Microsecond), s.P99().Round(time.Microsecond),
			s.Max.Round(time.Microsecond))
	}
	return b.String()
}
