// Package perfmodel estimates the device-level cost of running DARPA — the
// counterpart of the SoloPi measurements behind Tables VII and VIII. The
// reproduction has no Redmi 10, so a calibrated analytical model converts
// the simulation's activity counters (events delivered, analyses run,
// decorations drawn) into the four metrics the paper reports: CPU %, memory
// MB, frame rate and power draw.
//
// Calibration: the baseline row of Table VII (55.22 % CPU, 4291.96 MB,
// 81 fps, 443.85 mW) anchors the model; per-unit costs are chosen so the
// deployed configuration (ct = 200 ms on the 100-app workload) reproduces
// the incremental rows of Table VII, and an M/D/1-style queueing multiplier
// on inference reproduces the superlinear CPU growth the paper observes at
// small cut-off intervals (Table VIII).
package perfmodel

import "time"

// Baseline metrics of the simulated handset under the app workload without
// DARPA (Table VII row 1).
const (
	BaselineCPU   = 55.22   // percent
	BaselineMemMB = 4291.96 // MB
	BaselineFPS   = 81.0    // frames per second
	BaselinePower = 443.85  // milliwatt
)

// Per-unit costs (documented calibration constants).
const (
	// cpuPerEventPct is CPU percentage-seconds per accessibility callback
	// delivered to DARPA (event parsing + debounce bookkeeping).
	cpuPerEventPct = 0.60
	// cpuPerAnalysisPct is CPU percentage-seconds per screenshot+inference
	// cycle before queueing effects (~100 ms of a big core, matching the
	// paper's on-CPU YOLO latency).
	cpuPerAnalysisPct = 11.0
	// cpuPerDecorationPct is CPU percentage-seconds per decoration window
	// added (WindowManager transaction + recomposition).
	cpuPerDecorationPct = 3.5
	// inferenceServiceTime is the effective busy time of one analysis used
	// by the queueing multiplier.
	inferenceServiceTime = 2.2 // seconds
	// Memory deltas (MB): monitoring buffers, the resident CV model with
	// its tensors, and decoration assets.
	memMonitorMB    = 60.0
	memModelMB      = 55.0
	memDecorationMB = 6.5
	// Frame-rate losses: callback jank per event/s, composition stalls per
	// analysis/s (scaled by queue pressure), overdraw per decoration/s.
	fpsPerEventRate    = 1.9
	fpsPerAnalysisRate = 7.0
	fpsPerDecoRate     = 55.0
	// Power: ~5.5 mW per extra CPU percentage point plus screen overdraw per
	// decoration/s.
	powerPerCPUPct   = 5.5
	powerPerDecoRate = 120.0
)

// Activity summarises what DARPA did over a measured interval.
type Activity struct {
	// Duration of the measurement window.
	Duration time.Duration
	// EventsDelivered counts accessibility callbacks DARPA received.
	EventsDelivered int
	// Analyses counts screenshot+inference cycles.
	Analyses int
	// Decorations counts decoration windows added.
	Decorations int
}

// Report is one row of Table VII / VIII.
type Report struct {
	CPUPct  float64
	MemMB   float64
	FPS     float64
	PowerMW float64
}

// queueMultiplier models inference requests queuing behind each other on
// the single big core: utilisation u = rate * service time, multiplier
// 1/(1-u) clamped well below saturation.
func queueMultiplier(analysisRate float64) float64 {
	u := analysisRate * inferenceServiceTime
	if u > 0.88 {
		u = 0.88
	}
	return 1 / (1 - u)
}

// Estimate converts an activity summary into device metrics.
func Estimate(a Activity) Report {
	secs := a.Duration.Seconds()
	if secs <= 0 {
		return Report{CPUPct: BaselineCPU, MemMB: BaselineMemMB, FPS: BaselineFPS, PowerMW: BaselinePower}
	}
	evRate := float64(a.EventsDelivered) / secs
	anRate := float64(a.Analyses) / secs
	decoRate := float64(a.Decorations) / secs

	qm := queueMultiplier(anRate)
	cpu := BaselineCPU +
		cpuPerEventPct*evRate +
		cpuPerAnalysisPct*anRate*qm +
		cpuPerDecorationPct*decoRate

	mem := BaselineMemMB
	if a.EventsDelivered > 0 {
		mem += memMonitorMB
	}
	if a.Analyses > 0 {
		mem += memModelMB
	}
	if a.Decorations > 0 {
		mem += memDecorationMB
	}

	fps := BaselineFPS -
		fpsPerEventRate*evRate -
		fpsPerAnalysisRate*anRate*qm -
		fpsPerDecoRate*decoRate
	if fps < 1 {
		fps = 1
	}

	power := BaselinePower +
		powerPerCPUPct*(cpu-BaselineCPU) +
		powerPerDecoRate*decoRate

	return Report{CPUPct: cpu, MemMB: mem, FPS: fps, PowerMW: power}
}

// Overhead returns the deltas of r against the baseline, as reported in the
// "Total overhead" row of Table VII.
func (r Report) Overhead() (cpuPct, memMB, fps, powerMW float64) {
	return r.CPUPct - BaselineCPU, r.MemMB - BaselineMemMB, r.FPS - BaselineFPS, r.PowerMW - BaselinePower
}
