// Package httpd is the network front end over the layered serving stack:
// the paper deploys DARPA as an always-on detection service, and this
// package is what lets anything outside the process consume it. It exposes
//
//	POST /v1/detect  one screen in (base64 or raw PNG), detections and
//	                 decoration decisions out, admission verdicts mapped to
//	                 status codes (429 rate-limited, 503 shed/draining)
//	GET  /v1/events  an SSE stream of decoration decisions and periodic
//	                 fleet-stats frames, with heartbeats and per-client
//	                 drop-on-slow buffers
//	GET  /v1/stats   one JSON fleet snapshot
//	GET  /metrics    Prometheus text exposition (admission, scheduler,
//	                 replica health, stage latencies, HTTP/SSE counters)
//	GET  /healthz    readiness probe
//
// The handler chain is deliberately thin: tenant identity comes off the
// request headers onto serve.WithTenant, the screen rides
// detect.PredictCanvasCtx into whatever Predictor the server fronts
// (typically a serve.Batcher: admission → scheduler → replica pool), and the
// admission layer's verdicts come back as typed errors this package
// translates into HTTP semantics. Degrade-don't-fail extends to the wire: a
// shed request is answered 503 *with* a degraded heuristic body when the
// server has a fallback chain, so the client still gets something to act on
// plus the truthful status that the full model never ran.
package httpd

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"image/png"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/render"
	"repro/internal/serve"
	"repro/internal/yolite"
)

// Tenant/priority request headers. An Authorization bearer token doubles as
// the tenant identity when X-Darpa-Tenant is absent, so existing token-based
// clients map onto admission without a second header.
const (
	HeaderTenant   = "X-Darpa-Tenant"
	HeaderPriority = "X-Darpa-Priority"
)

// Defaults for Config fields left zero.
const (
	DefaultHeartbeat     = 15 * time.Second
	DefaultStatsInterval = 5 * time.Second
	DefaultClientBuffer  = 64
	DefaultMaxBodyBytes  = 8 << 20
)

// Config wires the server to the serving stack.
type Config struct {
	// Backend answers detection requests; typically a *serve.Batcher so
	// admission, scheduling and the replica pool sit behind every call.
	// Required.
	Backend detect.Predictor
	// Stats, when non-nil, supplies the serving-layer snapshot (admission
	// ledger, per-replica health) for /v1/stats and the SSE stats frames.
	// Wire it to Batcher.Stats.
	Stats func() serve.Stats
	// Timings, when non-nil, contributes per-stage p50/p95/p99 to the stats
	// payloads. Share the recorder given to serve.Options.Timings.
	Timings *perfmodel.Timings
	// Degraded, when non-nil, answers shed requests: it is wrapped in a
	// detect.WithFallback chain (circuit breaker included) and its result
	// rides the 503 body so an overloaded server still returns decisions a
	// client can act on. Nil means shed requests get a bare 503.
	Degraded detect.Detector
	// ConfThresh is the default confidence threshold when a request does
	// not set one. Zero means yolite.DefaultConfThresh.
	ConfThresh float64
	// StrokeWidth/UPOColor/AGOColor parameterise the decoration decisions
	// in responses and events, with the same zero defaults as core.Config.
	StrokeWidth        int
	UPOColor, AGOColor render.Color
	// Heartbeat is the SSE keep-alive comment interval. Zero means 15s.
	Heartbeat time.Duration
	// StatsInterval is how often each SSE subscriber receives a stats
	// frame. Zero means 5s; negative disables stats frames.
	StatsInterval time.Duration
	// ClientBuffer is each SSE subscriber's event buffer; when it is full
	// further events are dropped for that client (never blocking the
	// serving path). Zero means 64.
	ClientBuffer int
	// MaxBodyBytes bounds a detect request body. Zero means 8 MiB.
	MaxBodyBytes int64
	// Logf receives request-level diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) confThresh() float64 {
	if c.ConfThresh == 0 {
		return yolite.DefaultConfThresh
	}
	return c.ConfThresh
}

func (c Config) heartbeat() time.Duration {
	if c.Heartbeat <= 0 {
		return DefaultHeartbeat
	}
	return c.Heartbeat
}

func (c Config) statsInterval() time.Duration {
	if c.StatsInterval == 0 {
		return DefaultStatsInterval
	}
	return c.StatsInterval
}

func (c Config) maxBody() int64 {
	if c.MaxBodyBytes <= 0 {
		return DefaultMaxBodyBytes
	}
	return c.MaxBodyBytes
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Server is the HTTP front end. Create with New, mount as an http.Handler,
// and call BeginDrain when shutting down.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	bcast    *broadcaster
	degraded detect.Predictor // WithFallback chain over cfg.Degraded; nil when unset

	draining atomic.Bool

	// Request-outcome counters for the stats payloads.
	served      atomic.Int64 // 200s
	rateLimited atomic.Int64 // 429s
	overloaded  atomic.Int64 // 503s from shedding
	degradedOK  atomic.Int64 // 503s that carried a degraded body
}

// New builds the front end. Panics when cfg.Backend is nil — a detection
// service with nothing to detect with is a programming error.
func New(cfg Config) *Server {
	if cfg.Backend == nil {
		panic("httpd: Config.Backend is required")
	}
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		bcast: newBroadcaster(cfg.ClientBuffer),
	}
	if cfg.Degraded != nil {
		s.degraded = detect.WithFallback(detect.FallbackOptions{Timings: cfg.Timings}, cfg.Degraded)
	}
	s.mux.HandleFunc("/v1/detect", s.handleDetect)
	s.mux.HandleFunc("/v1/events", s.handleEvents)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// BeginDrain starts graceful shutdown at the application layer: new detect
// requests are refused with 503, every SSE stream is closed so the HTTP
// server's connection drain can complete, and no new subscribers are
// accepted. The caller then shuts the http.Server down and finally closes
// the Batcher, which drains queued requests. Idempotent.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.bcast.close()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// DetectRequest is the POST /v1/detect JSON body. Alternatively the body may
// be a raw PNG (Content-Type: image/png) with the threshold in ?conf=.
type DetectRequest struct {
	// Screen is the base64 (standard encoding) PNG screenshot.
	Screen string `json:"screen"`
	// Conf overrides the server's confidence threshold when > 0.
	Conf float64 `json:"conf,omitempty"`
}

// Box is a detection rectangle in screen (canvas) coordinates.
type Box struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	W float64 `json:"w"`
	H float64 `json:"h"`
}

// Detection is one detected option on the wire.
type Detection struct {
	Class string  `json:"class"` // "AGO" or "UPO"
	Box   Box     `json:"box"`
	Score float64 `json:"score"`
}

// Decoration is one decoration decision: draw a Stroke-wide border of Color
// around Frame. Frames are in screen coordinates; remote consumers draw them
// as-is (the in-process service additionally applies anchor-view
// calibration, which needs the live window manager).
type Decoration struct {
	Class  string `json:"class"`
	Frame  Box    `json:"frame"`
	Color  string `json:"color"` // #rrggbb
	Stroke int    `json:"stroke"`
}

// DetectResponse is the POST /v1/detect reply. On 429/503 only Error (and,
// when a degraded chain answered, Degraded plus the decision fields) is set.
type DetectResponse struct {
	Detections  []Detection  `json:"detections"`
	Decorations []Decoration `json:"decorations"`
	// Bypass ranks the UPO regions an auto-bypass would click, best first
	// (the same top-3 rule the in-process service uses).
	Bypass []Box `json:"bypass,omitempty"`
	// Degraded marks a result produced by the fallback chain instead of
	// the full model — present on 503-with-body answers.
	Degraded bool   `json:"degraded,omitempty"`
	Tenant   string `json:"tenant"`
	Width    int    `json:"width"`
	Height   int    `json:"height"`
	Error    string `json:"error,omitempty"`
}

// DecorationEvent is the SSE "decoration" event payload: the decisions just
// served to one detect call, so auditors watching the stream see every
// screen's verdict in real time.
type DecorationEvent struct {
	Tenant      string       `json:"tenant"`
	Width       int          `json:"width"`
	Height      int          `json:"height"`
	Detections  []Detection  `json:"detections"`
	Decorations []Decoration `json:"decorations"`
	Degraded    bool         `json:"degraded,omitempty"`
}

// StageStats is one pipeline stage's latency summary in a stats payload.
type StageStats struct {
	Count  int   `json:"count"`
	MeanUS int64 `json:"mean_us"`
	P50US  int64 `json:"p50_us"`
	P95US  int64 `json:"p95_us"`
	P99US  int64 `json:"p99_us"`
	MaxUS  int64 `json:"max_us"`
}

// StatsPayload is the /v1/stats body and the SSE "stats" frame.
type StatsPayload struct {
	// Admission ledger (Offered == Admitted + Shed + Rejected) and
	// per-replica health, straight from serve.Stats.
	Offered  int                                  `json:"offered"`
	Admitted int                                  `json:"admitted"`
	Shed     int                                  `json:"shed"`
	Rejected int                                  `json:"rejected"`
	Tenants  map[serve.TenantID]serve.TenantStats `json:"tenants,omitempty"`
	Replicas []serve.ReplicaStats                 `json:"replicas,omitempty"`
	Batches  int                                  `json:"batches"`
	Items    int                                  `json:"items"`

	// HTTP-layer outcomes.
	Served      int64 `json:"served"`
	RateLimited int64 `json:"rate_limited"`
	Overloaded  int64 `json:"overloaded"`
	DegradedOK  int64 `json:"degraded_served"`

	// SSE health.
	Subscribers int `json:"subscribers"`
	Dropped     int `json:"dropped_events"`

	// Stages maps perfmodel stage names to latency summaries.
	Stages map[string]StageStats `json:"stages,omitempty"`

	Draining bool `json:"draining,omitempty"`
}

// tenantFromRequest maps the auth/tenant headers onto the serving layer's
// identity: X-Darpa-Tenant (or the Authorization bearer token) names the
// tenant, X-Darpa-Priority asks for a scheduler tier. The Batcher's tenant
// table still outranks the priority claim, exactly as for in-process
// callers.
func tenantFromRequest(r *http.Request) serve.TenantInfo {
	info := serve.TenantInfo{ID: serve.DefaultTenant}
	if t := r.Header.Get(HeaderTenant); t != "" {
		info.ID = serve.TenantID(t)
	} else if auth := r.Header.Get("Authorization"); auth != "" {
		if tok, ok := strings.CutPrefix(auth, "Bearer "); ok && tok != "" {
			info.ID = serve.TenantID(tok)
		}
	}
	if strings.EqualFold(r.Header.Get(HeaderPriority), "batch") {
		info.Priority = serve.PriorityBatch
	}
	return info
}

// readScreen decodes the request into a canvas and threshold.
func (s *Server) readScreen(r *http.Request) (*render.Canvas, float64, error) {
	conf := s.cfg.confThresh()
	body := io.LimitReader(r.Body, s.cfg.maxBody()+1)
	var pngBytes []byte
	if strings.HasPrefix(r.Header.Get("Content-Type"), "image/png") {
		raw, err := io.ReadAll(body)
		if err != nil {
			return nil, 0, fmt.Errorf("reading body: %w", err)
		}
		pngBytes = raw
		if q := r.URL.Query().Get("conf"); q != "" {
			v, err := strconv.ParseFloat(q, 64)
			if err != nil || v <= 0 || v >= 1 {
				return nil, 0, fmt.Errorf("invalid conf %q", q)
			}
			conf = v
		}
	} else {
		var req DetectRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			return nil, 0, fmt.Errorf("decoding JSON: %w", err)
		}
		if req.Screen == "" {
			return nil, 0, errors.New(`missing "screen"`)
		}
		raw, err := base64.StdEncoding.DecodeString(req.Screen)
		if err != nil {
			return nil, 0, fmt.Errorf("decoding base64 screen: %w", err)
		}
		pngBytes = raw
		if req.Conf > 0 {
			conf = req.Conf
		}
	}
	if int64(len(pngBytes)) > s.cfg.maxBody() {
		return nil, 0, fmt.Errorf("screen exceeds %d bytes", s.cfg.maxBody())
	}
	img, err := png.Decode(bytes.NewReader(pngBytes))
	if err != nil {
		return nil, 0, fmt.Errorf("decoding PNG: %w", err)
	}
	return render.FromImage(img), conf, nil
}

// handleDetect is POST /v1/detect.
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	info := tenantFromRequest(r)
	if s.draining.Load() {
		// ErrClosed semantics at the HTTP layer: the server is draining, so
		// refuse before touching the (closing) serving stack.
		s.writeError(w, http.StatusServiceUnavailable, info, "server draining", "1")
		return
	}
	canvas, conf, err := s.readScreen(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, info, err.Error(), "")
		return
	}
	ctx := serve.WithTenant(r.Context(), info)
	dets, err := detect.PredictCanvasCtx(ctx, s.cfg.Backend, canvas, conf)
	switch {
	case err == nil:
		s.served.Add(1)
		s.writeResult(w, http.StatusOK, info, canvas, dets, false)
	case errors.Is(err, serve.ErrRateLimited):
		// The tenant outran its token bucket: terminal for this request,
		// and retrying immediately will fail again — hence Retry-After.
		s.rateLimited.Add(1)
		s.writeError(w, http.StatusTooManyRequests, info, err.Error(), "1")
	case errors.Is(err, serve.ErrOverloaded):
		// Shed for global queue depth. With a degraded chain the client
		// still gets decisions to act on — inside a 503 so it knows the
		// full model never saw this screen.
		s.overloaded.Add(1)
		if s.degraded != nil {
			if ddets, derr := detect.PredictCanvasCtx(ctx, s.degraded, canvas, conf); derr == nil {
				s.degradedOK.Add(1)
				w.Header().Set("Retry-After", "1")
				s.writeResult(w, http.StatusServiceUnavailable, info, canvas, ddets, true)
				return
			}
		}
		s.writeError(w, http.StatusServiceUnavailable, info, err.Error(), "1")
	case errors.Is(err, serve.ErrClosed):
		s.writeError(w, http.StatusServiceUnavailable, info, "server draining", "1")
	case errors.Is(err, r.Context().Err()):
		// The client left (or its deadline passed) while we worked; there
		// is no one to answer. 499-style: log and drop.
		s.cfg.logf("httpd: client gone mid-detect (tenant %s): %v", info.ID, err)
	default:
		s.cfg.logf("httpd: detect failed (tenant %s): %v", info.ID, err)
		s.writeError(w, http.StatusInternalServerError, info, "detection failed", "")
	}
}

// writeResult renders a successful (or degraded) detection body and
// publishes the matching SSE decoration event.
func (s *Server) writeResult(w http.ResponseWriter, status int, info serve.TenantInfo, c *render.Canvas, dets []metrics.Detection, degraded bool) {
	resp := DetectResponse{
		Detections:  toWireDetections(dets),
		Decorations: s.planDecorations(dets),
		Bypass:      toWireBoxes(core.BypassTargets(dets)),
		Degraded:    degraded,
		Tenant:      string(info.ID),
		Width:       c.W,
		Height:      c.H,
	}
	if len(dets) > 0 {
		s.bcast.publish("decoration", DecorationEvent{
			Tenant:      string(info.ID),
			Width:       c.W,
			Height:      c.H,
			Detections:  resp.Detections,
			Decorations: resp.Decorations,
			Degraded:    degraded,
		})
	}
	writeJSON(w, status, resp)
}

// writeError renders an error body, with Retry-After when the condition is
// transient.
func (s *Server) writeError(w http.ResponseWriter, status int, info serve.TenantInfo, msg, retryAfter string) {
	if retryAfter != "" {
		w.Header().Set("Retry-After", retryAfter)
	}
	writeJSON(w, status, DetectResponse{Tenant: string(info.ID), Error: msg})
}

// planDecorations maps detections to wire decoration decisions using the
// same pure planner the in-process decorator executes.
func (s *Server) planDecorations(dets []metrics.Detection) []Decoration {
	plan := core.PlanDecorations(dets, s.cfg.UPOColor, s.cfg.AGOColor, s.cfg.StrokeWidth)
	out := make([]Decoration, 0, len(plan))
	for _, d := range plan {
		out = append(out, Decoration{
			Class:  className(d.Class),
			Frame:  Box{X: float64(d.Frame.X), Y: float64(d.Frame.Y), W: float64(d.Frame.W), H: float64(d.Frame.H)},
			Color:  fmt.Sprintf("#%02x%02x%02x", d.Color.R, d.Color.G, d.Color.B),
			Stroke: d.Stroke,
		})
	}
	return out
}

// handleStats is GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsPayload())
}

// handleHealth is GET /healthz: 200 while serving, 503 while draining, so
// load balancers stop routing before the drain finishes.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// statsPayload assembles one fleet snapshot.
func (s *Server) statsPayload() StatsPayload {
	p := StatsPayload{
		Served:      s.served.Load(),
		RateLimited: s.rateLimited.Load(),
		Overloaded:  s.overloaded.Load(),
		DegradedOK:  s.degradedOK.Load(),
		Draining:    s.draining.Load(),
	}
	p.Subscribers, p.Dropped = s.bcast.counts()
	if s.cfg.Stats != nil {
		st := s.cfg.Stats()
		p.Offered, p.Admitted, p.Shed, p.Rejected = st.Offered, st.Admitted, st.Shed, st.Rejected
		p.Tenants = st.Tenants
		p.Replicas = st.Replicas
		p.Batches, p.Items = st.Batches, st.Items
	}
	if snap := s.cfg.Timings.Snapshot(); len(snap) > 0 {
		p.Stages = make(map[string]StageStats, len(snap))
		for name, st := range snap {
			p.Stages[name] = StageStats{
				Count:  st.Count,
				MeanUS: st.Mean().Microseconds(),
				P50US:  st.P50().Microseconds(),
				P95US:  st.P95().Microseconds(),
				P99US:  st.P99().Microseconds(),
				MaxUS:  st.Max.Microseconds(),
			}
		}
	}
	return p
}

// handleEvents is GET /v1/events: the SSE stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := s.bcast.subscribe()
	if sub == nil {
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return
	}
	defer s.bcast.unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": darpa event stream\n\n")
	fl.Flush()

	hb := time.NewTicker(s.cfg.heartbeat())
	defer hb.Stop()
	var statsC <-chan time.Time
	if iv := s.cfg.statsInterval(); iv > 0 {
		t := time.NewTicker(iv)
		defer t.Stop()
		statsC = t.C
	}
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				// Broadcaster closed: the server is draining. End the
				// stream so the connection drain can complete.
				return
			}
			writeEvent(w, ev)
			fl.Flush()
		case <-statsC:
			data, err := json.Marshal(s.statsPayload())
			if err == nil {
				writeEvent(w, event{name: "stats", data: data})
				fl.Flush()
			}
		case <-hb.C:
			// Comment heartbeat: keeps intermediaries from idling the
			// connection out without waking client-side event handlers.
			fmt.Fprintf(w, ": hb\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent frames one SSE event.
func writeEvent(w io.Writer, ev event) {
	if ev.id > 0 {
		fmt.Fprintf(w, "id: %d\n", ev.id)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func className(c dataset.Class) string {
	if c == dataset.ClassUPO {
		return "UPO"
	}
	return "AGO"
}

func toWireDetections(dets []metrics.Detection) []Detection {
	out := make([]Detection, 0, len(dets))
	for _, d := range dets {
		out = append(out, Detection{Class: className(d.Class), Box: toWireBox(d), Score: d.Score})
	}
	return out
}

func toWireBoxes(dets []metrics.Detection) []Box {
	out := make([]Box, 0, len(dets))
	for _, d := range dets {
		out = append(out, toWireBox(d))
	}
	return out
}

func toWireBox(d metrics.Detection) Box {
	return Box{X: d.B.X, Y: d.B.Y, W: d.B.W, H: d.B.H}
}
