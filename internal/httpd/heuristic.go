package httpd

import (
	"context"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// PixelHeuristic is the front end's degraded-path detector: a microsecond
// pixel-statistics scan that stands in when the scheduler sheds a request.
// The in-process fleet degrades onto the frauddroid view-metadata heuristic,
// but a network client sends pixels only — no view hierarchy — so the
// degraded chain here works from the screenshot alone: the AGO is found as
// the largest connected vivid region (the paper's app-guided options are
// deliberately big, saturated and central), and a UPO is proposed as the
// strongest small luma outlier in the band just above it (close buttons sit
// small and low-contrast at a dialog's top edge). Like frauddroid, the
// heuristic is binary: detections carry confidence 1 and the threshold is
// ignored. Precision is deliberately traded for cost — this answers in the
// time the admission layer takes to say no.
type PixelHeuristic struct{}

// The heuristic drops into the ordinary detector seams.
var (
	_ detect.Detector         = PixelHeuristic{}
	_ detect.ContextPredictor = PixelHeuristic{}
)

// Name implements detect.Detector.
func (PixelHeuristic) Name() string { return "pixel-heuristic" }

// heurCell is the analysis grid pitch in pixels.
const heurCell = 8

// PredictTensor scans batch item n. Detections are in x's own coordinate
// system, like any backend.
func (PixelHeuristic) PredictTensor(x *tensor.Tensor, n int, _ float64) []metrics.Detection {
	if x == nil || len(x.Shape) != 4 || n < 0 || n >= x.Shape[0] {
		return nil
	}
	h, w := x.Shape[2], x.Shape[3]
	gh, gw := h/heurCell, w/heurCell
	if gh < 3 || gw < 3 {
		return nil
	}
	plane := h * w
	base := n * 3 * plane

	// Per-cell mean colour.
	type cell struct{ r, g, b float64 }
	cells := make([]cell, gh*gw)
	for cy := 0; cy < gh; cy++ {
		for cx := 0; cx < gw; cx++ {
			var c cell
			for dy := 0; dy < heurCell; dy++ {
				row := (cy*heurCell + dy) * w
				for dx := 0; dx < heurCell; dx++ {
					i := row + cx*heurCell + dx
					c.r += float64(x.Data[base+i])
					c.g += float64(x.Data[base+plane+i])
					c.b += float64(x.Data[base+2*plane+i])
				}
			}
			inv := 1.0 / float64(heurCell*heurCell)
			cells[cy*gw+cx] = cell{c.r * inv, c.g * inv, c.b * inv}
		}
	}
	luma := func(c cell) float64 { return 0.299*c.r + 0.587*c.g + 0.114*c.b }
	sat := func(c cell) float64 {
		max, min := c.r, c.r
		for _, v := range []float64{c.g, c.b} {
			if v > max {
				max = v
			}
			if v < min {
				min = v
			}
		}
		return max - min
	}

	// Largest 4-connected component of vivid cells = the AGO candidate.
	vivid := make([]bool, gh*gw)
	for i, c := range cells {
		l := luma(c)
		vivid[i] = sat(c) > 0.18 && l > 0.08 && l < 0.92
	}
	seen := make([]bool, gh*gw)
	var best []int
	for start := range vivid {
		if !vivid[start] || seen[start] {
			continue
		}
		comp := []int{start}
		seen[start] = true
		for q := 0; q < len(comp); q++ {
			i := comp[q]
			cy, cx := i/gw, i%gw
			for _, nb := range [][2]int{{cy - 1, cx}, {cy + 1, cx}, {cy, cx - 1}, {cy, cx + 1}} {
				ny, nx := nb[0], nb[1]
				if ny < 0 || nx < 0 || ny >= gh || nx >= gw {
					continue
				}
				j := ny*gw + nx
				if vivid[j] && !seen[j] {
					seen[j] = true
					comp = append(comp, j)
				}
			}
		}
		if len(comp) > len(best) {
			best = comp
		}
	}
	if len(best) < 2 {
		return nil // nothing big and vivid enough to call an AGO
	}
	minY, minX, maxY, maxX := gh, gw, -1, -1
	for _, i := range best {
		cy, cx := i/gw, i%gw
		if cy < minY {
			minY = cy
		}
		if cy > maxY {
			maxY = cy
		}
		if cx < minX {
			minX = cx
		}
		if cx > maxX {
			maxX = cx
		}
	}
	dets := []metrics.Detection{{
		Class: dataset.ClassAGO,
		B: geom.BoxF{
			X: float64(minX * heurCell),
			Y: float64(minY * heurCell),
			W: float64((maxX - minX + 1) * heurCell),
			H: float64((maxY - minY + 1) * heurCell),
		},
		Score: 1,
	}}

	// UPO candidate: the strongest luma outlier in the band just above the
	// AGO, spanning its columns plus one cell of margin.
	bandTop := minY - 4
	if bandTop < 0 {
		bandTop = 0
	}
	if bandTop < minY {
		var sum float64
		var count int
		for cy := bandTop; cy < minY; cy++ {
			for cx := max(0, minX-1); cx <= min(gw-1, maxX+1); cx++ {
				sum += luma(cells[cy*gw+cx])
				count++
			}
		}
		if count > 0 {
			mean := sum / float64(count)
			bestDev, bestIdx := 0.0, -1
			for cy := bandTop; cy < minY; cy++ {
				for cx := max(0, minX-1); cx <= min(gw-1, maxX+1); cx++ {
					dev := luma(cells[cy*gw+cx]) - mean
					if dev < 0 {
						dev = -dev
					}
					if dev > bestDev {
						bestDev, bestIdx = dev, cy*gw+cx
					}
				}
			}
			if bestIdx >= 0 && bestDev > 0.12 {
				cy, cx := bestIdx/gw, bestIdx%gw
				dets = append(dets, metrics.Detection{
					Class: dataset.ClassUPO,
					B: geom.BoxF{
						X: float64(cx * heurCell),
						Y: float64(cy * heurCell),
						W: heurCell,
						H: heurCell,
					},
					Score: 1,
				})
			}
		}
	}
	return dets
}

// PredictTensorCtx honours an already-dead context; the scan itself is too
// short to checkpoint.
func (p PixelHeuristic) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, conf float64) ([]metrics.Detection, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p.PredictTensor(x, n, conf), nil
}
