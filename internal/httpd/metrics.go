package httpd

import (
	"net/http"

	"repro/internal/metrics"
)

// ContentTypeMetrics is the Prometheus text exposition content type served
// by GET /metrics.
const ContentTypeMetrics = "text/plain; version=0.0.4; charset=utf-8"

// handleMetrics is GET /metrics: one Prometheus text snapshot assembling the
// serving stack's families (admission ledger, scheduler, replica health),
// the per-stage latency summaries, and this front end's own request and SSE
// counters. The families come from the same snapshots /v1/stats renders, so
// a scraper and a JSON poller can never disagree about the same instant's
// shape.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", ContentTypeMetrics)
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
		return
	}
	if err := metrics.WriteText(w, s.families()); err != nil {
		s.cfg.logf("httpd: writing /metrics: %v", err)
	}
}

// families assembles the full exposition: HTTP layer first (it owns the
// endpoint), then the serving stack, then stage latencies.
func (s *Server) families() []metrics.Family {
	subs, dropped := s.bcast.counts()
	draining := 0.0
	if s.draining.Load() {
		draining = 1
	}
	fams := []metrics.Family{
		metrics.Counter("darpa_http_requests_total",
			"Detect requests by HTTP outcome.",
			metrics.L(float64(s.served.Load()), "outcome", "served"),
			metrics.L(float64(s.rateLimited.Load()), "outcome", "rate_limited"),
			metrics.L(float64(s.overloaded.Load()), "outcome", "overloaded"),
			metrics.L(float64(s.degradedOK.Load()), "outcome", "degraded")),
		metrics.Gauge("darpa_sse_subscribers",
			"Live SSE event-stream subscribers.", metrics.V(float64(subs))),
		metrics.Counter("darpa_sse_dropped_total",
			"SSE events dropped on slow subscribers.", metrics.V(float64(dropped))),
		metrics.Gauge("darpa_http_draining",
			"1 while BeginDrain has been called.", metrics.V(draining)),
	}
	if s.cfg.Stats != nil {
		fams = append(fams, s.cfg.Stats().Families()...)
	}
	fams = append(fams, s.cfg.Timings.Families()...)
	return fams
}
