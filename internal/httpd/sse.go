package httpd

import (
	"encoding/json"
	"sync"
)

// This file is the SSE fan-out: one broadcaster holds every /v1/events
// subscriber, and publishing is strictly non-blocking. A subscriber that
// cannot keep up — a stalled TCP connection, a consumer busy rendering —
// loses events rather than back-pressuring the serving path: the stream
// carries advisory decoration decisions and periodic stats frames, both of
// which age badly, so delivering a stale backlog to a slow client would be
// worse than dropping it. Per-client and global drop counts are kept so the
// stats frames report the loss instead of hiding it.

// event is one framed server-sent event.
type event struct {
	name string
	id   uint64
	data []byte
}

// subscriber is one connected /v1/events client.
type subscriber struct {
	ch chan event

	mu      sync.Mutex
	dropped int // events lost to this client's full buffer
}

// drops returns how many events this subscriber has lost.
func (s *subscriber) drops() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

func (s *subscriber) noteDrop() {
	s.mu.Lock()
	s.dropped++
	s.mu.Unlock()
}

// broadcaster fans events out to every live subscriber.
type broadcaster struct {
	buffer int

	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	seq     uint64
	dropped int
	closed  bool
}

func newBroadcaster(buffer int) *broadcaster {
	if buffer <= 0 {
		buffer = 64
	}
	return &broadcaster{buffer: buffer, subs: make(map[*subscriber]struct{})}
}

// subscribe registers a new client. It returns nil once the broadcaster is
// closed — the server is draining and no new stream should start.
func (b *broadcaster) subscribe() *subscriber {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	s := &subscriber{ch: make(chan event, b.buffer)}
	b.subs[s] = struct{}{}
	return s
}

// unsubscribe removes a client; safe to call after close.
func (b *broadcaster) unsubscribe(s *subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.subs, s)
}

// publish marshals payload and offers it to every subscriber without
// blocking: a full client buffer drops the event for that client only. It
// returns the event's sequence id (0 when closed or marshalling failed).
func (b *broadcaster) publish(name string, payload any) uint64 {
	data, err := json.Marshal(payload)
	if err != nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0
	}
	b.seq++
	ev := event{name: name, id: b.seq, data: data}
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.noteDrop()
			b.dropped++
		}
	}
	return b.seq
}

// close ends every stream: subscriber channels are closed (handlers see
// ok=false and return) and future subscribes are refused. Idempotent.
func (b *broadcaster) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		close(s.ch)
	}
	b.subs = make(map[*subscriber]struct{})
}

// counts reports the live subscriber count and total events dropped to slow
// clients.
func (b *broadcaster) counts() (subscribers, dropped int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs), b.dropped
}
