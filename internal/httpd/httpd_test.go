package httpd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"image/png"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/render"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/yolite"
)

// canvasTensor prepares a canvas the way the detect path does.
func canvasTensor(c *render.Canvas) *tensor.Tensor { return yolite.CanvasToTensor(c) }

// wireStub is a scriptable backend: it answers with fixed detections or a
// fixed error, optionally blocking on gate so tests can hold a request
// in flight.
type wireStub struct {
	dets []metrics.Detection
	err  error
	gate chan struct{} // when non-nil, calls block until closed (or ctx dies)

	mu      sync.Mutex
	conf    float64
	calls   int
	entered chan struct{}
	once    sync.Once
}

func (s *wireStub) Name() string { return "wire-stub" }

func (s *wireStub) PredictTensor(x *tensor.Tensor, n int, conf float64) []metrics.Detection {
	dets, _ := s.PredictTensorCtx(context.Background(), x, n, conf)
	return dets
}

func (s *wireStub) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, conf float64) ([]metrics.Detection, error) {
	s.mu.Lock()
	s.conf = conf
	s.calls++
	s.mu.Unlock()
	if s.entered != nil {
		s.once.Do(func() { close(s.entered) })
	}
	if s.gate != nil {
		select {
		case <-s.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	return s.dets, nil
}

func (s *wireStub) lastConf() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conf
}

// testDets is a UPO above an AGO, in model-input coordinates.
func testDets() []metrics.Detection {
	return []metrics.Detection{
		{Class: dataset.ClassUPO, B: geom.BoxF{X: 10, Y: 20, W: 30, H: 15}, Score: 0.9},
		{Class: dataset.ClassAGO, B: geom.BoxF{X: 5, Y: 100, W: 80, H: 40}, Score: 0.8},
	}
}

// screenPNG renders a 96x160 screen (model-input size, so wire coordinates
// equal model coordinates) and returns its PNG bytes.
func screenPNG(t *testing.T) []byte {
	t.Helper()
	c := render.NewCanvas(96, 160)
	c.Fill(c.Bounds(), render.White)
	var buf bytes.Buffer
	if err := png.Encode(&buf, c.Image()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func detectBody(t *testing.T, conf float64) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(DetectRequest{
		Screen: base64.StdEncoding.EncodeToString(screenPNG(t)),
		Conf:   conf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func doDetect(t *testing.T, h http.Handler, hdr map[string]string, body *bytes.Reader) (*httptest.ResponseRecorder, DetectResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/detect", body)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var resp DetectResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("status %d: decoding body %q: %v", w.Code, w.Body.String(), err)
	}
	return w, resp
}

func TestDetectOKJSON(t *testing.T) {
	stub := &wireStub{dets: testDets()}
	s := New(Config{Backend: stub})

	w, resp := doDetect(t, s, map[string]string{HeaderTenant: "alice"}, detectBody(t, 0))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (body %s)", w.Code, w.Body.String())
	}
	if resp.Tenant != "alice" || resp.Width != 96 || resp.Height != 160 {
		t.Fatalf("envelope = %q %dx%d, want alice 96x160", resp.Tenant, resp.Width, resp.Height)
	}
	if len(resp.Detections) != 2 || resp.Detections[0].Class != "UPO" || resp.Detections[1].Class != "AGO" {
		t.Fatalf("detections = %+v, want UPO then AGO", resp.Detections)
	}
	// Canvas is model-input sized, so wire boxes equal the stub's boxes.
	if b := resp.Detections[0].Box; b != (Box{X: 10, Y: 20, W: 30, H: 15}) {
		t.Fatalf("UPO box = %+v", b)
	}
	if len(resp.Decorations) != 2 {
		t.Fatalf("decorations = %+v, want 2", resp.Decorations)
	}
	upo := resp.Decorations[0]
	if upo.Color != "#16a34a" || upo.Stroke != 3 {
		t.Fatalf("UPO decoration = %+v, want green stroke 3", upo)
	}
	// Frame is the detection box inset outward by the stroke width.
	if upo.Frame != (Box{X: 7, Y: 17, W: 36, H: 21}) {
		t.Fatalf("UPO frame = %+v, want box inset by -3", upo.Frame)
	}
	if resp.Decorations[1].Color != "#dc2626" {
		t.Fatalf("AGO decoration = %+v, want red", resp.Decorations[1])
	}
	if len(resp.Bypass) != 1 || resp.Bypass[0] != (Box{X: 10, Y: 20, W: 30, H: 15}) {
		t.Fatalf("bypass = %+v, want the single UPO box", resp.Bypass)
	}
	if resp.Degraded || resp.Error != "" {
		t.Fatalf("degraded/error set on a clean 200: %+v", resp)
	}
}

func TestDetectRawPNGWithConfQuery(t *testing.T) {
	stub := &wireStub{dets: testDets()}
	s := New(Config{Backend: stub})

	req := httptest.NewRequest(http.MethodPost, "/v1/detect?conf=0.3", bytes.NewReader(screenPNG(t)))
	req.Header.Set("Content-Type", "image/png")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", w.Code, w.Body.String())
	}
	if got := stub.lastConf(); got != 0.3 {
		t.Fatalf("backend saw conf %v, want 0.3 from query param", got)
	}

	req = httptest.NewRequest(http.MethodPost, "/v1/detect?conf=2", bytes.NewReader(screenPNG(t)))
	req.Header.Set("Content-Type", "image/png")
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range conf: status = %d, want 400", w.Code)
	}
}

func TestDetectBadRequests(t *testing.T) {
	s := New(Config{Backend: &wireStub{}})
	cases := []struct {
		name string
		body string
	}{
		{"bad JSON", "{"},
		{"missing screen", "{}"},
		{"bad base64", `{"screen":"!!!"}`},
		{"not a PNG", `{"screen":"` + base64.StdEncoding.EncodeToString([]byte("nope")) + `"}`},
	}
	for _, tc := range cases {
		w, resp := doDetect(t, s, nil, bytes.NewReader([]byte(tc.body)))
		if w.Code != http.StatusBadRequest || resp.Error == "" {
			t.Errorf("%s: status = %d error %q, want 400 with error", tc.name, w.Code, resp.Error)
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/detect", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status = %d, want 405", w.Code)
	}
}

func TestDetectBodyLimit(t *testing.T) {
	s := New(Config{Backend: &wireStub{dets: testDets()}, MaxBodyBytes: 16})
	w, resp := doDetect(t, s, nil, detectBody(t, 0))
	if w.Code != http.StatusBadRequest || resp.Error == "" {
		t.Fatalf("oversized screen: status = %d error %q, want 400", w.Code, resp.Error)
	}
}

func TestDetectRateLimited(t *testing.T) {
	s := New(Config{Backend: &wireStub{err: serve.ErrRateLimited}})
	w, resp := doDetect(t, s, map[string]string{"Authorization": "Bearer acme"}, detectBody(t, 0))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if resp.Error == "" || resp.Tenant != "acme" {
		t.Fatalf("body = %+v, want error and bearer-token tenant", resp)
	}
	if got := s.statsPayload(); got.RateLimited != 1 || got.Served != 0 {
		t.Fatalf("counters = %+v, want rate_limited 1", got)
	}
}

func TestDetectShedWithDegradedBody(t *testing.T) {
	degraded := &wireStub{dets: testDets()[1:]} // the heuristic finds the AGO only
	s := New(Config{Backend: &wireStub{err: serve.ErrOverloaded}, Degraded: degraded})

	w, resp := doDetect(t, s, nil, detectBody(t, 0))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
	if !resp.Degraded {
		t.Fatalf("body = %+v, want Degraded:true", resp)
	}
	if len(resp.Detections) != 1 || resp.Detections[0].Class != "AGO" {
		t.Fatalf("degraded detections = %+v, want the heuristic's AGO", resp.Detections)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed 503 without Retry-After")
	}
	if got := s.statsPayload(); got.Overloaded != 1 || got.DegradedOK != 1 {
		t.Fatalf("counters = %+v, want overloaded 1 degraded_served 1", got)
	}
}

func TestDetectShedBare(t *testing.T) {
	s := New(Config{Backend: &wireStub{err: serve.ErrOverloaded}})
	w, resp := doDetect(t, s, nil, detectBody(t, 0))
	if w.Code != http.StatusServiceUnavailable || resp.Degraded || resp.Error == "" {
		t.Fatalf("status %d body %+v, want bare 503 with error", w.Code, resp)
	}
}

func TestDetectClosedMapsToDraining(t *testing.T) {
	s := New(Config{Backend: &wireStub{err: serve.ErrClosed}})
	w, resp := doDetect(t, s, nil, detectBody(t, 0))
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(resp.Error, "draining") {
		t.Fatalf("status %d error %q, want 503 draining", w.Code, resp.Error)
	}
}

func TestTenantFromRequest(t *testing.T) {
	req := httptest.NewRequest(http.MethodPost, "/v1/detect", nil)
	if info := tenantFromRequest(req); info.ID != serve.DefaultTenant || info.Priority != serve.PriorityLive {
		t.Fatalf("bare request → %+v, want default tenant, live priority", info)
	}
	req.Header.Set("Authorization", "Bearer tok123")
	if info := tenantFromRequest(req); info.ID != "tok123" {
		t.Fatalf("bearer token → %+v", info)
	}
	req.Header.Set(HeaderTenant, "named")
	req.Header.Set(HeaderPriority, "Batch")
	info := tenantFromRequest(req)
	if info.ID != "named" || info.Priority != serve.PriorityBatch {
		t.Fatalf("headers → %+v, want named/batch (tenant header outranks bearer)", info)
	}
}

func TestStatsEndpoint(t *testing.T) {
	fixed := serve.Stats{Offered: 10, Admitted: 7, Shed: 2, Rejected: 1, Batches: 4, Items: 7}
	rec := &perfmodel.Timings{}
	rec.Observe("serve-batch", 10*time.Millisecond)
	s := New(Config{
		Backend: &wireStub{dets: testDets()},
		Stats:   func() serve.Stats { return fixed },
		Timings: rec,
	})
	if w, _ := doDetect(t, s, nil, detectBody(t, 0)); w.Code != http.StatusOK {
		t.Fatalf("detect status = %d", w.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	var p StatsPayload
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Offered != 10 || p.Admitted != 7 || p.Shed != 2 || p.Rejected != 1 {
		t.Fatalf("ledger = %+v, want the serve.Stats snapshot", p)
	}
	if p.Served != 1 {
		t.Fatalf("served = %d, want 1", p.Served)
	}
	st, ok := p.Stages["serve-batch"]
	if !ok || st.Count != 1 || st.P50US != 10000 {
		t.Fatalf("stages = %+v, want serve-batch p50 10ms", p.Stages)
	}
}

func TestBroadcasterDropsSlowClient(t *testing.T) {
	b := newBroadcaster(2)
	sub := b.subscribe()
	if sub == nil {
		t.Fatal("subscribe returned nil on an open broadcaster")
	}
	for i := 0; i < 5; i++ {
		if seq := b.publish("decoration", map[string]int{"i": i}); seq == 0 {
			t.Fatalf("publish %d returned 0", i)
		}
	}
	subs, dropped := b.counts()
	if subs != 1 || dropped != 3 {
		t.Fatalf("counts = %d subs %d dropped, want 1/3 (buffer 2, 5 events)", subs, dropped)
	}
	if sub.drops() != 3 {
		t.Fatalf("sub.drops() = %d, want 3", sub.drops())
	}
	// The two buffered events are the oldest ones, ids intact.
	ev := <-sub.ch
	if ev.id != 1 || ev.name != "decoration" {
		t.Fatalf("first buffered event = %+v", ev)
	}
	if ev = <-sub.ch; ev.id != 2 {
		t.Fatalf("second buffered event = %+v", ev)
	}

	b.close()
	if _, ok := <-sub.ch; ok {
		t.Fatal("subscriber channel still open after close")
	}
	if b.subscribe() != nil {
		t.Fatal("subscribe succeeded after close")
	}
	if b.publish("decoration", 1) != 0 {
		t.Fatal("publish succeeded after close")
	}
	b.close() // idempotent
}

// sseClient scans an SSE response body into a line channel.
func sseClient(t *testing.T, base string) (lines <-chan string, closed <-chan struct{}, cancel func()) {
	t.Helper()
	ctx, stop := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		stop()
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		res.Body.Close()
		stop()
		t.Fatalf("events status = %d", res.StatusCode)
	}
	ch := make(chan string, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer res.Body.Close()
		sc := bufio.NewScanner(res.Body)
		for sc.Scan() {
			select {
			case ch <- sc.Text():
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch, done, stop
}

// waitLine reads lines until match returns true or the deadline passes.
func waitLine(t *testing.T, lines <-chan string, what string, match func(string) bool) string {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case l := <-lines:
			if match(l) {
				return l
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		}
	}
}

func TestSSEStreamLifecycle(t *testing.T) {
	stub := &wireStub{dets: testDets()}
	api := New(Config{
		Backend:       stub,
		Heartbeat:     30 * time.Millisecond,
		StatsInterval: 40 * time.Millisecond,
	})
	ts := httptest.NewServer(api)
	defer ts.Close()

	lines, closed, cancel := sseClient(t, ts.URL)
	defer cancel()

	// Wait for the subscription to register before posting, so the
	// decoration event cannot race past us.
	for i := 0; ; i++ {
		if n, _ := api.bcast.counts(); n == 1 {
			break
		}
		if i > 100 {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}

	res, err := http.Post(ts.URL+"/v1/detect", "image/png", bytes.NewReader(screenPNG(t)))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("detect status = %d", res.StatusCode)
	}

	waitLine(t, lines, "decoration event", func(l string) bool { return l == "event: decoration" })
	data := waitLine(t, lines, "decoration data", func(l string) bool { return strings.HasPrefix(l, "data: ") })
	var ev DecorationEvent
	if err := json.Unmarshal([]byte(strings.TrimPrefix(data, "data: ")), &ev); err != nil {
		t.Fatalf("decoding event payload: %v", err)
	}
	if len(ev.Detections) != 2 || len(ev.Decorations) != 2 {
		t.Fatalf("event payload = %+v, want the served decisions", ev)
	}
	waitLine(t, lines, "heartbeat", func(l string) bool { return strings.HasPrefix(l, ": hb") })
	waitLine(t, lines, "stats frame", func(l string) bool { return l == "event: stats" })

	// Drain: the open stream must end and new subscriptions must be refused.
	api.BeginDrain()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream still open after BeginDrain")
	}
	res, err = http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain subscribe status = %d, want 503", res.StatusCode)
	}
}

func TestSSEClientDisconnectUnsubscribes(t *testing.T) {
	api := New(Config{Backend: &wireStub{}, Heartbeat: 20 * time.Millisecond})
	ts := httptest.NewServer(api)
	defer ts.Close()

	_, closed, cancel := sseClient(t, ts.URL)
	for i := 0; ; i++ {
		if n, _ := api.bcast.counts(); n == 1 {
			break
		}
		if i > 100 {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-closed
	for i := 0; ; i++ {
		if n, _ := api.bcast.counts(); n == 0 {
			return
		}
		if i > 100 {
			t.Fatal("handler never unsubscribed after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestGracefulDrainLetsInFlightFinish(t *testing.T) {
	stub := &wireStub{
		dets:    testDets(),
		gate:    make(chan struct{}),
		entered: make(chan struct{}),
	}
	api := New(Config{Backend: stub})
	ts := httptest.NewServer(api)
	defer ts.Close()

	type result struct {
		status int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		res, err := http.Post(ts.URL+"/v1/detect", "image/png", bytes.NewReader(screenPNG(t)))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		res.Body.Close()
		inflight <- result{status: res.StatusCode}
	}()

	select {
	case <-stub.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never reached the backend")
	}
	api.BeginDrain()
	if !api.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}

	// New work is refused while the old request is still running.
	res, err := http.Post(ts.URL+"/v1/detect", "image/png", bytes.NewReader(screenPNG(t)))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("detect during drain: status = %d, want 503", res.StatusCode)
	}
	if res, err = http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status = %d, want 503", res.StatusCode)
	}

	// The request admitted before the drain still completes normally.
	close(stub.gate)
	select {
	case r := <-inflight:
		if r.err != nil || r.status != http.StatusOK {
			t.Fatalf("in-flight request finished %d/%v, want 200", r.status, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never finished")
	}
}

func TestPixelHeuristicFindsPlantedPattern(t *testing.T) {
	// Paint the paper's dark-pattern geometry: a big saturated AGO button
	// low on the screen, a small dim close glyph in the band above it.
	c := render.NewCanvas(96, 160)
	c.Fill(c.Bounds(), render.White)
	ago := geom.Rect{X: 16, Y: 104, W: 64, H: 24}
	c.Fill(ago, render.Green)
	upo := geom.Rect{X: 40, Y: 80, W: 8, H: 8}
	c.Fill(upo, render.DarkGray)

	dets, err := PixelHeuristic{}.PredictTensorCtx(context.Background(), canvasTensor(c), 0, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	var foundAGO, foundUPO bool
	for _, d := range dets {
		if d.Score != 1 {
			t.Fatalf("heuristic detection with score %v, want binary 1", d.Score)
		}
		r := d.B.Rect()
		switch d.Class {
		case dataset.ClassAGO:
			foundAGO = r.Intersect(ago).Area() > 0
		case dataset.ClassUPO:
			foundUPO = r.Intersect(upo).Area() > 0
		}
	}
	if !foundAGO || !foundUPO {
		t.Fatalf("heuristic found AGO=%v UPO=%v in %+v, want both planted boxes", foundAGO, foundUPO, dets)
	}

	// A blank screen yields nothing.
	blank := render.NewCanvas(96, 160)
	blank.Fill(blank.Bounds(), render.White)
	if dets := (PixelHeuristic{}).PredictTensor(canvasTensor(blank), 0, 0.45); len(dets) != 0 {
		t.Fatalf("blank screen produced %+v", dets)
	}

	// A dead context is honoured.
	ctx, stop := context.WithCancel(context.Background())
	stop()
	if _, err := (PixelHeuristic{}).PredictTensorCtx(ctx, canvasTensor(c), 0, 0.45); err == nil {
		t.Fatal("cancelled context not honoured")
	}
}
