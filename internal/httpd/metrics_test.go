package httpd

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/serve"
)

func scrape(t *testing.T, s *Server) (*httptest.ResponseRecorder, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w, w.Body.String()
}

// TestMetricsEndpoint: /metrics serves well-formed Prometheus text carrying
// the HTTP counters, the serving ledger and the stage latencies — the scrape
// CI's serve smoke performs.
func TestMetricsEndpoint(t *testing.T) {
	fixed := serve.Stats{Offered: 10, Admitted: 7, Shed: 2, Rejected: 1, Batches: 4, Items: 7}
	rec := &perfmodel.Timings{}
	rec.Observe("serve-batch", 10*time.Millisecond)
	s := New(Config{
		Backend: &wireStub{dets: testDets()},
		Stats:   func() serve.Stats { return fixed },
		Timings: rec,
	})
	if w, _ := doDetect(t, s, nil, detectBody(t, 0)); w.Code != http.StatusOK {
		t.Fatalf("detect status = %d", w.Code)
	}

	w, body := scrape(t, s)
	if w.Code != http.StatusOK {
		t.Fatalf("scrape status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != ContentTypeMetrics {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentTypeMetrics)
	}
	if n, err := metrics.ValidateText(strings.NewReader(body)); err != nil || n == 0 {
		t.Fatalf("exposition invalid (n=%d): %v\n%s", n, err, body)
	}
	for _, want := range []string{
		`darpa_http_requests_total{outcome="served"} 1`,
		`darpa_admission_requests_total{verdict="offered"} 10`,
		`darpa_scheduler_requests_total{outcome="served"} 7`,
		`darpa_stage_latency_seconds{quantile="0.5",stage="serve-batch"}`,
		"darpa_sse_subscribers 0",
		"darpa_http_draining 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing series %q in scrape:\n%s", want, body)
		}
	}
}

// TestMetricsEndpointMinimal: with no Stats or Timings wired, the endpoint
// still serves the HTTP-layer families rather than an empty or broken body.
func TestMetricsEndpointMinimal(t *testing.T) {
	s := New(Config{Backend: &wireStub{}})
	w, body := scrape(t, s)
	if w.Code != http.StatusOK {
		t.Fatalf("scrape status = %d", w.Code)
	}
	if n, err := metrics.ValidateText(strings.NewReader(body)); err != nil || n == 0 {
		t.Fatalf("exposition invalid (n=%d): %v\n%s", n, err, body)
	}
	if !strings.Contains(body, `darpa_http_requests_total{outcome="served"} 0`) {
		t.Errorf("missing zero-valued HTTP counter:\n%s", body)
	}
}

func TestMetricsEndpointMethodAndDrain(t *testing.T) {
	s := New(Config{Backend: &wireStub{}})
	req := httptest.NewRequest(http.MethodPost, "/metrics", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", w.Code)
	}
	// A draining server still answers scrapes — that is when operators are
	// watching hardest — and reports the state.
	s.BeginDrain()
	if w, body := scrape(t, s); w.Code != http.StatusOK || !strings.Contains(body, "darpa_http_draining 1") {
		t.Fatalf("draining scrape = %d, body:\n%s", w.Code, body)
	}
}
