// Package quant reimplements the paper's model-porting pipeline (Section
// IV-C): the trained detector is prepared for the "device" by folding
// batch-norm statistics into convolution weights (the paper's "replace the
// internal redundant calculations in the model with constants") and then
// quantising weights and activations to int8 with per-channel weight scales
// and calibration-derived activation scales — the ncnn-style int8 path.
//
// Inference runs with int8 multiplications accumulated in int32, exactly the
// arithmetic an ARM CPU would execute, so the accuracy loss measured in the
// experiments (Table III vs Table IV) is the genuine quantisation error.
package quant

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/yolite"
)

// foldedConv is a convolution with batch-norm constants folded in.
type foldedConv struct {
	inC, outC, k, stride, pad int
	w                         []float32 // [outC][inC*k*k]
	b                         []float32
}

// FoldConvBN combines a convolution and its batch norm into a single
// convolution: w' = w * gamma/std, b' = beta + (b - mean) * gamma/std. The
// implementation lives in tensor.FoldConvBN so the float fused-inference
// blocks (tensor.FuseConvBNAct) and this int8 port fold through the same
// arithmetic.
func FoldConvBN(conv *tensor.Conv2D, bn *tensor.BatchNorm2D) (w []float32, b []float32) {
	return tensor.FoldConvBN(conv, bn)
}

// qconv is an int8-quantised convolution layer.
type qconv struct {
	foldedConv
	qw      []int8    // quantised weights
	wScale  []float32 // per-output-channel weight scale
	inScale float32   // activation scale (from calibration)
	relu    bool      // apply leaky-ReLU(0.1) after

	// End-to-end int8 chain constants, set by Model.link once every
	// calibration scale is known. outScale is the next layer's inScale (the
	// trunk's is shared by the UPO head and B4 — calibration observes the
	// same tensor for both, and link makes the equality structural); rq and
	// bq fold dequantise + bias + requantise into one multiply-add per
	// accumulator: rq = wScale*inScale/outScale, bq = bias/outScale. Heads
	// emit float32 and leave them nil.
	outScale float32
	rq, bq   []float32
}

// quantiseWeights converts folded float weights to int8 with per-channel
// symmetric scales.
func (q *qconv) quantiseWeights() {
	per := q.inC * q.k * q.k
	q.qw = make([]int8, len(q.w))
	q.wScale = make([]float32, q.outC)
	for oc := 0; oc < q.outC; oc++ {
		var maxAbs float32
		for i := 0; i < per; i++ {
			v := q.w[oc*per+i]
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs == 0 {
			maxAbs = 1e-8
		}
		scale := maxAbs / 127
		q.wScale[oc] = scale
		for i := 0; i < per; i++ {
			v := q.w[oc*per+i] / scale
			q.qw[oc*per+i] = int8(clamp(math.Round(float64(v)), -127, 127))
		}
	}
}

// forward runs the quantised convolution: activations are quantised to int8
// with the calibrated scale, multiplied in int8 and accumulated in int32.
// Like tensor.Conv2D.Forward, the disjoint (batch item, output channel)
// planes are spread over the shared worker pool when the work justifies it,
// so batched device inference scales with GOMAXPROCS. A non-nil p supplies
// the output buffer and the int8 scratch, making the steady-state forward
// allocation-free. A non-nil done adds a cooperative cancellation point
// between output planes; once it closes the returned buffer is partially
// written and the caller must discard it.
func (q *qconv) forward(x *tensor.Tensor, p *tensor.Pool, done <-chan struct{}) *tensor.Tensor {
	N, C, H, W := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if C != q.inC {
		panic(fmt.Sprintf("quant: conv expects %d channels, got %d", q.inC, C))
	}
	oh, ow := q.outSize(H, W)
	// Quantise the input activations (float32 round — see quantI8).
	var qx []int8
	if p != nil {
		scratch := getI8(len(x.Data))
		defer putI8(scratch)
		qx = *scratch
	} else {
		qx = make([]int8, len(x.Data))
	}
	quantI8(qx, x.Data, q.inScale)
	y := p.Get(N, q.outC, oh, ow) // nil pool: falls back to tensor.New
	tasks := N * q.outC
	if tensor.ParallelWorthwhile(tasks * oh * ow * q.inC * q.k * q.k) {
		tensor.ParallelForCancel(done, tasks, func(t int) { q.forwardPlane(qx, x.Shape, y, t/q.outC, t%q.outC) })
		return y
	}
	for t := 0; t < tasks; t++ {
		if tensor.Aborted(done) {
			return y
		}
		q.forwardPlane(qx, x.Shape, y, t/q.outC, t%q.outC)
	}
	return y
}

// forwardPlane fills output plane (n, oc) from the quantised activations.
// Planes write disjoint slices of y, so they are safe to run concurrently.
func (q *qconv) forwardPlane(qx []int8, inShape []int, y *tensor.Tensor, n, oc int) {
	C, H, W := inShape[1], inShape[2], inShape[3]
	oh, ow := y.Shape[2], y.Shape[3]
	deq := q.wScale[oc] * q.inScale
	bias := q.b[oc]
	outBase := ((n*q.outC + oc) * oh) * ow
	for oy := 0; oy < oh; oy++ {
		ihBase := oy*q.stride - q.pad
		outRow := outBase + oy*ow
		for ox := 0; ox < ow; ox++ {
			iwBase := ox*q.stride - q.pad
			var acc int32
			for ic := 0; ic < q.inC; ic++ {
				wBase := ((oc*q.inC + ic) * q.k) * q.k
				inBase := ((n*C + ic) * H) * W
				for kh := 0; kh < q.k; kh++ {
					ih := ihBase + kh
					if ih < 0 || ih >= H {
						continue
					}
					inRow := inBase + ih*W
					wRow := wBase + kh*q.k
					for kw := 0; kw < q.k; kw++ {
						iw := iwBase + kw
						if iw < 0 || iw >= W {
							continue
						}
						acc += int32(q.qw[wRow+kw]) * int32(qx[inRow+iw])
					}
				}
			}
			v := float32(acc)*deq + bias
			if q.relu && v < 0 {
				v *= 0.1
			}
			y.Data[outRow+ox] = v
		}
	}
}

// Model is the ported, int8 detector — the artefact DARPA embeds in the
// on-device app.
type Model struct {
	blocks  []*qconv // backbone conv stack in order B1..B3b (stride-8 trunk)
	deep    []*qconv // B4, B5
	upoHead *qconv
	agoHead *qconv

	// DisableRefine turns off the edge-snapping post-processor, mirroring
	// yolite.Model.DisableRefine so refine-ablation benchmarks compare the
	// float and int8 backends like-for-like. Port seeds it from the source
	// model.
	DisableRefine bool

	// Pool mirrors yolite.Model.Pool: when set, inference draws activation
	// buffers (and the int8 scratch) from it instead of allocating per
	// layer. Port carries it over from the source model. Training never
	// goes through this backend, so every path may pool.
	Pool *tensor.Pool
}

func newQConvFromBlock(seq *nn.Sequential) *qconv {
	conv, bn, _ := nn.ConvBNActParts(seq)
	q := &qconv{foldedConv: foldedConv{
		inC: conv.InC, outC: conv.OutC, k: conv.K, stride: conv.Stride, pad: conv.Pad,
	}, relu: true}
	q.w, q.b = FoldConvBN(conv, bn)
	q.quantiseWeights()
	return q
}

func newQConvFromHead(conv *tensor.Conv2D) *qconv {
	per := conv.InC * conv.K * conv.K
	q := &qconv{foldedConv: foldedConv{
		inC: conv.InC, outC: conv.OutC, k: conv.K, stride: conv.Stride, pad: conv.Pad,
	}}
	q.w = make([]float32, conv.OutC*per)
	copy(q.w, conv.W.Data)
	q.b = make([]float32, conv.OutC)
	copy(q.b, conv.B.Data)
	q.quantiseWeights()
	return q
}

// Port converts a trained float model into the int8 device model,
// calibrating activation scales on the given samples (a handful of training
// images suffices; the paper's ncnn flow does the same).
func Port(m *yolite.Model, calib []*dataset.Sample) *Model {
	qm := &Model{
		blocks:        []*qconv{newQConvFromBlock(m.B1), newQConvFromBlock(m.B2), newQConvFromBlock(m.B3), newQConvFromBlock(m.B3b)},
		deep:          []*qconv{newQConvFromBlock(m.B4), newQConvFromBlock(m.B5)},
		upoHead:       newQConvFromHead(m.UPOHead),
		agoHead:       newQConvFromHead(m.AGOHead),
		DisableRefine: m.DisableRefine,
		Pool:          m.Pool,
	}
	qm.calibrate(m, calib)
	qm.link()
	return qm
}

// link derives the end-to-end int8 chain constants from the calibration
// scales: each backbone layer's output scale is the scale its consumer
// quantises with, so activations flow between layers as int8 without a float
// round trip. The stride-8 trunk feeds both the UPO head and B4; calibration
// observed the same tensor for both inputs, and link pins the head to the
// deep chain's scale so the shared buffer is valid for both by construction.
func (qm *Model) link() {
	qm.upoHead.inScale = qm.deep[0].inScale
	chain := []*qconv{qm.blocks[0], qm.blocks[1], qm.blocks[2], qm.blocks[3], qm.deep[0], qm.deep[1]}
	next := []float32{
		qm.blocks[1].inScale, qm.blocks[2].inScale, qm.blocks[3].inScale,
		qm.deep[0].inScale, qm.deep[1].inScale, qm.agoHead.inScale,
	}
	for i, l := range chain {
		l.outScale = next[i]
		l.rq = make([]float32, l.outC)
		l.bq = make([]float32, l.outC)
		for oc := 0; oc < l.outC; oc++ {
			l.rq[oc] = l.wScale[oc] * l.inScale / l.outScale
			l.bq[oc] = l.b[oc] / l.outScale
		}
	}
}

// calibrate runs the float model over the calibration set recording the
// maximum absolute activation entering each layer, and sets the int8 scales.
func (qm *Model) calibrate(m *yolite.Model, calib []*dataset.Sample) {
	maxIn := make([]float32, 8) // b1,b2,b3,b3b,b4,b5,upoHead,agoHead
	observe := func(idx int, t *tensor.Tensor) {
		for _, v := range t.Data {
			if v < 0 {
				v = -v
			}
			if v > maxIn[idx] {
				maxIn[idx] = v
			}
		}
	}
	if len(calib) == 0 {
		// No calibration data: assume unit-range activations.
		for i := range maxIn {
			maxIn[i] = 1
		}
	}
	for _, s := range calib {
		x := yolite.CanvasToTensor(s.Input)
		observe(0, x)
		h := m.B1.Forward(x, false)
		observe(1, h)
		h = m.B2.Forward(h, false)
		observe(2, h)
		h = m.B3.Forward(h, false)
		observe(3, h)
		h = m.B3b.Forward(h, false)
		observe(6, h) // UPO head input
		observe(4, h) // B4 input
		h = m.B4.Forward(h, false)
		observe(5, h)
		h = m.B5.Forward(h, false)
		observe(7, h) // AGO head input
	}
	layers := []*qconv{qm.blocks[0], qm.blocks[1], qm.blocks[2], qm.blocks[3], qm.deep[0], qm.deep[1], qm.upoHead, qm.agoHead}
	for i, l := range layers {
		if maxIn[i] == 0 {
			maxIn[i] = 1
		}
		l.inScale = maxIn[i] / 127
	}
}

// Forward runs the quantised network, returning both raw head maps. The
// input is quantised to int8 once and the activations stay int8 across the
// entire backbone (see int8gemm.go); only the head outputs come back as
// float32, drawn from the Pool when one is installed — those are pooled
// buffers owned by the caller. The int8 intermediates recycle through the
// bucketed int8 scratch pool, so the steady-state forward is allocation
// free.
func (qm *Model) Forward(x *tensor.Tensor) (upo, ago *tensor.Tensor) {
	upo, ago, _ = qm.forwardInt8(nil, x)
	return upo, ago
}

// forwardCancel mirrors Forward with a cooperative cancellation checkpoint
// between layers (and, via the done channel, between column-block tasks
// inside each layer). It returns ctx.Err() as soon as the cancel is
// observed, parking any partially written activations back in their pools.
// Only called with a cancellable context — the Background path stays on
// Forward.
func (qm *Model) forwardCancel(ctx context.Context, x *tensor.Tensor) (upo, ago *tensor.Tensor, err error) {
	return qm.forwardInt8(ctx, x)
}

// forwardInt8 is the end-to-end int8 pipeline shared by Forward (nil ctx)
// and forwardCancel. Layer outputs at each step carry the scale the next
// layer expects (see link), so no float activations exist between the input
// quantisation and the head dequantisation.
func (qm *Model) forwardInt8(ctx context.Context, x *tensor.Tensor) (upo, ago *tensor.Tensor, err error) {
	p := qm.Pool
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	N, _, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	cur := getI8(len(x.Data))
	quantI8(*cur, x.Data, qm.blocks[0].inScale)
	for _, b := range qm.blocks {
		oh, ow := b.outSize(h, w)
		nxt := getI8(N * b.outC * oh * ow)
		b.forwardI8(*cur, N, h, w, *nxt, done)
		putI8(cur)
		cur, h, w = nxt, oh, ow
		if err := ctxErr(ctx); err != nil {
			putI8(cur)
			return nil, nil, err
		}
	}
	// cur is the stride-8 trunk, int8 at the scale both consumers expect.
	upo = qm.upoHead.forwardI8Float(*cur, N, h, w, p, done)
	if err := ctxErr(ctx); err != nil {
		putI8(cur)
		p.Put(upo)
		return nil, nil, err
	}
	for _, b := range qm.deep {
		oh, ow := b.outSize(h, w)
		nxt := getI8(N * b.outC * oh * ow)
		b.forwardI8(*cur, N, h, w, *nxt, done)
		putI8(cur) // for the first deep block this releases the trunk,
		// whose second consumer (the UPO head) has already run
		cur, h, w = nxt, oh, ow
		if err := ctxErr(ctx); err != nil {
			putI8(cur)
			p.Put(upo)
			return nil, nil, err
		}
	}
	ago = qm.agoHead.forwardI8Float(*cur, N, h, w, p, done)
	putI8(cur)
	if err := ctxErr(ctx); err != nil {
		p.Put(upo)
		p.Put(ago)
		return nil, nil, err
	}
	return upo, ago, nil
}

// ctxErr is ctx.Err() tolerating the nil ctx the uncancellable Forward path
// passes.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// PredictTensor implements yolite.Predictor with int8 inference. Like the
// float model, the forward pass covers the whole tensor while only item n is
// decoded; batch workloads should use PredictBatch instead of a per-item
// loop.
func (qm *Model) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	upo, ago := qm.Forward(x)
	dets := qm.decodeItem(x, upo, ago, n, confThresh)
	qm.Pool.Put(upo)
	qm.Pool.Put(ago)
	return dets
}

// PredictBatch runs one int8 forward over the whole [N, 3, H, W] batch and
// decodes every item, identical to a per-item PredictTensor loop at 1/N the
// forward cost.
func (qm *Model) PredictBatch(x *tensor.Tensor, confThresh float64) [][]metrics.Detection {
	upo, ago := qm.Forward(x)
	out := make([][]metrics.Detection, x.Shape[0])
	for n := range out {
		out[n] = qm.decodeItem(x, upo, ago, n, confThresh)
	}
	qm.Pool.Put(upo)
	qm.Pool.Put(ago)
	return out
}

// PredictTensorCtx is PredictTensor with cooperative cancellation: a
// cancelled or expired ctx aborts the int8 forward within roughly one conv
// layer and returns ctx.Err(). A context that can never be cancelled
// (Background, TODO) takes the exact PredictTensor path, keeping results
// bit-identical to the legacy API.
func (qm *Model) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, confThresh float64) ([]metrics.Detection, error) {
	if ctx.Done() == nil {
		return qm.PredictTensor(x, n, confThresh), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	upo, ago, err := qm.forwardCancel(ctx, x)
	if err != nil {
		return nil, err
	}
	dets := qm.decodeItem(x, upo, ago, n, confThresh)
	qm.Pool.Put(upo)
	qm.Pool.Put(ago)
	return dets, nil
}

// PredictBatchCtx is PredictBatch with cooperative cancellation, with an
// extra checkpoint between per-item decodes. The Background path is exactly
// PredictBatch.
func (qm *Model) PredictBatchCtx(ctx context.Context, x *tensor.Tensor, confThresh float64) ([][]metrics.Detection, error) {
	if ctx.Done() == nil {
		return qm.PredictBatch(x, confThresh), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	upo, ago, err := qm.forwardCancel(ctx, x)
	if err != nil {
		return nil, err
	}
	out := make([][]metrics.Detection, x.Shape[0])
	for n := range out {
		if err := ctx.Err(); err != nil {
			qm.Pool.Put(upo)
			qm.Pool.Put(ago)
			return nil, err
		}
		out[n] = qm.decodeItem(x, upo, ago, n, confThresh)
	}
	qm.Pool.Put(upo)
	qm.Pool.Put(ago)
	return out, nil
}

// decodeItem turns the raw head maps for batch item n into final detections.
func (qm *Model) decodeItem(x, upo, ago *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	dets := yolite.DecodeHead(upo, n, yolite.UPOHeadSpec, confThresh)
	dets = append(dets, yolite.DecodeHead(ago, n, yolite.AGOHeadSpec, confThresh)...)
	if !qm.DisableRefine {
		if qm.Pool != nil {
			scratch := qm.Pool.Get(x.Shape[2] * x.Shape[3])
			dets = yolite.RefineDetections(dets, yolite.LumaPlaneInto(x, n, scratch.Data), yolite.InputW, yolite.InputH)
			qm.Pool.Put(scratch)
		} else {
			dets = yolite.RefineDetections(dets, yolite.LumaPlane(x, n), yolite.InputW, yolite.InputH)
		}
	}
	return metrics.NMS(dets, 0.2)
}

var _ yolite.Predictor = (*Model)(nil)

// Name identifies the backend in registries and result tables.
func (qm *Model) Name() string { return "yolite-int8" }

// SetPool mirrors yolite.Model.SetPool: the replica-pool seam for installing
// a private activation pool. Must not be called while a forward is in flight.
func (qm *Model) SetPool(p *tensor.Pool) { qm.Pool = p }

// WeightBytes reports the size of the quantised weights in bytes, the
// "smaller model size" the paper credits ncnn with.
func (qm *Model) WeightBytes() int {
	n := 0
	all := append(append([]*qconv{}, qm.blocks...), qm.deep...)
	all = append(all, qm.upoHead, qm.agoHead)
	for _, l := range all {
		n += len(l.qw) + 4*len(l.b) + 4*len(l.wScale) + 4
	}
	return n
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
