//go:build race

package quant

const raceEnabled = true
