package quant

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/tensor"
	"repro/internal/yolite"
)

// randQConv builds a qconv with random folded weights and calibration
// scales, quantised the production way.
func randQConv(rng *rand.Rand, inC, outC, k, stride, pad int, relu bool) *qconv {
	per := inC * k * k
	q := &qconv{foldedConv: foldedConv{
		inC: inC, outC: outC, k: k, stride: stride, pad: pad,
	}, relu: relu}
	q.w = make([]float32, outC*per)
	for i := range q.w {
		q.w[i] = rng.Float32()*2 - 1
	}
	q.b = make([]float32, outC)
	for i := range q.b {
		q.b[i] = rng.Float32() - 0.5
	}
	q.quantiseWeights()
	q.inScale = (0.5 + rng.Float32()) / 127
	return q
}

// randQx fills a random int8 activation tensor in [-127, 127].
func randQx(rng *rand.Rand, n int) []int8 {
	qx := make([]int8, n)
	for i := range qx {
		qx[i] = int8(rng.Intn(255) - 127)
	}
	return qx
}

// TestForwardI8FloatMatchesPerPlane pins the int8 GEMM against the retained
// per-plane int8 reference loop: same int8 activations in, bit-identical
// float32 maps out — int32 accumulation is exact, so any tiling or im2col
// error shows up as a hard mismatch. Shapes cover the 1x1 fast path,
// stride > 1, pad >= k/2, and spatial sizes smaller than the kernel.
func TestForwardI8FloatMatchesPerPlane(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	type shape struct{ n, c, h, w, outC, k, stride, pad int }
	cases := []shape{
		{1, 3, 160, 96, 10, 3, 2, 1}, // B1 geometry
		{2, 24, 12, 20, 5, 1, 1, 0},  // UPO head geometry (1x1 fast path)
		{1, 32, 3, 5, 5, 1, 1, 0},    // AGO head geometry, tiny grid
		{1, 4, 2, 2, 3, 3, 1, 2},     // input smaller than kernel
		{3, 5, 9, 7, 6, 3, 3, 1},     // stride 3
		{1, 1, 6, 6, 2, 5, 2, 2},     // 5x5 kernel, pad = k/2
	}
	for i := 0; i < 8; i++ {
		k := 1 + rng.Intn(2)*2
		cases = append(cases, shape{
			n: 1 + rng.Intn(2), c: 1 + rng.Intn(8),
			h: 1 + rng.Intn(16), w: 1 + rng.Intn(16),
			outC: 1 + rng.Intn(9), k: k,
			stride: 1 + rng.Intn(3), pad: rng.Intn(k/2 + 2),
		})
	}
	for _, s := range cases {
		if s.h+2*s.pad < s.k || s.w+2*s.pad < s.k {
			s.pad = s.k
		}
		for _, relu := range []bool{false, true} {
			q := randQConv(rng, s.c, s.outC, s.k, s.stride, s.pad, relu)
			qx := randQx(rng, s.n*s.c*s.h*s.w)
			oh, ow := q.outSize(s.h, s.w)
			want := tensor.New(s.n, s.outC, oh, ow)
			for n := 0; n < s.n; n++ {
				for oc := 0; oc < s.outC; oc++ {
					q.forwardPlane(qx, []int{s.n, s.c, s.h, s.w}, want, n, oc)
				}
			}
			got := q.forwardI8Float(qx, s.n, s.h, s.w, nil, nil)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("shape %+v relu=%v: element %d differs: gemm %v per-plane %v",
						s, relu, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestForwardI8RequantMatchesFormula checks the int8-out requantise epilogue
// against a direct recomputation from the reference accumulators: the stored
// int8 must equal clamp(round(leaky(acc*rq + bq))) for every element.
func TestForwardI8RequantMatchesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	q := randQConv(rng, 6, 9, 3, 2, 1, true)
	q.outScale = (0.5 + rng.Float32()) / 8
	q.rq = make([]float32, q.outC)
	q.bq = make([]float32, q.outC)
	for oc := 0; oc < q.outC; oc++ {
		q.rq[oc] = q.wScale[oc] * q.inScale / q.outScale
		q.bq[oc] = q.b[oc] / q.outScale
	}
	N, H, W := 2, 13, 11
	qx := randQx(rng, N*q.inC*H*W)
	oh, ow := q.outSize(H, W)
	out := make([]int8, N*q.outC*oh*ow)
	q.forwardI8(qx, N, H, W, out, nil)
	// Reference: exact accumulators from the per-plane loop, with the
	// dequantising epilogue disabled by unit constants so y holds raw acc.
	ref := &qconv{foldedConv: q.foldedConv, qw: q.qw, relu: false}
	ref.wScale = make([]float32, q.outC)
	ref.b = make([]float32, q.outC)
	for i := range ref.wScale {
		ref.wScale[i] = 1
	}
	ref.inScale = 1
	accT := tensor.New(N, q.outC, oh, ow)
	for n := 0; n < N; n++ {
		for oc := 0; oc < q.outC; oc++ {
			ref.forwardPlane(qx, []int{N, q.inC, H, W}, accT, n, oc)
		}
	}
	cols := oh * ow
	for i, g := range out {
		oc := (i / cols) % q.outC
		v := accT.Data[i]*q.rq[oc] + q.bq[oc]
		if v < 0 {
			v *= 0.1
		}
		want := int8(clamp(math.Round(float64(v)), -127, 127))
		// The epilogue rounds in float32; allow the half-integer knife edge
		// only if float64 rounding disagrees by exactly one.
		if g != want {
			t.Fatalf("element %d: requant %d, formula %d (acc=%v rq=%v bq=%v)",
				i, g, want, accT.Data[i], q.rq[oc], q.bq[oc])
		}
	}
}

// TestQuantI8MatchesLegacyOnCorpus pins the float32-rounding quantise loop
// to the original float64 divide + math.Round form over a deterministic
// corpus of realistic activations (uniform, normal-ish, boundary-heavy, and
// out-of-range values at production-like scales). The half-integer multiples
// of the scale are the values that rejected the reciprocal-multiply variant.
func TestQuantI8MatchesLegacyOnCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	scales := []float32{1.0 / 127, 2.37 / 127, 0.004, 0.031, 5.5 / 127}
	for _, s := range scales {
		corpus := make([]float32, 0, 40000)
		for i := 0; i < 20000; i++ {
			corpus = append(corpus, (rng.Float32()*2-1)*s*140) // spans the clamp
		}
		for i := 0; i < 10000; i++ {
			corpus = append(corpus, float32(rng.NormFloat64())*s*40)
		}
		for i := 0; i < 10000; i++ {
			// Near-half-integer multiples of the scale: the rounding knife edge.
			corpus = append(corpus, (float32(rng.Intn(255)-127)+0.5)*s)
		}
		got := make([]int8, len(corpus))
		quantI8(got, corpus, s)
		for i, v := range corpus {
			want := int8(clamp(math.Round(float64(v/s)), -127, 127))
			if got[i] != want {
				t.Fatalf("scale %v: quantI8(%v) = %d, legacy %d", s, v, got[i], want)
			}
		}
	}
}

// TestInt8PipelineScaleChain checks link's invariants: every backbone
// layer's outScale is its consumer's inScale, and the trunk scale is shared
// by the UPO head and the deep chain.
func TestInt8PipelineScaleChain(t *testing.T) {
	m := yolite.NewModel(3)
	qm := Port(m, nil)
	if qm.blocks[0].outScale != qm.blocks[1].inScale ||
		qm.blocks[1].outScale != qm.blocks[2].inScale ||
		qm.blocks[2].outScale != qm.blocks[3].inScale {
		t.Fatal("backbone scale chain broken")
	}
	if qm.blocks[3].outScale != qm.deep[0].inScale {
		t.Fatal("trunk scale does not feed B4")
	}
	if qm.upoHead.inScale != qm.deep[0].inScale {
		t.Fatal("UPO head does not share the trunk scale")
	}
	if qm.deep[0].outScale != qm.deep[1].inScale || qm.deep[1].outScale != qm.agoHead.inScale {
		t.Fatal("deep chain scales broken")
	}
	for _, l := range []*qconv{qm.blocks[0], qm.blocks[1], qm.blocks[2], qm.blocks[3], qm.deep[0], qm.deep[1]} {
		if len(l.rq) != l.outC || len(l.bq) != l.outC {
			t.Fatal("requantise constants missing")
		}
	}
}

// TestInt8ForwardPooledAllocs pins the steady-state allocation count of the
// serial int8 forward at zero: the input quantisation buffer, every int8
// intermediate, the int32 accumulator tiles, and the float head maps all
// recycle. GOMAXPROCS is pinned to 1 because the parallel branch builds a
// closure by design.
func TestInt8ForwardPooledAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	m := yolite.NewModel(5)
	qm := Port(m, nil)
	qm.SetPool(tensor.NewPool())
	x := tensor.New(1, 3, yolite.InputH, yolite.InputW)
	for i := range x.Data {
		x.Data[i] = float32(i%251) / 251
	}
	warm := func() {
		upo, ago := qm.Forward(x)
		qm.Pool.Put(upo)
		qm.Pool.Put(ago)
	}
	warm()
	if avg := testing.AllocsPerRun(10, warm); avg != 0 {
		t.Fatalf("int8 pooled forward allocates %v per op, want 0", avg)
	}
}

// BenchmarkInt8Forward measures the end-to-end int8 forward on pretrained
// weights — the number BENCH_kernels.json tracks for the device path.
func BenchmarkInt8Forward(b *testing.B) {
	m := yolite.NewModel(1)
	if err := m.Load("../../weights/yolite.gob"); err != nil {
		b.Skip("no pretrained weights")
	}
	qm := Port(m, nil)
	qm.SetPool(tensor.NewPool())
	x := tensor.New(1, 3, yolite.InputH, yolite.InputW)
	for i := range x.Data {
		x.Data[i] = float32(i%255) / 255
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		upo, ago := qm.Forward(x)
		qm.Pool.Put(upo)
		qm.Pool.Put(ago)
	}
}
