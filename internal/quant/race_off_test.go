//go:build !race

package quant

// raceEnabled reports whether the race detector is active; allocation-count
// assertions are meaningless under its instrumentation.
const raceEnabled = false
