package quant

// True int8 inference path: activations are quantised once at the network
// input and stay int8 across the whole backbone. Each layer lowers to an
// int8 im2col panel (shared with the float path via tensor.Im2colPanelI8)
// and an int8 x int8 -> int32 blocked GEMM, and the epilogue requantises the
// int32 accumulators straight to the next layer's int8 scale with the folded
// bias and leaky-ReLU applied in the same pass:
//
//	q_out = clamp(round(leaky(acc*rq + bq))),  rq = wScale*inScale/outScale,
//	                                           bq = bias/outScale
//
// which is algebraically the reference per-layer flow (dequantise, bias,
// activation, requantise) with the two scale multiplications folded into one
// constant — leaky-ReLU commutes with the positive scale 1/outScale. The
// heads dequantise to float32 with exactly the reference epilogue
// (float32(acc)*deq + bias), so decoded boxes match the per-plane loop
// bit-for-bit given the same int8 activations (pinned by the property tests
// in int8gemm_test.go).

import (
	"sync"

	"repro/internal/tensor"
)

// Int8 activation and int32 accumulator scratch, bucketed by power-of-two
// capacity class so a request only ever reuses a buffer of the matching
// class — the replacement for the old single-bucket qx pool, which thrashed
// whenever two layers with different activation sizes alternated.
var (
	i8Buckets  [33]sync.Pool
	i32Buckets [33]sync.Pool
)

func bucketFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

func getI8(n int) *[]int8 {
	c := bucketFor(n)
	if v := i8Buckets[c].Get(); v != nil {
		p := v.(*[]int8)
		*p = (*p)[:n]
		return p
	}
	b := make([]int8, n, 1<<c)
	return &b
}

func putI8(p *[]int8) {
	if p == nil {
		return
	}
	i8Buckets[bucketFor(cap(*p))].Put(p)
}

func getI32(n int) *[]int32 {
	c := bucketFor(n)
	if v := i32Buckets[c].Get(); v != nil {
		p := v.(*[]int32)
		*p = (*p)[:n]
		return p
	}
	b := make([]int32, n, 1<<c)
	return &b
}

func putI32(p *[]int32) { i32Buckets[bucketFor(cap(*p))].Put(p) }

// quantI8 quantises float activations to int8: dst[i] =
// clamp(round(src[i]/s)) with round-half-away-from-zero done entirely in
// float32 — the add-a-half-and-truncate is bit-identical to the original
// math.Round(float64(v/s)) because r and 0.5 share an ulp grid in every
// binade that matters, so the sum is exact (pinned against the legacy form
// by TestQuantI8MatchesLegacyOnCorpus). The float32 divide is kept rather
// than a precomputed reciprocal multiply: v*(1/s) lands one ulp short of
// half-integers that v/s hits exactly, flipping rounded values across the
// calibration corpus.
func quantI8(dst []int8, src []float32, s float32) {
	for i, v := range src {
		r := v / s
		if r > 127 {
			r = 127
		} else if r < -127 {
			r = -127
		}
		if r >= 0 {
			dst[i] = int8(r + 0.5)
		} else {
			dst[i] = int8(r - 0.5)
		}
	}
}

// outSize returns the conv's spatial output size for an (h, w) input.
func (q *qconv) outSize(h, w int) (int, int) {
	return (h+2*q.pad-q.k)/q.stride + 1, (w+2*q.pad-q.k)/q.stride + 1
}

// colBlockI8 mirrors tensor's column blocking: int8 panels capped near 32
// KiB, block width a multiple of 4 for the register tile.
func colBlockI8(kdim, cols int) int {
	b := (1 << 15) / kdim
	if b > cols {
		b = cols
	}
	if b < 16 {
		b = 16
	}
	if b >= 8 {
		b &^= 3
	}
	return b
}

// forwardI8 runs the quantised convolution on int8 activations and writes
// requantised int8 outputs: qx is [N][inC][H][W] at q.inScale, out (length
// N*outC*OH*OW) ends up at q.outScale. Work splits into (batch item, column
// block) tasks on the shared worker pool, each a cooperative cancellation
// checkpoint; once done closes, out is partially written and must be
// discarded.
func (q *qconv) forwardI8(qx []int8, N, H, W int, out []int8, done <-chan struct{}) {
	OH, OW := q.outSize(H, W)
	cols := OH * OW
	kdim := q.inC * q.k * q.k
	blk := colBlockI8(kdim, cols)
	nBlocks := (cols + blk - 1) / blk
	tasks := N * nBlocks
	// The closure is only built inside the parallel branch so the serial
	// path stays allocation-free (see tensor.ParallelWorthwhile).
	if tensor.ParallelWorthwhile(N * q.outC * cols * kdim) {
		tensor.ParallelForCancel(done, tasks, func(t int) {
			q.i8Task(qx, N, H, W, out, nil, blk, nBlocks, t)
		})
		return
	}
	for t := 0; t < tasks; t++ {
		if tensor.Aborted(done) {
			return
		}
		q.i8Task(qx, N, H, W, out, nil, blk, nBlocks, t)
	}
}

// forwardI8Float is forwardI8 with the dequantising head epilogue: the int32
// accumulators become float32 exactly as the reference per-plane loop
// computes them (float32(acc)*deq + bias, optional leaky-ReLU), written into
// a pooled tensor.
func (q *qconv) forwardI8Float(qx []int8, N, H, W int, p *tensor.Pool, done <-chan struct{}) *tensor.Tensor {
	OH, OW := q.outSize(H, W)
	y := p.Get(N, q.outC, OH, OW)
	cols := OH * OW
	kdim := q.inC * q.k * q.k
	blk := colBlockI8(kdim, cols)
	nBlocks := (cols + blk - 1) / blk
	tasks := N * nBlocks
	if tensor.ParallelWorthwhile(N * q.outC * cols * kdim) {
		tensor.ParallelForCancel(done, tasks, func(t int) {
			q.i8Task(qx, N, H, W, nil, y, blk, nBlocks, t)
		})
		return y
	}
	for t := 0; t < tasks; t++ {
		if tensor.Aborted(done) {
			return y
		}
		q.i8Task(qx, N, H, W, nil, y, blk, nBlocks, t)
	}
	return y
}

// i8Task runs one (batch item, column block) unit: unpack the int8 panel,
// accumulate every output channel against it in int32, then requantise (out
// != nil) or dequantise (yf != nil) the accumulator tile while it is
// cache-hot.
func (q *qconv) i8Task(qx []int8, N, H, W int, out []int8, yf *tensor.Tensor, blk, nBlocks, t int) {
	n, b := t/nBlocks, t%nBlocks
	OH, OW := q.outSize(H, W)
	cols := OH * OW
	kdim := q.inC * q.k * q.k
	j0 := b * blk
	j1 := j0 + blk
	if j1 > cols {
		j1 = cols
	}
	nc := j1 - j0
	accBuf := getI32(q.outC * nc)
	acc := *accBuf
	if q.k == 1 && q.stride == 1 && q.pad == 0 {
		// 1x1 stride-1: the panel is the input activations themselves.
		bp := qx[n*q.inC*cols+j0:]
		gemmI8(q.qw, kdim, bp, cols, acc, q.outC, kdim, nc)
	} else {
		panel := getI8(kdim * nc)
		tensor.Im2colPanelI8(qx[n*q.inC*H*W:(n+1)*q.inC*H*W], q.inC, H, W, q.k, q.stride, q.pad, OW, j0, j1, *panel)
		gemmI8(q.qw, kdim, *panel, nc, acc, q.outC, kdim, nc)
		putI8(panel)
	}
	outBase := n*q.outC*cols + j0
	if out != nil {
		for oc := 0; oc < q.outC; oc++ {
			rq, bq := q.rq[oc], q.bq[oc]
			row := acc[oc*nc : (oc+1)*nc]
			dst := out[outBase+oc*cols : outBase+oc*cols+nc]
			for j, a := range row {
				v := float32(a)*rq + bq
				if q.relu && v < 0 {
					v *= 0.1
				}
				if v > 127 {
					v = 127
				} else if v < -127 {
					v = -127
				}
				if v >= 0 {
					dst[j] = int8(v + 0.5)
				} else {
					dst[j] = int8(v - 0.5)
				}
			}
		}
	} else {
		for oc := 0; oc < q.outC; oc++ {
			deq := q.wScale[oc] * q.inScale
			bias := q.b[oc]
			row := acc[oc*nc : (oc+1)*nc]
			dst := yf.Data[outBase+oc*cols : outBase+oc*cols+nc]
			for j, a := range row {
				v := float32(a)*deq + bias
				if q.relu && v < 0 {
					v *= 0.1
				}
				dst[j] = v
			}
		}
	}
	putI32(accBuf)
}

// gemmI8 computes acc[m*nc+j] = sum_k a[m*lda+k]*b[k*ldb+j] in int32 for m
// in [0,M), j in [0,nc). Same 4x4 register tile as the float gemmBlock;
// integer accumulation is exact, so tiling order cannot change the result.
func gemmI8(a []int8, lda int, b []int8, ldb int, acc []int32, M, K, nc int) {
	m := 0
	for ; m+4 <= M; m += 4 {
		a0 := a[(m+0)*lda : (m+0)*lda+K]
		a1 := a[(m+1)*lda : (m+1)*lda+K]
		a2 := a[(m+2)*lda : (m+2)*lda+K]
		a3 := a[(m+3)*lda : (m+3)*lda+K]
		j := 0
		for ; j+4 <= nc; j += 4 {
			var c00, c01, c02, c03 int32
			var c10, c11, c12, c13 int32
			var c20, c21, c22, c23 int32
			var c30, c31, c32, c33 int32
			off := j
			for k := 0; k < K; k++ {
				b0, b1, b2, b3 := int32(b[off]), int32(b[off+1]), int32(b[off+2]), int32(b[off+3])
				av := int32(a0[k])
				c00 += av * b0
				c01 += av * b1
				c02 += av * b2
				c03 += av * b3
				av = int32(a1[k])
				c10 += av * b0
				c11 += av * b1
				c12 += av * b2
				c13 += av * b3
				av = int32(a2[k])
				c20 += av * b0
				c21 += av * b1
				c22 += av * b2
				c23 += av * b3
				av = int32(a3[k])
				c30 += av * b0
				c31 += av * b1
				c32 += av * b2
				c33 += av * b3
				off += ldb
			}
			r := (m + 0) * nc
			acc[r+j], acc[r+j+1], acc[r+j+2], acc[r+j+3] = c00, c01, c02, c03
			r = (m + 1) * nc
			acc[r+j], acc[r+j+1], acc[r+j+2], acc[r+j+3] = c10, c11, c12, c13
			r = (m + 2) * nc
			acc[r+j], acc[r+j+1], acc[r+j+2], acc[r+j+3] = c20, c21, c22, c23
			r = (m + 3) * nc
			acc[r+j], acc[r+j+1], acc[r+j+2], acc[r+j+3] = c30, c31, c32, c33
		}
		for ; j < nc; j++ {
			var cc0, cc1, cc2, cc3 int32
			off := j
			for k := 0; k < K; k++ {
				bv := int32(b[off])
				cc0 += int32(a0[k]) * bv
				cc1 += int32(a1[k]) * bv
				cc2 += int32(a2[k]) * bv
				cc3 += int32(a3[k]) * bv
				off += ldb
			}
			acc[(m+0)*nc+j] = cc0
			acc[(m+1)*nc+j] = cc1
			acc[(m+2)*nc+j] = cc2
			acc[(m+3)*nc+j] = cc3
		}
	}
	for ; m < M; m++ {
		arow := a[m*lda : m*lda+K]
		j := 0
		for ; j+4 <= nc; j += 4 {
			var cc0, cc1, cc2, cc3 int32
			off := j
			for k := 0; k < K; k++ {
				av := int32(arow[k])
				cc0 += av * int32(b[off])
				cc1 += av * int32(b[off+1])
				cc2 += av * int32(b[off+2])
				cc3 += av * int32(b[off+3])
				off += ldb
			}
			r := m * nc
			acc[r+j], acc[r+j+1], acc[r+j+2], acc[r+j+3] = cc0, cc1, cc2, cc3
		}
		for ; j < nc; j++ {
			var s int32
			off := j
			for k := 0; k < K; k++ {
				s += int32(arow[k]) * int32(b[off])
				off += ldb
			}
			acc[m*nc+j] = s
		}
	}
}
