package quant

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/auigen"
	"repro/internal/tensor"
	"repro/internal/yolite"
)

// warmModel returns a model whose batch-norm running statistics have been
// populated by a few training-mode passes, so folding is meaningful.
func warmModel(seed int64) (*yolite.Model, *tensor.Tensor) {
	m := yolite.NewModel(seed)
	rng := rand.New(rand.NewSource(seed + 7))
	x := tensor.New(2, 3, yolite.InputH, yolite.InputW)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	for i := 0; i < 30; i++ {
		m.Forward(x, true)
	}
	return m, x
}

func TestFoldConvBNMatchesFloatPath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := tensor.NewConv2D(rng, 3, 4, 3, 2, 1)
	bn := tensor.NewBatchNorm2D(4)
	// Non-trivial BN state.
	for i := 0; i < 4; i++ {
		bn.Gamma.Data[i] = 0.5 + rng.Float32()
		bn.Beta.Data[i] = rng.Float32() - 0.5
		bn.RunMean[i] = rng.Float32()
		bn.RunVar[i] = 0.5 + rng.Float32()
	}
	x := tensor.New(1, 3, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	want := bn.Forward(conv.Forward(x, false), false)

	w, b := FoldConvBN(conv, bn)
	folded := tensor.NewConv2D(rng, 3, 4, 3, 2, 1)
	copy(folded.W.Data, w)
	copy(folded.B.Data, b)
	got := folded.Forward(x, false)
	for i := range want.Data {
		if d := math.Abs(float64(want.Data[i] - got.Data[i])); d > 1e-4 {
			t.Fatalf("folded output differs at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestPortOutputsCloseToFloat(t *testing.T) {
	m, x := warmModel(2)
	calib := auigen.BuildAUISamples(3, 4, auigen.DatasetConfig{})
	qm := Port(m, calib)
	fu, fa := m.Forward(x, false)
	qu, qa := qm.Forward(x)
	if !fu.SameShape(qu) || !fa.SameShape(qa) {
		t.Fatal("quantised head shapes differ")
	}
	check := func(name string, f, q *tensor.Tensor) {
		var fMax float64
		for _, v := range f.Data {
			if a := math.Abs(float64(v)); a > fMax {
				fMax = a
			}
		}
		var errSum, n float64
		for i := range f.Data {
			errSum += math.Abs(float64(f.Data[i] - q.Data[i]))
			n++
		}
		meanErr := errSum / n
		// Mean error under ~6% of dynamic range: int8 is lossy but close.
		if meanErr > 0.06*fMax+1e-3 {
			t.Fatalf("%s: mean quantisation error %v vs range %v", name, meanErr, fMax)
		}
	}
	check("UPO", fu, qu)
	check("AGO", fa, qa)
}

func TestQuantisedWeightsInRange(t *testing.T) {
	m, _ := warmModel(3)
	qm := Port(m, nil)
	all := append(append([]*qconv{}, qm.blocks...), qm.deep...)
	all = append(all, qm.upoHead, qm.agoHead)
	for li, l := range all {
		if len(l.qw) == 0 {
			t.Fatalf("layer %d has no quantised weights", li)
		}
		var nonZero int
		for _, w := range l.qw {
			if w != 0 {
				nonZero++
			}
		}
		if nonZero == 0 {
			t.Fatalf("layer %d quantised to all zeros", li)
		}
		for oc, s := range l.wScale {
			if s <= 0 {
				t.Fatalf("layer %d channel %d scale %v", li, oc, s)
			}
		}
	}
}

func TestWeightBytesSmallerThanFloat(t *testing.T) {
	m, _ := warmModel(4)
	qm := Port(m, nil)
	floatBytes := 0
	for _, p := range m.Params() {
		floatBytes += 4 * p.Len()
	}
	if qm.WeightBytes() >= floatBytes/2 {
		t.Fatalf("int8 port is %d bytes, float is %d — expected <50%%", qm.WeightBytes(), floatBytes)
	}
}

func TestPortWithoutCalibrationStillRuns(t *testing.T) {
	m, x := warmModel(5)
	qm := Port(m, nil)
	u, a := qm.Forward(x)
	if u == nil || a == nil {
		t.Fatal("no output")
	}
}

func TestPredictTensorImplementsPredictor(t *testing.T) {
	m, _ := warmModel(6)
	calib := auigen.BuildAUISamples(7, 2, auigen.DatasetConfig{})
	qm := Port(m, calib)
	x := yolite.CanvasToTensor(calib[0].Input)
	dets := qm.PredictTensor(x, 0, 0.0)
	// An untrained model fires arbitrarily; the contract is just that the
	// pipeline produces decodable detections without panicking.
	for _, d := range dets {
		if d.Score < 0 || d.Score > 1 {
			t.Fatalf("score %v out of range", d.Score)
		}
	}
}

// TestQuantisationPreservesDetections trains briefly, ports, and checks the
// int8 model finds most of what the float model finds (the Table III vs
// Table IV comparison in miniature).
func TestQuantisationPreservesDetections(t *testing.T) {
	if testing.Short() {
		t.Skip("training-based test skipped in -short mode")
	}
	samples := auigen.BuildAUISamples(8, 40, auigen.DatasetConfig{})
	m := yolite.Train(samples, yolite.TrainConfig{Epochs: 8, Seed: 3})
	qm := Port(m, samples[:8])
	floatEval := yolite.Evaluate(m, samples, 0.5)
	quantEval := yolite.Evaluate(qm, samples, 0.5)
	fF1 := floatEval.All().F1()
	qF1 := quantEval.All().F1()
	if qF1 < fF1-0.15 {
		t.Fatalf("quantisation lost too much: float F1=%v, int8 F1=%v", fF1, qF1)
	}
}
