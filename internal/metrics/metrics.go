// Package metrics implements the evaluation machinery of Section VI:
// IoU-thresholded detection matching (the paper uses the stringent
// IoU >= 0.9), precision/recall/F1 per option class, screen-level confusion
// matrices (Table VI), and non-maximum suppression shared by the detectors.
package metrics

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// PaperIoUThreshold is the matching threshold of Section VI-B.
const PaperIoUThreshold = 0.9

// Detection is one predicted option.
type Detection struct {
	Class dataset.Class
	B     geom.BoxF
	Score float64
}

// Counts accumulates true positives, false positives and false negatives.
type Counts struct {
	TP, FP, FN int
}

// Add accumulates another tally.
func (c *Counts) Add(o Counts) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (c Counts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (c Counts) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns 2TP/(2TP+FP+FN), the paper's F-score, 0 when undefined.
func (c Counts) F1() float64 {
	den := 2*c.TP + c.FP + c.FN
	if den == 0 {
		return 0
	}
	return float64(2*c.TP) / float64(den)
}

// Match greedily matches predictions to ground truth of the same class at
// the given IoU threshold, highest-scoring predictions first (the standard
// COCO-style protocol). Each truth box matches at most one prediction.
func Match(preds []Detection, truth []dataset.Box, iouThresh float64) map[dataset.Class]Counts {
	out := map[dataset.Class]Counts{}
	order := make([]int, len(preds))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return preds[order[a]].Score > preds[order[b]].Score })
	used := make([]bool, len(truth))
	for _, pi := range order {
		p := preds[pi]
		bestIoU := 0.0
		bestIdx := -1
		for ti, t := range truth {
			if used[ti] || t.Class != p.Class {
				continue
			}
			if iou := p.B.IoU(t.B); iou > bestIoU {
				bestIoU, bestIdx = iou, ti
			}
		}
		c := out[p.Class]
		if bestIdx >= 0 && bestIoU >= iouThresh {
			used[bestIdx] = true
			c.TP++
		} else {
			c.FP++
		}
		out[p.Class] = c
	}
	for ti, t := range truth {
		if !used[ti] {
			c := out[t.Class]
			c.FN++
			out[t.Class] = c
		}
	}
	return out
}

// Evaluation accumulates matching results over a whole test set.
type Evaluation struct {
	PerClass map[dataset.Class]Counts
}

// NewEvaluation returns an empty accumulator.
func NewEvaluation() *Evaluation {
	return &Evaluation{PerClass: map[dataset.Class]Counts{}}
}

// AddSample matches one sample's predictions at the threshold and
// accumulates.
func (e *Evaluation) AddSample(preds []Detection, truth []dataset.Box, iouThresh float64) {
	for cls, c := range Match(preds, truth, iouThresh) {
		acc := e.PerClass[cls]
		acc.Add(c)
		e.PerClass[cls] = acc
	}
}

// Class returns the tally for one class.
func (e *Evaluation) Class(c dataset.Class) Counts { return e.PerClass[c] }

// All returns the tally pooled over all classes — the paper's "All" rows.
func (e *Evaluation) All() Counts {
	var total Counts
	for _, c := range e.PerClass {
		total.Add(c)
	}
	return total
}

// Confusion is the screen-level confusion matrix of Table VI: labelled
// AUI/non-AUI versus detected AUI/non-AUI.
type Confusion struct {
	// AUIDetected / AUIMissed split the labelled-AUI screens.
	AUIDetected, AUIMissed int
	// NonAUIFlagged / NonAUIPassed split the labelled-non-AUI screens.
	NonAUIFlagged, NonAUIPassed int
}

// Add records one screen.
func (c *Confusion) Add(labelledAUI, detectedAUI bool) {
	switch {
	case labelledAUI && detectedAUI:
		c.AUIDetected++
	case labelledAUI && !detectedAUI:
		c.AUIMissed++
	case !labelledAUI && detectedAUI:
		c.NonAUIFlagged++
	default:
		c.NonAUIPassed++
	}
}

// Precision is AUIDetected / (AUIDetected + NonAUIFlagged).
func (c Confusion) Precision() float64 {
	den := c.AUIDetected + c.NonAUIFlagged
	if den == 0 {
		return 0
	}
	return float64(c.AUIDetected) / float64(den)
}

// Recall is AUIDetected / (AUIDetected + AUIMissed).
func (c Confusion) Recall() float64 {
	den := c.AUIDetected + c.AUIMissed
	if den == 0 {
		return 0
	}
	return float64(c.AUIDetected) / float64(den)
}

// NMS performs class-aware non-maximum suppression: detections are processed
// in descending score order and any detection overlapping an already-kept
// detection of the same class above iouThresh is dropped.
func NMS(dets []Detection, iouThresh float64) []Detection {
	sorted := make([]Detection, len(dets))
	copy(sorted, dets)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Score > sorted[b].Score })
	var kept []Detection
	for _, d := range sorted {
		drop := false
		for _, k := range kept {
			if k.Class == d.Class && k.B.IoU(d.B) > iouThresh {
				drop = true
				break
			}
		}
		if !drop {
			kept = append(kept, d)
		}
	}
	return kept
}
