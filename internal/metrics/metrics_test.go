package metrics

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func box(x, y, w, h float64) geom.BoxF { return geom.BoxF{X: x, Y: y, W: w, H: h} }

func TestCountsMetrics(t *testing.T) {
	c := Counts{TP: 8, FP: 2, FN: 4}
	if p := c.Precision(); p != 0.8 {
		t.Fatalf("precision = %v", p)
	}
	if r := c.Recall(); math.Abs(r-8.0/12.0) > 1e-12 {
		t.Fatalf("recall = %v", r)
	}
	if f := c.F1(); math.Abs(f-16.0/22.0) > 1e-12 {
		t.Fatalf("f1 = %v", f)
	}
	if (Counts{}).Precision() != 0 || (Counts{}).Recall() != 0 || (Counts{}).F1() != 0 {
		t.Fatal("zero counts should yield zero metrics, not NaN")
	}
}

func TestMatchExact(t *testing.T) {
	truth := []dataset.Box{{Class: dataset.ClassUPO, B: box(80, 5, 8, 8)}}
	preds := []Detection{{Class: dataset.ClassUPO, B: box(80, 5, 8, 8), Score: 0.9}}
	c := Match(preds, truth, 0.9)[dataset.ClassUPO]
	if c.TP != 1 || c.FP != 0 || c.FN != 0 {
		t.Fatalf("counts %+v", c)
	}
}

func TestMatchBelowThresholdIsFPAndFN(t *testing.T) {
	truth := []dataset.Box{{Class: dataset.ClassUPO, B: box(80, 5, 8, 8)}}
	preds := []Detection{{Class: dataset.ClassUPO, B: box(84, 9, 8, 8), Score: 0.9}} // IoU ~0.14
	c := Match(preds, truth, 0.9)[dataset.ClassUPO]
	if c.TP != 0 || c.FP != 1 || c.FN != 1 {
		t.Fatalf("counts %+v", c)
	}
}

func TestMatchClassMismatch(t *testing.T) {
	truth := []dataset.Box{{Class: dataset.ClassAGO, B: box(10, 10, 50, 20)}}
	preds := []Detection{{Class: dataset.ClassUPO, B: box(10, 10, 50, 20), Score: 0.9}}
	res := Match(preds, truth, 0.5)
	if res[dataset.ClassUPO].FP != 1 {
		t.Fatal("cross-class match should be FP")
	}
	if res[dataset.ClassAGO].FN != 1 {
		t.Fatal("unmatched truth should be FN")
	}
}

func TestMatchGreedyByScore(t *testing.T) {
	truth := []dataset.Box{{Class: dataset.ClassUPO, B: box(0, 0, 10, 10)}}
	preds := []Detection{
		{Class: dataset.ClassUPO, B: box(0, 0, 10, 10), Score: 0.5},
		{Class: dataset.ClassUPO, B: box(0, 0, 10, 10), Score: 0.9},
	}
	c := Match(preds, truth, 0.9)[dataset.ClassUPO]
	// The higher-score duplicate wins the single truth; the other is FP.
	if c.TP != 1 || c.FP != 1 || c.FN != 0 {
		t.Fatalf("counts %+v", c)
	}
}

func TestMatchEachTruthOnce(t *testing.T) {
	truth := []dataset.Box{
		{Class: dataset.ClassUPO, B: box(0, 0, 10, 10)},
		{Class: dataset.ClassUPO, B: box(50, 0, 10, 10)},
	}
	preds := []Detection{
		{Class: dataset.ClassUPO, B: box(0, 0, 10, 10), Score: 0.9},
		{Class: dataset.ClassUPO, B: box(50, 0, 10, 10), Score: 0.8},
	}
	c := Match(preds, truth, 0.9)[dataset.ClassUPO]
	if c.TP != 2 || c.FP != 0 || c.FN != 0 {
		t.Fatalf("counts %+v", c)
	}
}

func TestEvaluationAccumulates(t *testing.T) {
	e := NewEvaluation()
	truth := []dataset.Box{
		{Class: dataset.ClassAGO, B: box(20, 100, 60, 16)},
		{Class: dataset.ClassUPO, B: box(85, 4, 7, 7)},
	}
	preds := []Detection{
		{Class: dataset.ClassAGO, B: box(20, 100, 60, 16), Score: 0.9},
		{Class: dataset.ClassUPO, B: box(0, 0, 5, 5), Score: 0.8}, // miss
	}
	e.AddSample(preds, truth, 0.9)
	e.AddSample(preds, truth, 0.9)
	if got := e.Class(dataset.ClassAGO); got.TP != 2 {
		t.Fatalf("AGO counts %+v", got)
	}
	if got := e.Class(dataset.ClassUPO); got.FP != 2 || got.FN != 2 {
		t.Fatalf("UPO counts %+v", got)
	}
	all := e.All()
	if all.TP != 2 || all.FP != 2 || all.FN != 2 {
		t.Fatalf("all counts %+v", all)
	}
}

func TestConfusion(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // detected AUI
	c.Add(true, false)  // missed AUI
	c.Add(false, true)  // false alarm
	c.Add(false, false) // correct pass
	if c.AUIDetected != 1 || c.AUIMissed != 1 || c.NonAUIFlagged != 1 || c.NonAUIPassed != 1 {
		t.Fatalf("confusion %+v", c)
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 {
		t.Fatalf("precision=%v recall=%v", c.Precision(), c.Recall())
	}
	if (Confusion{}).Precision() != 0 || (Confusion{}).Recall() != 0 {
		t.Fatal("empty confusion should yield zeros")
	}
}

func TestNMSSuppressesDuplicates(t *testing.T) {
	dets := []Detection{
		{Class: dataset.ClassUPO, B: box(10, 10, 10, 10), Score: 0.9},
		{Class: dataset.ClassUPO, B: box(11, 10, 10, 10), Score: 0.7}, // heavy overlap
		{Class: dataset.ClassUPO, B: box(60, 10, 10, 10), Score: 0.8}, // separate
	}
	kept := NMS(dets, 0.5)
	if len(kept) != 2 {
		t.Fatalf("kept %d, want 2", len(kept))
	}
	if kept[0].Score != 0.9 || kept[1].Score != 0.8 {
		t.Fatalf("kept wrong detections: %+v", kept)
	}
}

func TestNMSKeepsDifferentClasses(t *testing.T) {
	dets := []Detection{
		{Class: dataset.ClassUPO, B: box(10, 10, 10, 10), Score: 0.9},
		{Class: dataset.ClassAGO, B: box(10, 10, 10, 10), Score: 0.7},
	}
	if kept := NMS(dets, 0.5); len(kept) != 2 {
		t.Fatalf("class-aware NMS dropped a different class: %+v", kept)
	}
}

func TestNMSEmpty(t *testing.T) {
	if kept := NMS(nil, 0.5); len(kept) != 0 {
		t.Fatal("NMS(nil) should be empty")
	}
}

func TestNMSDoesNotMutateInput(t *testing.T) {
	dets := []Detection{
		{Class: dataset.ClassUPO, B: box(0, 0, 10, 10), Score: 0.1},
		{Class: dataset.ClassUPO, B: box(50, 0, 10, 10), Score: 0.9},
	}
	NMS(dets, 0.5)
	if dets[0].Score != 0.1 {
		t.Fatal("NMS reordered the caller's slice")
	}
}
