package metrics

// This file is the neutral metric-export model the telemetry layer shares:
// every producer (perfmodel.Timings, serve.Stats, the fleet simulator, the
// HTTP front end) renders its counters into []Family, and the two writers
// below serialise one consistent snapshot as Prometheus text exposition
// (version 0.0.4, what a scrape of GET /metrics returns) or as a JSON
// document (what darpa-sim dumps per run and BENCH_fleet.json records).
// Keeping the model here — metrics already sits below every producer — means
// perfmodel, serve, httpd and fleet can all emit families without an import
// cycle.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// FamilyType is the Prometheus metric type of a family.
type FamilyType string

// The family types the exporters emit.
const (
	TypeCounter FamilyType = "counter"
	TypeGauge   FamilyType = "gauge"
	TypeSummary FamilyType = "summary"
	TypeUntyped FamilyType = "untyped"
)

// Sample is one time series point inside a family: a label set and a value.
// Suffix extends the family name for summary series ("_sum", "_count");
// plain samples leave it empty.
type Sample struct {
	Suffix string            `json:"suffix,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// Family is one named metric with its samples — the unit both writers
// consume.
type Family struct {
	Name    string     `json:"name"`
	Help    string     `json:"help,omitempty"`
	Type    FamilyType `json:"type"`
	Samples []Sample   `json:"samples"`
}

// Counter builds a counter family.
func Counter(name, help string, samples ...Sample) Family {
	return Family{Name: name, Help: help, Type: TypeCounter, Samples: samples}
}

// Gauge builds a gauge family.
func Gauge(name, help string, samples ...Sample) Family {
	return Family{Name: name, Help: help, Type: TypeGauge, Samples: samples}
}

// V is the unlabelled single-value sample, the common case for scalar
// counters and gauges.
func V(v float64) Sample { return Sample{Value: v} }

// L builds a labelled sample from alternating key, value pairs; it panics on
// an odd pair count (a programming error in the exporter, not data).
func L(v float64, kv ...string) Sample {
	if len(kv)%2 != 0 {
		panic("metrics: L requires alternating key, value pairs")
	}
	s := Sample{Value: v}
	if len(kv) > 0 {
		s.Labels = make(map[string]string, len(kv)/2)
		for i := 0; i < len(kv); i += 2 {
			s.Labels[kv[i]] = kv[i+1]
		}
	}
	return s
}

// WriteText renders the families as Prometheus text exposition format 0.0.4:
// a # HELP and # TYPE line per family, then one line per sample with labels
// sorted by key. Families render in the order given (producers assemble them
// deterministically); a scrape's output is therefore byte-stable for equal
// inputs.
func WriteText(w io.Writer, families []Family) error {
	bw := bufio.NewWriter(w)
	for _, f := range families {
		if f.Name == "" {
			continue
		}
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		typ := f.Type
		if typ == "" {
			typ = TypeUntyped
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, typ)
		for _, s := range f.Samples {
			bw.WriteString(f.Name)
			bw.WriteString(s.Suffix)
			writeLabels(bw, s.Labels)
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// TextString is WriteText into a string, for tests and log lines.
func TextString(families []Family) string {
	var b strings.Builder
	_ = WriteText(&b, families)
	return b.String()
}

// WriteJSON renders the same snapshot as an indented JSON document
// {"families": [...]} — the machine-readable twin of the text exposition,
// used for per-run dumps and BENCH trajectories.
func WriteJSON(w io.Writer, families []Family) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Families []Family `json:"families"`
	}{Families: families})
}

func writeLabels(w *bufio.Writer, labels map[string]string) {
	if len(labels) == 0 {
		return
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			w.WriteByte(',')
		}
		fmt.Fprintf(w, `%s=%q`, k, escapeLabel(labels[k]))
	}
	w.WriteByte('}')
}

// formatValue renders a float the way Prometheus clients do: shortest
// round-trip representation, with the IEEE specials spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

func escapeLabel(s string) string {
	// %q in writeLabels adds the quotes and escapes " and \; newlines are
	// escaped by it too, so the label value needs no pre-pass. The function
	// exists as the single seam where label sanitisation would go.
	return s
}

// ValidateText checks that r holds well-formed Prometheus text exposition:
// every non-comment line is `name[{labels}] value`, every series name was
// declared by a preceding # TYPE line, and values parse as floats. It
// returns the number of samples read, so callers can also assert
// non-emptiness. This is the parser the scrape checks in CI and the httpd
// tests run against the /metrics output.
func ValidateText(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	typed := map[string]bool{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return samples, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			switch FamilyType(parts[3]) {
			case TypeCounter, TypeGauge, TypeSummary, TypeUntyped, "histogram":
			default:
				return samples, fmt.Errorf("line %d: unknown metric type %q", lineNo, parts[3])
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, ok := splitSeries(line)
		if !ok {
			return samples, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		if !validMetricName(name) {
			return samples, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		if !declaredBy(typed, name) {
			return samples, fmt.Errorf("line %d: series %q has no # TYPE declaration", lineNo, name)
		}
		val := strings.TrimSpace(rest)
		if _, perr := strconv.ParseFloat(strings.TrimPrefix(val, "+"), 64); perr != nil {
			return samples, fmt.Errorf("line %d: bad value %q: %v", lineNo, val, perr)
		}
		samples++
	}
	if serr := sc.Err(); serr != nil {
		return samples, serr
	}
	return samples, nil
}

// splitSeries splits one sample line into its series name (label block
// stripped) and the remainder holding the value.
func splitSeries(line string) (name, rest string, ok bool) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", "", false
		}
		return line[:i], line[j+1:], true
	}
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return "", "", false
	}
	return line[:i], line[i:], true
}

// declaredBy reports whether name, or name minus a summary suffix, has a
// TYPE declaration.
func declaredBy(typed map[string]bool, name string) bool {
	if typed[name] {
		return true
	}
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		if base, ok := strings.CutSuffix(name, suffix); ok && typed[base] {
			return true
		}
	}
	return false
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
