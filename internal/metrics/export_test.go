package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func sampleFamilies() []Family {
	return []Family{
		Counter("darpa_events_total", "Accessibility events seen.", V(1234)),
		Gauge("darpa_fleet_devices", "Devices simulated.", V(100000)),
		{
			Name: "darpa_stage_latency_seconds",
			Help: "Per-stage latency.",
			Type: TypeSummary,
			Samples: []Sample{
				L(0.015, "stage", "infer", "quantile", "0.5"),
				L(0.042, "stage", "infer", "quantile", "0.99"),
				{Suffix: "_sum", Labels: map[string]string{"stage": "infer"}, Value: 12.5},
				{Suffix: "_count", Labels: map[string]string{"stage": "infer"}, Value: 900},
			},
		},
	}
}

func TestWriteTextFormat(t *testing.T) {
	got := TextString(sampleFamilies())
	want := strings.Join([]string{
		"# HELP darpa_events_total Accessibility events seen.",
		"# TYPE darpa_events_total counter",
		"darpa_events_total 1234",
		"# HELP darpa_fleet_devices Devices simulated.",
		"# TYPE darpa_fleet_devices gauge",
		"darpa_fleet_devices 100000",
		"# HELP darpa_stage_latency_seconds Per-stage latency.",
		"# TYPE darpa_stage_latency_seconds summary",
		`darpa_stage_latency_seconds{quantile="0.5",stage="infer"} 0.015`,
		`darpa_stage_latency_seconds{quantile="0.99",stage="infer"} 0.042`,
		`darpa_stage_latency_seconds_sum{stage="infer"} 12.5`,
		`darpa_stage_latency_seconds_count{stage="infer"} 900`,
		"",
	}, "\n")
	if got != want {
		t.Errorf("text exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteTextDeterministicLabelOrder(t *testing.T) {
	f := Family{Name: "m", Type: TypeGauge, Samples: []Sample{
		{Labels: map[string]string{"zeta": "1", "alpha": "2", "mid": "3"}, Value: 1},
	}}
	a := TextString([]Family{f})
	for i := 0; i < 20; i++ {
		if b := TextString([]Family{f}); b != a {
			t.Fatalf("non-deterministic rendering:\n%s\nvs\n%s", a, b)
		}
	}
	if !strings.Contains(a, `m{alpha="2",mid="3",zeta="1"} 1`) {
		t.Errorf("labels not sorted by key: %q", a)
	}
}

func TestWriteTextSpecialValues(t *testing.T) {
	got := TextString([]Family{Gauge("g", "", L(math.Inf(1), "k", "a"),
		L(math.Inf(-1), "k", "b"), L(math.NaN(), "k", "c"))})
	for _, want := range []string{`g{k="a"} +Inf`, `g{k="b"} -Inf`, `g{k="c"} NaN`} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

func TestWriteTextEscapesHelpAndLabels(t *testing.T) {
	got := TextString([]Family{Gauge("g", "line one\nline two \\ done",
		L(1, "path", `a"b\c`))})
	if !strings.Contains(got, `# HELP g line one\nline two \\ done`) {
		t.Errorf("help not escaped:\n%s", got)
	}
	if !strings.Contains(got, `g{path="a\"b\\c"} 1`) {
		t.Errorf("label value not escaped:\n%s", got)
	}
	if n, err := ValidateText(strings.NewReader(got)); err != nil || n != 1 {
		t.Errorf("escaped output does not validate: n=%d err=%v", n, err)
	}
}

func TestValidateTextAcceptsOwnOutput(t *testing.T) {
	text := TextString(sampleFamilies())
	n, err := ValidateText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ValidateText rejected WriteText output: %v\n%s", err, text)
	}
	if n != 6 {
		t.Errorf("ValidateText counted %d samples, want 6", n)
	}
}

func TestValidateTextRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"undeclared series": "series_without_type 1\n",
		"bad value":         "# TYPE m gauge\nm not-a-number\n",
		"bad name":          "# TYPE 9bad gauge\n9bad 1\n",
		"unclosed labels":   "# TYPE m gauge\nm}{ 1\n",
		"bad type":          "# TYPE m wibble\nm 1\n",
	}
	for name, text := range cases {
		if _, err := ValidateText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: ValidateText accepted %q", name, text)
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, sampleFamilies()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Families []Family `json:"families"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if len(doc.Families) != 3 {
		t.Fatalf("got %d families, want 3", len(doc.Families))
	}
	if doc.Families[2].Samples[2].Suffix != "_sum" {
		t.Errorf("summary suffix lost in round trip: %+v", doc.Families[2].Samples[2])
	}
	if doc.Families[0].Type != TypeCounter {
		t.Errorf("family type lost: %v", doc.Families[0].Type)
	}
}

func TestLPanicsOnOddPairs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("L with odd key/value count did not panic")
		}
	}()
	L(1, "only-key")
}
