package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Pool recycles activation tensors across inference calls. Every forward
// pass through a conv/BN/activation stack otherwise allocates the network's
// full activation footprint per screen (tensor.New per layer), which at
// serving rates turns into steady GC pressure. Buffers are bucketed by
// element count rounded up to the next power of two and backed by one
// sync.Pool per bucket, so concurrent inference goroutines draw and return
// buffers without a shared lock.
//
// Get returns a tensor with uninitialised contents: pooled forwards fully
// overwrite their output, so the memset tensor.New pays is skipped. Callers
// that hand a pooled tensor onward own it until they Put it back; a tensor
// that is never Put is simply garbage collected, so forgetting to return a
// buffer is a missed optimisation, not a leak. Putting a tensor that is
// still referenced elsewhere is the one fatal misuse — the next Get may
// hand the same buffer to another goroutine.
//
// Training never pools: backward passes hold references to forward
// activations (Conv2D.lastIn, BatchNorm2D.lastNorm), so recycling them
// between Forward and Backward would corrupt gradients. The inference-only
// entry points (ForwardPooled, Model.Pool fields) are the only paths that
// touch a Pool.
//
// A nil *Pool is valid everywhere: Get falls back to New and Put is a
// no-op, so callers thread an optional pool through unconditionally.
type Pool struct {
	buckets [maxPoolBucket]poolBucketStore

	// News counts Gets that had to allocate fresh; Gets counts all Gets.
	// Steady state serving should see News flatline while Gets climbs.
	gets atomic.Int64
	news atomic.Int64
}

// poolBucketStore is one size class: a small strongly-held free list in
// front of a sync.Pool overflow. The free list survives garbage collection
// — sync.Pool alone is cleared every GC cycle, which re-allocates the whole
// working set each time and keeps a resident service's allocation rate from
// ever reaching zero. Its fixed depth bounds retained memory to
// maxStrongPerBucket buffers per size class actually in use; everything past
// that spills to the sync.Pool, which scales across Ps and lets the GC
// reclaim genuine excess.
type poolBucketStore struct {
	mu       sync.Mutex
	strong   []*Tensor
	overflow sync.Pool
}

const (
	// maxPoolBucket bounds bucket indices; 1<<34 elements (64 GiB of
	// float32) is far beyond any activation in this codebase.
	maxPoolBucket = 35
	// maxStrongPerBucket is the GC-proof free-list depth per size class —
	// enough for one in-flight forward's worth of same-sized activations.
	maxStrongPerBucket = 4
)

// get pops a recycled tensor, preferring the GC-proof free list.
func (s *poolBucketStore) get() *Tensor {
	s.mu.Lock()
	if n := len(s.strong); n > 0 {
		t := s.strong[n-1]
		s.strong[n-1] = nil
		s.strong = s.strong[:n-1]
		s.mu.Unlock()
		return t
	}
	s.mu.Unlock()
	if v := s.overflow.Get(); v != nil {
		return v.(*Tensor)
	}
	return nil
}

// put parks a tensor, preferring the GC-proof free list.
func (s *poolBucketStore) put(t *Tensor) {
	s.mu.Lock()
	if len(s.strong) < maxStrongPerBucket {
		s.strong = append(s.strong, t)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.overflow.Put(t)
}

// NewPool returns an empty pool. The zero value is also ready to use; the
// constructor exists for call-site clarity.
func NewPool() *Pool { return &Pool{} }

// poolBucket returns the smallest b with 1<<b >= n.
func poolBucket(n int) int { return bits.Len(uint(n - 1)) }

// Get returns a tensor of the given shape, recycling a pooled buffer when
// one is available. Contents are NOT zeroed — the caller must fully
// overwrite Data. A nil pool allocates via New (which zeroes).
func (p *Pool) Get(shape ...int) *Tensor {
	if p == nil {
		return New(shape...)
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return New(shape...) // let New's validation panic with its message
		}
		n *= d
	}
	b := poolBucket(n)
	if b >= maxPoolBucket {
		return New(shape...)
	}
	p.gets.Add(1)
	if t := p.buckets[b].get(); t != nil {
		t.Shape = append(t.Shape[:0], shape...)
		t.Data = t.Data[:n]
		return t
	}
	p.news.Add(1)
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n, 1<<b)}
}

// Put returns a tensor to the pool for reuse. Tensors tracking gradients
// are refused (they belong to training, which never pools); nil pools and
// nil or empty tensors are no-ops. The caller must not touch t afterwards.
func (p *Pool) Put(t *Tensor) {
	if p == nil || t == nil || t.Grad != nil || cap(t.Data) == 0 {
		return
	}
	// Bucket by capacity (floor power of two): every request served from
	// bucket b needs at most 1<<b elements, which this buffer can hold.
	b := bits.Len(uint(cap(t.Data))) - 1
	if b >= maxPoolBucket {
		return
	}
	p.buckets[b].put(t)
}

// Stats reports how many Gets the pool served and how many of those had to
// allocate a fresh buffer.
func (p *Pool) Stats() (gets, news int64) {
	if p == nil {
		return 0, 0
	}
	return p.gets.Load(), p.news.Load()
}

// PooledLayer is the inference-only counterpart of Layer.Forward: the layer
// draws its output from a Pool instead of allocating, and records none of
// the bookkeeping a backward pass would need. Implementations must produce
// output bit-identical to Forward(x, false).
type PooledLayer interface {
	ForwardPooled(x *Tensor, p *Pool) *Tensor
}

// InferPooled runs one inference-only forward through l, drawing the output
// from p when the layer supports pooling and falling back to Forward
// otherwise.
func InferPooled(l Layer, x *Tensor, p *Pool) *Tensor {
	if pl, ok := l.(PooledLayer); ok {
		return pl.ForwardPooled(x, p)
	}
	return l.Forward(x, false)
}

// CancelLayer is a PooledLayer with a cooperative cancellation hook: once
// done closes, the layer stops computing and returns a partially written
// buffer the caller must discard after observing done. Only layers whose
// forward is expensive enough to matter implement it (the convolutions);
// elementwise layers finish faster than a checkpoint would save.
type CancelLayer interface {
	ForwardCancel(x *Tensor, p *Pool, done <-chan struct{}) *Tensor
}

// InferCancel runs one inference-only forward through l with cancellation:
// cancel-aware layers poll done between output planes, everything else runs
// to completion (the between-layer checkpoint in the caller still bounds the
// abort to one layer). A nil done is exactly InferPooled.
func InferCancel(l Layer, x *Tensor, p *Pool, done <-chan struct{}) *Tensor {
	if done != nil {
		if cl, ok := l.(CancelLayer); ok {
			return cl.ForwardCancel(x, p, done)
		}
	}
	return InferPooled(l, x, p)
}
