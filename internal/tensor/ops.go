package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is a differentiable module with a forward pass, a backward pass and
// trainable parameters. Backward must be called with the gradient of the
// loss with respect to the layer's most recent output, and returns the
// gradient with respect to its input.
type Layer interface {
	Forward(x *Tensor, train bool) *Tensor
	Backward(dy *Tensor) *Tensor
	Params() []*Tensor
}

// Conv2D is a 2-D convolution with square kernels, equal stride in both
// dimensions, and zero padding.
type Conv2D struct {
	InC, OutC, K, Stride, Pad int
	W                         *Tensor // [OutC, InC, K, K]
	B                         *Tensor // [OutC]

	lastIn *Tensor
}

// NewConv2D builds a convolution layer with Kaiming-initialised weights.
func NewConv2D(rng *rand.Rand, inC, outC, k, stride, pad int) *Conv2D {
	if inC <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("tensor: invalid conv config in=%d out=%d k=%d s=%d p=%d", inC, outC, k, stride, pad))
	}
	c := &Conv2D{InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		W: NewWithGrad(outC, inC, k, k), B: NewWithGrad(outC)}
	c.W.KaimingInit(rng, inC*k*k)
	return c
}

// OutSize returns the spatial output size for an input of size (h, w).
func (c *Conv2D) OutSize(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.K)/c.Stride + 1
	ow := (w+2*c.Pad-c.K)/c.Stride + 1
	return oh, ow
}

// Forward computes the convolution. The input must be [N, InC, H, W].
// Output planes are independent, so the (batch item, output channel) pairs
// run on the shared worker pool when the flop count justifies it — this is
// what lets batched inference scale with GOMAXPROCS.
func (c *Conv2D) Forward(x *Tensor, train bool) *Tensor {
	N, C, H, W := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if C != c.InC {
		panic(fmt.Sprintf("tensor: conv expects %d input channels, got %d", c.InC, C))
	}
	OH, OW := c.OutSize(H, W)
	y := New(N, c.OutC, OH, OW)
	if train {
		c.lastIn = x
	}
	c.forwardInto(x, y, nil, nil)
	return y
}

// ForwardPooled is the inference-only forward: the output buffer comes from
// p (contents fully overwritten) and no backward bookkeeping is recorded.
func (c *Conv2D) ForwardPooled(x *Tensor, p *Pool) *Tensor {
	return c.ForwardCancel(x, p, nil)
}

// ForwardCancel is the inference-only forward with a cooperative
// cancellation hook: once done closes, no further output planes are started
// and the call returns early. The returned tensor is then only partially
// written — the caller must observe done itself and discard the buffer
// (returning it to the pool is fine; pooled contents are dirty by contract).
// A nil done is exactly ForwardPooled, and a nil pool allocates fresh.
func (c *Conv2D) ForwardCancel(x *Tensor, p *Pool, done <-chan struct{}) *Tensor {
	N, C, H, W := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if C != c.InC {
		panic(fmt.Sprintf("tensor: conv expects %d input channels, got %d", c.InC, C))
	}
	OH, OW := c.OutSize(H, W)
	y := p.Get(N, c.OutC, OH, OW)
	c.forwardInto(x, y, p, done)
	return y
}

// forwardInto computes the convolution into the preallocated output y,
// writing every element. Large shapes are lowered to im2col + blocked GEMM
// (see gemm.go) with scratch panels drawn from p; small shapes stay on the
// direct nested loop, which doubles as the bit-exactness reference — both
// paths accumulate each output element in identical order, so their results
// are bit-identical (pinned by TestConvGemmMatchesDirect). Work runs on the
// shared worker pool when the flop count justifies it, and a non-nil done is
// polled between column blocks (GEMM) or output planes (direct) — the
// convolution is the hot loop every cancellation deadline ultimately bounds.
func (c *Conv2D) forwardInto(x, y *Tensor, p *Pool, done <-chan struct{}) {
	N := x.Shape[0]
	OH, OW := y.Shape[2], y.Shape[3]
	kdim := c.InC * c.K * c.K
	spec := convSpec{inC: c.InC, outC: c.OutC, kk: c.K, stride: c.Stride, pad: c.Pad}
	if c.OutC*OH*OW*kdim >= gemmMinWork {
		convGemmInto(x, y, spec, c.W.Data, c.B.Data, false, 0, p, done)
		return
	}
	tasks := N * c.OutC
	if ParallelWorthwhile(tasks * OH * OW * kdim) {
		ParallelForCancel(done, tasks, func(t int) {
			directConvPlane(x, y, spec, c.W.Data, c.B.Data[t%c.OutC], t/c.OutC, t%c.OutC)
		})
		return
	}
	for t := 0; t < tasks; t++ {
		if Aborted(done) {
			return
		}
		directConvPlane(x, y, spec, c.W.Data, c.B.Data[t%c.OutC], t/c.OutC, t%c.OutC)
	}
}

// directConvPlane fills output plane (n, oc) with the direct nested loop —
// the small-shape fallback and the reference the GEMM path is pinned
// against. Each plane touches a disjoint slice of y, so planes are safe to
// compute concurrently; the arithmetic order within a plane is fixed,
// keeping results bit-identical to the serial loop. The weight and input
// plane bases advance incrementally with ic instead of being recomputed in
// the innermost loops.
func directConvPlane(x, y *Tensor, spec convSpec, w []float32, bias float32, n, oc int) {
	C, H, W := x.Shape[1], x.Shape[2], x.Shape[3]
	OH, OW := y.Shape[2], y.Shape[3]
	kk := spec.kk
	plane := H * W
	wPer := kk * kk
	wPlane0 := oc * spec.inC * wPer
	inPlane0 := n * C * plane
	outBase := ((n*spec.outC + oc) * OH) * OW
	for oh := 0; oh < OH; oh++ {
		ihBase := oh*spec.stride - spec.pad
		outRow := outBase + oh*OW
		for ow := 0; ow < OW; ow++ {
			iwBase := ow*spec.stride - spec.pad
			sum := bias
			wBase, inBase := wPlane0, inPlane0
			for ic := 0; ic < spec.inC; ic++ {
				for kh := 0; kh < kk; kh++ {
					ih := ihBase + kh
					if ih < 0 || ih >= H {
						continue
					}
					inRow := inBase + ih*W
					wRow := wBase + kh*kk
					for kw := 0; kw < kk; kw++ {
						iw := iwBase + kw
						if iw < 0 || iw >= W {
							continue
						}
						sum += w[wRow+kw] * x.Data[inRow+iw]
					}
				}
				wBase += wPer
				inBase += plane
			}
			y.Data[outRow+ow] = sum
		}
	}
}

// Backward computes input gradients and accumulates weight/bias gradients.
func (c *Conv2D) Backward(dy *Tensor) *Tensor {
	x := c.lastIn
	if x == nil {
		panic("tensor: Conv2D.Backward before Forward(train=true)")
	}
	N, C, H, W := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	OH, OW := dy.Shape[2], dy.Shape[3]
	dx := New(N, C, H, W)
	for n := 0; n < N; n++ {
		for oc := 0; oc < c.OutC; oc++ {
			outBase := ((n*c.OutC + oc) * OH) * OW
			for oh := 0; oh < OH; oh++ {
				ihBase := oh*c.Stride - c.Pad
				outRow := outBase + oh*OW
				for ow := 0; ow < OW; ow++ {
					g := dy.Data[outRow+ow]
					if g == 0 {
						continue
					}
					c.B.Grad[oc] += g
					iwBase := ow*c.Stride - c.Pad
					for ic := 0; ic < c.InC; ic++ {
						wBase := ((oc*c.InC + ic) * c.K) * c.K
						inBase := ((n*C + ic) * H) * W
						for kh := 0; kh < c.K; kh++ {
							ih := ihBase + kh
							if ih < 0 || ih >= H {
								continue
							}
							inRow := inBase + ih*W
							wRow := wBase + kh*c.K
							for kw := 0; kw < c.K; kw++ {
								iw := iwBase + kw
								if iw < 0 || iw >= W {
									continue
								}
								c.W.Grad[wRow+kw] += g * x.Data[inRow+iw]
								dx.Data[inRow+iw] += g * c.W.Data[wRow+kw]
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// Params returns the trainable tensors.
func (c *Conv2D) Params() []*Tensor { return []*Tensor{c.W, c.B} }

// BatchNorm2D normalises each channel over (N, H, W) with trainable scale
// and shift, tracking running statistics for inference. Folding these
// statistics into the preceding convolution is the "constant folding" step
// of the ncnn port (internal/quant).
type BatchNorm2D struct {
	C        int
	Gamma    *Tensor // [C]
	Beta     *Tensor // [C]
	RunMean  []float32
	RunVar   []float32
	Momentum float32
	Eps      float32

	lastIn   *Tensor
	lastNorm []float32
	batchStd []float32
}

// NewBatchNorm2D builds a batch-norm layer for c channels.
func NewBatchNorm2D(c int) *BatchNorm2D {
	bn := &BatchNorm2D{C: c, Gamma: NewWithGrad(c), Beta: NewWithGrad(c),
		RunMean: make([]float32, c), RunVar: make([]float32, c),
		Momentum: 0.1, Eps: 1e-5}
	bn.Gamma.Fill(1)
	for i := range bn.RunVar {
		bn.RunVar[i] = 1
	}
	return bn
}

// Forward normalises x ([N, C, H, W]).
func (bn *BatchNorm2D) Forward(x *Tensor, train bool) *Tensor {
	N, C, H, W := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if C != bn.C {
		panic(fmt.Sprintf("tensor: batchnorm expects %d channels, got %d", bn.C, C))
	}
	y := New(N, C, H, W)
	if !train {
		bn.inferInto(x, y)
		return y
	}
	plane := H * W
	count := float32(N * plane)
	bn.lastIn = x
	if cap(bn.lastNorm) < len(x.Data) {
		bn.lastNorm = make([]float32, len(x.Data))
	}
	bn.lastNorm = bn.lastNorm[:len(x.Data)]
	if bn.batchStd == nil {
		bn.batchStd = make([]float32, C)
	}
	for c := 0; c < C; c++ {
		var sum float32
		for n := 0; n < N; n++ {
			base := ((n*C + c) * plane)
			for i := 0; i < plane; i++ {
				sum += x.Data[base+i]
			}
		}
		mean := sum / count
		var sq float32
		for n := 0; n < N; n++ {
			base := ((n*C + c) * plane)
			for i := 0; i < plane; i++ {
				d := x.Data[base+i] - mean
				sq += d * d
			}
		}
		variance := sq / count
		bn.RunMean[c] = (1-bn.Momentum)*bn.RunMean[c] + bn.Momentum*mean
		bn.RunVar[c] = (1-bn.Momentum)*bn.RunVar[c] + bn.Momentum*variance
		std := float32(math.Sqrt(float64(variance + bn.Eps)))
		bn.batchStd[c] = std
		g, b := bn.Gamma.Data[c], bn.Beta.Data[c]
		for n := 0; n < N; n++ {
			base := ((n*C + c) * plane)
			for i := 0; i < plane; i++ {
				norm := (x.Data[base+i] - mean) / std
				bn.lastNorm[base+i] = norm
				y.Data[base+i] = g*norm + b
			}
		}
	}
	return y
}

// ForwardPooled normalises with the running statistics into a pooled
// buffer — the inference-only path.
func (bn *BatchNorm2D) ForwardPooled(x *Tensor, p *Pool) *Tensor {
	if x.Shape[1] != bn.C {
		panic(fmt.Sprintf("tensor: batchnorm expects %d channels, got %d", bn.C, x.Shape[1]))
	}
	y := p.Get(x.Shape...)
	bn.inferInto(x, y)
	return y
}

// inferInto applies the running-statistics normalisation into y, writing
// every element — arithmetic identical to the historical eval branch of
// Forward.
func (bn *BatchNorm2D) inferInto(x, y *Tensor) {
	N, C, H, W := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	plane := H * W
	for c := 0; c < C; c++ {
		mean, variance := bn.RunMean[c], bn.RunVar[c]
		std := float32(math.Sqrt(float64(variance + bn.Eps)))
		g, b := bn.Gamma.Data[c], bn.Beta.Data[c]
		for n := 0; n < N; n++ {
			base := ((n*C + c) * plane)
			for i := 0; i < plane; i++ {
				norm := (x.Data[base+i] - mean) / std
				y.Data[base+i] = g*norm + b
			}
		}
	}
}

// Backward propagates through the normalisation.
func (bn *BatchNorm2D) Backward(dy *Tensor) *Tensor {
	x := bn.lastIn
	if x == nil {
		panic("tensor: BatchNorm2D.Backward before Forward(train=true)")
	}
	N, C, H, W := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	plane := H * W
	count := float32(N * plane)
	dx := New(N, C, H, W)
	for c := 0; c < C; c++ {
		var sumDy, sumDyNorm float32
		for n := 0; n < N; n++ {
			base := ((n*C + c) * plane)
			for i := 0; i < plane; i++ {
				g := dy.Data[base+i]
				sumDy += g
				sumDyNorm += g * bn.lastNorm[base+i]
			}
		}
		bn.Beta.Grad[c] += sumDy
		bn.Gamma.Grad[c] += sumDyNorm
		gamma := bn.Gamma.Data[c]
		invStd := 1 / bn.batchStd[c]
		for n := 0; n < N; n++ {
			base := ((n*C + c) * plane)
			for i := 0; i < plane; i++ {
				norm := bn.lastNorm[base+i]
				dx.Data[base+i] = gamma * invStd * (dy.Data[base+i] - sumDy/count - norm*sumDyNorm/count)
			}
		}
	}
	return dx
}

// Params returns gamma and beta.
func (bn *BatchNorm2D) Params() []*Tensor { return []*Tensor{bn.Gamma, bn.Beta} }

// LeakyReLU is max(x, slope*x), the YOLO-family activation.
type LeakyReLU struct {
	Slope  float32
	lastIn *Tensor
}

// NewLeakyReLU builds the activation with the conventional 0.1 slope.
func NewLeakyReLU() *LeakyReLU { return &LeakyReLU{Slope: 0.1} }

// Forward applies the activation elementwise.
func (l *LeakyReLU) Forward(x *Tensor, train bool) *Tensor {
	y := New(x.Shape...)
	if train {
		l.lastIn = x
	}
	l.applyInto(x, y)
	return y
}

// ForwardPooled applies the activation into a pooled buffer.
func (l *LeakyReLU) ForwardPooled(x *Tensor, p *Pool) *Tensor {
	y := p.Get(x.Shape...)
	l.applyInto(x, y)
	return y
}

// applyInto writes the activation of every element of x into y.
func (l *LeakyReLU) applyInto(x, y *Tensor) {
	for i, v := range x.Data {
		if v >= 0 {
			y.Data[i] = v
		} else {
			y.Data[i] = l.Slope * v
		}
	}
}

// Backward gates the gradient by the sign of the stored input.
func (l *LeakyReLU) Backward(dy *Tensor) *Tensor {
	if l.lastIn == nil {
		panic("tensor: LeakyReLU.Backward before Forward(train=true)")
	}
	dx := New(dy.Shape...)
	for i, v := range l.lastIn.Data {
		if v >= 0 {
			dx.Data[i] = dy.Data[i]
		} else {
			dx.Data[i] = l.Slope * dy.Data[i]
		}
	}
	return dx
}

// Params returns nil: the activation has no parameters.
func (l *LeakyReLU) Params() []*Tensor { return nil }

// MaxPool2D is a 2x2, stride-2 max pooling layer, used by the RCNN-style
// backbones.
type MaxPool2D struct {
	argmax []int
	inLen  int
}

// NewMaxPool2D builds the pooling layer.
func NewMaxPool2D() *MaxPool2D { return &MaxPool2D{} }

// Forward pools each 2x2 block to its maximum.
func (p *MaxPool2D) Forward(x *Tensor, train bool) *Tensor {
	N, C := x.Shape[0], x.Shape[1]
	OH, OW := x.Shape[2]/2, x.Shape[3]/2
	y := New(N, C, OH, OW)
	if train {
		if cap(p.argmax) < len(y.Data) {
			p.argmax = make([]int, len(y.Data))
		}
		p.argmax = p.argmax[:len(y.Data)]
		p.inLen = len(x.Data)
	}
	p.poolInto(x, y, train)
	return y
}

// ForwardPooled pools into a pooled buffer without argmax bookkeeping.
func (p *MaxPool2D) ForwardPooled(x *Tensor, pool *Pool) *Tensor {
	y := pool.Get(x.Shape[0], x.Shape[1], x.Shape[2]/2, x.Shape[3]/2)
	p.poolInto(x, y, false)
	return y
}

// poolInto writes each 2x2 block's maximum into y, recording argmax
// positions for the backward pass only when train is set.
func (p *MaxPool2D) poolInto(x, y *Tensor, train bool) {
	N, C, H, W := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	OH, OW := y.Shape[2], y.Shape[3]
	for n := 0; n < N; n++ {
		for c := 0; c < C; c++ {
			inBase := ((n*C + c) * H) * W
			outBase := ((n*C + c) * OH) * OW
			for oh := 0; oh < OH; oh++ {
				for ow := 0; ow < OW; ow++ {
					i00 := inBase + (2*oh)*W + 2*ow
					best, bestIdx := x.Data[i00], i00
					for _, idx := range [3]int{i00 + 1, i00 + W, i00 + W + 1} {
						if x.Data[idx] > best {
							best, bestIdx = x.Data[idx], idx
						}
					}
					o := outBase + oh*OW + ow
					y.Data[o] = best
					if train {
						p.argmax[o] = bestIdx
					}
				}
			}
		}
	}
}

// Backward routes gradients to the argmax positions.
func (p *MaxPool2D) Backward(dy *Tensor) *Tensor {
	if p.inLen == 0 {
		panic("tensor: MaxPool2D.Backward before Forward(train=true)")
	}
	dx := &Tensor{Shape: []int{dy.Shape[0], dy.Shape[1], dy.Shape[2] * 2, dy.Shape[3] * 2},
		Data: make([]float32, p.inLen)}
	for o, idx := range p.argmax {
		dx.Data[idx] += dy.Data[o]
	}
	return dx
}

// Params returns nil: pooling has no parameters.
func (p *MaxPool2D) Params() []*Tensor { return nil }

// Linear is a fully connected layer y = xW^T + b over the flattened input.
type Linear struct {
	In, Out int
	W       *Tensor // [Out, In]
	B       *Tensor // [Out]
	lastIn  *Tensor
}

// NewLinear builds a fully connected layer with Kaiming init.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	l := &Linear{In: in, Out: out, W: NewWithGrad(out, in), B: NewWithGrad(out)}
	l.W.KaimingInit(rng, in)
	return l
}

// Forward treats x as [N, In] (any trailing shape is flattened).
func (l *Linear) Forward(x *Tensor, train bool) *Tensor {
	N := x.Shape[0]
	if x.Len()/N != l.In {
		panic(fmt.Sprintf("tensor: linear expects %d features, got %d", l.In, x.Len()/N))
	}
	if train {
		l.lastIn = x
	}
	y := New(N, l.Out)
	for n := 0; n < N; n++ {
		xRow := x.Data[n*l.In : (n+1)*l.In]
		for o := 0; o < l.Out; o++ {
			wRow := l.W.Data[o*l.In : (o+1)*l.In]
			sum := l.B.Data[o]
			for i, xv := range xRow {
				sum += wRow[i] * xv
			}
			y.Data[n*l.Out+o] = sum
		}
	}
	return y
}

// Backward accumulates weight gradients and returns input gradients shaped
// like the flattened input.
func (l *Linear) Backward(dy *Tensor) *Tensor {
	if l.lastIn == nil {
		panic("tensor: Linear.Backward before Forward(train=true)")
	}
	N := dy.Shape[0]
	dx := New(N, l.In)
	for n := 0; n < N; n++ {
		xRow := l.lastIn.Data[n*l.In : (n+1)*l.In]
		dxRow := dx.Data[n*l.In : (n+1)*l.In]
		for o := 0; o < l.Out; o++ {
			g := dy.Data[n*l.Out+o]
			if g == 0 {
				continue
			}
			l.B.Grad[o] += g
			wRow := l.W.Data[o*l.In : (o+1)*l.In]
			gRow := l.W.Grad[o*l.In : (o+1)*l.In]
			for i := range wRow {
				gRow[i] += g * xRow[i]
				dxRow[i] += g * wRow[i]
			}
		}
	}
	return dx
}

// Params returns the trainable tensors.
func (l *Linear) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// Sigmoid computes 1/(1+exp(-v)) for a raw value. Detector heads apply it to
// objectness and class logits.
func Sigmoid(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}
