package tensor

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		seen := make([]atomic.Int32, n)
		ParallelFor(n, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

// TestConvForwardParallelMatchesSerial pins the parallel forward's contract:
// splitting work per (batch item, output channel) plane must be bit-identical
// to the serial loop, because each plane keeps its original arithmetic order.
func TestConvForwardParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	conv := NewConv2D(rng, 8, 8, 3, 1, 1)
	x := randInput(rng, 2, 8, 32, 32) // 2*8*32*32*8*9 flops, well above the gate

	prev := runtime.GOMAXPROCS(1)
	serial := conv.Forward(x, false)
	runtime.GOMAXPROCS(4)
	parallel := conv.Forward(x, false)
	runtime.GOMAXPROCS(prev)

	if len(serial.Data) != len(parallel.Data) {
		t.Fatalf("shape mismatch: %v vs %v", serial.Shape, parallel.Shape)
	}
	for i := range serial.Data {
		if serial.Data[i] != parallel.Data[i] {
			t.Fatalf("output diverges at %d: serial %v, parallel %v", i, serial.Data[i], parallel.Data[i])
		}
	}
}
