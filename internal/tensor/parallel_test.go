package tensor

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		seen := make([]atomic.Int32, n)
		ParallelFor(n, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

// TestAborted pins the happy-path sentinel: a nil done is never aborted, an
// open channel is not aborted, a closed one is.
func TestAborted(t *testing.T) {
	if Aborted(nil) {
		t.Fatal("nil done reported aborted")
	}
	done := make(chan struct{})
	if Aborted(done) {
		t.Fatal("open done reported aborted")
	}
	close(done)
	if !Aborted(done) {
		t.Fatal("closed done not reported aborted")
	}
}

// TestParallelForCancelAbortsEarly: once done closes, workers must stop
// claiming indices — a closed-from-the-start done runs nothing (serial and
// pooled paths both), and a nil done still covers every index.
func TestParallelForCancelAbortsEarly(t *testing.T) {
	done := make(chan struct{})
	close(done)
	prev := runtime.GOMAXPROCS(1) // serial path
	var ran atomic.Int32
	ParallelForCancel(done, 100, func(int) { ran.Add(1) })
	runtime.GOMAXPROCS(4) // worker-pool path
	ParallelForCancel(done, 100, func(int) { ran.Add(1) })
	runtime.GOMAXPROCS(prev)
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d tasks ran under a pre-closed done, want 0", got)
	}
	ParallelForCancel(nil, 100, func(int) { ran.Add(1) })
	if got := ran.Load(); got != 100 {
		t.Fatalf("nil done covered %d indices, want 100", got)
	}

	// Cancelling mid-run: close done from inside a task; the call must still
	// return (no deadlock) having skipped at least the untouched tail.
	var after atomic.Int32
	mid := make(chan struct{})
	var once sync.Once
	ParallelForCancel(mid, 1000, func(i int) {
		if i == 0 {
			once.Do(func() { close(mid) })
			return
		}
		after.Add(1)
	})
	if got := after.Load(); got >= 999 {
		t.Fatalf("cancel mid-run skipped nothing: %d of 999 other tasks ran", got)
	}
}

// TestConvForwardParallelMatchesSerial pins the parallel forward's contract:
// splitting work per (batch item, output channel) plane must be bit-identical
// to the serial loop, because each plane keeps its original arithmetic order.
func TestConvForwardParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	conv := NewConv2D(rng, 8, 8, 3, 1, 1)
	x := randInput(rng, 2, 8, 32, 32) // 2*8*32*32*8*9 flops, well above the gate

	prev := runtime.GOMAXPROCS(1)
	serial := conv.Forward(x, false)
	runtime.GOMAXPROCS(4)
	parallel := conv.Forward(x, false)
	runtime.GOMAXPROCS(prev)

	if len(serial.Data) != len(parallel.Data) {
		t.Fatalf("shape mismatch: %v vs %v", serial.Shape, parallel.Shape)
	}
	for i := range serial.Data {
		if serial.Data[i] != parallel.Data[i] {
			t.Fatalf("output diverges at %d: serial %v, parallel %v", i, serial.Data[i], parallel.Data[i])
		}
	}
}
