package tensor

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears the gradients.
	Step()
}

// Adam is the Adam optimiser, the one the paper uses to train YOLOv5
// (Section VI-B, "we use a batch size of 256, and apply the Adam optimizer").
type Adam struct {
	LR          float32
	Beta1       float32
	Beta2       float32
	Eps         float32
	WeightDecay float32

	params []*Tensor
	m      [][]float32
	v      [][]float32
	t      int
}

// NewAdam builds an optimiser over params with the given learning rate and
// conventional betas.
func NewAdam(params []*Tensor, lr float32) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	for _, p := range params {
		if p.Grad == nil {
			panic("tensor: Adam requires parameters with gradient buffers")
		}
		a.m = append(a.m, make([]float32, len(p.Data)))
		a.v = append(a.v, make([]float32, len(p.Data)))
	}
	return a
}

// Step applies one Adam update to every parameter and zeroes the gradients.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	bc2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for pi, p := range a.params {
		m, v := a.m[pi], a.v[pi]
		for i := range p.Data {
			g := p.Grad[i]
			if a.WeightDecay > 0 {
				g += a.WeightDecay * p.Data[i]
			}
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.Data[i] -= a.LR * mh / (float32(math.Sqrt(float64(vh))) + a.Eps)
			p.Grad[i] = 0
		}
	}
}

// SGD is plain stochastic gradient descent with optional momentum, used by
// the ablation studies to contrast with Adam.
type SGD struct {
	LR       float32
	Momentum float32

	params []*Tensor
	vel    [][]float32
}

// NewSGD builds the optimiser.
func NewSGD(params []*Tensor, lr, momentum float32) *SGD {
	s := &SGD{LR: lr, Momentum: momentum, params: params}
	for _, p := range params {
		if p.Grad == nil {
			panic("tensor: SGD requires parameters with gradient buffers")
		}
		s.vel = append(s.vel, make([]float32, len(p.Data)))
	}
	return s
}

// Step applies one SGD update and zeroes the gradients.
func (s *SGD) Step() {
	for pi, p := range s.params {
		vel := s.vel[pi]
		for i := range p.Data {
			vel[i] = s.Momentum*vel[i] - s.LR*p.Grad[i]
			p.Data[i] += vel[i]
			p.Grad[i] = 0
		}
	}
}

// ClipGrad scales gradients so their global L2 norm does not exceed maxNorm,
// stabilising the detector's early training.
func ClipGrad(params []*Tensor, maxNorm float32) {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad {
			sq += float64(g) * float64(g)
		}
	}
	norm := float32(math.Sqrt(sq))
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] *= scale
		}
	}
}
