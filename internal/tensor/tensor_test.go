package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewAndFill(t *testing.T) {
	x := New(2, 3, 4, 5)
	if x.Len() != 120 {
		t.Fatalf("len=%d", x.Len())
	}
	x.Fill(2.5)
	if x.Data[0] != 2.5 || x.Data[119] != 2.5 {
		t.Fatal("fill failed")
	}
	y := x.Clone()
	y.Fill(0)
	if x.Data[0] != 2.5 {
		t.Fatal("clone aliases data")
	}
}

func TestNewInvalidDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(2, 0)
}

func TestAtSet4(t *testing.T) {
	x := New(2, 3, 4, 5)
	x.Set4(1, 2, 3, 4, 42)
	if x.At4(1, 2, 3, 4) != 42 {
		t.Fatal("At4/Set4 mismatch")
	}
	// Row-major NCHW: last index is fastest.
	if x.Data[len(x.Data)-1] != 42 {
		t.Fatal("Set4(1,2,3,4) should hit the final element")
	}
}

func TestSameShape(t *testing.T) {
	if !New(2, 3).SameShape(New(2, 3)) {
		t.Fatal("identical shapes not equal")
	}
	if New(2, 3).SameShape(New(3, 2)) {
		t.Fatal("different shapes equal")
	}
	if New(2, 3).SameShape(New(2, 3, 1)) {
		t.Fatal("different ranks equal")
	}
}

func TestKaimingInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := New(64, 9)
	w.KaimingInit(rng, 9)
	bound := float32(math.Sqrt(6.0 / 9.0))
	var nonzero int
	for _, v := range w.Data {
		if v < -bound || v > bound {
			t.Fatalf("weight %v outside Kaiming bound %v", v, bound)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(w.Data)/2 {
		t.Fatal("init produced mostly zeros")
	}
}

// numericalGrad estimates dLoss/dx[i] by central differences, where loss is
// recomputed by fn.
func numericalGrad(data []float32, i int, fn func() float64) float64 {
	const eps = 1e-2
	orig := data[i]
	data[i] = orig + eps
	lp := fn()
	data[i] = orig - eps
	lm := fn()
	data[i] = orig
	return (lp - lm) / (2 * eps)
}

// lossOf computes a fixed pseudo-random weighted sum of y, a scalar loss with
// known gradient lossW.
func lossOf(y *Tensor, lossW []float32) float64 {
	var s float64
	for i, v := range y.Data {
		s += float64(v) * float64(lossW[i])
	}
	return s
}

func checkLayerGradients(t *testing.T, layer Layer, x *Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	y := layer.Forward(x, true)
	lossW := make([]float32, y.Len())
	for i := range lossW {
		lossW[i] = rng.Float32()*2 - 1
	}
	dy := New(y.Shape...)
	copy(dy.Data, lossW)
	dx := layer.Backward(dy)

	forward := func() float64 {
		return lossOf(layer.Forward(x, false), lossW)
	}
	// Input gradients: check a sample of positions.
	for trial := 0; trial < 12; trial++ {
		i := rng.Intn(x.Len())
		want := numericalGrad(x.Data, i, forward)
		got := float64(dx.Data[i])
		if math.Abs(got-want) > tol*(1+math.Abs(want)) {
			t.Fatalf("input grad[%d] = %v, numerical %v", i, got, want)
		}
	}
	// Parameter gradients.
	for pi, p := range layer.Params() {
		for trial := 0; trial < 8; trial++ {
			i := rng.Intn(p.Len())
			want := numericalGrad(p.Data, i, forward)
			got := float64(p.Grad[i])
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("param %d grad[%d] = %v, numerical %v", pi, i, got, want)
			}
		}
	}
}

func randInput(rng *rand.Rand, shape ...int) *Tensor {
	x := New(shape...)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	return x
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	conv := NewConv2D(rng, 3, 4, 3, 2, 1)
	x := randInput(rng, 2, 3, 8, 6)
	checkLayerGradients(t, conv, x, 2e-2)
}

func TestConv2DStride1Gradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	conv := NewConv2D(rng, 2, 3, 3, 1, 1)
	x := randInput(rng, 1, 2, 5, 5)
	checkLayerGradients(t, conv, x, 2e-2)
}

func TestConv2DOutSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(rng, 1, 1, 3, 2, 1)
	oh, ow := conv.OutSize(160, 96)
	if oh != 80 || ow != 48 {
		t.Fatalf("out size = %dx%d, want 80x48", oh, ow)
	}
	conv1x1 := NewConv2D(rng, 1, 1, 1, 1, 0)
	oh, ow = conv1x1.OutSize(20, 12)
	if oh != 20 || ow != 12 {
		t.Fatalf("1x1 out size = %dx%d", oh, ow)
	}
}

func TestConv2DKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(rng, 1, 1, 1, 1, 0)
	conv.W.Fill(2)
	conv.B.Fill(1)
	x := New(1, 1, 2, 2)
	x.Data = []float32{1, 2, 3, 4}
	y := conv.Forward(x, false)
	want := []float32{3, 5, 7, 9}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("y=%v want %v", y.Data, want)
		}
	}
}

func TestConv2DChannelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("channel mismatch did not panic")
		}
	}()
	rng := rand.New(rand.NewSource(1))
	NewConv2D(rng, 3, 4, 3, 1, 1).Forward(New(1, 2, 4, 4), false)
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bn := NewBatchNorm2D(3)
	// Give gamma/beta non-trivial values.
	for i := range bn.Gamma.Data {
		bn.Gamma.Data[i] = 0.5 + rng.Float32()
		bn.Beta.Data[i] = rng.Float32() - 0.5
	}
	x := randInput(rng, 2, 3, 4, 4)

	// BatchNorm in train mode recomputes batch statistics, so the numerical
	// check must also run in train mode.
	y := bn.Forward(x, true)
	lossW := make([]float32, y.Len())
	for i := range lossW {
		lossW[i] = rng.Float32()*2 - 1
	}
	dy := New(y.Shape...)
	copy(dy.Data, lossW)
	dx := bn.Backward(dy)
	forward := func() float64 { return lossOf(bn.Forward(x, true), lossW) }
	for trial := 0; trial < 15; trial++ {
		i := rng.Intn(x.Len())
		want := numericalGrad(x.Data, i, forward)
		got := float64(dx.Data[i])
		if math.Abs(got-want) > 3e-2*(1+math.Abs(want)) {
			t.Fatalf("bn input grad[%d] = %v, numerical %v", i, got, want)
		}
	}
}

func TestBatchNormTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	bn := NewBatchNorm2D(2)
	x := randInput(rng, 4, 2, 3, 3)
	// Warm the running statistics with several train passes.
	for i := 0; i < 200; i++ {
		bn.Forward(x, true)
	}
	yTrain := bn.Forward(x, true)
	yEval := bn.Forward(x, false)
	for i := range yTrain.Data {
		diff := math.Abs(float64(yTrain.Data[i] - yEval.Data[i]))
		if diff > 0.15 {
			t.Fatalf("train/eval outputs diverge at %d: %v vs %v", i, yTrain.Data[i], yEval.Data[i])
		}
	}
}

func TestBatchNormNormalises(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bn := NewBatchNorm2D(1)
	x := New(2, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*10 + 5 // mean ~10, non-unit variance
	}
	y := bn.Forward(x, true)
	var mean float64
	for _, v := range y.Data {
		mean += float64(v)
	}
	mean /= float64(len(y.Data))
	if math.Abs(mean) > 1e-4 {
		t.Fatalf("normalised mean = %v, want ~0", mean)
	}
}

func TestLeakyReLU(t *testing.T) {
	l := NewLeakyReLU()
	x := New(1, 4)
	x.Data = []float32{-2, -0.5, 0, 3}
	y := l.Forward(x, true)
	want := []float32{-0.2, -0.05, 0, 3}
	for i := range want {
		if math.Abs(float64(y.Data[i]-want[i])) > 1e-6 {
			t.Fatalf("y=%v want %v", y.Data, want)
		}
	}
	dy := New(1, 4)
	dy.Fill(1)
	dx := l.Backward(dy)
	wantG := []float32{0.1, 0.1, 1, 1}
	for i := range wantG {
		if dx.Data[i] != wantG[i] {
			t.Fatalf("dx=%v want %v", dx.Data, wantG)
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2D()
	x := New(1, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	y := p.Forward(x, true)
	want := []float32{5, 7, 13, 15}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("pooled=%v want %v", y.Data, want)
		}
	}
	dy := New(1, 1, 2, 2)
	dy.Data = []float32{1, 2, 3, 4}
	dx := p.Backward(dy)
	if dx.Data[5] != 1 || dx.Data[7] != 2 || dx.Data[13] != 3 || dx.Data[15] != 4 {
		t.Fatalf("pool backward routed wrong: %v", dx.Data)
	}
	var sum float32
	for _, v := range dx.Data {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("pool backward leaked gradient: sum=%v", sum)
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	lin := NewLinear(rng, 6, 4)
	x := randInput(rng, 3, 6)
	checkLayerGradients(t, lin, x, 2e-2)
}

func TestLinearKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lin := NewLinear(rng, 2, 1)
	lin.W.Data = []float32{2, 3}
	lin.B.Data = []float32{1}
	x := New(1, 2)
	x.Data = []float32{4, 5}
	y := lin.Forward(x, false)
	if y.Data[0] != 2*4+3*5+1 {
		t.Fatalf("y=%v", y.Data[0])
	}
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); math.Abs(float64(s)-0.5) > 1e-6 {
		t.Fatalf("Sigmoid(0)=%v", s)
	}
	if s := Sigmoid(10); s < 0.999 {
		t.Fatalf("Sigmoid(10)=%v", s)
	}
	if s := Sigmoid(-10); s > 0.001 {
		t.Fatalf("Sigmoid(-10)=%v", s)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimise (x - 3)^2 elementwise.
	p := NewWithGrad(4)
	adam := NewAdam([]*Tensor{p}, 0.1)
	for step := 0; step < 500; step++ {
		for i := range p.Data {
			p.Grad[i] = 2 * (p.Data[i] - 3)
		}
		adam.Step()
	}
	for i, v := range p.Data {
		if math.Abs(float64(v)-3) > 0.01 {
			t.Fatalf("param[%d]=%v did not converge to 3", i, v)
		}
	}
	if p.Grad[0] != 0 {
		t.Fatal("Step must clear gradients")
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p := NewWithGrad(1)
	p.Data[0] = 10
	sgd := NewSGD([]*Tensor{p}, 0.05, 0.9)
	for step := 0; step < 300; step++ {
		p.Grad[0] = 2 * p.Data[0]
		sgd.Step()
	}
	if math.Abs(float64(p.Data[0])) > 0.01 {
		t.Fatalf("SGD did not converge: %v", p.Data[0])
	}
}

func TestClipGrad(t *testing.T) {
	p := NewWithGrad(2)
	p.Grad[0], p.Grad[1] = 3, 4 // norm 5
	ClipGrad([]*Tensor{p}, 1)
	norm := math.Hypot(float64(p.Grad[0]), float64(p.Grad[1]))
	if math.Abs(norm-1) > 1e-5 {
		t.Fatalf("clipped norm = %v", norm)
	}
	// Below the limit: unchanged.
	p.Grad[0], p.Grad[1] = 0.3, 0.4
	ClipGrad([]*Tensor{p}, 1)
	if p.Grad[0] != 0.3 {
		t.Fatal("clip modified an in-range gradient")
	}
}

func TestTrainTinyNetworkEndToEnd(t *testing.T) {
	// A 2-layer net must learn XOR-ish separable data; this is the
	// smoke test that forward/backward/optimiser compose correctly.
	rng := rand.New(rand.NewSource(42))
	l1 := NewLinear(rng, 2, 8)
	act := NewLeakyReLU()
	l2 := NewLinear(rng, 8, 1)
	params := append(l1.Params(), l2.Params()...)
	adam := NewAdam(params, 0.05)

	inputs := [][]float32{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float32{0, 1, 1, 0}
	var lastLoss float64
	for epoch := 0; epoch < 400; epoch++ {
		lastLoss = 0
		for i, in := range inputs {
			x := New(1, 2)
			copy(x.Data, in)
			h := act.Forward(l1.Forward(x, true), true)
			y := l2.Forward(h, true)
			pred := Sigmoid(y.Data[0])
			diff := pred - targets[i]
			lastLoss += float64(diff) * float64(diff)
			dy := New(1, 1)
			dy.Data[0] = 2 * diff * pred * (1 - pred)
			l1.Backward(act.Backward(l2.Backward(dy)))
			adam.Step()
		}
	}
	if lastLoss > 0.05 {
		t.Fatalf("XOR training failed to converge: loss=%v", lastLoss)
	}
}

func BenchmarkConvForward96x160(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(rng, 3, 10, 3, 2, 1)
	x := randInput(rng, 1, 3, 160, 96)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}
