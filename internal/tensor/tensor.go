// Package tensor implements the dense float32 tensors and the
// neural-network primitives (convolution, batch normalisation, pooling,
// fully connected layers, activations, losses, optimisers) that the
// reproduction's detectors are built from.
//
// The paper trains YOLOv5 with PyTorch on a GPU server; this repository has
// neither, so the package provides hand-written forward AND backward passes
// for every op, optimised for a single CPU core: NCHW layout, contiguous
// inner loops over width, and no allocations inside the hot loops.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense float32 array in NCHW layout (for 4-D data) or any
// row-major layout described by Shape. Grad, when non-nil, accumulates the
// gradient of a scalar loss with respect to Data.
type Tensor struct {
	Shape []int
	Data  []float32
	Grad  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			// Print a copy: handing shape itself to Sprintf would make the
			// parameter escape, heap-allocating the variadic slice at every
			// call site — including Pool.Get's per-layer inference calls.
			panic(fmt.Sprintf("tensor: invalid dimension %d in %v", d, append([]int(nil), shape...)))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// NewWithGrad allocates a zero tensor that also tracks gradients, for
// trainable parameters.
func NewWithGrad(shape ...int) *Tensor {
	t := New(shape...)
	t.Grad = make([]float32, len(t.Data))
	return t
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the i-th dimension.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// ZeroGrad clears the accumulated gradient, if any.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Clone returns a deep copy (gradient buffer excluded).
func (t *Tensor) Clone() *Tensor {
	out := New(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// KaimingInit fills t with Kaiming-uniform noise for a layer with the given
// fan-in, the initialisation YOLO-family backbones use for leaky-ReLU
// networks.
func (t *Tensor) KaimingInit(rng *rand.Rand, fanIn int) {
	if fanIn <= 0 {
		panic("tensor: KaimingInit requires positive fan-in")
	}
	bound := float32(math.Sqrt(6.0 / float64(fanIn)))
	for i := range t.Data {
		t.Data[i] = (rng.Float32()*2 - 1) * bound
	}
}

// At4 returns the element at (n, c, h, w) of a 4-D tensor. It exists for
// tests and debugging; hot paths index Data directly.
func (t *Tensor) At4(n, c, h, w int) float32 {
	N, C, H, W := t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
	_ = N
	return t.Data[((n*C+c)*H+h)*W+w]
}

// Set4 writes the element at (n, c, h, w) of a 4-D tensor.
func (t *Tensor) Set4(n, c, h, w int, v float32) {
	C, H, W := t.Shape[1], t.Shape[2], t.Shape[3]
	t.Data[((n*C+c)*H+h)*W+w] = v
}
