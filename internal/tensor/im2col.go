package tensor

// im2col lowers convolution to matrix multiplication: the kernel window
// under every output pixel is unpacked into one column of a dense panel, so
// the convolution becomes weights [OutC x kdim] times panel [kdim x pixels]
// (see gemm.go). The unpack is padding-aware — out-of-bounds taps are
// written as explicit zeros, which keeps the GEMM inner loop free of the
// per-element bounds branches that dominate the direct convolution loop.
//
// Panels are built per column block (a contiguous range of output pixels),
// never for the whole feature map at once: the scratch stays small enough to
// come from tensor.Pool size buckets and to remain cache-resident while the
// GEMM sweeps it once per row tile.

// colScalar is the element type an im2col panel can hold: float32 for the
// float kernels, int8 for the quantised path (internal/quant), which shares
// this unpack via Im2colPanelI8.
type colScalar interface {
	~float32 | ~int8
}

// im2colPanel fills dst (length kdim*(j1-j0), kdim = C*kk*kk) with the
// im2col panel for output pixels [j0, j1) of a single batch item. src is
// that item's input in CHW layout with spatial size HxW; output pixel
// j = oh*OW + ow corresponds to the kernel window whose top-left input tap
// is (oh*stride-pad, ow*stride-pad). Row r = (ic*kk+kh)*kk+kw of the panel
// holds tap (ic, kh, kw) for every pixel in the block; taps outside the
// input are zero. Every element of dst is written.
func im2colPanel[T colScalar](src []T, C, H, W, kk, stride, pad, OW, j0, j1 int, dst []T) {
	nc := j1 - j0
	plane := H * W
	row := 0
	for ic := 0; ic < C; ic++ {
		in := src[ic*plane : (ic+1)*plane]
		for kh := 0; kh < kk; kh++ {
			for kw := 0; kw < kk; kw++ {
				im2colRow(in, H, W, stride, pad, OW, kh, kw, j0, j1, dst[row*nc:(row+1)*nc])
				row++
			}
		}
	}
}

// im2colRow writes one panel row: tap (kh, kw) of a single input channel for
// output pixels [j0, j1). The block may start and end mid-row of the output
// grid, so the walk is segmented by output row with the valid column range
// copied (contiguously for stride 1) and the padding flanks zero-filled.
func im2colRow[T colScalar](in []T, H, W, stride, pad, OW, kh, kw, j0, j1 int, out []T) {
	pos := 0
	oh := j0 / OW
	ow0 := j0 % OW
	for pos < len(out) {
		owA := 0
		if pos == 0 {
			owA = ow0
		}
		owB := OW
		if rem := len(out) - pos + owA; owB > rem {
			owB = rem
		}
		seg := out[pos : pos+owB-owA]
		ih := oh*stride - pad + kh
		if ih < 0 || ih >= H {
			for i := range seg {
				seg[i] = 0
			}
		} else {
			xrow := in[ih*W : (ih+1)*W]
			// Valid output columns: 0 <= ow*stride-pad+kw < W.
			lo := 0
			if d := pad - kw; d > 0 {
				lo = (d + stride - 1) / stride
			}
			hi := 0 // exclusive upper bound on valid ow
			if top := W - 1 + pad - kw; top >= 0 {
				hi = top/stride + 1
				if hi > OW {
					hi = OW
				}
			}
			if lo < owA {
				lo = owA
			}
			if hi > owB {
				hi = owB
			}
			if hi < lo {
				lo, hi = owA, owA // whole segment is padding
			}
			for ow := owA; ow < lo; ow++ {
				seg[ow-owA] = 0
			}
			if hi <= lo {
				// Empty valid range: everything was zero-filled above.
			} else if stride == 1 {
				base := lo - pad + kw
				copy(seg[lo-owA:hi-owA], xrow[base:base+hi-lo])
			} else {
				iw := lo*stride - pad + kw
				for ow := lo; ow < hi; ow++ {
					seg[ow-owA] = xrow[iw]
					iw += stride
				}
			}
			for ow := hi; ow < owB; ow++ {
				seg[ow-owA] = 0
			}
		}
		pos += owB - owA
		oh++
	}
}

// Im2colPanelI8 is the int8 instantiation of the panel unpack, exported for
// the quantised GEMM in internal/quant: the int8 pipeline lowers each layer
// exactly like the float path, just over int8 activations.
func Im2colPanelI8(src []int8, C, H, W, kk, stride, pad, OW, j0, j1 int, dst []int8) {
	im2colPanel(src, C, H, W, kk, stride, pad, OW, j0, j1, dst)
}
