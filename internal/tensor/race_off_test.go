//go:build !race

package tensor

// raceEnabled reports whether the race detector is active; allocation-count
// assertions are meaningless under its instrumentation.
const raceEnabled = false
