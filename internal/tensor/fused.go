package tensor

import (
	"fmt"
	"math"
)

// FoldConvBN combines a convolution and the batch norm that follows it into
// a single convolution: w' = w * gamma/std, b' = beta + (b - mean) *
// gamma/std. This is the paper's "replace the internal redundant
// calculations in the model with constants" step; the int8 port
// (quant.FoldConvBN) and the float fused inference blocks both fold through
// it.
func FoldConvBN(conv *Conv2D, bn *BatchNorm2D) (w []float32, b []float32) {
	per := conv.InC * conv.K * conv.K
	w = make([]float32, conv.OutC*per)
	b = make([]float32, conv.OutC)
	for oc := 0; oc < conv.OutC; oc++ {
		std := float32(math.Sqrt(float64(bn.RunVar[oc] + bn.Eps)))
		scale := bn.Gamma.Data[oc] / std
		for i := 0; i < per; i++ {
			w[oc*per+i] = conv.W.Data[oc*per+i] * scale
		}
		b[oc] = bn.Beta.Data[oc] + (conv.B.Data[oc]-bn.RunMean[oc])*scale
	}
	return w, b
}

// FusedConvBNAct is the one-pass inference form of a conv → batch-norm →
// leaky-ReLU block: the batch-norm constants are folded into the weights at
// build time and the activation runs in the GEMM epilogue, so the block
// writes its output feature map exactly once instead of walking three
// tensors. It is inference-only — it snapshots the source layers' weights
// and records no backward bookkeeping, so it must be rebuilt (Fuse again)
// after the underlying layers train or load new weights.
type FusedConvBNAct struct {
	InC, OutC, K, Stride, Pad int
	W                         []float32 // folded weights [OutC][InC*K*K]
	B                         []float32 // folded bias [OutC]
	Slope                     float32   // leaky-ReLU negative slope
}

var (
	_ PooledLayer = (*FusedConvBNAct)(nil)
	_ CancelLayer = (*FusedConvBNAct)(nil)
)

// FuseConvBNAct folds conv and bn into a single fused block with act's
// slope applied in the epilogue.
func FuseConvBNAct(conv *Conv2D, bn *BatchNorm2D, act *LeakyReLU) *FusedConvBNAct {
	w, b := FoldConvBN(conv, bn)
	return &FusedConvBNAct{
		InC: conv.InC, OutC: conv.OutC, K: conv.K, Stride: conv.Stride, Pad: conv.Pad,
		W: w, B: b, Slope: act.Slope,
	}
}

// OutSize returns the spatial output size for an input of size (h, w).
func (f *FusedConvBNAct) OutSize(h, w int) (int, int) {
	oh := (h+2*f.Pad-f.K)/f.Stride + 1
	ow := (w+2*f.Pad-f.K)/f.Stride + 1
	return oh, ow
}

// ForwardPooled runs the fused block into a pooled buffer.
func (f *FusedConvBNAct) ForwardPooled(x *Tensor, p *Pool) *Tensor {
	return f.ForwardCancel(x, p, nil)
}

// ForwardCancel is ForwardPooled with the standard cooperative cancellation
// contract: once done closes the returned buffer is partially written and
// the caller must discard it.
func (f *FusedConvBNAct) ForwardCancel(x *Tensor, p *Pool, done <-chan struct{}) *Tensor {
	N, C, H, W := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if C != f.InC {
		panic(fmt.Sprintf("tensor: fused conv expects %d input channels, got %d", f.InC, C))
	}
	OH, OW := f.OutSize(H, W)
	y := p.Get(N, f.OutC, OH, OW)
	spec := convSpec{inC: f.InC, outC: f.OutC, kk: f.K, stride: f.Stride, pad: f.Pad}
	kdim := f.InC * f.K * f.K
	if f.OutC*OH*OW*kdim >= gemmMinWork {
		convGemmInto(x, y, spec, f.W, f.B, true, f.Slope, p, done)
		return y
	}
	// Small-shape fallback: direct loop over output planes, activation
	// applied per plane — still one pass over the output.
	for n := 0; n < N; n++ {
		for oc := 0; oc < f.OutC; oc++ {
			if Aborted(done) {
				return y
			}
			directConvPlane(x, y, spec, f.W, f.B[oc], n, oc)
			base := ((n*f.OutC + oc) * OH) * OW
			row := y.Data[base : base+OH*OW]
			for i, v := range row {
				if v < 0 {
					row[i] = f.Slope * v
				}
			}
		}
	}
	return y
}
