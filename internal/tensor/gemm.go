package tensor

// Cache-blocked SGEMM specialised for im2col convolution: C = A*B + bias,
// where A is the weight matrix [M x K] (M = output channels, K = InC*k*k),
// B is an im2col panel [K x nc] for one block of output pixels, and C is the
// corresponding slice of the output feature map. The kernel is register
// tiled 4x4 with a single accumulator per output element and k strictly
// ascending, so every C element is the sum bias + w0*x0 + w1*x1 + ... in
// exactly the order the direct convolution loop computes it — the GEMM path
// is bit-identical to the fallback, not merely close (padding taps
// contribute w*0, which cannot change a float sum).
//
// Work is split into (batch item, column block) tasks dispatched through
// ParallelForCancel, preserving the between-block cancellation checkpoints
// the context-aware request path relies on: one task is a few hundred
// microseconds, far inside the one-conv-layer abort budget.

// gemmMinWork is the MAC-count floor below which convolutions stay on the
// direct nested loop: for tiny feature maps (the 3x5 AGO head grid) the
// im2col round trip costs more than it saves. The direct loop also remains
// the bit-exactness reference the property tests compare against.
const gemmMinWork = 1 << 12

// convSpec is the geometry a lowered convolution shares between the float
// and fused entry points.
type convSpec struct {
	inC, outC, kk, stride, pad int
}

// colBlock picks the column-block width: panels are capped near 32k
// elements (128 KiB of float32) so a block stays cache-resident across the
// row-tile sweeps, with a floor that keeps the 4-wide kernel efficient.
func colBlock(kdim, cols int) int {
	b := (1 << 15) / kdim
	if b > cols {
		b = cols
	}
	if b < 16 {
		b = 16
	}
	if b >= 8 {
		b &^= 3
	}
	return b
}

// convGemmInto computes y = conv(x; w, bias) for every batch item via
// im2col + blocked GEMM. w is [outC][inC*kk*kk] row-major, bias is [outC].
// When act is set, the leaky-ReLU epilogue (negative slope) is applied to
// each output tile while it is still cache-hot — the fusion hook that turns
// a ConvBNAct block into one pass. Scratch panels come from p (nil p
// allocates fresh); done adds a cooperative cancellation checkpoint between
// column blocks.
func convGemmInto(x, y *Tensor, spec convSpec, w, bias []float32, act bool, slope float32, p *Pool, done <-chan struct{}) {
	N := x.Shape[0]
	OH, OW := y.Shape[2], y.Shape[3]
	cols := OH * OW
	kdim := spec.inC * spec.kk * spec.kk
	blk := colBlock(kdim, cols)
	nBlocks := (cols + blk - 1) / blk
	tasks := N * nBlocks
	if ParallelWorthwhile(N * spec.outC * cols * kdim) {
		ParallelForCancel(done, tasks, func(t int) {
			convGemmTask(x, y, spec, w, bias, act, slope, p, blk, nBlocks, t)
		})
		return
	}
	for t := 0; t < tasks; t++ {
		if Aborted(done) {
			return
		}
		convGemmTask(x, y, spec, w, bias, act, slope, p, blk, nBlocks, t)
	}
}

// convGemmTask runs one (batch item, column block) unit: unpack the panel,
// multiply every weight row against it, apply the epilogue. Tasks write
// disjoint column ranges of y, so they are safe to run concurrently.
func convGemmTask(x, y *Tensor, spec convSpec, w, bias []float32, act bool, slope float32, p *Pool, blk, nBlocks, t int) {
	n, b := t/nBlocks, t%nBlocks
	C, H, W := x.Shape[1], x.Shape[2], x.Shape[3]
	OW := y.Shape[3]
	cols := y.Shape[2] * OW
	kdim := spec.inC * spec.kk * spec.kk
	j0 := b * blk
	j1 := j0 + blk
	if j1 > cols {
		j1 = cols
	}
	nc := j1 - j0
	outBase := n * spec.outC * cols
	if spec.kk == 1 && spec.stride == 1 && spec.pad == 0 {
		// 1x1 stride-1 convolution: the im2col panel is the input itself.
		bp := x.Data[n*C*cols+j0:]
		gemmBlock(w, kdim, bias, bp, cols, y.Data[outBase+j0:], cols, spec.outC, kdim, nc)
	} else {
		panel := p.Get(kdim, nc)
		im2colPanel(x.Data[n*C*H*W:(n+1)*C*H*W], C, H, W, spec.kk, spec.stride, spec.pad, OW, j0, j1, panel.Data)
		gemmBlock(w, kdim, bias, panel.Data, nc, y.Data[outBase+j0:], cols, spec.outC, kdim, nc)
		p.Put(panel)
	}
	if act {
		for oc := 0; oc < spec.outC; oc++ {
			row := y.Data[outBase+oc*cols+j0 : outBase+oc*cols+j1]
			for i, v := range row {
				if v < 0 {
					row[i] = slope * v
				}
			}
		}
	}
}

// gemmBlock computes c[m*ldc+j] = bias[m] + sum_k a[m*lda+k]*b[k*ldb+j] for
// m in [0,M), j in [0,nc). The 4x4 register tile keeps sixteen independent
// accumulator chains live per k step; row and column tails fall back to
// narrower tiles with the same k-ascending accumulation order.
func gemmBlock(a []float32, lda int, bias []float32, b []float32, ldb int, c []float32, ldc, M, K, nc int) {
	m := 0
	for ; m+4 <= M; m += 4 {
		a0 := a[(m+0)*lda : (m+0)*lda+K]
		a1 := a[(m+1)*lda : (m+1)*lda+K]
		a2 := a[(m+2)*lda : (m+2)*lda+K]
		a3 := a[(m+3)*lda : (m+3)*lda+K]
		bi0, bi1, bi2, bi3 := bias[m], bias[m+1], bias[m+2], bias[m+3]
		j := 0
		for ; j+4 <= nc; j += 4 {
			c00, c01, c02, c03 := bi0, bi0, bi0, bi0
			c10, c11, c12, c13 := bi1, bi1, bi1, bi1
			c20, c21, c22, c23 := bi2, bi2, bi2, bi2
			c30, c31, c32, c33 := bi3, bi3, bi3, bi3
			off := j
			for k := 0; k < K; k++ {
				b0, b1, b2, b3 := b[off], b[off+1], b[off+2], b[off+3]
				av := a0[k]
				c00 += av * b0
				c01 += av * b1
				c02 += av * b2
				c03 += av * b3
				av = a1[k]
				c10 += av * b0
				c11 += av * b1
				c12 += av * b2
				c13 += av * b3
				av = a2[k]
				c20 += av * b0
				c21 += av * b1
				c22 += av * b2
				c23 += av * b3
				av = a3[k]
				c30 += av * b0
				c31 += av * b1
				c32 += av * b2
				c33 += av * b3
				off += ldb
			}
			r := (m+0)*ldc + j
			c[r], c[r+1], c[r+2], c[r+3] = c00, c01, c02, c03
			r = (m+1)*ldc + j
			c[r], c[r+1], c[r+2], c[r+3] = c10, c11, c12, c13
			r = (m+2)*ldc + j
			c[r], c[r+1], c[r+2], c[r+3] = c20, c21, c22, c23
			r = (m+3)*ldc + j
			c[r], c[r+1], c[r+2], c[r+3] = c30, c31, c32, c33
		}
		for ; j < nc; j++ {
			cc0, cc1, cc2, cc3 := bi0, bi1, bi2, bi3
			off := j
			for k := 0; k < K; k++ {
				bv := b[off]
				cc0 += a0[k] * bv
				cc1 += a1[k] * bv
				cc2 += a2[k] * bv
				cc3 += a3[k] * bv
				off += ldb
			}
			c[(m+0)*ldc+j] = cc0
			c[(m+1)*ldc+j] = cc1
			c[(m+2)*ldc+j] = cc2
			c[(m+3)*ldc+j] = cc3
		}
	}
	for ; m < M; m++ {
		arow := a[m*lda : m*lda+K]
		bi := bias[m]
		j := 0
		for ; j+4 <= nc; j += 4 {
			cc0, cc1, cc2, cc3 := bi, bi, bi, bi
			off := j
			for k := 0; k < K; k++ {
				av := arow[k]
				cc0 += av * b[off]
				cc1 += av * b[off+1]
				cc2 += av * b[off+2]
				cc3 += av * b[off+3]
				off += ldb
			}
			r := m*ldc + j
			c[r], c[r+1], c[r+2], c[r+3] = cc0, cc1, cc2, cc3
		}
		for ; j < nc; j++ {
			acc := bi
			off := j
			for k := 0; k < K; k++ {
				acc += arow[k] * b[off]
				off += ldb
			}
			c[m*ldc+j] = acc
		}
	}
}
