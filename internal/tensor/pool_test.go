package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

func TestPoolGetShapesAndReuse(t *testing.T) {
	p := NewPool()
	a := p.Get(2, 3, 4, 5)
	if len(a.Data) != 120 || len(a.Shape) != 4 || a.Dim(3) != 5 {
		t.Fatalf("Get(2,3,4,5): len=%d shape=%v", len(a.Data), a.Shape)
	}
	p.Put(a)
	// A smaller request from the same power-of-two bucket must reuse the
	// buffer and re-slice it, not allocate afresh. sync.Pool gives no hard
	// guarantee, so loop enough times that steady-state reuse dominates.
	for i := 0; i < 64; i++ {
		b := p.Get(1, 100)
		if len(b.Data) != 100 || b.Shape[0] != 1 || b.Shape[1] != 100 {
			t.Fatalf("iteration %d: len=%d shape=%v", i, len(b.Data), b.Shape)
		}
		p.Put(b)
	}
	gets, news := p.Stats()
	if gets != 65 {
		t.Fatalf("gets = %d, want 65", gets)
	}
	if news > 8 {
		t.Fatalf("pool barely reused buffers: %d fresh allocations in %d gets", news, gets)
	}
}

func TestPoolNilReceiverFallsBack(t *testing.T) {
	var p *Pool
	x := p.Get(2, 2)
	if x == nil || len(x.Data) != 4 {
		t.Fatalf("nil pool Get = %v", x)
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("nil pool must fall back to New, which zeroes")
		}
	}
	p.Put(x) // must not panic
	if gets, news := p.Stats(); gets != 0 || news != 0 {
		t.Fatalf("nil pool stats = %d/%d", gets, news)
	}
}

func TestPoolRefusesGradTensors(t *testing.T) {
	p := NewPool()
	g := NewWithGrad(8)
	p.Put(g) // trainable parameters must never enter the pool
	fresh := p.Get(8)
	if &fresh.Data[0] == &g.Data[0] {
		t.Fatal("pool recycled a gradient-tracking tensor")
	}
}

// TestPoolConcurrentGetPut hammers one pool from many goroutines under
// -race: the serving layer shares a single pool across all inference
// workers.
func TestPoolConcurrentGetPut(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				n := 1 + rng.Intn(300)
				x := p.Get(n)
				for j := range x.Data {
					x.Data[j] = float32(j)
				}
				for j := range x.Data {
					if x.Data[j] != float32(j) {
						t.Errorf("buffer shared between goroutines")
						return
					}
				}
				p.Put(x)
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestInferPooledFallsBackForUnpooledLayers covers the seam every container
// uses: layers without a pooled path still run Forward(x, false).
func TestInferPooledFallsBackForUnpooledLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lin := NewLinear(rng, 4, 2)
	x := New(1, 4)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	want := lin.Forward(x, false)
	got := InferPooled(lin, x, NewPool())
	if !got.SameShape(want) {
		t.Fatalf("shape %v != %v", got.Shape, want.Shape)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d: %v != %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestPooledLayerForwardsBitIdentical: each pooled layer must reproduce its
// Forward(train=false) output exactly, including on a dirty recycled buffer.
func TestPooledLayerForwardsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewPool()
	// Poison the pool with a same-bucket buffer full of garbage so a lazy
	// implementation that skips elements is caught.
	poison := p.Get(2, 6, 8, 8)
	poison.Fill(999)
	p.Put(poison)

	x := New(2, 3, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}

	conv := NewConv2D(rng, 3, 4, 3, 1, 1)
	bn := NewBatchNorm2D(3)
	for c := 0; c < 3; c++ {
		bn.RunMean[c] = rng.Float32()
		bn.RunVar[c] = rng.Float32() + 0.5
	}
	relu := NewLeakyReLU()
	maxp := NewMaxPool2D()

	for _, tc := range []struct {
		name   string
		layer  Layer
		pooled PooledLayer
	}{
		{"conv", conv, conv},
		{"batchnorm", bn, bn},
		{"leakyrelu", relu, relu},
		{"maxpool", maxp, maxp},
	} {
		want := tc.layer.Forward(x, false)
		got := tc.pooled.ForwardPooled(x, p)
		if !got.SameShape(want) {
			t.Fatalf("%s: shape %v != %v", tc.name, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%s: element %d differs: %v != %v", tc.name, i, got.Data[i], want.Data[i])
			}
		}
		p.Put(got)
	}
}
