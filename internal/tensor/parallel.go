package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// minParallelWork is the flop-count floor below which convolution forwards
// stay on the calling goroutine: a 1x1 detection head over a coarse grid
// finishes faster inline than the worker pool can hand it out.
const minParallelWork = 1 << 15

// ParallelWorthwhile reports whether work of the given flop count should go
// through ParallelFor at all. Callers use it to construct the task closure
// only on the parallel branch: a closure literal passed to ParallelFor
// escapes, so building it unconditionally heap-allocates once per forward
// even when the serial loop runs — on a single processor that is the entire
// steady-state allocation of a pooled forward.
func ParallelWorthwhile(flops int) bool {
	return flops >= minParallelWork && runtime.GOMAXPROCS(0) > 1
}

// ParallelFor runs f(i) for every i in [0, n) on a bounded worker pool sized
// by GOMAXPROCS, returning when all tasks finish. Tasks are claimed from an
// atomic counter, so uneven task costs balance across workers. Tasks must be
// independent: f sees each index exactly once but in no defined order and
// possibly concurrently. With a single processor (or a single task) the loop
// runs inline on the caller, so serial configurations pay no overhead.
func ParallelFor(n int, f func(int)) {
	ParallelForCancel(nil, n, f)
}

// Aborted reports whether done is closed, without blocking. A nil done is
// never aborted — it is the happy-path sentinel every cancellation-aware hot
// loop branches on, so uncancellable callers pay a single nil check.
func Aborted(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// ParallelForCancel is ParallelFor with a cooperative cancellation point
// between tasks: once done closes, workers stop claiming new indices and the
// call returns after in-flight tasks finish. Tasks already started are never
// interrupted — the checkpoint granularity is one task, which for the conv
// forwards means one (batch item, output channel) plane. Some indices may
// never run after a cancel, so the caller must treat the output as garbage
// once it observes done closed. A nil done is exactly ParallelFor.
func ParallelForCancel(done <-chan struct{}, n int, f func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if Aborted(done) {
				return
			}
			f(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if Aborted(done) {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
