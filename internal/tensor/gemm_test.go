package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

// directConvRef computes the convolution with the plain nested loop for every
// output plane — the reference the GEMM path must match bit-for-bit.
func directConvRef(x *Tensor, spec convSpec, w, bias []float32) *Tensor {
	N, _, H, W := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	OH := (H+2*spec.pad-spec.kk)/spec.stride + 1
	OW := (W+2*spec.pad-spec.kk)/spec.stride + 1
	y := New(N, spec.outC, OH, OW)
	for n := 0; n < N; n++ {
		for oc := 0; oc < spec.outC; oc++ {
			directConvPlane(x, y, spec, w, bias[oc], n, oc)
		}
	}
	return y
}

// randomConv builds a random input and weight set for a given geometry.
func randomConv(rng *rand.Rand, n, c, h, w, outC, kk, stride, pad int) (*Tensor, convSpec, []float32, []float32) {
	x := New(n, c, h, w)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	spec := convSpec{inC: c, outC: outC, kk: kk, stride: stride, pad: pad}
	wt := make([]float32, outC*c*kk*kk)
	for i := range wt {
		wt[i] = rng.Float32()*2 - 1
	}
	bias := make([]float32, outC)
	for i := range bias {
		bias[i] = rng.Float32()*2 - 1
	}
	return x, spec, wt, bias
}

// TestConvGemmMatchesDirect pins the core bit-exactness claim: the im2col +
// blocked GEMM path produces exactly the float32 bits of the direct nested
// loop across randomized geometry, including 1x1 kernels, stride > 1,
// padding >= k/2, and spatial sizes smaller than the kernel.
func TestConvGemmMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := NewPool()
	type shape struct{ n, c, h, w, outC, kk, stride, pad int }
	cases := []shape{
		{1, 3, 8, 8, 4, 3, 1, 1},
		{2, 3, 160, 96, 10, 3, 2, 1}, // yolite B1 geometry
		{1, 16, 40, 24, 24, 3, 2, 1}, // mid-backbone geometry
		{1, 32, 5, 3, 21, 1, 1, 0},   // 1x1 head on the AGO grid
		{1, 4, 2, 2, 3, 3, 1, 2},     // input smaller than kernel, heavy pad
		{1, 2, 1, 1, 2, 3, 2, 1},     // degenerate 1x1 spatial
		{3, 5, 9, 7, 6, 3, 3, 1},     // stride 3, odd sizes
		{1, 1, 6, 6, 1, 5, 2, 2},     // big kernel, pad = k/2
		{2, 8, 12, 12, 8, 1, 1, 0},   // 1x1 fast path with batch
		{1, 6, 7, 11, 5, 3, 2, 0},    // no padding, non-square
	}
	for i := 0; i < 12; i++ { // and a dozen fully random geometries
		kk := 1 + rng.Intn(3)*2 // 1, 3, 5
		cases = append(cases, shape{
			n: 1 + rng.Intn(3), c: 1 + rng.Intn(8),
			h: 1 + rng.Intn(20), w: 1 + rng.Intn(20),
			outC: 1 + rng.Intn(12), kk: kk,
			stride: 1 + rng.Intn(3), pad: rng.Intn(kk/2 + 2),
		})
	}
	for _, s := range cases {
		if s.h+2*s.pad < s.kk || s.w+2*s.pad < s.kk {
			s.pad = s.kk // keep the output non-empty
		}
		x, spec, wt, bias := randomConv(rng, s.n, s.c, s.h, s.w, s.outC, s.kk, s.stride, s.pad)
		want := directConvRef(x, spec, wt, bias)
		got := New(want.Shape...)
		convGemmInto(x, got, spec, wt, bias, false, 0, p, nil)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shape %+v: element %d differs: gemm %v direct %v", s, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestConvGemmActEpilogue checks the fused leaky-ReLU epilogue equals
// activation applied after the direct convolution.
func TestConvGemmActEpilogue(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, spec, wt, bias := randomConv(rng, 2, 4, 10, 9, 6, 3, 2, 1)
	want := directConvRef(x, spec, wt, bias)
	const slope = 0.1
	for i, v := range want.Data {
		if v < 0 {
			want.Data[i] = slope * v
		}
	}
	got := New(want.Shape...)
	convGemmInto(x, got, spec, wt, bias, true, slope, NewPool(), nil)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d differs with epilogue: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestIm2colPanelBlocks checks the block-wise unpack against a naive
// whole-map gather for awkward block boundaries.
func TestIm2colPanelBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	C, H, W, kk, stride, pad := 3, 7, 5, 3, 2, 1
	OH := (H+2*pad-kk)/stride + 1
	OW := (W+2*pad-kk)/stride + 1
	cols := OH * OW
	kdim := C * kk * kk
	src := make([]float32, C*H*W)
	for i := range src {
		src[i] = rng.Float32()
	}
	naive := make([]float32, kdim*cols)
	for ic := 0; ic < C; ic++ {
		for kh := 0; kh < kk; kh++ {
			for kw := 0; kw < kk; kw++ {
				r := (ic*kk+kh)*kk + kw
				for j := 0; j < cols; j++ {
					ih := (j/OW)*stride - pad + kh
					iw := (j%OW)*stride - pad + kw
					if ih >= 0 && ih < H && iw >= 0 && iw < W {
						naive[r*cols+j] = src[(ic*H+ih)*W+iw]
					}
				}
			}
		}
	}
	for _, blk := range []int{1, 3, 4, OW, OW + 1, cols} {
		for j0 := 0; j0 < cols; j0 += blk {
			j1 := j0 + blk
			if j1 > cols {
				j1 = cols
			}
			nc := j1 - j0
			dst := make([]float32, kdim*nc)
			for i := range dst {
				dst[i] = -99 // poison: every element must be written
			}
			im2colPanel(src, C, H, W, kk, stride, pad, OW, j0, j1, dst)
			for r := 0; r < kdim; r++ {
				for j := j0; j < j1; j++ {
					if dst[r*nc+j-j0] != naive[r*cols+j] {
						t.Fatalf("blk %d: panel[%d][%d] = %v, want %v", blk, r, j, dst[r*nc+j-j0], naive[r*cols+j])
					}
				}
			}
		}
	}
}

// TestFusedConvBNActMatchesUnfused checks the folded one-pass block against
// running conv, batch norm, and leaky-ReLU separately.
func TestFusedConvBNActMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	conv := NewConv2D(rng, 5, 8, 3, 2, 1)
	for i := range conv.W.Data {
		conv.W.Data[i] = rng.Float32()*2 - 1
	}
	for i := range conv.B.Data {
		conv.B.Data[i] = rng.Float32() - 0.5
	}
	bn := NewBatchNorm2D(8)
	for oc := 0; oc < 8; oc++ {
		bn.Gamma.Data[oc] = 0.5 + rng.Float32()
		bn.Beta.Data[oc] = rng.Float32() - 0.5
		bn.RunMean[oc] = rng.Float32() - 0.5
		bn.RunVar[oc] = 0.1 + rng.Float32()
	}
	act := NewLeakyReLU()
	x := New(2, 5, 12, 10)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	want := act.Forward(bn.Forward(conv.Forward(x, false), false), false)
	fused := FuseConvBNAct(conv, bn, act)
	p := NewPool()
	got := fused.ForwardPooled(x, p)
	for i := range want.Data {
		d := got.Data[i] - want.Data[i]
		if d < -1e-4 || d > 1e-4 {
			t.Fatalf("element %d: fused %v unfused %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestFusedConvBNActCancel checks a closed done channel stops the fused
// forward early without corrupting later runs.
func TestFusedConvBNActCancel(t *testing.T) {
	conv := NewConv2D(rand.New(rand.NewSource(1)), 3, 8, 3, 1, 1)
	fused := FuseConvBNAct(conv, NewBatchNorm2D(8), NewLeakyReLU())
	p := NewPool()
	x := New(1, 3, 16, 16)
	done := make(chan struct{})
	close(done)
	y := fused.ForwardCancel(x, p, done)
	p.Put(y)
	// A subsequent uncancelled run must still be complete and correct.
	got := fused.ForwardCancel(x, p, nil)
	want := fused.ForwardPooled(x, NewPool())
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("post-cancel forward differs at %d", i)
		}
	}
}

// TestConvGemmPooledAllocs pins the steady-state allocation count of the
// GEMM convolution at zero: panels and outputs both recycle through the
// pool. Serial path only — the parallel branch builds a closure by design.
func TestConvGemmPooledAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	rng := rand.New(rand.NewSource(5))
	x, spec, wt, bias := randomConv(rng, 1, 8, 20, 20, 8, 3, 1, 1)
	p := NewPool()
	y := New(1, 8, 20, 20)
	convGemmInto(x, y, spec, wt, bias, true, 0.1, p, nil) // warm the pool buckets
	avg := testing.AllocsPerRun(20, func() {
		convGemmInto(x, y, spec, wt, bias, true, 0.1, p, nil)
	})
	if avg != 0 {
		t.Fatalf("pooled GEMM conv allocates %v per op, want 0", avg)
	}
}

func BenchmarkGemm(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	// B2-like layer: 16 -> 24 channels over an 40x24 grid.
	x, spec, wt, bias := randomConv(rng, 1, 16, 40, 24, 24, 3, 2, 1)
	p := NewPool()
	OH := (x.Shape[2]+2*spec.pad-spec.kk)/spec.stride + 1
	OW := (x.Shape[3]+2*spec.pad-spec.kk)/spec.stride + 1
	y := New(1, spec.outC, OH, OW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		convGemmInto(x, y, spec, wt, bias, true, 0.1, p, nil)
	}
}

func BenchmarkConvIm2col(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	C, H, W, kk, stride, pad := 16, 40, 24, 3, 2, 1
	OW := (W+2*pad-kk)/stride + 1
	OH := (H+2*pad-kk)/stride + 1
	cols := OH * OW
	kdim := C * kk * kk
	src := make([]float32, C*H*W)
	for i := range src {
		src[i] = rng.Float32()
	}
	dst := make([]float32, kdim*cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im2colPanel(src, C, H, W, kk, stride, pad, OW, 0, cols, dst)
	}
}
