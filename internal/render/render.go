// Package render implements the software rasteriser that stands in for the
// Android rendering pipeline. Screens, app windows, synthetic-dataset
// screenshots and DARPA's decoration overlays are all drawn onto a Canvas.
//
// The rasteriser supports exactly what the reproduction needs: solid and
// alpha-blended fills, rounded rectangles (Android buttons), strokes
// (decoration boxes), vertical gradients (ad backgrounds), box blur (the
// text-masking experiment of Table IV), and resampling (model input
// preparation).
package render

import (
	"fmt"
	"image"
	"image/color"

	"repro/internal/geom"
)

// Color is a non-premultiplied 8-bit RGBA colour.
type Color struct {
	R, G, B, A uint8
}

// RGB returns a fully opaque colour.
func RGB(r, g, b uint8) Color { return Color{r, g, b, 255} }

// WithAlpha returns c with its alpha replaced.
func (c Color) WithAlpha(a uint8) Color { return Color{c.R, c.G, c.B, a} }

// Luma returns the perceptual luminance of c in [0, 255].
func (c Color) Luma() float64 {
	return 0.299*float64(c.R) + 0.587*float64(c.G) + 0.114*float64(c.B)
}

// Contrast returns the absolute luminance difference between two colours,
// the quantity the AUI generator manipulates to make AGOs pop and UPOs fade.
func Contrast(a, b Color) float64 {
	d := a.Luma() - b.Luma()
	if d < 0 {
		d = -d
	}
	return d
}

// Common UI colours used across the synthetic apps and the decorator.
var (
	White     = RGB(255, 255, 255)
	Black     = RGB(0, 0, 0)
	Red       = RGB(220, 38, 38)
	Green     = RGB(22, 163, 74)
	Yellow    = RGB(250, 204, 21)
	Orange    = RGB(249, 115, 22)
	Blue      = RGB(37, 99, 235)
	Gray      = RGB(156, 163, 175)
	LightGray = RGB(229, 231, 235)
	DarkGray  = RGB(55, 65, 81)
)

// Canvas is a W x H RGBA pixel buffer. Pixel (x, y) occupies
// Pix[4*(y*W+x) : 4*(y*W+x)+4] in R, G, B, A order, alpha non-premultiplied.
type Canvas struct {
	W, H int
	Pix  []uint8
}

// NewCanvas allocates a transparent-black canvas. Width and height must be
// positive.
func NewCanvas(w, h int) *Canvas {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("render: invalid canvas size %dx%d", w, h))
	}
	return &Canvas{W: w, H: h, Pix: make([]uint8, 4*w*h)}
}

// Bounds returns the canvas rectangle anchored at the origin.
func (c *Canvas) Bounds() geom.Rect { return geom.Rect{X: 0, Y: 0, W: c.W, H: c.H} }

// Clone returns a deep copy of the canvas.
func (c *Canvas) Clone() *Canvas {
	out := NewCanvas(c.W, c.H)
	copy(out.Pix, c.Pix)
	return out
}

// Zero overwrites every pixel with transparent black, recycling the buffer.
// DARPA's screenshot "rinse" (Section IV-E of the paper) uses this to discard
// captured pixels immediately after inference.
func (c *Canvas) Zero() {
	for i := range c.Pix {
		c.Pix[i] = 0
	}
}

// At returns the colour of pixel (x, y); out-of-bounds reads return the zero
// Color.
func (c *Canvas) At(x, y int) Color {
	if x < 0 || y < 0 || x >= c.W || y >= c.H {
		return Color{}
	}
	i := 4 * (y*c.W + x)
	return Color{c.Pix[i], c.Pix[i+1], c.Pix[i+2], c.Pix[i+3]}
}

// Set overwrites pixel (x, y) ignoring alpha blending; out-of-bounds writes
// are dropped.
func (c *Canvas) Set(x, y int, col Color) {
	if x < 0 || y < 0 || x >= c.W || y >= c.H {
		return
	}
	i := 4 * (y*c.W + x)
	c.Pix[i], c.Pix[i+1], c.Pix[i+2], c.Pix[i+3] = col.R, col.G, col.B, col.A
}

// Blend composites col over pixel (x, y) using source-over with
// non-premultiplied alpha.
func (c *Canvas) Blend(x, y int, col Color) {
	if x < 0 || y < 0 || x >= c.W || y >= c.H || col.A == 0 {
		return
	}
	if col.A == 255 {
		c.Set(x, y, col)
		return
	}
	i := 4 * (y*c.W + x)
	sa := uint32(col.A)
	da := uint32(c.Pix[i+3])
	outA := sa + da*(255-sa)/255
	if outA == 0 {
		c.Pix[i], c.Pix[i+1], c.Pix[i+2], c.Pix[i+3] = 0, 0, 0, 0
		return
	}
	blend := func(s, d uint8) uint8 {
		v := (uint32(s)*sa + uint32(d)*da*(255-sa)/255) / outA
		return uint8(v)
	}
	c.Pix[i] = blend(col.R, c.Pix[i])
	c.Pix[i+1] = blend(col.G, c.Pix[i+1])
	c.Pix[i+2] = blend(col.B, c.Pix[i+2])
	c.Pix[i+3] = uint8(outA)
}

// Fill paints r with col, alpha-blending when col is translucent.
func (c *Canvas) Fill(r geom.Rect, col Color) {
	r = r.Clamp(c.Bounds())
	if r.Empty() {
		return
	}
	if col.A == 255 {
		for y := r.Y; y < r.MaxY(); y++ {
			i := 4 * (y*c.W + r.X)
			for x := 0; x < r.W; x++ {
				c.Pix[i] = col.R
				c.Pix[i+1] = col.G
				c.Pix[i+2] = col.B
				c.Pix[i+3] = 255
				i += 4
			}
		}
		return
	}
	for y := r.Y; y < r.MaxY(); y++ {
		for x := r.X; x < r.MaxX(); x++ {
			c.Blend(x, y, col)
		}
	}
}

// FillRounded paints r with col, rounding corners with radius rad (clamped to
// half the smaller side). Rounded rectangles are the dominant button shape in
// the synthetic AUI dataset, matching real Android material buttons.
func (c *Canvas) FillRounded(r geom.Rect, rad int, col Color) {
	if r.Empty() {
		return
	}
	maxRad := min(r.W, r.H) / 2
	if rad > maxRad {
		rad = maxRad
	}
	if rad <= 0 {
		c.Fill(r, col)
		return
	}
	r2 := rad * rad
	for y := r.Y; y < r.MaxY(); y++ {
		for x := r.X; x < r.MaxX(); x++ {
			dx, dy := 0, 0
			if x < r.X+rad {
				dx = r.X + rad - 1 - x
			} else if x >= r.MaxX()-rad {
				dx = x - (r.MaxX() - rad)
			}
			if y < r.Y+rad {
				dy = r.Y + rad - 1 - y
			} else if y >= r.MaxY()-rad {
				dy = y - (r.MaxY() - rad)
			}
			if dx*dx+dy*dy <= r2 {
				c.Blend(x, y, col)
			}
		}
	}
}

// Stroke draws the outline of r with the given line width, used by the
// decoration views DARPA places around detected AUI options.
func (c *Canvas) Stroke(r geom.Rect, width int, col Color) {
	if r.Empty() || width <= 0 {
		return
	}
	top := geom.Rect{X: r.X, Y: r.Y, W: r.W, H: width}
	bottom := geom.Rect{X: r.X, Y: r.MaxY() - width, W: r.W, H: width}
	left := geom.Rect{X: r.X, Y: r.Y + width, W: width, H: r.H - 2*width}
	right := geom.Rect{X: r.MaxX() - width, Y: r.Y + width, W: width, H: r.H - 2*width}
	c.Fill(top, col)
	c.Fill(bottom, col)
	c.Fill(left, col)
	c.Fill(right, col)
}

// VGradient fills r with a vertical gradient from top to bottom, the
// background style of most synthetic advertisement AUIs.
func (c *Canvas) VGradient(r geom.Rect, top, bottom Color) {
	r = r.Clamp(c.Bounds())
	if r.Empty() {
		return
	}
	for y := r.Y; y < r.MaxY(); y++ {
		t := 0.0
		if r.H > 1 {
			t = float64(y-r.Y) / float64(r.H-1)
		}
		col := Color{
			R: lerp8(top.R, bottom.R, t),
			G: lerp8(top.G, bottom.G, t),
			B: lerp8(top.B, bottom.B, t),
			A: lerp8(top.A, bottom.A, t),
		}
		c.Fill(geom.Rect{X: r.X, Y: y, W: r.W, H: 1}, col)
	}
}

// FillCircle paints a filled disc centred at (cx, cy).
func (c *Canvas) FillCircle(cx, cy, rad int, col Color) {
	if rad <= 0 {
		return
	}
	r2 := rad * rad
	for y := cy - rad; y <= cy+rad; y++ {
		for x := cx - rad; x <= cx+rad; x++ {
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= r2 {
				c.Blend(x, y, col)
			}
		}
	}
}

// DrawCross draws an "X" glyph inside r with the given line thickness — the
// archetypal close button of a UPO.
func (c *Canvas) DrawCross(r geom.Rect, thick int, col Color) {
	if r.Empty() {
		return
	}
	if thick < 1 {
		thick = 1
	}
	n := min(r.W, r.H)
	for i := 0; i < n; i++ {
		for t := 0; t < thick; t++ {
			c.Blend(r.X+i, r.Y+i+t, col)
			c.Blend(r.X+i, r.MaxY()-1-i+t, col)
		}
	}
}

// Draw composites src onto c with its top-left corner at (x, y), blending by
// source alpha. Used to composite app windows and overlays into a screen.
func (c *Canvas) Draw(src *Canvas, x, y int) {
	for sy := 0; sy < src.H; sy++ {
		dy := y + sy
		if dy < 0 || dy >= c.H {
			continue
		}
		for sx := 0; sx < src.W; sx++ {
			dx := x + sx
			if dx < 0 || dx >= c.W {
				continue
			}
			i := 4 * (sy*src.W + sx)
			c.Blend(dx, dy, Color{src.Pix[i], src.Pix[i+1], src.Pix[i+2], src.Pix[i+3]})
		}
	}
}

// SubImage returns a copy of the pixels inside r (clamped to the canvas).
func (c *Canvas) SubImage(r geom.Rect) *Canvas {
	r = r.Clamp(c.Bounds())
	if r.Empty() {
		return NewCanvas(1, 1)
	}
	out := NewCanvas(r.W, r.H)
	for y := 0; y < r.H; y++ {
		si := 4 * ((r.Y+y)*c.W + r.X)
		di := 4 * (y * r.W)
		copy(out.Pix[di:di+4*r.W], c.Pix[si:si+4*r.W])
	}
	return out
}

// BoxBlur applies n passes of a 3x3 box blur to the pixels inside r. The
// text-masking experiment (Table IV) blurs button labels with it.
func (c *Canvas) BoxBlur(r geom.Rect, passes int) {
	r = r.Clamp(c.Bounds())
	if r.Empty() || passes <= 0 {
		return
	}
	tmp := make([]uint8, 4*r.W*r.H)
	for p := 0; p < passes; p++ {
		for y := 0; y < r.H; y++ {
			for x := 0; x < r.W; x++ {
				var sr, sg, sb, sa, n uint32
				for dy := -1; dy <= 1; dy++ {
					yy := y + dy
					if yy < 0 || yy >= r.H {
						continue
					}
					for dx := -1; dx <= 1; dx++ {
						xx := x + dx
						if xx < 0 || xx >= r.W {
							continue
						}
						i := 4 * ((r.Y+yy)*c.W + r.X + xx)
						sr += uint32(c.Pix[i])
						sg += uint32(c.Pix[i+1])
						sb += uint32(c.Pix[i+2])
						sa += uint32(c.Pix[i+3])
						n++
					}
				}
				o := 4 * (y*r.W + x)
				tmp[o] = uint8(sr / n)
				tmp[o+1] = uint8(sg / n)
				tmp[o+2] = uint8(sb / n)
				tmp[o+3] = uint8(sa / n)
			}
		}
		for y := 0; y < r.H; y++ {
			di := 4 * ((r.Y+y)*c.W + r.X)
			si := 4 * (y * r.W)
			copy(c.Pix[di:di+4*r.W], tmp[si:si+4*r.W])
		}
	}
}

// Resize returns the canvas resampled to w x h with bilinear interpolation.
// It prepares screenshots for the detector's fixed input resolution.
func (c *Canvas) Resize(w, h int) *Canvas {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("render: invalid resize target %dx%d", w, h))
	}
	out := NewCanvas(w, h)
	xRatio := float64(c.W) / float64(w)
	yRatio := float64(c.H) / float64(h)
	for y := 0; y < h; y++ {
		sy := (float64(y)+0.5)*yRatio - 0.5
		y0 := int(sy)
		if y0 < 0 {
			y0 = 0
		}
		y1 := y0 + 1
		if y1 >= c.H {
			y1 = c.H - 1
		}
		fy := sy - float64(y0)
		if fy < 0 {
			fy = 0
		}
		for x := 0; x < w; x++ {
			sx := (float64(x)+0.5)*xRatio - 0.5
			x0 := int(sx)
			if x0 < 0 {
				x0 = 0
			}
			x1 := x0 + 1
			if x1 >= c.W {
				x1 = c.W - 1
			}
			fx := sx - float64(x0)
			if fx < 0 {
				fx = 0
			}
			di := 4 * (y*w + x)
			for ch := 0; ch < 4; ch++ {
				p00 := float64(c.Pix[4*(y0*c.W+x0)+ch])
				p01 := float64(c.Pix[4*(y0*c.W+x1)+ch])
				p10 := float64(c.Pix[4*(y1*c.W+x0)+ch])
				p11 := float64(c.Pix[4*(y1*c.W+x1)+ch])
				v := p00*(1-fx)*(1-fy) + p01*fx*(1-fy) + p10*(1-fx)*fy + p11*fx*fy
				out.Pix[di+ch] = uint8(v + 0.5)
			}
		}
	}
	return out
}

// Downsample2x returns the canvas reduced by exactly 2:1, averaging each
// 2x2 block. For even-aligned UI geometry this is a lossless-feeling
// reduction: edges stay crisp and full contrast, unlike general bilinear
// resampling. The dataset pipeline uses it for its exact 2:1
// screen-to-model-input ratio.
func (c *Canvas) Downsample2x() *Canvas {
	w, h := c.W/2, c.H/2
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := NewCanvas(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i00 := 4 * ((2*y)*c.W + 2*x)
			i01 := i00 + 4
			i10 := i00 + 4*c.W
			i11 := i10 + 4
			o := 4 * (y*w + x)
			for ch := 0; ch < 4; ch++ {
				sum := uint32(c.Pix[i00+ch]) + uint32(c.Pix[i01+ch]) +
					uint32(c.Pix[i10+ch]) + uint32(c.Pix[i11+ch])
				out.Pix[o+ch] = uint8((sum + 2) / 4)
			}
		}
	}
	return out
}

// Downscale reduces the canvas to (w, h) with proper area filtering: exact
// 2:1 box-filter passes while the ratio allows, then bilinear for the
// remainder. Plain bilinear at ratios beyond 2:1 skips source pixels
// (aliasing thin UI strokes away); every consumer that feeds the detector
// must use this instead.
func (c *Canvas) Downscale(w, h int) *Canvas {
	for c.W >= 2*w && c.H >= 2*h && c.W%2 == 0 && c.H%2 == 0 {
		c = c.Downsample2x()
	}
	if c.W != w || c.H != h {
		c = c.Resize(w, h)
	}
	return c
}

// Image converts the canvas to a standard library image for encoding.
func (c *Canvas) Image() *image.NRGBA {
	img := image.NewNRGBA(image.Rect(0, 0, c.W, c.H))
	copy(img.Pix, c.Pix)
	return img
}

// FromImage builds a canvas from any image.Image.
func FromImage(img image.Image) *Canvas {
	b := img.Bounds()
	c := NewCanvas(b.Dx(), b.Dy())
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			r, g, bb, a := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			c.Set(x, y, Color{uint8(r >> 8), uint8(g >> 8), uint8(bb >> 8), uint8(a >> 8)})
		}
	}
	return c
}

var _ color.Color = rgbaAdapter{} // compile-time shape check for the adapter below

// rgbaAdapter lets a render.Color satisfy image/color.Color where needed.
type rgbaAdapter struct{ c Color }

func (a rgbaAdapter) RGBA() (r, g, b, al uint32) {
	return color.NRGBA{R: a.c.R, G: a.c.G, B: a.c.B, A: a.c.A}.RGBA()
}

func lerp8(a, b uint8, t float64) uint8 {
	return uint8(float64(a) + (float64(b)-float64(a))*t + 0.5)
}
