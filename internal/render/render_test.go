package render

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestFillOpaque(t *testing.T) {
	c := NewCanvas(10, 10)
	c.Fill(geom.Rect{X: 2, Y: 3, W: 4, H: 5}, Red)
	if got := c.At(2, 3); got != Red {
		t.Fatalf("inside pixel = %v", got)
	}
	if got := c.At(5, 7); got != Red {
		t.Fatalf("bottom-right inside pixel = %v", got)
	}
	if got := c.At(6, 3); got != (Color{}) {
		t.Fatalf("outside pixel = %v, want transparent", got)
	}
	if got := c.At(1, 3); got != (Color{}) {
		t.Fatalf("left-outside pixel = %v, want transparent", got)
	}
}

func TestFillClampsToCanvas(t *testing.T) {
	c := NewCanvas(4, 4)
	c.Fill(geom.Rect{X: -10, Y: -10, W: 100, H: 100}, Blue)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if c.At(x, y) != Blue {
				t.Fatalf("pixel (%d,%d) = %v", x, y, c.At(x, y))
			}
		}
	}
}

func TestBlendTranslucent(t *testing.T) {
	c := NewCanvas(1, 1)
	c.Set(0, 0, White)
	c.Blend(0, 0, Black.WithAlpha(128))
	got := c.At(0, 0)
	// 50% black over white ~ mid gray.
	if got.R < 120 || got.R > 135 || got.R != got.G || got.G != got.B {
		t.Fatalf("blend result = %v, want mid gray", got)
	}
	if got.A != 255 {
		t.Fatalf("alpha = %d, want 255", got.A)
	}
}

func TestBlendZeroAlphaNoop(t *testing.T) {
	c := NewCanvas(1, 1)
	c.Set(0, 0, Green)
	c.Blend(0, 0, Red.WithAlpha(0))
	if c.At(0, 0) != Green {
		t.Fatalf("zero-alpha blend changed pixel to %v", c.At(0, 0))
	}
}

func TestOutOfBoundsAccess(t *testing.T) {
	c := NewCanvas(2, 2)
	c.Set(-1, 0, Red)
	c.Set(0, 5, Red)
	c.Blend(9, 9, Red)
	if got := c.At(-1, -1); got != (Color{}) {
		t.Fatalf("OOB read = %v", got)
	}
}

func TestStroke(t *testing.T) {
	c := NewCanvas(20, 20)
	r := geom.Rect{X: 5, Y: 5, W: 10, H: 10}
	c.Stroke(r, 2, Green)
	if c.At(5, 5) != Green || c.At(14, 14) != Green {
		t.Fatal("stroke corners not painted")
	}
	if c.At(10, 10) != (Color{}) {
		t.Fatal("stroke filled the interior")
	}
	if c.At(4, 4) != (Color{}) {
		t.Fatal("stroke painted outside the rect")
	}
}

func TestFillRoundedCorners(t *testing.T) {
	c := NewCanvas(40, 40)
	r := geom.Rect{X: 0, Y: 0, W: 40, H: 40}
	c.FillRounded(r, 10, Blue)
	if c.At(0, 0) != (Color{}) {
		t.Fatal("rounded rect painted its sharp corner")
	}
	if c.At(20, 20) != Blue {
		t.Fatal("rounded rect centre not painted")
	}
	if c.At(20, 0) != Blue {
		t.Fatal("rounded rect top edge midpoint not painted")
	}
}

func TestFillRoundedZeroRadiusEqualsFill(t *testing.T) {
	a, b := NewCanvas(10, 10), NewCanvas(10, 10)
	r := geom.Rect{X: 1, Y: 1, W: 8, H: 8}
	a.FillRounded(r, 0, Red)
	b.Fill(r, Red)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("radius-0 rounded fill differs from plain fill")
		}
	}
}

func TestVGradient(t *testing.T) {
	c := NewCanvas(4, 10)
	c.VGradient(c.Bounds(), White, Black)
	top, bottom := c.At(0, 0), c.At(0, 9)
	if top != White || bottom != Black {
		t.Fatalf("gradient ends: top=%v bottom=%v", top, bottom)
	}
	mid := c.At(0, 5)
	if mid.R < 90 || mid.R > 160 {
		t.Fatalf("gradient midpoint = %v", mid)
	}
}

func TestDrawComposites(t *testing.T) {
	dst := NewCanvas(10, 10)
	dst.Fill(dst.Bounds(), White)
	src := NewCanvas(4, 4)
	src.Fill(src.Bounds(), Red)
	dst.Draw(src, 3, 3)
	if dst.At(3, 3) != Red || dst.At(6, 6) != Red {
		t.Fatal("draw did not composite src")
	}
	if dst.At(2, 2) != White || dst.At(7, 7) != White {
		t.Fatal("draw painted outside src bounds")
	}
}

func TestDrawRespectsAlpha(t *testing.T) {
	dst := NewCanvas(2, 2)
	dst.Fill(dst.Bounds(), White)
	src := NewCanvas(2, 2) // fully transparent
	dst.Draw(src, 0, 0)
	if dst.At(0, 0) != White {
		t.Fatal("transparent draw overwrote destination")
	}
}

func TestSubImage(t *testing.T) {
	c := NewCanvas(10, 10)
	c.Fill(geom.Rect{X: 2, Y: 2, W: 3, H: 3}, Orange)
	sub := c.SubImage(geom.Rect{X: 2, Y: 2, W: 3, H: 3})
	if sub.W != 3 || sub.H != 3 {
		t.Fatalf("sub size = %dx%d", sub.W, sub.H)
	}
	if sub.At(0, 0) != Orange || sub.At(2, 2) != Orange {
		t.Fatal("sub pixels wrong")
	}
	// Mutating the sub image must not affect the parent.
	sub.Fill(sub.Bounds(), Black)
	if c.At(2, 2) != Orange {
		t.Fatal("SubImage aliases parent pixels")
	}
}

func TestBoxBlurSmoothsEdge(t *testing.T) {
	c := NewCanvas(10, 10)
	c.Fill(geom.Rect{X: 0, Y: 0, W: 5, H: 10}, White)
	c.Fill(geom.Rect{X: 5, Y: 0, W: 5, H: 10}, Black)
	c.BoxBlur(c.Bounds(), 2)
	edge := c.At(5, 5)
	if edge.R == 0 || edge.R == 255 {
		t.Fatalf("blur left hard edge: %v", edge)
	}
}

func TestBoxBlurPreservesFlatRegion(t *testing.T) {
	c := NewCanvas(8, 8)
	c.Fill(c.Bounds(), Blue)
	c.BoxBlur(c.Bounds(), 3)
	if got := c.At(4, 4); got != Blue {
		t.Fatalf("blur changed flat region: %v", got)
	}
}

func TestResizePreservesFlatColour(t *testing.T) {
	c := NewCanvas(20, 30)
	c.Fill(c.Bounds(), Green)
	small := c.Resize(7, 11)
	if small.W != 7 || small.H != 11 {
		t.Fatalf("resize dims = %dx%d", small.W, small.H)
	}
	for y := 0; y < small.H; y++ {
		for x := 0; x < small.W; x++ {
			if small.At(x, y) != Green {
				t.Fatalf("resized pixel (%d,%d) = %v", x, y, small.At(x, y))
			}
		}
	}
}

func TestResizeDownThenContrastSurvives(t *testing.T) {
	c := NewCanvas(64, 64)
	c.Fill(c.Bounds(), White)
	c.Fill(geom.Rect{X: 16, Y: 16, W: 32, H: 32}, Black)
	small := c.Resize(16, 16)
	centre, corner := small.At(8, 8), small.At(1, 1)
	if centre.Luma() > 60 {
		t.Fatalf("centre luma = %v, want dark", centre.Luma())
	}
	if corner.Luma() < 200 {
		t.Fatalf("corner luma = %v, want bright", corner.Luma())
	}
}

func TestDrawCross(t *testing.T) {
	c := NewCanvas(12, 12)
	c.DrawCross(geom.Rect{X: 2, Y: 2, W: 8, H: 8}, 1, DarkGray)
	if c.At(2, 2) != DarkGray {
		t.Fatal("cross missing top-left diagonal")
	}
	if c.At(2, 9) != DarkGray {
		t.Fatal("cross missing bottom-left diagonal")
	}
}

func TestCircle(t *testing.T) {
	c := NewCanvas(21, 21)
	c.FillCircle(10, 10, 5, Red)
	if c.At(10, 10) != Red {
		t.Fatal("circle centre not painted")
	}
	if c.At(10, 4) == (Color{}) && c.At(10, 5) == (Color{}) {
		t.Fatal("circle top not painted")
	}
	if c.At(0, 0) != (Color{}) {
		t.Fatal("circle painted far corner")
	}
}

func TestZero(t *testing.T) {
	c := NewCanvas(4, 4)
	c.Fill(c.Bounds(), Red)
	c.Zero()
	for _, p := range c.Pix {
		if p != 0 {
			t.Fatal("Zero left non-zero bytes")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewCanvas(3, 3)
	a.Fill(a.Bounds(), Blue)
	b := a.Clone()
	b.Fill(b.Bounds(), Red)
	if a.At(1, 1) != Blue {
		t.Fatal("clone aliases parent")
	}
}

func TestImageRoundTrip(t *testing.T) {
	c := NewCanvas(5, 5)
	c.Fill(geom.Rect{X: 1, Y: 1, W: 2, H: 2}, Orange)
	back := FromImage(c.Image())
	for i := range c.Pix {
		if c.Pix[i] != back.Pix[i] {
			t.Fatal("image round trip lost pixels")
		}
	}
}

func TestContrastAndLuma(t *testing.T) {
	if Contrast(White, Black) < 250 {
		t.Fatalf("white/black contrast = %v", Contrast(White, Black))
	}
	if Contrast(Red, Red) != 0 {
		t.Fatal("self contrast should be 0")
	}
	if White.Luma() <= Gray.Luma() || Gray.Luma() <= Black.Luma() {
		t.Fatal("luma ordering broken")
	}
}

// Property: blending any colour over any base keeps channels in range and is
// a no-op at alpha 0.
func TestPropertyBlendInRange(t *testing.T) {
	prop := func(br, bg, bb, sr, sg, sb, sa uint8) bool {
		c := NewCanvas(1, 1)
		c.Set(0, 0, Color{br, bg, bb, 255})
		c.Blend(0, 0, Color{sr, sg, sb, sa})
		got := c.At(0, 0)
		if sa == 0 {
			return got == Color{br, bg, bb, 255}
		}
		lo := func(s, d uint8) bool {
			minv, maxv := s, d
			if minv > maxv {
				minv, maxv = maxv, minv
			}
			return got.A == 255
		}
		return lo(sr, br) && got.A == 255
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNewCanvasInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCanvas(0,5) did not panic")
		}
	}()
	NewCanvas(0, 5)
}

func BenchmarkFill(b *testing.B) {
	c := NewCanvas(360, 640)
	r := c.Bounds()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Fill(r, White)
	}
}

func BenchmarkResizeScreenshotToModelInput(b *testing.B) {
	c := NewCanvas(360, 640)
	c.VGradient(c.Bounds(), White, Blue)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Resize(96, 160)
	}
}

func TestDownsample2xAverages(t *testing.T) {
	c := NewCanvas(4, 4)
	c.Fill(geom.Rect{X: 0, Y: 0, W: 2, H: 2}, White)
	// Other three quadrants stay transparent black.
	d := c.Downsample2x()
	if d.W != 2 || d.H != 2 {
		t.Fatalf("downsampled size %dx%d", d.W, d.H)
	}
	if got := d.At(0, 0); got.R != 255 || got.A != 255 {
		t.Fatalf("white quadrant averaged to %v", got)
	}
	if got := d.At(1, 1); got != (Color{}) {
		t.Fatalf("black quadrant averaged to %v", got)
	}
}

func TestDownsample2xPreservesEvenAlignedEdge(t *testing.T) {
	c := NewCanvas(20, 20)
	c.Fill(c.Bounds(), White)
	c.Fill(geom.Rect{X: 4, Y: 4, W: 8, H: 8}, Black) // even-aligned square
	d := c.Downsample2x()
	// The square maps exactly to (2,2)+4x4 with full contrast.
	if d.At(2, 2) != Black || d.At(5, 5) != Black {
		t.Fatal("even-aligned square lost its body")
	}
	if d.At(1, 1) != White || d.At(6, 6) != White {
		t.Fatal("even-aligned square bled outside")
	}
}

func TestDownscale4to1KeepsThinStrokes(t *testing.T) {
	// A 4px-wide stroke at device resolution must survive 4:1 reduction —
	// this is the aliasing bug plain bilinear had.
	c := NewCanvas(64, 64)
	c.Fill(c.Bounds(), White)
	c.Fill(geom.Rect{X: 30, Y: 0, W: 4, H: 64}, Black)
	d := c.Downscale(16, 16)
	found := false
	for x := 0; x < 16; x++ {
		if d.At(x, 8).Luma() < 160 {
			found = true
		}
	}
	if !found {
		t.Fatal("4px stroke vanished after 4:1 downscale")
	}
}

func TestDownscaleOddRatioFallsBack(t *testing.T) {
	c := NewCanvas(30, 50)
	c.Fill(c.Bounds(), Blue)
	d := c.Downscale(7, 11)
	if d.W != 7 || d.H != 11 {
		t.Fatalf("downscaled to %dx%d", d.W, d.H)
	}
	if d.At(3, 5) != Blue {
		t.Fatalf("flat colour lost: %v", d.At(3, 5))
	}
}
