package fleet

import (
	"time"

	"repro/internal/a11y"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/sim"
	"repro/internal/uikit"
)

// HandsetConfig assembles one fully simulated device. Zero values take the
// darpa-sim defaults: a 384x640 screen and a 2s Monkey.
type HandsetConfig struct {
	// Seed drives the handset's clock (and through it the Monkey and the
	// app's popup schedule).
	Seed int64
	// ScreenW/ScreenH set the display resolution; zero means 384x640.
	ScreenW, ScreenH int
	// App configures the simulated foreground app (package name, AUI
	// cadence, obfuscation).
	App app.Config
	// MonkeyPeriod is the random-tap interval; zero means 2s.
	MonkeyPeriod time.Duration
	// Service configures the DARPA accessibility service started by Start.
	Service core.Config
}

// Handset is one complete simulated device: virtual clock, screen,
// accessibility manager, a foreground app popping AUIs, a Monkey tapping at
// it, and the DARPA service watching through the a11y layer. It is the
// single-device counterpart to the event-driven fleet — experiments and
// darpa-sim's classic mode both run exactly this assembly, so their
// construction order (and with it their replay behaviour) can never drift
// apart again.
//
// Construction is two-phase: NewHandset wires the passive pieces (clock,
// screen, manager) so callers can point detector build contexts at the
// screen; Start then launches the active ones against a detector.
type Handset struct {
	Clock   *sim.Clock
	Screen  *uikit.Screen
	Mgr     *a11y.Manager
	App     *app.App
	Monkey  *app.Monkey
	Service *core.Service

	cfg HandsetConfig
}

// NewHandset builds the passive half of a device: clock, screen and
// accessibility manager. Nothing is scheduled yet.
func NewHandset(cfg HandsetConfig) *Handset {
	if cfg.ScreenW <= 0 {
		cfg.ScreenW = 384
	}
	if cfg.ScreenH <= 0 {
		cfg.ScreenH = 640
	}
	if cfg.MonkeyPeriod <= 0 {
		cfg.MonkeyPeriod = 2 * time.Second
	}
	clock := sim.NewClock(cfg.Seed)
	screen := uikit.NewScreen(cfg.ScreenW, cfg.ScreenH)
	return &Handset{
		Clock:  clock,
		Screen: screen,
		Mgr:    a11y.NewManager(clock, screen),
		cfg:    cfg,
	}
}

// Start launches the app, the Monkey and the DARPA service (in that order,
// matching the pre-extraction callers) and returns the service so callers
// can attach OnAnalysis hooks before any virtual time passes.
func (h *Handset) Start(det detect.Detector) *core.Service {
	h.App = app.Launch(h.Clock, h.Mgr, h.cfg.App)
	h.Monkey = app.StartMonkey(h.Clock, h.Mgr, "monkey", h.cfg.MonkeyPeriod)
	h.Service = core.Start(h.Clock, h.Mgr, det, h.cfg.Service)
	return h.Service
}

// Run advances the handset's virtual clock to the given elapsed time.
func (h *Handset) Run(d time.Duration) { h.Clock.RunUntil(d) }

// Stop tears the active pieces down in the order every caller used: Monkey
// first (no new taps), then the service, then the app.
func (h *Handset) Stop() {
	if h.Monkey != nil {
		h.Monkey.Stop()
	}
	if h.Service != nil {
		h.Service.Stop()
	}
	if h.App != nil {
		h.App.Stop()
	}
}
