package fleet

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// stubDetector flags every screen as a UPO — deterministic, instant, and
// batch-free, so the tests exercise the event loop and serving plumbing
// rather than the model.
type stubDetector struct{}

func (stubDetector) Name() string { return "stub" }

func (stubDetector) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	return []metrics.Detection{{Class: dataset.ClassUPO, Score: 0.99}}
}

// smallConfig is a fleet sized for a unit test: enough devices and virtual
// time to exercise debounce, supersede, popups and bypass, small enough to
// run in well under a second.
func smallConfig(seed int64) Config {
	return Config{
		Devices:  150,
		Duration: 30 * time.Second,
		Seed:     seed,
		Bypass:   true,
		Library:  4,
		Workers:  8,
		MaxBatch: 8,
	}
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg, []detect.Detector{stubDetector{}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// deterministic extracts the replay-stable slice of a Result: everything the
// virtual clock alone decides. Wall time, throughput and serve-internal
// watermarks are excluded by construction.
func deterministic(r *Result) [9]int {
	return [9]int{r.Events, r.Debounced, r.Analyses, r.Superseded, r.Flagged,
		r.Popups, r.Bypassed, r.RateLimited, r.Shed}
}

// TestReplayDeterminism pins satellite 1: same seed, same knobs → identical
// totals, bit for bit, however the worker goroutines interleaved; a different
// seed must produce a different run.
func TestReplayDeterminism(t *testing.T) {
	a := run(t, smallConfig(7))
	b := run(t, smallConfig(7))
	if deterministic(a) != deterministic(b) {
		t.Fatalf("same seed diverged:\n  a=%v\n  b=%v", deterministic(a), deterministic(b))
	}
	c := run(t, smallConfig(8))
	if deterministic(a) == deterministic(c) {
		t.Fatalf("different seeds replayed identically: %v", deterministic(a))
	}
	// The run must have actually exercised the machinery it claims to replay.
	if a.Events == 0 || a.Debounced == 0 || a.Analyses == 0 || a.Popups == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
	if a.RateLimited != 0 || a.Shed != 0 {
		t.Fatalf("admission interfered with an unlimited run: %+v", a)
	}
}

// TestChaosReplayStability extends the satellite-1 contract to fault
// injection: a seeded chaos plan perturbs only completion *outcomes* (which
// worker carried which batch is real-scheduling noise, so the
// completed/degraded split may shift between runs), never the virtual-time
// simulation — with bypass off, the clock-driven totals and the
// completion-conservation sum must replay identically for the same fleet
// and chaos seeds.
func TestChaosReplayStability(t *testing.T) {
	mk := func() Config {
		cfg := smallConfig(19)
		cfg.Bypass = false
		// Fresh plan per run: a Plan carries call counters, so reuse would
		// hand run B a different fault sequence by construction.
		cfg.Plan = faults.NewPlan(99, faults.Rule{Stage: "backend", Kind: faults.Error, Rate: 0.3})
		return cfg
	}
	a := run(t, mk())
	b := run(t, mk())
	if a.Degraded == 0 || b.Degraded == 0 {
		t.Fatalf("chaos plan injected nothing: a=%+v b=%+v", a, b)
	}
	simA := [4]int{a.Events, a.Debounced, a.Popups, a.Superseded}
	simB := [4]int{b.Events, b.Debounced, b.Popups, b.Superseded}
	if simA != simB {
		t.Fatalf("virtual-time totals diverged under chaos:\n  a=%v\n  b=%v", simA, simB)
	}
	ca := a.Analyses + a.Degraded + a.RateLimited + a.Shed
	cb := b.Analyses + b.Degraded + b.RateLimited + b.Shed
	if ca != cb {
		t.Fatalf("completion conservation diverged under chaos: %d vs %d", ca, cb)
	}
}

// TestSupersedeUnderChurn: burst churn arriving faster than the modeled
// analysis latency must invalidate in-flight cycles, exactly as
// core.Service does on-device.
func TestSupersedeUnderChurn(t *testing.T) {
	cfg := smallConfig(3)
	cfg.EventsPerMinute = 240 // storm: bursts every ~1.25s against 15-35ms analyses
	res := run(t, cfg)
	if res.Superseded == 0 {
		t.Fatalf("storm produced no superseded analyses: %+v", res)
	}
	if res.Debounced == 0 {
		t.Fatalf("storm produced no debounced events: %+v", res)
	}
}

// TestSpikeShapeAddsTraffic: the flash-crowd shape runs 5x rate over 10% of
// the run, so it must deliver measurably more events than steady at the same
// seed — and stay deterministic.
func TestSpikeShapeAddsTraffic(t *testing.T) {
	steady := run(t, smallConfig(11))
	spiky := smallConfig(11)
	spiky.Shape = ShapeSpike
	a := run(t, spiky)
	b := run(t, spiky)
	if deterministic(a) != deterministic(b) {
		t.Fatalf("shaped run diverged:\n  a=%v\n  b=%v", deterministic(a), deterministic(b))
	}
	if a.Events <= steady.Events {
		t.Fatalf("spike (%d events) did not exceed steady (%d events)", a.Events, steady.Events)
	}
}

// TestBypassDismissesPopups: with the stub flagging every screen, any popup
// analysed while showing must be auto-bypassed; with Bypass off none are.
func TestBypassDismissesPopups(t *testing.T) {
	withBypass := run(t, smallConfig(5))
	if withBypass.Bypassed == 0 {
		t.Fatalf("bypass enabled but no popups dismissed: %+v", withBypass)
	}
	if withBypass.Bypassed > withBypass.Popups {
		t.Fatalf("bypassed %d > shown %d", withBypass.Bypassed, withBypass.Popups)
	}
	off := smallConfig(5)
	off.Bypass = false
	if res := run(t, off); res.Bypassed != 0 {
		t.Fatalf("bypass disabled but %d popups dismissed", res.Bypassed)
	}
}

// TestResultFamilies: the ledger renders as valid Prometheus text with the
// key fleet series present, and the serve/timings families ride along.
func TestResultFamilies(t *testing.T) {
	res := run(t, smallConfig(13))
	text := metrics.TextString(res.Families())
	if n, err := metrics.ValidateText(strings.NewReader(text)); err != nil || n == 0 {
		t.Fatalf("families invalid (n=%d): %v\n%s", n, err, text)
	}
	for _, want := range []string{
		"darpa_fleet_devices 150",
		"darpa_fleet_sim_seconds 30",
		`darpa_fleet_events_total{kind="seen"}`,
		`darpa_fleet_analyses_total{outcome="completed"}`,
		`darpa_fleet_popups_total{kind="shown"}`,
		`darpa_cache_requests_total{outcome="hit"}`,
		`darpa_admission_requests_total{verdict="admitted"}`,
		"darpa_stage_latency_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing series %q in exposition:\n%s", want, text)
		}
	}
	if res.CacheHits == 0 {
		t.Fatalf("library of 8 screens over %d analyses produced no cache hits", res.Analyses)
	}
}

// TestServedMatchesAnalyses: with admission wide open, every completed
// analysis was served by the stack — the serve ledger and the fleet ledger
// agree.
func TestServedMatchesAnalyses(t *testing.T) {
	res := run(t, smallConfig(17))
	if res.Serve.Admitted == 0 {
		t.Fatal("no requests admitted")
	}
	// Superseded cycles also transit the stack (their cancel may land before
	// or after service), so Admitted covers at least the completed analyses.
	if res.Serve.Admitted < res.Analyses {
		t.Fatalf("admitted %d < completed analyses %d", res.Serve.Admitted, res.Analyses)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Duration: time.Second}, []detect.Detector{stubDetector{}}); err == nil {
		t.Error("Devices=0 accepted")
	}
	if _, err := Run(Config{Devices: 1}, []detect.Detector{stubDetector{}}); err == nil {
		t.Error("Duration=0 accepted")
	}
	if _, err := Run(Config{Devices: 1, Duration: time.Second}, nil); err == nil {
		t.Error("no replicas accepted")
	}
	bad := Config{Devices: 1, Duration: time.Second, Shape: "sawtooth"}
	if _, err := Run(bad, []detect.Detector{stubDetector{}}); err == nil {
		t.Error("unknown shape accepted")
	}
}

// TestDeviceRNGStreamsIndependent: adjacent devices' generators must not be
// correlated shifts of each other (the bug a naive seed+i construction has).
func TestDeviceRNGStreamsIndependent(t *testing.T) {
	a, b := deviceRNG(42, 0), deviceRNG(42, 1)
	matches := 0
	for i := 0; i < 64; i++ {
		if a.Intn(1000) == b.Intn(1000) {
			matches++
		}
	}
	if matches > 8 {
		t.Fatalf("adjacent device streams agree on %d/64 draws", matches)
	}
}
