// Package fleet is the event-driven fleet simulator: one sim.Clock, 100k+
// simulated devices, and a shared serving stack. The thread-per-device model
// it replaces spent a goroutine pipeline (clock, screen, renderer, app,
// monkey, service) on every device and topped out around tens of devices;
// here a device is ~100 bytes of state whose a11y-event arrivals, debounce
// timers, AUI dwell times and analysis completions are heap events on one
// virtual clock. Real goroutines are spent only where real work happens: a
// bounded worker pool carries each analysis through the serve stack
// (admission → scheduler → replicas, with per-replica result caches), and the
// event loop throttles on those results, so virtual time can never outrun the
// hardware.
//
// Determinism: every simulation decision draws from a per-device splitmix64
// stream seeded from the run seed, and all counters mutate on the clock's
// single goroutine in virtual-time order — two runs with the same seed and
// knobs produce identical totals (the replay test pins this). The only
// nondeterministic counters are the admission verdicts under -tenant-rate /
// -shed-depth, whose token buckets and queue depths read the wall clock.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/quant"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/yolite"
)

// Defaults for Config fields left zero.
const (
	DefaultEventsPerMinute = 32 // the paper's Taobao storm rate
	DefaultMeanAUIInterval = 15 * time.Second
	DefaultCutoff          = 200 * time.Millisecond
	DefaultLibrary         = 48
	DefaultMaxBatch        = 64
	DefaultMaxDelay        = 200 * time.Microsecond

	// burstLen mirrors the app package: events-per-minute arrive as periodic
	// bursts of ~burstLen events, the pattern ct-debouncing exploits.
	burstLen = 5
	// dwellMin/Max bound AUI popup exposure, as in app.Config.
	dwellMin = 800 * time.Millisecond
	dwellMax = 6 * time.Second
)

// Config parameterises one fleet run.
type Config struct {
	// Devices is the fleet size. Required, >= 1.
	Devices int
	// Duration is the simulated run length. Required, > 0.
	Duration time.Duration
	// Seed drives every per-device RNG and the screen library; equal seeds
	// (with equal knobs) replay identically.
	Seed int64
	// EventsPerMinute is each device's background a11y-event rate before
	// shaping. Zero means 32.
	EventsPerMinute float64
	// MeanAUIInterval is the mean time between AUI popups per device. Zero
	// means 15s.
	MeanAUIInterval time.Duration
	// Cutoff is the debounce quiet period ct. Zero means 200ms.
	Cutoff time.Duration
	// Shape names the traffic shape: steady (default), diurnal, spike.
	Shape string
	// Bypass auto-dismisses a device's popup when an analysis of it flags a
	// UPO — the fleet-scale analogue of core's auto-bypass click.
	Bypass bool
	// Tenants spreads devices round-robin across this many tenant
	// identities; tenant0 is live-priority, the rest batch. Zero means 1.
	Tenants int
	// TenantRate is the per-tenant admission rate limit in requests/sec
	// (0 = unlimited). Wall-clock based, so it trades determinism for realism.
	TenantRate float64
	// ShedDepth sheds requests once the scheduler queues hold this many
	// (0 = never shed).
	ShedDepth int
	// Library is how many unique screens per class the fleet draws from.
	// Zero means 48.
	Library int
	// Workers bounds the goroutines carrying real inference requests. Zero
	// means 2x MaxBatch, enough concurrency to fill batches.
	Workers int
	// MaxBatch / MaxDelay tune the shared scheduler. Zero means 64 / 200µs —
	// unlike interactive serving, fleet throughput wants full batches and a
	// short straggler wait.
	MaxBatch int
	MaxDelay time.Duration
	// ConfThresh is the detector threshold; zero means yolite's default.
	ConfThresh float64
	// Plan, when non-nil, injects faults at each replica backend; result
	// caches are dropped (a corrupted result must not be memoised) and failed
	// analyses count as degraded.
	Plan *faults.Plan
	// Timings receives per-stage latencies; nil allocates a private recorder
	// (exposed on Result.Timings either way).
	Timings *perfmodel.Timings
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() error {
	if c.Devices < 1 {
		return errors.New("fleet: Config.Devices must be >= 1")
	}
	if c.Duration <= 0 {
		return errors.New("fleet: Config.Duration must be positive")
	}
	if c.EventsPerMinute <= 0 {
		c.EventsPerMinute = DefaultEventsPerMinute
	}
	if c.MeanAUIInterval <= 0 {
		c.MeanAUIInterval = DefaultMeanAUIInterval
	}
	if c.Cutoff <= 0 {
		c.Cutoff = DefaultCutoff
	}
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	if c.Library <= 0 {
		c.Library = DefaultLibrary
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = DefaultMaxDelay
	}
	if c.Workers <= 0 {
		c.Workers = 2 * c.MaxBatch
	}
	if c.ConfThresh == 0 {
		c.ConfThresh = yolite.DefaultConfThresh
	}
	if c.Timings == nil {
		c.Timings = &perfmodel.Timings{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// Result is one run's ledger. The simulation totals (Events through
// Bypassed) are deterministic per seed; the serving-layer numbers reflect
// real concurrent execution.
type Result struct {
	Devices  int
	Duration time.Duration
	Seed     int64
	Shape    string
	Wall     time.Duration // real time the run took

	// Simulation totals, in virtual-time order.
	Events     int // a11y events seen across the fleet
	Debounced  int // events that reset a pending ct timer
	Analyses   int // analysis cycles that completed
	Superseded int // in-flight analyses invalidated by a fresh event
	Flagged    int // completed analyses that detected >= 1 option
	Popups     int // AUI popups shown
	Bypassed   int // popups dismissed by fleet-level auto-bypass

	// Completion-side serving outcomes.
	RateLimited int // analyses answered with serve.ErrRateLimited
	Shed        int // analyses answered with serve.ErrOverloaded
	Degraded    int // analyses whose detector failed outright

	// Serving-stack snapshot and cache totals.
	Serve       serve.Stats
	CacheHits   int
	CacheMisses int

	Timings *perfmodel.Timings
}

// analysis is one in-flight detection cycle: submitted to the worker pool at
// its (virtual) start, reaped by a completion event at start + modeled
// latency, which blocks on done until the real work has finished.
type analysis struct {
	dev        *device
	superseded bool
	cancel     context.CancelFunc
	done       chan jobResult
}

type jobResult struct {
	dets []metrics.Detection
	err  error
}

// device is one simulated handset: ~100 bytes, no goroutine.
type device struct {
	rng      rng
	tenant   int32
	popup    bool
	popupGen uint32 // invalidates stale dwell-dismiss events
	debounce *sim.Event
	cur      *analysis
}

// job carries one analysis into the worker pool.
type job struct {
	ctx context.Context
	x   *tensor.Tensor
	an  *analysis
}

// runner holds one run's live state. Everything except the worker pool runs
// on the clock goroutine.
type runner struct {
	cfg     Config
	clock   *sim.Clock
	shape   shapeFunc
	period  time.Duration // base burst interval
	lib     *library
	devices []device

	backend   detect.Predictor // the shared Batcher
	tenantCtx []context.Context
	submit    chan job
	wg        sync.WaitGroup

	stopped bool
	res     Result
}

// Run simulates cfg.Devices devices for cfg.Duration on one virtual clock,
// serving every analysis through a shared serving stack built over models
// (independent replicas, see detect.BuildReplicas). It returns the run
// ledger; the serving stack is torn down before it returns.
func Run(cfg Config, models []detect.Detector) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if len(models) == 0 {
		return nil, errors.New("fleet: Run requires at least one model replica")
	}
	shape, err := shapeFor(cfg.Shape)
	if err != nil {
		return nil, err
	}

	cfg.Logf("fleet: rendering screen library (%d screens/class)...", cfg.Library)
	lib := buildLibrary(cfg.Seed, cfg.Library)

	batcher, caches := buildStack(cfg, models)
	r := &runner{
		cfg:     cfg,
		clock:   sim.NewClock(cfg.Seed),
		shape:   shape,
		period:  time.Duration(float64(time.Minute) / cfg.EventsPerMinute * burstLen),
		lib:     lib,
		devices: make([]device, cfg.Devices),
		backend: batcher,
		submit:  make(chan job, 4*cfg.Workers),
	}
	r.res = Result{Devices: cfg.Devices, Duration: cfg.Duration, Seed: cfg.Seed, Shape: cfg.Shape, Timings: cfg.Timings}

	// One prebuilt context per tenant: their Done() is nil, so an analysis
	// context derives with a single allocation and the tenant tag rides the
	// same channel in-process callers use.
	r.tenantCtx = make([]context.Context, cfg.Tenants)
	for t := range r.tenantCtx {
		r.tenantCtx[t] = serve.WithTenant(context.Background(), serve.TenantInfo{
			ID:       serve.TenantID(fmt.Sprintf("tenant%d", t)),
			Priority: tenantPriority(t),
		})
	}

	for w := 0; w < cfg.Workers; w++ {
		r.wg.Add(1)
		go r.worker()
	}

	// Seed each device's schedule: bursts start at a uniform phase offset (no
	// thundering herd at t=0) and the first AUI popup at its exponential draw.
	for i := range r.devices {
		d := &r.devices[i]
		d.rng = deviceRNG(cfg.Seed, i)
		d.tenant = int32(i % cfg.Tenants)
		phase := time.Duration(d.rng.Float64() * float64(r.period))
		r.clock.Schedule(phase, func() { r.burst(d) })
		r.scheduleAUI(d)
	}

	cfg.Logf("fleet: %d devices x %v on one clock (%s traffic)...", cfg.Devices, cfg.Duration, shapeName(cfg.Shape))
	start := time.Now()
	r.clock.RunUntil(cfg.Duration)

	// End of run: stop generating load, then drain the queue so every
	// completion event reaps its in-flight job — no worker may be left
	// blocked on a result nobody collects.
	r.stopped = true
	r.clock.Drain(2*r.clock.Pending() + 16)
	close(r.submit)
	r.wg.Wait()
	batcher.Close()
	r.res.Wall = time.Since(start)

	for _, c := range caches {
		r.res.CacheHits += c.Hits()
		r.res.CacheMisses += c.Misses()
		c.PublishStats(cfg.Timings)
	}
	r.res.Serve = batcher.Stats()
	return &r.res, nil
}

func tenantPriority(t int) serve.Priority {
	if t > 0 {
		return serve.PriorityBatch
	}
	return serve.PriorityLive
}

func shapeName(s string) string {
	if s == "" {
		return ShapeSteady
	}
	return s
}

// buildStack assembles the shared serving stack exactly as the retired
// thread-per-device fleet did: per-replica activation pools, per-replica
// result caches (dropped under chaos so an injected corruption is never
// memoised), a tenant admission table, and the batcher over it all.
func buildStack(cfg Config, models []detect.Detector) (*serve.Batcher, []*detect.Cache) {
	var caches []*detect.Cache
	backends := make([]detect.Predictor, 0, len(models))
	for _, model := range models {
		switch m := model.(type) {
		case *yolite.Model:
			m.SetPool(tensor.NewPool())
		case *quant.Model:
			m.SetPool(tensor.NewPool())
		}
		var inner detect.Predictor = model
		if cfg.Plan != nil {
			inner = faults.WrapStage(model, cfg.Plan, "backend")
		} else {
			// The working set is the screen library, so capacity scales with
			// it — not with the device count, which would balloon the cache
			// for identical contents.
			c := detect.WithResultCache(model, 4*cfg.Library)
			caches = append(caches, c)
			inner = c
		}
		backends = append(backends, inner)
	}
	tenantTable := make(map[serve.TenantID]serve.TenantConfig, cfg.Tenants)
	for t := 0; t < cfg.Tenants; t++ {
		tenantTable[serve.TenantID(fmt.Sprintf("tenant%d", t))] = serve.TenantConfig{
			Rate:     cfg.TenantRate,
			Priority: tenantPriority(t),
		}
	}
	batcher := serve.NewReplicated(serve.Options{
		MaxBatch:      cfg.MaxBatch,
		MaxDelay:      cfg.MaxDelay,
		Timings:       cfg.Timings,
		Tenants:       tenantTable,
		MaxQueueDepth: cfg.ShedDepth,
	}, backends...)
	return batcher, caches
}

// worker carries analyses through the serving stack. Workers block inside the
// batcher (that is what forms batches); the event loop blocks on their
// results at completion events, closing the throttle loop between virtual
// time and real compute.
func (r *runner) worker() {
	defer r.wg.Done()
	for j := range r.submit {
		dets, err := detect.Predict(j.ctx, r.backend, j.x, 0, r.cfg.ConfThresh)
		j.an.done <- jobResult{dets: dets, err: err}
	}
}

// burst emits one churn burst for d — 3..7 events spaced ~100-160ms apart,
// mirroring app.churnBurst — then schedules the next burst at the
// shape-adjusted interval.
func (r *runner) burst(d *device) {
	if r.stopped {
		return
	}
	n := 3 + d.rng.Intn(5)
	for i := 0; i < n; i++ {
		gap := time.Duration(100+d.rng.Intn(60)) * time.Millisecond
		r.clock.Schedule(time.Duration(i)*gap, func() { r.onEvent(d) })
	}
	mult := r.shape(r.clock.Now(), r.cfg.Duration)
	if mult < 0.05 {
		mult = 0.05
	}
	r.clock.Schedule(time.Duration(float64(r.period)/mult), func() { r.burst(d) })
}

// onEvent is one a11y event landing on d's DARPA service, with core.Service
// semantics: re-arm the ct timer, supersede any in-flight analysis (the
// screen just changed under the detector).
func (r *runner) onEvent(d *device) {
	if r.stopped {
		return
	}
	r.res.Events++
	if d.debounce != nil && !d.debounce.Cancelled() {
		d.debounce.Cancel()
		r.res.Debounced++
	}
	if d.cur != nil && !d.cur.superseded {
		d.cur.superseded = true
		d.cur.cancel() // prunes the request wherever it is in the stack
	}
	d.debounce = r.clock.Schedule(r.cfg.Cutoff, func() { r.analyze(d) })
}

// analyze starts one detection cycle: pick the device's current screen from
// the library, hand the real inference to the worker pool, and schedule the
// completion event at now + the modeled on-device latency (capture +
// preprocess + a ~20ms forward, per the paper's Table VII budget).
func (r *runner) analyze(d *device) {
	d.debounce = nil
	if r.stopped {
		return
	}
	var x *tensor.Tensor
	if d.popup {
		x = r.lib.aui[d.rng.Intn(len(r.lib.aui))]
	} else {
		x = r.lib.neg[d.rng.Intn(len(r.lib.neg))]
	}
	modeled := 15*time.Millisecond + time.Duration(d.rng.Intn(20))*time.Millisecond
	ctx, cancel := context.WithCancel(r.tenantCtx[d.tenant])
	an := &analysis{dev: d, cancel: cancel, done: make(chan jobResult, 1)}
	d.cur = an
	r.cfg.Timings.Observe("fleet-modeled-analysis", modeled)
	r.submit <- job{ctx: ctx, x: x, an: an}
	r.clock.Schedule(modeled, func() { r.complete(an) })
}

// complete reaps one analysis when its modeled latency elapses, blocking
// until the real result is in. Superseded cycles count as such whatever the
// stack answered — core.Service never surfaces a cancelled cycle's result
// either — which keeps the totals deterministic even though the cancel races
// the forward.
func (r *runner) complete(an *analysis) {
	res := <-an.done
	an.cancel()
	d := an.dev
	if d.cur == an {
		d.cur = nil
	}
	if an.superseded {
		r.res.Superseded++
		return
	}
	if res.err != nil {
		switch {
		case errors.Is(res.err, serve.ErrRateLimited):
			r.res.RateLimited++
		case errors.Is(res.err, serve.ErrOverloaded):
			r.res.Shed++
		default:
			r.res.Degraded++
		}
		return
	}
	r.res.Analyses++
	if len(res.dets) == 0 {
		return
	}
	r.res.Flagged++
	if r.cfg.Bypass && d.popup && hasUPO(res.dets) {
		r.dismissAUI(d, d.popupGen, true)
	}
}

func hasUPO(dets []metrics.Detection) bool {
	for _, det := range dets {
		if det.Class == dataset.ClassUPO {
			return true
		}
	}
	return false
}

// scheduleAUI arms d's next popup at an exponential interval, as
// app.scheduleNextAUI does.
func (r *runner) scheduleAUI(d *device) {
	if r.stopped {
		return
	}
	delay := time.Duration(d.rng.ExpFloat64() * float64(r.cfg.MeanAUIInterval))
	if delay < 500*time.Millisecond {
		delay = 500 * time.Millisecond
	}
	r.clock.Schedule(delay, func() { r.showAUI(d) })
}

// showAUI pops an asymmetric dark UI on d: two window events (windows
// changed + state changed, as app.ShowAUI emits), then a dwell-bounded
// self-dismiss unless auto-bypass gets there first.
func (r *runner) showAUI(d *device) {
	if r.stopped || d.popup {
		return
	}
	d.popup = true
	d.popupGen++
	gen := d.popupGen
	r.res.Popups++
	r.onEvent(d)
	r.onEvent(d)
	dwell := dwellMin + time.Duration(d.rng.Int63n(int64(dwellMax-dwellMin)+1))
	r.clock.Schedule(dwell, func() { r.dismissAUI(d, gen, false) })
}

// dismissAUI closes d's popup if gen still names it (a stale dwell event
// after a bypass is a no-op), emits the windows-changed event, and schedules
// the next popup.
func (r *runner) dismissAUI(d *device, gen uint32, byBypass bool) {
	if !d.popup || d.popupGen != gen {
		return
	}
	d.popup = false
	if byBypass {
		r.res.Bypassed++
	}
	r.onEvent(d)
	if !r.stopped {
		r.scheduleAUI(d)
	}
}
