package fleet

import "math"

// rng is a splitmix64 generator: 8 bytes of state per device instead of the
// ~5 KB a math/rand.Rand carries. At 100k+ devices that difference is half a
// gigabyte, which is why the fleet does not reuse sim.Clock's shared source —
// and per-device state is also what makes a run exactly replayable: every
// device draws only from its own stream, so no interleaving of devices (or
// future refactor of who draws first) can perturb another device's sequence.
type rng struct{ s uint64 }

// golden is the splitmix64 increment (2^64 / phi).
const golden = 0x9E3779B97F4A7C15

// deviceRNG derives device i's generator from the run seed. The seed is
// diffused through one splitmix round before the stream index lands on it, so
// adjacent devices do not start in adjacent state.
func deviceRNG(seed int64, i int) rng {
	r := rng{s: mix64(uint64(seed))}
	r.s += uint64(i+1) * golden
	return r
}

// mix64 is the splitmix64 output function.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 advances the stream.
func (r *rng) Uint64() uint64 {
	r.s += golden
	return mix64(r.s)
}

// Intn returns a value in [0, n). n must be positive. The tiny modulo bias
// (< 2^-50 for the small n the simulator draws) is irrelevant for traffic
// shaping and costs no rejection loop.
func (r *rng) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Int63n is Intn for 64-bit ranges.
func (r *rng) Int63n(n int64) int64 {
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *rng) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *rng) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}
