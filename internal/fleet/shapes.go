package fleet

import (
	"fmt"
	"math"
	"time"
)

// A shapeFunc maps a point in the run to a traffic-rate multiplier: device
// burst intervals are divided by it, so 1.0 is the paper's steady Taobao
// storm, >1 is denser traffic, <1 sparser. Shapes are pure functions of
// virtual time — no state, no randomness — so they cannot perturb replay.
type shapeFunc func(t, total time.Duration) float64

// Traffic shape names accepted by Config.Shape.
const (
	ShapeSteady  = "steady"
	ShapeDiurnal = "diurnal"
	ShapeSpike   = "spike"
)

// shapeFor resolves a shape by name; empty means steady.
func shapeFor(name string) (shapeFunc, error) {
	switch name {
	case "", ShapeSteady:
		// The paper's measured workload: ~32 events/min, all run long.
		return func(time.Duration, time.Duration) float64 { return 1 }, nil
	case ShapeDiurnal:
		// One compressed day: quiet at the start and end of the run, peak in
		// the middle. Multiplier sweeps 0.4 → 1.6 → 0.4 on a cosine, so the
		// mean rate over the whole run stays ~1x while the scheduler sees a
		// 4x swing between trough and peak.
		return func(t, total time.Duration) float64 {
			if total <= 0 {
				return 1
			}
			phase := 2 * math.Pi * float64(t) / float64(total)
			return 1 - 0.6*math.Cos(phase)
		}, nil
	case ShapeSpike:
		// Flash crowd: steady background, then a 5x surge over the 40%-50%
		// window of the run — the burst an audit farm sees when a store-wide
		// scan kicks off mid-day.
		return func(t, total time.Duration) float64 {
			if total <= 0 {
				return 1
			}
			frac := float64(t) / float64(total)
			if frac >= 0.40 && frac < 0.50 {
				return 5
			}
			return 1
		}, nil
	}
	return nil, fmt.Errorf("fleet: unknown traffic shape %q (want %s, %s or %s)",
		name, ShapeSteady, ShapeDiurnal, ShapeSpike)
}
