package fleet

import (
	"repro/internal/auigen"
	"repro/internal/tensor"
	"repro/internal/yolite"
)

// library is the fleet's shared screen pool: K unique AUI screens and K
// unique benign screens, pre-rendered to model-input tensors once at startup.
// Devices pick from it per analysis with their own RNG, so 100k devices
// generate realistic request *traffic* (every request still rides admission,
// the scheduler, a replica's result cache and — on a miss — a real forward)
// without paying 100k renders per virtual second. The per-replica result
// caches then see a realistic working set: at most 2K distinct tensors, the
// same dedup a production fleet's repeated screens exhibit.
type library struct {
	aui []*tensor.Tensor // screens showing an asymmetric dark UI
	neg []*tensor.Tensor // benign screens
}

// buildLibrary renders the pool. n bounds each class; seed keeps the pool —
// and with it every cache interaction — deterministic per run seed.
func buildLibrary(seed int64, n int) *library {
	lib := &library{
		aui: make([]*tensor.Tensor, 0, n),
		neg: make([]*tensor.Tensor, 0, n),
	}
	for _, s := range auigen.BuildAUISamples(seed, n, auigen.DatasetConfig{}) {
		lib.aui = append(lib.aui, yolite.CanvasToTensor(s.Input))
	}
	for _, s := range auigen.BuildNegativeSamples(seed+1, n, auigen.DatasetConfig{}) {
		lib.neg = append(lib.neg, yolite.CanvasToTensor(s.Input))
	}
	return lib
}
