package fleet

import (
	"repro/internal/metrics"
)

// Families renders the run ledger as metric families: the fleet's own
// counters first, then the serving stack's and the latency recorder's, so one
// WriteText/WriteJSON call captures the whole run — this is what darpa-sim
// dumps per run and what BENCH_fleet.json records per sweep point.
func (r *Result) Families() []metrics.Family {
	secs := r.Duration.Seconds()
	rps := 0.0
	if r.Wall > 0 {
		rps = float64(r.Analyses) / r.Wall.Seconds()
	}
	fams := []metrics.Family{
		metrics.Gauge("darpa_fleet_devices",
			"Simulated devices in the run.", metrics.V(float64(r.Devices))),
		metrics.Gauge("darpa_fleet_sim_seconds",
			"Simulated (virtual) run length.", metrics.V(secs)),
		metrics.Gauge("darpa_fleet_wall_seconds",
			"Real time the run took.", metrics.V(r.Wall.Seconds())),
		metrics.Counter("darpa_fleet_events_total",
			"Accessibility events across the fleet by fate.",
			metrics.L(float64(r.Events), "kind", "seen"),
			metrics.L(float64(r.Debounced), "kind", "debounced")),
		metrics.Counter("darpa_fleet_analyses_total",
			"Analysis cycles by outcome.",
			metrics.L(float64(r.Analyses), "outcome", "completed"),
			metrics.L(float64(r.Superseded), "outcome", "superseded"),
			metrics.L(float64(r.RateLimited), "outcome", "rate_limited"),
			metrics.L(float64(r.Shed), "outcome", "shed"),
			metrics.L(float64(r.Degraded), "outcome", "degraded")),
		metrics.Counter("darpa_fleet_aui_flagged_total",
			"Completed analyses that detected at least one AUI option.",
			metrics.V(float64(r.Flagged))),
		metrics.Counter("darpa_fleet_popups_total",
			"AUI popups by fate.",
			metrics.L(float64(r.Popups), "kind", "shown"),
			metrics.L(float64(r.Bypassed), "kind", "bypassed")),
		metrics.Gauge("darpa_fleet_throughput_rps",
			"Completed analyses per wall-clock second.", metrics.V(rps)),
	}
	if r.CacheHits+r.CacheMisses > 0 {
		rate := float64(r.CacheHits) / float64(r.CacheHits+r.CacheMisses)
		fams = append(fams,
			metrics.Counter("darpa_cache_requests_total",
				"Result-cache lookups across all replica caches.",
				metrics.L(float64(r.CacheHits), "outcome", "hit"),
				metrics.L(float64(r.CacheMisses), "outcome", "miss")),
			metrics.Gauge("darpa_cache_hit_rate",
				"Fraction of lookups answered from a result cache.",
				metrics.V(rate)))
	}
	fams = append(fams, r.Serve.Families()...)
	if r.Timings != nil {
		fams = append(fams, r.Timings.Families()...)
	}
	return fams
}
