package detect

// The ensemble vote: the adversarial-robustness counterpart of the fallback
// chain. A fallback chain trusts the first healthy backend — exactly what an
// evasion attack exploits, because fooling the primary fools the stack. The
// vote instead runs every healthy backend on every screen and emits only
// detections that a quorum of *distinct* backends localised to the same box,
// so an attack has to fool backends with different failure modes (pixel CNN,
// region-proposal CNN, metadata heuristics) at once.
//
// The resilience contract matches the chain's: per-backend attempts are
// recovered and validated, a corrupt or panicking backend just loses its
// vote (and is outvoted by the rest), BreakAfter consecutive failures open
// its breaker for Cooldown calls with a half-open probe after, and context
// cancellation propagates without being charged to anyone's health. The
// breaker mutex is never held across an inference call, so one slow or
// deadlocked backend cannot wedge the vote accounting.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// VoteOptions tune WithMajorityVote. The zero value requires a majority of
// responding backends to agree at IoU >= 0.3, breaks a backend after 5
// consecutive failures for 32 calls, and uses default validation.
type VoteOptions struct {
	// Quorum is the number of distinct backends that must support a
	// detection. <= 0 means a majority of the backends that responded to
	// the call; the quorum never exceeds the responder count, so a vote
	// degrades to a passthrough when only one backend is healthy instead
	// of failing closed.
	Quorum int
	// IoU is the overlap at which two backends' same-class detections
	// count as the same object; <= 0 means 0.3 (loose, because backends
	// localise with different box conventions).
	IoU float64
	// BreakAfter is the consecutive-failure count that opens a backend's
	// breaker; <= 0 means 5.
	BreakAfter int
	// Cooldown is how many ensemble calls an open breaker sits out before
	// a half-open probe; <= 0 means 32.
	Cooldown int
	// Validate accepts a backend result; rejected results count as backend
	// failures (ErrCorruptResult). Nil means ValidDetections.
	Validate func([]metrics.Detection) bool
	// Timings, when non-nil, counts outvoted candidates under
	// "detect-vote-outvoted" and breaker trips under "detect-breaker-open".
	Timings *perfmodel.Timings
}

func (o VoteOptions) iou() float64 {
	if o.IoU <= 0 {
		return 0.3
	}
	return o.IoU
}

func (o VoteOptions) breakAfter() int {
	if o.BreakAfter <= 0 {
		return 5
	}
	return o.BreakAfter
}

func (o VoteOptions) cooldown() int {
	if o.Cooldown <= 0 {
		return 32
	}
	return o.Cooldown
}

func (o VoteOptions) validate() func([]metrics.Detection) bool {
	if o.Validate == nil {
		return ValidDetections
	}
	return o.Validate
}

// quorum resolves the required supporter count for a call that responders
// backends answered.
func (o VoteOptions) quorum(responders int) int {
	q := o.Quorum
	if q <= 0 {
		q = responders/2 + 1
	}
	if q > responders {
		q = responders
	}
	if q < 1 {
		q = 1
	}
	return q
}

// VoteStats snapshots ensemble activity.
type VoteStats struct {
	// Calls counts inference calls into the ensemble.
	Calls int
	// Emitted counts detections that reached quorum.
	Emitted int
	// Outvoted counts candidate detections dropped for lack of quorum —
	// including corrupt backends' inventions outvoted by the rest.
	Outvoted int
	// AllFailed counts calls no backend could serve.
	AllFailed int
	// Backends holds each member's health, in constructor order.
	Backends []BackendHealth
}

// Ensemble runs every healthy backend and majority-votes the detections.
// Safe for concurrent use.
type Ensemble struct {
	backends []Detector
	opts     VoteOptions

	mu     sync.Mutex
	health []health
	stats  VoteStats
}

// WithMajorityVote builds the vote over the given backends. It panics when
// given no backends.
func WithMajorityVote(opts VoteOptions, backends ...Detector) *Ensemble {
	if len(backends) == 0 {
		panic("detect: WithMajorityVote requires at least one backend")
	}
	return &Ensemble{
		backends: backends,
		opts:     opts,
		health:   make([]health, len(backends)),
	}
}

// Name lists the members, e.g. "vote(yolite+rcnn+frauddroid)".
func (e *Ensemble) Name() string {
	names := make([]string, len(e.backends))
	for i, b := range e.backends {
		names[i] = b.Name()
	}
	return "vote(" + strings.Join(names, "+") + ")"
}

// Stats returns a snapshot of vote activity and per-backend health.
func (e *Ensemble) Stats() VoteStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.Backends = make([]BackendHealth, len(e.backends))
	for i, h := range e.health {
		st.Backends[i] = BackendHealth{
			Name:        e.backends[i].Name(),
			Uses:        h.uses,
			Successes:   h.succ,
			Failures:    h.fail,
			Consecutive: h.consec,
			Open:        h.open,
			Tripped:     h.tripped,
		}
	}
	return st
}

// admit mirrors FallbackChain.admit: an open breaker counts the call toward
// its cooldown and admits a half-open probe once the cooldown is spent.
func (e *Ensemble) admit(i int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := &e.health[i]
	if !h.open {
		return true
	}
	if h.cooldown > 0 {
		h.cooldown--
		return false
	}
	return true
}

// noteOutcome drives backend i's breaker state machine.
func (e *Ensemble) noteOutcome(i int, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := &e.health[i]
	h.uses++
	if ok {
		h.succ++
		h.consec = 0
		h.open = false
		return
	}
	h.fail++
	h.consec++
	if h.open {
		h.cooldown = e.opts.cooldown()
		return
	}
	if h.consec >= e.opts.breakAfter() {
		h.open = true
		h.cooldown = e.opts.cooldown()
		h.tripped++
		e.opts.Timings.AddItems("detect-breaker-open", 1)
	}
}

func (e *Ensemble) noteCall() {
	e.mu.Lock()
	e.stats.Calls++
	e.mu.Unlock()
}

func (e *Ensemble) noteVotes(emitted, outvoted int) {
	e.mu.Lock()
	e.stats.Emitted += emitted
	e.stats.Outvoted += outvoted
	e.mu.Unlock()
	if outvoted > 0 {
		e.opts.Timings.AddItems("detect-vote-outvoted", outvoted)
	}
}

func (e *Ensemble) noteAllFailed() {
	e.mu.Lock()
	e.stats.AllFailed++
	e.mu.Unlock()
}

// try runs one recovered, validated attempt on backend i. The mutex is not
// held here: inference runs lock-free, outcomes are recorded after.
func (e *Ensemble) try(ctx context.Context, i int, x *tensor.Tensor, n int, conf float64) (dets []metrics.Detection, err error) {
	defer func() {
		if p := recover(); p != nil {
			dets, err = nil, &PanicError{Value: p}
		}
	}()
	dets, err = Predict(ctx, e.backends[i], x, n, conf)
	if err == nil && !e.opts.validate()(dets) {
		return nil, ErrCorruptResult
	}
	return dets, err
}

// tryBatch is try for the batch seam.
func (e *Ensemble) tryBatch(ctx context.Context, i int, x *tensor.Tensor, conf float64) (out [][]metrics.Detection, err error) {
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, &PanicError{Value: p}
		}
	}()
	out, err = PredictBatchCtx(ctx, e.backends[i], x, conf)
	if err == nil && !validBatch(out, e.opts.validate()) {
		return nil, ErrCorruptResult
	}
	return out, err
}

// ballot is one backend's detection in a vote.
type ballot struct {
	det     metrics.Detection
	backend int
	used    bool
}

// vote clusters the responding backends' detections and emits one detection
// per cluster that a quorum of distinct backends supports. Candidates are
// visited best-score-first with deterministic tie-breaking; an emitted
// cluster consumes every overlapping same-class ballot, a rejected candidate
// consumes only itself (its supporters may still anchor their own cluster).
// Returns the emitted detections and the outvoted-candidate count.
func (e *Ensemble) vote(lists map[int][]metrics.Detection) ([]metrics.Detection, int) {
	q := e.opts.quorum(len(lists))
	iou := e.opts.iou()
	var ballots []ballot
	for backend, dets := range lists {
		for _, d := range dets {
			ballots = append(ballots, ballot{det: d, backend: backend})
		}
	}
	sort.Slice(ballots, func(a, b int) bool {
		x, y := ballots[a], ballots[b]
		if x.det.Score != y.det.Score {
			return x.det.Score > y.det.Score
		}
		if x.backend != y.backend {
			return x.backend < y.backend
		}
		if x.det.B.X != y.det.B.X {
			return x.det.B.X < y.det.B.X
		}
		if x.det.B.Y != y.det.B.Y {
			return x.det.B.Y < y.det.B.Y
		}
		return x.det.Class < y.det.Class
	})

	var out []metrics.Detection
	outvoted := 0
	for i := range ballots {
		if ballots[i].used {
			continue
		}
		cand := &ballots[i]
		supporters := map[int]bool{cand.backend: true}
		var cluster []int
		for j := range ballots {
			if j == i || ballots[j].used || ballots[j].det.Class != cand.det.Class {
				continue
			}
			if ballots[j].det.B.IoU(cand.det.B) >= iou {
				supporters[ballots[j].backend] = true
				cluster = append(cluster, j)
			}
		}
		cand.used = true
		if len(supporters) >= q {
			for _, j := range cluster {
				ballots[j].used = true
			}
			out = append(out, cand.det)
		} else {
			outvoted++
		}
	}
	return out, outvoted
}

// PredictTensorCtx fans the call out to every admitted backend, tallies the
// vote, and returns the agreed detections. A backend's error, panic or
// corrupt result removes its ballot and is charged to its health;
// cancellation propagates immediately, charged to nobody.
func (e *Ensemble) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, conf float64) ([]metrics.Detection, error) {
	e.noteCall()
	lists := make(map[int][]metrics.Detection)
	var lastErr error
	for i := range e.backends {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !e.admit(i) {
			continue
		}
		dets, err := e.try(ctx, i, x, n, conf)
		if err != nil {
			if isCtxError(err) && ctx.Err() != nil {
				return nil, err
			}
			e.noteOutcome(i, false)
			lastErr = err
			continue
		}
		e.noteOutcome(i, true)
		lists[i] = dets
	}
	if len(lists) == 0 {
		e.noteAllFailed()
		if lastErr == nil {
			return nil, fmt.Errorf("%w (all %d circuit-broken)", ErrAllBackendsFailed, len(e.backends))
		}
		return nil, fmt.Errorf("%w: last: %v", ErrAllBackendsFailed, lastErr)
	}
	out, outvoted := e.vote(lists)
	e.noteVotes(len(out), outvoted)
	return out, nil
}

// PredictBatchCtx runs each backend over the whole batch once and votes per
// item. A backend that fails the batch loses its ballot on every item.
func (e *Ensemble) PredictBatchCtx(ctx context.Context, x *tensor.Tensor, conf float64) ([][]metrics.Detection, error) {
	e.noteCall()
	batches := make(map[int][][]metrics.Detection)
	var lastErr error
	items := 0
	for i := range e.backends {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !e.admit(i) {
			continue
		}
		out, err := e.tryBatch(ctx, i, x, conf)
		if err != nil {
			if isCtxError(err) && ctx.Err() != nil {
				return nil, err
			}
			e.noteOutcome(i, false)
			lastErr = err
			continue
		}
		e.noteOutcome(i, true)
		batches[i] = out
		if len(out) > items {
			items = len(out)
		}
	}
	if len(batches) == 0 {
		e.noteAllFailed()
		if lastErr == nil {
			return nil, fmt.Errorf("%w (all %d circuit-broken)", ErrAllBackendsFailed, len(e.backends))
		}
		return nil, fmt.Errorf("%w: last: %v", ErrAllBackendsFailed, lastErr)
	}
	result := make([][]metrics.Detection, items)
	totalEmitted, totalOutvoted := 0, 0
	for item := 0; item < items; item++ {
		lists := make(map[int][]metrics.Detection)
		for backend, out := range batches {
			if item < len(out) {
				lists[backend] = out[item]
			}
		}
		dets, outvoted := e.vote(lists)
		result[item] = dets
		totalEmitted += len(dets)
		totalOutvoted += outvoted
	}
	e.noteVotes(totalEmitted, totalOutvoted)
	return result, nil
}

// PredictTensor serves the legacy seam; when no backend can serve, it
// returns no detections (the seam has no error channel).
func (e *Ensemble) PredictTensor(x *tensor.Tensor, n int, conf float64) []metrics.Detection {
	dets, _ := e.PredictTensorCtx(context.Background(), x, n, conf)
	return dets
}

// PredictBatch mirrors PredictTensor for the legacy batch seam.
func (e *Ensemble) PredictBatch(x *tensor.Tensor, conf float64) [][]metrics.Detection {
	out, _ := e.PredictBatchCtx(context.Background(), x, conf)
	return out
}
