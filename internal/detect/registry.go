package detect

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/uikit"
)

// BuildContext carries everything a Builder may need to produce a ready
// detector. Fields are optional; builders error when a field they require is
// missing.
type BuildContext struct {
	// WeightsDir, when non-empty, is consulted for pretrained weight files
	// (<name>.gob with dashes mapped to underscores) before any training.
	WeightsDir string
	// SaveWeights writes freshly trained weights back to WeightsDir.
	SaveWeights bool
	// Samples lazily supplies the training pool (and quantisation
	// calibration set) for backends that must train when no weights exist.
	Samples func() []*dataset.Sample
	// Epochs bounds training when the builder has to train; zero lets the
	// backend pick its default.
	Epochs int
	// Seed makes training deterministic; zero means 7 (the shared
	// experiment model seed).
	Seed int64
	// Base, when non-nil, is an already-built detector that derived
	// backends (the int8 port) reuse instead of rebuilding it.
	Base Detector
	// Screen supplies the live screen for metadata-based detectors
	// (frauddroid), which read the view hierarchy instead of pixels.
	Screen func() *uikit.Screen
	// Logf receives progress messages; nil discards them.
	Logf func(format string, args ...any)
}

func (c BuildContext) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c BuildContext) seed() int64 {
	if c.Seed == 0 {
		return 7
	}
	return c.Seed
}

func (c BuildContext) samples() ([]*dataset.Sample, error) {
	if c.Samples == nil {
		return nil, fmt.Errorf("detect: build context supplies no training samples")
	}
	return c.Samples(), nil
}

// Builder constructs one backend from a build context.
type Builder func(ctx BuildContext) (Detector, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Builder{}
)

// Register adds a named backend to the registry. Registering a duplicate
// name panics: backends register from init functions, so a collision is a
// programming error, not a runtime condition.
func Register(name string, b Builder) {
	if name == "" || b == nil {
		panic("detect: Register requires a name and a builder")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("detect: duplicate detector registration: " + name)
	}
	registry[name] = b
}

// Build constructs the named backend. Unknown names list the registered
// alternatives, so CLI typos are self-explaining.
func Build(name string, ctx BuildContext) (Detector, error) {
	registryMu.RLock()
	b, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("detect: unknown detector %q (registered: %v)", name, Names())
	}
	d, err := b(ctx)
	if err != nil {
		return nil, err
	}
	// Backends with a fused inference form (the float detector folds conv +
	// batch-norm + activation into one-pass blocks) build it eagerly here, so
	// the first request a fresh replica serves does not pay the fold.
	if f, ok := d.(interface{ Fuse() }); ok {
		f.Fuse()
	}
	return d, nil
}

// Names lists the registered backends, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
