package detect

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/render"
	"repro/internal/tensor"
	"repro/internal/uikit"
	"repro/internal/yolite"
)

// stubDetector records calls and returns a fixed detection set.
type stubDetector struct {
	dets       []metrics.Detection
	calls      int
	lastThresh float64
}

func (s *stubDetector) Name() string { return "stub" }

func (s *stubDetector) PredictTensor(_ *tensor.Tensor, _ int, confThresh float64) []metrics.Detection {
	s.calls++
	s.lastThresh = confThresh
	out := make([]metrics.Detection, len(s.dets))
	copy(out, s.dets)
	return out
}

func det(x, y, w, h, score float64) metrics.Detection {
	return metrics.Detection{Class: dataset.ClassUPO, B: geom.BoxF{X: x, Y: y, W: w, H: h}, Score: score}
}

func inputTensor() *tensor.Tensor {
	x := tensor.New(1, 3, yolite.InputH, yolite.InputW)
	for i := range x.Data {
		x.Data[i] = float32(i%255) / 255
	}
	return x
}

func TestNamedWrapsAnonymousPredictor(t *testing.T) {
	s := &stubDetector{}
	if got := Named("other", s).Name(); got != "other" {
		t.Fatalf("Named: got %q, want other", got)
	}
	// A Detector already carrying the requested name is returned unwrapped.
	if d := Named("stub", s); d != Detector(s) {
		t.Fatalf("Named should not re-wrap a detector that already has the name")
	}
}

func TestRegistryBuildAndNames(t *testing.T) {
	Register("test-backend", func(ctx BuildContext) (Detector, error) {
		return &stubDetector{}, nil
	})
	d, err := Build("test-backend", BuildContext{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if d.Name() != "stub" {
		t.Fatalf("built detector name = %q", d.Name())
	}
	found := false
	for _, n := range Names() {
		if n == "test-backend" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v, missing test-backend", Names())
	}
}

func TestRegistryUnknownNameListsAlternatives(t *testing.T) {
	_, err := Build("no-such-backend", BuildContext{})
	if err == nil {
		t.Fatal("Build of unknown name should error")
	}
	if !strings.Contains(err.Error(), "yolite") {
		t.Fatalf("error should list registered names, got: %v", err)
	}
}

func TestRegistryHasAllBuiltins(t *testing.T) {
	names := Names()
	for _, want := range []string{"yolite", "yolite-masked", "yolite-int8",
		"faster-rcnn-vgg16", "faster-rcnn-resnet50", "mask-rcnn-vgg16", "mask-rcnn-resnet50",
		"frauddroid"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing builtin %q (have %v)", want, names)
		}
	}
}

func TestFraudDroidBuilderRequiresScreen(t *testing.T) {
	if _, err := Build("frauddroid", BuildContext{}); err == nil {
		t.Fatal("frauddroid without a screen provider should error")
	}
	d, err := Build("frauddroid", BuildContext{Screen: func() *uikit.Screen { return nil }})
	if err != nil {
		t.Fatalf("frauddroid with screen provider: %v", err)
	}
	if d.Name() != "frauddroid" {
		t.Fatalf("name = %q", d.Name())
	}
}

func TestWithConfidenceFloor(t *testing.T) {
	s := &stubDetector{}
	d := WithConfidenceFloor(s, 0.8)
	if d.Name() != "stub" {
		t.Fatalf("floor should preserve the inner name, got %q", d.Name())
	}
	d.PredictTensor(inputTensor(), 0, 0.45)
	if s.lastThresh != 0.8 {
		t.Fatalf("threshold below the floor should be raised to it, got %v", s.lastThresh)
	}
	d.PredictTensor(inputTensor(), 0, 0.9)
	if s.lastThresh != 0.9 {
		t.Fatalf("threshold above the floor should pass through, got %v", s.lastThresh)
	}
}

func TestWithNMSSuppressesDuplicates(t *testing.T) {
	s := &stubDetector{dets: []metrics.Detection{
		det(10, 10, 8, 8, 0.9),
		det(11, 10, 8, 8, 0.7), // near-duplicate of the first
		det(50, 50, 8, 8, 0.8),
	}}
	d := WithNMS(s, 0.5)
	if d.Name() != "stub" {
		t.Fatalf("nms should preserve the inner name, got %q", d.Name())
	}
	got := d.PredictTensor(inputTensor(), 0, 0.4)
	if len(got) != 2 {
		t.Fatalf("NMS kept %d detections, want 2: %v", len(got), got)
	}
}

func TestResultCacheSkipsInference(t *testing.T) {
	s := &stubDetector{dets: []metrics.Detection{det(10, 10, 8, 8, 0.9)}}
	c := WithResultCache(s, 8)
	x := inputTensor()

	first := c.PredictTensor(x, 0, 0.45)
	if s.calls != 1 || c.Misses() != 1 || c.Hits() != 0 {
		t.Fatalf("first call: calls=%d misses=%d hits=%d", s.calls, c.Misses(), c.Hits())
	}
	second := c.PredictTensor(x, 0, 0.45)
	if s.calls != 1 {
		t.Fatalf("unchanged screen should skip inference, inner ran %d times", s.calls)
	}
	if c.Hits() != 1 {
		t.Fatalf("hits = %d, want 1", c.Hits())
	}
	if len(second) != len(first) || second[0] != first[0] {
		t.Fatalf("cached result differs: %v vs %v", second, first)
	}

	// The pipeline scales boxes in place; the cache must hand out copies.
	second[0].B.X = 999
	third := c.PredictTensor(x, 0, 0.45)
	if third[0].B.X == 999 {
		t.Fatal("cache returned a shared slice; mutations leak between calls")
	}

	// Changing a pixel or the threshold is a different key.
	x.Data[7] += 0.5
	c.PredictTensor(x, 0, 0.45)
	if s.calls != 2 {
		t.Fatalf("changed screen should re-run inference, calls = %d", s.calls)
	}
	c.PredictTensor(x, 0, 0.60)
	if s.calls != 3 {
		t.Fatalf("changed threshold should re-run inference, calls = %d", s.calls)
	}
}

func TestResultCacheEvictsFIFO(t *testing.T) {
	s := &stubDetector{}
	c := WithResultCache(s, 2)
	a, b, d := inputTensor(), inputTensor(), inputTensor()
	b.Data[0] = 0.9
	d.Data[0] = 0.8

	c.PredictTensor(a, 0, 0.45) // miss, cache {a}
	c.PredictTensor(b, 0, 0.45) // miss, cache {a,b}
	c.PredictTensor(d, 0, 0.45) // miss, evicts a -> {b,d}
	if c.Len() != 2 {
		t.Fatalf("capacity 2 cache holds %d entries", c.Len())
	}
	c.PredictTensor(a, 0, 0.45) // a was evicted: miss again
	if s.calls != 4 {
		t.Fatalf("expected 4 inner calls after eviction, got %d", s.calls)
	}
	c.PredictTensor(d, 0, 0.45) // d still cached
	if c.Hits() != 1 {
		t.Fatalf("hits = %d, want 1", c.Hits())
	}
}

func TestResultCacheBadBatchIndexBypasses(t *testing.T) {
	s := &stubDetector{}
	c := WithResultCache(s, 4)
	x := inputTensor()
	c.PredictTensor(x, 5, 0.45) // out of range: must delegate, not cache
	if s.calls != 1 || c.Len() != 0 {
		t.Fatalf("out-of-range item: calls=%d len=%d", s.calls, c.Len())
	}
}

func TestWithTimingRecords(t *testing.T) {
	s := &stubDetector{}
	rec := &perfmodel.Timings{}
	d := WithTiming(s, rec, "")
	if d.Name() != "stub" {
		t.Fatalf("timing should preserve the inner name, got %q", d.Name())
	}
	d.PredictTensor(inputTensor(), 0, 0.45)
	d.PredictTensor(inputTensor(), 0, 0.45)
	if got := rec.Stage("infer").Count; got != 2 {
		t.Fatalf("recorded %d observations, want 2", got)
	}
}

func TestMiddlewareComposes(t *testing.T) {
	s := &stubDetector{dets: []metrics.Detection{det(10, 10, 8, 8, 0.9)}}
	rec := &perfmodel.Timings{}
	d := WithTiming(WithResultCache(WithNMS(WithConfidenceFloor(s, 0.5), 0.2), 4), rec, "infer")
	if d.Name() != "stub" {
		t.Fatalf("composed stack should still report the backend name, got %q", d.Name())
	}
	x := inputTensor()
	d.PredictTensor(x, 0, 0.45)
	d.PredictTensor(x, 0, 0.45)
	if s.calls != 1 {
		t.Fatalf("cache inside the stack should absorb the repeat, inner calls = %d", s.calls)
	}
	if rec.Stage("infer").Count != 2 {
		t.Fatalf("timing outside the cache should see both calls")
	}
}

func TestPredictCanvasScalesToScreen(t *testing.T) {
	// A detection at model-input coords (10,20) 8x4 on a 384x640 canvas
	// (4x input) should come back at (40,80) 32x16.
	s := &stubDetector{dets: []metrics.Detection{det(10, 20, 8, 4, 0.9)}}
	got := PredictCanvas(s, render.NewCanvas(384, 640), 0.45)
	if len(got) != 1 {
		t.Fatalf("got %d detections", len(got))
	}
	b := got[0].B
	if b.X != 40 || b.Y != 80 || b.W != 32 || b.H != 16 {
		t.Fatalf("scaled box = %+v", b)
	}
}
