package detect

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Property tests over seeded random detection sets: invariants the
// middleware and resilience layers must hold for any input, not just the
// hand-picked fixtures of the unit tests.

// randomDets draws n detections with boxes in a crowded 100x100 field, so
// NMS actually has overlaps to suppress.
func randomDets(rng *rand.Rand, n int) []metrics.Detection {
	out := make([]metrics.Detection, n)
	for i := range out {
		cls := dataset.ClassUPO
		if rng.Intn(2) == 1 {
			cls = dataset.ClassAGO
		}
		out[i] = metrics.Detection{
			Class: cls,
			B: geom.BoxF{
				X: rng.Float64() * 100,
				Y: rng.Float64() * 100,
				W: 1 + rng.Float64()*40,
				H: 1 + rng.Float64()*40,
			},
			Score: rng.Float64(),
		}
	}
	return out
}

// TestNMSIdempotent pins nms(nms(x)) == nms(x): a second pass over an
// already-suppressed set must remove nothing, for any input and threshold.
func TestNMSIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		dets := randomDets(rng, rng.Intn(30))
		iou := rng.Float64()
		once := metrics.NMS(dets, iou)
		twice := metrics.NMS(once, iou)
		if !sameDets(once, twice) {
			t.Fatalf("trial %d (iou %.3f): NMS not idempotent:\nonce:  %v\ntwice: %v",
				trial, iou, once, twice)
		}
	}
}

// threshStub honours the confidence threshold it is handed — the middleware
// contract the floor wrapper builds on (real backends threshold in
// DecodeHead).
type threshStub struct{ dets []metrics.Detection }

func (s *threshStub) Name() string { return "thresh-stub" }

func (s *threshStub) PredictTensor(_ *tensor.Tensor, _ int, confThresh float64) []metrics.Detection {
	var out []metrics.Detection
	for _, d := range s.dets {
		if d.Score >= confThresh {
			out = append(out, d)
		}
	}
	return out
}

// TestConfidenceFloorMonotone pins two properties of the floor middleware
// over random inputs: raising the floor never adds detections (the surviving
// set shrinks monotonically), and every survivor of the higher floor also
// survives the lower one, in the same order.
func TestConfidenceFloorMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		dets := randomDets(rng, rng.Intn(30))
		lo, hi := rng.Float64(), rng.Float64()
		if lo > hi {
			lo, hi = hi, lo
		}
		s := &threshStub{dets: dets}
		atLo := WithConfidenceFloor(s, lo).PredictTensor(nil, 0, 0)
		atHi := WithConfidenceFloor(s, hi).PredictTensor(nil, 0, 0)
		if len(atHi) > len(atLo) {
			t.Fatalf("trial %d: floor %.3f kept %d, floor %.3f kept %d",
				trial, hi, len(atHi), lo, len(atLo))
		}
		// atHi must be a subsequence of atLo.
		j := 0
		for _, d := range atHi {
			for j < len(atLo) && atLo[j] != d {
				j++
			}
			if j == len(atLo) {
				t.Fatalf("trial %d: %+v survives floor %.3f but not floor %.3f", trial, d, hi, lo)
			}
			j++
		}
		for _, d := range atHi {
			if d.Score < hi {
				t.Fatalf("trial %d: floor %.3f leaked score %.3f", trial, hi, d.Score)
			}
		}
	}
}

// TestResilienceTransparentOnRandomResults pins the "transparent when
// healthy" half of the resilience contract property-style: for any result a
// healthy backend produces, recovery, retry, a fallback chain, and their
// composition all return it bit-identical.
func TestResilienceTransparentOnRandomResults(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ctx := context.Background()
	x := resTensor(1)
	for trial := 0; trial < 100; trial++ {
		// Scores in [0,1] and finite boxes: a healthy result that must pass
		// validation untouched.
		dets := randomDets(rng, rng.Intn(20))
		mk := func() *flakyBackend { return &flakyBackend{dets: dets} }
		want := append([]metrics.Detection(nil), dets...)

		wrapped := map[string]Detector{
			"recovery": WithRecovery(mk()),
			"retry":    WithRetry(mk(), RetryOptions{}),
			"fallback": WithFallback(FallbackOptions{}, mk()),
			"stacked": WithFallback(FallbackOptions{},
				WithRetry(WithRecovery(mk()), RetryOptions{})),
		}
		for name, d := range wrapped {
			got, err := Predict(ctx, d, x, 0, 0.5)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if !sameDets(got, want) {
				t.Fatalf("trial %d: %s altered a healthy result:\ngot:  %v\nwant: %v",
					trial, name, got, want)
			}
		}
	}
}
