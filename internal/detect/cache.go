package detect

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"math"
	"math/bits"
	"sync"

	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Cache memoises inference results keyed on the screenshot's tensor content,
// so an unchanged screen (the common case: debounce fires on cosmetic churn
// that dies outside the model's downsampled view) skips re-inference
// entirely. Eviction is FIFO at the configured capacity.
//
// Internally the key space is partitioned across shards, each with its own
// lock, map and FIFO ring, so concurrent auditors (the serving layer fans
// many devices into one shared cache) do not serialise on a single mutex.
// Small caches stay single-sharded — one shard preserves exact global FIFO
// order, which only matters when capacity is tiny enough for eviction order
// to be observable. Safe for concurrent use.
type Cache struct {
	inner  Detector
	mask   uint64
	shards []cacheShard
}

// cacheShard is one lock domain: a hash map for lookup plus a fixed-size
// ring buffer recording insertion order for FIFO eviction. The ring never
// reallocates (the historical slice-based FIFO leaked its backing array by
// re-slicing on every eviction). The trailing pad keeps hot shard headers on
// separate cache lines when the shard array is walked concurrently.
type cacheShard struct {
	mu      sync.Mutex
	entries map[uint64][]metrics.Detection
	ring    []uint64 // fixed capacity; oldest key at head
	head    int
	count   int
	hits    int
	misses  int
	_       [24]byte
}

const (
	// DefaultCacheCapacity bounds the cache when WithResultCache is given a
	// non-positive capacity.
	DefaultCacheCapacity = 32
	// maxCacheShards caps the shard fan-out; past ~16 lock domains the
	// contention win is gone and the per-shard rings get too small.
	maxCacheShards = 16
	// minShardCapacity is the smallest per-shard ring worth splitting into:
	// below it, sharding trades observable FIFO order for nothing.
	minShardCapacity = 8
)

// WithResultCache wraps d with a content-hash result cache holding up to
// capacity screens. The shard count scales with capacity: caches smaller
// than 2x minShardCapacity stay single-sharded (exact FIFO), larger ones
// split into up to maxCacheShards lock domains.
func WithResultCache(d Detector, capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return WithShardedResultCache(d, capacity, capacity/minShardCapacity)
}

// WithShardedResultCache is WithResultCache with an explicit shard count,
// for callers that know their concurrency (the serving layer sizes shards to
// its worker count). The count is rounded down to a power of two and clamped
// to [1, min(capacity, maxCacheShards)].
func WithShardedResultCache(d Detector, capacity, shards int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	if shards > maxCacheShards {
		shards = maxCacheShards
	}
	if shards > capacity {
		shards = capacity
	}
	if shards < 1 {
		shards = 1
	}
	// Round down to a power of two so shard selection is a mask, not a mod.
	shards = 1 << (bits.Len(uint(shards)) - 1)
	c := &Cache{inner: d, mask: uint64(shards - 1), shards: make([]cacheShard, shards)}
	base, rem := capacity/shards, capacity%shards
	for i := range c.shards {
		cap := base
		if i < rem {
			cap++
		}
		c.shards[i].entries = make(map[uint64][]metrics.Detection, cap)
		c.shards[i].ring = make([]uint64, cap)
	}
	return c
}

// Name reports the inner backend's name.
func (c *Cache) Name() string { return c.inner.Name() }

// ShardCount reports how many lock domains the cache was split into.
func (c *Cache) ShardCount() int { return len(c.shards) }

// Hits returns how many calls were answered from the cache.
func (c *Cache) Hits() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.hits
		s.mu.Unlock()
	}
	return total
}

// Misses returns how many calls ran the inner detector.
func (c *Cache) Misses() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.misses
		s.mu.Unlock()
	}
	return total
}

// Len returns the number of cached screens.
func (c *Cache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.entries)
		s.mu.Unlock()
	}
	return total
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	h, m := c.Hits(), c.Misses()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// PublishStats folds the cache's lifetime hit and miss tallies into rec as
// the count-only stages "cache-hit" and "cache-miss", putting the hit rate
// in the same report the latency stages already feed. Call it once at the
// end of a run; repeated calls re-add the totals. A nil rec is a no-op.
func (c *Cache) PublishStats(rec *perfmodel.Timings) {
	rec.AddItems("cache-hit", c.Hits())
	rec.AddItems("cache-miss", c.Misses())
}

// cacheSeed is fixed so keys are stable within a process run.
var cacheSeed = maphash.MakeSeed()

// cacheKey hashes batch item n's pixels plus the threshold. Pixel bits are
// packed into a 4KB stack buffer and flushed to maphash a chunk at a time:
// the historical one-Write-per-float-pair loop spent ~23k hash calls on a
// 46k-float screen, and at fleet scale (a million cache lookups a minute,
// one core) that per-call overhead — not inference — was the bottleneck.
// Keys are process-internal (the seed is fresh each run), so the chunked
// byte stream owes the old one nothing.
func cacheKey(x *tensor.Tensor, n int, confThresh float64) (uint64, bool) {
	if x == nil || len(x.Shape) == 0 {
		return 0, false
	}
	per := 1
	for _, d := range x.Shape[1:] {
		per *= d
	}
	lo, hi := n*per, (n+1)*per
	if lo < 0 || hi > len(x.Data) {
		return 0, false
	}
	var h maphash.Hash
	h.SetSeed(cacheSeed)
	var buf [4096]byte
	binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(confThresh))
	off := 8
	for i := lo; i < hi; i++ {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(x.Data[i]))
		off += 4
		if off == len(buf) {
			h.Write(buf[:])
			off = 0
		}
	}
	if off > 0 {
		h.Write(buf[:off])
	}
	return h.Sum64(), true
}

// shardFor maps a key to its lock domain. maphash output is uniformly
// mixed, so the low bits select shards evenly.
func (c *Cache) shardFor(key uint64) *cacheShard {
	return &c.shards[key&c.mask]
}

// lookup checks one key, counting the hit or miss on its shard. On a hit it
// returns a fresh copy of the memoised slice (the pipeline scales detection
// boxes in place).
func (c *Cache) lookup(key uint64) ([]metrics.Detection, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if dets, hit := s.entries[key]; hit {
		s.hits++
		return append([]metrics.Detection(nil), dets...), true
	}
	s.misses++
	return nil, false
}

// store memoises dets under key (copying the slice), evicting the shard's
// oldest entry when its ring is full. Re-storing a key another call raced in
// is a no-op.
func (c *Cache) store(key uint64, dets []metrics.Detection) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[key]; dup {
		return
	}
	if len(s.ring) == 0 {
		return
	}
	if s.count == len(s.ring) {
		// Full: the head slot holds the oldest key; overwrite it in place
		// and advance. No allocation, no retained backing array.
		delete(s.entries, s.ring[s.head])
		s.ring[s.head] = key
		s.head = (s.head + 1) % len(s.ring)
	} else {
		s.ring[(s.head+s.count)%len(s.ring)] = key
		s.count++
	}
	s.entries[key] = append([]metrics.Detection(nil), dets...)
}

// PredictTensor answers from the cache when the screen content is unchanged
// and delegates (then memoises) otherwise. Returned slices are fresh copies:
// the pipeline scales detection boxes in place.
func (c *Cache) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	key, ok := cacheKey(x, n, confThresh)
	if !ok {
		return c.inner.PredictTensor(x, n, confThresh)
	}
	if dets, hit := c.lookup(key); hit {
		return dets
	}
	dets := c.inner.PredictTensor(x, n, confThresh)
	c.store(key, dets)
	return dets
}

// PredictTensorCtx is the ctx-aware lookup: an already-dead context is
// rejected before even hashing the pixels, a hit is answered immediately
// (hits cost microseconds — not worth a cancellation point), and a miss runs
// the inner detector with the context. A cancelled inner call propagates its
// error and stores nothing, so aborted partial results never poison the
// memo.
func (c *Cache) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, confThresh float64) ([]metrics.Detection, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key, ok := cacheKey(x, n, confThresh)
	if !ok {
		return Predict(ctx, c.inner, x, n, confThresh)
	}
	if dets, hit := c.lookup(key); hit {
		return dets, nil
	}
	dets, err := Predict(ctx, c.inner, x, n, confThresh)
	if err != nil {
		return nil, err
	}
	c.store(key, dets)
	return dets, nil
}

// PredictBatch answers hit items from the memo and forwards only the
// compacted miss sub-batch to the inner detector, so an audit batch pays
// inference only for content the cache has not seen. Duplicate screens
// within one batch are forwarded once and fanned back out. Hits() counts
// items answered from the memo; Misses() counts the rest (an in-batch
// duplicate is a miss, though only its first occurrence reaches the
// backend).
func (c *Cache) PredictBatch(x *tensor.Tensor, confThresh float64) [][]metrics.Detection {
	out, _ := c.predictBatch(context.Background(), x, confThresh)
	return out
}

// PredictBatchCtx is the ctx-aware batch path: hits are answered from the
// memo as usual, and only the compacted miss sub-batch carries the context
// into the inner detector. A cancelled inner call propagates its error and
// stores nothing (misses already counted stay counted — the lookup did
// happen).
func (c *Cache) PredictBatchCtx(ctx context.Context, x *tensor.Tensor, confThresh float64) ([][]metrics.Detection, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.predictBatch(ctx, x, confThresh)
}

// predictBatch is the shared batch flow behind PredictBatch (Background
// context, error impossible) and PredictBatchCtx.
func (c *Cache) predictBatch(ctx context.Context, x *tensor.Tensor, confThresh float64) ([][]metrics.Detection, error) {
	if x == nil || len(x.Shape) == 0 {
		return nil, nil
	}
	n := x.Shape[0]
	keys := make([]uint64, n)
	for i := range keys {
		key, ok := cacheKey(x, i, confThresh)
		if !ok {
			// Malformed batch: bypass the cache entirely.
			return PredictBatchCtx(ctx, c.inner, x, confThresh)
		}
		keys[i] = key
	}
	out := make([][]metrics.Detection, n)
	answered := make([]bool, n)
	var missItems []int        // first item index per unique missing key
	missAt := map[uint64]int{} // key -> index into the miss sub-batch
	for i := 0; i < n; i++ {
		if _, dup := missAt[keys[i]]; dup {
			// In-batch duplicate of a known miss: count it without another
			// lookup, mirroring the historical single-lock accounting.
			c.shardFor(keys[i]).addMiss()
			continue
		}
		if dets, hit := c.lookup(keys[i]); hit {
			out[i] = dets
			answered[i] = true
			continue
		}
		missAt[keys[i]] = len(missItems)
		missItems = append(missItems, i)
	}
	if len(missItems) == 0 {
		return out, nil
	}
	sub := x
	if len(missItems) != n {
		per := 1
		for _, d := range x.Shape[1:] {
			per *= d
		}
		sub = tensor.New(append([]int{len(missItems)}, x.Shape[1:]...)...)
		for j, i := range missItems {
			copy(sub.Data[j*per:(j+1)*per], x.Data[i*per:(i+1)*per])
		}
	}
	res, err := PredictBatchCtx(ctx, c.inner, sub, confThresh)
	if err != nil {
		return nil, err
	}
	// A misbehaving backend can return a result slice that does not match
	// the compacted miss sub-batch (nil on an unreported failure, or a
	// short/long slice). Blindly mapping res[j] back to item i would panic
	// on a short slice — or worse, silently misalign results against items,
	// memoising screen A's detections under screen B's key. Refuse instead:
	// the mapping invariant (res[j] belongs to missItems[j]) is the whole
	// correctness of miss compaction.
	if len(res) != len(missItems) {
		return nil, fmt.Errorf("detect: cache: inner batch returned %d results for %d miss items", len(res), len(missItems))
	}
	for j, i := range missItems {
		c.store(keys[i], res[j])
	}
	for i := 0; i < n; i++ {
		if answered[i] {
			continue
		}
		j := missAt[keys[i]]
		if missItems[j] == i {
			out[i] = res[j]
		} else {
			// In-batch duplicate: hand out a copy, like a cache hit would.
			out[i] = append([]metrics.Detection(nil), res[j]...)
		}
	}
	return out, nil
}

func (s *cacheShard) addMiss() {
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
}
