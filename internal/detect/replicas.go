package detect

import "fmt"

// BuildReplicas constructs n independent instances of the named backend from
// the registry — the provisioning seam for the serving layer's replica pool.
// Each instance is built through its own Build call, so replicas share no
// mutable state (weights are loaded or trained per instance; with a warm
// WeightsDir the n-1 extra builds are just file loads). n <= 0 builds one.
func BuildReplicas(name string, ctx BuildContext, n int) ([]Detector, error) {
	if n <= 0 {
		n = 1
	}
	out := make([]Detector, 0, n)
	for i := 0; i < n; i++ {
		d, err := Build(name, ctx)
		if err != nil {
			return nil, fmt.Errorf("detect: building replica %d/%d of %q: %w", i+1, n, name, err)
		}
		out = append(out, d)
	}
	return out, nil
}
