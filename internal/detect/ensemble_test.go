package detect

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// liarBackend returns well-formed but wrong detections — the stand-in for a
// compromised or badly-drifted member whose inventions the vote must reject.
type liarBackend struct{ flakyBackend }

func newLiar() *liarBackend {
	return &liarBackend{flakyBackend{
		name: "liar",
		dets: []metrics.Detection{det(100, 100, 20, 20, 0.99)},
	}}
}

func goodBackend(name string) *flakyBackend {
	return &flakyBackend{name: name, dets: healthyDets()}
}

func TestVoteOutvotesLiar(t *testing.T) {
	e := WithMajorityVote(VoteOptions{}, goodBackend("a"), goodBackend("b"), newLiar())
	dets, err := e.PredictTensorCtx(context.Background(), resTensor(1), 0, 0.5)
	if err != nil {
		t.Fatalf("vote failed: %v", err)
	}
	// Three responders -> quorum 2. The liar's high-score invention has one
	// supporter and is outvoted; the shared detections carry two votes each.
	if !sameDets(dets, healthyDets()) {
		t.Fatalf("vote emitted %v, want %v", dets, healthyDets())
	}
	st := e.Stats()
	if st.Outvoted != 1 {
		t.Fatalf("Outvoted = %d, want 1 (the liar's invention)", st.Outvoted)
	}
	if st.Emitted != len(healthyDets()) {
		t.Fatalf("Emitted = %d, want %d", st.Emitted, len(healthyDets()))
	}
}

func TestVoteRejectsCorruptBackend(t *testing.T) {
	// The corrupt member fails ValidDetections (PR 5's NaN cases): its ballot
	// is discarded before the vote and the failure is charged to its health.
	corrupt := &flakyBackend{name: "corrupt", failures: 1 << 30, corrupt: true}
	e := WithMajorityVote(VoteOptions{}, goodBackend("a"), goodBackend("b"), corrupt)
	dets, err := e.PredictTensorCtx(context.Background(), resTensor(1), 0, 0.5)
	if err != nil {
		t.Fatalf("vote failed: %v", err)
	}
	if !sameDets(dets, healthyDets()) {
		t.Fatalf("vote emitted %v, want %v", dets, healthyDets())
	}
	st := e.Stats()
	if st.Backends[2].Failures != 1 || st.Backends[2].Successes != 0 {
		t.Fatalf("corrupt backend health = %+v, want 1 failure", st.Backends[2])
	}
}

func TestVoteTrippedBreakerDropsBackendWithoutDeadlock(t *testing.T) {
	down := &flakyBackend{name: "down", failures: 1 << 30, err: errors.New("backend down")}
	e := WithMajorityVote(VoteOptions{BreakAfter: 2, Cooldown: 3}, goodBackend("a"), down)
	x := resTensor(1)
	for i := 0; i < 4; i++ {
		dets, err := e.PredictTensorCtx(context.Background(), x, 0, 0.5)
		if err != nil {
			t.Fatalf("call %d failed: %v", i, err)
		}
		// With the second member failing or circuit-broken, the vote degrades
		// to a single-backend passthrough rather than failing closed.
		if !sameDets(dets, healthyDets()) {
			t.Fatalf("call %d emitted %v, want %v", i, dets, healthyDets())
		}
	}
	st := e.Stats()
	if !st.Backends[1].Open || st.Backends[1].Tripped != 1 {
		t.Fatalf("down backend not tripped: %+v", st.Backends[1])
	}
	usesWhenOpen := st.Backends[1].Uses
	// Cooldown=3: three calls sit out, the fourth admits a half-open probe.
	for i := 0; i < 4; i++ {
		if _, err := e.PredictTensorCtx(context.Background(), x, 0, 0.5); err != nil {
			t.Fatalf("cooldown call %d failed: %v", i, err)
		}
	}
	st = e.Stats()
	if st.Backends[1].Uses != usesWhenOpen+1 {
		t.Fatalf("uses went %d -> %d across cooldown, want exactly one half-open probe",
			usesWhenOpen, st.Backends[1].Uses)
	}
	if !st.Backends[1].Open {
		t.Fatalf("failed probe should re-open the breaker: %+v", st.Backends[1])
	}
}

func TestVoteAllFailed(t *testing.T) {
	e := WithMajorityVote(VoteOptions{},
		&flakyBackend{name: "a", failures: 1 << 30, err: errors.New("down")},
		&flakyBackend{name: "b", failures: 1 << 30, err: errors.New("down")})
	if _, err := e.PredictTensorCtx(context.Background(), resTensor(1), 0, 0.5); !errors.Is(err, ErrAllBackendsFailed) {
		t.Fatalf("err = %v, want ErrAllBackendsFailed", err)
	}
	if e.Stats().AllFailed != 1 {
		t.Fatalf("AllFailed = %d, want 1", e.Stats().AllFailed)
	}
}

func TestVoteCancellationChargedToNobody(t *testing.T) {
	good := goodBackend("a")
	e := WithMajorityVote(VoteOptions{}, good, goodBackend("b"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.PredictTensorCtx(ctx, resTensor(1), 0, 0.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, b := range e.Stats().Backends {
		if b.Failures != 0 {
			t.Fatalf("cancellation charged to backend health: %+v", b)
		}
	}
}

func TestVoteBatchSeam(t *testing.T) {
	e := WithMajorityVote(VoteOptions{}, goodBackend("a"), goodBackend("b"), newLiar())
	out, err := e.PredictBatchCtx(context.Background(), resTensor(3), 0.5)
	if err != nil {
		t.Fatalf("batch vote failed: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("batch returned %d items, want 3", len(out))
	}
	for i, dets := range out {
		if !sameDets(dets, healthyDets()) {
			t.Fatalf("item %d emitted %v, want %v", i, dets, healthyDets())
		}
	}
}

// syncBackend serialises a flakyBackend's own bookkeeping so the concurrent
// test races only the ensemble, not the test fake.
type syncBackend struct {
	mu sync.Mutex
	flakyBackend
}

func (s *syncBackend) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, conf float64) ([]metrics.Detection, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flakyBackend.PredictTensorCtx(ctx, x, n, conf)
}

// TestVoteConcurrent hammers one ensemble from many goroutines — run under
// -race in CI — while one member flaps between failing and serving, so the
// breaker state machine is exercised concurrently with voting.
func TestVoteConcurrent(t *testing.T) {
	flappy := &syncBackend{flakyBackend: flakyBackend{name: "flappy", failures: 20, err: errors.New("warming up"), dets: healthyDets()}}
	e := WithMajorityVote(VoteOptions{BreakAfter: 3, Cooldown: 2},
		&syncBackend{flakyBackend: flakyBackend{name: "a", dets: healthyDets()}},
		&syncBackend{flakyBackend: flakyBackend{name: "b", dets: healthyDets()}},
		flappy)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := resTensor(1)
			for i := 0; i < 25; i++ {
				dets, err := e.PredictTensorCtx(context.Background(), x, 0, 0.5)
				if err != nil {
					t.Errorf("concurrent vote failed: %v", err)
					return
				}
				if !sameDets(dets, healthyDets()) {
					t.Errorf("concurrent vote emitted %v", dets)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := e.Stats()
	if st.Calls != 8*25 {
		t.Fatalf("Calls = %d, want %d", st.Calls, 8*25)
	}
}

func TestWithMajorityVotePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithMajorityVote with no backends should panic")
		}
	}()
	WithMajorityVote(VoteOptions{})
}
