package detect

import (
	"hash/maphash"
	"math"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Middleware decorators wrap a Detector with cross-cutting behaviour while
// preserving its name, so a decorated backend still reports as itself in
// tables and logs. Decorators compose by nesting:
//
//	d = detect.WithTiming(detect.WithResultCache(detect.WithNMS(base, 0.2), 64), timings)

// floorDetector drops detections below a confidence floor, whatever
// threshold the caller asked for — the deployment knob the device
// experiments turn (Section VI-C raises the operating threshold to keep
// screen-level precision up).
type floorDetector struct {
	inner Detector
	floor float64
}

// WithConfidenceFloor enforces a minimum confidence: the effective threshold
// of every call is max(confThresh, floor).
func WithConfidenceFloor(d Detector, floor float64) Detector {
	return floorDetector{inner: d, floor: floor}
}

func (f floorDetector) Name() string { return f.inner.Name() }

func (f floorDetector) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	return f.inner.PredictTensor(x, n, math.Max(confThresh, f.floor))
}

// PredictBatch applies the floor once and forwards the whole batch.
func (f floorDetector) PredictBatch(x *tensor.Tensor, confThresh float64) [][]metrics.Detection {
	return PredictBatch(f.inner, x, math.Max(confThresh, f.floor))
}

// nmsDetector applies class-aware non-maximum suppression to the inner
// detector's output, for backends that do not already suppress duplicates.
type nmsDetector struct {
	inner Detector
	iou   float64
}

// WithNMS suppresses same-class detections overlapping above iou.
func WithNMS(d Detector, iou float64) Detector {
	return nmsDetector{inner: d, iou: iou}
}

func (m nmsDetector) Name() string { return m.inner.Name() }

func (m nmsDetector) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	return metrics.NMS(m.inner.PredictTensor(x, n, confThresh), m.iou)
}

// PredictBatch suppresses duplicates within each item independently:
// detections never compete across screens.
func (m nmsDetector) PredictBatch(x *tensor.Tensor, confThresh float64) [][]metrics.Detection {
	out := PredictBatch(m.inner, x, confThresh)
	for i := range out {
		out[i] = metrics.NMS(out[i], m.iou)
	}
	return out
}

// Cache memoises inference results keyed on the screenshot's tensor content,
// so an unchanged screen (the common case: debounce fires on cosmetic churn
// that dies outside the model's downsampled view) skips re-inference
// entirely. Eviction is FIFO at the configured capacity. Safe for concurrent
// use.
type Cache struct {
	inner    Detector
	capacity int

	mu      sync.Mutex
	entries map[uint64][]metrics.Detection
	order   []uint64
	hits    int
	misses  int
}

// DefaultCacheCapacity bounds the cache when WithResultCache is given a
// non-positive capacity.
const DefaultCacheCapacity = 32

// WithResultCache wraps d with a content-hash result cache holding up to
// capacity screens.
func WithResultCache(d Detector, capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{inner: d, capacity: capacity, entries: map[uint64][]metrics.Detection{}}
}

// Name reports the inner backend's name.
func (c *Cache) Name() string { return c.inner.Name() }

// Hits returns how many calls were answered from the cache.
func (c *Cache) Hits() int { c.mu.Lock(); defer c.mu.Unlock(); return c.hits }

// Misses returns how many calls ran the inner detector.
func (c *Cache) Misses() int { c.mu.Lock(); defer c.mu.Unlock(); return c.misses }

// Len returns the number of cached screens.
func (c *Cache) Len() int { c.mu.Lock(); defer c.mu.Unlock(); return len(c.entries) }

// cacheSeed is fixed so keys are stable within a process run.
var cacheSeed = maphash.MakeSeed()

// key hashes batch item n's pixels plus the threshold. Hashing ~46k floats
// costs microseconds against the ~10ms+ a conv backbone costs, so a hit is
// three orders of magnitude cheaper than inference.
func cacheKey(x *tensor.Tensor, n int, confThresh float64) (uint64, bool) {
	if x == nil || len(x.Shape) == 0 {
		return 0, false
	}
	per := 1
	for _, d := range x.Shape[1:] {
		per *= d
	}
	lo, hi := n*per, (n+1)*per
	if lo < 0 || hi > len(x.Data) {
		return 0, false
	}
	var h maphash.Hash
	h.SetSeed(cacheSeed)
	var buf [8]byte
	putU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	putU64(math.Float64bits(confThresh))
	for i := lo; i < hi; i += 2 {
		v := uint64(math.Float32bits(x.Data[i]))
		if i+1 < hi {
			v |= uint64(math.Float32bits(x.Data[i+1])) << 32
		}
		putU64(v)
	}
	return h.Sum64(), true
}

// PredictTensor answers from the cache when the screen content is unchanged
// and delegates (then memoises) otherwise. Returned slices are fresh copies:
// the pipeline scales detection boxes in place.
func (c *Cache) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	key, ok := cacheKey(x, n, confThresh)
	if !ok {
		return c.inner.PredictTensor(x, n, confThresh)
	}
	c.mu.Lock()
	if dets, hit := c.entries[key]; hit {
		c.hits++
		c.mu.Unlock()
		return append([]metrics.Detection(nil), dets...)
	}
	c.misses++
	c.mu.Unlock()

	dets := c.inner.PredictTensor(x, n, confThresh)
	c.store(key, dets)
	return dets
}

// store memoises dets under key (copying the slice), evicting the oldest
// entry at capacity. Re-storing a key another call raced in is a no-op.
func (c *Cache) store(key uint64, dets []metrics.Detection) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return
	}
	if len(c.order) >= c.capacity {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = append([]metrics.Detection(nil), dets...)
	c.order = append(c.order, key)
}

// PredictBatch answers hit items from the memo and forwards only the
// compacted miss sub-batch to the inner detector, so an audit batch pays
// inference only for content the cache has not seen. Duplicate screens
// within one batch are forwarded once and fanned back out. Hits() counts
// items answered from the memo; Misses() counts the rest (an in-batch
// duplicate is a miss, though only its first occurrence reaches the
// backend).
func (c *Cache) PredictBatch(x *tensor.Tensor, confThresh float64) [][]metrics.Detection {
	if x == nil || len(x.Shape) == 0 {
		return nil
	}
	n := x.Shape[0]
	keys := make([]uint64, n)
	for i := range keys {
		key, ok := cacheKey(x, i, confThresh)
		if !ok {
			// Malformed batch: bypass the cache entirely.
			return PredictBatch(c.inner, x, confThresh)
		}
		keys[i] = key
	}
	out := make([][]metrics.Detection, n)
	answered := make([]bool, n)
	var missItems []int        // first item index per unique missing key
	missAt := map[uint64]int{} // key -> index into the miss sub-batch
	c.mu.Lock()
	for i := 0; i < n; i++ {
		if dets, hit := c.entries[keys[i]]; hit {
			c.hits++
			out[i] = append([]metrics.Detection(nil), dets...)
			answered[i] = true
			continue
		}
		c.misses++
		if _, dup := missAt[keys[i]]; !dup {
			missAt[keys[i]] = len(missItems)
			missItems = append(missItems, i)
		}
	}
	c.mu.Unlock()
	if len(missItems) == 0 {
		return out
	}
	sub := x
	if len(missItems) != n {
		per := 1
		for _, d := range x.Shape[1:] {
			per *= d
		}
		sub = tensor.New(append([]int{len(missItems)}, x.Shape[1:]...)...)
		for j, i := range missItems {
			copy(sub.Data[j*per:(j+1)*per], x.Data[i*per:(i+1)*per])
		}
	}
	res := PredictBatch(c.inner, sub, confThresh)
	for j, i := range missItems {
		c.store(keys[i], res[j])
	}
	for i := 0; i < n; i++ {
		if answered[i] {
			continue
		}
		j := missAt[keys[i]]
		if missItems[j] == i {
			out[i] = res[j]
		} else {
			// In-batch duplicate: hand out a copy, like a cache hit would.
			out[i] = append([]metrics.Detection(nil), res[j]...)
		}
	}
	return out
}

// Timed reports every inference's wall-clock latency into a
// perfmodel.Timings accumulator under the given stage label.
type Timed struct {
	inner Detector
	stage string
	rec   *perfmodel.Timings
}

// WithTiming wraps d so each PredictTensor call is timed into rec under
// stage (empty means "infer"). A nil rec disables recording without
// disabling the wrapper, so callers can thread an optional recorder through
// unconditionally.
func WithTiming(d Detector, rec *perfmodel.Timings, stage string) *Timed {
	if stage == "" {
		stage = "infer"
	}
	return &Timed{inner: d, stage: stage, rec: rec}
}

// Name reports the inner backend's name.
func (t *Timed) Name() string { return t.inner.Name() }

// PredictTensor delegates, recording the call's latency.
func (t *Timed) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	start := time.Now()
	dets := t.inner.PredictTensor(x, n, confThresh)
	t.rec.Observe(t.stage, time.Since(start))
	return dets
}

// PredictBatch delegates the whole batch, recording its wall-clock latency
// together with the item count, so the stage's Count tracks screens
// processed and Mean() stays an amortised per-item figure.
func (t *Timed) PredictBatch(x *tensor.Tensor, confThresh float64) [][]metrics.Detection {
	start := time.Now()
	out := PredictBatch(t.inner, x, confThresh)
	t.rec.ObserveBatch(t.stage, time.Since(start), len(out))
	return out
}
