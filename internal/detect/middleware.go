package detect

import (
	"hash/maphash"
	"math"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Middleware decorators wrap a Detector with cross-cutting behaviour while
// preserving its name, so a decorated backend still reports as itself in
// tables and logs. Decorators compose by nesting:
//
//	d = detect.WithTiming(detect.WithResultCache(detect.WithNMS(base, 0.2), 64), timings)

// floorDetector drops detections below a confidence floor, whatever
// threshold the caller asked for — the deployment knob the device
// experiments turn (Section VI-C raises the operating threshold to keep
// screen-level precision up).
type floorDetector struct {
	inner Detector
	floor float64
}

// WithConfidenceFloor enforces a minimum confidence: the effective threshold
// of every call is max(confThresh, floor).
func WithConfidenceFloor(d Detector, floor float64) Detector {
	return floorDetector{inner: d, floor: floor}
}

func (f floorDetector) Name() string { return f.inner.Name() }

func (f floorDetector) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	return f.inner.PredictTensor(x, n, math.Max(confThresh, f.floor))
}

// nmsDetector applies class-aware non-maximum suppression to the inner
// detector's output, for backends that do not already suppress duplicates.
type nmsDetector struct {
	inner Detector
	iou   float64
}

// WithNMS suppresses same-class detections overlapping above iou.
func WithNMS(d Detector, iou float64) Detector {
	return nmsDetector{inner: d, iou: iou}
}

func (m nmsDetector) Name() string { return m.inner.Name() }

func (m nmsDetector) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	return metrics.NMS(m.inner.PredictTensor(x, n, confThresh), m.iou)
}

// Cache memoises inference results keyed on the screenshot's tensor content,
// so an unchanged screen (the common case: debounce fires on cosmetic churn
// that dies outside the model's downsampled view) skips re-inference
// entirely. Eviction is FIFO at the configured capacity. Safe for concurrent
// use.
type Cache struct {
	inner    Detector
	capacity int

	mu      sync.Mutex
	entries map[uint64][]metrics.Detection
	order   []uint64
	hits    int
	misses  int
}

// DefaultCacheCapacity bounds the cache when WithResultCache is given a
// non-positive capacity.
const DefaultCacheCapacity = 32

// WithResultCache wraps d with a content-hash result cache holding up to
// capacity screens.
func WithResultCache(d Detector, capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{inner: d, capacity: capacity, entries: map[uint64][]metrics.Detection{}}
}

// Name reports the inner backend's name.
func (c *Cache) Name() string { return c.inner.Name() }

// Hits returns how many calls were answered from the cache.
func (c *Cache) Hits() int { c.mu.Lock(); defer c.mu.Unlock(); return c.hits }

// Misses returns how many calls ran the inner detector.
func (c *Cache) Misses() int { c.mu.Lock(); defer c.mu.Unlock(); return c.misses }

// Len returns the number of cached screens.
func (c *Cache) Len() int { c.mu.Lock(); defer c.mu.Unlock(); return len(c.entries) }

// cacheSeed is fixed so keys are stable within a process run.
var cacheSeed = maphash.MakeSeed()

// key hashes batch item n's pixels plus the threshold. Hashing ~46k floats
// costs microseconds against the ~10ms+ a conv backbone costs, so a hit is
// three orders of magnitude cheaper than inference.
func cacheKey(x *tensor.Tensor, n int, confThresh float64) (uint64, bool) {
	if x == nil || len(x.Shape) == 0 {
		return 0, false
	}
	per := 1
	for _, d := range x.Shape[1:] {
		per *= d
	}
	lo, hi := n*per, (n+1)*per
	if lo < 0 || hi > len(x.Data) {
		return 0, false
	}
	var h maphash.Hash
	h.SetSeed(cacheSeed)
	var buf [8]byte
	putU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	putU64(math.Float64bits(confThresh))
	for i := lo; i < hi; i += 2 {
		v := uint64(math.Float32bits(x.Data[i]))
		if i+1 < hi {
			v |= uint64(math.Float32bits(x.Data[i+1])) << 32
		}
		putU64(v)
	}
	return h.Sum64(), true
}

// PredictTensor answers from the cache when the screen content is unchanged
// and delegates (then memoises) otherwise. Returned slices are fresh copies:
// the pipeline scales detection boxes in place.
func (c *Cache) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	key, ok := cacheKey(x, n, confThresh)
	if !ok {
		return c.inner.PredictTensor(x, n, confThresh)
	}
	c.mu.Lock()
	if dets, hit := c.entries[key]; hit {
		c.hits++
		c.mu.Unlock()
		return append([]metrics.Detection(nil), dets...)
	}
	c.misses++
	c.mu.Unlock()

	dets := c.inner.PredictTensor(x, n, confThresh)

	c.mu.Lock()
	if _, dup := c.entries[key]; !dup {
		if len(c.order) >= c.capacity {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, oldest)
		}
		c.entries[key] = append([]metrics.Detection(nil), dets...)
		c.order = append(c.order, key)
	}
	c.mu.Unlock()
	return dets
}

// Timed reports every inference's wall-clock latency into a
// perfmodel.Timings accumulator under the given stage label.
type Timed struct {
	inner Detector
	stage string
	rec   *perfmodel.Timings
}

// WithTiming wraps d so each PredictTensor call is timed into rec under
// stage (empty means "infer").
func WithTiming(d Detector, rec *perfmodel.Timings, stage string) *Timed {
	if stage == "" {
		stage = "infer"
	}
	return &Timed{inner: d, stage: stage, rec: rec}
}

// Name reports the inner backend's name.
func (t *Timed) Name() string { return t.inner.Name() }

// PredictTensor delegates, recording the call's latency.
func (t *Timed) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	start := time.Now()
	dets := t.inner.PredictTensor(x, n, confThresh)
	t.rec.Observe(t.stage, time.Since(start))
	return dets
}
