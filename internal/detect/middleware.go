package detect

import (
	"context"
	"math"
	"time"

	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Middleware decorators wrap a Detector with cross-cutting behaviour while
// preserving its name, so a decorated backend still reports as itself in
// tables and logs. Decorators compose by nesting:
//
//	d = detect.WithTiming(detect.WithResultCache(detect.WithNMS(base, 0.2), 64), timings)

// floorDetector drops detections below a confidence floor, whatever
// threshold the caller asked for — the deployment knob the device
// experiments turn (Section VI-C raises the operating threshold to keep
// screen-level precision up).
type floorDetector struct {
	inner Detector
	floor float64
}

// WithConfidenceFloor enforces a minimum confidence: the effective threshold
// of every call is max(confThresh, floor).
func WithConfidenceFloor(d Detector, floor float64) Detector {
	return floorDetector{inner: d, floor: floor}
}

func (f floorDetector) Name() string { return f.inner.Name() }

func (f floorDetector) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	return f.inner.PredictTensor(x, n, math.Max(confThresh, f.floor))
}

// PredictBatch applies the floor once and forwards the whole batch.
func (f floorDetector) PredictBatch(x *tensor.Tensor, confThresh float64) [][]metrics.Detection {
	return PredictBatch(f.inner, x, math.Max(confThresh, f.floor))
}

// PredictTensorCtx applies the floor and forwards the context.
func (f floorDetector) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, confThresh float64) ([]metrics.Detection, error) {
	return Predict(ctx, f.inner, x, n, math.Max(confThresh, f.floor))
}

// PredictBatchCtx applies the floor once and forwards context and batch.
func (f floorDetector) PredictBatchCtx(ctx context.Context, x *tensor.Tensor, confThresh float64) ([][]metrics.Detection, error) {
	return PredictBatchCtx(ctx, f.inner, x, math.Max(confThresh, f.floor))
}

// nmsDetector applies class-aware non-maximum suppression to the inner
// detector's output, for backends that do not already suppress duplicates.
type nmsDetector struct {
	inner Detector
	iou   float64
}

// WithNMS suppresses same-class detections overlapping above iou.
func WithNMS(d Detector, iou float64) Detector {
	return nmsDetector{inner: d, iou: iou}
}

func (m nmsDetector) Name() string { return m.inner.Name() }

func (m nmsDetector) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	return metrics.NMS(m.inner.PredictTensor(x, n, confThresh), m.iou)
}

// PredictBatch suppresses duplicates within each item independently:
// detections never compete across screens.
func (m nmsDetector) PredictBatch(x *tensor.Tensor, confThresh float64) [][]metrics.Detection {
	out := PredictBatch(m.inner, x, confThresh)
	for i := range out {
		out[i] = metrics.NMS(out[i], m.iou)
	}
	return out
}

// PredictTensorCtx suppresses duplicates on the ctx-aware path; a cancelled
// inner call propagates its error with nothing to suppress.
func (m nmsDetector) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, confThresh float64) ([]metrics.Detection, error) {
	dets, err := Predict(ctx, m.inner, x, n, confThresh)
	if err != nil {
		return nil, err
	}
	return metrics.NMS(dets, m.iou), nil
}

// PredictBatchCtx mirrors PredictBatch on the ctx-aware path.
func (m nmsDetector) PredictBatchCtx(ctx context.Context, x *tensor.Tensor, confThresh float64) ([][]metrics.Detection, error) {
	out, err := PredictBatchCtx(ctx, m.inner, x, confThresh)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i] = metrics.NMS(out[i], m.iou)
	}
	return out, nil
}

// Timed reports every inference's wall-clock latency into a
// perfmodel.Timings accumulator under the given stage label.
type Timed struct {
	inner Detector
	stage string
	rec   *perfmodel.Timings
}

// WithTiming wraps d so each PredictTensor call is timed into rec under
// stage (empty means "infer"). A nil rec disables recording without
// disabling the wrapper, so callers can thread an optional recorder through
// unconditionally.
func WithTiming(d Detector, rec *perfmodel.Timings, stage string) *Timed {
	if stage == "" {
		stage = "infer"
	}
	return &Timed{inner: d, stage: stage, rec: rec}
}

// Name reports the inner backend's name.
func (t *Timed) Name() string { return t.inner.Name() }

// PredictTensor delegates, recording the call's latency.
func (t *Timed) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	start := time.Now()
	dets := t.inner.PredictTensor(x, n, confThresh)
	t.rec.Observe(t.stage, time.Since(start))
	return dets
}

// PredictBatch delegates the whole batch, recording its wall-clock latency
// together with the item count, so the stage's Count tracks screens
// processed and Mean() stays an amortised per-item figure.
func (t *Timed) PredictBatch(x *tensor.Tensor, confThresh float64) [][]metrics.Detection {
	start := time.Now()
	out := PredictBatch(t.inner, x, confThresh)
	t.rec.ObserveBatch(t.stage, time.Since(start), len(out))
	return out
}

// PredictTensorCtx delegates with the context, recording completed calls
// under the stage label and aborted ones under "<stage>-aborted", so
// cancelled partials never skew the inference latency distribution.
func (t *Timed) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, confThresh float64) ([]metrics.Detection, error) {
	start := time.Now()
	dets, err := Predict(ctx, t.inner, x, n, confThresh)
	if err != nil {
		t.rec.Observe(t.stage+"-aborted", time.Since(start))
		return nil, err
	}
	t.rec.Observe(t.stage, time.Since(start))
	return dets, nil
}

// PredictBatchCtx mirrors PredictBatch's amortised accounting on the
// ctx-aware path, with aborted batches recorded like PredictTensorCtx.
func (t *Timed) PredictBatchCtx(ctx context.Context, x *tensor.Tensor, confThresh float64) ([][]metrics.Detection, error) {
	start := time.Now()
	out, err := PredictBatchCtx(ctx, t.inner, x, confThresh)
	if err != nil {
		t.rec.Observe(t.stage+"-aborted", time.Since(start))
		return nil, err
	}
	t.rec.ObserveBatch(t.stage, time.Since(start), len(out))
	return out, nil
}
