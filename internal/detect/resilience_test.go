package detect

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// flakyBackend fails (error, panic, or corrupt result) for its first
// failures calls on the ctx seams, then serves dets. The legacy seam panics
// if reached — resilience wrappers must route everything through the ctx
// path.
type flakyBackend struct {
	name     string
	dets     []metrics.Detection
	failures int
	err      error // error to return while failing; nil means panic
	corrupt  bool  // return a NaN result instead of an error while failing
	calls    int
}

func (f *flakyBackend) Name() string {
	if f.name == "" {
		return "flaky"
	}
	return f.name
}

func (f *flakyBackend) PredictTensor(_ *tensor.Tensor, _ int, _ float64) []metrics.Detection {
	panic("legacy seam should not be reached")
}

func (f *flakyBackend) serve() ([]metrics.Detection, error) {
	f.calls++
	if f.calls <= f.failures {
		switch {
		case f.corrupt:
			return []metrics.Detection{{B: det(math.NaN(), 0, 1, 1, 0.5).B, Score: 0.5}}, nil
		case f.err != nil:
			return nil, f.err
		default:
			panic("flaky backend crash")
		}
	}
	return append([]metrics.Detection(nil), f.dets...), nil
}

func (f *flakyBackend) PredictTensorCtx(ctx context.Context, _ *tensor.Tensor, _ int, _ float64) ([]metrics.Detection, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return f.serve()
}

func (f *flakyBackend) PredictBatchCtx(ctx context.Context, x *tensor.Tensor, _ float64) ([][]metrics.Detection, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dets, err := f.serve()
	if err != nil {
		return nil, err
	}
	out := make([][]metrics.Detection, x.Shape[0])
	for i := range out {
		out[i] = append([]metrics.Detection(nil), dets...)
	}
	return out, nil
}

func healthyDets() []metrics.Detection {
	return []metrics.Detection{det(10, 20, 30, 40, 0.9), det(1, 2, 3, 4, 0.5)}
}

func sameDets(a, b []metrics.Detection) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func resTensor(n int) *tensor.Tensor {
	x := tensor.New(n, 1, 2, 2)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	return x
}

func TestValidDetections(t *testing.T) {
	cases := []struct {
		name string
		dets []metrics.Detection
		want bool
	}{
		{"empty", nil, true},
		{"healthy", healthyDets(), true},
		{"nan box", []metrics.Detection{det(math.NaN(), 0, 1, 1, 0.5)}, false},
		{"inf box", []metrics.Detection{det(0, math.Inf(1), 1, 1, 0.5)}, false},
		{"negative width", []metrics.Detection{det(0, 0, -1, 1, 0.5)}, false},
		{"negative height", []metrics.Detection{det(0, 0, 1, -1, 0.5)}, false},
		{"score above one", []metrics.Detection{det(0, 0, 1, 1, 1.5)}, false},
		{"score below zero", []metrics.Detection{det(0, 0, 1, 1, -0.1)}, false},
		{"nan score", []metrics.Detection{det(0, 0, 1, 1, math.NaN())}, false},
		{"zero size ok", []metrics.Detection{det(5, 5, 0, 0, 0)}, true},
	}
	for _, c := range cases {
		if got := ValidDetections(c.dets); got != c.want {
			t.Errorf("%s: ValidDetections = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestWithRecoveryConvertsPanics(t *testing.T) {
	b := &flakyBackend{dets: healthyDets(), failures: 1} // panic once
	r := WithRecovery(b)
	x := resTensor(1)

	_, err := r.PredictTensorCtx(context.Background(), x, 0, 0.5)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want *PanicError", err)
	}
	if pe.Value != "flaky backend crash" {
		t.Fatalf("recovered value = %v", pe.Value)
	}
	// The backend has now used up its failure; the pass-through is intact.
	dets, err := r.PredictTensorCtx(context.Background(), x, 0, 0.5)
	if err != nil || !sameDets(dets, healthyDets()) {
		t.Fatalf("healthy pass-through: dets=%v err=%v", dets, err)
	}
	if r.Name() != "flaky" {
		t.Fatalf("Name = %q", r.Name())
	}
}

func TestRetryTransparentOnSuccess(t *testing.T) {
	b := &flakyBackend{dets: healthyDets()}
	r := WithRetry(b, RetryOptions{})
	x := resTensor(1)

	dets, err := r.PredictTensorCtx(context.Background(), x, 0, 0.5)
	if err != nil {
		t.Fatalf("PredictTensorCtx: %v", err)
	}
	if !sameDets(dets, healthyDets()) {
		t.Fatalf("retry altered a successful result: %v", dets)
	}
	if b.calls != 1 {
		t.Fatalf("backend called %d times, want 1", b.calls)
	}
	st := r.Stats()
	if st.Calls != 1 || st.Retries != 0 || st.Recovered != 0 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryRecoversAfterFailures(t *testing.T) {
	rec := &perfmodel.Timings{}
	b := &flakyBackend{dets: healthyDets(), failures: 2, err: errors.New("transient")}
	r := WithRetry(b, RetryOptions{MaxAttempts: 3, BaseDelay: 1, MaxDelay: 1, Timings: rec})
	dets, err := r.PredictTensorCtx(context.Background(), resTensor(1), 0, 0.5)
	if err != nil {
		t.Fatalf("retry should have recovered: %v", err)
	}
	if !sameDets(dets, healthyDets()) {
		t.Fatalf("recovered result differs: %v", dets)
	}
	st := r.Stats()
	if st.Retries != 2 || st.Recovered != 1 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if snap := rec.Snapshot(); snap["detect-retry"].Count != 2 {
		t.Fatalf("timings: %+v", snap)
	}
}

func TestRetryRecoversPanics(t *testing.T) {
	b := &flakyBackend{dets: healthyDets(), failures: 1} // panic once
	r := WithRetry(b, RetryOptions{BaseDelay: 1, MaxDelay: 1})
	dets, err := r.PredictTensorCtx(context.Background(), resTensor(1), 0, 0.5)
	if err != nil || !sameDets(dets, healthyDets()) {
		t.Fatalf("dets=%v err=%v", dets, err)
	}
}

func TestRetryExhaustsAndReportsLastError(t *testing.T) {
	boom := errors.New("boom")
	b := &flakyBackend{dets: healthyDets(), failures: 100, err: boom}
	r := WithRetry(b, RetryOptions{MaxAttempts: 3, BaseDelay: 1, MaxDelay: 1})
	_, err := r.PredictTensorCtx(context.Background(), resTensor(1), 0, 0.5)
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	if b.calls != 3 {
		t.Fatalf("backend called %d times, want 3", b.calls)
	}
	if st := r.Stats(); st.Failures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryRejectsCorruptResults(t *testing.T) {
	b := &flakyBackend{dets: healthyDets(), failures: 100, corrupt: true}
	r := WithRetry(b, RetryOptions{MaxAttempts: 2, BaseDelay: 1, MaxDelay: 1})
	_, err := r.PredictTensorCtx(context.Background(), resTensor(1), 0, 0.5)
	if !errors.Is(err, ErrCorruptResult) {
		t.Fatalf("error = %v, want ErrCorruptResult", err)
	}
}

func TestRetryNeverRetriesCancellation(t *testing.T) {
	b := &flakyBackend{dets: healthyDets(), failures: 100, err: errors.New("x")}
	r := WithRetry(b, RetryOptions{MaxAttempts: 5, BaseDelay: 1, MaxDelay: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.PredictTensorCtx(ctx, resTensor(1), 0, 0.5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want Canceled", err)
	}
	if b.calls != 0 {
		t.Fatalf("backend attempted %d times under a dead context", b.calls)
	}

	// A backend surfacing the caller's cancellation mid-call is also not
	// retried.
	b2 := &flakyBackend{dets: healthyDets(), failures: 100, err: context.Canceled}
	r2 := WithRetry(b2, RetryOptions{MaxAttempts: 5, BaseDelay: 1, MaxDelay: 1})
	_, err = r2.PredictTensorCtx(context.Background(), resTensor(1), 0, 0.5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want Canceled", err)
	}
	if b2.calls != 1 {
		t.Fatalf("backend attempted %d times on a cancellation error, want 1", b2.calls)
	}
}

func TestRetryBatchSeam(t *testing.T) {
	b := &flakyBackend{dets: healthyDets(), failures: 1, err: errors.New("transient")}
	r := WithRetry(b, RetryOptions{BaseDelay: 1, MaxDelay: 1})
	out, err := r.PredictBatchCtx(context.Background(), resTensor(3), 0.5)
	if err != nil {
		t.Fatalf("PredictBatchCtx: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("batch: %d items", len(out))
	}
	for i := range out {
		if !sameDets(out[i], healthyDets()) {
			t.Fatalf("item %d differs: %v", i, out[i])
		}
	}
}

func TestFallbackPrimaryOnlyWhenHealthy(t *testing.T) {
	primary := &flakyBackend{name: "primary", dets: healthyDets()}
	secondary := &flakyBackend{name: "secondary", dets: []metrics.Detection{det(0, 0, 1, 1, 0.1)}}
	f := WithFallback(FallbackOptions{}, primary, secondary)

	dets, err := f.PredictTensorCtx(context.Background(), resTensor(1), 0, 0.5)
	if err != nil || !sameDets(dets, healthyDets()) {
		t.Fatalf("dets=%v err=%v", dets, err)
	}
	if secondary.calls != 0 {
		t.Fatalf("secondary ran %d times while primary was healthy", secondary.calls)
	}
	if f.Name() != "primary" {
		t.Fatalf("Name = %q", f.Name())
	}
	if st := f.Stats(); st.FellBack != 0 || st.Calls != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFallbackServesFromSecondary(t *testing.T) {
	rec := &perfmodel.Timings{}
	primary := &flakyBackend{name: "primary", dets: healthyDets(), failures: 100, err: errors.New("down")}
	secondary := &flakyBackend{name: "secondary", dets: healthyDets()}
	f := WithFallback(FallbackOptions{Timings: rec}, primary, secondary)

	dets, err := f.PredictTensorCtx(context.Background(), resTensor(1), 0, 0.5)
	if err != nil || !sameDets(dets, healthyDets()) {
		t.Fatalf("dets=%v err=%v", dets, err)
	}
	st := f.Stats()
	if st.FellBack != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Backends[0].Failures != 1 || st.Backends[1].Successes != 1 {
		t.Fatalf("backend health = %+v", st.Backends)
	}
	if snap := rec.Snapshot(); snap["detect-fallback"].Count != 1 {
		t.Fatalf("timings: %+v", snap)
	}
}

func TestFallbackAllBackendsFailed(t *testing.T) {
	primary := &flakyBackend{name: "primary", failures: 100, err: errors.New("down")}
	secondary := &flakyBackend{name: "secondary", failures: 100} // panics
	f := WithFallback(FallbackOptions{}, primary, secondary)

	_, err := f.PredictTensorCtx(context.Background(), resTensor(1), 0, 0.5)
	if !errors.Is(err, ErrAllBackendsFailed) {
		t.Fatalf("error = %v, want ErrAllBackendsFailed", err)
	}
	if st := f.Stats(); st.Failures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBreakerOpensCoolsAndCloses(t *testing.T) {
	rec := &perfmodel.Timings{}
	primary := &flakyBackend{name: "primary", dets: healthyDets(), failures: 2, err: errors.New("down")}
	secondary := &flakyBackend{name: "secondary", dets: healthyDets()}
	f := WithFallback(FallbackOptions{BreakAfter: 2, Cooldown: 3, Timings: rec}, primary, secondary)
	x := resTensor(1)
	call := func() {
		t.Helper()
		if _, err := f.PredictTensorCtx(context.Background(), x, 0, 0.5); err != nil {
			t.Fatalf("chain call failed: %v", err)
		}
	}

	// Calls 1-2 fail on primary (served by secondary) and open the breaker.
	call()
	call()
	st := f.Stats()
	if !st.Backends[0].Open || st.Backends[0].Tripped != 1 {
		t.Fatalf("breaker should be open after 2 consecutive failures: %+v", st.Backends[0])
	}
	if snap := rec.Snapshot(); snap["detect-breaker-open"].Count != 1 {
		t.Fatalf("timings: %+v", snap)
	}

	// Calls 3-5 sit out the cooldown: primary must not run at all.
	before := primary.calls
	call()
	call()
	call()
	if primary.calls != before {
		t.Fatalf("primary ran during cooldown")
	}

	// Call 6 is the half-open probe; the backend has healed (failures spent),
	// so the probe succeeds and the breaker closes.
	call()
	st = f.Stats()
	if st.Backends[0].Open {
		t.Fatalf("breaker still open after successful probe: %+v", st.Backends[0])
	}
	if primary.calls != before+1 {
		t.Fatalf("probe should have run primary exactly once, ran %d", primary.calls-before)
	}

	// Call 7 is served by the healthy primary again.
	fellBack := f.Stats().FellBack
	call()
	if f.Stats().FellBack != fellBack {
		t.Fatalf("healthy primary should serve after the breaker closes")
	}
}

func TestBreakerFailedProbeReArmsCooldown(t *testing.T) {
	primary := &flakyBackend{name: "primary", dets: healthyDets(), failures: 100, err: errors.New("down")}
	secondary := &flakyBackend{name: "secondary", dets: healthyDets()}
	f := WithFallback(FallbackOptions{BreakAfter: 1, Cooldown: 2}, primary, secondary)
	x := resTensor(1)

	// Call 1 opens the breaker; calls 2-3 cool down; call 4 probes and fails.
	for i := 0; i < 4; i++ {
		if _, err := f.PredictTensorCtx(context.Background(), x, 0, 0.5); err != nil {
			t.Fatalf("call %d: %v", i+1, err)
		}
	}
	if primary.calls != 2 {
		t.Fatalf("primary ran %d times, want 2 (initial failure + one probe)", primary.calls)
	}
	st := f.Stats()
	if !st.Backends[0].Open {
		t.Fatalf("breaker should stay open after a failed probe")
	}
	// The failed probe re-armed the cooldown: the next 2 calls sit out again.
	for i := 0; i < 2; i++ {
		f.PredictTensorCtx(context.Background(), x, 0, 0.5)
	}
	if primary.calls != 2 {
		t.Fatalf("primary ran during the re-armed cooldown")
	}
}

func TestFallbackAllCircuitBroken(t *testing.T) {
	primary := &flakyBackend{name: "primary", failures: 100, err: errors.New("down")}
	f := WithFallback(FallbackOptions{BreakAfter: 1, Cooldown: 10}, primary)
	x := resTensor(1)
	f.PredictTensorCtx(context.Background(), x, 0, 0.5) // opens the breaker
	_, err := f.PredictTensorCtx(context.Background(), x, 0, 0.5)
	if !errors.Is(err, ErrAllBackendsFailed) {
		t.Fatalf("error = %v", err)
	}
	if primary.calls != 1 {
		t.Fatalf("primary ran %d times, want 1", primary.calls)
	}
}

func TestFallbackPropagatesCancellation(t *testing.T) {
	primary := &flakyBackend{name: "primary", dets: healthyDets()}
	f := WithFallback(FallbackOptions{}, primary)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := f.PredictTensorCtx(ctx, resTensor(1), 0, 0.5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v", err)
	}
	if primary.calls != 0 {
		t.Fatalf("primary ran under a dead context")
	}
	// The cancellation is not charged to the backend's health.
	if st := f.Stats(); st.Backends[0].Failures != 0 {
		t.Fatalf("cancellation charged to backend health: %+v", st.Backends[0])
	}
}

func TestFallbackBatchSeam(t *testing.T) {
	primary := &flakyBackend{name: "primary", failures: 100, err: errors.New("down")}
	secondary := &flakyBackend{name: "secondary", dets: healthyDets()}
	f := WithFallback(FallbackOptions{}, primary, secondary)
	out, err := f.PredictBatchCtx(context.Background(), resTensor(2), 0.5)
	if err != nil || len(out) != 2 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	for i := range out {
		if !sameDets(out[i], healthyDets()) {
			t.Fatalf("item %d differs", i)
		}
	}
}

func TestWithFallbackPanicsOnEmptyChain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic for empty chain")
		}
	}()
	WithFallback(FallbackOptions{})
}
