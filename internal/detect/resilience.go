package detect

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// This file is the resilience layer of the detector seam: panic-to-error
// recovery, bounded retry with backoff, and health-tracked fallback chains
// with circuit breaking. The layer's contract has two halves:
//
//   - Transparent when healthy: with no faults, a wrapped stack returns
//     bit-identical results to the bare backend (the equivalence the
//     property tests pin), because every wrapper's success path hands the
//     inner result through untouched.
//   - Contained when faulty: a panic becomes an error at the seam, an error
//     is retried with backoff then handed to the next backend in the chain,
//     a persistently failing backend is circuit-broken out of the rotation,
//     and a corrupt result (NaN boxes, out-of-range scores) is treated as a
//     failure rather than handed downstream.

// PanicError wraps a panic recovered at the detector seam, so one bad
// screen surfaces as an inference error instead of killing the process.
type PanicError struct{ Value any }

// Error describes the recovered panic.
func (e *PanicError) Error() string { return fmt.Sprintf("detect: backend panicked: %v", e.Value) }

// ErrCorruptResult marks a result that failed validation (non-finite or
// negative-size boxes, scores outside [0, 1]).
var ErrCorruptResult = errors.New("detect: backend returned corrupt detections")

// ErrAllBackendsFailed is wrapped by a fallback chain when no backend could
// serve a call; errors.Is recognises it under the per-backend detail.
var ErrAllBackendsFailed = errors.New("detect: all fallback backends failed")

// ValidDetections reports whether every detection is structurally sane:
// finite box coordinates, non-negative box sizes, and a finite score in
// [0, 1]. It is the default validation hook of the retry and fallback
// wrappers — the guard that stops a corrupted tensor from flowing into
// decoration as a NaN-positioned overlay.
func ValidDetections(dets []metrics.Detection) bool {
	for _, d := range dets {
		b := d.B
		if !finite(b.X) || !finite(b.Y) || !finite(b.W) || !finite(b.H) {
			return false
		}
		if b.W < 0 || b.H < 0 {
			return false
		}
		if !finite(d.Score) || d.Score < 0 || d.Score > 1 {
			return false
		}
	}
	return true
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// validBatch applies valid to every item of a batch result.
func validBatch(out [][]metrics.Detection, valid func([]metrics.Detection) bool) bool {
	for _, dets := range out {
		if !valid(dets) {
			return false
		}
	}
	return true
}

// isCtxError reports whether err is a cancellation or deadline expiry —
// caller-initiated conditions that resilience must propagate, never retry
// or fall back on (the caller has left; more compute helps nobody).
func isCtxError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ---------------------------------------------------------------------------
// Recovery

// Recovered converts inner-backend panics to *PanicError at every seam.
type Recovered struct{ inner Detector }

// WithRecovery wraps d so a panicking call returns an error (ctx seams) or
// an empty result (legacy seams, which have no error channel) instead of
// unwinding the caller. Healthy calls pass through untouched.
func WithRecovery(d Detector) *Recovered { return &Recovered{inner: d} }

// Name reports the inner backend's name.
func (r *Recovered) Name() string { return r.inner.Name() }

// PredictTensorCtx delegates, converting a panic to *PanicError.
func (r *Recovered) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, conf float64) (dets []metrics.Detection, err error) {
	defer func() {
		if p := recover(); p != nil {
			dets, err = nil, &PanicError{Value: p}
		}
	}()
	return Predict(ctx, r.inner, x, n, conf)
}

// PredictBatchCtx delegates the batch, converting a panic to *PanicError.
func (r *Recovered) PredictBatchCtx(ctx context.Context, x *tensor.Tensor, conf float64) (out [][]metrics.Detection, err error) {
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, &PanicError{Value: p}
		}
	}()
	return PredictBatchCtx(ctx, r.inner, x, conf)
}

// PredictTensor delegates on the legacy seam; a panic yields no detections.
func (r *Recovered) PredictTensor(x *tensor.Tensor, n int, conf float64) (dets []metrics.Detection) {
	defer func() {
		if p := recover(); p != nil {
			dets = nil
		}
	}()
	return r.inner.PredictTensor(x, n, conf)
}

// PredictBatch delegates on the legacy batch seam; a panic yields nil.
func (r *Recovered) PredictBatch(x *tensor.Tensor, conf float64) (out [][]metrics.Detection) {
	defer func() {
		if p := recover(); p != nil {
			out = nil
		}
	}()
	return PredictBatch(r.inner, x, conf)
}

// ---------------------------------------------------------------------------
// Retry

// RetryOptions tune WithRetry. The zero value retries up to 3 attempts with
// 1ms..50ms backoff and default validation.
type RetryOptions struct {
	// MaxAttempts bounds total attempts (first try included); <= 0 means 3.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt up to MaxDelay. <= 0 means 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; <= 0 means 50ms.
	MaxDelay time.Duration
	// Seed seeds the jitter RNG so backoff sequences replay; 0 means 1.
	Seed int64
	// Validate accepts a result; a rejected result counts as a failed
	// attempt (ErrCorruptResult). Nil means ValidDetections.
	Validate func([]metrics.Detection) bool
	// Timings, when non-nil, counts retries under "detect-retry" and
	// exhausted calls under "detect-retry-failed".
	Timings *perfmodel.Timings
}

func (o RetryOptions) maxAttempts() int {
	if o.MaxAttempts <= 0 {
		return 3
	}
	return o.MaxAttempts
}

func (o RetryOptions) baseDelay() time.Duration {
	if o.BaseDelay <= 0 {
		return time.Millisecond
	}
	return o.BaseDelay
}

func (o RetryOptions) maxDelay() time.Duration {
	if o.MaxDelay <= 0 {
		return 50 * time.Millisecond
	}
	return o.MaxDelay
}

func (o RetryOptions) validate() func([]metrics.Detection) bool {
	if o.Validate == nil {
		return ValidDetections
	}
	return o.Validate
}

// RetryStats snapshots a Retrier's activity.
type RetryStats struct {
	// Calls counts inference calls through the wrapper.
	Calls int
	// Retries counts extra attempts made beyond each call's first.
	Retries int
	// Recovered counts calls that failed at least once and ultimately
	// succeeded — the screens retry actually saved.
	Recovered int
	// Failures counts calls that exhausted every attempt.
	Failures int
}

// Retrier retries failed inference calls with exponential backoff and
// jitter. Panics in the inner backend are recovered and count as failed
// attempts; cancellations and deadline expiries are never retried. Safe for
// concurrent use.
type Retrier struct {
	inner Detector
	opts  RetryOptions

	mu    sync.Mutex
	rng   *rand.Rand
	stats RetryStats
}

// WithRetry wraps d with bounded, backed-off retry.
func WithRetry(d Detector, opts RetryOptions) *Retrier {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &Retrier{inner: d, opts: opts, rng: rand.New(rand.NewSource(seed))}
}

// Name reports the inner backend's name.
func (r *Retrier) Name() string { return r.inner.Name() }

// Stats returns a snapshot of retry activity.
func (r *Retrier) Stats() RetryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// backoff sleeps before retry attempt (1-based), honouring ctx. The delay
// is BaseDelay doubled per attempt, capped at MaxDelay, with half-interval
// jitter drawn from the seeded RNG.
func (r *Retrier) backoff(ctx context.Context, attempt int) error {
	d := r.opts.baseDelay() << (attempt - 1)
	if max := r.opts.maxDelay(); d > max || d <= 0 {
		d = max
	}
	r.mu.Lock()
	jitter := time.Duration(r.rng.Int63n(int64(d)/2 + 1))
	r.mu.Unlock()
	d = d/2 + jitter
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *Retrier) noteCall() {
	r.mu.Lock()
	r.stats.Calls++
	r.mu.Unlock()
}

func (r *Retrier) noteRetry() {
	r.mu.Lock()
	r.stats.Retries++
	r.mu.Unlock()
	r.opts.Timings.AddItems("detect-retry", 1)
}

func (r *Retrier) noteRecovered() {
	r.mu.Lock()
	r.stats.Recovered++
	r.mu.Unlock()
}

func (r *Retrier) noteFailure() {
	r.mu.Lock()
	r.stats.Failures++
	r.mu.Unlock()
	r.opts.Timings.AddItems("detect-retry-failed", 1)
}

// attempt runs one recovered, validated inference attempt.
func (r *Retrier) attempt(ctx context.Context, x *tensor.Tensor, n int, conf float64) (dets []metrics.Detection, err error) {
	defer func() {
		if p := recover(); p != nil {
			dets, err = nil, &PanicError{Value: p}
		}
	}()
	dets, err = Predict(ctx, r.inner, x, n, conf)
	if err == nil && !r.opts.validate()(dets) {
		return nil, ErrCorruptResult
	}
	return dets, err
}

// attemptBatch is attempt for the batch seam, validating every item.
func (r *Retrier) attemptBatch(ctx context.Context, x *tensor.Tensor, conf float64) (out [][]metrics.Detection, err error) {
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, &PanicError{Value: p}
		}
	}()
	out, err = PredictBatchCtx(ctx, r.inner, x, conf)
	if err == nil && !validBatch(out, r.opts.validate()) {
		return nil, ErrCorruptResult
	}
	return out, err
}

// PredictTensorCtx runs the retry loop: up to MaxAttempts recovered,
// validated attempts separated by jittered exponential backoff. A first-try
// success is returned untouched (the bit-equality half of the contract); a
// cancellation or deadline expiry propagates immediately.
func (r *Retrier) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, conf float64) ([]metrics.Detection, error) {
	r.noteCall()
	var lastErr error
	for attempt := 0; attempt < r.opts.maxAttempts(); attempt++ {
		if attempt > 0 {
			if err := r.backoff(ctx, attempt); err != nil {
				return nil, err
			}
			r.noteRetry()
		}
		dets, err := r.attempt(ctx, x, n, conf)
		if err == nil {
			if attempt > 0 {
				r.noteRecovered()
			}
			return dets, nil
		}
		if isCtxError(err) || ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	r.noteFailure()
	return nil, lastErr
}

// PredictBatchCtx retries the whole batch: one forward serves every item, so
// the batch fails and retries as a unit. Per-item containment is the
// serving layer's job (Batcher poison isolation), not the retrier's.
func (r *Retrier) PredictBatchCtx(ctx context.Context, x *tensor.Tensor, conf float64) ([][]metrics.Detection, error) {
	r.noteCall()
	var lastErr error
	for attempt := 0; attempt < r.opts.maxAttempts(); attempt++ {
		if attempt > 0 {
			if err := r.backoff(ctx, attempt); err != nil {
				return nil, err
			}
			r.noteRetry()
		}
		out, err := r.attemptBatch(ctx, x, conf)
		if err == nil {
			if attempt > 0 {
				r.noteRecovered()
			}
			return out, nil
		}
		if isCtxError(err) || ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	r.noteFailure()
	return nil, lastErr
}

// PredictTensor serves the legacy seam through the retry loop; an exhausted
// call returns no detections (the seam has no error channel).
func (r *Retrier) PredictTensor(x *tensor.Tensor, n int, conf float64) []metrics.Detection {
	dets, _ := r.PredictTensorCtx(context.Background(), x, n, conf)
	return dets
}

// PredictBatch mirrors PredictTensor for the legacy batch seam.
func (r *Retrier) PredictBatch(x *tensor.Tensor, conf float64) [][]metrics.Detection {
	out, _ := r.PredictBatchCtx(context.Background(), x, conf)
	return out
}

// ---------------------------------------------------------------------------
// Fallback chain with circuit breaking

// FallbackOptions tune WithFallback. The zero value breaks a backend after
// 5 consecutive failures, sits it out for 32 calls, and uses default
// validation.
type FallbackOptions struct {
	// BreakAfter is the consecutive-failure count that opens a backend's
	// circuit breaker; <= 0 means 5.
	BreakAfter int
	// Cooldown is how many chain calls an open breaker sits out before a
	// half-open probe is allowed; <= 0 means 32. Counting calls instead of
	// wall-clock keeps chaos runs deterministic.
	Cooldown int
	// Validate accepts a result; rejected results count as backend failures
	// (ErrCorruptResult). Nil means ValidDetections.
	Validate func([]metrics.Detection) bool
	// Timings, when non-nil, counts fallback serves under "detect-fallback"
	// and breaker trips under "detect-breaker-open".
	Timings *perfmodel.Timings
}

func (o FallbackOptions) breakAfter() int {
	if o.BreakAfter <= 0 {
		return 5
	}
	return o.BreakAfter
}

func (o FallbackOptions) cooldown() int {
	if o.Cooldown <= 0 {
		return 32
	}
	return o.Cooldown
}

func (o FallbackOptions) validate() func([]metrics.Detection) bool {
	if o.Validate == nil {
		return ValidDetections
	}
	return o.Validate
}

// BackendHealth snapshots one chain member's health tracking.
type BackendHealth struct {
	// Name is the backend's registry name.
	Name string
	// Uses counts attempts routed to the backend (probes included).
	Uses int
	// Successes and Failures count those attempts' outcomes.
	Successes, Failures int
	// Consecutive is the current consecutive-failure streak.
	Consecutive int
	// Open reports whether the breaker is currently open.
	Open bool
	// Tripped counts how many times the breaker opened.
	Tripped int
}

// FallbackStats snapshots chain-level activity.
type FallbackStats struct {
	// Calls counts inference calls into the chain.
	Calls int
	// FellBack counts calls served by a backend other than the primary.
	FellBack int
	// Failures counts calls no backend could serve.
	Failures int
	// Backends holds each member's health, primary first.
	Backends []BackendHealth
}

// health is one backend's mutable breaker state.
type health struct {
	consec   int
	open     bool
	cooldown int
	uses     int
	succ     int
	fail     int
	tripped  int
}

// FallbackChain tries backends in order until one serves the call. Each
// backend's failures are tracked; BreakAfter consecutive failures open its
// circuit breaker, removing it from rotation for Cooldown calls, after which
// a single probe is allowed through (half-open) — a success closes the
// breaker, another failure re-opens it for a fresh cooldown. Panics and
// invalid results count as failures. Safe for concurrent use.
type FallbackChain struct {
	backends []Detector
	opts     FallbackOptions

	mu     sync.Mutex
	health []health
	stats  FallbackStats
}

// WithFallback chains backends primary-first. It panics when given no
// backends (a chain that can serve nothing is a programming error).
func WithFallback(opts FallbackOptions, backends ...Detector) *FallbackChain {
	if len(backends) == 0 {
		panic("detect: WithFallback requires at least one backend")
	}
	return &FallbackChain{
		backends: backends,
		opts:     opts,
		health:   make([]health, len(backends)),
	}
}

// Name reports the primary backend's name.
func (f *FallbackChain) Name() string { return f.backends[0].Name() }

// Stats returns a snapshot of chain activity and per-backend health.
func (f *FallbackChain) Stats() FallbackStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.stats
	st.Backends = make([]BackendHealth, len(f.backends))
	for i, h := range f.health {
		st.Backends[i] = BackendHealth{
			Name:        f.backends[i].Name(),
			Uses:        h.uses,
			Successes:   h.succ,
			Failures:    h.fail,
			Consecutive: h.consec,
			Open:        h.open,
			Tripped:     h.tripped,
		}
	}
	return st
}

// admit decides whether backend i may serve this call. An open breaker
// counts the call against its cooldown and, once the cooldown is spent,
// admits a half-open probe (the breaker stays open until that probe
// succeeds).
func (f *FallbackChain) admit(i int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	h := &f.health[i]
	if !h.open {
		return true
	}
	if h.cooldown > 0 {
		h.cooldown--
		return false
	}
	return true
}

// noteOutcome records one attempt's result on backend i, driving the
// breaker state machine.
func (f *FallbackChain) noteOutcome(i int, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	h := &f.health[i]
	h.uses++
	if ok {
		h.succ++
		h.consec = 0
		h.open = false
		return
	}
	h.fail++
	h.consec++
	if h.open {
		// Failed half-open probe: re-arm the cooldown.
		h.cooldown = f.opts.cooldown()
		return
	}
	if h.consec >= f.opts.breakAfter() {
		h.open = true
		h.cooldown = f.opts.cooldown()
		h.tripped++
		f.opts.Timings.AddItems("detect-breaker-open", 1)
	}
}

func (f *FallbackChain) noteCall() {
	f.mu.Lock()
	f.stats.Calls++
	f.mu.Unlock()
}

func (f *FallbackChain) noteServed(i int) {
	if i == 0 {
		return
	}
	f.mu.Lock()
	f.stats.FellBack++
	f.mu.Unlock()
	f.opts.Timings.AddItems("detect-fallback", 1)
}

func (f *FallbackChain) noteAllFailed() {
	f.mu.Lock()
	f.stats.Failures++
	f.mu.Unlock()
}

// try runs one recovered, validated attempt on backend i.
func (f *FallbackChain) try(ctx context.Context, i int, x *tensor.Tensor, n int, conf float64) (dets []metrics.Detection, err error) {
	defer func() {
		if p := recover(); p != nil {
			dets, err = nil, &PanicError{Value: p}
		}
	}()
	dets, err = Predict(ctx, f.backends[i], x, n, conf)
	if err == nil && !f.opts.validate()(dets) {
		return nil, ErrCorruptResult
	}
	return dets, err
}

// tryBatch is try for the batch seam.
func (f *FallbackChain) tryBatch(ctx context.Context, i int, x *tensor.Tensor, conf float64) (out [][]metrics.Detection, err error) {
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, &PanicError{Value: p}
		}
	}()
	out, err = PredictBatchCtx(ctx, f.backends[i], x, conf)
	if err == nil && !validBatch(out, f.opts.validate()) {
		return nil, ErrCorruptResult
	}
	return out, err
}

// PredictTensorCtx walks the chain: the first admitted backend that returns
// a valid result serves the call. Failures advance to the next backend;
// cancellations propagate immediately without being charged to anyone's
// health (the caller left — the backend did nothing wrong).
func (f *FallbackChain) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, conf float64) ([]metrics.Detection, error) {
	f.noteCall()
	var lastErr error
	for i := range f.backends {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !f.admit(i) {
			continue
		}
		dets, err := f.try(ctx, i, x, n, conf)
		if err == nil {
			f.noteOutcome(i, true)
			f.noteServed(i)
			return dets, nil
		}
		if isCtxError(err) && ctx.Err() != nil {
			return nil, err
		}
		f.noteOutcome(i, false)
		lastErr = err
	}
	f.noteAllFailed()
	if lastErr == nil {
		// Every breaker was open and in cooldown; nothing even ran.
		return nil, fmt.Errorf("%w (all %d circuit-broken)", ErrAllBackendsFailed, len(f.backends))
	}
	return nil, fmt.Errorf("%w: last: %v", ErrAllBackendsFailed, lastErr)
}

// PredictBatchCtx mirrors PredictTensorCtx on the batch seam: whole-batch
// attempts per backend, walking the chain on failure.
func (f *FallbackChain) PredictBatchCtx(ctx context.Context, x *tensor.Tensor, conf float64) ([][]metrics.Detection, error) {
	f.noteCall()
	var lastErr error
	for i := range f.backends {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !f.admit(i) {
			continue
		}
		out, err := f.tryBatch(ctx, i, x, conf)
		if err == nil {
			f.noteOutcome(i, true)
			f.noteServed(i)
			return out, nil
		}
		if isCtxError(err) && ctx.Err() != nil {
			return nil, err
		}
		f.noteOutcome(i, false)
		lastErr = err
	}
	f.noteAllFailed()
	if lastErr == nil {
		return nil, fmt.Errorf("%w (all %d circuit-broken)", ErrAllBackendsFailed, len(f.backends))
	}
	return nil, fmt.Errorf("%w: last: %v", ErrAllBackendsFailed, lastErr)
}

// PredictTensor serves the legacy seam through the chain; when nothing can
// serve, it returns no detections.
func (f *FallbackChain) PredictTensor(x *tensor.Tensor, n int, conf float64) []metrics.Detection {
	dets, _ := f.PredictTensorCtx(context.Background(), x, n, conf)
	return dets
}

// PredictBatch mirrors PredictTensor for the legacy batch seam.
func (f *FallbackChain) PredictBatch(x *tensor.Tensor, conf float64) [][]metrics.Detection {
	out, _ := f.PredictBatchCtx(context.Background(), x, conf)
	return out
}
