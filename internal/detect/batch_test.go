package detect

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/auigen"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/yolite"
)

// randomBatch builds an [n, 3, H, W] tensor of deterministic pseudo-random
// screen content, each item distinct.
func randomBatch(n int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(n, 3, yolite.InputH, yolite.InputW)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	return x
}

// batchStub is a natively batch-capable stub that records the batch sizes it
// was handed.
type batchStub struct {
	stubDetector
	batchSizes []int
}

func (s *batchStub) PredictBatch(x *tensor.Tensor, confThresh float64) [][]metrics.Detection {
	s.batchSizes = append(s.batchSizes, x.Shape[0])
	out := make([][]metrics.Detection, x.Shape[0])
	for i := range out {
		out[i] = s.PredictTensor(x, i, confThresh)
	}
	return out
}

// TestPredictBatchEquivalence is the tentpole's correctness contract: the
// native batch paths of the float and int8 backends must return exactly what
// a per-item PredictTensor loop returns, for every item — and the ctx-aware
// seam on an uncancellable context must return exactly the same bits again.
func TestPredictBatchEquivalence(t *testing.T) {
	m := yolite.NewModel(3)
	qm := quant.Port(m, nil)
	x := randomBatch(4, 42)
	for _, tc := range []struct {
		name string
		p    Predictor
	}{
		{"yolite", m},
		{"yolite-int8", qm},
	} {
		batched := PredictBatch(tc.p, x, 0.3)
		if len(batched) != 4 {
			t.Fatalf("%s: PredictBatch returned %d items, want 4", tc.name, len(batched))
		}
		ctxBatched, err := PredictBatchCtx(context.Background(), tc.p, x, 0.3)
		if err != nil {
			t.Fatalf("%s: PredictBatchCtx(Background) err = %v", tc.name, err)
		}
		if !reflect.DeepEqual(ctxBatched, batched) {
			t.Errorf("%s: ctx batch path diverged from legacy batch path", tc.name)
		}
		total := 0
		for n := 0; n < 4; n++ {
			loop := tc.p.PredictTensor(x, n, 0.3)
			if !reflect.DeepEqual(batched[n], loop) {
				t.Errorf("%s item %d: batch %v != per-item %v", tc.name, n, batched[n], loop)
			}
			ctxLoop, err := Predict(context.Background(), tc.p, x, n, 0.3)
			if err != nil {
				t.Fatalf("%s item %d: Predict(Background) err = %v", tc.name, n, err)
			}
			if !reflect.DeepEqual(ctxLoop, loop) {
				t.Errorf("%s item %d: ctx path %v != legacy %v", tc.name, n, ctxLoop, loop)
			}
			total += len(loop)
		}
		if total == 0 {
			t.Errorf("%s: equivalence test vacuous, no detections produced", tc.name)
		}
	}
}

// TestPooledPredictEquivalence: attaching an activation pool must not change
// a single bit of either backend's output — pooled buffers are dirty on Get,
// so any layer that fails to overwrite its output fully shows up here.
func TestPooledPredictEquivalence(t *testing.T) {
	m := yolite.NewModel(3)
	qm := quant.Port(m, nil)
	pm := yolite.NewModel(3)
	pm.Pool = tensor.NewPool()
	pqm := quant.Port(pm, nil)
	x := randomBatch(4, 42)
	for _, tc := range []struct {
		name          string
		plain, pooled Predictor
	}{
		{"yolite", m, pm},
		{"yolite-int8", qm, pqm},
	} {
		total := 0
		for round := 0; round < 2; round++ { // round 2 runs on recycled buffers
			for n := 0; n < 4; n++ {
				want := tc.plain.PredictTensor(x, n, 0.3)
				got := tc.pooled.PredictTensor(x, n, 0.3)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s item %d round %d: pooled %v != plain %v", tc.name, n, round, got, want)
				}
				total += len(want)
			}
			if !reflect.DeepEqual(PredictBatch(tc.pooled, x, 0.3), PredictBatch(tc.plain, x, 0.3)) {
				t.Errorf("%s round %d: pooled batch output diverged", tc.name, round)
			}
		}
		if total == 0 {
			t.Errorf("%s: pooled equivalence vacuous, no detections produced", tc.name)
		}
	}
	if gets, _ := pm.Pool.Stats(); gets == 0 {
		t.Fatal("pooled model never drew from its pool")
	}
}

// TestQuantHonoursDisableRefine checks the ablation flag ported from the
// float model actually changes the int8 output, and that Port seeds it.
func TestQuantHonoursDisableRefine(t *testing.T) {
	m := yolite.NewModel(3)
	qm := quant.Port(m, nil)
	x := randomBatch(1, 7)
	with := qm.PredictTensor(x, 0, 0.3)
	qm.DisableRefine = true
	without := qm.PredictTensor(x, 0, 0.3)
	if reflect.DeepEqual(with, without) {
		t.Fatal("DisableRefine had no effect on the int8 backend's detections")
	}
	m.DisableRefine = true
	if !quant.Port(m, nil).DisableRefine {
		t.Fatal("Port should carry the source model's DisableRefine setting")
	}
}

func TestPredictBatchFallbackLoopsPerItem(t *testing.T) {
	s := &stubDetector{dets: []metrics.Detection{det(10, 10, 8, 8, 0.9)}}
	out := PredictBatch(s, randomBatch(3, 1), 0.45)
	if len(out) != 3 || s.calls != 3 {
		t.Fatalf("fallback: %d items, %d inner calls (want 3/3)", len(out), s.calls)
	}
	if PredictBatch(s, nil, 0.45) != nil {
		t.Fatal("nil tensor should produce nil result")
	}
}

func TestNamedPreservesBatchPath(t *testing.T) {
	s := &batchStub{}
	Named("renamed", s).(BatchPredictor).PredictBatch(randomBatch(2, 1), 0.45)
	if len(s.batchSizes) != 1 || s.batchSizes[0] != 2 {
		t.Fatalf("named wrapper severed the batch path: inner saw %v", s.batchSizes)
	}
}

func TestFloorAndNMSBatch(t *testing.T) {
	s := &batchStub{stubDetector: stubDetector{dets: []metrics.Detection{
		det(10, 10, 8, 8, 0.9),
		det(11, 10, 8, 8, 0.7), // near-duplicate, NMS fodder
	}}}
	d := WithNMS(WithConfidenceFloor(s, 0.8), 0.5)
	out := PredictBatch(d, randomBatch(2, 1), 0.45)
	if s.lastThresh != 0.8 {
		t.Fatalf("floor not applied on the batch path: thresh %v", s.lastThresh)
	}
	if len(s.batchSizes) != 1 || s.batchSizes[0] != 2 {
		t.Fatalf("middleware broke the native batch hand-off: %v", s.batchSizes)
	}
	for i, dets := range out {
		if len(dets) != 1 {
			t.Fatalf("item %d: NMS kept %d detections, want 1", i, len(dets))
		}
	}
}

// TestCacheBatchCompactsMisses covers the cache's batch semantics: hits are
// answered from the memo, the miss sub-batch is compacted (including in-batch
// duplicates) before reaching the backend, and every item still gets its
// result.
func TestCacheBatchCompactsMisses(t *testing.T) {
	s := &batchStub{stubDetector: stubDetector{dets: []metrics.Detection{det(10, 10, 8, 8, 0.9)}}}
	c := WithResultCache(s, 8)

	// Warm the cache with item 1's content via the single-item path.
	x := randomBatch(4, 9)
	per := len(x.Data) / 4
	c.PredictTensor(x, 1, 0.45)
	if c.Misses() != 1 {
		t.Fatalf("warmup misses = %d", c.Misses())
	}
	// Make item 3 a duplicate of item 0.
	copy(x.Data[3*per:4*per], x.Data[0:per])

	out := c.PredictBatch(x, 0.45)
	if len(out) != 4 {
		t.Fatalf("got %d items", len(out))
	}
	for i, dets := range out {
		if len(dets) != 1 {
			t.Fatalf("item %d: %d detections, want 1", i, len(dets))
		}
	}
	// Item 1 hit; items 0, 2, 3 missed; the sub-batch holds only the two
	// unique missing screens (0 and 2).
	if c.Hits() != 1 || c.Misses() != 4 {
		t.Fatalf("hits=%d misses=%d, want 1/4", c.Hits(), c.Misses())
	}
	if len(s.batchSizes) != 1 || s.batchSizes[0] != 2 {
		t.Fatalf("miss sub-batch sizes = %v, want [2]", s.batchSizes)
	}

	// Everything is memoised now: a repeat batch is all hits, no inner call.
	calls := s.calls
	c.PredictBatch(x, 0.45)
	if s.calls != calls {
		t.Fatalf("fully cached batch still ran the backend")
	}
	if c.Hits() != 5 {
		t.Fatalf("hits after repeat = %d, want 5", c.Hits())
	}

	// Returned slices must be copies: mutating one item must not leak.
	out2 := c.PredictBatch(x, 0.45)
	out2[0][0].B.X = 999
	if c.PredictBatch(x, 0.45)[0][0].B.X == 999 {
		t.Fatal("cache batch path returned a shared slice")
	}
}

// TestWithTimingNilRecorder: a nil *perfmodel.Timings must be a no-op, not a
// nil-pointer dereference on the first Observe.
func TestWithTimingNilRecorder(t *testing.T) {
	s := &stubDetector{}
	d := WithTiming(s, nil, "infer")
	d.PredictTensor(randomBatch(1, 1), 0, 0.45)
	d.PredictBatch(randomBatch(2, 1), 0.45)
	if s.calls != 3 {
		t.Fatalf("inner calls = %d, want 3", s.calls)
	}
}

func TestWithTimingRecordsBatchItemCount(t *testing.T) {
	rec := &perfmodel.Timings{}
	d := WithTiming(&stubDetector{}, rec, "")
	d.PredictBatch(randomBatch(3, 1), 0.45)
	if got := rec.Stage("infer").Count; got != 3 {
		t.Fatalf("batch of 3 recorded Count=%d, want 3", got)
	}
}

// TestEvaluateBatchMatchesEvaluate: batching the evaluation loop must not
// change the confusion counts.
func TestEvaluateBatchMatchesEvaluate(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping dataset generation in -short mode")
	}
	m := yolite.NewModel(3)
	samples := auigen.BuildAUISamples(5, 7, auigen.DatasetConfig{})
	want := yolite.Evaluate(m, samples, 0.5).All()
	got := EvaluateBatch(m, samples, 0.5, 3).All()
	if got != want {
		t.Fatalf("EvaluateBatch counts %+v != Evaluate counts %+v", got, want)
	}
}

// TestConcurrentPredictSharedModel drives PredictTensor and PredictBatch on
// one shared model from many goroutines under -race, proving inference is
// read-only: Conv2D.lastIn and Model.lastF8 are only written under
// train=true, which is what makes the parallel batch workers sound.
func TestConcurrentPredictSharedModel(t *testing.T) {
	m := yolite.NewModel(3)
	qm := quant.Port(m, nil)
	x := randomBatch(2, 11)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				switch g % 4 {
				case 0:
					m.PredictTensor(x, i, 0.4)
				case 1:
					m.PredictBatch(x, 0.4)
				case 2:
					qm.PredictTensor(x, i, 0.4)
				default:
					qm.PredictBatch(x, 0.4)
				}
			}
		}(g)
	}
	wg.Wait()
}
