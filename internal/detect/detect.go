// Package detect owns the detector seam of the reproduction: the interface
// every AUI-detection backend implements (the yolite one-stage model, its
// int8 port, the RCNN baselines, and the FraudDroid-like metadata
// heuristic), a named registry so binaries and examples select backends by
// string, and composable middleware decorators (confidence floor, NMS,
// result caching keyed on screenshot content, per-stage timing).
//
// The contract mirrors the paper's Fig. 5 hand-off: the pipeline gives the
// detector a normalised screenshot tensor and gets back detections in
// model-input coordinates; everything upstream (debounce, capture) and
// downstream (scaling, calibration, decoration) is the pipeline's business,
// which is what lets Table V swap detectors without touching the service.
package detect

import (
	"context"

	"repro/internal/metrics"
	"repro/internal/render"
	"repro/internal/tensor"
	"repro/internal/yolite"
)

// Predictor is the minimal inference surface: a prepared input tensor in,
// detections (model-input coordinates) out. It matches yolite.Predictor so
// existing evaluation code keeps working with any backend.
type Predictor interface {
	PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection
}

// Detector is a Predictor with an identity, so registries, tables and logs
// can refer to backends uniformly.
type Detector interface {
	Predictor
	Name() string
}

// named adapts an anonymous Predictor into a Detector.
type named struct {
	Predictor
	name string
}

func (n named) Name() string { return n.name }

// PredictBatch keeps the batch seam intact through the rename: the wrapped
// Predictor's native batch path is used when it has one.
func (n named) PredictBatch(x *tensor.Tensor, confThresh float64) [][]metrics.Detection {
	return PredictBatch(n.Predictor, x, confThresh)
}

// PredictTensorCtx keeps the ctx seam intact through the rename.
func (n named) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, nItem int, confThresh float64) ([]metrics.Detection, error) {
	return Predict(ctx, n.Predictor, x, nItem, confThresh)
}

// PredictBatchCtx keeps the batched ctx seam intact through the rename.
func (n named) PredictBatchCtx(ctx context.Context, x *tensor.Tensor, confThresh float64) ([][]metrics.Detection, error) {
	return PredictBatchCtx(ctx, n.Predictor, x, confThresh)
}

// Named attaches a name to a Predictor, turning it into a Detector.
func Named(name string, p Predictor) Detector {
	if d, ok := p.(Detector); ok && d.Name() == name {
		return d
	}
	return named{Predictor: p, name: name}
}

// PredictCanvas runs a detector on a screenshot canvas of any resolution and
// returns detections scaled back to the canvas's coordinate system — the
// backend-agnostic version of yolite.(*Model).Predict.
func PredictCanvas(p Predictor, c *render.Canvas, confThresh float64) []metrics.Detection {
	x := yolite.CanvasToTensor(c)
	dets := p.PredictTensor(x, 0, confThresh)
	scaleToCanvas(dets, c)
	return dets
}

// PredictCanvasCtx is PredictCanvas with a per-request context: tenant
// identity and cancellation ride ctx into the backend (the serving layers
// read both), and detections come back scaled to the canvas's coordinate
// system. It is the one-call path a network front end needs: pixels in,
// screen-coordinate detections out, admission errors surfaced.
func PredictCanvasCtx(ctx context.Context, p Predictor, c *render.Canvas, confThresh float64) ([]metrics.Detection, error) {
	x := yolite.CanvasToTensor(c)
	dets, err := Predict(ctx, p, x, 0, confThresh)
	if err != nil {
		return nil, err
	}
	scaleToCanvas(dets, c)
	return dets, nil
}

// scaleToCanvas maps model-input detections back onto canvas coordinates in
// place.
func scaleToCanvas(dets []metrics.Detection, c *render.Canvas) {
	sx := float64(c.W) / float64(yolite.InputW)
	sy := float64(c.H) / float64(yolite.InputH)
	for i := range dets {
		dets[i].B = dets[i].B.Scale(sx, sy)
	}
}
