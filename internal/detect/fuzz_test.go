package detect

import (
	"context"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// FuzzCacheKey hammers the cache's content-hash with arbitrary tensor
// shapes, batch indices, thresholds, and raw pixel bytes (NaN and Inf bit
// patterns included). Pinned properties:
//
//   - it never panics, whatever shape/data/index combination arrives (the
//     bounds checks must hold even when the shape product overflows int);
//   - it is deterministic within a process (same input, same key — the
//     invariant the memo depends on);
//   - an item's key depends only on that item's pixels: mutating a
//     different batch item never changes it (the invariant batch miss
//     compaction depends on).
func FuzzCacheKey(f *testing.F) {
	f.Add(1, 3, 4, 0, 0.25, []byte{0, 0, 0, 0, 1, 2, 3, 4, 0xff, 0xff, 0xff, 0xff})
	f.Add(2, 2, 2, 1, 0.5, []byte{0x7f, 0xc0, 0, 0, 0x7f, 0x80, 0, 0}) // NaN, +Inf floats
	f.Add(0, 0, 0, 0, 0.0, []byte{})
	f.Add(-1, 5, 7, -3, math.NaN(), []byte{9, 9, 9, 9})
	f.Add(1<<30, 1<<30, 4, 1<<20, 0.25, []byte{1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, s0, s1, s2, n int, conf float64, raw []byte) {
		if len(raw) > 1<<16 {
			t.Skip("oversized input")
		}
		data := make([]float32, len(raw)/4)
		for i := range data {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
		x := &tensor.Tensor{Shape: []int{s0, s1, s2}, Data: data}

		k1, ok1 := cacheKey(x, n, conf)
		k2, ok2 := cacheKey(x, n, conf)
		if ok1 != ok2 || k1 != k2 {
			t.Fatalf("cacheKey not deterministic: (%v,%v) vs (%v,%v)", k1, ok1, k2, ok2)
		}

		// Item-independence, checked on shapes small enough to reason about
		// exactly: flip a float of item 1 and re-key item 0.
		per := 4 // 2x2 spatial, one channel
		xs := &tensor.Tensor{Shape: []int{2, 1, 2, 2}, Data: make([]float32, 2*per)}
		for i := range xs.Data {
			if i < len(data) {
				xs.Data[i] = data[i]
			}
		}
		k0, ok := cacheKey(xs, 0, conf)
		if !ok {
			t.Fatalf("well-formed 2-item tensor rejected")
		}
		xs.Data[per] += 1 // item 1's first value
		k0b, _ := cacheKey(xs, 0, conf)
		if k0 != k0b {
			t.Fatalf("item 0's key changed when item 1's pixels did")
		}
	})
}

// FuzzCacheBatchMapping feeds the cache's batch path a backend returning a
// result slice whose length is attacker-controlled, pinning the seam-bug fix:
// a short, long, or nil inner result must surface as an error — never a
// panic, and never results silently memoised under the wrong key.
func FuzzCacheBatchMapping(f *testing.F) {
	f.Add(3, 0, []byte{1, 2, 3})
	f.Add(3, 3, []byte{1, 2, 3})
	f.Add(4, 7, []byte{5, 5, 0, 1})
	f.Add(2, -1, []byte{})

	f.Fuzz(func(t *testing.T, items, resLen int, raw []byte) {
		if items <= 0 || items > 16 || resLen < -1 || resLen > 32 {
			t.Skip()
		}
		x := tensor.New(items, 1, 2, 2)
		for i := range x.Data {
			if len(raw) > 0 {
				x.Data[i] = float32(raw[i%len(raw)]) + float32(i/4)
			} else {
				x.Data[i] = float32(i)
			}
		}
		c := WithResultCache(&arbitraryLenBackend{resLen: resLen}, 8)
		out, err := c.PredictBatchCtx(context.Background(), x, 0.5)
		// The stub honestly answers len(misses) only when resLen says so;
		// anything else must be rejected.
		if err == nil {
			if len(out) != items {
				t.Fatalf("no error but %d results for %d items", len(out), items)
			}
		}
	})
}

// arbitraryLenBackend returns a batch result of a fixed, possibly wrong
// length (-1 means nil).
type arbitraryLenBackend struct{ resLen int }

func (a *arbitraryLenBackend) Name() string { return "arbitrary-len" }

func (a *arbitraryLenBackend) PredictTensor(_ *tensor.Tensor, _ int, _ float64) []metrics.Detection {
	return nil
}

func (a *arbitraryLenBackend) PredictBatch(_ *tensor.Tensor, _ float64) [][]metrics.Detection {
	if a.resLen < 0 {
		return nil
	}
	return make([][]metrics.Detection, a.resLen)
}
