package detect

import (
	"context"
	"testing"
	"time"

	"repro/internal/tensor"
	"repro/internal/yolite"
)

// benchCancelModel builds the pooled float backend the cancellation numbers
// are quoted against.
func benchCancelModel() (*yolite.Model, *tensor.Tensor) {
	m := yolite.NewModel(3)
	m.Pool = tensor.NewPool()
	x := randomBatch(1, 42)
	m.PredictTensor(x, 0, 0.3) // warm the pool
	return m, x
}

// BenchmarkPredictLegacyBaseline is the pre-refactor path: plain
// PredictTensor with no context anywhere. The happy-path overhead claims in
// BENCH_cancel.json are measured against this.
func BenchmarkPredictLegacyBaseline(b *testing.B) {
	m, x := benchCancelModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictTensor(x, 0, 0.3)
	}
}

// BenchmarkPredictCtxBackground drives the ctx seam with Background: the
// Done()==nil fast path must route to the legacy code, so this should be
// indistinguishable from the baseline.
func BenchmarkPredictCtxBackground(b *testing.B) {
	m, x := benchCancelModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Predict(context.Background(), m, x, 0, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictCtxCancellable drives the checkpointed forward: a real
// Done channel that never fires, so every between-layer and between-plane
// checkpoint executes. The gap to the baseline is the entire cost of
// cancellation support on the happy path.
func BenchmarkPredictCtxCancellable(b *testing.B) {
	m, x := benchCancelModel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Predict(ctx, m, x, 0, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCancelMidForward measures abort latency: a cancel fired partway
// into the forward, with the time from cancel to return reported as
// abort-ns/op. The target is within roughly one conv layer — orders of
// magnitude under the full forward, whose duration is reported alongside as
// forward-ns for scale.
func BenchmarkCancelMidForward(b *testing.B) {
	m, x := benchCancelModel()
	// Time one clean forward to place the cancel mid-backbone.
	start := time.Now()
	m.PredictTensor(x, 0, 0.3)
	full := time.Since(start)
	delay := full / 3
	var abortTotal time.Duration
	aborts := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(delay, cancel)
		begin := time.Now()
		_, err := Predict(ctx, m, x, 0, 0.3)
		took := time.Since(begin)
		timer.Stop()
		cancel()
		if err != nil && took > delay {
			abortTotal += took - delay
			aborts++
		}
	}
	b.StopTimer()
	if aborts > 0 {
		b.ReportMetric(float64(abortTotal.Nanoseconds())/float64(aborts), "abort-ns")
	}
	b.ReportMetric(float64(full.Nanoseconds()), "forward-ns")
	b.ReportMetric(float64(aborts)/float64(b.N), "abort-rate")
}
