package detect

import (
	"errors"
	"testing"
)

// TestBuildReplicas: each replica is an independent instance from its own
// Build call, n <= 0 still provisions one, and builder errors name the
// replica that failed.
func TestBuildReplicas(t *testing.T) {
	built := 0
	Register("replicas-test-stub", func(ctx BuildContext) (Detector, error) {
		built++
		return &stubDetector{}, nil
	})
	reps, err := BuildReplicas("replicas-test-stub", BuildContext{}, 3)
	if err != nil || len(reps) != 3 {
		t.Fatalf("BuildReplicas: %d replicas, err %v", len(reps), err)
	}
	if built != 3 {
		t.Fatalf("builder ran %d times, want 3", built)
	}
	if reps[0] == reps[1] || reps[1] == reps[2] {
		t.Fatal("replicas share an instance")
	}
	if reps, err := BuildReplicas("replicas-test-stub", BuildContext{}, 0); err != nil || len(reps) != 1 {
		t.Fatalf("n=0: %d replicas, err %v", len(reps), err)
	}
	if _, err := BuildReplicas("no-such-backend", BuildContext{}, 2); err == nil {
		t.Fatal("unknown backend built replicas")
	}
	boom := errors.New("boom")
	Register("replicas-test-fail", func(ctx BuildContext) (Detector, error) { return nil, boom })
	if _, err := BuildReplicas("replicas-test-fail", BuildContext{}, 2); !errors.Is(err, boom) {
		t.Fatalf("builder failure not propagated: %v", err)
	}
}
