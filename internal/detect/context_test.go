package detect

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/yolite"
)

// errCtxStub is a ctx-aware stub whose ctx paths fail with err (when set);
// the legacy paths always succeed. It stands in for a backend whose forward
// was aborted mid-flight.
type errCtxStub struct {
	stubDetector
	err      error
	ctxCalls int
}

func (s *errCtxStub) PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, confThresh float64) ([]metrics.Detection, error) {
	s.ctxCalls++
	if s.err != nil {
		return nil, s.err
	}
	return s.PredictTensor(x, n, confThresh), nil
}

func (s *errCtxStub) PredictBatchCtx(ctx context.Context, x *tensor.Tensor, confThresh float64) ([][]metrics.Detection, error) {
	s.ctxCalls++
	if s.err != nil {
		return nil, s.err
	}
	return PredictBatch(&s.stubDetector, x, confThresh), nil
}

// cancellableCtx returns a context whose Done channel is non-nil but which is
// never cancelled during the test — the shape that exercises the cancellable
// forward paths without aborting them.
func cancellableCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	return ctx
}

// TestPredictCtxPrechecksDeadContext: an already-cancelled context must never
// start an inference, whatever the backend supports.
func TestPredictCtxPrechecksDeadContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := &stubDetector{dets: []metrics.Detection{det(10, 10, 8, 8, 0.9)}}
	if _, err := Predict(ctx, s, randomBatch(1, 1), 0, 0.45); !errors.Is(err, context.Canceled) {
		t.Fatalf("Predict on dead ctx: err = %v, want Canceled", err)
	}
	if _, err := PredictBatchCtx(ctx, s, randomBatch(2, 1), 0.45); !errors.Is(err, context.Canceled) {
		t.Fatalf("PredictBatchCtx on dead ctx: err = %v, want Canceled", err)
	}
	if s.calls != 0 {
		t.Fatalf("dead ctx still reached the backend %d times", s.calls)
	}
}

// TestPredictCtxCancellableEquivalence pins the cancellable forward paths
// bit-identical to the legacy ones: a context that *can* be cancelled (so the
// checkpointed forwardCancel code runs) but never is must not change a single
// output bit for either tensor backend, pooled, single and batched.
func TestPredictCtxCancellableEquivalence(t *testing.T) {
	plain := yolite.NewModel(3)
	qplain := quant.Port(plain, nil)
	m := yolite.NewModel(3)
	m.Pool = tensor.NewPool()
	qm := quant.Port(m, nil)
	x := randomBatch(4, 42)
	ctx := cancellableCtx(t)
	for _, tc := range []struct {
		name          string
		legacy, under Predictor
	}{
		{"yolite", plain, m},
		{"yolite-int8", qplain, qm},
	} {
		total := 0
		for round := 0; round < 2; round++ { // round 2 runs on recycled buffers
			for n := 0; n < 4; n++ {
				want := tc.legacy.PredictTensor(x, n, 0.3)
				got, err := Predict(ctx, tc.under, x, n, 0.3)
				if err != nil {
					t.Fatalf("%s item %d: err = %v", tc.name, n, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s item %d round %d: cancellable path diverged", tc.name, n, round)
				}
				total += len(want)
			}
			gotB, err := PredictBatchCtx(ctx, tc.under, x, 0.3)
			if err != nil {
				t.Fatalf("%s: batch err = %v", tc.name, err)
			}
			if !reflect.DeepEqual(gotB, PredictBatch(tc.legacy, x, 0.3)) {
				t.Errorf("%s round %d: cancellable batch path diverged", tc.name, round)
			}
		}
		if total == 0 {
			t.Errorf("%s: equivalence vacuous, no detections produced", tc.name)
		}
	}
}

// TestPredictCtxCancelMidForward: a cancel landing while the conv backbone is
// running must surface as ctx.Err() promptly, and the aborted forwards must
// not corrupt the activation pool — a later clean forward on the same model
// still matches an unpooled reference.
func TestPredictCtxCancelMidForward(t *testing.T) {
	ref := yolite.NewModel(3)
	qref := quant.Port(ref, nil)
	m := yolite.NewModel(3)
	m.Pool = tensor.NewPool()
	qm := quant.Port(m, nil)
	x := randomBatch(1, 7)
	for _, tc := range []struct {
		name          string
		legacy, under Predictor
	}{
		{"yolite", ref, m},
		{"yolite-int8", qref, qm},
	} {
		aborted := 0
		for attempt := 0; attempt < 50 && aborted == 0; attempt++ {
			ctx, cancel := context.WithCancel(context.Background())
			timer := time.AfterFunc(time.Duration(attempt+1)*100*time.Microsecond, cancel)
			_, err := Predict(ctx, tc.under, x, 0, 0.3)
			timer.Stop()
			cancel()
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%s: aborted forward returned %v, want Canceled", tc.name, err)
				}
				aborted++
			}
		}
		if aborted == 0 {
			t.Errorf("%s: no attempt aborted mid-forward", tc.name)
		}
		// Pool integrity after aborts: clean forward still bit-identical.
		got, err := Predict(context.Background(), tc.under, x, 0, 0.3)
		if err != nil {
			t.Fatalf("%s: post-abort forward err = %v", tc.name, err)
		}
		if want := tc.legacy.PredictTensor(x, 0, 0.3); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: post-abort forward diverged — aborted cycles corrupted the pool", tc.name)
		}
	}
}

// TestMiddlewareCtxPath: the confidence floor and NMS must keep working on
// the ctx-aware path, including across the fallback bracketing for inners
// that are not ctx-aware themselves.
func TestMiddlewareCtxPath(t *testing.T) {
	s := &batchStub{stubDetector: stubDetector{dets: []metrics.Detection{
		det(10, 10, 8, 8, 0.9),
		det(11, 10, 8, 8, 0.7), // near-duplicate, NMS fodder
	}}}
	d := WithNMS(WithConfidenceFloor(s, 0.8), 0.5)
	ctx := cancellableCtx(t)
	dets, err := Predict(ctx, d, randomBatch(1, 1), 0, 0.45)
	if err != nil {
		t.Fatalf("Predict err = %v", err)
	}
	if s.lastThresh != 0.8 {
		t.Fatalf("floor not applied on the ctx path: thresh %v", s.lastThresh)
	}
	if len(dets) != 1 {
		t.Fatalf("NMS on the ctx path kept %d detections, want 1", len(dets))
	}
	out, err := PredictBatchCtx(ctx, d, randomBatch(2, 1), 0.45)
	if err != nil {
		t.Fatalf("PredictBatchCtx err = %v", err)
	}
	if len(s.batchSizes) != 1 || s.batchSizes[0] != 2 {
		t.Fatalf("ctx middleware broke the native batch hand-off: %v", s.batchSizes)
	}
	for i, dets := range out {
		if len(dets) != 1 {
			t.Fatalf("item %d: NMS kept %d detections, want 1", i, len(dets))
		}
	}
}

// TestTimedCtxRecordsAborted: aborted calls must land under their own
// "-aborted" stage so the main latency distribution stays clean.
func TestTimedCtxRecordsAborted(t *testing.T) {
	rec := &perfmodel.Timings{}
	s := &errCtxStub{err: context.Canceled}
	d := WithTiming(s, rec, "infer")
	ctx := cancellableCtx(t)
	if _, err := d.PredictTensorCtx(ctx, randomBatch(1, 1), 0, 0.45); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if _, err := d.PredictBatchCtx(ctx, randomBatch(2, 1), 0.45); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want Canceled", err)
	}
	snap := rec.Snapshot()
	if snap["infer-aborted"].Count != 2 {
		t.Fatalf("infer-aborted count = %d, want 2", snap["infer-aborted"].Count)
	}
	if snap["infer"].Count != 0 {
		t.Fatalf("aborted calls leaked into the main stage: count = %d", snap["infer"].Count)
	}
	// Successful ctx calls record under the main stage.
	s.err = nil
	if _, err := d.PredictTensorCtx(ctx, randomBatch(1, 1), 0, 0.45); err != nil {
		t.Fatalf("success err = %v", err)
	}
	if got := rec.Snapshot()["infer"].Count; got != 1 {
		t.Fatalf("successful ctx call recorded count = %d, want 1", got)
	}
}

// TestCacheCtxErrorNotStored: a miss whose inner forward aborts must not
// memoise the error — the next caller gets a real inference, and a later
// success is cached normally.
func TestCacheCtxErrorNotStored(t *testing.T) {
	s := &errCtxStub{stubDetector: stubDetector{dets: []metrics.Detection{det(10, 10, 8, 8, 0.9)}}, err: context.Canceled}
	c := WithResultCache(s, 8)
	ctx := cancellableCtx(t)
	x := randomBatch(2, 3)
	if _, err := c.PredictTensorCtx(ctx, x, 0, 0.45); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if _, err := c.PredictBatchCtx(ctx, x, 0.45); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want Canceled", err)
	}
	if c.Len() != 0 {
		t.Fatalf("aborted results were stored: Len = %d", c.Len())
	}
	// Once the backend succeeds, the same keys memoise as usual.
	s.err = nil
	if _, err := c.PredictTensorCtx(ctx, x, 0, 0.45); err != nil {
		t.Fatalf("success err = %v", err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len after success = %d, want 1", c.Len())
	}
	hits := c.Hits()
	if _, err := c.PredictTensorCtx(ctx, x, 0, 0.45); err != nil {
		t.Fatalf("hit err = %v", err)
	}
	if c.Hits() != hits+1 {
		t.Fatalf("repeat ctx lookup did not hit: hits %d -> %d", hits, c.Hits())
	}
}

// TestCacheStatsBeforeTraffic: the observability accessors must be safe on a
// fresh cache — Len 0, a 0/0-guarded HitRate, and PublishStats that tolerates
// both a nil recorder and a zero-traffic cache.
func TestCacheStatsBeforeTraffic(t *testing.T) {
	c := WithResultCache(&stubDetector{}, 8)
	if c.Len() != 0 {
		t.Fatalf("fresh cache Len = %d", c.Len())
	}
	if got := c.HitRate(); got != 0 {
		t.Fatalf("fresh cache HitRate = %v, want 0 (no NaN)", got)
	}
	c.PublishStats(nil) // must not panic
	rec := &perfmodel.Timings{}
	c.PublishStats(rec) // zero traffic: publishes nothing, panics never
	if snap := rec.Snapshot(); snap["cache-hit"].Count != 0 || snap["cache-miss"].Count != 0 {
		t.Fatalf("zero-traffic publish recorded %+v", snap)
	}
	c.PredictTensor(randomBatch(1, 5), 0, 0.45)
	if c.Len() != 1 {
		t.Fatalf("Len after one miss = %d, want 1", c.Len())
	}
}
