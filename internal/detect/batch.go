package detect

import (
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/internal/yolite"
)

// BatchPredictor is the batched inference surface: one [N, 3, H, W] tensor
// in, one detection slice per batch item out. Backends that can amortise a
// single backbone forward across the whole batch (yolite, the int8 port)
// implement it natively; everything else is served by the PredictBatch
// fallback. Item order is preserved: result[i] belongs to batch item i.
type BatchPredictor interface {
	PredictBatch(x *tensor.Tensor, confThresh float64) [][]metrics.Detection
}

// PredictBatch runs p over every item of the batch tensor x. A backend (or
// middleware stack) implementing BatchPredictor receives the whole tensor in
// one call; anything else falls back to a per-item PredictTensor loop.
//
// The batch path is what makes store-audit style workloads linear: a
// per-item loop over Predictors whose PredictTensor forwards the full batch
// (the historical yolite/quant contract) costs N full-batch forwards — N^2
// item-forwards — where PredictBatch costs exactly one.
func PredictBatch(p Predictor, x *tensor.Tensor, confThresh float64) [][]metrics.Detection {
	if x == nil || len(x.Shape) == 0 {
		return nil
	}
	if bp, ok := p.(BatchPredictor); ok {
		return bp.PredictBatch(x, confThresh)
	}
	out := make([][]metrics.Detection, x.Shape[0])
	for i := range out {
		out[i] = p.PredictTensor(x, i, confThresh)
	}
	return out
}

// DefaultEvalBatch is the batch size EvaluateBatch uses when given a
// non-positive one.
const DefaultEvalBatch = 8

// EvaluateBatch is the batched counterpart of yolite.Evaluate: it stacks
// samples into [batchSize, 3, H, W] tensors and runs each chunk through the
// detector's batch path, so dataset-scale evaluations pay one backbone
// forward per chunk instead of one per image. Detections are identical to
// the per-item loop; only the amortisation changes.
func EvaluateBatch(p Predictor, samples []*dataset.Sample, iouThresh float64, batchSize int) *metrics.Evaluation {
	if batchSize <= 0 {
		batchSize = DefaultEvalBatch
	}
	eval := metrics.NewEvaluation()
	for start := 0; start < len(samples); start += batchSize {
		end := min(start+batchSize, len(samples))
		x := yolite.BatchToTensor(samples[start:end])
		for i, dets := range PredictBatch(p, x, yolite.DefaultConfThresh) {
			eval.AddSample(dets, samples[start+i].Boxes, iouThresh)
		}
	}
	return eval
}
