package detect

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
	"repro/internal/yolite"
)

// contentStub derives its detection from the screen's first pixel, so every
// distinct screen has a distinct correct answer — a cache that crosses wires
// between entries is caught, not just one that loses them. Concurrency-safe.
type contentStub struct {
	calls atomic.Int64
}

func (s *contentStub) Name() string { return "content-stub" }

func (s *contentStub) PredictTensor(x *tensor.Tensor, n int, confThresh float64) []metrics.Detection {
	s.calls.Add(1)
	per := len(x.Data) / x.Shape[0]
	return []metrics.Detection{det(float64(x.Data[n*per]), 0, 8, 8, 0.9)}
}

// screen builds a 1-item tensor whose first pixel carries id, the value the
// contentStub echoes back.
func screen(id int) *tensor.Tensor {
	x := tensor.New(1, 3, yolite.InputH, yolite.InputW)
	x.Data[0] = float32(id)
	for i := 1; i < len(x.Data); i++ {
		x.Data[i] = float32((id*31 + i) % 255)
	}
	return x
}

// TestCacheShardCountAdapts: tiny caches must stay single-sharded (exact
// FIFO order is observable there), large ones must actually shard.
func TestCacheShardCountAdapts(t *testing.T) {
	for _, tc := range []struct {
		capacity, want int
	}{
		{2, 1}, {8, 1}, {15, 1}, {16, 2}, {64, 8}, {256, 16}, {4096, 16},
	} {
		c := WithResultCache(&contentStub{}, tc.capacity)
		if got := c.ShardCount(); got != tc.want {
			t.Errorf("capacity %d: %d shards, want %d", tc.capacity, got, tc.want)
		}
	}
	// Explicit shard counts: rounded down to a power of two, clamped.
	if got := WithShardedResultCache(&contentStub{}, 64, 7).ShardCount(); got != 4 {
		t.Errorf("explicit 7 shards rounded to %d, want 4", got)
	}
	if got := WithShardedResultCache(&contentStub{}, 4, 99).ShardCount(); got != 4 {
		t.Errorf("shards must clamp to capacity: got %d", got)
	}
	if got := WithShardedResultCache(&contentStub{}, 64, 0).ShardCount(); got != 1 {
		t.Errorf("zero shards must clamp to 1: got %d", got)
	}
}

// TestCacheRingWrapEviction drives a small cache far past capacity so the
// FIFO ring wraps many times: Len must stay bounded and the freshest entries
// must remain resident. The historical slice-based FIFO never released its
// backing array; the ring's fixed footprint is the fix.
func TestCacheRingWrapEviction(t *testing.T) {
	s := &contentStub{}
	c := WithResultCache(s, 3)
	for id := 0; id < 20; id++ {
		c.PredictTensor(screen(id), 0, 0.45)
		if c.Len() > 3 {
			t.Fatalf("after insert %d: Len=%d exceeds capacity 3", id, c.Len())
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len=%d, want 3", c.Len())
	}
	// The three newest screens must all hit; the evicted ones must miss.
	calls := s.calls.Load()
	for id := 17; id < 20; id++ {
		got := c.PredictTensor(screen(id), 0, 0.45)
		if len(got) != 1 || got[0].B.X != float64(id) {
			t.Fatalf("screen %d: wrong cached result %v", id, got)
		}
	}
	if s.calls.Load() != calls {
		t.Fatal("recent screens were evicted out of FIFO order")
	}
	if c.PredictTensor(screen(0), 0, 0.45); s.calls.Load() != calls+1 {
		t.Fatal("oldest screen should have been evicted")
	}
}

// TestShardedCacheCorrectness fills a multi-shard cache and verifies every
// resident entry answers with its own result — shard selection and storage
// must agree.
func TestShardedCacheCorrectness(t *testing.T) {
	s := &contentStub{}
	// Capacity well past the working set: per-shard rings (256/16 = 16) are
	// deep enough that hash skew cannot overflow one shard and evict.
	c := WithResultCache(s, 256)
	if c.ShardCount() < 2 {
		t.Fatalf("test needs a sharded cache, got %d shards", c.ShardCount())
	}
	for id := 0; id < 100; id++ {
		c.PredictTensor(screen(id), 0, 0.45)
	}
	if c.Len() != 100 || c.Misses() != 100 {
		t.Fatalf("Len=%d Misses=%d, want 100/100", c.Len(), c.Misses())
	}
	calls := s.calls.Load()
	for id := 0; id < 100; id++ {
		got := c.PredictTensor(screen(id), 0, 0.45)
		if len(got) != 1 || got[0].B.X != float64(id) {
			t.Fatalf("screen %d: cached result %v", id, got)
		}
	}
	if s.calls.Load() != calls {
		t.Fatalf("resident entries re-ran the backend %d times", s.calls.Load()-calls)
	}
	if c.Hits() != 100 {
		t.Fatalf("Hits=%d, want 100", c.Hits())
	}
	if got := c.HitRate(); got != 0.5 {
		t.Fatalf("HitRate=%v, want 0.5", got)
	}
}

// TestCacheBoundedPastCapacityPerShard: the per-shard rings must bound the
// whole cache even under a key distribution that lands unevenly.
func TestCacheBoundedPastCapacityPerShard(t *testing.T) {
	c := WithResultCache(&contentStub{}, 64)
	for id := 0; id < 1000; id++ {
		c.PredictTensor(screen(id), 0, 0.45)
	}
	if c.Len() > 64 {
		t.Fatalf("Len=%d exceeds capacity 64", c.Len())
	}
	// maphash distributes keys uniformly; with 1000 inserts every shard's
	// ring must have filled.
	if c.Len() != 64 {
		t.Fatalf("Len=%d, want full cache of 64", c.Len())
	}
}

// TestCachePublishStats routes the tallies into a Timings recorder, the
// line operators read hit-rate from.
func TestCachePublishStats(t *testing.T) {
	c := WithResultCache(&contentStub{}, 8)
	x := screen(1)
	c.PredictTensor(x, 0, 0.45)
	c.PredictTensor(x, 0, 0.45)
	c.PredictTensor(x, 0, 0.45)
	rec := &perfmodel.Timings{}
	c.PublishStats(rec)
	snap := rec.Snapshot()
	if snap["cache-hit"].Count != 2 || snap["cache-miss"].Count != 1 {
		t.Fatalf("published hit=%d miss=%d, want 2/1", snap["cache-hit"].Count, snap["cache-miss"].Count)
	}
	c.PublishStats(nil) // must not panic
}

// TestHitRateEmptyCache guards the 0/0 division.
func TestHitRateEmptyCache(t *testing.T) {
	if got := WithResultCache(&contentStub{}, 8).HitRate(); got != 0 {
		t.Fatalf("empty cache HitRate=%v", got)
	}
}

// TestShardedCacheConcurrentStress hammers one sharded cache from many
// goroutines mixing single and batch lookups over a rotating working set —
// the -race soak for the serving layer's shared cache. Every result must
// match its screen, and the counters must reconcile with the total number
// of lookups.
func TestShardedCacheConcurrentStress(t *testing.T) {
	s := &contentStub{}
	c := WithResultCache(s, 64)
	const (
		workers = 8
		iters   = 60
		screens = 90 // working set larger than capacity: constant eviction
	)
	pool := make([]*tensor.Tensor, screens)
	for id := range pool {
		pool[id] = screen(id)
	}
	var wg sync.WaitGroup
	var lookups atomic.Int64
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				if i%4 == 3 {
					// Batch of 3 screens, possibly with duplicates.
					ids := []int{rng.Intn(screens), rng.Intn(screens), rng.Intn(screens)}
					x := tensor.New(3, 3, yolite.InputH, yolite.InputW)
					per := len(x.Data) / 3
					for j, id := range ids {
						copy(x.Data[j*per:(j+1)*per], pool[id].Data)
					}
					out := c.PredictBatch(x, 0.45)
					lookups.Add(3)
					for j, id := range ids {
						if len(out[j]) != 1 || out[j][0].B.X != float64(id) {
							t.Errorf("batch item for screen %d: %v", id, out[j])
							return
						}
					}
					continue
				}
				id := rng.Intn(screens)
				got := c.PredictTensor(pool[id], 0, 0.45)
				lookups.Add(1)
				if len(got) != 1 || got[0].B.X != float64(id) {
					t.Errorf("screen %d: %v", id, got)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("Len=%d exceeds capacity under concurrency", c.Len())
	}
	if got := int64(c.Hits() + c.Misses()); got != lookups.Load() {
		t.Fatalf("hits+misses=%d, lookups=%d", got, lookups.Load())
	}
	if c.Hits() == 0 {
		t.Fatal("stress produced no hits; working set or iteration count is off")
	}
}

// TestCacheKeyThresholdSensitivity: the same pixels under a different
// operating threshold is a different cache entry — thresholds change the
// backend's answer.
func TestCacheKeyThresholdSensitivity(t *testing.T) {
	c := WithResultCache(&contentStub{}, 8)
	x := screen(5)
	c.PredictTensor(x, 0, 0.45)
	c.PredictTensor(x, 0, 0.60)
	if c.Misses() != 2 {
		t.Fatalf("distinct thresholds shared an entry: misses=%d", c.Misses())
	}
	if c.Len() != 2 {
		t.Fatalf("Len=%d, want 2", c.Len())
	}
}

// BenchmarkCacheKey prices the content hash on a full-size screen — the
// per-lookup floor every cache hit pays. The chunked-write rewrite exists
// because this number, times a million fleet analyses a minute, was the
// fleet simulator's bottleneck.
func BenchmarkCacheKey(b *testing.B) {
	x := screen(7)
	b.SetBytes(int64(4 * len(x.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cacheKey(x, 0, 0.45); !ok {
			b.Fatal("cacheKey rejected a well-formed screen")
		}
	}
}

func BenchmarkShardedCacheParallelHits(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := WithShardedResultCache(&contentStub{}, 256, shards)
			pool := make([]*tensor.Tensor, 32)
			for id := range pool {
				pool[id] = screen(id)
				c.PredictTensor(pool[id], 0, 0.45)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(1))
				for pb.Next() {
					c.PredictTensor(pool[rng.Intn(len(pool))], 0, 0.45)
				}
			})
		})
	}
}

// misalignedBatchStub answers per-item calls honestly (first pixel echoed
// back, like contentStub) but lets its batch seam return a result slice of
// any length — nil, short, or long — to model an inner backend that violates
// the one-result-per-item contract.
type misalignedBatchStub struct {
	contentStub
	batchLen int // -1: nil slice; otherwise a slice of this length
}

func (s *misalignedBatchStub) PredictBatchCtx(_ context.Context, x *tensor.Tensor, _ float64) ([][]metrics.Detection, error) {
	s.calls.Add(1)
	if s.batchLen < 0 {
		return nil, nil
	}
	out := make([][]metrics.Detection, s.batchLen)
	for i := range out {
		out[i] = []metrics.Detection{det(-999, 0, 8, 8, 0.9)} // garbage if ever memoised
	}
	return out, nil
}

// TestCacheRejectsMisalignedInnerBatch pins the miss-compaction guard: an
// inner batch that returns a result slice of the wrong length used to be
// mapped blindly back onto the miss items — panicking on a short slice, or
// worse, silently memoising screen A's detections under screen B's key. The
// cache must refuse the whole batch and store nothing, so later honest calls
// still get their own correct answers.
func TestCacheRejectsMisalignedInnerBatch(t *testing.T) {
	for _, tc := range []struct {
		name     string
		batchLen int
	}{
		{"nil", -1},
		{"short", 2},
		{"long", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stub := &misalignedBatchStub{batchLen: tc.batchLen}
			c := WithResultCache(stub, 32)

			x := tensor.New(3, 3, yolite.InputH, yolite.InputW)
			per := len(x.Data) / 3
			for i := 0; i < 3; i++ {
				copy(x.Data[i*per:(i+1)*per], screen(10+i).Data)
			}
			out, err := c.PredictBatchCtx(context.Background(), x, 0.45)
			if err == nil {
				t.Fatalf("misaligned inner batch accepted: %v", out)
			}
			if !strings.Contains(err.Error(), "miss items") {
				t.Fatalf("unexpected error: %v", err)
			}

			// Nothing may have been memoised from the bad batch: honest
			// per-item calls must miss, reach the backend, and echo each
			// screen's own pixel (a crossed wire would answer -999 or a
			// neighbour's id from the cache).
			hitsBefore := c.Hits()
			for i := 0; i < 3; i++ {
				dets, err := c.PredictTensorCtx(context.Background(), screen(10+i), 0, 0.45)
				if err != nil {
					t.Fatalf("honest call %d failed: %v", i, err)
				}
				if len(dets) != 1 || dets[0].B.X != float64(10+i) {
					t.Fatalf("screen %d served a stale/misaligned entry: %+v", 10+i, dets)
				}
			}
			if c.Hits() != hitsBefore {
				t.Fatalf("bad batch left entries behind: hits went %d -> %d", hitsBefore, c.Hits())
			}
		})
	}
}
