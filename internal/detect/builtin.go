package detect

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/frauddroid"
	"repro/internal/quant"
	"repro/internal/rcnn"
	"repro/internal/yolite"
)

// The built-in backends. Each registers under the name binaries and
// examples select with; yolite variants share one builder parameterised by
// the weight-file stem.
func init() {
	Register("yolite", buildYolite("yolite"))
	Register("yolite-masked", buildYolite("yolite-masked"))
	Register("yolite-int8", buildInt8)
	for _, v := range rcnn.Variants {
		Register(v.Slug(), buildRCNN(v))
	}
	Register("frauddroid", buildFraudDroid)
}

// Compile-time checks that every backend satisfies the seam.
var (
	_ Detector = (*yolite.Model)(nil)
	_ Detector = (*quant.Model)(nil)
	_ Detector = (*rcnn.Model)(nil)
	_ Detector = (*frauddroid.ViewAdapter)(nil)
)

// Backends with a native batch path (the RCNN baselines reconstruct a canvas
// per item, so they go through the PredictBatch fallback loop instead).
var (
	_ BatchPredictor = (*yolite.Model)(nil)
	_ BatchPredictor = (*quant.Model)(nil)
	_ BatchPredictor = (*frauddroid.ViewAdapter)(nil)
)

// Backends with a native cancellation path. RCNN checkpoints between
// proposal crops; the others between conv layers and output planes.
var (
	_ ContextPredictor = (*yolite.Model)(nil)
	_ ContextPredictor = (*quant.Model)(nil)
	_ ContextPredictor = (*rcnn.Model)(nil)
	_ ContextPredictor = (*frauddroid.ViewAdapter)(nil)

	_ ContextBatchPredictor = (*yolite.Model)(nil)
	_ ContextBatchPredictor = (*quant.Model)(nil)
	_ ContextBatchPredictor = (*frauddroid.ViewAdapter)(nil)
)

// The middleware stack preserves both ctx seams end-to-end.
var (
	_ ContextPredictor      = named{}
	_ ContextPredictor      = floorDetector{}
	_ ContextPredictor      = nmsDetector{}
	_ ContextPredictor      = (*Timed)(nil)
	_ ContextPredictor      = (*Cache)(nil)
	_ ContextBatchPredictor = named{}
	_ ContextBatchPredictor = floorDetector{}
	_ ContextBatchPredictor = nmsDetector{}
	_ ContextBatchPredictor = (*Timed)(nil)
	_ ContextBatchPredictor = (*Cache)(nil)
)

// The resilience layer preserves every seam too, so recovery, retry and
// fallback drop in anywhere a backend fits.
var (
	_ Detector              = (*Recovered)(nil)
	_ Detector              = (*Retrier)(nil)
	_ Detector              = (*FallbackChain)(nil)
	_ BatchPredictor        = (*Recovered)(nil)
	_ BatchPredictor        = (*Retrier)(nil)
	_ BatchPredictor        = (*FallbackChain)(nil)
	_ ContextPredictor      = (*Recovered)(nil)
	_ ContextPredictor      = (*Retrier)(nil)
	_ ContextPredictor      = (*FallbackChain)(nil)
	_ ContextBatchPredictor = (*Recovered)(nil)
	_ ContextBatchPredictor = (*Retrier)(nil)
	_ ContextBatchPredictor = (*FallbackChain)(nil)
)

// The majority-vote ensemble is a full citizen of the seam as well.
var (
	_ Detector              = (*Ensemble)(nil)
	_ BatchPredictor        = (*Ensemble)(nil)
	_ ContextPredictor      = (*Ensemble)(nil)
	_ ContextBatchPredictor = (*Ensemble)(nil)
)

// weightsPath maps a registry name to its weight file ("yolite-masked" →
// "yolite_masked.gob", matching the files cmd/darpa-train writes).
func weightsPath(dir, name string) string {
	return filepath.Join(dir, strings.ReplaceAll(name, "-", "_")+".gob")
}

// buildYolite loads pretrained float weights when available and trains on
// the context's sample pool otherwise. It serves both the "yolite" and
// "yolite-masked" registrations: the masked variant differs only in its
// weight file and in the (text-masked) samples the caller supplies.
func buildYolite(name string) Builder {
	return func(ctx BuildContext) (Detector, error) {
		return buildYoliteNamed(name, ctx)
	}
}

func buildYoliteNamed(name string, ctx BuildContext) (*yolite.Model, error) {
	if ctx.WeightsDir != "" {
		path := weightsPath(ctx.WeightsDir, name)
		if _, err := os.Stat(path); err == nil {
			m := yolite.NewModel(ctx.seed())
			if err := m.Load(path); err == nil {
				ctx.logf("loaded %s", path)
				return m, nil
			}
			ctx.logf("weight file %s unusable; retraining", path)
		}
	}
	pool, err := ctx.samples()
	if err != nil {
		return nil, fmt.Errorf("detect: %s: no usable weights and %w", name, err)
	}
	ctx.logf("training %s (%d samples, %d epochs)...", name, len(pool), ctx.Epochs)
	m := yolite.Train(pool, yolite.TrainConfig{
		Epochs: ctx.Epochs,
		Seed:   ctx.seed(),
		Progress: func(ep int, l float64) {
			if ep%4 == 0 {
				ctx.logf("  %s epoch %d loss %.2f", name, ep, l)
			}
		},
	})
	if ctx.SaveWeights && ctx.WeightsDir != "" {
		path := weightsPath(ctx.WeightsDir, name)
		if err := m.Save(path); err == nil {
			ctx.logf("saved %s", path)
		}
	}
	return m, nil
}

// buildInt8 ports the float model to the ncnn-style int8 backend,
// calibrating activations on a small sample subset. A prebuilt float model
// in ctx.Base is reused; otherwise the "yolite" builder runs first.
func buildInt8(ctx BuildContext) (Detector, error) {
	float, ok := ctx.Base.(*yolite.Model)
	if !ok {
		m, err := buildYoliteNamed("yolite", ctx)
		if err != nil {
			return nil, err
		}
		float = m
	}
	calib, err := ctx.samples()
	if err != nil {
		return nil, fmt.Errorf("detect: yolite-int8: calibration needs samples: %w", err)
	}
	if len(calib) > 16 {
		calib = calib[:16]
	}
	return quant.Port(float, calib), nil
}

// buildRCNN trains one Table V two-stage baseline. RCNN weights are not
// persisted (the harness retrains them, matching cmd/darpa-train).
func buildRCNN(v rcnn.Variant) Builder {
	return func(ctx BuildContext) (Detector, error) {
		pool, err := ctx.samples()
		if err != nil {
			return nil, fmt.Errorf("detect: %s: %w", v.Slug(), err)
		}
		ctx.logf("training %s (%d samples)...", v.Slug(), len(pool))
		return rcnn.Train(v, pool, rcnn.TrainConfig{Epochs: ctx.Epochs, Seed: ctx.seed()}), nil
	}
}

// buildFraudDroid wires the metadata heuristic to the live screen. It needs
// no training — only a screen provider.
func buildFraudDroid(ctx BuildContext) (Detector, error) {
	if ctx.Screen == nil {
		return nil, fmt.Errorf("detect: frauddroid reads view metadata and needs a screen provider")
	}
	return &frauddroid.ViewAdapter{Screen: ctx.Screen}, nil
}
