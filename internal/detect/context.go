package detect

import (
	"context"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// ContextPredictor is the cancellation-aware inference surface. A cancelled
// or expired ctx makes the call return ctx.Err() promptly — the conv
// backends abort within roughly one layer — with no detections. A context
// that can never be cancelled (Background, TODO) must produce output
// bit-identical to the legacy PredictTensor, which is how the equivalence
// tests pin the refactor.
type ContextPredictor interface {
	PredictTensorCtx(ctx context.Context, x *tensor.Tensor, n int, confThresh float64) ([]metrics.Detection, error)
}

// ContextBatchPredictor is the batched counterpart of ContextPredictor.
type ContextBatchPredictor interface {
	PredictBatchCtx(ctx context.Context, x *tensor.Tensor, confThresh float64) ([][]metrics.Detection, error)
}

// Predict is the ctx-aware entry point of the detector seam: backends and
// middleware implementing ContextPredictor get the context natively;
// everything else runs the legacy PredictTensor bracketed by Err checks, so
// an already-dead context never starts an inference and a cancel during one
// is at least reported (the work itself is not interruptible without backend
// support). This is the seam the pipeline and the serving layer call, so a
// stack stays cancellable end-to-end as long as its innermost expensive
// backend cooperates.
func Predict(ctx context.Context, p Predictor, x *tensor.Tensor, n int, confThresh float64) ([]metrics.Detection, error) {
	if cp, ok := p.(ContextPredictor); ok {
		return cp.PredictTensorCtx(ctx, x, n, confThresh)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dets := p.PredictTensor(x, n, confThresh)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return dets, nil
}

// PredictBatchCtx is the ctx-aware counterpart of PredictBatch: a native
// ContextBatchPredictor gets the context, a plain BatchPredictor runs
// bracketed by Err checks, and the per-item fallback loop checks the context
// between items. Results on an uncancellable context are bit-identical to
// PredictBatch.
func PredictBatchCtx(ctx context.Context, p Predictor, x *tensor.Tensor, confThresh float64) ([][]metrics.Detection, error) {
	if x == nil || len(x.Shape) == 0 {
		return nil, ctx.Err()
	}
	if cbp, ok := p.(ContextBatchPredictor); ok {
		return cbp.PredictBatchCtx(ctx, x, confThresh)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if bp, ok := p.(BatchPredictor); ok {
		out := bp.PredictBatch(x, confThresh)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return out, nil
	}
	out := make([][]metrics.Detection, x.Shape[0])
	for i := range out {
		dets, err := Predict(ctx, p, x, i, confThresh)
		if err != nil {
			return nil, err
		}
		out[i] = dets
	}
	return out, nil
}
