// Package experiments contains one runner per table and figure of the
// paper's evaluation (Section VI) plus the Section III measurements. Each
// runner returns a formatted Table that cmd/darpa-experiments and the root
// benchmark suite print, alongside the paper's reported values for
// comparison (EXPERIMENTS.md is generated from these).
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/auigen"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/quant"
	"repro/internal/uikit"
	"repro/internal/yolite"
)

// Shared deterministic seeds so every runner sees the same data.
const (
	// DatasetSeed generates the D_aui equivalent.
	DatasetSeed = 1072
	// MaskedSeed generates the text-masked variant (same screens, blurred
	// labels — it must equal DatasetSeed so screens correspond).
	MaskedSeed = DatasetSeed
	// SplitSeed shuffles the 6:2:2 split.
	SplitSeed = 622
	// ModelSeed initialises model weights and training shuffles.
	ModelSeed = 7
	// DeviceSeed drives the simulated-device experiments.
	DeviceSeed = 100
)

// DataConfig returns the dataset rendering configuration shared by every
// experiment.
func DataConfig() auigen.DatasetConfig { return auigen.DatasetConfig{} }

// SplitRand returns the deterministic split shuffler.
func SplitRand() *rand.Rand { return rand.New(rand.NewSource(SplitSeed)) }

// Env bundles the datasets and trained models the experiment runners share.
type Env struct {
	// Quick selects the reduced configuration (small dataset, few epochs)
	// used by unit-test-speed runs; the full configuration reproduces the
	// paper-scale numbers.
	Quick bool
	// WeightsDir, when set, is consulted for pretrained weight files
	// before any training happens.
	WeightsDir string

	cfg    auigen.DatasetConfig
	split  dataset.Split
	masked dataset.Split
	apps   int

	detectorName string
	detectors    map[string]detect.Detector
	curScreen    *uikit.Screen

	verbose func(format string, args ...any)
}

// EnvOption configures NewEnv.
type EnvOption func(*Env)

// WithQuick selects the reduced configuration.
func WithQuick() EnvOption { return func(e *Env) { e.Quick = true } }

// WithWeightsDir points the environment at pretrained weights.
func WithWeightsDir(dir string) EnvOption { return func(e *Env) { e.WeightsDir = dir } }

// WithLogf sets a progress logger.
func WithLogf(f func(string, ...any)) EnvOption { return func(e *Env) { e.verbose = f } }

// WithApps overrides the number of simulated apps in device experiments.
func WithApps(n int) EnvOption { return func(e *Env) { e.apps = n } }

// WithDetector selects the registry backend the device experiments run
// (default "yolite-int8", the ported on-device model).
func WithDetector(name string) EnvOption { return func(e *Env) { e.detectorName = name } }

// NewEnv builds the shared datasets (models are trained or loaded lazily).
func NewEnv(opts ...EnvOption) *Env {
	e := &Env{cfg: DataConfig(), verbose: func(string, ...any) {}}
	for _, o := range opts {
		o(e)
	}
	n := e.datasetSize()
	e.verbose("building dataset (%d AUI screenshots)...", n)
	all := auigen.BuildAUISamples(DatasetSeed, n, e.cfg)
	e.split = dataset.SplitSamples(all, SplitRand())
	return e
}

func (e *Env) datasetSize() int {
	if e.Quick {
		return 120
	}
	return auigen.PaperDatasetSize
}

func (e *Env) epochs() int {
	if e.Quick {
		return 10
	}
	return 28
}

// Split returns the shared 6:2:2 split.
func (e *Env) Split() dataset.Split { return e.split }

// MaskedSplit lazily builds the text-masked dataset (Table IV).
func (e *Env) MaskedSplit() dataset.Split {
	if e.masked.Train == nil {
		cfg := e.cfg
		cfg.MaskText = true
		e.verbose("building text-masked dataset...")
		all := auigen.BuildAUISamples(MaskedSeed, e.datasetSize(), cfg)
		e.masked = dataset.SplitSamples(all, SplitRand())
	}
	return e.masked
}

// trainSet is train+validation, the pool the models fit on (validation was
// used for epoch selection, which the fixed-epoch reproduction bakes in).
func trainPool(s dataset.Split) []*dataset.Sample {
	return append(append([]*dataset.Sample{}, s.Train...), s.Val...)
}

// NegativeFraction is the share of background-only screens mixed into the
// training pool. Real AUI screenshots contain large benign regions (the app
// behind the popup); synthetic full-screen ads cover theirs, so explicit
// negatives restore the background diversity the objectness head needs to
// stay quiet on benign screens (Table VI's non-AUI column).
const NegativeFraction = 0.30

// withNegatives appends n*NegativeFraction negative samples to pool.
func withNegatives(pool []*dataset.Sample, cfg auigen.DatasetConfig, seed int64) []*dataset.Sample {
	n := int(float64(len(pool)) * NegativeFraction)
	negs := auigen.BuildNegativeSamples(seed, n, cfg)
	return append(pool, negs...)
}

// SetFloat injects a float model, bypassing loading/training (tests and
// ablation benches use it). It seeds the detector cache, so Float(),
// Device() and Detector("yolite") all reuse the injected model.
func (e *Env) SetFloat(m *yolite.Model) {
	if e.detectors == nil {
		e.detectors = map[string]detect.Detector{}
	}
	e.detectors["yolite"] = m
}

// Detector builds (or returns the cached) registry backend under the
// environment's dataset, weights and seed configuration. All model access
// in the experiment runners goes through here, so every backend — float,
// masked, int8, the R-CNN baselines, frauddroid — is selectable by name.
func (e *Env) Detector(name string) (detect.Detector, error) {
	if d, ok := e.detectors[name]; ok {
		return d, nil
	}
	d, err := detect.Build(name, e.buildContext(name))
	if err != nil {
		return nil, err
	}
	if e.detectors == nil {
		e.detectors = map[string]detect.Detector{}
	}
	e.detectors[name] = d
	return d, nil
}

// buildContext assembles the per-backend build inputs: the masked variant
// swaps in the text-masked pool at half depth, the int8 port reuses the
// float model, and everything else trains on the standard pool with
// negatives mixed in.
func (e *Env) buildContext(name string) detect.BuildContext {
	ctx := detect.BuildContext{
		WeightsDir:  e.WeightsDir,
		SaveWeights: e.WeightsDir != "" && !e.Quick,
		Epochs:      e.epochs(),
		Seed:        ModelSeed,
		Screen:      e.CurrentScreen,
		Logf:        e.verbose,
	}
	switch name {
	case "yolite-masked":
		// The masked variant exists to show parity with the unmasked model
		// (Table IV), not to maximise accuracy; when no pretrained weights
		// exist it trains at half depth to bound the harness runtime.
		ctx.Epochs = max(8, e.epochs()/2)
		ctx.Samples = func() []*dataset.Sample {
			cfg := e.cfg
			cfg.MaskText = true
			pool := trainPool(e.MaskedSplit())
			if !e.Quick && len(pool) > 500 {
				pool = pool[:500]
			}
			return withNegatives(pool, cfg, MaskedSeed+1)
		}
	case "yolite-int8":
		ctx.Base = e.Float()
		// Calibration only needs a handful of images; the builder truncates.
		ctx.Samples = func() []*dataset.Sample { return trainPool(e.split) }
	default:
		ctx.Samples = func() []*dataset.Sample {
			return withNegatives(trainPool(e.split), e.cfg, DatasetSeed+1)
		}
	}
	return ctx
}

// mustDetector is Detector for the built-in names whose builders cannot
// fail under an Env (their contexts always carry samples).
func (e *Env) mustDetector(name string) detect.Detector {
	d, err := e.Detector(name)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return d
}

// Float returns the server-side float model, loading pretrained weights when
// available and training otherwise.
func (e *Env) Float() *yolite.Model { return e.mustDetector("yolite").(*yolite.Model) }

// Masked returns the model trained on text-masked screens.
func (e *Env) Masked() *yolite.Model { return e.mustDetector("yolite-masked").(*yolite.Model) }

// Device returns the int8-ported on-device model.
func (e *Env) Device() *quant.Model { return e.mustDetector("yolite-int8").(*quant.Model) }

// CurrentScreen returns the screen of the device run in progress (nil
// outside device experiments); metadata-based detectors read it instead of
// pixels.
func (e *Env) CurrentScreen() *uikit.Screen { return e.curScreen }

// Table is a formatted experiment result.
type Table struct {
	ID     string // "Table III", "Figure 8", ...
	Title  string
	Header []string
	Rows   [][]string
	// PaperNote summarises what the paper reports, for EXPERIMENTS.md.
	PaperNote string
}

// Format renders the table as aligned monospace text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.PaperNote != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.PaperNote)
	}
	return b.String()
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
func f3(f float64) string  { return fmt.Sprintf("%.3f", f) }
func f2(f float64) string  { return fmt.Sprintf("%.2f", f) }
func itoa(i int) string    { return fmt.Sprintf("%d", i) }
