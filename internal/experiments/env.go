// Package experiments contains one runner per table and figure of the
// paper's evaluation (Section VI) plus the Section III measurements. Each
// runner returns a formatted Table that cmd/darpa-experiments and the root
// benchmark suite print, alongside the paper's reported values for
// comparison (EXPERIMENTS.md is generated from these).
package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/auigen"
	"repro/internal/dataset"
	"repro/internal/quant"
	"repro/internal/yolite"
)

// Shared deterministic seeds so every runner sees the same data.
const (
	// DatasetSeed generates the D_aui equivalent.
	DatasetSeed = 1072
	// MaskedSeed generates the text-masked variant (same screens, blurred
	// labels — it must equal DatasetSeed so screens correspond).
	MaskedSeed = DatasetSeed
	// SplitSeed shuffles the 6:2:2 split.
	SplitSeed = 622
	// ModelSeed initialises model weights and training shuffles.
	ModelSeed = 7
	// DeviceSeed drives the simulated-device experiments.
	DeviceSeed = 100
)

// DataConfig returns the dataset rendering configuration shared by every
// experiment.
func DataConfig() auigen.DatasetConfig { return auigen.DatasetConfig{} }

// SplitRand returns the deterministic split shuffler.
func SplitRand() *rand.Rand { return rand.New(rand.NewSource(SplitSeed)) }

// Env bundles the datasets and trained models the experiment runners share.
type Env struct {
	// Quick selects the reduced configuration (small dataset, few epochs)
	// used by unit-test-speed runs; the full configuration reproduces the
	// paper-scale numbers.
	Quick bool
	// WeightsDir, when set, is consulted for pretrained weight files
	// before any training happens.
	WeightsDir string

	cfg          auigen.DatasetConfig
	split        dataset.Split
	masked       dataset.Split
	apps         int
	maskedEpochs int

	float   *yolite.Model
	maskedM *yolite.Model
	device  *quant.Model

	verbose func(format string, args ...any)
}

// EnvOption configures NewEnv.
type EnvOption func(*Env)

// WithQuick selects the reduced configuration.
func WithQuick() EnvOption { return func(e *Env) { e.Quick = true } }

// WithWeightsDir points the environment at pretrained weights.
func WithWeightsDir(dir string) EnvOption { return func(e *Env) { e.WeightsDir = dir } }

// WithLogf sets a progress logger.
func WithLogf(f func(string, ...any)) EnvOption { return func(e *Env) { e.verbose = f } }

// WithApps overrides the number of simulated apps in device experiments.
func WithApps(n int) EnvOption { return func(e *Env) { e.apps = n } }

// NewEnv builds the shared datasets (models are trained or loaded lazily).
func NewEnv(opts ...EnvOption) *Env {
	e := &Env{cfg: DataConfig(), verbose: func(string, ...any) {}}
	for _, o := range opts {
		o(e)
	}
	n := e.datasetSize()
	e.verbose("building dataset (%d AUI screenshots)...", n)
	all := auigen.BuildAUISamples(DatasetSeed, n, e.cfg)
	e.split = dataset.SplitSamples(all, SplitRand())
	return e
}

func (e *Env) datasetSize() int {
	if e.Quick {
		return 120
	}
	return auigen.PaperDatasetSize
}

func (e *Env) epochs() int {
	if e.Quick {
		return 10
	}
	return 28
}

// Split returns the shared 6:2:2 split.
func (e *Env) Split() dataset.Split { return e.split }

// MaskedSplit lazily builds the text-masked dataset (Table IV).
func (e *Env) MaskedSplit() dataset.Split {
	if e.masked.Train == nil {
		cfg := e.cfg
		cfg.MaskText = true
		e.verbose("building text-masked dataset...")
		all := auigen.BuildAUISamples(MaskedSeed, e.datasetSize(), cfg)
		e.masked = dataset.SplitSamples(all, SplitRand())
	}
	return e.masked
}

// trainSet is train+validation, the pool the models fit on (validation was
// used for epoch selection, which the fixed-epoch reproduction bakes in).
func trainPool(s dataset.Split) []*dataset.Sample {
	return append(append([]*dataset.Sample{}, s.Train...), s.Val...)
}

// NegativeFraction is the share of background-only screens mixed into the
// training pool. Real AUI screenshots contain large benign regions (the app
// behind the popup); synthetic full-screen ads cover theirs, so explicit
// negatives restore the background diversity the objectness head needs to
// stay quiet on benign screens (Table VI's non-AUI column).
const NegativeFraction = 0.30

// withNegatives appends n*NegativeFraction negative samples to pool.
func withNegatives(pool []*dataset.Sample, cfg auigen.DatasetConfig, seed int64) []*dataset.Sample {
	n := int(float64(len(pool)) * NegativeFraction)
	negs := auigen.BuildNegativeSamples(seed, n, cfg)
	return append(pool, negs...)
}

// SetFloat injects a float model, bypassing loading/training (tests and
// ablation benches use it).
func (e *Env) SetFloat(m *yolite.Model) { e.float = m }

// Float returns the server-side float model, loading pretrained weights when
// available and training otherwise.
func (e *Env) Float() *yolite.Model {
	if e.float == nil {
		e.float = e.loadOrTrain("yolite", withNegatives(trainPool(e.split), e.cfg, DatasetSeed+1))
	}
	return e.float
}

// Masked returns the model trained on text-masked screens.
func (e *Env) Masked() *yolite.Model {
	if e.maskedM == nil {
		cfg := e.cfg
		cfg.MaskText = true
		// The masked variant exists to show parity with the unmasked model
		// (Table IV), not to maximise accuracy; when no pretrained weights
		// exist it trains at half depth to bound the harness runtime.
		saved := e.maskedEpochs
		e.maskedEpochs = max(8, e.epochs()/2)
		pool := trainPool(e.MaskedSplit())
		if !e.Quick && len(pool) > 500 {
			pool = pool[:500]
		}
		e.maskedM = e.loadOrTrain("yolite_masked", withNegatives(pool, cfg, MaskedSeed+1))
		e.maskedEpochs = saved
	}
	return e.maskedM
}

// Device returns the int8-ported on-device model.
func (e *Env) Device() *quant.Model {
	if e.device == nil {
		pool := trainPool(e.split)
		calib := pool
		if len(calib) > 16 {
			calib = calib[:16]
		}
		e.device = quant.Port(e.Float(), calib)
	}
	return e.device
}

func (e *Env) loadOrTrain(name string, pool []*dataset.Sample) *yolite.Model {
	if e.WeightsDir != "" {
		path := filepath.Join(e.WeightsDir, name+".gob")
		if _, err := os.Stat(path); err == nil {
			m := yolite.NewModel(ModelSeed)
			if err := m.Load(path); err == nil {
				e.verbose("loaded %s", path)
				return m
			}
			e.verbose("weight file %s unusable; retraining", path)
		}
	}
	epochs := e.epochs()
	if e.maskedEpochs > 0 {
		epochs = e.maskedEpochs
	}
	e.verbose("training %s (%d samples, %d epochs)...", name, len(pool), epochs)
	m := yolite.Train(pool, yolite.TrainConfig{
		Epochs: epochs,
		Seed:   ModelSeed,
		Progress: func(ep int, l float64) {
			if ep%4 == 0 {
				e.verbose("  %s epoch %d loss %.2f", name, ep, l)
			}
		},
	})
	if e.WeightsDir != "" && !e.Quick {
		path := filepath.Join(e.WeightsDir, name+".gob")
		if err := m.Save(path); err == nil {
			e.verbose("saved %s", path)
		}
	}
	return m
}

// Table is a formatted experiment result.
type Table struct {
	ID     string // "Table III", "Figure 8", ...
	Title  string
	Header []string
	Rows   [][]string
	// PaperNote summarises what the paper reports, for EXPERIMENTS.md.
	PaperNote string
}

// Format renders the table as aligned monospace text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.PaperNote != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.PaperNote)
	}
	return b.String()
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
func f3(f float64) string  { return fmt.Sprintf("%.3f", f) }
func f2(f float64) string  { return fmt.Sprintf("%.2f", f) }
func itoa(i int) string    { return fmt.Sprintf("%d", i) }
