package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/yolite"
)

// quickEnv builds a small environment; model-dependent tests inject a
// briefly trained detector to keep runtimes down.
func quickEnv(t testing.TB) *Env {
	t.Helper()
	return NewEnv(WithQuick())
}

func TestTable1RowsAndTotal(t *testing.T) {
	env := quickEnv(t)
	tab := env.Table1()
	if len(tab.Rows) != 8 { // 7 subjects + total
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if tab.Rows[7][0] != "Total" {
		t.Fatalf("last row %v", tab.Rows[7])
	}
	// Advertisement should dominate, like Table I.
	if !strings.Contains(tab.Rows[0][0], "Advertisement") {
		t.Fatalf("first row %v", tab.Rows[0])
	}
}

func TestTable2SplitConsistency(t *testing.T) {
	env := quickEnv(t)
	tab := env.Table2()
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// 6:2:2 on 120 quick samples.
	if tab.Rows[0][3] != "72" || tab.Rows[1][3] != "24" || tab.Rows[2][3] != "24" {
		t.Fatalf("split totals %v %v %v", tab.Rows[0], tab.Rows[1], tab.Rows[2])
	}
}

func TestUserStudyTable(t *testing.T) {
	tab := UserStudyTable()
	if len(tab.Rows) != 12 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if !strings.Contains(tab.PaperNote, "F1=true") {
		t.Fatalf("findings failed: %s", tab.PaperNote)
	}
}

func TestLayoutTable(t *testing.T) {
	env := quickEnv(t)
	tab := env.LayoutTable()
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestTableFormat(t *testing.T) {
	tab := &Table{ID: "Table X", Title: "demo", Header: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}}, PaperNote: "note"}
	out := tab.Format()
	for _, want := range []string{"Table X", "demo", "a", "bb", "note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}

// TestEndToEndQuick exercises the model-dependent tables and the device
// simulation with a briefly trained detector.
func TestEndToEndQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment test skipped in -short mode")
	}
	env := quickEnv(t)
	pool := append(append([]*dataset.Sample{}, env.Split().Train...), env.Split().Val...)
	m := yolite.Train(pool, yolite.TrainConfig{Epochs: 6, Seed: ModelSeed})
	env.SetFloat(m)

	t3 := env.Table3()
	if len(t3.Rows) != 3 {
		t.Fatalf("Table III rows: %d", len(t3.Rows))
	}
	// Device experiments with the quick model.
	env.Quick = true
	r := env.runApp(0, 0, core.ModeFull, true)
	if r.screens == 0 {
		t.Fatal("device run analysed no screens")
	}
	if r.eventsTotal == 0 {
		t.Fatal("device run emitted no events")
	}
	act := env.RunAblationDebounce(true)
	actNo := env.RunAblationDebounce(false)
	if actNo.Analyses <= act.Analyses {
		t.Fatalf("debounce should reduce analyses: %d vs %d", act.Analyses, actNo.Analyses)
	}
}
