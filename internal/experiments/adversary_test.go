package experiments

import (
	"strings"
	"testing"

	"repro/internal/auigen"
	"repro/internal/frauddroid"
	"repro/internal/uikit"
)

// TestRecallUnderAttackFrauddroid drives the eval loop end to end with the
// trainless metadata backend: zero-knob "attacked" screens must score exactly
// like the clean ones, and the observe hook must hand the adapter the screen
// whose pixels are being scored.
func TestRecallUnderAttackFrauddroid(t *testing.T) {
	cfg := DataConfig()
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	clean, attacked := AttackScreenSets(seeds, auigen.Knobs{}, cfg)
	if len(clean) != len(seeds) || len(attacked) != len(seeds) {
		t.Fatalf("screen sets %d/%d, want %d", len(clean), len(attacked), len(seeds))
	}

	var cur *uikit.Screen
	fd := &frauddroid.ViewAdapter{Screen: func() *uikit.Screen { return cur }}
	row := RecallUnderAttack("frauddroid", fd, clean, attacked, 0.5, func(s *uikit.Screen) { cur = s })
	if row.Clean != row.Attacked {
		t.Fatalf("zero-knob attack changed recall: clean %+v vs attacked %+v", row.Clean, row.Attacked)
	}
	if row.Drop() != 0 {
		t.Fatalf("zero-knob attack reports drop %.3f", row.Drop())
	}
	if row.Clean.UPO == 0 {
		t.Fatal("frauddroid found no UPOs on clean screens — observe hook broken?")
	}

	// Determinism: the whole eval replays exactly.
	again := RecallUnderAttack("frauddroid", fd, clean, attacked, 0.5, func(s *uikit.Screen) { cur = s })
	if row != again {
		t.Fatalf("eval not deterministic: %+v vs %+v", row, again)
	}
}

func TestAttackTableFormat(t *testing.T) {
	rows := []AttackRow{
		{Backend: "yolite", Clean: RecallPoint{UPO: 0.9, AGO: 0.8, All: 0.85}, Attacked: RecallPoint{UPO: 0.4, AGO: 0.7, All: 0.55}},
		{Backend: "yolite-hardened", Clean: RecallPoint{UPO: 0.88, AGO: 0.8, All: 0.84}, Attacked: RecallPoint{UPO: 0.7, AGO: 0.75, All: 0.72}},
	}
	out := AttackTable(rows, 0.9).Format()
	for _, want := range []string{"yolite", "yolite-hardened", "0.850", "0.550", "0.300"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
