package experiments

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/rcnn"
	"repro/internal/study"
	"repro/internal/yolite"
)

// Table1 reproduces Table I: the distribution of AUI subjects in the
// generated D_aui.
func (e *Env) Table1() *Table {
	sp := e.Split()
	all := append(append(append([]*dataset.Sample{}, sp.Train...), sp.Val...), sp.Test...)
	counts := dataset.SubjectCounts(all)
	total := 0
	for _, c := range counts {
		total += c
	}
	t := &Table{
		ID:        "Table I",
		Title:     "Distribution of different types of AUI",
		Header:    []string{"AUI Type", "Number of instances", "Percentage"},
		PaperNote: "Advertisement 64.9%, Sales promotion 16.7%, Lucky money 12.2%, App upgrade 4.0%, Operation guide 1.5%, Feedback 0.4%, Permission 0.3% (N=1072)",
	}
	for _, subj := range dataset.Subjects {
		c := counts[subj]
		t.Rows = append(t.Rows, []string{subj.String(), itoa(c), pct(float64(c) / float64(total))})
	}
	t.Rows = append(t.Rows, []string{"Total", itoa(total), "100%"})
	return t
}

// Table2 reproduces Table II: the 6:2:2 split with per-set AGO/UPO box
// counts.
func (e *Env) Table2() *Table {
	rows := dataset.SplitStats(e.Split())
	t := &Table{
		ID:        "Table II",
		Title:     "Distribution of the ground-truth dataset D_aui",
		Header:    []string{"Set Type", "AGO", "UPO", "Total"},
		PaperNote: "train 453/657/642, val 150/223/215, test 141/222/215, total 744/1103/1072",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Name, itoa(r.AGO), itoa(r.UPO), itoa(r.Total)})
	}
	return t
}

// effectivenessRows renders UPO/AGO/All precision-recall-F1 rows for a
// detector on the test set.
func (e *Env) effectivenessRows(m yolite.Predictor) [][]string {
	eval := yolite.Evaluate(m, e.Split().Test, metrics.PaperIoUThreshold)
	upo := eval.Class(dataset.ClassUPO)
	ago := eval.Class(dataset.ClassAGO)
	all := eval.All()
	return [][]string{
		{"UPO", f3(upo.Precision()), f3(upo.Recall()), f3(upo.F1())},
		{"AGO", f3(ago.Precision()), f3(ago.Recall()), f3(ago.F1())},
		{"All", f3(all.Precision()), f3(all.Recall()), f3(all.F1())},
	}
}

// Table3 reproduces Table III: the on-device (int8-ported) detector's
// effectiveness at IoU >= 0.9.
func (e *Env) Table3() *Table {
	return &Table{
		ID:        "Table III",
		Title:     "Overall effectiveness of DARPA (int8 on-device model, IoU >= 0.9)",
		Header:    []string{"AUI Type", "Precision", "Recall", "F1-score"},
		Rows:      e.effectivenessRows(e.Device()),
		PaperNote: "UPO 0.901/0.852/0.876, AGO 0.815/0.802/0.808, All 0.858/0.827/0.842",
	}
}

// Table4 reproduces Table IV: the float "server" model and the text-masked
// retrained model.
func (e *Env) Table4() *Table {
	t := &Table{
		ID:        "Table IV",
		Title:     "Effectiveness of the YOLOv5-analogue (server float model / text-masked)",
		Header:    []string{"Model", "AUI Type", "Precision", "Recall", "F1-score"},
		PaperNote: "server All 0.881/0.838/0.859; text-masked All 0.877/0.830/0.853",
	}
	for _, row := range e.effectivenessRows(e.Float()) {
		t.Rows = append(t.Rows, append([]string{"yolite (on server)"}, row...))
	}
	// The masked model is evaluated on the masked test split, mirroring the
	// paper's re-training protocol.
	maskedEval := yolite.Evaluate(e.Masked(), e.MaskedSplit().Test, metrics.PaperIoUThreshold)
	for _, cls := range []dataset.Class{dataset.ClassUPO, dataset.ClassAGO} {
		c := maskedEval.Class(cls)
		t.Rows = append(t.Rows, []string{"yolite (texts masked)", cls.String(), f3(c.Precision()), f3(c.Recall()), f3(c.F1())})
	}
	all := maskedEval.All()
	t.Rows = append(t.Rows, []string{"yolite (texts masked)", "All", f3(all.Precision()), f3(all.Recall()), f3(all.F1())})
	return t
}

// Table5 reproduces Table V: the four RCNN baselines against the one-stage
// detector, including the relative detection speed.
func (e *Env) Table5() *Table {
	t := &Table{
		ID:        "Table V",
		Title:     "Comparison between the one-stage detector and RCNN baselines (IoU >= 0.9)",
		Header:    []string{"Model", "Precision", "Recall", "F1-score", "ms/image"},
		PaperNote: "Faster+VGG 0.721, Faster+ResNet 0.720, Mask+VGG 0.781, Mask+ResNet 0.809, YOLOv5 0.859 F1; YOLO ~2.5x faster",
	}
	test := e.Split().Test
	pool := trainPool(e.Split())
	// The baselines exist for the comparison's shape; half the pool keeps
	// the four trainings tractable on one core.
	if !e.Quick && len(pool) > 450 {
		pool = pool[:450]
	}
	epochs := 6
	if e.Quick {
		epochs = 4
	}
	for _, v := range rcnn.Variants {
		e.verbose("training %s...", v.Name())
		m := rcnn.Train(v, pool, rcnn.TrainConfig{Epochs: epochs, Seed: ModelSeed})
		eval := yolite.Evaluate(m, test, metrics.PaperIoUThreshold)
		lat := measureLatency(m, test)
		all := eval.All()
		t.Rows = append(t.Rows, []string{v.Name(), f3(all.Precision()), f3(all.Recall()), f3(all.F1()), f2(lat)})
	}
	yl := e.Float()
	eval := yolite.Evaluate(yl, test, metrics.PaperIoUThreshold)
	all := eval.All()
	t.Rows = append(t.Rows, []string{"yolite (YOLOv5 analogue)", f3(all.Precision()), f3(all.Recall()), f3(all.F1()), f2(measureLatency(yl, test))})
	return t
}

// measureLatency times PredictTensor per image in milliseconds over a small
// subset.
func measureLatency(m yolite.Predictor, samples []*dataset.Sample) float64 {
	n := len(samples)
	if n > 20 {
		n = 20
	}
	if n == 0 {
		return 0
	}
	start := time.Now()
	for _, s := range samples[:n] {
		x := yolite.CanvasToTensor(s.Input)
		m.PredictTensor(x, 0, yolite.DefaultConfThresh)
	}
	return float64(time.Since(start).Milliseconds()) / float64(n)
}

// UserStudyTable reproduces the Section III-B findings.
func UserStudyTable() *Table {
	f := study.Analyze(study.Responses())
	t := &Table{
		ID:     "Section III-B",
		Title:  "User study findings (165 participants)",
		Header: []string{"Quantity", "Measured", "Paper"},
		PaperNote: fmt.Sprintf("Findings hold: F1=%v F2=%v F3=%v",
			f.Finding1Holds(), f.Finding2Holds(), f.Finding3Holds()),
	}
	t.Rows = [][]string{
		{"AUIs are misleading (Q1)", pct(f.MisledFrac), "94.5%"},
		{"Mean AGO accessibility rating", f2(f.MeanAGORating), "7.49"},
		{"Mean UPO accessibility rating", f2(f.MeanUPORating), "4.38"},
		{"UPO at least equally important (Q9)", pct(f.UPOImportantFrac), "72.7%"},
		{"Often trigger unintended clicks (Q2)", pct(f.OftenFrac), "77.0%"},
		{"Occasionally", pct(f.OccasionallyFrac), "20.6%"},
		{"Never", pct(f.NeverFrac), "2.4%"},
		{"Bothered, want to exit quickly (Q7)", pct(f.BotheredFrac), "83.0%"},
		{"Apps in China have more AUIs (Q8)", pct(f.CNMoreAUIFrac), "76.8%"},
		{"Mean rating for a countermeasure", f2(f.MeanSolutionRating), "7.64"},
		{"Ratings >= 9", itoa(f.Solution9Plus), "48"},
		{"Prefer highlighting options", pct(f.HighlightFrac), ">50%"},
	}
	return t
}

// LayoutTable reproduces the Section III-A placement statistics.
func (e *Env) LayoutTable() *Table {
	sp := e.Split()
	all := append(append(append([]*dataset.Sample{}, sp.Train...), sp.Val...), sp.Test...)
	st := dataset.MeasureLayout(all)
	return &Table{
		ID:     "Section III-A",
		Title:  "AUI layout patterns",
		Header: []string{"Quantity", "Measured", "Paper"},
		Rows: [][]string{
			{"AGO placed centrally", pct(st.AGOCentralFrac), "94.6%"},
			{"UPO placed in a corner", pct(st.UPOCornerFrac), "73.1%"},
		},
	}
}
