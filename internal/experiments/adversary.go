package experiments

// Recall under attack: the eval closing the adversarial loop. Clean and
// attacked screens regenerate deterministically from (seed, knobs) recipes,
// so every number here is reproducible from the documented search seed.
//
// The protocol is honest in two ways that matter: the eval seeds are
// disjoint from both the search screens and the mined corpus (the attack
// must transfer via the knob vector, and the hardened model has never seen
// the eval screens), and each backend is scored through the same
// strict-IoU evaluation the paper's tables use.

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/auigen"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/uikit"
	"repro/internal/yolite"
)

// RecallPoint is per-class and overall recall at one eval condition.
type RecallPoint struct {
	UPO float64 `json:"upo"`
	AGO float64 `json:"ago"`
	All float64 `json:"all"`
}

// AttackRow is one backend's clean-vs-attacked recall.
type AttackRow struct {
	Backend  string      `json:"backend"`
	Clean    RecallPoint `json:"clean"`
	Attacked RecallPoint `json:"attacked"`
}

// Drop returns the overall recall lost to the attack.
func (r AttackRow) Drop() float64 { return r.Clean.All - r.Attacked.All }

// recallPoint extracts per-class recall from an evaluation.
func recallPoint(e *metrics.Evaluation) RecallPoint {
	return RecallPoint{
		UPO: e.Class(dataset.ClassUPO).Recall(),
		AGO: e.Class(dataset.ClassAGO).Recall(),
		All: e.All().Recall(),
	}
}

// evalScreens scores p over attacked screens, invoking observe with each
// composed screen before predicting — the hook that lets metadata-reading
// backends (frauddroid, and ensembles containing it) see the view hierarchy
// the pixels came from.
func evalScreens(p detect.Predictor, screens []*auigen.Attacked, iouThresh float64, observe func(*uikit.Screen)) *metrics.Evaluation {
	eval := metrics.NewEvaluation()
	for _, at := range screens {
		if observe != nil {
			observe(at.Screen)
		}
		x := yolite.CanvasToTensor(at.Sample.Input)
		preds := p.PredictTensor(x, 0, yolite.DefaultConfThresh)
		eval.AddSample(preds, at.Sample.Boxes, iouThresh)
	}
	return eval
}

// RecallUnderAttack scores one backend on matched clean and attacked screen
// sets at the given IoU threshold.
func RecallUnderAttack(name string, p detect.Predictor, clean, attacked []*auigen.Attacked, iouThresh float64, observe func(*uikit.Screen)) AttackRow {
	return AttackRow{
		Backend:  name,
		Clean:    recallPoint(evalScreens(p, clean, iouThresh, observe)),
		Attacked: recallPoint(evalScreens(p, attacked, iouThresh, observe)),
	}
}

// AttackTable formats recall-under-attack rows in the repo's table idiom.
func AttackTable(rows []AttackRow, iouThresh float64) *Table {
	t := &Table{
		ID:     "Adversary",
		Title:  fmt.Sprintf("recall under black-box knob attack (IoU %.2f)", iouThresh),
		Header: []string{"Backend", "Clean UPO", "Clean AGO", "Clean All", "Atk UPO", "Atk AGO", "Atk All", "Drop"},
		PaperNote: "No paper counterpart: DARPA does not evaluate evasion. " +
			"The attack mirrors LibPass-style black-box perturbation search.",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Backend,
			fmt.Sprintf("%.3f", r.Clean.UPO), fmt.Sprintf("%.3f", r.Clean.AGO), fmt.Sprintf("%.3f", r.Clean.All),
			fmt.Sprintf("%.3f", r.Attacked.UPO), fmt.Sprintf("%.3f", r.Attacked.AGO), fmt.Sprintf("%.3f", r.Attacked.All),
			fmt.Sprintf("%.3f", r.Drop()),
		})
	}
	return t
}

// AttackScreenSets regenerates matched clean/attacked eval screen sets for
// the given seeds.
func AttackScreenSets(seeds []int64, best auigen.Knobs, cfg auigen.DatasetConfig) (clean, attacked []*auigen.Attacked) {
	clean = adversary.EvalScreens(seeds, auigen.Knobs{}, cfg)
	attacked = adversary.EvalScreens(seeds, best, cfg)
	return clean, attacked
}
