package experiments

import (
	"fmt"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/fleet"
	"repro/internal/frauddroid"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
)

// Device-level experiment parameters.
const (
	// deviceW/H is the simulated handset resolution (4x the model input).
	deviceW, deviceH = 384, 640
	// appRunTime is how long each app runs, matching the paper's
	// one-minute Monkey sessions.
	appRunTime = time.Minute
	// obfuscationRate is the fraction of apps with obfuscated resource
	// ids, calibrated to reproduce the FraudDroid-like baseline's 14.4%
	// recall (Table VI attributes the collapse to obfuscated/dynamic ids).
	obfuscationRate = 0.85
)

// runDetector returns the backend device experiments run under, selected by
// WithDetector (default: the int8 on-device port).
func (e *Env) runDetector() detect.Detector {
	name := e.detectorName
	if name == "" {
		name = "yolite-int8"
	}
	return e.mustDetector(name)
}

func (e *Env) deviceApps() int {
	if e.apps > 0 {
		return e.apps
	}
	if e.Quick {
		return 12
	}
	return 100
}

// runResult aggregates one app session.
type runResult struct {
	activity    perfmodel.Activity
	screens     int // analyses performed
	auisShown   int // ground-truth popups that appeared
	auisCaught  int // popups present during >=1 analysis that flagged a UPO
	darpaConf   metrics.Confusion
	fdConf      metrics.Confusion
	eventsTotal int
}

// runApp simulates one app for a minute under DARPA with the given cut-off,
// scoring both DARPA and the FraudDroid-like baseline on every analysed
// screen.
func (e *Env) runApp(idx int, ct time.Duration, mode core.Mode, withFD bool) runResult {
	obf := idx%20 < int(obfuscationRate*20) // 17 of every 20 apps
	h := fleet.NewHandset(fleet.HandsetConfig{
		Seed:    int64(DeviceSeed + idx),
		ScreenW: deviceW, ScreenH: deviceH,
		App: app.Config{
			Package:         fmt.Sprintf("com.app%03d", idx),
			Obfuscate:       obf,
			MeanAUIInterval: 12 * time.Second,
			GenSeed:         int64(1000 + idx),
		},
		MonkeyPeriod: 8 * time.Second,
		Service: core.Config{
			Cutoff: ct, Mode: mode,
			// On-device screens carry benign content the detector never
			// sees at training resolution; a higher operating threshold
			// keeps screen-level precision up (the deployment knob every
			// detector exposes).
			ConfThresh: 0.80,
		},
	})
	var fd frauddroid.Detector

	// Expose the run's screen to metadata-based backends for the duration of
	// this session (device runs are sequential, so a single slot suffices).
	e.curScreen = h.Screen
	defer func() { e.curScreen = nil }()

	var res runResult
	caught := map[*app.AUIShowing]bool{}
	svc := h.Start(e.runDetector())
	svc.OnAnalysis = func(an core.Analysis) {
		showing := h.App.Current()
		labelled := showing != nil
		flagged := false
		for _, d := range an.Detections {
			if d.Class == dataset.ClassUPO {
				flagged = true
				break
			}
		}
		res.darpaConf.Add(labelled, flagged)
		if labelled && flagged {
			caught[showing] = true
		}
		if withFD {
			res.fdConf.Add(labelled, fd.DetectScreen(h.Screen).IsAUI)
		}
	}
	h.Run(appRunTime)
	h.Stop()

	st := svc.Stats()
	res.activity = perfmodel.Activity{
		Duration:        appRunTime,
		EventsDelivered: st.EventsSeen,
		Analyses:        st.Analyses,
		Decorations:     st.DecorationsDrawn,
	}
	res.screens = st.Analyses
	res.eventsTotal = h.Mgr.Stats().Emitted
	for _, shown := range h.App.History() {
		res.auisShown++
		if caught[shown] {
			res.auisCaught++
		}
	}
	return res
}

// Table6 reproduces Table VI: DARPA vs the FraudDroid-like baseline on
// end-to-end app runs.
func (e *Env) Table6() *Table {
	var darpa, fd metrics.Confusion
	n := e.deviceApps()
	for i := 0; i < n; i++ {
		if i%20 == 0 {
			e.verbose("Table VI: app %d/%d", i, n)
		}
		r := e.runApp(i, 0, core.ModeFull, true)
		darpa.AUIDetected += r.darpaConf.AUIDetected
		darpa.AUIMissed += r.darpaConf.AUIMissed
		darpa.NonAUIFlagged += r.darpaConf.NonAUIFlagged
		darpa.NonAUIPassed += r.darpaConf.NonAUIPassed
		fd.AUIDetected += r.fdConf.AUIDetected
		fd.AUIMissed += r.fdConf.AUIMissed
		fd.NonAUIFlagged += r.fdConf.NonAUIFlagged
		fd.NonAUIPassed += r.fdConf.NonAUIPassed
	}
	t := &Table{
		ID:        "Table VI",
		Title:     fmt.Sprintf("Confusion matrix of DARPA and the FraudDroid-like baseline (%d apps, 1 min each)", n),
		Header:    []string{"Labelled", "FraudDroid AUI", "FraudDroid Non-AUI", "DARPA AUI", "DARPA Non-AUI"},
		PaperNote: "FraudDroid 35/208/11/242 (14.4% recall); DARPA 213/30/21/232 (87.6% recall, 91.0% precision)",
	}
	t.Rows = append(t.Rows,
		[]string{"AUI", itoa(fd.AUIDetected), itoa(fd.AUIMissed), itoa(darpa.AUIDetected), itoa(darpa.AUIMissed)},
		[]string{"Non-AUI", itoa(fd.NonAUIFlagged), itoa(fd.NonAUIPassed), itoa(darpa.NonAUIFlagged), itoa(darpa.NonAUIPassed)},
		[]string{"Recall", pct(fd.Recall()), "", pct(darpa.Recall()), ""},
		[]string{"Precision", pct(fd.Precision()), "", pct(darpa.Precision()), ""},
	)
	return t
}

// workload aggregates the standard overhead workload under one pipeline
// configuration, returning the summed activity.
func (e *Env) workload(ct time.Duration, mode core.Mode) (perfmodel.Activity, []runResult) {
	n := e.deviceApps() / 4
	if n < 5 {
		n = 5
	}
	total := perfmodel.Activity{}
	var runs []runResult
	for i := 0; i < n; i++ {
		r := e.runApp(500+i, ct, mode, false)
		total.Duration += r.activity.Duration
		total.EventsDelivered += r.activity.EventsDelivered
		total.Analyses += r.activity.Analyses
		total.Decorations += r.activity.Decorations
		runs = append(runs, r)
	}
	return total, runs
}

func reportRow(name string, rep perfmodel.Report) []string {
	return []string{name,
		fmt.Sprintf("%.2f", rep.CPUPct),
		fmt.Sprintf("%.2f", rep.MemMB),
		fmt.Sprintf("%.0f", rep.FPS),
		fmt.Sprintf("%.2f", rep.PowerMW),
	}
}

// Table7 reproduces Table VII: overhead by incrementally enabling pipeline
// stages.
func (e *Env) Table7() *Table {
	t := &Table{
		ID:        "Table VII",
		Title:     "Performance overhead of DARPA (component decomposition)",
		Header:    []string{"Configuration", "CPU %", "Memory MB", "FPS", "Power mW"},
		PaperNote: "baseline 55.22/4291.96/81/443.85; +monitor 55.91; +detect 57.11; full 57.76/4413.85/74/474.12 (total +4.6% CPU, +2.8% mem, -8.6% fps, +6.8% power)",
	}
	t.Rows = append(t.Rows, reportRow("Baseline (w/o DARPA)", perfmodel.Estimate(perfmodel.Activity{})))

	e.verbose("Table VII: monitoring-only workload...")
	actMon, _ := e.workload(0, core.ModeMonitor)
	t.Rows = append(t.Rows, reportRow("Baseline + UI monitoring", perfmodel.Estimate(actMon)))

	e.verbose("Table VII: detection workload...")
	actDet, _ := e.workload(0, core.ModeDetect)
	t.Rows = append(t.Rows, reportRow("+ AUI detection", perfmodel.Estimate(actDet)))

	e.verbose("Table VII: full pipeline workload...")
	actFull, _ := e.workload(0, core.ModeFull)
	full := perfmodel.Estimate(actFull)
	t.Rows = append(t.Rows, reportRow("DARPA (monitor+detect+decorate)", full))

	cpu, mem, fps, power := full.Overhead()
	t.Rows = append(t.Rows, []string{"Total overhead",
		fmt.Sprintf("%+.2f (%+.1f%%)", cpu, 100*cpu/perfmodel.BaselineCPU),
		fmt.Sprintf("%+.2f (%+.1f%%)", mem, 100*mem/perfmodel.BaselineMemMB),
		fmt.Sprintf("%+.0f (%+.1f%%)", fps, 100*fps/perfmodel.BaselineFPS),
		fmt.Sprintf("%+.2f (%+.1f%%)", power, 100*power/perfmodel.BaselinePower),
	})
	return t
}

// RunAblationDebounce runs one standard app-minute with the deployed
// cut-off (debounce=true, ct=200ms) or with an effectively disabled cut-off
// (ct=1ms, analysing almost every event) and returns the resulting
// activity — the ablation behind Section IV-B's design decision.
func (e *Env) RunAblationDebounce(debounce bool) perfmodel.Activity {
	ct := 200 * time.Millisecond
	if !debounce {
		ct = time.Millisecond
	}
	r := e.runApp(900, ct, core.ModeFull, false)
	return r.activity
}

// CutoffSweep holds one ct setting's results, shared by Table VIII and
// Figure 8.
type CutoffSweep struct {
	Cutoff     time.Duration
	Report     perfmodel.Report
	Events     int
	Screens    int // UI changes analysed
	AUIsShown  int
	AUIsCaught int
}

// Cutoffs is the ct sweep of Section VI-E.
var Cutoffs = []time.Duration{
	50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
	300 * time.Millisecond, 400 * time.Millisecond, 500 * time.Millisecond,
}

// Sweep runs the full pipeline across the ct values.
func (e *Env) Sweep() []CutoffSweep {
	var out []CutoffSweep
	for _, ct := range Cutoffs {
		e.verbose("ct sweep: %v...", ct)
		act, runs := e.workload(ct, core.ModeFull)
		s := CutoffSweep{Cutoff: ct, Report: perfmodel.Estimate(act)}
		for _, r := range runs {
			s.Events += r.eventsTotal
			s.Screens += r.screens
			s.AUIsShown += r.auisShown
			s.AUIsCaught += r.auisCaught
		}
		out = append(out, s)
	}
	return out
}

// Table8 reproduces Table VIII from a sweep.
func Table8(sweep []CutoffSweep) *Table {
	t := &Table{
		ID:        "Table VIII",
		Title:     "Performance of DARPA under different cut-off intervals",
		Header:    []string{"Interval (ms)", "CPU %", "Memory MB", "FPS", "Power mW"},
		PaperNote: "50ms: 86.5/4452/59/587; 200ms: 57.8/4414/74/474; 500ms: 56.1/4355/79/465",
	}
	for _, s := range sweep {
		t.Rows = append(t.Rows, reportRow(fmt.Sprintf("%d", s.Cutoff.Milliseconds()), s.Report)[0:])
	}
	return t
}

// Figure8 reproduces Figure 8 from a sweep: analysed UI changes and AUI
// coverage per ct.
func Figure8(sweep []CutoffSweep) *Table {
	t := &Table{
		ID:        "Figure 8",
		Title:     "AUI coverage under different interval thresholds",
		Header:    []string{"Interval (ms)", "UI changes analysed", "AUIs shown", "AUIs identified", "Coverage vs smallest ct", "Workload vs smallest ct"},
		PaperNote: "ct=200 keeps 94.1% of AUIs (191/203) while analysed events drop by 67.1% (1538 of 2291 avoided)",
	}
	if len(sweep) == 0 {
		return t
	}
	base := sweep[0]
	for _, s := range sweep {
		coverage := 1.0
		if base.AUIsCaught > 0 {
			coverage = float64(s.AUIsCaught) / float64(base.AUIsCaught)
		}
		workload := 1.0
		if base.Screens > 0 {
			workload = float64(s.Screens) / float64(base.Screens)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", s.Cutoff.Milliseconds()),
			itoa(s.Screens), itoa(s.AUIsShown), itoa(s.AUIsCaught),
			pct(coverage), pct(workload),
		})
	}
	return t
}
